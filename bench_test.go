// Benchmarks, one family per experiment of the reconstructed evaluation
// (DESIGN.md §3). Run with:
//
//	go test -bench=. -benchmem
//
// cmd/parbench prints the corresponding tables/figures; these benchmarks
// exercise the same code paths under the testing.B harness and attach the
// relevant counters as custom metrics.
package parulel

import (
	"fmt"
	"io"
	"testing"
	"time"

	"parulel/internal/compile"
	"parulel/internal/copycon"
	"parulel/internal/core"
	"parulel/internal/lang"
	"parulel/internal/match"
	"parulel/internal/match/rete"
	"parulel/internal/match/treat"
	"parulel/internal/obs"
	"parulel/internal/ops5"
	"parulel/internal/programs"
	"parulel/internal/wm"
	"parulel/internal/workload"
)

type loader func(ins workload.Inserter) error

var benchWorkloads = []struct {
	name string
	prog string
	load loader
}{
	{"waltz", programs.Waltz, func(i workload.Inserter) error { return workload.WaltzScene(i, 20) }},
	{"alexsys", programs.Alexsys, func(i workload.Inserter) error { return workload.Alexsys(i, 60, 40, 1) }},
	{"closure", programs.Closure, func(i workload.Inserter) error { return workload.LayeredDAG(i, 5, 4, 2, 1) }},
}

func mustLoad(b *testing.B, name string) *compile.Program {
	b.Helper()
	p, err := programs.Load(name)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// --- E1: PARULEL vs OPS5, cycles and firings ---

func BenchmarkE1(b *testing.B) {
	for _, wl := range benchWorkloads {
		b.Run("parulel/"+wl.name, func(b *testing.B) {
			var res core.Result
			for i := 0; i < b.N; i++ {
				e := core.New(mustLoad(b, wl.prog), core.Options{Workers: 4, MaxCycles: 1 << 20})
				if err := wl.load(e); err != nil {
					b.Fatal(err)
				}
				var err error
				if res, err = e.Run(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Cycles), "cycles")
			b.ReportMetric(float64(res.Firings), "firings")
		})
		b.Run("ops5/"+wl.name, func(b *testing.B) {
			var res ops5.Result
			for i := 0; i < b.N; i++ {
				e := ops5.New(mustLoad(b, wl.prog), ops5.Options{MaxCycles: 1 << 24})
				if err := wl.load(e); err != nil {
					b.Fatal(err)
				}
				var err error
				if res, err = e.Run(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Cycles), "cycles")
			b.ReportMetric(float64(res.Firings), "firings")
		})
	}
}

// --- E2: speedup vs workers ---

func BenchmarkE2(b *testing.B) {
	hot16AST, err := lang.Parse(workload.HotRuleProgram)
	if err != nil {
		b.Fatal(err)
	}
	hot16AST, err = copycon.Split(hot16AST, "assign", "r", 16)
	if err != nil {
		b.Fatal(err)
	}
	hot16, err := compile.Compile(hot16AST)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("waltz/workers=%d", workers), func(b *testing.B) {
			var mPot float64
			for i := 0; i < b.N; i++ {
				e := core.New(mustLoad(b, programs.Waltz), core.Options{Workers: workers, MaxCycles: 1 << 20})
				if err := workload.WaltzScene(e, 30); err != nil {
					b.Fatal(err)
				}
				if _, err := e.Run(); err != nil {
					b.Fatal(err)
				}
				mWork, _ := e.WorkerWork()
				mPot = potential(mWork)
			}
			b.ReportMetric(mPot, "match-pot")
		})
		b.Run(fmt.Sprintf("hotrule16/workers=%d", workers), func(b *testing.B) {
			var mPot float64
			for i := 0; i < b.N; i++ {
				e := core.New(hot16, core.Options{Workers: workers, MaxCycles: 1 << 20})
				if err := workload.HotRuleFacts(e, 16, 12, 1); err != nil {
					b.Fatal(err)
				}
				if _, err := e.Run(); err != nil {
					b.Fatal(err)
				}
				mWork, _ := e.WorkerWork()
				mPot = potential(mWork)
			}
			b.ReportMetric(mPot, "match-pot")
		})
	}
}

// potential computes sum/max of per-worker busy times: the speedup a
// perfectly parallel host could extract from the phase.
func potential(work []time.Duration) float64 {
	var sum, max time.Duration
	for _, d := range work {
		sum += d
		if d > max {
			max = d
		}
	}
	if max == 0 {
		return 1
	}
	return float64(sum) / float64(max)
}

// --- E3: copy-and-constrain split factor ---

func BenchmarkE3(b *testing.B) {
	for _, k := range []int{1, 2, 4, 8} {
		ast, err := lang.Parse(workload.HotRuleProgram)
		if err != nil {
			b.Fatal(err)
		}
		if k > 1 {
			if ast, err = copycon.Split(ast, "assign", "r", k); err != nil {
				b.Fatal(err)
			}
		}
		prog, err := compile.Compile(ast)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("split=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := core.New(prog, core.Options{Workers: 8, MaxCycles: 1 << 20})
				if err := workload.HotRuleFacts(e, 16, 16, 1); err != nil {
					b.Fatal(err)
				}
				if _, err := e.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E4: RETE vs TREAT ---

func BenchmarkE4(b *testing.B) {
	shapes := []struct{ depth, keys, copies int }{{2, 60, 2}, {4, 20, 2}, {6, 8, 2}}
	factories := []struct {
		name string
		f    match.Factory
	}{{"rete", rete.New}, {"treat", treat.New}}
	for _, sh := range shapes {
		prog, err := compile.CompileSource(workload.JoinChainProgram(sh.depth))
		if err != nil {
			b.Fatal(err)
		}
		facts := workload.JoinChainFacts(sh.keys, sh.depth, sh.copies, 1)
		tmpl := prog.Schema.MustLookup("rec")
		for _, f := range factories {
			b.Run(fmt.Sprintf("%s/depth=%d", f.name, sh.depth), func(b *testing.B) {
				var ms match.MemStats
				for i := 0; i < b.N; i++ {
					m := f.f(prog.Rules)
					mem := wm.NewMemory(prog.Schema)
					wmes := make([]*wm.WME, 0, len(facts))
					for _, fields := range facts {
						vec := make([]wm.Value, tmpl.Arity())
						for attr, v := range fields {
							idx, _ := tmpl.AttrIndex(attr)
							vec[idx] = v
						}
						wme := mem.InsertFields(tmpl, vec)
						wmes = append(wmes, wme)
						m.Apply(wm.Delta{Added: []*wm.WME{wme}})
					}
					for j := 0; j < len(wmes); j += 7 {
						old := wmes[j]
						mem.Remove(old.Time)
						nw := mem.InsertFields(old.Tmpl, old.Fields)
						m.Apply(wm.Delta{Removed: []*wm.WME{old}, Added: []*wm.WME{nw}})
						wmes[j] = nw
					}
					ms = m.MemStats()
				}
				b.ReportMetric(float64(ms.BetaTokens), "beta-tokens")
				b.ReportMetric(float64(ms.ConflictSet), "conflict-set")
			})
		}
	}
}

// --- E5: phase breakdown ---

func BenchmarkE5(b *testing.B) {
	for _, wl := range benchWorkloads {
		b.Run(wl.name, func(b *testing.B) {
			var m, r, f, a float64
			for i := 0; i < b.N; i++ {
				e := core.New(mustLoad(b, wl.prog), core.Options{Workers: 4, MaxCycles: 1 << 20})
				if err := wl.load(e); err != nil {
					b.Fatal(err)
				}
				res, err := e.Run()
				if err != nil {
					b.Fatal(err)
				}
				m, r, f, a = res.Stats.Breakdown()
			}
			b.ReportMetric(m, "match%")
			b.ReportMetric(r, "redact%")
			b.ReportMetric(f, "fire%")
			b.ReportMetric(a, "apply%")
		})
	}
}

// --- Observability: trace hook overhead ---

// BenchmarkTracerOverhead measures the engine's trace hooks on waltz:
// the nil case is the default production path (one nil check per hook
// site and must stay within noise of a build without hooks), "ring" is
// the paruleld per-session ring buffer, and "jsonl" the CLI's encoder.
func BenchmarkTracerOverhead(b *testing.B) {
	variants := []struct {
		name   string
		tracer func() core.Tracer
	}{
		{"nil", func() core.Tracer { return nil }},
		{"ring", func() core.Tracer { return obs.NewRing(512) }},
		{"jsonl", func() core.Tracer { return obs.NewJSONLWriter(io.Discard) }},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := core.New(mustLoad(b, programs.Waltz), core.Options{
					Workers:   4,
					MaxCycles: 1 << 20,
					Tracer:    v.tracer(),
				})
				if err := workload.WaltzScene(e, 20); err != nil {
					b.Fatal(err)
				}
				if _, err := e.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E6: meta-rules vs write conflicts ---

func BenchmarkE6(b *testing.B) {
	variants := []struct {
		name string
		load func() (*compile.Program, error)
	}{
		{"with-meta", func() (*compile.Program, error) { return programs.Load(programs.Alexsys) }},
		{"without-meta", func() (*compile.Program, error) { return programs.LoadWithoutMetaRules(programs.Alexsys) }},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var res core.Result
			for i := 0; i < b.N; i++ {
				prog, err := v.load()
				if err != nil {
					b.Fatal(err)
				}
				e := core.New(prog, core.Options{Workers: 4, MaxCycles: 1 << 20})
				if err := workload.Alexsys(e, 60, 40, 1); err != nil {
					b.Fatal(err)
				}
				if res, err = e.Run(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.WriteConflicts), "conflicts")
			b.ReportMetric(float64(res.Redactions), "redactions")
		})
	}
}
