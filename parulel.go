// Package parulel is a Go implementation of PARULEL, the parallel rule
// language of Stolfo et al. (Proc. ICPP 1991): an OPS5-style production
// system whose semantics expose parallelism in two ways — every
// instantiation surviving *redaction* fires in the same cycle, and
// conflict resolution is programmed declaratively as redaction meta-rules
// over the conflict set instead of being hard-wired.
//
// The package is a thin facade over the engine internals. A minimal
// session:
//
//	prog, err := parulel.Parse(src)           // PARULEL source text
//	eng := parulel.NewEngine(prog, parulel.Config{Workers: 4})
//	eng.Insert("pool", map[string]parulel.Value{"id": parulel.Int(1)})
//	result, err := eng.Run()
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduced evaluation.
package parulel

import (
	"context"
	"errors"
	"fmt"
	"io"

	"parulel/internal/compile"
	"parulel/internal/copycon"
	"parulel/internal/core"
	"parulel/internal/lang"
	"parulel/internal/match"
	"parulel/internal/match/rete"
	"parulel/internal/match/treat"
	"parulel/internal/ops5"
	"parulel/internal/programs"
	"parulel/internal/reorder"
	"parulel/internal/snapshot"
	"parulel/internal/wm"
)

// Value is a rule-language scalar (nil, int, float, symbol or string).
type Value = wm.Value

// WME is a working-memory element.
type WME = wm.WME

// Value constructors, re-exported for callers of Insert and Facts.
var (
	Nil   = wm.Nil
	Int   = wm.Int
	Float = wm.Float
	Sym   = wm.Sym
	Str   = wm.Str
	Bool  = wm.Bool
)

// Program is a parsed and compiled PARULEL program.
type Program struct {
	ast      *lang.Program
	compiled *compile.Program
}

// Parse parses and compiles PARULEL source text.
func Parse(src string) (*Program, error) {
	ast, err := lang.Parse(src)
	if err != nil {
		return nil, err
	}
	compiled, err := compile.Compile(ast)
	if err != nil {
		return nil, err
	}
	return &Program{ast: ast, compiled: compiled}, nil
}

// Builtin program names shipped with the library.
const (
	Quickstart = programs.Quickstart
	Alexsys    = programs.Alexsys
	Waltz      = programs.Waltz
	Closure    = programs.Closure
	Manners    = programs.Manners
	Life       = programs.Life
	Circuit    = programs.Circuit
)

// Builtins lists the names accepted by LoadBuiltin.
func Builtins() []string { return programs.All() }

// LoadBuiltin loads one of the embedded example programs.
func LoadBuiltin(name string) (*Program, error) {
	src, err := programs.Source(name)
	if err != nil {
		return nil, err
	}
	return Parse(src)
}

// BuiltinSource returns the PARULEL source of an embedded program.
func BuiltinSource(name string) (string, error) { return programs.Source(name) }

// Source renders the program back to canonical PARULEL source.
func (p *Program) Source() string { return lang.Print(p.ast) }

// Rules returns the object-rule names in declaration order.
func (p *Program) Rules() []string {
	out := make([]string, len(p.compiled.Rules))
	for i, r := range p.compiled.Rules {
		out[i] = r.Name
	}
	return out
}

// MetaRules returns the meta-rule names in declaration order.
func (p *Program) MetaRules() []string {
	out := make([]string, len(p.compiled.MetaRules))
	for i, m := range p.compiled.MetaRules {
		out[i] = m.Name
	}
	return out
}

// WithoutMetaRules returns a copy of the program with every meta-rule
// removed (used to demonstrate unredacted parallel firing).
func (p *Program) WithoutMetaRules() (*Program, error) {
	stripped := *p.ast
	stripped.MetaRules = nil
	compiled, err := compile.Compile(&stripped)
	if err != nil {
		return nil, err
	}
	return &Program{ast: &stripped, compiled: compiled}, nil
}

// Advice is a copy-and-constrain recommendation from Advise.
type Advice = copycon.Advice

// Advise recommends a rule to split and the variable to partition on,
// given per-rule activity from Engine.RuleActivity.
func (p *Program) Advise(activity map[string]int) (Advice, error) {
	return copycon.Advise(p.ast, activity)
}

// Optimize applies the join-ordering pass: each rule's condition
// elements are rearranged most-constrained-first (docs/LANGUAGE.md and
// internal/reorder describe the constraints and the tie-breaking
// caveat). Experiment E10 measures the effect.
func (p *Program) Optimize() (*Program, error) {
	ast := reorder.Program(p.ast)
	compiled, err := compile.Compile(ast)
	if err != nil {
		return nil, err
	}
	return &Program{ast: ast, compiled: compiled}, nil
}

// SplitRule applies copy-and-constrain: the named rule is replaced by k
// variants hash-partitioned on one of its variables.
func (p *Program) SplitRule(rule, variable string, k int) (*Program, error) {
	ast, err := copycon.Split(p.ast, rule, variable, k)
	if err != nil {
		return nil, err
	}
	compiled, err := compile.Compile(ast)
	if err != nil {
		return nil, err
	}
	return &Program{ast: ast, compiled: compiled}, nil
}

// EngineKind selects the execution semantics.
type EngineKind uint8

// Engine kinds.
const (
	// Parulel is the parallel-firing engine with meta-rule redaction.
	Parulel EngineKind = iota
	// OPS5LEX is the sequential baseline with LEX conflict resolution.
	OPS5LEX
	// OPS5MEA is the sequential baseline with MEA conflict resolution.
	OPS5MEA
)

// MatcherKind selects the incremental match algorithm.
type MatcherKind uint8

// Matcher kinds.
const (
	RETE MatcherKind = iota
	TREAT
)

// EvalMode selects the expression-evaluation backend used for alpha
// tests, join filters, RHS actions and meta-rule tests. The bytecode
// register VM is the default; the tree-walking interpreter remains as
// the reference backend (experiment E13 compares the two).
type EvalMode = compile.EvalMode

// Evaluation backends.
const (
	EvalBytecode = compile.EvalBytecode
	EvalInterp   = compile.EvalInterp
)

// Partition selects the rule-to-worker distribution strategy (PARULEL
// engine): core semantics are unaffected, only load balance changes.
type Partition = core.Partition

// Partition strategies.
const (
	PartitionRoundRobin = core.PartitionRoundRobin
	PartitionBlock      = core.PartitionBlock
	PartitionLPT        = core.PartitionLPT
)

// Tracer receives structured per-cycle callbacks from the PARULEL
// engine (cycle boundaries, phase durations, redaction outcomes, rule
// firings, commits). The callback contract — ordering, the quiescence
// probe, threading — is documented on core.Tracer; docs/OBSERVABILITY.md
// has the narrative version. A nil Tracer costs nothing.
type Tracer = core.Tracer

// Config configures an Engine.
type Config struct {
	Engine    EngineKind
	Matcher   MatcherKind
	Workers   int       // PARULEL only; <1 means 1
	Output    io.Writer // destination of (write …); default discard
	MaxCycles int       // 0 = unlimited
	Trace     io.Writer // optional per-cycle trace (PARULEL only)
	// Tracer receives structured cycle events (PARULEL only); it composes
	// with Trace, which stays a human-readable text log.
	Tracer Tracer
	// Partition selects the rule distribution strategy (PARULEL only).
	Partition Partition
	// SequentialRedaction selects the sequential redaction semantics
	// (PARULEL only); see docs/LANGUAGE.md §5.
	SequentialRedaction bool
	// EvalMode selects the expression backend (bytecode VM by default).
	EvalMode EvalMode
}

func (c Config) factory() match.Factory {
	if c.Matcher == TREAT {
		return treat.Factory(treat.Options{EvalMode: c.EvalMode})
	}
	return rete.Factory(rete.Options{EvalMode: c.EvalMode})
}

// Result summarizes a run.
type Result struct {
	Cycles         int
	Firings        int
	Redactions     int
	WriteConflicts int
	Halted         bool
	// Phase shares of wall time, in percent (match, redact/select, fire,
	// apply).
	MatchPct, RedactPct, FirePct, ApplyPct float64
}

// Engine executes a Program under the configured semantics.
type Engine struct {
	par *core.Engine
	seq *ops5.Engine
}

// NewEngine builds an engine for the program.
func NewEngine(p *Program, cfg Config) *Engine {
	switch cfg.Engine {
	case OPS5LEX, OPS5MEA:
		strategy := ops5.LEX
		if cfg.Engine == OPS5MEA {
			strategy = ops5.MEA
		}
		return &Engine{seq: ops5.New(p.compiled, ops5.Options{
			Strategy:  strategy,
			Matcher:   cfg.factory(),
			Output:    cfg.Output,
			MaxCycles: cfg.MaxCycles,
			EvalMode:  cfg.EvalMode,
		})}
	default:
		return &Engine{par: core.New(p.compiled, core.Options{
			Workers:             cfg.Workers,
			Matcher:             cfg.factory(),
			Output:              cfg.Output,
			MaxCycles:           cfg.MaxCycles,
			Trace:               cfg.Trace,
			Tracer:              cfg.Tracer,
			Partition:           cfg.Partition,
			SequentialRedaction: cfg.SequentialRedaction,
			EvalMode:            cfg.EvalMode,
		})}
	}
}

// Insert adds a fact before (or between) runs.
func (e *Engine) Insert(template string, fields map[string]Value) (*WME, error) {
	if e.seq != nil {
		return e.seq.Insert(template, fields)
	}
	return e.par.Insert(template, fields)
}

// Run executes to quiescence, halt, or the cycle limit.
func (e *Engine) Run() (Result, error) { return e.RunContext(context.Background()) }

// RunContext is Run with cancellation: when ctx ends before quiescence the
// engine stops at the next cycle boundary, leaving working memory in a
// consistent committed state, and returns an error for which IsCanceled
// reports true (and which wraps ctx.Err()). The run may be resumed by
// calling Run or RunContext again.
func (e *Engine) RunContext(ctx context.Context) (Result, error) {
	if e.seq != nil {
		res, err := e.seq.RunContext(ctx)
		m, r, f, a := res.Stats.Breakdown()
		return Result{
			Cycles: res.Cycles, Firings: res.Firings, Halted: res.Halted,
			MatchPct: m, RedactPct: r, FirePct: f, ApplyPct: a,
		}, err
	}
	res, err := e.par.RunContext(ctx)
	m, r, f, a := res.Stats.Breakdown()
	return Result{
		Cycles: res.Cycles, Firings: res.Firings, Redactions: res.Redactions,
		WriteConflicts: res.WriteConflicts, Halted: res.Halted,
		MatchPct: m, RedactPct: r, FirePct: f, ApplyPct: a,
	}, err
}

// IsCanceled reports whether err came from a RunContext whose context
// ended before the run finished (as opposed to a rule-evaluation error or
// the cycle limit).
func IsCanceled(err error) bool {
	return errors.Is(err, core.ErrCanceled) || errors.Is(err, ops5.ErrCanceled)
}

// RuleActivity returns per-rule conflict-set entry counts (PARULEL
// engine only; empty for the sequential baselines), the input to
// Program.Advise.
func (e *Engine) RuleActivity() map[string]int {
	if e.par == nil {
		return map[string]int{}
	}
	return e.par.RuleActivity()
}

// Explain writes a human-readable listing of the current conflict set
// (rules, matched elements, bindings, refraction status).
func (e *Engine) Explain(w io.Writer) error {
	if e.seq != nil {
		return e.seq.ExplainConflictSet(w)
	}
	return e.par.ExplainConflictSet(w)
}

// DumpWM writes the current working memory as a PARULEL `(wm …)` block,
// loadable by LoadWM or runnable directly alongside a program file.
func (e *Engine) DumpWM(w io.Writer) error {
	if e.seq != nil {
		return snapshot.Write(w, e.seq.Memory())
	}
	return snapshot.Write(w, e.par.Memory())
}

// LoadWM reads `(wm …)` blocks and queues every fact for the next run.
// It returns the number of facts loaded.
func (e *Engine) LoadWM(r io.Reader) (int, error) {
	return snapshot.Read(r, e)
}

// Facts returns the live WMEs of a template, ordered by time tag.
func (e *Engine) Facts(template string) []*WME {
	if e.seq != nil {
		return e.seq.Memory().OfTemplate(template)
	}
	return e.par.Memory().OfTemplate(template)
}

// FactCount returns the number of live WMEs of a template.
func (e *Engine) FactCount(template string) int {
	if e.seq != nil {
		return e.seq.Memory().CountOf(template)
	}
	return e.par.Memory().CountOf(template)
}

// WMSize returns the total number of live WMEs.
func (e *Engine) WMSize() int {
	if e.seq != nil {
		return e.seq.Memory().Len()
	}
	return e.par.Memory().Len()
}

// String names the engine kind for logs.
func (k EngineKind) String() string {
	switch k {
	case OPS5LEX:
		return "ops5-lex"
	case OPS5MEA:
		return "ops5-mea"
	default:
		return "parulel"
	}
}

// String names the matcher kind for logs.
func (k MatcherKind) String() string {
	if k == TREAT {
		return "treat"
	}
	return "rete"
}

// ParseEngineKind converts a CLI flag value.
func ParseEngineKind(s string) (EngineKind, error) {
	switch s {
	case "parulel":
		return Parulel, nil
	case "ops5", "ops5-lex", "lex":
		return OPS5LEX, nil
	case "ops5-mea", "mea":
		return OPS5MEA, nil
	default:
		return 0, fmt.Errorf("parulel: unknown engine %q (want parulel, ops5-lex or ops5-mea)", s)
	}
}

// ParseMatcherKind converts a CLI flag value.
func ParseMatcherKind(s string) (MatcherKind, error) {
	switch s {
	case "rete":
		return RETE, nil
	case "treat":
		return TREAT, nil
	default:
		return 0, fmt.Errorf("parulel: unknown matcher %q (want rete or treat)", s)
	}
}

// ParseEvalMode converts a CLI flag value.
func ParseEvalMode(s string) (EvalMode, error) {
	switch s {
	case "bytecode":
		return EvalBytecode, nil
	case "interp":
		return EvalInterp, nil
	default:
		return 0, fmt.Errorf("parulel: unknown eval mode %q (want bytecode or interp)", s)
	}
}
