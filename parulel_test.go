package parulel

import (
	"bytes"
	"strings"
	"testing"
)

const facadeProgram = `
(literalize job id state)
(literalize done id)
(rule finish
  <j> <- (job ^id <i> ^state ready)
-->
  (make done ^id <i>)
  (modify <j> ^state finished))
(metarule one-at-a-time
  [<i> (finish ^i <a>)]
  [<j> (finish ^i <b>)]
  (test (< <a> <b>))
-->
  (redact <j>))
(wm (job ^id 1 ^state ready) (job ^id 2 ^state ready))
`

func TestFacadeParseAndRun(t *testing.T) {
	prog, err := Parse(facadeProgram)
	if err != nil {
		t.Fatal(err)
	}
	if got := prog.Rules(); len(got) != 1 || got[0] != "finish" {
		t.Errorf("rules: %v", got)
	}
	if got := prog.MetaRules(); len(got) != 1 || got[0] != "one-at-a-time" {
		t.Errorf("metarules: %v", got)
	}
	eng := NewEngine(prog, Config{Workers: 2, MaxCycles: 10})
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The meta-rule serializes: 2 cycles, one firing each.
	if res.Cycles != 2 || res.Firings != 2 || res.Redactions != 1 {
		t.Errorf("result: %+v", res)
	}
	if eng.FactCount("done") != 2 {
		t.Errorf("done = %d", eng.FactCount("done"))
	}
	if eng.WMSize() != 4 {
		t.Errorf("wm size = %d", eng.WMSize())
	}
}

func TestFacadeParseError(t *testing.T) {
	if _, err := Parse("(rule broken"); err == nil {
		t.Error("parse error not surfaced")
	}
	if _, err := Parse("(literalize a x) (rule r (b ^y 1) --> (halt))"); err == nil {
		t.Error("compile error not surfaced")
	}
}

func TestFacadeBuiltins(t *testing.T) {
	names := Builtins()
	if len(names) != 7 {
		t.Fatalf("builtins: %v", names)
	}
	for _, n := range names {
		p, err := LoadBuiltin(n)
		if err != nil {
			t.Errorf("LoadBuiltin(%s): %v", n, err)
			continue
		}
		if len(p.Rules()) == 0 {
			t.Errorf("builtin %s has no rules", n)
		}
		src, err := BuiltinSource(n)
		if err != nil || !strings.Contains(src, "literalize") {
			t.Errorf("BuiltinSource(%s): %v", n, err)
		}
	}
	if _, err := LoadBuiltin("nope"); err == nil {
		t.Error("unknown builtin should fail")
	}
}

func TestFacadeInsertAndOutput(t *testing.T) {
	prog, err := Parse(`
(literalize a x)
(rule r (a ^x <v>) --> (write "x is " <v> (crlf)) (remove 1))
`)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	eng := NewEngine(prog, Config{Output: &out})
	if _, err := eng.Insert("a", map[string]Value{"x": Int(5)}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if out.String() != "x is 5\n" {
		t.Errorf("output = %q", out.String())
	}
}

func TestFacadeOPS5Engines(t *testing.T) {
	for _, kind := range []EngineKind{OPS5LEX, OPS5MEA} {
		prog, err := Parse(facadeProgram)
		if err != nil {
			t.Fatal(err)
		}
		eng := NewEngine(prog, Config{Engine: kind, MaxCycles: 10})
		res, err := eng.Run()
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if res.Firings != 2 {
			t.Errorf("%v: firings = %d", kind, res.Firings)
		}
		if res.Redactions != 0 {
			t.Errorf("%v: sequential engines never redact", kind)
		}
	}
}

func TestFacadeTreatMatcher(t *testing.T) {
	prog, err := Parse(facadeProgram)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(prog, Config{Matcher: TREAT, MaxCycles: 10})
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Firings != 2 {
		t.Errorf("firings = %d", res.Firings)
	}
}

func TestFacadeWithoutMetaRules(t *testing.T) {
	prog, err := Parse(facadeProgram)
	if err != nil {
		t.Fatal(err)
	}
	stripped, err := prog.WithoutMetaRules()
	if err != nil {
		t.Fatal(err)
	}
	if len(stripped.MetaRules()) != 0 {
		t.Error("meta-rules not stripped")
	}
	// Original untouched.
	if len(prog.MetaRules()) != 1 {
		t.Error("original program mutated")
	}
	eng := NewEngine(stripped, Config{MaxCycles: 10})
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Without redaction both fire in one cycle.
	if res.Cycles != 1 || res.Firings != 2 {
		t.Errorf("result: %+v", res)
	}
}

func TestFacadeSplitRule(t *testing.T) {
	prog, err := Parse(`
(literalize a x)
(literalize out x)
(rule hot (a ^x <v>) --> (make out ^x <v>))
`)
	if err != nil {
		t.Fatal(err)
	}
	split, err := prog.SplitRule("hot", "v", 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := split.Rules(); len(got) != 4 || got[0] != "hot@0" {
		t.Errorf("split rules: %v", got)
	}
	// Same results as unsplit.
	e1 := NewEngine(prog, Config{MaxCycles: 5})
	e2 := NewEngine(split, Config{Workers: 4, MaxCycles: 5})
	for i := int64(0); i < 20; i++ {
		if _, err := e1.Insert("a", map[string]Value{"x": Int(i)}); err != nil {
			t.Fatal(err)
		}
		if _, err := e2.Insert("a", map[string]Value{"x": Int(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e1.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Run(); err != nil {
		t.Fatal(err)
	}
	if e1.FactCount("out") != 20 || e2.FactCount("out") != 20 {
		t.Errorf("outs: %d vs %d", e1.FactCount("out"), e2.FactCount("out"))
	}
}

func TestFacadeSourceRoundTrip(t *testing.T) {
	prog, err := Parse(facadeProgram)
	if err != nil {
		t.Fatal(err)
	}
	re, err := Parse(prog.Source())
	if err != nil {
		t.Fatalf("printed source does not reparse: %v\n%s", err, prog.Source())
	}
	if len(re.Rules()) != len(prog.Rules()) {
		t.Error("round trip lost rules")
	}
}

func TestFacadeKindParsing(t *testing.T) {
	for s, want := range map[string]EngineKind{
		"parulel": Parulel, "ops5": OPS5LEX, "ops5-lex": OPS5LEX,
		"lex": OPS5LEX, "ops5-mea": OPS5MEA, "mea": OPS5MEA,
	} {
		got, err := ParseEngineKind(s)
		if err != nil || got != want {
			t.Errorf("ParseEngineKind(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseEngineKind("bogus"); err == nil {
		t.Error("bogus engine kind accepted")
	}
	for s, want := range map[string]MatcherKind{"rete": RETE, "treat": TREAT} {
		got, err := ParseMatcherKind(s)
		if err != nil || got != want {
			t.Errorf("ParseMatcherKind(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseMatcherKind("bogus"); err == nil {
		t.Error("bogus matcher kind accepted")
	}
	if Parulel.String() != "parulel" || OPS5LEX.String() != "ops5-lex" || OPS5MEA.String() != "ops5-mea" {
		t.Error("EngineKind.String wrong")
	}
	if RETE.String() != "rete" || TREAT.String() != "treat" {
		t.Error("MatcherKind.String wrong")
	}
}

func TestFacadeAdvise(t *testing.T) {
	prog, err := Parse(`
(literalize task id region)
(literalize res  id region)
(rule hot
  (task ^id <t> ^region <r>)
  (res  ^id <s> ^region <r>)
-->
  (make task ^id <t>))
`)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(prog, Config{MaxCycles: 10})
	for i := int64(0); i < 6; i++ {
		if _, err := eng.Insert("task", map[string]Value{"id": Int(i), "region": Sym("a")}); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Insert("res", map[string]Value{"id": Int(i), "region": Sym("a")}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	activity := eng.RuleActivity()
	if activity["hot"] == 0 {
		t.Fatalf("activity: %v", activity)
	}
	adv, err := prog.Advise(activity)
	if err != nil {
		t.Fatal(err)
	}
	if adv.Rule != "hot" || adv.Variable != "r" {
		t.Errorf("advice: %+v", adv)
	}
	if _, err := prog.SplitRule(adv.Rule, adv.Variable, 2); err != nil {
		t.Errorf("advised split failed: %v", err)
	}
	// Sequential engines expose no activity.
	seq := NewEngine(prog, Config{Engine: OPS5LEX})
	if len(seq.RuleActivity()) != 0 {
		t.Error("sequential engine should report empty activity")
	}
}

func TestFacadeSnapshot(t *testing.T) {
	prog, err := Parse(facadeProgram)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(prog, Config{MaxCycles: 10})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := eng.DumpWM(&snap); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(snap.String(), "(job ^id 1 ^state finished)") {
		t.Errorf("snapshot content: %s", snap.String())
	}
	// Restore into a fresh engine without the (wm …) block firing again:
	// a fresh program would re-run the rules, so check fact counts only.
	prog2, err := Parse(strings.ReplaceAll(facadeProgram, `(wm (job ^id 1 ^state ready) (job ^id 2 ^state ready))`, ""))
	if err != nil {
		t.Fatal(err)
	}
	restored := NewEngine(prog2, Config{MaxCycles: 10})
	n, err := restored.LoadWM(&snap)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("loaded %d facts, want 4", n)
	}
	res, err := restored.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Firings != 0 {
		t.Errorf("restored quiescent state fired %d times", res.Firings)
	}
}

func TestFacadeOptimize(t *testing.T) {
	prog, err := Parse(`
(literalize item   g)
(literalize anchor id g)
(literalize hit    g)
(rule cross
  (item ^g <x>)
  (item ^g (<> <x>))
  (anchor ^id 7 ^g <x>)
-->
  (make hit ^g <x>))
`)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := prog.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(opt.Source(), "(anchor ^id 7 ^g <x>)\n  (item") {
		t.Errorf("anchor should be hoisted first:\n%s", opt.Source())
	}
	// Behaviour preserved.
	run := func(p *Program) int {
		e := NewEngine(p, Config{MaxCycles: 10})
		for i := int64(0); i < 5; i++ {
			if _, err := e.Insert("item", map[string]Value{"g": Int(i % 2)}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := e.Insert("anchor", map[string]Value{"id": Int(7), "g": Int(1)}); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.FactCount("hit")
	}
	if a, b := run(prog), run(opt); a != b {
		t.Errorf("optimize changed behaviour: %d vs %d items", a, b)
	}
}
