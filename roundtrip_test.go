package parulel

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"testing"

	"parulel/internal/snapshot"
	"parulel/internal/wm"
)

// TestSnapshotRoundTripAllBuiltins runs every embedded example program to
// quiescence, exports its working memory as a `(wm …)` snapshot, reloads
// the snapshot into a fresh memory over the same schema, and checks the
// two memories hold identical fact multisets. This is the contract the
// server's snapshot endpoints (and cmd/parulel's -dump-wm/-wm flags)
// depend on.
func TestSnapshotRoundTripAllBuiltins(t *testing.T) {
	for _, name := range Builtins() {
		t.Run(name, func(t *testing.T) {
			prog, err := LoadBuiltin(name)
			if err != nil {
				t.Fatal(err)
			}
			eng := NewEngine(prog, Config{Workers: 2, MaxCycles: 200000})
			if _, err := eng.Run(); err != nil {
				t.Fatalf("run: %v", err)
			}

			var buf bytes.Buffer
			if err := eng.DumpWM(&buf); err != nil {
				t.Fatalf("export: %v", err)
			}
			exported := buf.String()

			mem := wm.NewMemory(prog.compiled.Schema)
			n, err := snapshot.Read(strings.NewReader(exported), mem)
			if err != nil {
				t.Fatalf("reload: %v", err)
			}
			if n != eng.WMSize() {
				t.Fatalf("reloaded %d facts, engine holds %d", n, eng.WMSize())
			}

			want := factMultiset(engineMemory(eng))
			got := factMultiset(mem)
			if len(want) != len(got) {
				t.Fatalf("fact counts differ: %d vs %d", len(want), len(got))
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("fact %d differs:\n  exported: %s\n  reloaded: %s", i, want[i], got[i])
				}
			}

			// Second-generation export must be byte-identical modulo fact
			// order (time tags restart in the fresh memory, and Write emits
			// facts in time-tag order, which reload preserves).
			var buf2 bytes.Buffer
			if err := snapshot.Write(&buf2, mem); err != nil {
				t.Fatalf("re-export: %v", err)
			}
			if buf2.String() != exported {
				t.Fatalf("second-generation snapshot differs:\n-- first --\n%s\n-- second --\n%s", exported, buf2.String())
			}
		})
	}
}

// engineMemory digs the live memory out of the facade engine.
func engineMemory(e *Engine) *wm.Memory {
	if e.seq != nil {
		return e.seq.Memory()
	}
	return e.par.Memory()
}

// factMultiset renders every live WME as a canonical string and sorts
// them, giving an order- and time-tag-independent comparison key.
func factMultiset(m *wm.Memory) []string {
	out := make([]string, 0, m.Len())
	for _, el := range m.Snapshot() {
		var b strings.Builder
		b.WriteString(el.Tmpl.Name)
		for i, attr := range el.Tmpl.Attrs {
			if el.Fields[i].IsNil() {
				continue
			}
			fmt.Fprintf(&b, " ^%s %s", attr, el.Fields[i])
		}
		out = append(out, b.String())
	}
	sort.Strings(out)
	return out
}
