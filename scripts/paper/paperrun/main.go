// Command paperrun drives the paper experiment grid and turns the merged
// BENCH_*.json document into validated CSV tables.
//
// Two modes:
//
//	paperrun -grid scripts/paper/experiments.json -parbench bin -out dir [-quick]
//	    run every grid entry (exec'ing parbench), merging the -json runs
//	    into dir/json/BENCH_results.json and capturing table output under
//	    dir/logs/, then generate + validate CSVs under dir/csv/.
//
//	paperrun -in BENCH_after.json -out dir
//	    skip running; regenerate + validate CSVs from an existing document.
//
// Validation is the point: a document that parses but carries a vacuous
// evaluation (no results, zero wall times, an unbounded stream) fails the
// run, so CI and the paper pipeline can gate on exit status alone.
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"

	"parulel/internal/bench"
)

// grid mirrors scripts/paper/experiments.json.
type grid struct {
	Schema  string      `json:"schema"`
	Repeats int         `json:"repeats"`
	Runs    []gridEntry `json:"runs"`
}

type gridEntry struct {
	Name  string   `json:"name"`
	About string   `json:"about,omitempty"`
	Args  []string `json:"args"`
	Log   string   `json:"log,omitempty"`   // table output captured here (under logs/)
	Merge string   `json:"merge,omitempty"` // document key the -json run merges under
}

// benchFile is the merged shape of a BENCH_*.json document: the suite
// doc at the top level plus the ablation documents parbench merges in.
type benchFile struct {
	bench.JSONDoc
	Eval    *bench.EvalDoc    `json:"eval,omitempty"`
	Serve   *bench.ServeDoc   `json:"serve,omitempty"`
	Stream  *bench.StreamDoc  `json:"stream,omitempty"`
	Cluster *bench.ClusterDoc `json:"cluster,omitempty"`
}

func main() {
	gridPath := flag.String("grid", "", "experiment grid JSON; required unless -in is given")
	parbench := flag.String("parbench", "", "parbench binary to exec for grid runs")
	in := flag.String("in", "", "existing BENCH_*.json document: skip running, just CSV + validate")
	out := flag.String("out", "", "output directory (json/, csv/, logs/ created inside)")
	quick := flag.Bool("quick", false, "pass -quick to every parbench invocation")
	flag.Parse()

	if *out == "" {
		fatal("need -out directory")
	}
	for _, d := range []string{"csv", "json", "logs"} {
		if err := os.MkdirAll(filepath.Join(*out, d), 0o755); err != nil {
			fatal("%v", err)
		}
	}

	docPath := *in
	if docPath == "" {
		if *gridPath == "" || *parbench == "" {
			fatal("need -grid and -parbench (or -in to skip running)")
		}
		docPath = filepath.Join(*out, "json", "BENCH_results.json")
		if err := runGrid(*gridPath, *parbench, *out, docPath, *quick); err != nil {
			fatal("%v", err)
		}
	}

	doc, err := loadDoc(docPath)
	if err != nil {
		fatal("%v", err)
	}
	if err := writeCSVs(doc, filepath.Join(*out, "csv")); err != nil {
		fatal("%v", err)
	}
	if errs := validate(doc); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintf(os.Stderr, "paperrun: VALIDATION: %v\n", e)
		}
		os.Exit(1)
	}
	fmt.Printf("paperrun: document %s valid, CSVs in %s\n", docPath, filepath.Join(*out, "csv"))
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "paperrun: "+format+"\n", args...)
	os.Exit(1)
}

func runGrid(gridPath, parbench, out, docPath string, quick bool) error {
	raw, err := os.ReadFile(gridPath)
	if err != nil {
		return err
	}
	var g grid
	if err := json.Unmarshal(raw, &g); err != nil {
		return fmt.Errorf("%s: %w", gridPath, err)
	}
	if g.Schema != "parulel-paper-grid/v1" {
		return fmt.Errorf("%s: unknown grid schema %q", gridPath, g.Schema)
	}
	repeats := max(g.Repeats, 1)
	for _, entry := range g.Runs {
		for r := 1; r <= repeats; r++ {
			args := append([]string{}, entry.Args...)
			if quick {
				args = append(args, "-quick")
			}
			if entry.Merge != "" {
				// All -json runs merge into one document; parbench's
				// read-merge-write keeps earlier sections intact.
				args = append(args, "-out", docPath)
			}
			logName := entry.Log
			if logName == "" {
				logName = entry.Name + ".txt"
			}
			if repeats > 1 {
				logName = fmt.Sprintf("%s-r%d%s", entry.Name, r, filepath.Ext(logName))
			}
			logFile, err := os.Create(filepath.Join(out, "logs", logName))
			if err != nil {
				return err
			}
			fmt.Printf("==> %s (repeat %d/%d): parbench %v\n", entry.Name, r, repeats, args)
			cmd := exec.Command(parbench, args...)
			cmd.Stdout = logFile
			cmd.Stderr = logFile
			runErr := cmd.Run()
			logFile.Close()
			if runErr != nil {
				return fmt.Errorf("grid entry %s: %w (see logs/%s)", entry.Name, runErr, logName)
			}
		}
	}
	return nil
}

func loadDoc(path string) (*benchFile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc benchFile
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &doc, nil
}

func writeCSV(dir, name string, header []string, rows [][]string) error {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

func itoa(v int) string     { return strconv.Itoa(v) }
func i64(v int64) string    { return strconv.FormatInt(v, 10) }
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

func writeCSVs(doc *benchFile, dir string) error {
	if len(doc.Results) > 0 {
		rows := make([][]string, 0, len(doc.Results))
		for _, r := range doc.Results {
			rows = append(rows, []string{
				r.Workload, r.Matcher, itoa(r.Workers), itoa(r.Cycles), itoa(r.Firings),
				itoa(r.Redactions), itoa(r.WriteConflicts), itoa(r.WMSize),
				i64(r.WallNS), i64(r.MatchNS), i64(r.RedactNS), i64(r.FireNS), i64(r.ApplyNS),
				ftoa(r.PotentialSpeedup),
			})
		}
		if err := writeCSV(dir, "results.csv", []string{
			"workload", "matcher", "workers", "cycles", "firings", "redactions",
			"write_conflicts", "wm_size", "wall_ns", "match_ns", "redact_ns",
			"fire_ns", "apply_ns", "potential_speedup",
		}, rows); err != nil {
			return err
		}
	}
	if doc.Eval != nil {
		rows := make([][]string, 0, len(doc.Eval.Results))
		for _, r := range doc.Eval.Results {
			rows = append(rows, []string{
				r.Workload, itoa(r.Exprs),
				i64(r.InterpEvalNS), i64(r.BytecodeEvalNS), ftoa(r.EvalSpeedup),
				i64(r.InterpWallNS), i64(r.BytecodeWallNS), ftoa(r.RunSpeedup),
			})
		}
		if err := writeCSV(dir, "eval.csv", []string{
			"workload", "exprs", "interp_eval_ns", "bytecode_eval_ns", "eval_speedup",
			"interp_wall_ns", "bytecode_wall_ns", "run_speedup",
		}, rows); err != nil {
			return err
		}
	}
	if doc.Serve != nil {
		row := func(mode string, r bench.ServeRun) []string {
			return []string{
				mode, itoa(r.Requests), ftoa(r.RequestsPerSec),
				itoa(r.Mutations), ftoa(r.MutationsPerSec),
				itoa(r.Errors5xx), itoa(r.Rejected429),
			}
		}
		if err := writeCSV(dir, "serve.csv", []string{
			"mode", "requests", "requests_per_sec", "mutations", "mutations_per_sec",
			"errors_5xx", "rejected_429",
		}, [][]string{row("single_op", doc.Serve.SingleOp), row("batched", doc.Serve.Batched)}); err != nil {
			return err
		}
	}
	if doc.Stream != nil {
		s := doc.Stream
		if err := writeCSV(dir, "stream.csv", []string{
			"frames", "facts_per_frame", "facts_streamed", "ticks", "expired",
			"peak_wm", "final_wm", "wall_ms", "facts_per_sec", "wm_bound_ratio",
		}, [][]string{{
			itoa(s.Frames), itoa(s.FactsPerFrame), itoa(s.FactsStreamed),
			i64(s.Ticks), itoa(s.Expired), itoa(s.PeakWM), itoa(s.FinalWM),
			i64(s.WallMS), ftoa(s.FactsPerSec), ftoa(s.WMBoundRatio),
		}}); err != nil {
			return err
		}
	}
	if doc.Cluster != nil {
		row := func(r bench.ClusterRun) []string {
			return []string{
				itoa(r.Nodes), itoa(r.Requests), ftoa(r.RequestsPerSec),
				itoa(r.Mutations), ftoa(r.MutationsPerSec),
				itoa(r.Errors5xx), itoa(r.Rejected429), itoa(r.TransportErrors),
			}
		}
		if err := writeCSV(dir, "cluster.csv", []string{
			"nodes", "requests", "requests_per_sec", "mutations", "mutations_per_sec",
			"errors_5xx", "rejected_429", "transport_errors",
		}, [][]string{row(doc.Cluster.SingleNode), row(doc.Cluster.ThreeNode)}); err != nil {
			return err
		}
	}
	return nil
}

// validate rejects documents that parsed but describe a vacuous or broken
// evaluation. Sections are optional (a partial rerun is fine); whatever is
// present must be internally sound.
func validate(doc *benchFile) []error {
	var errs []error
	bad := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	if doc.Schema != "" && doc.Schema != "parulel-bench/v1" {
		bad("suite: unknown schema %q", doc.Schema)
	}
	for _, r := range doc.Results {
		if r.WallNS <= 0 || r.Cycles <= 0 {
			bad("suite: %s/%s: zero wall time or cycles", r.Workload, r.Matcher)
		}
	}
	if doc.Eval != nil {
		if len(doc.Eval.Results) == 0 {
			bad("eval: no rows")
		}
		for _, r := range doc.Eval.Results {
			if r.InterpEvalNS <= 0 || r.BytecodeEvalNS <= 0 {
				bad("eval: %s: zero eval time", r.Workload)
			}
		}
	}
	if doc.Serve != nil {
		if doc.Serve.SingleOp.Requests <= 0 || doc.Serve.Batched.Requests <= 0 {
			bad("serve: zero requests")
		}
		if doc.Serve.SingleOp.Errors5xx > 0 || doc.Serve.Batched.Errors5xx > 0 {
			bad("serve: 5xx errors under load")
		}
	}
	if doc.Stream != nil {
		s := doc.Stream
		switch {
		case s.FactsStreamed <= 0:
			bad("stream: no facts streamed")
		case s.Expired <= 0:
			bad("stream: TTL eviction never fired")
		case s.PeakWM <= 0:
			bad("stream: peak WM unrecorded")
		case s.PeakWM >= s.FactsStreamed:
			bad("stream: WM not bounded (peak %d >= streamed %d)", s.PeakWM, s.FactsStreamed)
		}
	}
	if doc.Cluster != nil {
		if doc.Cluster.SingleNode.Requests <= 0 || doc.Cluster.ThreeNode.Requests <= 0 {
			bad("cluster: zero requests")
		}
		if doc.Cluster.ThreeNode.Errors5xx > 0 {
			bad("cluster: 5xx errors under load")
		}
	}
	return errs
}
