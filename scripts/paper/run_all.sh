#!/usr/bin/env bash
# Regenerate the full reconstructed evaluation (E1-E14) in one command.
#
#   bash scripts/paper/run_all.sh           # full sizes (minutes)
#   bash scripts/paper/run_all.sh -quick    # reduced sizes (seconds, smoke)
#
# Produces paper_runs/<utc-stamp>/ with:
#   json/BENCH_results.json   merged machine-readable document
#   csv/*.csv                 validated per-section tables
#   logs/*.txt                raw experiment-table output per grid entry
#
# The grid itself lives in scripts/paper/experiments.json; the runner and
# CSV generator/validator is the Go tool in scripts/paper/paperrun (no
# python or jq required). To re-derive CSVs from an existing document
# without rerunning anything:
#
#   go run ./scripts/paper/paperrun -in BENCH_after.json -out paper_runs/from-after
set -euo pipefail
cd "$(dirname "$0")/../.."

stamp=$(date -u +%Y-%m-%d_%H%M%S)
outdir="paper_runs/${stamp}"
mkdir -p "$outdir"

echo "==> building parbench"
go build -o "$outdir/parbench" ./cmd/parbench

echo "==> running grid into $outdir"
go run ./scripts/paper/paperrun \
  -grid scripts/paper/experiments.json \
  -parbench "$outdir/parbench" \
  -out "$outdir" \
  "$@"

echo "==> done: $outdir"
