#!/usr/bin/env bash
# Three-node cluster smoke test.
#
# Boots a real three-paruleld cluster on loopback, drives mixed load
# against every public endpoint, kills one node with SIGKILL mid-run, and
# proves the durability contract: every mutation the dead node ever
# acknowledged is still present on the node that takes over. A second,
# clean parload pass against the survivors must then run without a single
# 5xx or transport error.
#
# Usage: scripts/cluster_smoke.sh   (from the repo root; needs curl + jq)
set -euo pipefail

ROOT=$(mktemp -d)
BIN=$ROOT/bin
mkdir -p "$BIN" "$ROOT/n0" "$ROOT/n1" "$ROOT/n2"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  rm -rf "$ROOT"
}
trap cleanup EXIT

echo "cluster_smoke: building binaries"
go build -o "$BIN/paruleld" ./cmd/paruleld
go build -o "$BIN/parload" ./cmd/parload

PUB=(18470 18471 18472)
PEER=(17470 17471 17472)
PEERS="n0=127.0.0.1:${PEER[0]}=http://localhost:${PUB[0]},n1=127.0.0.1:${PEER[1]}=http://localhost:${PUB[1]},n2=127.0.0.1:${PEER[2]}=http://localhost:${PUB[2]}"

for i in 0 1 2; do
  "$BIN/paruleld" -addr "localhost:${PUB[$i]}" -data-dir "$ROOT/n$i" \
    -cluster-node "n$i" -cluster-peers "$PEERS" \
    -peer-addr "127.0.0.1:${PEER[$i]}" -quiet &
  PIDS[$i]=$!
done

for i in 0 1 2; do
  up=0
  for _ in $(seq 1 100); do
    if curl -sf "localhost:${PUB[$i]}/healthz" >/dev/null; then up=1; break; fi
    sleep 0.1
  done
  if [ "$up" != 1 ]; then echo "cluster_smoke: node n$i never came up" >&2; exit 1; fi
done
echo "cluster_smoke: 3 nodes up"

# Phase 0: distributed tracing through a proxy hop. A session minted on n0
# is owned by n0, so a run sent to n1 is proxied; the response echoes the
# trace id in X-Parulel-Trace, and the assembled /cluster/trace view
# (asked of n2, a third party) must contain spans from at least two nodes
# covering the full path: both ingresses, the proxy leg, the owner's WAL
# append, the replication ack, and the engine run.
TSESSION=$(curl -sf -X POST "localhost:${PUB[0]}/api/v1/sessions" \
  -d '{"source": "(literalize item k state)"}' | jq -r .id)
case "$TSESSION" in s-n0-*) ;; *) echo "cluster_smoke: trace session $TSESSION not owned by n0" >&2; exit 1;; esac
TRACE_HDR=$(curl -sf -D - -o /dev/null -X POST \
  "localhost:${PUB[1]}/api/v1/sessions/$TSESSION/run" -d '{}' \
  | tr -d '\r' | awk -F': ' 'tolower($1) == "x-parulel-trace" {print $2}')
TRACE_ID=$(echo "$TRACE_HDR" | cut -d- -f2)
if [ "${#TRACE_ID}" != 32 ]; then
  echo "cluster_smoke: bad trace header $TRACE_HDR from proxied run" >&2; exit 1
fi
TRACE_OK=0
for _ in $(seq 1 50); do
  ASSEMBLED=$(curl -sf "localhost:${PUB[2]}/cluster/trace/$TRACE_ID") || ASSEMBLED='{}'
  NODES=$(echo "$ASSEMBLED" | jq '.nodes | length')
  STAGES=$(echo "$ASSEMBLED" | jq -r '[.spans[].stage] | unique | join(",")')
  ok=1
  [ "$NODES" -ge 2 ] 2>/dev/null || ok=0
  for stage in ingress proxy wal.append repl.ack engine.run; do
    case ",$STAGES," in *",$stage,"*) ;; *) ok=0;; esac
  done
  if [ "$ok" = 1 ]; then TRACE_OK=1; break; fi
  sleep 0.1
done
if [ "$TRACE_OK" != 1 ]; then
  echo "cluster_smoke: FAIL: trace $TRACE_ID incomplete (nodes=$NODES stages=$STAGES)" >&2
  exit 1
fi
echo "cluster_smoke: trace $TRACE_ID assembled from $NODES nodes ($STAGES)"

# Phase 1: chaos load across every endpoint. No 5xx bound here — while the
# cluster converges on the kill below, proxies to the dead owner answer
# 502 by design; what must hold is that nothing acked is ever lost.
"$BIN/parload" -url "http://localhost:${PUB[0]},http://localhost:${PUB[1]},http://localhost:${PUB[2]}" \
  -d 8s -c 8 -sessions 6 -min-mutations-per-sec 20 \
  -out "$ROOT/chaos-report.json" &
LOAD_PID=$!

# A probe session created via n0 is owned by n0 (cluster session ids embed
# the minting node). Count exactly which asserts n0 acknowledges.
SESSION=$(curl -sf -X POST "localhost:${PUB[0]}/api/v1/sessions" \
  -d '{"source": "(literalize item k state)"}' | jq -r .id)
case "$SESSION" in s-n0-*) ;; *) echo "cluster_smoke: probe session $SESSION not owned by n0" >&2; exit 1;; esac

ACKED=0
for k in $(seq 1 60); do
  code=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
    "localhost:${PUB[0]}/api/v1/sessions/$SESSION/facts" \
    -d "{\"facts\": [{\"template\": \"item\", \"fields\": {\"k\": \"probe-$k\", \"state\": \"new\"}}]}") || code=000
  if [ "$code" = 200 ]; then ACKED=$((ACKED + 1)); fi
done
echo "cluster_smoke: probe session $SESSION, $ACKED acked facts on n0"
if [ "$ACKED" = 0 ]; then echo "cluster_smoke: no probe fact was acked" >&2; exit 1; fi

# Kill n0 mid-run — SIGKILL, no drain, no flush.
kill -9 "${PIDS[0]}"
wait "${PIDS[0]}" 2>/dev/null || true
PIDS=("${PIDS[@]:1}")
echo "cluster_smoke: killed n0 mid-load"

wait "$LOAD_PID"
echo "cluster_smoke: chaos load pass done"

# The probe session must fail over to its replica holder with every acked
# fact intact. Poll through a survivor while the membership converges.
TOTAL=-1
for _ in $(seq 1 100); do
  TOTAL=$(curl -sf "localhost:${PUB[1]}/api/v1/sessions/$SESSION/wm?template=item" | jq .total) || TOTAL=-1
  if [ "$TOTAL" != -1 ] && [ -n "$TOTAL" ]; then break; fi
  sleep 0.1
done
if [ "$TOTAL" != "$ACKED" ]; then
  echo "cluster_smoke: FAIL: $ACKED facts acked by n0, $TOTAL present after failover" >&2
  exit 1
fi
echo "cluster_smoke: all $ACKED acked facts survived the kill"

# Phase 2: clean pass against the survivors — the degraded cluster must
# serve without a single 5xx, backpressure rejection, or transport error.
"$BIN/parload" -url "http://localhost:${PUB[1]},http://localhost:${PUB[2]}" \
  -d 5s -c 8 -sessions 4 \
  -max-5xx 0 -max-429 0 -max-transport-errors 0 -min-mutations-per-sec 20 \
  -out "$ROOT/clean-report.json"

echo "cluster_smoke: PASS"
