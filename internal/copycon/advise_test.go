package copycon

import (
	"strings"
	"testing"

	"parulel/internal/compile"
	"parulel/internal/core"
	"parulel/internal/lang"
	"parulel/internal/workload"
)

func TestAdvisePicksJoinVariableOfHottestRule(t *testing.T) {
	prog := parseOK(t, `
(literalize order id region amount)
(literalize quote id region price)
(rule hot
  (order ^id <o> ^region <r> ^amount <a>)
  (quote ^id <q> ^region <r> ^price <p>)
-->
  (make order ^id <o>))
(rule cold
  (order ^id <o>)
-->
  (halt))
`)
	adv, err := Advise(prog, map[string]int{"hot": 5000, "cold": 3})
	if err != nil {
		t.Fatal(err)
	}
	if adv.Rule != "hot" {
		t.Errorf("rule = %q, want hot", adv.Rule)
	}
	// <r> spans both CEs; <o>, <a>, <q>, <p> span one.
	if adv.Variable != "r" {
		t.Errorf("variable = %q, want r (the join variable)", adv.Variable)
	}
	if adv.Activity != 5000 {
		t.Errorf("activity = %d", adv.Activity)
	}
	// The advice must be actionable.
	if _, err := Split(prog, adv.Rule, adv.Variable, 4); err != nil {
		t.Errorf("advised split failed: %v", err)
	}
}

func TestAdviseSkipsMetaReferencedRules(t *testing.T) {
	prog := parseOK(t, `
(literalize a x)
(rule guarded (a ^x <v>) --> (halt))
(rule free    (a ^x <w>) --> (halt))
(metarule m
  [<i> (guarded ^v <v1>)]
  [<j> (guarded ^v <v2>)]
  (test (precedes <i> <j>))
-->
  (redact <j>))
`)
	adv, err := Advise(prog, map[string]int{"guarded": 100, "free": 10})
	if err != nil {
		t.Fatal(err)
	}
	if adv.Rule != "free" {
		t.Errorf("rule = %q, want free (guarded is meta-referenced)", adv.Rule)
	}
}

func TestAdviseErrorsWhenNothingSplittable(t *testing.T) {
	prog := parseOK(t, `
(literalize a x)
(rule constant-only (a ^x 1) --> (halt))
`)
	if _, err := Advise(prog, map[string]int{"constant-only": 10}); err == nil {
		t.Error("rule binding no variable should not be advised")
	}
	if _, err := Advise(prog, nil); err == nil {
		t.Error("empty activity should error")
	}
	if _, err := Advise(prog, map[string]int{"ghost": 10}); err == nil {
		t.Error("activity for unknown rule should error")
	}
}

// TestAdviseEndToEnd: run the hot-rule workload, feed the measured
// activity back, and verify the advisor recommends the hot rule with a
// region-style variable.
func TestAdviseEndToEnd(t *testing.T) {
	ast, err := lang.Parse(workload.HotRuleProgram)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compile.Compile(ast)
	if err != nil {
		t.Fatal(err)
	}
	e := core.New(prog, core.Options{MaxCycles: 100})
	if err := workload.HotRuleFacts(e, 4, 6, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	adv, err := Advise(ast, e.RuleActivity())
	if err != nil {
		t.Fatal(err)
	}
	if adv.Rule != "assign" || adv.Variable != "r" {
		t.Errorf("advice = %+v, want assign on r", adv)
	}
	split, err := Split(ast, adv.Rule, adv.Variable, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(split.Rules) != 4 || !strings.HasPrefix(split.Rules[0].Name, "assign@") {
		t.Errorf("split rules: %v", split.Rules)
	}
}
