// Package copycon implements PARULEL's copy-and-constrain transformation
// (Stolfo & Ishida): a "hot" rule whose match work or firings dominate is
// replaced by k copies, each constrained to a disjoint hash partition of
// one of its variables:
//
//	(rule r@0 … (test (= (mod (hash <v>) k) 0)) --> …)
//	(rule r@1 … (test (= (mod (hash <v>) k) 1)) --> …)
//	…
//
// Because the added constraints partition the variable's value space, the
// union of the variants' instantiation sets equals the original rule's set
// and the variants are pairwise disjoint (a property test checks this).
// With the engine's round-robin rule partitioning, the variants land on
// different workers and a single hot rule's match and firings distribute —
// experiment E3 measures the resulting scaling.
package copycon

import (
	"fmt"

	"parulel/internal/lang"
	"parulel/internal/wm"
)

// Split returns a copy of the program in which the named rule is replaced
// by k hash-partitioned variants constrained on the rule variable varName.
// The variants are named name@0 … name@k-1 and occupy the original rule's
// position in declaration order.
//
// A rule referenced by a meta-rule cannot be split: the meta-rule's
// instantiation patterns name the original rule and would silently stop
// matching. Split reports this as an error rather than guessing.
func Split(prog *lang.Program, ruleName, varName string, k int) (*lang.Program, error) {
	if k < 1 {
		return nil, fmt.Errorf("copycon: split factor %d must be >= 1", k)
	}
	var target *lang.Rule
	for _, r := range prog.Rules {
		if r.Name == ruleName {
			target = r
			break
		}
	}
	if target == nil {
		return nil, fmt.Errorf("copycon: rule %q not found", ruleName)
	}
	for _, m := range prog.MetaRules {
		for _, p := range m.Patterns {
			if p.RuleName == ruleName {
				return nil, fmt.Errorf("copycon: rule %q is referenced by metarule %q and cannot be split", ruleName, m.Name)
			}
		}
	}
	if !bindsVariable(target, varName) {
		return nil, fmt.Errorf("copycon: rule %q does not bind variable <%s> in a positive element", ruleName, varName)
	}

	out := &lang.Program{
		Templates: prog.Templates,
		MetaRules: prog.MetaRules,
		Facts:     prog.Facts,
	}
	for _, r := range prog.Rules {
		if r != target {
			out.Rules = append(out.Rules, r)
			continue
		}
		for i := 0; i < k; i++ {
			out.Rules = append(out.Rules, variant(target, varName, k, i))
		}
	}
	return out, nil
}

// bindsVariable reports whether the rule binds varName in a positive
// pattern element with a bare variable occurrence (the kind the compiler
// accepts as a defining occurrence).
func bindsVariable(r *lang.Rule, varName string) bool {
	for _, ce := range r.LHS {
		if ce.Pattern == nil || ce.Negated {
			continue
		}
		for _, s := range ce.Pattern.Slots {
			if v, ok := s.Term.(lang.VarTerm); ok && v.Name == varName {
				return true
			}
		}
	}
	return false
}

// variant builds copy i of k: the original rule plus the partition test.
// AST nodes other than the LHS slice are shared — they are read-only after
// parsing.
func variant(r *lang.Rule, varName string, k, i int) *lang.Rule {
	constraint := &lang.CondElem{
		Pos: r.Pos,
		Test: &lang.CallExpr{
			Op: "=",
			Args: []lang.Expr{
				&lang.CallExpr{
					Op: "mod",
					Args: []lang.Expr{
						&lang.CallExpr{Op: "hash", Args: []lang.Expr{&lang.VarExpr{Name: varName}}},
						&lang.ConstExpr{Val: wm.Int(int64(k))},
					},
				},
				&lang.ConstExpr{Val: wm.Int(int64(i))},
			},
		},
	}
	lhs := make([]*lang.CondElem, 0, len(r.LHS)+1)
	lhs = append(lhs, r.LHS...)
	lhs = append(lhs, constraint)
	return &lang.Rule{
		Pos:  r.Pos,
		Name: fmt.Sprintf("%s@%d", r.Name, i),
		LHS:  lhs,
		RHS:  r.RHS,
	}
}
