package copycon

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"parulel/internal/compile"
	"parulel/internal/lang"
	"parulel/internal/match/rete"
	"parulel/internal/wm"
)

const hotRuleSrc = `
(literalize order id region amount)
(literalize quote id region price)
(rule hot
  (order ^id <o> ^region <r> ^amount <a>)
  (quote ^id <q> ^region <r> ^price (<= <a>))
-->
  (make order ^id <o>))
(rule other
  (order ^id <o>)
-->
  (halt))
`

func parseOK(t *testing.T, src string) *lang.Program {
	t.Helper()
	p, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSplitShapeAndNames(t *testing.T) {
	ast := parseOK(t, hotRuleSrc)
	out, err := Split(ast, "hot", "r", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rules) != 5 {
		t.Fatalf("rules = %d, want 5 (4 variants + other)", len(out.Rules))
	}
	for i := 0; i < 4; i++ {
		r := out.Rules[i]
		want := fmt.Sprintf("hot@%d", i)
		if r.Name != want {
			t.Errorf("rule %d name = %q, want %q", i, r.Name, want)
		}
		if len(r.LHS) != len(ast.Rules[0].LHS)+1 {
			t.Errorf("variant %d should gain exactly one test element", i)
		}
	}
	if out.Rules[4].Name != "other" {
		t.Errorf("untouched rule displaced: %q", out.Rules[4].Name)
	}
	// The transformed program must compile and print.
	if _, err := compile.Compile(out); err != nil {
		t.Fatalf("split program does not compile: %v", err)
	}
	printed := lang.Print(out)
	if !strings.Contains(printed, "hot@0") || !strings.Contains(printed, "(mod (hash <r>) 4)") {
		t.Errorf("printed form missing constraint:\n%s", printed)
	}
}

func TestSplitErrors(t *testing.T) {
	ast := parseOK(t, hotRuleSrc)
	if _, err := Split(ast, "ghost", "r", 2); err == nil {
		t.Error("unknown rule should fail")
	}
	if _, err := Split(ast, "hot", "zz", 2); err == nil {
		t.Error("unknown variable should fail")
	}
	if _, err := Split(ast, "hot", "r", 0); err == nil {
		t.Error("k=0 should fail")
	}
	withMeta := parseOK(t, hotRuleSrc+`
(metarule m [<i> (hot ^o <o>)] [<j> (hot ^o <o>)] (test (precedes <i> <j>)) --> (redact <j>))
`)
	if _, err := Split(withMeta, "hot", "r", 2); err == nil ||
		!strings.Contains(err.Error(), "metarule") {
		t.Errorf("split of meta-referenced rule: err = %v", err)
	}
}

// TestSplitPartitionsInstantiations is the partition property: for random
// working memories, the variants' instantiation sets are pairwise disjoint
// and their union equals the original rule's set (modulo the rule name in
// the key).
func TestSplitPartitionsInstantiations(t *testing.T) {
	ast := parseOK(t, hotRuleSrc)
	orig, err := compile.Compile(parseOK(t, hotRuleSrc))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 3, 8} {
		splitAST, err := Split(ast, "hot", "r", k)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := compile.Compile(splitAST)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(0); seed < 3; seed++ {
			rng := rand.New(rand.NewSource(seed))
			origNet := rete.New(orig.Rules[:1])
			var variants []*compile.Rule
			for _, r := range sp.Rules {
				if strings.HasPrefix(r.Name, "hot@") {
					variants = append(variants, r)
				}
			}
			splitNet := rete.New(variants)

			origMem := wm.NewMemory(orig.Schema)
			splitMem := wm.NewMemory(sp.Schema)
			for i := 0; i < 80; i++ {
				tmpl := "order"
				fields := map[string]wm.Value{
					"id":     wm.Int(int64(i)),
					"region": wm.Sym(fmt.Sprintf("reg%d", rng.Intn(6))),
					"amount": wm.Int(int64(rng.Intn(50))),
				}
				if rng.Intn(2) == 0 {
					tmpl = "quote"
					fields = map[string]wm.Value{
						"id":     wm.Int(int64(i)),
						"region": wm.Sym(fmt.Sprintf("reg%d", rng.Intn(6))),
						"price":  wm.Int(int64(rng.Intn(50))),
					}
				}
				ow, err := origMem.Insert(tmpl, fields)
				if err != nil {
					t.Fatal(err)
				}
				sw, err := splitMem.Insert(tmpl, fields)
				if err != nil {
					t.Fatal(err)
				}
				origNet.Apply(wm.Delta{Added: []*wm.WME{ow}})
				splitNet.Apply(wm.Delta{Added: []*wm.WME{sw}})
			}

			// Compare WME time-tag vectors (rule identity differs).
			vecOf := func(key string) string {
				_, rest, _ := strings.Cut(key, ":")
				return rest
			}
			origSet := make(map[string]bool)
			for _, in := range origNet.ConflictSet() {
				origSet[vecOf(in.KeyString())] = true
			}
			splitSet := make(map[string]bool)
			for _, in := range splitNet.ConflictSet() {
				v := vecOf(in.KeyString())
				if splitSet[v] {
					t.Fatalf("k=%d seed=%d: vector %s matched by two variants (not disjoint)", k, seed, v)
				}
				splitSet[v] = true
			}
			if len(origSet) != len(splitSet) {
				t.Fatalf("k=%d seed=%d: union size %d != original %d", k, seed, len(splitSet), len(origSet))
			}
			for v := range origSet {
				if !splitSet[v] {
					t.Fatalf("k=%d seed=%d: vector %s lost by split", k, seed, v)
				}
			}
		}
	}
}
