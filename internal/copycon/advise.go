package copycon

import (
	"fmt"
	"sort"

	"parulel/internal/lang"
)

// Advice is a copy-and-constrain recommendation.
type Advice struct {
	Rule     string // the hot rule to split
	Variable string // the variable to hash-partition on
	Activity int    // the rule's observed instantiation count
}

// Advise recommends which rule to split and on which variable, given the
// per-rule instantiation activity observed by an engine run
// (core.Engine.RuleActivity). It picks the most active rule that is
// splittable (binds at least one variable and is not referenced by a
// meta-rule) and, within it, the variable whose bare occurrences span the
// most positive condition elements — a join variable distributes the join
// work itself, not just the final instantiations.
//
// Advise returns an error when no observed rule is splittable.
func Advise(prog *lang.Program, activity map[string]int) (Advice, error) {
	metaReferenced := make(map[string]bool)
	for _, m := range prog.MetaRules {
		for _, p := range m.Patterns {
			metaReferenced[p.RuleName] = true
		}
	}
	// Consider rules by activity, descending; ties by name for
	// determinism.
	type cand struct {
		name  string
		count int
	}
	cands := make([]cand, 0, len(activity))
	for name, count := range activity {
		cands = append(cands, cand{name, count})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].count != cands[j].count {
			return cands[i].count > cands[j].count
		}
		return cands[i].name < cands[j].name
	})
	for _, c := range cands {
		if metaReferenced[c.name] {
			continue
		}
		rule := findRule(prog, c.name)
		if rule == nil {
			continue
		}
		v := bestVariable(rule)
		if v == "" {
			continue
		}
		return Advice{Rule: c.name, Variable: v, Activity: c.count}, nil
	}
	return Advice{}, fmt.Errorf("copycon: no splittable rule among the observed activity")
}

func findRule(prog *lang.Program, name string) *lang.Rule {
	for _, r := range prog.Rules {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// bestVariable returns the variable with bare occurrences in the most
// positive condition elements (ties broken by first occurrence in source
// order), or "" if the rule binds none.
func bestVariable(r *lang.Rule) string {
	ceCount := make(map[string]int)
	firstSeen := make(map[string]int)
	order := 0
	for _, ce := range r.LHS {
		if ce.Pattern == nil || ce.Negated {
			continue
		}
		seenHere := make(map[string]bool)
		for _, s := range ce.Pattern.Slots {
			v, ok := s.Term.(lang.VarTerm)
			if !ok || seenHere[v.Name] {
				continue
			}
			seenHere[v.Name] = true
			ceCount[v.Name]++
			if _, ok := firstSeen[v.Name]; !ok {
				firstSeen[v.Name] = order
				order++
			}
		}
	}
	best := ""
	for v := range ceCount {
		if best == "" {
			best = v
			continue
		}
		if ceCount[v] > ceCount[best] ||
			(ceCount[v] == ceCount[best] && firstSeen[v] < firstSeen[best]) {
			best = v
		}
	}
	return best
}
