// Package temporal drives a session's logical clock over a PARULEL
// engine: TTL'd facts expire a fixed number of ticks after the clock
// absorbs them, and sliding-window aggregates (count/sum/min/max over
// the last N ticks or last K facts of a template, per key) are
// maintained as ordinary working-memory elements that rules match with
// ordinary join tests.
//
// Everything the clock does is deterministic given the engine's mutation
// history: absorption scans templates in name order and facts in time-tag
// order, expiry retracts in ascending tag order through the engine's
// normal retraction path (so redaction and the matchers see expiry as
// they see any other removal), and aggregate WMEs are reconciled in
// sorted key order. A WAL replay that re-executes the same ticks against
// the same history therefore reproduces expiry and aggregate state
// bit-identically — expired facts stay expired.
package temporal

import (
	"fmt"
	"sort"

	"parulel/internal/compile"
	"parulel/internal/core"
	"parulel/internal/wm"
)

// trackedFact is one absorbed fact of a tracked source template.
type trackedFact struct {
	tag    int64
	born   int64 // tick at which the clock absorbed the fact
	expire int64 // tick at which it expires; 0 = never
}

// sourceState tracks the absorbed facts of one source template.
type sourceState struct {
	tmpl  *wm.Template
	ttl   int64 // template-default TTL in ticks; 0 = none
	high  int64 // highest absorbed time tag
	facts []trackedFact
}

// Manager is the temporal clock of one engine. It is not safe for
// concurrent use; callers serialize Tick with other engine mutations
// (the server holds the session slot).
type Manager struct {
	prog      *compile.Program
	eng       *core.Engine
	now       int64
	sources   map[string]*sourceState
	order     []string // source template names, sorted
	overrides map[int64]int64
	// aggTags mirrors the live aggregate WMEs per window: key value →
	// time tag. Rebuilt from working memory on restore.
	aggTags []map[wm.Value]int64
}

// New returns a clock for the engine. Programs without temporal
// declarations get a clock that merely counts ticks (per-fact TTL
// overrides can still attach templates dynamically).
func New(prog *compile.Program, eng *core.Engine) *Manager {
	m := &Manager{
		prog:      prog,
		eng:       eng,
		sources:   make(map[string]*sourceState),
		overrides: make(map[int64]int64),
	}
	if t := prog.Temporal; t != nil {
		for _, spec := range t.TTLs {
			m.source(spec.Tmpl).ttl = spec.Ticks
		}
		for _, spec := range t.Windows {
			m.source(spec.Source)
		}
		m.aggTags = make([]map[wm.Value]int64, len(t.Windows))
		for i := range m.aggTags {
			m.aggTags[i] = make(map[wm.Value]int64)
		}
	}
	return m
}

// source returns the tracking state for a template, creating it (and
// keeping the iteration order sorted) on first use.
func (m *Manager) source(t *wm.Template) *sourceState {
	if s, ok := m.sources[t.Name]; ok {
		return s
	}
	s := &sourceState{tmpl: t}
	m.sources[t.Name] = s
	i := sort.SearchStrings(m.order, t.Name)
	m.order = append(m.order, "")
	copy(m.order[i+1:], m.order[i:])
	m.order[i] = t.Name
	return s
}

// Now returns the current logical tick.
func (m *Manager) Now() int64 { return m.now }

// Tracked returns the number of currently tracked (absorbed, unexpired)
// facts across all source templates.
func (m *Manager) Tracked() int {
	n := 0
	for _, s := range m.sources {
		n += len(s.facts)
	}
	return n
}

// SetTTL overrides the lifetime of one asserted fact: it expires ttl
// ticks after the next tick absorbs it. The override wins over the
// template default; it is consumed at absorption. Facts of templates
// with no temporal declaration become tracked by this call.
func (m *Manager) SetTTL(w *wm.WME, ttl int64) {
	if ttl <= 0 {
		return
	}
	m.source(w.Tmpl)
	m.overrides[w.Time] = ttl
}

// TickResult reports what one tick did.
type TickResult struct {
	// Now is the clock value after the tick.
	Now int64
	// Expired counts facts retracted by this tick.
	Expired int
	// AggChanged counts window aggregate WMEs inserted or retracted.
	AggChanged int
}

// Tick advances the clock by one: newly arrived facts of tracked
// templates are absorbed (born this tick, expiry stamped from the
// per-fact override or the template default), due facts are retracted
// through the engine in ascending tag order, and window aggregates are
// refreshed. The retractions and insertions land in the engine's
// pending delta; the next run's match phase sees them like any other
// mutation.
func (m *Manager) Tick() TickResult {
	m.now++
	mem := m.eng.Memory()

	// Absorb: templates in name order, facts in tag order.
	for _, name := range m.order {
		s := m.sources[name]
		for _, w := range mem.OfTemplate(name) {
			if w.Time <= s.high {
				continue
			}
			ttl := s.ttl
			if o, ok := m.overrides[w.Time]; ok {
				ttl = o
				delete(m.overrides, w.Time)
			}
			exp := int64(0)
			if ttl > 0 {
				exp = m.now + ttl
			}
			s.facts = append(s.facts, trackedFact{tag: w.Time, born: m.now, expire: exp})
			s.high = w.Time
		}
	}

	// Expire: prune facts rules have already removed, collect due tags,
	// retract ascending.
	var due []int64
	for _, name := range m.order {
		s := m.sources[name]
		kept := s.facts[:0]
		for _, f := range s.facts {
			if _, live := mem.Get(f.tag); !live {
				continue
			}
			if f.expire > 0 && f.expire <= m.now {
				due = append(due, f.tag)
				continue
			}
			kept = append(kept, f)
		}
		s.facts = kept
	}
	expired := m.eng.RetractBatch(due)

	changed := 0
	if t := m.prog.Temporal; t != nil {
		for i, spec := range t.Windows {
			changed += m.refreshWindow(&spec, m.aggTags[i])
		}
	}
	return TickResult{Now: m.now, Expired: expired, AggChanged: changed}
}

// agg accumulates one key's window aggregate.
type agg struct {
	count int64
	sumI  int64
	sumF  float64
	float bool
	any   bool
	min   wm.Value
	max   wm.Value
}

func (a *agg) add(v wm.Value) {
	if !v.IsNumeric() {
		return
	}
	if v.Kind == wm.KindFloat {
		if !a.float {
			a.float = true
			a.sumF = float64(a.sumI)
		}
	}
	if a.float {
		a.sumF += v.AsFloat()
	} else {
		a.sumI += v.I
	}
	if !a.any {
		a.any = true
		a.min, a.max = v, v
		return
	}
	if v.AsFloat() < a.min.AsFloat() {
		a.min = v
	}
	if v.AsFloat() > a.max.AsFloat() {
		a.max = v
	}
}

func (a *agg) sum() wm.Value {
	if !a.any {
		return wm.Nil()
	}
	if a.float {
		return wm.Float(a.sumF)
	}
	return wm.Int(a.sumI)
}

// refreshWindow recomputes one window's per-key aggregates and
// reconciles them with the live aggregate WMEs: unchanged keys are left
// alone (no WM churn at quiescence), changed keys are retract+insert,
// vanished keys are retracted. Keys are visited in sorted value order.
func (m *Manager) refreshWindow(spec *compile.WindowSpec, cur map[wm.Value]int64) int {
	mem := m.eng.Memory()
	s := m.sources[spec.Source.Name]

	aggs := make(map[wm.Value]*agg)
	var keys []wm.Value
	visit := func(f trackedFact) {
		w, ok := mem.Get(f.tag)
		if !ok {
			return
		}
		key := w.Fields[spec.KeyField]
		a := aggs[key]
		if a == nil {
			a = &agg{}
			aggs[key] = a
			keys = append(keys, key)
		}
		a.count++
		if spec.ValField >= 0 {
			a.add(w.Fields[spec.ValField])
		}
	}
	if spec.Ticks > 0 {
		floor := m.now - spec.Ticks
		for _, f := range s.facts {
			if f.born > floor {
				visit(f)
			}
		}
	} else {
		// Last-K per key: count occurrences per key first, then visit
		// only each key's trailing K facts (s.facts is tag-ascending).
		total := make(map[wm.Value]int64)
		for _, f := range s.facts {
			if w, ok := mem.Get(f.tag); ok {
				total[w.Fields[spec.KeyField]]++
			}
		}
		seen := make(map[wm.Value]int64)
		for _, f := range s.facts {
			w, ok := mem.Get(f.tag)
			if !ok {
				continue
			}
			key := w.Fields[spec.KeyField]
			seen[key]++
			if seen[key] > total[key]-spec.Last {
				visit(f)
			}
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Compare(keys[j]) < 0 })

	changed := 0
	for _, key := range keys {
		a := aggs[key]
		fields := []wm.Value{key, wm.Int(a.count), a.sum(), a.min, a.max}
		if tag, ok := cur[key]; ok {
			if w, live := mem.Get(tag); live {
				if fieldsEqual(w.Fields, fields) {
					continue
				}
				m.eng.Retract(tag)
				changed++
			}
			delete(cur, key)
		}
		cur[key] = m.eng.InsertFields(spec.Agg, fields).Time
		changed++
	}
	if len(cur) > len(keys) {
		stale := make([]wm.Value, 0, len(cur)-len(keys))
		for key := range cur {
			if aggs[key] == nil {
				stale = append(stale, key)
			}
		}
		sort.Slice(stale, func(i, j int) bool { return stale[i].Compare(stale[j]) < 0 })
		for _, key := range stale {
			if tag := cur[key]; m.eng.Retract(tag) {
				changed++
			}
			delete(cur, key)
		}
	}
	return changed
}

func fieldsEqual(a, b []wm.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ---- checkpoint state ----

// State is the clock's checkpointable image. Field order and slice
// ordering are deterministic (sources and overrides sorted, facts in
// absorption order), so identical clock states serialize to identical
// bytes — the checkpoint layer depends on that for byte-identical
// snapshots across kill and restart.
type State struct {
	Now       int64         `json:"now"`
	Sources   []SourceState `json:"sources,omitempty"`
	Overrides []Override    `json:"overrides,omitempty"`
}

// SourceState is the tracking state of one source template.
type SourceState struct {
	Tmpl  string      `json:"tmpl"`
	High  int64       `json:"high,omitempty"`
	Facts []FactState `json:"facts,omitempty"`
}

// FactState is one tracked fact.
type FactState struct {
	Tag    int64 `json:"tag"`
	Born   int64 `json:"born"`
	Expire int64 `json:"expire,omitempty"`
}

// Override is a pending per-fact TTL override (asserted, not yet
// absorbed).
type Override struct {
	Tag int64 `json:"tag"`
	TTL int64 `json:"ttl"`
}

// State exports the clock for a checkpoint header.
func (m *Manager) State() *State {
	if m.now == 0 && len(m.sources) == 0 && len(m.overrides) == 0 {
		return nil
	}
	st := &State{Now: m.now}
	for _, name := range m.order {
		s := m.sources[name]
		ss := SourceState{Tmpl: name, High: s.high}
		for _, f := range s.facts {
			ss.Facts = append(ss.Facts, FactState{Tag: f.tag, Born: f.born, Expire: f.expire})
		}
		st.Sources = append(st.Sources, ss)
	}
	for tag, ttl := range m.overrides {
		st.Overrides = append(st.Overrides, Override{Tag: tag, TTL: ttl})
	}
	sort.Slice(st.Overrides, func(i, j int) bool { return st.Overrides[i].Tag < st.Overrides[j].Tag })
	return st
}

// RestoreState reloads a checkpointed clock image and rebuilds the
// aggregate-tag mirror from the restored working memory. It must run
// after the engine's WMEs are restored and before any WAL tail replay.
func (m *Manager) RestoreState(st *State) error {
	if st == nil {
		return nil
	}
	m.now = st.Now
	for _, ss := range st.Sources {
		tmpl, ok := m.prog.Schema.Lookup(ss.Tmpl)
		if !ok {
			return fmt.Errorf("temporal: restore of unknown template %q", ss.Tmpl)
		}
		s := m.source(tmpl)
		s.high = ss.High
		s.facts = s.facts[:0]
		for _, f := range ss.Facts {
			s.facts = append(s.facts, trackedFact{tag: f.Tag, born: f.Born, expire: f.Expire})
		}
	}
	for _, o := range st.Overrides {
		m.overrides[o.Tag] = o.TTL
	}
	if t := m.prog.Temporal; t != nil {
		mem := m.eng.Memory()
		for i, spec := range t.Windows {
			for _, w := range mem.OfTemplate(spec.Agg.Name) {
				m.aggTags[i][w.Fields[0]] = w.Time
			}
		}
	}
	return nil
}
