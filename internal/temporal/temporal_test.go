package temporal

import (
	"encoding/json"
	"testing"

	"parulel/internal/compile"
	"parulel/internal/core"
	"parulel/internal/wm"
)

func newEngine(t *testing.T, src string) (*compile.Program, *core.Engine, *Manager) {
	t.Helper()
	prog, err := compile.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.New(prog, core.Options{Workers: 1, MaxCycles: 1 << 16})
	return prog, eng, New(prog, eng)
}

func insert(t *testing.T, e *core.Engine, tmpl string, fields map[string]wm.Value) *wm.WME {
	t.Helper()
	w, err := e.Insert(tmpl, fields)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

const ttlSrc = `
(literalize ev k)
(literalize keep k)
(ttl ev 2)
`

// TestTTLExpiry: facts of a TTL'd template are absorbed at the next tick
// and retracted exactly TTL ticks later; untracked templates are never
// touched.
func TestTTLExpiry(t *testing.T) {
	_, eng, m := newEngine(t, ttlSrc)
	insert(t, eng, "ev", map[string]wm.Value{"k": wm.Sym("a")})
	insert(t, eng, "ev", map[string]wm.Value{"k": wm.Sym("b")})
	insert(t, eng, "keep", map[string]wm.Value{"k": wm.Sym("c")})

	if res := m.Tick(); res.Now != 1 || res.Expired != 0 {
		t.Fatalf("tick 1: %+v", res)
	}
	if m.Tracked() != 2 {
		t.Fatalf("tracked %d after absorption, want 2", m.Tracked())
	}
	if res := m.Tick(); res.Expired != 0 {
		t.Fatalf("tick 2 expired %d, want 0 (ttl 2: due at tick 3)", res.Expired)
	}
	res := m.Tick()
	if res.Now != 3 || res.Expired != 2 {
		t.Fatalf("tick 3: %+v, want Now 3 Expired 2", res)
	}
	if got := len(eng.Memory().OfTemplate("ev")); got != 0 {
		t.Fatalf("%d ev facts survive expiry", got)
	}
	if got := len(eng.Memory().OfTemplate("keep")); got != 1 {
		t.Fatalf("keep fact count %d, want 1", got)
	}
	if m.Tracked() != 0 {
		t.Fatalf("tracked %d after expiry, want 0", m.Tracked())
	}
}

// TestSetTTLOverride: a per-fact override beats the template default and
// attaches templates with no temporal declaration.
func TestSetTTLOverride(t *testing.T) {
	_, eng, m := newEngine(t, ttlSrc)
	short := insert(t, eng, "ev", map[string]wm.Value{"k": wm.Sym("short")})
	m.SetTTL(short, 1)
	insert(t, eng, "ev", map[string]wm.Value{"k": wm.Sym("deflt")})
	adopted := insert(t, eng, "keep", map[string]wm.Value{"k": wm.Sym("adopted")})
	m.SetTTL(adopted, 3)

	m.Tick() // absorb: short expires at 2, deflt at 3, adopted at 4
	if res := m.Tick(); res.Expired != 1 {
		t.Fatalf("tick 2 expired %d, want 1 (override)", res.Expired)
	}
	if res := m.Tick(); res.Expired != 1 {
		t.Fatalf("tick 3 expired %d, want 1 (template default)", res.Expired)
	}
	if res := m.Tick(); res.Expired != 1 {
		t.Fatalf("tick 4 expired %d, want 1 (adopted template)", res.Expired)
	}
	if eng.Memory().Len() != 0 {
		t.Fatalf("%d facts survive", eng.Memory().Len())
	}
}

const winTicksSrc = `
(literalize ev k v)
(window win ev ^key k ^ticks 3 ^val v)
`

// winFacts indexes the live aggregate WMEs of a window by key symbol.
func winFacts(t *testing.T, eng *core.Engine, name string) map[string]*wm.WME {
	t.Helper()
	out := map[string]*wm.WME{}
	for _, w := range eng.Memory().OfTemplate(name) {
		out[w.Fields[0].S] = w
	}
	return out
}

// TestWindowTicks: a ticks window aggregates count/sum/min/max per key
// over the last N ticks, drops facts that age out of the horizon, leaves
// unchanged keys' WMEs untouched, and retracts vanished keys.
func TestWindowTicks(t *testing.T) {
	_, eng, m := newEngine(t, winTicksSrc)
	insert(t, eng, "ev", map[string]wm.Value{"k": wm.Sym("a"), "v": wm.Int(5)})
	m.Tick() // born 1
	wins := winFacts(t, eng, "win")
	a := wins["a"]
	if a == nil || a.Fields[1] != wm.Int(1) || a.Fields[2] != wm.Int(5) || a.Fields[3] != wm.Int(5) || a.Fields[4] != wm.Int(5) {
		t.Fatalf("win a after tick 1: %v", a)
	}

	insert(t, eng, "ev", map[string]wm.Value{"k": wm.Sym("a"), "v": wm.Int(7)})
	insert(t, eng, "ev", map[string]wm.Value{"k": wm.Sym("b"), "v": wm.Int(2)})
	m.Tick() // born 2
	wins = winFacts(t, eng, "win")
	a, b := wins["a"], wins["b"]
	if a == nil || a.Fields[1] != wm.Int(2) || a.Fields[2] != wm.Int(12) || a.Fields[3] != wm.Int(5) || a.Fields[4] != wm.Int(7) {
		t.Fatalf("win a after tick 2: %v", a)
	}
	if b == nil || b.Fields[1] != wm.Int(1) || b.Fields[2] != wm.Int(2) {
		t.Fatalf("win b after tick 2: %v", b)
	}

	// Tick 3: everything still inside the 3-tick horizon — the aggregate
	// WMEs must not churn (same time tags).
	if res := m.Tick(); res.AggChanged != 0 {
		t.Fatalf("tick 3 changed %d aggregates, want 0", res.AggChanged)
	}
	wins = winFacts(t, eng, "win")
	if wins["a"].Time != a.Time || wins["b"].Time != b.Time {
		t.Fatal("unchanged window aggregates were reinserted")
	}

	// Tick 4: the born-1 fact (a,5) ages out → a shrinks to the born-2
	// fact. Tick 5: born-2 facts age out → both keys vanish.
	m.Tick()
	wins = winFacts(t, eng, "win")
	a = wins["a"]
	if a == nil || a.Fields[1] != wm.Int(1) || a.Fields[2] != wm.Int(7) || a.Fields[3] != wm.Int(7) {
		t.Fatalf("win a after tick 4: %v", a)
	}
	m.Tick()
	if got := len(eng.Memory().OfTemplate("win")); got != 0 {
		t.Fatalf("%d window aggregates survive an empty horizon", got)
	}
}

const winLastSrc = `
(literalize ev k v)
(window win ev ^key k ^last 2 ^val v)
`

// TestWindowLastK: a last-K window keeps each key's trailing K facts
// regardless of age.
func TestWindowLastK(t *testing.T) {
	_, eng, m := newEngine(t, winLastSrc)
	for i, v := range []int64{10, 20, 30} {
		insert(t, eng, "ev", map[string]wm.Value{"k": wm.Sym("a"), "v": wm.Int(v)})
		m.Tick()
		wins := winFacts(t, eng, "win")
		a := wins["a"]
		if a == nil {
			t.Fatalf("tick %d: no aggregate", i+1)
		}
		wantCount := int64(i + 1)
		if wantCount > 2 {
			wantCount = 2
		}
		if a.Fields[1] != wm.Int(wantCount) {
			t.Fatalf("tick %d: count %v, want %d", i+1, a.Fields[1], wantCount)
		}
	}
	// After 10,20,30 the trailing two are 20,30: sum 50, min 20, max 30.
	a := winFacts(t, eng, "win")["a"]
	if a.Fields[2] != wm.Int(50) || a.Fields[3] != wm.Int(20) || a.Fields[4] != wm.Int(30) {
		t.Fatalf("last-2 aggregate: %v", a)
	}
	// Old facts never age out of a last-K window on their own.
	for i := 0; i < 5; i++ {
		m.Tick()
	}
	if got := winFacts(t, eng, "win")["a"]; got == nil || got.Fields[1] != wm.Int(2) {
		t.Fatalf("last-K window decayed with time: %v", got)
	}
}

const stateSrc = `
(literalize ev k v)
(literalize keep k)
(ttl ev 50)
(window win ev ^key k ^ticks 100 ^val v)
`

// TestStateRoundTrip: the exported clock state is deterministic, and a
// fresh manager restored from it is indistinguishable — same serialized
// state, and its next tick re-derives the same aggregates without churn
// (proving the aggregate-tag mirror was rebuilt from working memory).
func TestStateRoundTrip(t *testing.T) {
	prog, eng, m := newEngine(t, stateSrc)
	insert(t, eng, "ev", map[string]wm.Value{"k": wm.Sym("a"), "v": wm.Int(3)})
	insert(t, eng, "ev", map[string]wm.Value{"k": wm.Sym("b"), "v": wm.Int(4)})
	m.Tick()
	insert(t, eng, "ev", map[string]wm.Value{"k": wm.Sym("a"), "v": wm.Int(9)})
	m.Tick()
	pending := insert(t, eng, "keep", map[string]wm.Value{"k": wm.Sym("p")})
	m.SetTTL(pending, 7) // unabsorbed override must survive the round trip

	st := m.State()
	j1, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := json.Marshal(m.State())
	if string(j1) != string(j2) {
		t.Fatalf("state serialization not deterministic:\n%s\n%s", j1, j2)
	}

	var decoded State
	if err := json.Unmarshal(j1, &decoded); err != nil {
		t.Fatal(err)
	}
	m2 := New(prog, eng)
	if err := m2.RestoreState(&decoded); err != nil {
		t.Fatal(err)
	}
	if m2.Now() != m.Now() || m2.Tracked() != m.Tracked() {
		t.Fatalf("restored clock: now %d tracked %d, want now %d tracked %d",
			m2.Now(), m2.Tracked(), m.Now(), m.Tracked())
	}
	j3, _ := json.Marshal(m2.State())
	if string(j3) != string(j1) {
		t.Fatalf("restored state differs:\n got %s\nwant %s", j3, j1)
	}

	// The restored manager's aggregate mirror must recognize the live
	// aggregate WMEs: a tick that changes nothing within the horizon may
	// absorb the pending fact but must not reinsert unchanged aggregates.
	before := winFacts(t, eng, "win")
	res := m2.Tick()
	if res.AggChanged != 0 {
		t.Fatalf("post-restore tick changed %d aggregates, want 0", res.AggChanged)
	}
	after := winFacts(t, eng, "win")
	for k, w := range before {
		if after[k] == nil || after[k].Time != w.Time {
			t.Fatalf("aggregate %q churned after restore", k)
		}
	}
	if m2.Tracked() != 4 {
		t.Fatalf("tracked %d after absorbing the pending override, want 4", m2.Tracked())
	}
}

// TestRestoreUnknownTemplate: restoring state that names a template the
// program does not declare is an error, not a silent drop.
func TestRestoreUnknownTemplate(t *testing.T) {
	prog, eng, _ := newEngine(t, ttlSrc)
	m := New(prog, eng)
	err := m.RestoreState(&State{Now: 3, Sources: []SourceState{{Tmpl: "ghost"}}})
	if err == nil {
		t.Fatal("restore of unknown template succeeded")
	}
}
