// Package checkpoint persists a full session state image — working
// memory plus the engine's replayable counters — so recovery can load
// the newest checkpoint and replay only the write-ahead-log tail behind
// it, instead of the session's whole history.
//
// The format layers on the snapshot package: the working memory is the
// standard `(wm …)` block (human-readable, concatenable with a program
// file and runnable by cmd/parulel), preceded by one JSON header line
// carrying what the snapshot syntax cannot express — the WAL sequence
// point, the program identity, the engine counters, the exact time tag
// of every fact (in snapshot order), and the refraction keys. The whole
// body is covered by a CRC32 in the first line; a checkpoint that fails
// its checksum is ignored and recovery falls back to the log.
package checkpoint

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"strconv"
	"strings"

	"parulel/internal/core"
	"parulel/internal/match"
	"parulel/internal/snapshot"
	"parulel/internal/temporal"
	"parulel/internal/wm"
)

// magic is the first token of a checkpoint file; v1 is the only version.
const magic = "parulel-checkpoint"

// Header carries everything a checkpoint records beyond the fact values.
type Header struct {
	// Seq is the WAL sequence number of the last record folded into this
	// checkpoint; recovery replays only records with larger sequence
	// numbers.
	Seq uint64 `json:"seq"`

	// Program identity, sufficient to rebuild the engine.
	Program   string `json:"program"`
	Source    string `json:"source"`
	Workers   int    `json:"workers"`
	Matcher   string `json:"matcher"`
	MaxCycles int    `json:"max_cycles"`
	CreatedNS int64  `json:"created_ns,omitempty"`

	// Runs is the session's cumulative run-request count.
	Runs int `json:"runs"`

	// Counters is the engine's replayable counter state.
	Counters core.Counters `json:"counters"`

	// Tags holds the time tag of each fact in the `(wm …)` body, in body
	// order (snapshot order is ascending time, so Tags is sorted).
	Tags []int64 `json:"tags"`

	// Fired is the refraction set: keys of instantiations that fired and
	// are still in the conflict set.
	Fired []match.Key `json:"fired,omitempty"`

	// Temporal is the temporal clock's state (nil for sessions that have
	// never ticked and track nothing). Its serialization is deterministic,
	// preserving the byte-identical-snapshot property.
	Temporal *temporal.State `json:"temporal,omitempty"`

	// Ledger commits the session's Merkle ledger as of this checkpoint
	// (nil when the ledger is disabled or the checkpoint predates it).
	// The whole header is CRC-framed, so the committed root is itself
	// tamper-evident; chaining through Prev ties every checkpoint to the
	// one before it.
	Ledger *LedgerCommit `json:"ledger,omitempty"`
}

// LedgerCommit pins the Merkle ledger state a checkpoint vouches for:
// the root (and resumable peak decomposition) over the first Count WAL
// frames the session ever appended, plus the previous checkpoint's
// commit so an auditor can walk the chain. The hex digests and peak
// semantics are defined in internal/wal (RFC 6962 hashing).
type LedgerCommit struct {
	Count     uint64   `json:"count"`
	Root      string   `json:"root"`
	Peaks     []string `json:"peaks,omitempty"`
	PrevCount uint64   `json:"prev_count,omitempty"`
	PrevRoot  string   `json:"prev_root,omitempty"`
}

// Fact is one restored working-memory element, paired by index with
// Header.Tags.
type Fact struct {
	Template string
	Fields   map[string]wm.Value
}

// Write renders a checkpoint of mem under the given header. The caller
// fills every header field except Tags, which Write derives from mem so
// it cannot fall out of step with the body.
func Write(w io.Writer, h Header, mem *wm.Memory) error {
	if err := mem.CheckTagInvariant(); err != nil {
		return fmt.Errorf("checkpoint: refusing to snapshot: %w", err)
	}
	snap := mem.Snapshot()
	h.Tags = make([]int64, len(snap))
	for i, el := range snap {
		h.Tags[i] = el.Time
	}
	var body bytes.Buffer
	hdr, err := json.Marshal(&h)
	if err != nil {
		return fmt.Errorf("checkpoint: encoding header: %w", err)
	}
	body.Write(hdr)
	body.WriteByte('\n')
	if err := snapshot.Write(&body, mem); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if _, err := fmt.Fprintf(w, "%s v1 %d %d\n", magic, crc32.ChecksumIEEE(body.Bytes()), body.Len()); err != nil {
		return err
	}
	_, err = w.Write(body.Bytes())
	return err
}

// collector implements snapshot.Inserter by recording facts instead of
// inserting them; restore assigns the checkpointed tags afterwards.
type collector struct{ facts []Fact }

func (c *collector) Insert(template string, fields map[string]wm.Value) (*wm.WME, error) {
	c.facts = append(c.facts, Fact{Template: template, Fields: fields})
	return nil, nil
}

// Read parses and verifies a checkpoint. Any framing, checksum, syntax
// or consistency failure is an error; the caller decides whether to fall
// back to log-only recovery.
func Read(r io.Reader) (Header, []Fact, error) {
	var h Header
	br := bufio.NewReader(r)
	line, err := br.ReadString('\n')
	if err != nil {
		return h, nil, fmt.Errorf("checkpoint: reading frame line: %w", err)
	}
	parts := strings.Fields(strings.TrimSuffix(line, "\n"))
	if len(parts) != 4 || parts[0] != magic || parts[1] != "v1" {
		return h, nil, fmt.Errorf("checkpoint: bad frame line %q", strings.TrimSpace(line))
	}
	sum, err := strconv.ParseUint(parts[2], 10, 32)
	if err != nil {
		return h, nil, fmt.Errorf("checkpoint: bad checksum field: %w", err)
	}
	n, err := strconv.ParseInt(parts[3], 10, 64)
	if err != nil || n < 0 || n > 1<<32 {
		return h, nil, fmt.Errorf("checkpoint: bad length field %q", parts[3])
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(br, body); err != nil {
		return h, nil, fmt.Errorf("checkpoint: truncated body: %w", err)
	}
	if crc32.ChecksumIEEE(body) != uint32(sum) {
		return h, nil, fmt.Errorf("checkpoint: checksum mismatch")
	}
	nl := bytes.IndexByte(body, '\n')
	if nl < 0 {
		return h, nil, fmt.Errorf("checkpoint: missing header line")
	}
	if err := json.Unmarshal(body[:nl], &h); err != nil {
		return h, nil, fmt.Errorf("checkpoint: decoding header: %w", err)
	}
	var c collector
	if _, err := snapshot.Read(bytes.NewReader(body[nl+1:]), &c); err != nil {
		return h, nil, err
	}
	if len(c.facts) != len(h.Tags) {
		return h, nil, fmt.Errorf("checkpoint: %d facts but %d tags", len(c.facts), len(h.Tags))
	}
	return h, c.facts, nil
}

// Restore rebuilds an engine from a parsed checkpoint: a fresh engine
// over prog (built with Options.NoInitialFacts), facts reinstated under
// their checkpointed tags, then refraction keys and counters.
func Restore(e *core.Engine, h Header, facts []Fact) error {
	for i, f := range facts {
		if _, err := e.RestoreWME(f.Template, f.Fields, h.Tags[i]); err != nil {
			return fmt.Errorf("checkpoint: fact %d: %w", i, err)
		}
	}
	e.RestoreFired(h.Fired)
	e.RestoreCounters(h.Counters)
	return nil
}
