package checkpoint

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzCheckpointRead: recovery parses checkpoint files straight off disk;
// arbitrary bytes must produce an error or a consistent (header, facts)
// pair, never a panic.
func FuzzCheckpointRead(f *testing.F) {
	f.Add("")
	f.Add("parulel-checkpoint v1 0 0\n")
	f.Add("parulel-checkpoint v1 999 3\nabc")
	f.Add("parulel-checkpoint v1 2851444033 18\n{\"tags\":[]}\n(wm\n)\n")
	f.Add("parulel-checkpoint v1 -1 -1\n")
	f.Add(strings.Repeat("(", 500))
	// A genuine checkpoint as a seed.
	e := buildEngine(f, 3)
	var buf bytes.Buffer
	if err := Write(&buf, Header{Program: "p", Source: src, Counters: e.Counters()}, e.Memory()); err == nil {
		f.Add(buf.String())
	}

	f.Fuzz(func(t *testing.T, data string) {
		h, facts, err := Read(strings.NewReader(data))
		if err != nil {
			return
		}
		if len(facts) != len(h.Tags) {
			t.Fatalf("accepted checkpoint with %d facts but %d tags", len(facts), len(h.Tags))
		}
	})
}
