package checkpoint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"strings"
	"testing"

	"parulel/internal/compile"
	"parulel/internal/core"
	"parulel/internal/snapshot"
	"parulel/internal/wm"
)

const src = `
(literalize job  n state)
(literalize done n)
(rule start
  <j> <- (job ^n <n> ^state ready)
-->
  (modify <j> ^state running)
  (make done ^n <n>))
(rule observe
  (job ^n <n> ^state running)
-->
  (make done ^n (+ <n> 100)))
`

func buildEngine(t testing.TB, jobs int) *core.Engine {
	t.Helper()
	prog, err := compile.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	e := core.New(prog, core.Options{Workers: 2})
	for i := 0; i < jobs; i++ {
		if _, err := e.Insert("job", map[string]wm.Value{"n": wm.Int(int64(i)), "state": wm.Sym("ready")}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestWriteReadRestoreRoundTrip(t *testing.T) {
	e := buildEngine(t, 5)
	h := Header{
		Seq: 42, Program: "test", Source: src, Workers: 2, Matcher: "rete",
		MaxCycles: 1000, Runs: 3, Counters: e.Counters(), Fired: e.FiredKeys(),
	}
	var buf bytes.Buffer
	if err := Write(&buf, h, e.Memory()); err != nil {
		t.Fatal(err)
	}

	h2, facts, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if h2.Seq != 42 || h2.Program != "test" || h2.Runs != 3 || h2.Counters != e.Counters() {
		t.Fatalf("header mismatch: %+v", h2)
	}
	if len(facts) != e.Memory().Len() || len(h2.Tags) != len(facts) {
		t.Fatalf("got %d facts / %d tags, want %d", len(facts), len(h2.Tags), e.Memory().Len())
	}
	if len(h2.Fired) == 0 {
		t.Fatal("no refraction keys captured")
	}

	prog, err := compile.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	restored := core.New(prog, core.Options{Workers: 2, NoInitialFacts: true})
	if err := Restore(restored, h2, facts); err != nil {
		t.Fatal(err)
	}
	// Byte-identical snapshots (same facts, same tag order, same values).
	var a, b bytes.Buffer
	if err := snapshot.Write(&a, e.Memory()); err != nil {
		t.Fatal(err)
	}
	if err := snapshot.Write(&b, restored.Memory()); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("snapshots differ:\n%s\nvs\n%s", a.String(), b.String())
	}
	// The restored engine is quiescent: every surviving instantiation
	// already fired before the checkpoint.
	res, err := restored.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != e.Counters().Cycles || res.Firings != e.Counters().Firings {
		t.Fatalf("restored engine did extra work: %+v vs %+v", res, e.Counters())
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	e := buildEngine(t, 3)
	var buf bytes.Buffer
	if err := Write(&buf, Header{Program: "p", Source: src}, e.Memory()); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	cases := map[string]string{
		"empty":          "",
		"bad magic":      "not-a-checkpoint v1 1 2\nxx",
		"bad version":    strings.Replace(good, " v1 ", " v9 ", 1),
		"flipped byte":   good[:len(good)-5] + string(good[len(good)-5]^0x20) + good[len(good)-4:],
		"truncated body": good[:len(good)/2],
		"missing header": "parulel-checkpoint v1 0 0\n",
	}
	for name, data := range cases {
		if _, _, err := Read(strings.NewReader(data)); err == nil {
			t.Errorf("%s: corrupt checkpoint accepted", name)
		}
	}
}

func TestReadRejectsTagMismatch(t *testing.T) {
	e := buildEngine(t, 2)
	h := Header{Program: "p", Source: src, Counters: e.Counters()}
	var buf bytes.Buffer
	if err := Write(&buf, h, e.Memory()); err != nil {
		t.Fatal(err)
	}
	// Re-frame a body whose header claims one tag too many.
	full := buf.String()
	nl := strings.IndexByte(full, '\n')
	body := full[nl+1:]
	bodyNL := strings.IndexByte(body, '\n')
	var h2 Header
	hdr := body[:bodyNL]
	if err := jsonUnmarshal(hdr, &h2); err != nil {
		t.Fatal(err)
	}
	h2.Tags = append(h2.Tags, 999)
	reframed := reframe(t, h2, body[bodyNL+1:])
	if _, _, err := Read(strings.NewReader(reframed)); err == nil {
		t.Fatal("tag/fact count mismatch accepted")
	}
}

func jsonUnmarshal(s string, v any) error { return json.Unmarshal([]byte(s), v) }

// reframe rebuilds a validly framed checkpoint around a doctored header,
// so Read's consistency checks (not its checksum) are what reject it.
func reframe(t *testing.T, h Header, wmBody string) string {
	t.Helper()
	hdr, err := json.Marshal(&h)
	if err != nil {
		t.Fatal(err)
	}
	body := string(hdr) + "\n" + wmBody
	return fmt.Sprintf("parulel-checkpoint v1 %d %d\n%s", crc32.ChecksumIEEE([]byte(body)), len(body), body)
}
