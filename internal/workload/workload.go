// Package workload generates the synthetic inputs for the example
// applications and the benchmark harness: ALEXSYS-style pools and orders,
// Waltz block scenes, layered DAGs for transitive closure, and the
// parameterized join workloads for the matcher and copy-and-constrain
// experiments.
//
// The paper's original inputs (ALEXSYS production data, the benchmark
// suite's drawing files) are not available; these generators are the
// documented substitution (DESIGN.md §5) and are fully deterministic
// given their seed.
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"parulel/internal/wm"
)

// Inserter queues working-memory facts; both engines implement it.
type Inserter interface {
	Insert(template string, fields map[string]wm.Value) (*wm.WME, error)
}

// People inserts n quickstart persons, ages cycling 15..44 so roughly
// two-thirds are adults.
func People(ins Inserter, n int) error {
	for i := 0; i < n; i++ {
		_, err := ins.Insert("person", map[string]wm.Value{
			"name": wm.Sym(fmt.Sprintf("p%03d", i)),
			"age":  wm.Int(int64(15 + i%30)),
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// Alexsys inserts pools and orders for the allocation workload. Pool
// amounts are drawn from [10, 109]; order windows are centered on the
// same range with width 10–49, so most orders admit several pools and
// most pools fit several orders — maximizing allocation conflicts, which
// is the point of the workload.
func Alexsys(ins Inserter, pools, orders int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	for p := 0; p < pools; p++ {
		_, err := ins.Insert("pool", map[string]wm.Value{
			"id":     wm.Int(int64(p)),
			"amount": wm.Int(int64(10 + rng.Intn(100))),
			"status": wm.Sym("free"),
		})
		if err != nil {
			return err
		}
	}
	for o := 0; o < orders; o++ {
		lo := int64(10 + rng.Intn(70))
		_, err := ins.Insert("order", map[string]wm.Value{
			"id":     wm.Int(int64(o)),
			"lo":     wm.Int(lo),
			"hi":     wm.Int(lo + 10 + int64(rng.Intn(40))),
			"filled": wm.Sym("no"),
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// WaltzScene inserts a scene of the given number of cubes for the Waltz
// labeling program. Every third cube (c ≡ 2 mod 3) is occluded: its third
// corner is a T junction, so its internal edge is labeled only by fork
// propagation.
//
// Per cube: 7 junctions, 9 edges. Junction/edge field conventions match
// waltz.par's header comment.
func WaltzScene(ins Inserter, cubes int) error {
	for c := 0; c < cubes; c++ {
		base := int64(c * 100)
		// Junction ids.
		fork := base + 1
		a1, a2, a3 := base+2, base+3, base+4
		l1, l2, l3 := base+5, base+6, base+7
		// Edge ids: internal i1..i3, silhouette s1..s6.
		i1, i2, i3 := base+11, base+12, base+13
		s1, s2, s3, s4, s5, s6 := base+21, base+22, base+23, base+24, base+25, base+26

		occluded := c%3 == 2
		a3type := "arrow"
		if occluded {
			a3type = "tee"
		}

		// Drawing coordinates: the standard cube picture is a hexagon with
		// the fork at the center, arrow corners and L corners alternating
		// around the silhouette. Cubes are laid out left to right; the
		// corner-pair rule's cross-product stage consumes these.
		ox := int64(c * 12)
		junctions := []struct {
			id     int64
			typ    string
			e1, e2 int64
			e3     wm.Value
			x, y   int64
		}{
			{fork, "fork", i1, i2, wm.Int(i3), ox + 0, 0},
			{a1, "arrow", i1, s1, wm.Int(s6), ox + 0, 4},
			{a2, "arrow", i2, s2, wm.Int(s3), ox - 3, -2},
			{a3, a3type, i3, s4, wm.Int(s5), ox + 3, -2},
			{l1, "ell", s1, s2, wm.Nil(), ox - 3, 2},
			{l2, "ell", s3, s4, wm.Nil(), ox + 0, -4},
			{l3, "ell", s5, s6, wm.Nil(), ox + 3, 2},
		}
		for _, j := range junctions {
			_, err := ins.Insert("junction", map[string]wm.Value{
				"id":   wm.Int(j.id),
				"type": wm.Sym(j.typ),
				"e1":   wm.Int(j.e1),
				"e2":   wm.Int(j.e2),
				"e3":   j.e3,
				"x":    wm.Int(j.x),
				"y":    wm.Int(j.y),
			})
			if err != nil {
				return err
			}
		}
		edges := []struct{ id, j1, j2 int64 }{
			{i1, fork, a1}, {i2, fork, a2}, {i3, fork, a3},
			{s1, a1, l1}, {s2, l1, a2}, {s3, a2, l2},
			{s4, l2, a3}, {s5, a3, l3}, {s6, l3, a1},
		}
		for _, e := range edges {
			_, err := ins.Insert("edge", map[string]wm.Value{
				"id": wm.Int(e.id),
				"j1": wm.Int(e.j1),
				"j2": wm.Int(e.j2),
			})
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// LayeredDAG inserts arcs of a layered DAG for the closure workload:
// layers × width nodes, each node with `fanout` arcs to distinct random
// nodes of the next layer. Node ids are layer*width + position. The
// longest path has layers-1 arcs, which bounds PARULEL's closure cycles.
func LayeredDAG(ins Inserter, layers, width, fanout int, seed int64) error {
	if fanout > width {
		fanout = width
	}
	rng := rand.New(rand.NewSource(seed))
	for l := 0; l < layers-1; l++ {
		for p := 0; p < width; p++ {
			from := int64(l*width + p)
			for _, t := range rng.Perm(width)[:fanout] {
				to := int64((l+1)*width + t)
				_, err := ins.Insert("arc", map[string]wm.Value{
					"from": wm.Int(from),
					"to":   wm.Int(to),
				})
				if err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Chain inserts a simple arc chain 0→1→…→n-1 (diameter n-2 closure).
func Chain(ins Inserter, n int) error {
	for i := 0; i < n-1; i++ {
		_, err := ins.Insert("arc", map[string]wm.Value{
			"from": wm.Int(int64(i)),
			"to":   wm.Int(int64(i + 1)),
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// Manners inserts a Miss Manners party: `guests` guests (even count,
// alternating sex), each with `hobbies` hobbies drawn from `hobbyCount`
// plus the shared hobby 1 that guarantees greedy-safe instances. One
// guest WME per (name, hobby) — the join-mass convention of the original
// benchmark.
func Manners(ins Inserter, guests, hobbies, hobbyCount int, seed int64) error {
	if guests%2 != 0 {
		return fmt.Errorf("workload: manners needs an even guest count, got %d", guests)
	}
	if hobbyCount < 2 {
		hobbyCount = 2
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < guests; i++ {
		name := wm.Sym(fmt.Sprintf("guest-%03d", i))
		sex := wm.Sym("m")
		if i%2 == 1 {
			sex = wm.Sym("f")
		}
		seen := map[int64]bool{1: true}
		hs := []int64{1}
		for len(hs) < 1+hobbies {
			h := int64(2 + rng.Intn(hobbyCount-1))
			if !seen[h] {
				seen[h] = true
				hs = append(hs, h)
			}
			if len(seen) >= hobbyCount {
				break
			}
		}
		for _, h := range hs {
			if _, err := ins.Insert("guest", map[string]wm.Value{
				"name": name, "sex": sex, "hobby": wm.Int(h),
			}); err != nil {
				return err
			}
		}
	}
	if _, err := ins.Insert("context", map[string]wm.Value{"state": wm.Sym("start")}); err != nil {
		return err
	}
	if _, err := ins.Insert("party", map[string]wm.Value{"size": wm.Int(int64(guests))}); err != nil {
		return err
	}
	return nil
}

// HotRuleProgram is the single-hot-rule program for the copy-and-constrain
// experiment (E3): one rule whose match and firings dominate the run.
const HotRuleProgram = `
(literalize task id region cost)
(literalize res  id region cap)
(literalize hit  task res)
(rule assign
  (task ^id <t> ^region <r> ^cost <c>)
  (res  ^id <s> ^region <r> ^cap <k>)
  (test (>= <k> <c>))
-->
  (make hit ^task <t> ^res <s>))
`

// HotRuleFacts inserts tasks and resources across `regions` regions,
// `perRegion` of each per region.
func HotRuleFacts(ins Inserter, regions, perRegion int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	for r := 0; r < regions; r++ {
		region := wm.Sym(fmt.Sprintf("region-%03d", r))
		for i := 0; i < perRegion; i++ {
			_, err := ins.Insert("task", map[string]wm.Value{
				"id":     wm.Int(int64(r*perRegion + i)),
				"region": region,
				"cost":   wm.Int(int64(rng.Intn(50))),
			})
			if err != nil {
				return err
			}
			_, err = ins.Insert("res", map[string]wm.Value{
				"id":     wm.Int(int64(r*perRegion + i)),
				"region": region,
				"cap":    wm.Int(int64(25 + rng.Intn(50))),
			})
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// JoinChainProgram generates a rule whose LHS is a join chain of the
// given depth over one shared key — the matcher stress program for the
// RETE vs TREAT experiment (E4).
//
//	(rec ^seg 0 ^key <k> ^val <v0>) (rec ^seg 1 ^key <k> ^val <v1>) …
func JoinChainProgram(depth int) string {
	var b strings.Builder
	b.WriteString("(literalize rec seg key val)\n")
	b.WriteString("(literalize out key)\n")
	b.WriteString("(rule deep\n")
	for i := 0; i < depth; i++ {
		fmt.Fprintf(&b, "  (rec ^seg %d ^key <k> ^val <v%d>)\n", i, i)
	}
	b.WriteString("-->\n  (make out ^key <k>))\n")
	return b.String()
}

// JoinChainFacts builds the WME field vectors for a join-chain run:
// `keys` distinct keys, one record per (segment, key, copy) with copies
// per segment. Returned as template/field pairs so matcher benchmarks can
// feed them without an engine.
func JoinChainFacts(keys, depth, copies int, seed int64) []map[string]wm.Value {
	rng := rand.New(rand.NewSource(seed))
	var out []map[string]wm.Value
	for seg := 0; seg < depth; seg++ {
		for k := 0; k < keys; k++ {
			for c := 0; c < copies; c++ {
				out = append(out, map[string]wm.Value{
					"seg": wm.Int(int64(seg)),
					"key": wm.Int(int64(k)),
					"val": wm.Int(int64(rng.Intn(1000))),
				})
			}
		}
	}
	return out
}
