package workload

import (
	"fmt"
	"math/rand"

	"parulel/internal/wm"
)

// LifeGrid inserts a w×h toroidal Game of Life board for life.par: one
// `cell` per position, eight `adj` neighbour links per cell, the `phase`
// control element and a `gen` countdown. alive lists the initially live
// cells as {x, y} pairs.
func LifeGrid(ins Inserter, w, h int, alive [][2]int, generations int) error {
	if w < 3 || h < 3 {
		return fmt.Errorf("workload: life grid must be at least 3x3, got %dx%d", w, h)
	}
	live := make(map[[2]int]bool, len(alive))
	for _, p := range alive {
		if p[0] < 0 || p[0] >= w || p[1] < 0 || p[1] >= h {
			return fmt.Errorf("workload: live cell (%d,%d) outside %dx%d grid", p[0], p[1], w, h)
		}
		live[p] = true
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			state := int64(0)
			if live[[2]int{x, y}] {
				state = 1
			}
			if _, err := ins.Insert("cell", map[string]wm.Value{
				"x": wm.Int(int64(x)), "y": wm.Int(int64(y)), "alive": wm.Int(state),
			}); err != nil {
				return err
			}
			i := int64(0)
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					if dx == 0 && dy == 0 {
						continue
					}
					i++
					if _, err := ins.Insert("adj", map[string]wm.Value{
						"x": wm.Int(int64(x)), "y": wm.Int(int64(y)), "i": wm.Int(i),
						"nx": wm.Int(int64((x + dx + w) % w)),
						"ny": wm.Int(int64((y + dy + h) % h)),
					}); err != nil {
						return err
					}
				}
			}
		}
	}
	if _, err := ins.Insert("phase", map[string]wm.Value{"p": wm.Sym("compute")}); err != nil {
		return err
	}
	if _, err := ins.Insert("gen", map[string]wm.Value{"left": wm.Int(int64(generations))}); err != nil {
		return err
	}
	return nil
}

// LifeRandom returns a random initial pattern of the given density.
func LifeRandom(w, h int, density float64, seed int64) [][2]int {
	rng := rand.New(rand.NewSource(seed))
	var out [][2]int
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if rng.Float64() < density {
				out = append(out, [2]int{x, y})
			}
		}
	}
	return out
}

// LifeGlider returns the standard glider with its top-left at (x, y).
func LifeGlider(x, y int) [][2]int {
	return [][2]int{{x + 1, y}, {x + 2, y + 1}, {x, y + 2}, {x + 1, y + 2}, {x + 2, y + 2}}
}

// LifeBlinker returns a horizontal blinker centred at (x, y).
func LifeBlinker(x, y int) [][2]int {
	return [][2]int{{x - 1, y}, {x, y}, {x + 1, y}}
}

// LifeReference simulates the same toroidal rules in plain Go for the
// differential tests: it returns the live set after the given number of
// generations.
func LifeReference(w, h int, alive [][2]int, generations int) map[[2]int]bool {
	cur := make(map[[2]int]bool, len(alive))
	for _, p := range alive {
		cur[p] = true
	}
	for g := 0; g < generations; g++ {
		next := make(map[[2]int]bool)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				n := 0
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						if dx == 0 && dy == 0 {
							continue
						}
						if cur[[2]int{(x + dx + w) % w, (y + dy + h) % h}] {
							n++
						}
					}
				}
				if n == 3 || (n == 2 && cur[[2]int{x, y}]) {
					next[[2]int{x, y}] = true
				}
			}
		}
		cur = next
	}
	return cur
}

// LifeBoard extracts the live set from an engine's working memory.
func LifeBoard(facts []*wm.WME) map[[2]int]bool {
	out := make(map[[2]int]bool)
	for _, c := range facts {
		if c.Fields[2] == wm.Int(1) {
			out[[2]int{int(c.Fields[0].I), int(c.Fields[1].I)}] = true
		}
	}
	return out
}
