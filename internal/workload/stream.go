package workload

// Stream workloads for the temporal subsystem: continuous fact arrival
// with TTL expiry and sliding-window rules. Both generators are frame
// oriented — one frame is the unit of stream time (one temporal tick) —
// and fully deterministic given (seed, frame), so a replayed or
// restarted stream regenerates identical facts.

import (
	"fmt"
	"math/rand"

	"parulel/internal/wm"
)

// FraudStreamProgram is the fraud-detection stream application:
// transactions expire six ticks after absorption, a per-card sliding
// window counts the live transactions of the last six ticks, and a card
// whose window holds more than three transactions is flagged once.
// Flags persist (bounded by the card population), transactions are
// TTL-evicted, so working memory stays bounded no matter how many
// transactions stream through.
const FraudStreamProgram = `
(literalize txn id card amount state)
(literalize flag card n)
(ttl txn 6)
(window cardwin txn ^key card ^ticks 6 ^val amount)
(rule flag-burst
  (cardwin ^key <c> ^count <n>)
  (test (> <n> 3))
  - (flag ^card <c>)
-->
  (make flag ^card <c> ^n <n>))
(rule settle
  <t> <- (txn ^id <i> ^state new)
-->
  (modify <t> ^state settled))
`

// FraudTxns returns one frame of the fraud stream: `count` transactions
// spread over `cards` cards. Most draws are uniform; a rotating hot card
// (advancing every four frames) receives every fourth transaction, so
// its six-tick window reliably crosses the burst threshold while the
// rest stay under it.
func FraudTxns(frame, count, cards int, seed int64) []map[string]wm.Value {
	rng := rand.New(rand.NewSource(seed + int64(frame)*7919))
	hot := (frame / 4) % cards
	out := make([]map[string]wm.Value, count)
	for i := range out {
		card := rng.Intn(cards)
		if i%4 == 0 {
			card = hot
		}
		out[i] = map[string]wm.Value{
			"id":     wm.Int(int64(frame*count + i)),
			"card":   wm.Sym(fmt.Sprintf("card-%03d", card)),
			"amount": wm.Int(int64(1 + rng.Intn(500))),
			"state":  wm.Sym("new"),
		}
	}
	return out
}

// EventMonitorProgram is the sensor-monitoring stream application:
// readings live four ticks, a per-sensor window aggregates the last
// five readings, and a sensor whose windowed maximum crosses the
// threshold raises an alarm that auto-clears by TTL ten ticks later —
// the alarm lifecycle is driven entirely by the temporal clock.
const EventMonitorProgram = `
(literalize reading id sensor val)
(literalize alarm sensor peak)
(ttl reading 4)
(ttl alarm 10)
(window sensorwin reading ^key sensor ^last 5 ^val val)
(rule raise-alarm
  (sensorwin ^key <s> ^max <m>)
  (test (> <m> 95))
  - (alarm ^sensor <s>)
-->
  (make alarm ^sensor <s> ^peak <m>))
`

// EventReadings returns one frame of the monitor stream: `count`
// readings over `sensors` sensors, values mostly in [0, 90] with a
// deterministic ~3% of spikes above the alarm threshold.
func EventReadings(frame, count, sensors int, seed int64) []map[string]wm.Value {
	rng := rand.New(rand.NewSource(seed + int64(frame)*6151))
	out := make([]map[string]wm.Value, count)
	for i := range out {
		val := int64(rng.Intn(91))
		if rng.Intn(32) == 0 {
			val = int64(96 + rng.Intn(20))
		}
		out[i] = map[string]wm.Value{
			"id":     wm.Int(int64(frame*count + i)),
			"sensor": wm.Sym(fmt.Sprintf("sensor-%02d", rng.Intn(sensors))),
			"val":    wm.Int(val),
		}
	}
	return out
}
