package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"parulel/internal/wm"
)

// CircuitGate is one gate of a generated netlist.
type CircuitGate struct {
	ID   int64
	Kind int64 // 0 and, 1 or, 2 xor, 3 not, 4 buf
	In1  int64
	In2  int64
	Out  int64
}

// Circuit is a generated layered combinational netlist plus its primary
// input assignment.
type Circuit struct {
	Inputs map[int64]int64 // wire id → 0/1
	Gates  []CircuitGate
	Depth  int
}

// GenCircuit builds a random layered netlist: `width` primary inputs
// (wire ids 0..width-1), then `depth` levels of `width` gates whose
// inputs come from the previous level. Every level-l gate g outputs wire
// id (l+1)*width + g's position. With contended=true, a quarter of the
// gates get a rival gate driving the same output wire (bus contention for
// the meta-rule to arbitrate).
func GenCircuit(width, depth int, contended bool, seed int64) *Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := &Circuit{Inputs: make(map[int64]int64), Depth: depth}
	for i := 0; i < width; i++ {
		c.Inputs[int64(i)] = int64(rng.Intn(2))
	}
	nextGate := int64(0)
	for l := 0; l < depth; l++ {
		prevBase := int64(l * width)
		outBase := int64((l + 1) * width)
		for p := 0; p < width; p++ {
			kind := int64(rng.Intn(5))
			in1 := prevBase + int64(rng.Intn(width))
			in2 := prevBase + int64(rng.Intn(width))
			if kind >= 3 { // not/buf are unary; keep both input wires real
				in2 = in1
			}
			c.Gates = append(c.Gates, CircuitGate{
				ID: nextGate, Kind: kind, In1: in1, In2: in2, Out: outBase + int64(p),
			})
			nextGate++
			if contended && rng.Intn(4) == 0 {
				// A rival driver for the same output wire.
				kind2 := int64(rng.Intn(5))
				r1 := prevBase + int64(rng.Intn(width))
				r2 := prevBase + int64(rng.Intn(width))
				if kind2 >= 3 {
					r2 = r1
				}
				c.Gates = append(c.Gates, CircuitGate{
					ID: nextGate, Kind: kind2, In1: r1, In2: r2, Out: outBase + int64(p),
				})
				nextGate++
			}
		}
	}
	return c
}

// GenBusCircuit builds a netlist where EVERY output wire is a contended
// bus with `drivers` rival gates, so the one-driver-per-wire meta-rule
// arbitrates drivers² instantiation pairs per wire per level. This is
// the redaction-heavy regime: meta-rule predicate evaluation (not
// matching) dominates the cycle, which is what the E13 eval-mode
// ablation stresses.
func GenBusCircuit(width, depth, drivers int, seed int64) *Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := &Circuit{Inputs: make(map[int64]int64), Depth: depth}
	for i := 0; i < width; i++ {
		c.Inputs[int64(i)] = int64(rng.Intn(2))
	}
	nextGate := int64(0)
	for l := 0; l < depth; l++ {
		prevBase := int64(l * width)
		outBase := int64((l + 1) * width)
		for p := 0; p < width; p++ {
			for d := 0; d < drivers; d++ {
				kind := int64(rng.Intn(5))
				in1 := prevBase + int64(rng.Intn(width))
				in2 := prevBase + int64(rng.Intn(width))
				if kind >= 3 {
					in2 = in1
				}
				c.Gates = append(c.Gates, CircuitGate{
					ID: nextGate, Kind: kind, In1: in1, In2: in2, Out: outBase + int64(p),
				})
				nextGate++
			}
		}
	}
	return c
}

// Insert loads the circuit into an engine: one gate WME per gate and one
// driven wire per primary input.
func (c *Circuit) Insert(ins Inserter) error {
	for _, g := range c.Gates {
		if _, err := ins.Insert("gate", map[string]wm.Value{
			"id": wm.Int(g.ID), "kind": wm.Int(g.Kind),
			"in1": wm.Int(g.In1), "in2": wm.Int(g.In2), "out": wm.Int(g.Out),
		}); err != nil {
			return err
		}
	}
	// Sorted by wire id: map order here would scramble time-tag
	// assignment run to run, and under contention the commit phase's
	// first-op-wins rule would then pick different conflict winners.
	ids := make([]int64, 0, len(c.Inputs))
	for id := range c.Inputs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if _, err := ins.Insert("wire", map[string]wm.Value{
			"id": wm.Int(id), "val": wm.Int(c.Inputs[id]),
		}); err != nil {
			return err
		}
	}
	return nil
}

// gateEval computes one gate's output from its input values.
func gateEval(kind, a, b int64) int64 {
	switch kind {
	case 0:
		return min(a, b)
	case 1:
		return max(a, b)
	case 2:
		return (a + b) % 2
	case 3:
		return 1 - a
	default:
		return a
	}
}

// Reference evaluates the circuit in plain Go with the same arbitration
// rule as circuit.par: a wire's value is set by the first gate (in
// readiness order, ties by gate id) that drives it, and later drivers are
// ignored. It returns the final wire assignment.
func (c *Circuit) Reference() map[int64]int64 {
	vals := make(map[int64]int64, len(c.Inputs))
	for id, v := range c.Inputs {
		vals[id] = v
	}
	// Fixpoint over readiness waves, mirroring the engine's cycles.
	for {
		type drive struct {
			gate int64
			wire int64
			val  int64
		}
		var wave []drive
		for _, g := range c.Gates {
			if _, done := vals[g.Out]; done {
				continue
			}
			a, okA := vals[g.In1]
			b, okB := vals[g.In2]
			if okA && okB {
				wave = append(wave, drive{g.ID, g.Out, gateEval(g.Kind, a, b)})
			}
		}
		if len(wave) == 0 {
			return vals
		}
		// Same-wave contention: lowest gate id wins (the meta-rule).
		for _, d := range wave {
			if _, taken := vals[d.wire]; !taken {
				vals[d.wire] = d.val
			}
		}
	}
}

// Wires extracts the wire assignment from an engine's working memory.
func Wires(facts []*wm.WME) map[int64]int64 {
	out := make(map[int64]int64, len(facts))
	for _, w := range facts {
		out[w.Fields[0].I] = w.Fields[1].I
	}
	return out
}

// String summarizes the circuit for logs.
func (c *Circuit) String() string {
	return fmt.Sprintf("circuit{inputs=%d gates=%d depth=%d}", len(c.Inputs), len(c.Gates), c.Depth)
}
