package workload

import (
	"fmt"
	"reflect"
	"testing"

	"parulel/internal/core"
	"parulel/internal/match"
	"parulel/internal/match/rete"
	"parulel/internal/match/treat"
	"parulel/internal/programs"
)

// matrixConfigs samples the engine configuration space: worker counts,
// matchers, redaction semantics and partition strategies.
func matrixConfigs() []core.Options {
	return []core.Options{
		{Workers: 1, Matcher: rete.New, MaxCycles: 1 << 16},
		{Workers: 4, Matcher: treat.New, MaxCycles: 1 << 16, Partition: core.PartitionLPT},
		{Workers: 4, Matcher: rete.New, MaxCycles: 1 << 16, SequentialRedaction: true, Partition: core.PartitionBlock},
		{Workers: 8, Matcher: treat.New, MaxCycles: 1 << 16, DisableRedactionIndex: true},
	}
}

func configName(o core.Options) string {
	matcher := "rete"
	if reflect.ValueOf(o.Matcher).Pointer() == reflect.ValueOf(match.Factory(treat.New)).Pointer() {
		matcher = "treat"
	}
	sem := "sync"
	if o.SequentialRedaction {
		sem = "seq"
	}
	return fmt.Sprintf("w%d-%s-%s-%v", o.Workers, matcher, sem, o.Partition)
}

// TestConfigurationMatrix runs every workload under every sampled
// configuration and validates the domain invariants. The exact winners
// may differ between redaction semantics, but validity must not.
func TestConfigurationMatrix(t *testing.T) {
	for _, opts := range matrixConfigs() {
		opts := opts
		t.Run(configName(opts), func(t *testing.T) {
			// alexsys: valid maximal allocation, no conflicts.
			e := core.New(loadOK(t, programs.Alexsys), opts)
			if err := Alexsys(e, 25, 20, 11); err != nil {
				t.Fatal(err)
			}
			res, err := e.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.WriteConflicts != 0 {
				t.Errorf("alexsys: conflicts = %d", res.WriteConflicts)
			}
			checkAlexsys(t, e.Memory())

			// waltz: complete labeling.
			e = core.New(loadOK(t, programs.Waltz), opts)
			if err := WaltzScene(e, 4); err != nil {
				t.Fatal(err)
			}
			if _, err := e.Run(); err != nil {
				t.Fatal(err)
			}
			checkWaltz(t, e.Memory(), 4)

			// closure: exact transitive closure.
			e = core.New(loadOK(t, programs.Closure), opts)
			if err := LayeredDAG(e, 4, 3, 2, 5); err != nil {
				t.Fatal(err)
			}
			if _, err := e.Run(); err != nil {
				t.Fatal(err)
			}
			checkClosure(t, e.Memory())

			// manners: valid seating.
			e = core.New(loadOK(t, programs.Manners), opts)
			if err := Manners(e, 8, 2, 5, 2); err != nil {
				t.Fatal(err)
			}
			if _, err := e.Run(); err != nil {
				t.Fatal(err)
			}
			checkManners(t, e.Memory(), 8)

			// life: matches the reference simulator.
			e = core.New(loadOK(t, programs.Life), opts)
			start := LifeRandom(5, 5, 0.4, 9)
			if err := LifeGrid(e, 5, 5, start, 3); err != nil {
				t.Fatal(err)
			}
			if _, err := e.Run(); err != nil {
				t.Fatal(err)
			}
			got := LifeBoard(e.Memory().OfTemplate("cell"))
			want := LifeReference(5, 5, start, 3)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("life diverged from reference: %v vs %v", got, want)
			}
		})
	}
}
