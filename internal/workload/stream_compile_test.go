package workload_test

import (
	"testing"

	"parulel/internal/compile"
	"parulel/internal/workload"
)

func TestStreamProgramsCompile(t *testing.T) {
	for name, src := range map[string]string{
		"fraud": workload.FraudStreamProgram,
		"event": workload.EventMonitorProgram,
	} {
		if _, err := compile.CompileSource(src); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
