// Integration tests: every embedded program runs end-to-end on generated
// workloads under both engines, and the domain-level results are checked
// (allocation validity, complete labelings, exact closure sets).
package workload

import (
	"testing"

	"parulel/internal/compile"
	"parulel/internal/core"
	"parulel/internal/match/treat"
	"parulel/internal/ops5"
	"parulel/internal/programs"
	"parulel/internal/wm"
)

func loadOK(t *testing.T, name string) *compile.Program {
	t.Helper()
	p, err := programs.Load(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAllProgramsCompile(t *testing.T) {
	for _, name := range programs.All() {
		if _, err := programs.Load(name); err != nil {
			t.Errorf("program %s: %v", name, err)
		}
		if _, err := programs.LoadWithoutMetaRules(name); err != nil {
			t.Errorf("program %s (no meta): %v", name, err)
		}
	}
	if _, err := programs.Load("ghost"); err == nil {
		t.Error("unknown program should fail")
	}
}

func TestQuickstartEndToEnd(t *testing.T) {
	prog := loadOK(t, programs.Quickstart)
	e := core.New(prog, core.Options{Workers: 2, MaxCycles: 100})
	if err := People(e, 10); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Ages cycle 15..24 for n=10 → adults are ages 18..24 → 7 people.
	adults := 7
	tally := e.Memory().OfTemplate("tally")
	if len(tally) != 1 || tally[0].Fields[0] != wm.Int(int64(adults)) {
		t.Fatalf("tally: %v (want %d)", tally, adults)
	}
	// Greeting is one parallel cycle; counting is serialized by the
	// meta-rule, so it needs `adults` cycles.
	if res.Cycles < adults {
		t.Errorf("cycles = %d, want >= %d (serialized counting)", res.Cycles, adults)
	}
	if res.WriteConflicts != 0 {
		t.Errorf("write conflicts = %d, want 0", res.WriteConflicts)
	}
}

// checkAlexsys validates an allocation outcome: every sold pool is owned
// by exactly one filled order and vice versa, amounts are within windows,
// and no compatible (free pool, unfilled order) pair remains.
func checkAlexsys(t *testing.T, mem *wm.Memory) (sold int) {
	t.Helper()
	pools := mem.OfTemplate("pool")
	orders := mem.OfTemplate("order")
	orderByID := make(map[int64]*wm.WME)
	for _, o := range orders {
		orderByID[o.Fields[0].I] = o
	}
	ownedOrders := make(map[int64]int64) // order id → pool id
	for _, p := range pools {
		if p.Fields[2] != wm.Sym("sold") {
			continue
		}
		sold++
		oid := p.Fields[3].I
		if prev, dup := ownedOrders[oid]; dup {
			t.Errorf("order %d allocated two pools (%d and %d)", oid, prev, p.Fields[0].I)
		}
		ownedOrders[oid] = p.Fields[0].I
		o := orderByID[oid]
		if o == nil {
			t.Fatalf("pool %d sold to unknown order %d", p.Fields[0].I, oid)
		}
		if o.Fields[3] != wm.Sym("yes") {
			t.Errorf("order %d owns pool but is not filled", oid)
		}
		if o.Fields[4].I != p.Fields[0].I {
			t.Errorf("order %d records pool %d, pool says %d", oid, o.Fields[4].I, p.Fields[0].I)
		}
		amount := p.Fields[1].I
		if amount < o.Fields[1].I || amount > o.Fields[2].I {
			t.Errorf("pool %d amount %d outside order %d window [%d,%d]",
				p.Fields[0].I, amount, oid, o.Fields[1].I, o.Fields[2].I)
		}
	}
	// Maximality: no compatible free/unfilled pair may remain.
	for _, p := range pools {
		if p.Fields[2] != wm.Sym("free") {
			continue
		}
		for _, o := range orders {
			if o.Fields[3] != wm.Sym("no") {
				continue
			}
			a := p.Fields[1].I
			if a >= o.Fields[1].I && a <= o.Fields[2].I {
				t.Errorf("compatible pair left unallocated: pool %d (amount %d), order %d [%d,%d]",
					p.Fields[0].I, a, o.Fields[0].I, o.Fields[1].I, o.Fields[2].I)
			}
		}
	}
	return sold
}

func TestAlexsysEndToEnd(t *testing.T) {
	prog := loadOK(t, programs.Alexsys)
	e := core.New(prog, core.Options{Workers: 4, MaxCycles: 500})
	if err := Alexsys(e, 40, 30, 7); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.WriteConflicts != 0 {
		t.Errorf("write conflicts with meta-rules = %d, want 0", res.WriteConflicts)
	}
	if res.Redactions == 0 {
		t.Error("expected redactions on a conflict-heavy workload")
	}
	sold := checkAlexsys(t, e.Memory())
	if sold == 0 {
		t.Error("no pools sold")
	}
}

func TestAlexsysWithoutMetaRulesOverAllocates(t *testing.T) {
	prog, err := programs.LoadWithoutMetaRules(programs.Alexsys)
	if err != nil {
		t.Fatal(err)
	}
	e := core.New(prog, core.Options{Workers: 4, MaxCycles: 500})
	if err := Alexsys(e, 40, 30, 7); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.WriteConflicts == 0 {
		t.Error("without meta-rules, parallel firing should produce write conflicts")
	}
}

func TestAlexsysSequentialBaselineAgreesOnValidity(t *testing.T) {
	prog := loadOK(t, programs.Alexsys)
	e := ops5.New(prog, ops5.Options{MaxCycles: 5000})
	if err := Alexsys(e, 40, 30, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// OPS5 fires one allocation per cycle; the outcome may differ from
	// PARULEL's but must be a valid maximal allocation too.
	if sold := checkAlexsys(t, e.Memory()); sold == 0 {
		t.Error("no pools sold under OPS5")
	}
}

// checkWaltz verifies the labeling invariants for an n-cube scene.
func checkWaltz(t *testing.T, mem *wm.Memory, cubes int) {
	t.Helper()
	labels := make(map[int64]wm.Value)
	for _, l := range mem.OfTemplate("label") {
		edge := l.Fields[0].I
		if prev, dup := labels[edge]; dup {
			t.Errorf("edge %d labeled twice (%v and %v)", edge, prev, l.Fields[1])
		}
		labels[edge] = l.Fields[1]
	}
	if want := cubes * 9; len(labels) != want {
		t.Errorf("labels = %d, want %d", len(labels), want)
	}
	for c := 0; c < cubes; c++ {
		base := int64(c * 100)
		for _, e := range []int64{base + 11, base + 12, base + 13} {
			if labels[e] != wm.Sym("plus") {
				t.Errorf("cube %d internal edge %d = %v, want plus", c, e, labels[e])
			}
		}
		for s := int64(21); s <= 26; s++ {
			if labels[base+s] != wm.Sym("boundary") {
				t.Errorf("cube %d silhouette edge %d = %v, want boundary", c, base+s, labels[base+s])
			}
		}
	}
	if done := mem.CountOf("jdone"); done != cubes*7 {
		t.Errorf("jdone = %d, want %d", done, cubes*7)
	}
}

func TestWaltzEndToEnd(t *testing.T) {
	prog := loadOK(t, programs.Waltz)
	e := core.New(prog, core.Options{Workers: 4, MaxCycles: 100})
	const cubes = 6 // includes two occluded cubes
	if err := WaltzScene(e, cubes); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	checkWaltz(t, e.Memory(), cubes)
	if res.WriteConflicts != 0 {
		t.Errorf("write conflicts = %d, want 0", res.WriteConflicts)
	}
	// Constant cycle count regardless of scene size: compare with a
	// bigger scene.
	e2 := core.New(loadOK(t, programs.Waltz), core.Options{Workers: 4, MaxCycles: 100})
	if err := WaltzScene(e2, cubes*4); err != nil {
		t.Fatal(err)
	}
	res2, err := e2.Run()
	if err != nil {
		t.Fatal(err)
	}
	checkWaltz(t, e2.Memory(), cubes*4)
	if res2.Cycles != res.Cycles {
		t.Errorf("cycle count should be scene-size independent: %d vs %d", res.Cycles, res2.Cycles)
	}
	if res2.Firings <= res.Firings {
		t.Errorf("firings should grow with the scene: %d vs %d", res.Firings, res2.Firings)
	}
}

func TestWaltzSequentialMatchesParallelOutcome(t *testing.T) {
	const cubes = 3
	par := core.New(loadOK(t, programs.Waltz), core.Options{MaxCycles: 100})
	if err := WaltzScene(par, cubes); err != nil {
		t.Fatal(err)
	}
	if _, err := par.Run(); err != nil {
		t.Fatal(err)
	}
	checkWaltz(t, par.Memory(), cubes)

	seq := ops5.New(loadOK(t, programs.Waltz), ops5.Options{MaxCycles: 10000})
	if err := WaltzScene(seq, cubes); err != nil {
		t.Fatal(err)
	}
	if _, err := seq.Run(); err != nil {
		t.Fatal(err)
	}
	checkWaltz(t, seq.Memory(), cubes)
}

// naiveClosure computes the irreflexive transitive closure of the arcs.
func naiveClosure(arcs map[int64][]int64) map[[2]int64]bool {
	out := make(map[[2]int64]bool)
	var dfs func(root, at int64, seen map[int64]bool)
	dfs = func(root, at int64, seen map[int64]bool) {
		for _, next := range arcs[at] {
			if next != root && !out[[2]int64{root, next}] {
				out[[2]int64{root, next}] = true
				if !seen[next] {
					seen[next] = true
					dfs(root, next, seen)
				}
			}
		}
	}
	for from := range arcs {
		dfs(from, from, map[int64]bool{from: true})
	}
	return out
}

func checkClosure(t *testing.T, mem *wm.Memory) {
	t.Helper()
	arcs := make(map[int64][]int64)
	for _, a := range mem.OfTemplate("arc") {
		arcs[a.Fields[0].I] = append(arcs[a.Fields[0].I], a.Fields[1].I)
	}
	want := naiveClosure(arcs)
	got := make(map[[2]int64]bool)
	for _, p := range mem.OfTemplate("path") {
		pair := [2]int64{p.Fields[0].I, p.Fields[1].I}
		if got[pair] {
			t.Errorf("duplicate path %v", pair)
		}
		got[pair] = true
	}
	if len(got) != len(want) {
		t.Errorf("paths = %d, want %d", len(got), len(want))
	}
	for pair := range want {
		if !got[pair] {
			t.Errorf("missing path %v", pair)
		}
	}
}

func TestClosureEndToEnd(t *testing.T) {
	for _, tc := range []struct {
		name   string
		load   func(ins Inserter) error
		maxCyc int
	}{
		{"chain", func(ins Inserter) error { return Chain(ins, 12) }, 40},
		{"layered", func(ins Inserter) error { return LayeredDAG(ins, 5, 4, 2, 3) }, 40},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := core.New(loadOK(t, programs.Closure), core.Options{Workers: 4, MaxCycles: tc.maxCyc})
			if err := tc.load(e); err != nil {
				t.Fatal(err)
			}
			res, err := e.Run()
			if err != nil {
				t.Fatal(err)
			}
			checkClosure(t, e.Memory())
			if res.WriteConflicts != 0 {
				t.Errorf("write conflicts = %d, want 0", res.WriteConflicts)
			}
		})
	}
}

func TestClosureCycleCountBoundedByDepth(t *testing.T) {
	// PARULEL: cycles ≈ longest path length + constant, NOT #paths.
	e := core.New(loadOK(t, programs.Closure), core.Options{MaxCycles: 100})
	if err := Chain(e, 16); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Chain of 16 nodes: longest path 15 arcs → ~16 cycles; #paths = 120.
	if res.Cycles > 20 {
		t.Errorf("cycles = %d, want ≈ diameter (≤ 20)", res.Cycles)
	}

	seq := ops5.New(loadOK(t, programs.Closure), ops5.Options{MaxCycles: 10000})
	if err := Chain(seq, 16); err != nil {
		t.Fatal(err)
	}
	sres, err := seq.Run()
	if err != nil {
		t.Fatal(err)
	}
	checkClosure(t, seq.Memory())
	if sres.Cycles <= res.Cycles*3 {
		t.Errorf("OPS5 cycles (%d) should far exceed PARULEL cycles (%d)", sres.Cycles, res.Cycles)
	}
}

func TestClosureTreatMatcherAgrees(t *testing.T) {
	e := core.New(loadOK(t, programs.Closure), core.Options{Matcher: treat.New, MaxCycles: 60})
	if err := LayeredDAG(e, 4, 4, 2, 9); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	checkClosure(t, e.Memory())
}

func TestHotRuleWorkload(t *testing.T) {
	prog, err := compile.CompileSource(HotRuleProgram)
	if err != nil {
		t.Fatal(err)
	}
	e := core.New(prog, core.Options{Workers: 2, MaxCycles: 10})
	if err := HotRuleFacts(e, 4, 5, 1); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 1 {
		t.Errorf("hot rule should fire everything in one cycle: %d", res.Cycles)
	}
	hits := e.Memory().CountOf("hit")
	if hits == 0 || hits != res.Firings {
		t.Errorf("hits = %d, firings = %d", hits, res.Firings)
	}
	// All hits must respect region equality and capacity.
	tasks := make(map[int64]*wm.WME)
	ress := make(map[int64]*wm.WME)
	for _, w := range e.Memory().OfTemplate("task") {
		tasks[w.Fields[0].I] = w
	}
	for _, w := range e.Memory().OfTemplate("res") {
		ress[w.Fields[0].I] = w
	}
	for _, h := range e.Memory().OfTemplate("hit") {
		task, res := tasks[h.Fields[0].I], ress[h.Fields[1].I]
		if task.Fields[1] != res.Fields[1] {
			t.Errorf("hit joins different regions: %v %v", task, res)
		}
		if res.Fields[2].I < task.Fields[2].I {
			t.Errorf("hit violates capacity: %v %v", task, res)
		}
	}
}

func TestJoinChainProgramCompiles(t *testing.T) {
	for _, depth := range []int{2, 4, 6} {
		src := JoinChainProgram(depth)
		prog, err := compile.CompileSource(src)
		if err != nil {
			t.Fatalf("depth %d: %v\n%s", depth, err, src)
		}
		r := prog.Rules[0]
		if r.NumPositive != depth {
			t.Errorf("depth %d: NumPositive = %d", depth, r.NumPositive)
		}
		facts := JoinChainFacts(3, depth, 2, 1)
		if len(facts) != 3*depth*2 {
			t.Errorf("depth %d: facts = %d", depth, len(facts))
		}
	}
}

func TestWorkloadInsertErrorPropagates(t *testing.T) {
	// Feeding a workload into an engine compiled without its templates
	// must surface the insert error.
	prog := loadOK(t, programs.Closure)
	e := core.New(prog, core.Options{})
	if err := Alexsys(e, 1, 1, 1); err == nil {
		t.Error("Alexsys into closure program should fail")
	}
	if err := People(e, 1); err == nil {
		t.Error("People into closure program should fail")
	}
	if err := WaltzScene(e, 1); err == nil {
		t.Error("WaltzScene into closure program should fail")
	}
	if err := HotRuleFacts(e, 1, 1, 1); err == nil {
		t.Error("HotRuleFacts into closure program should fail")
	}
}

func TestLayeredDAGShape(t *testing.T) {
	prog := loadOK(t, programs.Closure)
	e := core.New(prog, core.Options{})
	if err := LayeredDAG(e, 3, 4, 10, 1); err != nil { // fanout clamped to width
		t.Fatal(err)
	}
	arcs := e.Memory().CountOf("arc")
	if arcs != 2*4*4 { // (layers-1) × width × clamped fanout
		t.Errorf("arcs = %d, want 32", arcs)
	}
}

func TestWaltzSceneShape(t *testing.T) {
	prog := loadOK(t, programs.Waltz)
	e := core.New(prog, core.Options{})
	if err := WaltzScene(e, 3); err != nil {
		t.Fatal(err)
	}
	if n := e.Memory().CountOf("junction"); n != 21 {
		t.Errorf("junctions = %d, want 21", n)
	}
	if n := e.Memory().CountOf("edge"); n != 27 {
		t.Errorf("edges = %d, want 27", n)
	}
	// Cube 2 is occluded: exactly one tee junction.
	tees := 0
	for _, j := range e.Memory().OfTemplate("junction") {
		if j.Fields[1] == wm.Sym("tee") {
			tees++
		}
	}
	if tees != 1 {
		t.Errorf("tees = %d, want 1", tees)
	}
}
