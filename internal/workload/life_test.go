package workload

import (
	"reflect"
	"testing"

	"parulel/internal/core"
	"parulel/internal/ops5"
	"parulel/internal/programs"
)

func runLife(t *testing.T, w, h int, alive [][2]int, gens, workers int) (*core.Engine, core.Result) {
	t.Helper()
	prog := loadOK(t, programs.Life)
	e := core.New(prog, core.Options{Workers: workers, MaxCycles: 10 * (gens + 2)})
	if err := LifeGrid(e, w, h, alive, gens); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return e, res
}

func TestLifeBlinkerOscillates(t *testing.T) {
	start := LifeBlinker(2, 2)
	// One generation: horizontal blinker becomes vertical.
	e, res := runLife(t, 5, 5, start, 1, 2)
	got := LifeBoard(e.Memory().OfTemplate("cell"))
	want := map[[2]int]bool{{2, 1}: true, {2, 2}: true, {2, 3}: true}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("after 1 gen: %v, want %v", got, want)
	}
	if !res.Halted {
		t.Error("life should halt when generations are exhausted")
	}
	// Two generations: back to the original.
	e2, _ := runLife(t, 5, 5, start, 2, 2)
	got2 := LifeBoard(e2.Memory().OfTemplate("cell"))
	want2 := map[[2]int]bool{{1, 2}: true, {2, 2}: true, {3, 2}: true}
	if !reflect.DeepEqual(got2, want2) {
		t.Errorf("after 2 gens: %v, want %v", got2, want2)
	}
}

func TestLifeGliderTranslates(t *testing.T) {
	// On a torus, a glider shifts by (+1,+1) every 4 generations.
	start := LifeGlider(1, 1)
	e, _ := runLife(t, 8, 8, start, 4, 4)
	got := LifeBoard(e.Memory().OfTemplate("cell"))
	want := map[[2]int]bool{}
	for _, p := range LifeGlider(2, 2) {
		want[p] = true
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("glider after 4 gens: %v, want %v", got, want)
	}
}

func TestLifeMatchesReferenceOnRandomBoards(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		const w, h, gens = 6, 6, 5
		start := LifeRandom(w, h, 0.35, seed)
		e, res := runLife(t, w, h, start, gens, 4)
		got := LifeBoard(e.Memory().OfTemplate("cell"))
		want := LifeReference(w, h, start, gens)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("seed %d: engine %v,\nreference %v", seed, got, want)
		}
		// Two engine cycles per generation plus the halt cycle.
		if res.Cycles != 2*gens+1 {
			t.Errorf("seed %d: cycles = %d, want %d (2/generation + halt)", seed, res.Cycles, 2*gens+1)
		}
		if res.WriteConflicts != 0 {
			t.Errorf("seed %d: life must be conflict-free, got %d", seed, res.WriteConflicts)
		}
	}
}

func TestLifeCostTracksActivityNotGridSize(t *testing.T) {
	// The same blinker on a bigger grid costs the same cycles AND the
	// same firings: only changing cells produce instantiations, so the
	// engine's work is delta-driven, not grid-driven.
	_, small := runLife(t, 5, 5, LifeBlinker(2, 2), 3, 2)
	_, big := runLife(t, 10, 10, LifeBlinker(4, 4), 3, 2)
	if small.Cycles != big.Cycles {
		t.Errorf("cycles: %d vs %d — generation cost must not depend on grid size", small.Cycles, big.Cycles)
	}
	if small.Firings != big.Firings {
		t.Errorf("firings: %d vs %d — only changing cells should fire", small.Firings, big.Firings)
	}
	// More simultaneous activity (two blinkers) means more firings but
	// the same cycle count: that is set-oriented firing.
	_, two := runLife(t, 10, 10, append(LifeBlinker(2, 2), LifeBlinker(7, 7)...), 3, 2)
	if two.Cycles != small.Cycles {
		t.Errorf("cycles: %d vs %d — parallel activity is free in cycles", two.Cycles, small.Cycles)
	}
	if two.Firings <= small.Firings {
		t.Errorf("firings should grow with activity: %d vs %d", small.Firings, two.Firings)
	}
}

func TestLifeSequentialBaselineAgrees(t *testing.T) {
	const w, h, gens = 5, 5, 2
	start := LifeBlinker(2, 2)
	prog := loadOK(t, programs.Life)
	e := ops5.New(prog, ops5.Options{MaxCycles: 100000, Strategy: ops5.MEA})
	if err := LifeGrid(e, w, h, start, gens); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	got := LifeBoard(e.Memory().OfTemplate("cell"))
	want := LifeReference(w, h, start, gens)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ops5 life: %v, want %v", got, want)
	}
}

func TestLifeGridErrors(t *testing.T) {
	prog := loadOK(t, programs.Life)
	e := core.New(prog, core.Options{})
	if err := LifeGrid(e, 2, 2, nil, 1); err == nil {
		t.Error("tiny grid should fail")
	}
	if err := LifeGrid(e, 5, 5, [][2]int{{9, 9}}, 1); err == nil {
		t.Error("out-of-range live cell should fail")
	}
}
