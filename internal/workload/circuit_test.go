package workload

import (
	"reflect"
	"testing"

	"parulel/internal/core"
	"parulel/internal/ops5"
	"parulel/internal/programs"
)

func runCircuit(t *testing.T, c *Circuit, workers int) (*core.Engine, core.Result) {
	t.Helper()
	prog := loadOK(t, programs.Circuit)
	e := core.New(prog, core.Options{Workers: workers, MaxCycles: 10 * (c.Depth + 2)})
	if err := c.Insert(e); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return e, res
}

func TestCircuitKnownGates(t *testing.T) {
	// Hand-built: and(0,1)→4, or(0,1)→5, xor(0,1)→6, not(0)→7, buf(1)→8.
	c := &Circuit{
		Inputs: map[int64]int64{0: 0, 1: 1},
		Gates: []CircuitGate{
			{ID: 0, Kind: 0, In1: 0, In2: 1, Out: 4},
			{ID: 1, Kind: 1, In1: 0, In2: 1, Out: 5},
			{ID: 2, Kind: 2, In1: 0, In2: 1, Out: 6},
			{ID: 3, Kind: 3, In1: 0, In2: 0, Out: 7},
			{ID: 4, Kind: 4, In1: 1, In2: 1, Out: 8},
		},
		Depth: 1,
	}
	e, res := runCircuit(t, c, 2)
	got := Wires(e.Memory().OfTemplate("wire"))
	want := map[int64]int64{0: 0, 1: 1, 4: 0, 5: 1, 6: 1, 7: 1, 8: 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("wires = %v, want %v", got, want)
	}
	// All five gates evaluate in ONE cycle.
	if res.Cycles != 1 || res.Firings != 5 {
		t.Errorf("cycles=%d firings=%d, want 1/5", res.Cycles, res.Firings)
	}
}

func TestCircuitMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		for _, contended := range []bool{false, true} {
			c := GenCircuit(5, 6, contended, seed)
			e, res := runCircuit(t, c, 4)
			got := Wires(e.Memory().OfTemplate("wire"))
			want := c.Reference()
			if !reflect.DeepEqual(got, want) {
				t.Errorf("seed %d contended=%v: engine %v\nreference %v", seed, contended, got, want)
			}
			if res.WriteConflicts != 0 {
				t.Errorf("seed %d contended=%v: conflicts = %d (arbitration must prevent them)",
					seed, contended, res.WriteConflicts)
			}
			if contended && res.Redactions == 0 {
				t.Errorf("seed %d: contended circuit should need arbitration", seed)
			}
			// Cycles track circuit depth, not gate count.
			if res.Cycles > c.Depth+1 {
				t.Errorf("seed %d: cycles = %d, want <= depth+1 = %d", seed, res.Cycles, c.Depth+1)
			}
		}
	}
}

func TestCircuitSequentialBaselineAgreesWhenUncontended(t *testing.T) {
	// Without contention the circuit is confluent: any firing order gives
	// the same wire assignment, so OPS5 must agree with the reference.
	c := GenCircuit(4, 5, false, 3)
	prog := loadOK(t, programs.Circuit)
	e := ops5.New(prog, ops5.Options{MaxCycles: 100000})
	if err := c.Insert(e); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	got := Wires(e.Memory().OfTemplate("wire"))
	if !reflect.DeepEqual(got, c.Reference()) {
		t.Errorf("ops5 circuit diverged from reference")
	}
	// One gate per cycle: firings == gates.
	if res.Firings != len(c.Gates) {
		t.Errorf("ops5 firings = %d, want %d", res.Firings, len(c.Gates))
	}
}

func TestCircuitDeterministicAcrossWorkers(t *testing.T) {
	c := GenCircuit(5, 4, true, 8)
	e1, _ := runCircuit(t, c, 1)
	e8, _ := runCircuit(t, c, 8)
	w1 := Wires(e1.Memory().OfTemplate("wire"))
	w8 := Wires(e8.Memory().OfTemplate("wire"))
	if !reflect.DeepEqual(w1, w8) {
		t.Error("circuit result depends on worker count")
	}
}

func TestGateEvalTable(t *testing.T) {
	cases := []struct{ kind, a, b, want int64 }{
		{0, 1, 1, 1}, {0, 1, 0, 0}, {0, 0, 0, 0},
		{1, 0, 0, 0}, {1, 1, 0, 1},
		{2, 1, 1, 0}, {2, 1, 0, 1}, {2, 0, 0, 0},
		{3, 1, 0, 0}, {3, 0, 0, 1},
		{4, 1, 0, 1}, {4, 0, 1, 0},
	}
	for _, tc := range cases {
		if got := gateEval(tc.kind, tc.a, tc.b); got != tc.want {
			t.Errorf("gateEval(%d, %d, %d) = %d, want %d", tc.kind, tc.a, tc.b, got, tc.want)
		}
	}
}

func TestCircuitString(t *testing.T) {
	c := GenCircuit(3, 2, false, 1)
	if got := c.String(); got != "circuit{inputs=3 gates=6 depth=2}" {
		t.Errorf("String = %q", got)
	}
}
