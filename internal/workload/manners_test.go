package workload

import (
	"testing"

	"parulel/internal/core"
	"parulel/internal/ops5"
	"parulel/internal/programs"
	"parulel/internal/wm"
)

// checkManners verifies a completed seating: every guest seated exactly
// once, positions 1..n contiguous, adjacent guests alternate sex and
// share a hobby.
func checkManners(t *testing.T, mem *wm.Memory, guests int) {
	t.Helper()
	type guestInfo struct {
		sex     wm.Value
		hobbies map[int64]bool
	}
	info := make(map[string]*guestInfo)
	for _, g := range mem.OfTemplate("guest") {
		name := g.Fields[0].S
		gi := info[name]
		if gi == nil {
			gi = &guestInfo{sex: g.Fields[1], hobbies: map[int64]bool{}}
			info[name] = gi
		}
		gi.hobbies[g.Fields[2].I] = true
	}
	if len(info) != guests {
		t.Fatalf("guest WMEs describe %d guests, want %d", len(info), guests)
	}

	seatAt := make(map[int64]string)
	for _, s := range mem.OfTemplate("seating") {
		pos := s.Fields[0].I
		if _, dup := seatAt[pos]; dup {
			t.Errorf("seat %d assigned twice", pos)
		}
		seatAt[pos] = s.Fields[1].S
	}
	if len(seatAt) != guests {
		t.Fatalf("seated %d of %d guests", len(seatAt), guests)
	}
	seatedNames := make(map[string]bool)
	for pos := int64(1); pos <= int64(guests); pos++ {
		name, ok := seatAt[pos]
		if !ok {
			t.Fatalf("no guest at seat %d", pos)
		}
		if seatedNames[name] {
			t.Errorf("guest %s seated twice", name)
		}
		seatedNames[name] = true
		if pos == 1 {
			continue
		}
		prev, cur := info[seatAt[pos-1]], info[name]
		if prev.sex == cur.sex {
			t.Errorf("seats %d and %d have same sex", pos-1, pos)
		}
		shared := false
		for h := range cur.hobbies {
			if prev.hobbies[h] {
				shared = true
				break
			}
		}
		if !shared {
			t.Errorf("seats %d and %d share no hobby", pos-1, pos)
		}
	}
	// The done rule must have fired.
	ctx := mem.OfTemplate("context")
	if len(ctx) != 1 || ctx[0].Fields[0] != wm.Sym("done") {
		t.Errorf("context: %v, want done", ctx)
	}
}

func TestMannersEndToEnd(t *testing.T) {
	const guests = 16
	prog := loadOK(t, programs.Manners)
	e := core.New(prog, core.Options{Workers: 4, MaxCycles: 200})
	if err := Manners(e, guests, 3, 6, 5); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	checkManners(t, e.Memory(), guests)
	if res.WriteConflicts != 0 {
		t.Errorf("write conflicts = %d, want 0", res.WriteConflicts)
	}
	// Seating is serialized by the meta-rule: one extension per cycle.
	if res.Cycles < guests {
		t.Errorf("cycles = %d, want >= %d (inherently serial)", res.Cycles, guests)
	}
	if res.Redactions == 0 {
		t.Error("expected redactions (candidate selection)")
	}
}

func TestMannersSequentialBaseline(t *testing.T) {
	// Under OPS5 the meta-rules are ignored; LEX picks one instantiation
	// per cycle anyway. The outcome must still be a valid seating.
	const guests = 10
	prog := loadOK(t, programs.Manners)
	e := ops5.New(prog, ops5.Options{MaxCycles: 10000})
	if err := Manners(e, guests, 3, 6, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	checkManners(t, e.Memory(), guests)
}

func TestMannersDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) []string {
		prog := loadOK(t, programs.Manners)
		e := core.New(prog, core.Options{Workers: workers, MaxCycles: 200})
		if err := Manners(e, 12, 2, 5, 3); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		var seats []string
		for _, s := range e.Memory().OfTemplate("seating") {
			seats = append(seats, s.String())
		}
		return seats
	}
	ref := run(1)
	for _, w := range []int{2, 8} {
		got := run(w)
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d seats vs %d", w, len(got), len(ref))
		}
		for i := range ref {
			// Time tags may differ? They must not: determinism is exact.
			if got[i] != ref[i] {
				t.Errorf("workers=%d seat %d: %s vs %s", w, i, got[i], ref[i])
			}
		}
	}
}

func TestMannersGeneratorErrors(t *testing.T) {
	prog := loadOK(t, programs.Manners)
	e := core.New(prog, core.Options{})
	if err := Manners(e, 7, 2, 5, 1); err == nil {
		t.Error("odd guest count should fail")
	}
}
