package snapshot

import (
	"bytes"
	"strings"
	"testing"

	"parulel/internal/core"
	"parulel/internal/programs"
	"parulel/internal/wm"
	"parulel/internal/workload"
)

func TestWriteReadRoundTrip(t *testing.T) {
	prog, err := programs.Load(programs.Alexsys)
	if err != nil {
		t.Fatal(err)
	}
	// Run the allocation to quiescence, snapshot the result.
	e1 := core.New(prog, core.Options{MaxCycles: 1000})
	if err := workload.Alexsys(e1, 20, 15, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, e1.Memory()); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "(wm\n") {
		t.Errorf("snapshot should be a (wm …) block:\n%.80s", buf.String())
	}

	// Load into a fresh engine: identical WM contents (modulo time tags).
	prog2, err := programs.Load(programs.Alexsys)
	if err != nil {
		t.Fatal(err)
	}
	e2 := core.New(prog2, core.Options{MaxCycles: 1000})
	n, err := Read(bytes.NewReader(buf.Bytes()), e2)
	if err != nil {
		t.Fatal(err)
	}
	if n != e1.Memory().Len() {
		t.Fatalf("loaded %d facts, memory had %d", n, e1.Memory().Len())
	}
	canon := func(mem *wm.Memory) string {
		var b strings.Builder
		for _, w := range mem.Snapshot() {
			// Strip the time tag: only content matters.
			s := w.String()
			b.WriteString(s[strings.Index(s, "("):])
			b.WriteString("\n")
		}
		return b.String()
	}
	if canon(e1.Memory()) != canon(e2.Memory()) {
		t.Errorf("round trip changed WM:\nbefore:\n%s\nafter:\n%s", canon(e1.Memory()), canon(e2.Memory()))
	}

	// The restored engine is already quiescent: the allocation was
	// maximal, so resuming does nothing.
	res, err := e2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Firings != 0 {
		t.Errorf("restored quiescent state fired %d times", res.Firings)
	}
}

func TestWriteAllValueKinds(t *testing.T) {
	schema := wm.NewSchema()
	if _, err := schema.Declare("t", "a", "b", "c", "d", "e"); err != nil {
		t.Fatal(err)
	}
	mem := wm.NewMemory(schema)
	if _, err := mem.Insert("t", map[string]wm.Value{
		"a": wm.Int(-7),
		"b": wm.Float(2.5),
		"c": wm.Sym("sym-bol*2"),
		"d": wm.Str("a \"quoted\"\nstring"),
		// e stays nil
	}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, mem); err != nil {
		t.Fatal(err)
	}
	mem2 := wm.NewMemory(schema)
	if _, err := Read(bytes.NewReader(buf.Bytes()), memInserter{mem2}); err != nil {
		t.Fatalf("read back: %v\nsnapshot:\n%s", err, buf.String())
	}
	got := mem2.Snapshot()
	if len(got) != 1 {
		t.Fatalf("facts: %d", len(got))
	}
	want := mem.Snapshot()[0]
	for i := range want.Fields {
		if got[0].Fields[i] != want.Fields[i] {
			t.Errorf("field %d: %v != %v", i, got[0].Fields[i], want.Fields[i])
		}
	}
}

// memInserter adapts a bare Memory to the Inserter interface.
type memInserter struct{ mem *wm.Memory }

func (m memInserter) Insert(tmpl string, fields map[string]wm.Value) (*wm.WME, error) {
	return m.mem.Insert(tmpl, fields)
}

func TestWriteRejectsUnlexableSymbols(t *testing.T) {
	schema := wm.NewSchema()
	if _, err := schema.Declare("t", "a"); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"has space", "paren(", "123starts-digit", ""} {
		mem := wm.NewMemory(schema)
		if _, err := mem.Insert("t", map[string]wm.Value{"a": wm.Sym(bad)}); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, mem); err == nil {
			t.Errorf("symbol %q should not be writable", bad)
		}
	}
}

func TestReadErrors(t *testing.T) {
	schema := wm.NewSchema()
	if _, err := schema.Declare("t", "a"); err != nil {
		t.Fatal(err)
	}
	mem := wm.NewMemory(schema)
	cases := []struct {
		src    string
		substr string
	}{
		{"(rule r (t ^a 1) --> (halt))", "contains rules"},
		{"(wm (ghost ^a 1))", "undeclared"},
		{"(wm (t ^nope 1))", "no attribute"},
		{"(wm (t ^a", "expected"},
	}
	for _, c := range cases {
		_, err := Read(strings.NewReader(c.src), memInserter{mem})
		if err == nil || !strings.Contains(err.Error(), c.substr) {
			t.Errorf("Read(%q) error = %v, want %q", c.src, err, c.substr)
		}
	}
}
