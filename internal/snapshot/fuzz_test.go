package snapshot

import (
	"strings"
	"testing"

	"parulel/internal/wm"
)

// FuzzSnapshotRead: recovery and the HTTP import endpoint feed untrusted
// bytes to Read. Truncation and garbage must come back as errors, never
// as panics, and accepted input must insert exactly the reported number
// of facts.
func FuzzSnapshotRead(f *testing.F) {
	seeds := []string{
		"",
		"(wm)",
		"(wm (a ^x 1))",
		"(wm (a ^x 1 ^y sym) (a ^y \"str\") (b))",
		"(literalize a x y)\n(wm (a ^x 1))",
		"(wm (unknown ^x 1))",
		"(wm (a ^nope 1))",
		"(wm (a ^x",
		"(rule r (a ^x 1) --> (halt))",
		"(wm (a ^x 1.5e300) (a ^x -0.0))",
		strings.Repeat("(wm ", 200),
		"(wm (a ^x << 1 2 >>))",
		"\x00\xff(wm",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		schema := wm.NewSchema()
		if _, err := schema.Declare("a", "x", "y"); err != nil {
			t.Fatal(err)
		}
		if _, err := schema.Declare("b", "z"); err != nil {
			t.Fatal(err)
		}
		mem := wm.NewMemory(schema)
		n, err := Read(strings.NewReader(src), mem)
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		if n != mem.Len() {
			t.Fatalf("Read reported %d facts, memory holds %d", n, mem.Len())
		}
	})
}
