// Package snapshot persists working memory as PARULEL `(wm …)` source,
// and loads it back. This is the reproduction's stand-in for the
// PARULEL/PARADISER line's database coupling: rule processing runs to
// quiescence, the working memory is exported, updates arrive from
// outside, and processing resumes incrementally.
//
// The format is deliberately the language's own initial-facts syntax, so
// a snapshot can be concatenated with a program file and run directly by
// `cmd/parulel`.
package snapshot

import (
	"fmt"
	"io"

	"parulel/internal/lang"
	"parulel/internal/wm"
)

// Inserter receives loaded facts; both engines and wm.Memory adapters
// implement it.
type Inserter interface {
	Insert(template string, fields map[string]wm.Value) (*wm.WME, error)
}

// Write renders every live WME of mem as one fact inside a `(wm …)`
// block, in time-tag order. Nil-valued attributes are elided. Symbols
// that would not re-lex as a single token (e.g. containing spaces) are
// rejected: they cannot round-trip through source text.
func Write(w io.Writer, mem *wm.Memory) error {
	if _, err := fmt.Fprintln(w, "(wm"); err != nil {
		return err
	}
	for _, el := range mem.Snapshot() {
		if _, err := fmt.Fprint(w, "  ("); err != nil {
			return err
		}
		if _, err := fmt.Fprint(w, el.Tmpl.Name); err != nil {
			return err
		}
		for i, attr := range el.Tmpl.Attrs {
			v := el.Fields[i]
			if v.IsNil() {
				continue
			}
			if err := checkWritable(v); err != nil {
				return fmt.Errorf("snapshot: WME %d attribute %s: %w", el.Time, attr, err)
			}
			if _, err := fmt.Fprintf(w, " ^%s %s", attr, v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w, ")"); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, ")")
	return err
}

// checkWritable verifies that a value's literal form re-lexes to the
// same value.
func checkWritable(v wm.Value) error {
	if v.Kind != wm.KindSym {
		return nil // numbers, strings and nil always round-trip
	}
	toks, err := lang.LexAll(v.S)
	if err != nil || len(toks) != 2 || toks[0].Kind != lang.TokSym || toks[0].Text != v.S {
		return fmt.Errorf("symbol %q does not round-trip through source text", v.S)
	}
	return nil
}

// Read parses PARULEL source consisting of `(wm …)` blocks (and
// optionally template declarations, which are ignored) and inserts every
// fact into ins. It returns the number of facts inserted.
func Read(r io.Reader, ins Inserter) (int, error) {
	src, err := io.ReadAll(r)
	if err != nil {
		return 0, err
	}
	prog, err := lang.Parse(string(src))
	if err != nil {
		return 0, fmt.Errorf("snapshot: %w", err)
	}
	if len(prog.Rules) > 0 || len(prog.MetaRules) > 0 {
		return 0, fmt.Errorf("snapshot: input contains rules; a snapshot holds only (wm …) blocks")
	}
	n := 0
	for _, fd := range prog.Facts {
		for _, f := range fd.Facts {
			fields := make(map[string]wm.Value, len(f.Slots))
			for _, s := range f.Slots {
				fields[s.Attr] = s.Val
			}
			if _, err := ins.Insert(f.Type, fields); err != nil {
				return n, fmt.Errorf("snapshot: fact (%s …): %w", f.Type, err)
			}
			n++
		}
	}
	return n, nil
}
