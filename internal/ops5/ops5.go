// Package ops5 implements the sequential OPS5-style baseline engine the
// paper compares PARULEL against: the classic recognize–act cycle that
// matches all rules, selects exactly ONE instantiation with a built-in
// conflict-resolution strategy (LEX or MEA), fires it, and repeats.
//
// It shares the language front end, compiled representation and match
// networks with the PARULEL engine, so experiments isolate the semantics
// difference (fire-one vs fire-all) from match-cost differences.
// Meta-rules in the program are ignored: OPS5 conflict resolution is fixed
// by the strategy, which is exactly the limitation PARULEL's redaction
// meta-rules remove.
package ops5

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"parulel/internal/compile"
	"parulel/internal/match"
	"parulel/internal/match/rete"
	"parulel/internal/stats"
	"parulel/internal/wm"
)

// Strategy selects the OPS5 conflict-resolution strategy.
type Strategy uint8

// The two classic OPS5 strategies.
const (
	// LEX orders by recency of the sorted time tags, then specificity.
	LEX Strategy = iota
	// MEA additionally gives absolute priority to the recency of the
	// first condition element (the "means-ends" control element).
	MEA
)

func (s Strategy) String() string {
	if s == MEA {
		return "MEA"
	}
	return "LEX"
}

// Options configures the baseline engine.
type Options struct {
	Strategy  Strategy
	Matcher   match.Factory // default rete.New
	Output    io.Writer     // default io.Discard
	MaxCycles int           // 0 = unlimited
	// EvalMode selects the RHS expression backend (bytecode VM by
	// default; compile.EvalInterp for the tree walker).
	EvalMode compile.EvalMode
}

// Result summarizes a run. In OPS5 one cycle fires one instantiation, so
// Cycles == Firings unless the run halted during selection.
type Result struct {
	Cycles  int
	Firings int
	Halted  bool
	Stats   *stats.Run
}

// ErrMaxCycles is returned when Options.MaxCycles is exceeded.
var ErrMaxCycles = errors.New("ops5: maximum cycle count exceeded")

// ErrCanceled is returned by RunContext when its context ends before the
// run reaches quiescence; it also wraps the context's own error.
var ErrCanceled = errors.New("ops5: run canceled")

// Engine is the sequential baseline interpreter.
type Engine struct {
	prog    *compile.Program
	mem     *wm.Memory
	opts    Options
	matcher match.Matcher

	conflictSet map[match.Key]*match.Instantiation
	fired       map[match.Key]bool
	pending     wm.Delta
	result      Result
	halted      bool
}

// New creates a baseline engine over the full (unpartitioned) rule set.
func New(prog *compile.Program, opts Options) *Engine {
	if opts.Matcher == nil {
		opts.Matcher = rete.New
	}
	if opts.Output == nil {
		opts.Output = io.Discard
	}
	e := &Engine{
		prog:        prog,
		mem:         wm.NewMemory(prog.Schema),
		opts:        opts,
		matcher:     opts.Matcher(prog.Rules),
		conflictSet: make(map[match.Key]*match.Instantiation),
		fired:       make(map[match.Key]bool),
		result:      Result{Stats: &stats.Run{}},
	}
	for _, f := range prog.Facts {
		w := e.mem.InsertFields(f.Tmpl, append([]wm.Value(nil), f.Fields...))
		e.pending.Added = append(e.pending.Added, w)
	}
	return e
}

// Memory exposes the working memory.
func (e *Engine) Memory() *wm.Memory { return e.mem }

// Insert queues a fact programmatically.
func (e *Engine) Insert(template string, fields map[string]wm.Value) (*wm.WME, error) {
	w, err := e.mem.Insert(template, fields)
	if err != nil {
		return nil, err
	}
	e.pending.Added = append(e.pending.Added, w)
	return w, nil
}

// InsertFields queues a fact with a positional field vector.
func (e *Engine) InsertFields(t *wm.Template, fields []wm.Value) *wm.WME {
	w := e.mem.InsertFields(t, fields)
	e.pending.Added = append(e.pending.Added, w)
	return w
}

// Run executes recognize–act cycles to quiescence, halt, or the limit.
func (e *Engine) Run() (Result, error) { return e.RunContext(context.Background()) }

// RunContext is Run with cancellation, observed at cycle boundaries so
// working memory is always left in a consistent committed state.
func (e *Engine) RunContext(ctx context.Context) (Result, error) {
	for {
		if err := ctx.Err(); err != nil {
			return e.result, fmt.Errorf("%w: %w", ErrCanceled, err)
		}
		progress, err := e.Step()
		if err != nil {
			return e.result, err
		}
		if !progress {
			return e.result, nil
		}
		if e.opts.MaxCycles > 0 && e.result.Cycles >= e.opts.MaxCycles {
			return e.result, fmt.Errorf("%w (%d)", ErrMaxCycles, e.opts.MaxCycles)
		}
	}
}

// Step runs one recognize–act cycle (match, select one, fire it).
func (e *Engine) Step() (bool, error) {
	if e.halted {
		return false, nil
	}
	var cyc stats.Cycle

	t0 := time.Now()
	ch := e.matcher.Apply(e.pending)
	e.pending = wm.Delta{}
	for _, in := range ch.Removed {
		delete(e.conflictSet, in.Key())
		delete(e.fired, in.Key())
	}
	for _, in := range ch.Added {
		e.conflictSet[in.Key()] = in
	}
	cyc.Match = time.Since(t0)

	t0 = time.Now()
	best := e.selectInstantiation()
	cyc.Redact = time.Since(t0) // conflict-resolution time in the Redact slot
	if best == nil {
		return false, nil
	}
	cyc.ConflictSize = len(e.conflictSet)

	t0 = time.Now()
	halted, err := e.fire(best, &cyc)
	cyc.Fire = time.Since(t0)
	if err != nil {
		return false, err
	}
	cyc.Fired = 1
	e.fired[best.Key()] = true
	e.result.Firings++
	e.result.Cycles++
	e.result.Stats.Add(cyc)
	e.halted = halted
	e.result.Halted = halted
	return !halted, nil
}

// ExplainConflictSet writes a human-readable listing of the current
// conflict set (see match.Explain).
func (e *Engine) ExplainConflictSet(w io.Writer) error {
	ins := make([]*match.Instantiation, 0, len(e.conflictSet))
	for _, in := range e.conflictSet {
		ins = append(ins, in)
	}
	match.SortInstantiations(ins)
	return match.Explain(w, ins, e.fired)
}

// selectInstantiation applies refraction and the configured strategy.
func (e *Engine) selectInstantiation() *match.Instantiation {
	var best *match.Instantiation
	for k, in := range e.conflictSet {
		if e.fired[k] {
			continue
		}
		if best == nil || e.prefer(in, best) {
			best = in
		}
	}
	return best
}

// prefer reports whether a should fire before b under the strategy.
func (e *Engine) prefer(a, b *match.Instantiation) bool {
	if e.opts.Strategy == MEA {
		at, bt := a.WMEs[0].Time, b.WMEs[0].Time
		if at != bt {
			return at > bt
		}
	}
	if c := compareRecency(a, b); c != 0 {
		return c > 0
	}
	if a.Rule.Specificity != b.Rule.Specificity {
		return a.Rule.Specificity > b.Rule.Specificity
	}
	// Deterministic final tie-break.
	return a.Compare(b) < 0
}

// compareRecency implements OPS5 LEX recency: compare the time tags of
// each instantiation sorted in descending order; the first difference
// decides; if one instantiation exhausts its tags first, the other (which
// still has tags) dominates.
func compareRecency(a, b *match.Instantiation) int {
	at, bt := sortedTagsDesc(a), sortedTagsDesc(b)
	n := len(at)
	if len(bt) < n {
		n = len(bt)
	}
	for i := 0; i < n; i++ {
		switch {
		case at[i] > bt[i]:
			return 1
		case at[i] < bt[i]:
			return -1
		}
	}
	switch {
	case len(at) > len(bt):
		return 1
	case len(at) < len(bt):
		return -1
	}
	return 0
}

func sortedTagsDesc(in *match.Instantiation) []int64 {
	tags := make([]int64, len(in.WMEs))
	for i, w := range in.WMEs {
		tags[i] = w.Time
	}
	sort.Slice(tags, func(i, j int) bool { return tags[i] > tags[j] })
	return tags
}

// env implements compile.Env for sequential RHS execution.
type env struct {
	inst   *match.Instantiation
	locals []wm.Value
}

func (v *env) Ref(r compile.VarRef) wm.Value { return v.inst.Binding(r) }
func (v *env) Local(i int) wm.Value          { return v.locals[i] }
func (v *env) MetaVal(int, compile.VarRef) wm.Value {
	panic("ops5: RHS has no meta context")
}
func (v *env) MetaTag(int) int64          { panic("ops5: RHS has no meta context") }
func (v *env) MetaRuleName(int) string    { panic("ops5: RHS has no meta context") }
func (v *env) MetaPrecedes(int, int) bool { panic("ops5: RHS has no meta context") }

// fire executes one instantiation's RHS, applying effects to working
// memory immediately (sequential semantics) and accumulating the WM delta
// for the next match phase.
func (e *Engine) fire(in *match.Instantiation, cyc *stats.Cycle) (bool, error) {
	ev := &env{inst: in}
	if n := in.Rule.NumLocals; n > 0 {
		ev.locals = make([]wm.Value, n)
	}
	var out bytes.Buffer
	halted := false
	for _, a := range in.Rule.Actions {
		switch a.Kind {
		case compile.ActMake:
			fields := make([]wm.Value, a.Tmpl.Arity())
			for _, s := range a.Slots {
				v, err := e.opts.EvalMode.Eval(s.Expr, ev)
				if err != nil {
					return false, fmt.Errorf("ops5: firing %s: %w", in, err)
				}
				fields[s.Field] = v
			}
			w := e.mem.InsertFields(a.Tmpl, fields)
			e.pending.Added = append(e.pending.Added, w)
		case compile.ActModify:
			old := in.WMEs[a.Target]
			fields := append([]wm.Value(nil), old.Fields...)
			for _, s := range a.Slots {
				v, err := e.opts.EvalMode.Eval(s.Expr, ev)
				if err != nil {
					return false, fmt.Errorf("ops5: firing %s: %w", in, err)
				}
				fields[s.Field] = v
			}
			if w, ok := e.mem.Remove(old.Time); ok {
				e.pending.Removed = append(e.pending.Removed, w)
			}
			nw := e.mem.InsertFields(old.Tmpl, fields)
			e.pending.Added = append(e.pending.Added, nw)
		case compile.ActRemove:
			for _, t := range a.Targets {
				if w, ok := e.mem.Remove(in.WMEs[t].Time); ok {
					e.pending.Removed = append(e.pending.Removed, w)
				}
			}
		case compile.ActBind:
			if len(a.Exprs) == 0 {
				ev.locals[a.Local] = wm.Sym(fmt.Sprintf("g%s/%d", in.KeyString(), a.Local))
				continue
			}
			v, err := e.opts.EvalMode.Eval(a.Exprs[0], ev)
			if err != nil {
				return false, fmt.Errorf("ops5: firing %s: %w", in, err)
			}
			ev.locals[a.Local] = v
		case compile.ActWrite:
			for _, x := range a.Exprs {
				v, err := e.opts.EvalMode.Eval(x, ev)
				if err != nil {
					return false, fmt.Errorf("ops5: firing %s: %w", in, err)
				}
				if v.Kind == wm.KindStr {
					out.WriteString(v.S)
				} else {
					out.WriteString(v.String())
				}
			}
		case compile.ActHalt:
			halted = true
		}
	}
	cyc.DeltaSize = e.pending.Size()
	if out.Len() > 0 {
		if _, err := e.opts.Output.Write(out.Bytes()); err != nil {
			return false, fmt.Errorf("ops5: write action output: %w", err)
		}
	}
	return halted, nil
}
