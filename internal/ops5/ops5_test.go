package ops5

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"parulel/internal/compile"
	"parulel/internal/match/treat"
	"parulel/internal/wm"
)

func compileOK(t *testing.T, src string) *compile.Program {
	t.Helper()
	p, err := compile.CompileSource(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

func TestOPS5FiresOnePerCycle(t *testing.T) {
	// The defining OPS5 property: N independent matches need N cycles.
	prog := compileOK(t, `
(literalize src id)
(literalize sink id)
(rule expand (src ^id <i>) --> (make sink ^id <i>) (remove 1))
(wm (src ^id 1) (src ^id 2) (src ^id 3) (src ^id 4) (src ^id 5))
`)
	e := New(prog, Options{})
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 5 || res.Firings != 5 {
		t.Errorf("cycles=%d firings=%d, want 5/5 (one per cycle)", res.Cycles, res.Firings)
	}
	if n := e.Memory().CountOf("sink"); n != 5 {
		t.Errorf("sinks = %d", n)
	}
}

func TestOPS5LEXPrefersRecency(t *testing.T) {
	// Two matches; LEX fires the more recent one first.
	prog := compileOK(t, `
(literalize a x)
(literalize log x)
(rule r (a ^x <v>) --> (make log ^x <v>) (remove 1))
(wm (a ^x 10) (a ^x 20))
`)
	e := New(prog, Options{Strategy: LEX})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	logs := e.Memory().OfTemplate("log")
	if len(logs) != 2 {
		t.Fatalf("logs: %v", logs)
	}
	// a ^x 20 has the later time tag, so it logs first.
	if logs[0].Fields[0] != wm.Int(20) || logs[1].Fields[0] != wm.Int(10) {
		t.Errorf("LEX order wrong: %v", logs)
	}
}

func TestOPS5LEXSpecificityTieBreak(t *testing.T) {
	// Both rules match the same single WME (equal recency); the more
	// specific rule must win.
	prog := compileOK(t, `
(literalize a x flag)
(literalize log which)
(rule broad
  <w> <- (a ^x <v>)
-->
  (make log ^which broad)
  (remove <w>))
(rule narrow
  <w> <- (a ^x <v> ^flag on)
  (test (> <v> 0))
-->
  (make log ^which narrow)
  (remove <w>))
(wm (a ^x 1 ^flag on))
`)
	e := New(prog, Options{Strategy: LEX})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	logs := e.Memory().OfTemplate("log")
	if len(logs) != 1 || logs[0].Fields[0] != wm.Sym("narrow") {
		t.Errorf("specificity tie-break wrong: %v", logs)
	}
}

func TestOPS5MEAFirstElementDominates(t *testing.T) {
	// MEA prioritizes the first CE's recency: the goal WME made later
	// drives control, even though another instantiation has a more recent
	// non-first tag.
	prog := compileOK(t, `
(literalize goal id)
(literalize datum id)
(literalize log goal)
(rule act
  (goal ^id <g>)
  (datum ^id <d>)
-->
  (make log ^goal <g>)
  (remove 1))
(wm (goal ^id 1) (datum ^id 100) (goal ^id 2))
`)
	// Under MEA: instantiations (goal1,datum) first-tag=1, (goal2,datum)
	// first-tag=3 → goal 2 fires first.
	e := New(prog, Options{Strategy: MEA})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	logs := e.Memory().OfTemplate("log")
	if len(logs) != 2 {
		t.Fatalf("logs: %v", logs)
	}
	if logs[0].Fields[0] != wm.Int(2) || logs[1].Fields[0] != wm.Int(1) {
		t.Errorf("MEA order wrong: %v", logs)
	}
}

func TestOPS5Refraction(t *testing.T) {
	prog := compileOK(t, `
(literalize a x)
(literalize out x)
(rule once (a ^x <v>) --> (make out ^x <v>))
(wm (a ^x 1))
`)
	e := New(prog, Options{MaxCycles: 10})
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Firings != 1 {
		t.Errorf("firings = %d, want 1", res.Firings)
	}
}

func TestOPS5HaltAndMaxCycles(t *testing.T) {
	prog := compileOK(t, `
(literalize a x)
(rule stop (a ^x <v>) --> (halt))
(wm (a ^x 1))
`)
	e := New(prog, Options{})
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted || res.Cycles != 1 {
		t.Errorf("halt: %+v", res)
	}

	div := compileOK(t, `
(literalize a x)
(rule grow (a ^x <v>) --> (make a ^x (+ <v> 1)))
(wm (a ^x 0))
`)
	e2 := New(div, Options{MaxCycles: 7})
	_, err = e2.Run()
	if !errors.Is(err, ErrMaxCycles) {
		t.Fatalf("err = %v, want ErrMaxCycles", err)
	}
}

func TestOPS5WriteAndTreatMatcher(t *testing.T) {
	prog := compileOK(t, `
(literalize a x)
(rule greet (a ^x <v>) --> (write "got " <v> (crlf)) (remove 1))
(wm (a ^x 7))
`)
	var buf bytes.Buffer
	e := New(prog, Options{Output: &buf, Matcher: treat.New})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "got 7\n" {
		t.Errorf("output = %q", buf.String())
	}
}

func TestOPS5ModifyLoop(t *testing.T) {
	prog := compileOK(t, `
(literalize counter n)
(rule dec
  <c> <- (counter ^n <n>)
  (test (> <n> 0))
-->
  (modify <c> ^n (- <n> 1)))
(wm (counter ^n 4))
`)
	e := New(prog, Options{MaxCycles: 20})
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Firings != 4 {
		t.Errorf("firings = %d, want 4", res.Firings)
	}
	c := e.Memory().OfTemplate("counter")
	if len(c) != 1 || c[0].Fields[0] != wm.Int(0) {
		t.Errorf("counter: %v", c)
	}
}

func TestOPS5RHSEvalErrorSurfaces(t *testing.T) {
	prog := compileOK(t, `
(literalize a x)
(rule bad (a ^x <v>) --> (make a ^x (div <v> 0)))
(wm (a ^x 1))
`)
	e := New(prog, Options{MaxCycles: 5})
	if _, err := e.Run(); err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("err = %v", err)
	}
}

func TestOPS5ExplainConflictSet(t *testing.T) {
	prog := compileOK(t, `
(literalize a x)
(literalize out x)
(rule once (a ^x <v>) --> (make out ^x <v>))
(wm (a ^x 3))
`)
	e := New(prog, Options{MaxCycles: 10})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.ExplainConflictSet(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, "fired (refracted)") || !strings.Contains(s, "<v> = 3") {
		t.Errorf("explain: %q", s)
	}
}

func TestOPS5InsertFieldsAndGensym(t *testing.T) {
	prog := compileOK(t, `
(literalize a x)
(literalize node id src)
(rule tag-it (a ^x <v>) --> (bind <id>) (make node ^id <id> ^src <v>) (remove 1))
`)
	e := New(prog, Options{MaxCycles: 10})
	tmpl := e.Memory().Schema().MustLookup("a")
	e.InsertFields(tmpl, []wm.Value{wm.Int(5)})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	nodes := e.Memory().OfTemplate("node")
	if len(nodes) != 1 || nodes[0].Fields[0].Kind != wm.KindSym {
		t.Fatalf("nodes: %v", nodes)
	}
}

func TestOPS5BindExpression(t *testing.T) {
	prog := compileOK(t, `
(literalize a x)
(literalize out x)
(rule r (a ^x <v>) --> (bind <d> (* <v> 3)) (make out ^x <d>) (remove 1))
(wm (a ^x 4))
`)
	e := New(prog, Options{})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	outs := e.Memory().OfTemplate("out")
	if len(outs) != 1 || outs[0].Fields[0] != wm.Int(12) {
		t.Fatalf("outs: %v", outs)
	}
}

func TestStrategyString(t *testing.T) {
	if LEX.String() != "LEX" || MEA.String() != "MEA" {
		t.Error("Strategy.String wrong")
	}
}
