package audit

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"parulel/internal/checkpoint"
	"parulel/internal/wal"
	"parulel/internal/wm"
)

// buildSessionDir lays out a realistic post-checkpoint session: frames
// 1..5 were appended, checkpointed (committing the ledger root over them,
// Seq horizon 5) and the WAL emptied; frames 6..8 followed. Everything is
// flushed, so a clean audit has zero findings.
func buildSessionDir(t *testing.T) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "s1")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	led, err := wal.OpenLedger(filepath.Join(dir, "merkle.log"))
	if err != nil {
		t.Fatal(err)
	}
	l, _, err := wal.Open(filepath.Join(dir, "wal.log"), wal.Options{Policy: wal.PolicyAlways})
	if err != nil {
		t.Fatal(err)
	}
	l.SetLedger(led)
	for i := 0; i < 5; i++ {
		if err := l.Append(&wal.Record{Op: wal.OpRun, Cycles: i + 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := led.SyncAll(); err != nil {
		t.Fatal(err)
	}
	st, err := led.State()
	if err != nil {
		t.Fatal(err)
	}
	h := checkpoint.Header{
		Seq: 5, Program: "p", Source: "(literalize a x)", Workers: 1, Matcher: "rete",
		Ledger: &checkpoint.LedgerCommit{Count: st.Count, Root: st.Root, Peaks: st.Peaks},
	}
	f, err := os.Create(filepath.Join(dir, "checkpoint"))
	if err != nil {
		t.Fatal(err)
	}
	if err := checkpoint.Write(f, h, wm.NewMemory(wm.NewSchema())); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	for i := 5; i < 8; i++ {
		if err := l.Append(&wal.Record{Op: wal.OpRun, Cycles: i + 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := led.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := filepath.Join(t.TempDir(), "s1")
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func mutateFile(t *testing.T, path string, mutate func([]byte) []byte) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, mutate(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

// flipFrameBody flips one payload byte of the idx-th WAL frame and
// recomputes the CRC, so the frame still scans as valid — only the
// Merkle layer can catch it.
func flipFrameBody(data []byte, idx int) []byte {
	off := 0
	for i := 0; i < idx; i++ {
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		off += 8 + n
	}
	n := int(binary.LittleEndian.Uint32(data[off : off+4]))
	payload := data[off+8 : off+8+n]
	// Flip a digit of the cycles value (not seq — a changed seq breaks
	// the scan's monotonicity check and truncates instead), keeping the
	// JSON valid so only the Merkle layer can object.
	key := []byte(`"cycles":`)
	i := bytes.Index(payload, key)
	if i < 0 {
		panic("no cycles field in frame payload")
	}
	d := i + len(key)
	payload[d] = '0' + ('9' - payload[d])
	binary.LittleEndian.PutUint32(data[off+4:off+8], crc32.ChecksumIEEE(payload))
	return data
}

func codes(r *Report, level string) map[string]bool {
	out := map[string]bool{}
	for _, f := range r.Findings {
		if f.Level == level {
			out[f.Code] = true
		}
	}
	return out
}

func TestVerifyCleanSession(t *testing.T) {
	dir := buildSessionDir(t)
	r := VerifySessionDir(dir)
	if len(r.Findings) != 0 {
		t.Fatalf("clean session has findings: %+v", r.Findings)
	}
	if r.Failed(true) {
		t.Fatal("clean session failed strict verification")
	}
	if r.Frames != 3 || r.LedgerCount != 8 || r.Committed != 5 {
		t.Fatalf("clean session shape: frames=%d ledger=%d committed=%d", r.Frames, r.LedgerCount, r.Committed)
	}
}

// TestTamperDetection is the bit-flip table: every corruption class is
// rejected with its own distinct finding code.
func TestTamperDetection(t *testing.T) {
	clean := buildSessionDir(t)

	cases := []struct {
		name      string
		corrupt   func(t *testing.T, dir string)
		wantError string // code that must be present at error level
		extraWarn string // optional warn-level code also expected
	}{
		{
			name: "frame body flip with fixed CRC",
			// The CRC layer is blind to this; the ledger entry is not.
			corrupt: func(t *testing.T, dir string) {
				mutateFile(t, filepath.Join(dir, "wal.log"), func(b []byte) []byte {
					return flipFrameBody(b, 1)
				})
			},
			wantError: CodeFrameMismatch,
		},
		{
			name: "frame header flip",
			// The CRC layer truncates the frame and everything behind it;
			// the surviving ledger entries then testify frames are gone.
			corrupt: func(t *testing.T, dir string) {
				mutateFile(t, filepath.Join(dir, "wal.log"), func(b []byte) []byte {
					b[4] ^= 0xff // CRC field of the first frame
					return b
				})
			},
			wantError: CodeLedgerFrameMissing,
			extraWarn: CodeWALTorn,
		},
		{
			name: "checkpoint-chained root flip",
			// The committed root lives inside the checkpoint's CRC frame.
			corrupt: func(t *testing.T, dir string) {
				mutateFile(t, filepath.Join(dir, "checkpoint"), func(b []byte) []byte {
					b[len(b)/2] ^= 0x01
					return b
				})
			},
			wantError: CodeCheckpointCorrupt,
		},
		{
			name: "committed ledger entry flip",
			// Rewriting a committed entry breaks the committed root.
			corrupt: func(t *testing.T, dir string) {
				mutateFile(t, filepath.Join(dir, "merkle.log"), func(b []byte) []byte {
					b[len(b)-4*40+20] ^= 0xff // leaf bytes of entry seq 5
					return b
				})
			},
			wantError: CodeCommitMismatch,
		},
		{
			name: "uncommitted ledger entry flip",
			// Beyond the commit the root check is silent, but the frame
			// cross-check is not.
			corrupt: func(t *testing.T, dir string) {
				mutateFile(t, filepath.Join(dir, "merkle.log"), func(b []byte) []byte {
					b[len(b)-40+20] ^= 0xff // leaf bytes of entry seq 8
					return b
				})
			},
			wantError: CodeFrameMismatch,
		},
		{
			name: "spliced frame from another session",
			// Same seq, valid CRC, different history: replace this
			// session's post-checkpoint WAL with a foreign session's.
			corrupt: func(t *testing.T, dir string) {
				other := buildSessionDir(t)
				data, err := os.ReadFile(filepath.Join(other, "wal.log"))
				if err != nil {
					t.Fatal(err)
				}
				// Make the foreign frames differ in content, not just
				// provenance: flip a body byte CRC-consistently there too.
				data = flipFrameBody(data, 0)
				if err := os.WriteFile(filepath.Join(dir, "wal.log"), data, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantError: CodeFrameMismatch,
		},
		{
			name: "ledger deleted",
			corrupt: func(t *testing.T, dir string) {
				if err := os.Remove(filepath.Join(dir, "merkle.log")); err != nil {
					t.Fatal(err)
				}
			},
			wantError: CodeLedgerMissing,
		},
		{
			name: "ledger padded with a forged entry",
			// An entry claiming a frame the WAL never held, past both the
			// horizon and the log end.
			corrupt: func(t *testing.T, dir string) {
				mutateFile(t, filepath.Join(dir, "merkle.log"), func(b []byte) []byte {
					var entry [40]byte
					binary.LittleEndian.PutUint64(entry[:8], 99)
					return append(b, entry[:]...)
				})
			},
			wantError: CodeLedgerFrameMissing,
		},
		{
			name: "ledger header flip",
			corrupt: func(t *testing.T, dir string) {
				mutateFile(t, filepath.Join(dir, "merkle.log"), func(b []byte) []byte {
					b[0] ^= 0xff
					return b
				})
			},
			wantError: CodeLedgerCorrupt,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := copyDir(t, clean)
			tc.corrupt(t, dir)
			r := VerifySessionDir(dir)
			errs := codes(r, Error)
			if !errs[tc.wantError] {
				t.Fatalf("want error code %s, findings: %+v", tc.wantError, r.Findings)
			}
			if tc.extraWarn != "" && !codes(r, Warn)[tc.extraWarn] {
				t.Fatalf("want warn code %s, findings: %+v", tc.extraWarn, r.Findings)
			}
			if !r.Failed(false) {
				t.Fatal("tampered session passed verification")
			}
		})
	}
}

// TestCrashDebrisIsWarnOnly: the states recovery repairs — a torn WAL
// tail and a torn ledger entry — must not fail a default (non-strict)
// audit, but must fail a strict one.
func TestCrashDebrisIsWarnOnly(t *testing.T) {
	clean := buildSessionDir(t)

	t.Run("torn wal tail", func(t *testing.T) {
		dir := copyDir(t, clean)
		mutateFile(t, filepath.Join(dir, "wal.log"), func(b []byte) []byte {
			return append(b, 0x10, 0x00, 0x00, 0x00, 0xde, 0xad)
		})
		r := VerifySessionDir(dir)
		if r.Failed(false) {
			t.Fatalf("torn tail failed non-strict audit: %+v", r.Findings)
		}
		if !r.Failed(true) || !codes(r, Warn)[CodeWALTorn] {
			t.Fatalf("torn tail not warned: %+v", r.Findings)
		}
	})

	t.Run("torn ledger entry", func(t *testing.T) {
		dir := copyDir(t, clean)
		mutateFile(t, filepath.Join(dir, "merkle.log"), func(b []byte) []byte {
			return b[:len(b)-7]
		})
		r := VerifySessionDir(dir)
		if r.Failed(false) {
			t.Fatalf("torn ledger failed non-strict audit: %+v", r.Findings)
		}
		want := codes(r, Warn)
		if !want[CodeLedgerTorn] || !want[CodeUnledgeredTail] {
			t.Fatalf("torn ledger warns: %+v", r.Findings)
		}
	})
}

func TestVerifyDataDir(t *testing.T) {
	// Lay sessions out as the server does: <dataDir>/sessions/<id>.
	data := t.TempDir()
	sessions := filepath.Join(data, "sessions")
	src := buildSessionDir(t)
	for _, id := range []string{"a1", "b2"} {
		dst := filepath.Join(sessions, id)
		if err := os.MkdirAll(dst, 0o755); err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"wal.log", "merkle.log", "checkpoint"} {
			b, err := os.ReadFile(filepath.Join(src, name))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dst, name), b, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	reports, err := VerifyDataDir(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 || reports[0].Session != "a1" || reports[1].Session != "b2" {
		t.Fatalf("reports: %+v", reports)
	}
	for _, r := range reports {
		if r.Failed(true) {
			t.Fatalf("session %s failed: %+v", r.Session, r.Findings)
		}
	}
	if _, err := VerifyDataDir(t.TempDir()); err == nil {
		t.Fatal("empty dir should error")
	}

	// JSON round-trip: findings are part of the scripting surface.
	b, err := json.Marshal(reports)
	if err != nil {
		t.Fatal(err)
	}
	var back []*Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].Session != "a1" {
		t.Fatalf("round-tripped reports: %+v", back)
	}
}
