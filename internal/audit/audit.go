// Package audit verifies a paruleld data directory offline: no running
// server, no locks — just the session files. For every session it
// cross-checks the three durability artifacts against each other:
//
//   - the WAL (wal.log): every surviving frame must hash to exactly the
//     leaf its Merkle ledger entry recorded — a frame that was altered,
//     replaced, or spliced in from another session fails here;
//   - the Merkle ledger (merkle.log): entries the newest checkpoint
//     committed must reproduce the committed root (and the previous
//     checkpoint's root through the chain), and committed entries whose
//     frames should still be in the log must have them;
//   - the checkpoint: its CRC frame must verify and its ledger commit
//     must match the ledger.
//
// Findings are split into errors (history was altered or lost after
// being committed) and warnings (crash-consistent states the recovery
// path repairs: torn tails, frames whose ledger flush never landed).
// Strict mode treats warnings as failures — right for "this machine shut
// down cleanly, anything off is suspect", wrong for auditing after a
// crash.
package audit

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"parulel/internal/checkpoint"
	"parulel/internal/wal"
)

// Finding levels.
const (
	Error = "error"
	Warn  = "warn"
)

// Finding codes, stable for scripting.
const (
	CodeCheckpointCorrupt  = "checkpoint-corrupt"
	CodeLedgerCorrupt      = "ledger-corrupt"
	CodeLedgerMissing      = "ledger-missing"
	CodeLedgerTorn         = "ledger-torn"
	CodeNoLedger           = "no-ledger"
	CodeWALUnreadable      = "wal-unreadable"
	CodeWALTorn            = "wal-torn"
	CodeFrameMismatch      = "frame-ledger-mismatch"
	CodeLedgerGap          = "ledger-gap"
	CodeUnledgeredTail     = "unledgered-tail"
	CodeCommittedMissing   = "committed-frame-missing"
	CodeLedgerFrameMissing = "ledger-frame-missing"
	CodeCommitMismatch     = "commit-root-mismatch"
	CodeChainMismatch      = "commit-chain-mismatch"
)

// Finding is one observation about a session's on-disk state.
type Finding struct {
	Level  string `json:"level"`
	Code   string `json:"code"`
	Detail string `json:"detail"`
}

// Report is the verification result for one session directory.
type Report struct {
	Session  string    `json:"session"`
	Dir      string    `json:"dir"`
	Findings []Finding `json:"findings,omitempty"`

	Frames      int    `json:"frames"`       // valid WAL frames scanned
	LedgerCount uint64 `json:"ledger_count"` // leaves the ledger covers (base included)
	Committed   uint64 `json:"committed"`    // leaves the newest checkpoint commits
	Root        string `json:"root,omitempty"`
}

func (r *Report) add(level, code, detail string) {
	r.Findings = append(r.Findings, Finding{Level: level, Code: code, Detail: detail})
}

// Failed reports whether the session fails verification: any error, or
// under strict any warning too.
func (r *Report) Failed(strict bool) bool {
	for _, f := range r.Findings {
		if f.Level == Error || (strict && f.Level == Warn) {
			return true
		}
	}
	return false
}

// VerifySessionDir audits one session directory.
func VerifySessionDir(dir string) *Report {
	r := &Report{Session: filepath.Base(dir), Dir: dir}

	var (
		h        checkpoint.Header
		haveCkpt bool
	)
	if f, err := os.Open(filepath.Join(dir, "checkpoint")); err == nil {
		h, _, err = checkpoint.Read(f)
		f.Close()
		if err != nil {
			// The CRC frame covers the whole header — a flipped bit in
			// the committed root (or anything else) lands here.
			r.add(Error, CodeCheckpointCorrupt, err.Error())
		} else {
			haveCkpt = true
		}
	} else if !os.IsNotExist(err) {
		r.add(Error, CodeCheckpointCorrupt, err.Error())
	}
	var ckptSeq uint64
	if haveCkpt {
		ckptSeq = h.Seq
		if h.Ledger != nil {
			r.Committed = h.Ledger.Count
		}
	}

	info, err := wal.InspectLedger(filepath.Join(dir, "merkle.log"))
	if err != nil {
		r.add(Error, CodeLedgerCorrupt, err.Error())
	}
	switch {
	case info == nil && r.Committed > 0:
		r.add(Error, CodeLedgerMissing, fmt.Sprintf("checkpoint commits %d leaves but no ledger file exists", r.Committed))
	case info == nil && err == nil:
		r.add(Warn, CodeNoLedger, "no merkle ledger; nothing to attest frames against")
	}

	scanRes, err := wal.ScanFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		r.add(Error, CodeWALUnreadable, err.Error())
	}
	r.Frames = len(scanRes.Records)
	if scanRes.TruncatedBytes > 0 {
		r.add(Warn, CodeWALTorn, fmt.Sprintf("%d torn/corrupt bytes past the last valid frame", scanRes.TruncatedBytes))
	}

	if info == nil {
		return r
	}
	r.LedgerCount = info.Count()
	if info.TornBytes > 0 {
		r.add(Warn, CodeLedgerTorn, fmt.Sprintf("%d torn bytes past the last complete entry", info.TornBytes))
	}
	if root, rerr := info.Root(); rerr == nil {
		r.Root = root
	} else {
		r.add(Error, CodeLedgerCorrupt, rerr.Error())
	}

	// Checkpoint commit: the committed prefix must reproduce the root it
	// was signed under, and so must the previous checkpoint's through
	// the chain.
	if haveCkpt && h.Ledger != nil {
		c := h.Ledger
		if c.Count > info.Count() {
			r.add(Error, CodeLedgerGap,
				fmt.Sprintf("checkpoint commits %d leaves, ledger holds %d", c.Count, info.Count()))
		} else {
			if got, rerr := info.RootAt(c.Count); rerr != nil {
				r.add(Error, CodeCommitMismatch, rerr.Error())
			} else if got != c.Root {
				r.add(Error, CodeCommitMismatch,
					fmt.Sprintf("root over %d committed leaves is %s, checkpoint recorded %s", c.Count, got, c.Root))
			}
			if c.PrevCount > 0 && c.PrevCount >= info.Base && c.PrevCount <= info.Count() {
				if got, rerr := info.RootAt(c.PrevCount); rerr != nil {
					r.add(Error, CodeChainMismatch, rerr.Error())
				} else if got != c.PrevRoot {
					r.add(Error, CodeChainMismatch,
						fmt.Sprintf("root over %d chained leaves is %s, checkpoint recorded %s", c.PrevCount, got, c.PrevRoot))
				}
			}
		}
	}

	// Frame ↔ entry cross-check.
	entryAt := make(map[uint64]int, len(info.Entries))
	for i, e := range info.Entries {
		entryAt[e.Seq] = i
	}
	lastEntrySeq := uint64(0)
	if n := len(info.Entries); n > 0 {
		lastEntrySeq = info.Entries[n-1].Seq
	}
	for i := range scanRes.Records {
		rec := &scanRes.Records[i]
		leaf, lerr := wal.RecordLeafHex(rec)
		if lerr != nil {
			r.add(Error, CodeWALUnreadable, fmt.Sprintf("frame seq %d: %v", rec.Seq, lerr))
			continue
		}
		if ei, ok := entryAt[rec.Seq]; ok {
			if info.Entries[ei].Leaf != leaf {
				r.add(Error, CodeFrameMismatch,
					fmt.Sprintf("frame seq %d hashes to %s, ledger entry records %s", rec.Seq, leaf, info.Entries[ei].Leaf))
			}
		} else if rec.Seq <= lastEntrySeq {
			r.add(Error, CodeLedgerGap, fmt.Sprintf("frame seq %d has no ledger entry", rec.Seq))
		} else {
			r.add(Warn, CodeUnledgeredTail,
				fmt.Sprintf("frame seq %d past the ledger's last entry (ledger flush never landed)", rec.Seq))
		}
	}

	// Entries past the WAL: fine below the checkpoint horizon (the log
	// was legitimately emptied), always an error above it. Ledger entries
	// flush strictly after their frame's fsync confirms, so no crash
	// ordering leaves a durable entry without a durable frame — the log
	// was cut (perhaps by a corrupt frame truncating the valid prefix) or
	// the ledger padded.
	frameAt := make(map[uint64]bool, len(scanRes.Records))
	for i := range scanRes.Records {
		frameAt[scanRes.Records[i].Seq] = true
	}
	for i, e := range info.Entries {
		if e.Seq <= ckptSeq || frameAt[e.Seq] {
			continue
		}
		idx := info.Base + uint64(i)
		if idx < r.Committed {
			r.add(Error, CodeCommittedMissing,
				fmt.Sprintf("committed leaf %d (frame seq %d) has no surviving WAL frame", idx, e.Seq))
		} else {
			r.add(Error, CodeLedgerFrameMissing,
				fmt.Sprintf("ledger entry for seq %d has no WAL frame (entries flush only after the frame's fsync)", e.Seq))
		}
	}
	return r
}

// VerifyDataDir audits every session under a paruleld data directory
// (either the data dir itself — sessions live under <dir>/sessions — or
// a sessions directory directly). Reports come back sorted by session id.
func VerifyDataDir(dir string) ([]*Report, error) {
	root := dir
	if fi, err := os.Stat(filepath.Join(dir, "sessions")); err == nil && fi.IsDir() {
		root = filepath.Join(dir, "sessions")
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, err
	}
	var reports []*Report
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		reports = append(reports, VerifySessionDir(filepath.Join(root, e.Name())))
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].Session < reports[j].Session })
	if len(reports) == 0 {
		return nil, errors.New("no session directories found under " + root)
	}
	return reports, nil
}
