package core

import (
	"fmt"
	"sort"

	"parulel/internal/match"
	"parulel/internal/wm"
)

// This file exposes the engine state a durability layer must capture and
// restore beyond the working-memory contents. The engine is deterministic
// for a fixed program and mutation history (the property the differential
// tests enforce), so the replayable state is small:
//
//   - the run counters (cycles, firings, redactions, …) and the halted flag;
//   - the working memory's time-tag counter — tags feed meta-rule recency
//     tests and gensym values, so replayed insertions must mint the exact
//     tags the original process did;
//   - the refraction set — keys of fired instantiations still present in
//     the conflict set. The conflict set itself is *not* serialized: it is
//     recomputed by re-matching the restored working memory, and because
//     instantiation keys are a pure function of (rule index, time-tag
//     vector), the recomputed keys line up with the serialized ones.
//
// Everything else (matcher networks, pending delta bookkeeping) is
// derivable: a restored engine queues its whole working memory as the
// pending delta and the first Step rebuilds the match state.

// Counters is the engine's replayable counter state.
type Counters struct {
	Cycles          int   `json:"cycles"`
	Firings         int   `json:"firings"`
	Redactions      int   `json:"redactions"`
	RedactionRounds int   `json:"redaction_rounds"`
	WriteConflicts  int   `json:"write_conflicts"`
	Halted          bool  `json:"halted,omitempty"`
	NextTime        int64 `json:"next_time"`
}

// Counters returns the current replayable counter state.
func (e *Engine) Counters() Counters {
	return Counters{
		Cycles:          e.result.Cycles,
		Firings:         e.result.Firings,
		Redactions:      e.result.Redactions,
		RedactionRounds: e.result.RedactionRounds,
		WriteConflicts:  e.result.WriteConflicts,
		Halted:          e.halted,
		NextTime:        e.mem.NextTime(),
	}
}

// RestoreCounters installs checkpointed counter state into a freshly
// built engine (Options.NoInitialFacts, before any Step).
func (e *Engine) RestoreCounters(c Counters) {
	e.result.Cycles = c.Cycles
	e.result.Firings = c.Firings
	e.result.Redactions = c.Redactions
	e.result.RedactionRounds = c.RedactionRounds
	e.result.WriteConflicts = c.WriteConflicts
	e.result.Halted = c.Halted
	e.halted = c.Halted
	e.mem.SetNextTime(c.NextTime)
}

// RestoreWME reinstates a checkpointed working-memory element under its
// original time tag and queues it for the first match phase, exactly as
// if it were still the pending insertion of a committed cycle.
func (e *Engine) RestoreWME(template string, fields map[string]wm.Value, time int64) (*wm.WME, error) {
	w, err := e.mem.InsertAt(template, fields, time)
	if err != nil {
		return nil, err
	}
	e.pending.Added = append(e.pending.Added, w)
	return w, nil
}

// FiredKeys returns the refraction set — the keys of instantiations that
// have fired and are still continuously present in the conflict set — in
// a deterministic order, for checkpointing.
func (e *Engine) FiredKeys() []match.Key {
	keys := make([]match.Key, 0, len(e.fired))
	for k := range e.fired {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		switch {
		case a.Rule != b.Rule:
			return a.Rule < b.Rule
		case a.Tags != b.Tags:
			for t := range a.Tags {
				if a.Tags[t] != b.Tags[t] {
					return a.Tags[t] < b.Tags[t]
				}
			}
		case a.Len != b.Len:
			return a.Len < b.Len
		}
		return a.Hash < b.Hash
	})
	return keys
}

// RestoreFired reinstates a checkpointed refraction set. The keys refer
// to instantiations of the restored working memory; when the first match
// phase recomputes the conflict set, these instantiations are recognized
// as already fired and excluded from the eligible set — without this,
// recovery would re-fire rules the crashed process already fired.
func (e *Engine) RestoreFired(keys []match.Key) {
	for _, k := range keys {
		e.fired[k] = true
	}
}

// CurrentResult returns the cumulative result of all cycles run so far,
// without requiring another Run call. The durability layer uses it to
// seed a rehydrated session's last-result bookkeeping.
func (e *Engine) CurrentResult() Result { return e.result }

// ReplaySteps re-executes exactly n committed cycles of a logged run.
// The engine's determinism guarantees the replayed cycles reproduce the
// original working-memory evolution; the cycle counter is verified after
// replay and a mismatch is reported as divergence (a corrupt log or a
// determinism bug, never silently accepted).
func (e *Engine) ReplaySteps(n int) error {
	before := e.result.Cycles
	for i := 0; i < n; i++ {
		if _, err := e.Step(); err != nil {
			return fmt.Errorf("core: replay step %d/%d: %w", i+1, n, err)
		}
	}
	if got := e.result.Cycles - before; got != n {
		return fmt.Errorf("core: replay diverged: %d cycles committed, log recorded %d", got, n)
	}
	return nil
}
