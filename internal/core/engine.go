// Package core implements the PARULEL execution engine — the paper's
// primary contribution. Each cycle:
//
//  1. MATCH: the pending working-memory delta is applied to every worker's
//     matcher partition in parallel, producing the conflict set.
//  2. REDACT: the programmer's meta-rules run to a fixed point in
//     synchronous rounds, deleting (redacting) instantiations that must
//     not fire together — this replaces OPS5's built-in serial conflict
//     resolution with programmable, set-oriented conflict resolution.
//  3. FIRE: every surviving instantiation fires; right-hand sides are
//     evaluated in parallel across the workers, with effects buffered.
//  4. APPLY: the buffered effects are reconciled deterministically into
//     one working-memory delta, write conflicts are counted, and the
//     cycle repeats until quiescence or halt.
//
// The engine is deterministic: for a fixed program and initial working
// memory, the result is identical for any worker count (a property the
// tests check), because time tags, conflict resolution and output ordering
// are all derived from the deterministic instantiation order, never from
// goroutine scheduling.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"parulel/internal/compile"
	"parulel/internal/match"
	"parulel/internal/match/rete"
	"parulel/internal/stats"
	"parulel/internal/wm"
)

// Options configures an Engine.
type Options struct {
	// Workers is the number of parallel workers for match and fire. Rules
	// are partitioned round-robin across workers. Values < 1 mean 1.
	Workers int
	// Matcher builds each worker's match network. Default: rete.New.
	Matcher match.Factory
	// Output receives `(write …)` text. Default: io.Discard.
	Output io.Writer
	// MaxCycles aborts runaway programs. 0 means no limit.
	MaxCycles int
	// Trace, when non-nil, receives a one-line summary per cycle.
	Trace io.Writer
	// Tracer, when non-nil, receives structured per-cycle events (see the
	// Tracer interface for the callback order). Every call site is
	// nil-checked, so leaving it nil costs one branch per event.
	Tracer Tracer
	// DisableRedactionIndex turns off the redactor's equality-join hash
	// index, forcing nested-loop meta-rule matching (ablation E7).
	DisableRedactionIndex bool
	// SequentialRedaction switches redaction from the default synchronous
	// semantics (all meta matches against the full eligible set apply at
	// once; mutual redactions kill both) to sequential semantics
	// (meta-rules apply in declaration order with immediate effect, so a
	// redacted instantiation cannot justify later redactions). Explored
	// by ablation E8.
	SequentialRedaction bool
	// Partition selects how rules are distributed over workers (ablation
	// E9). The choice changes only load balance, never results.
	Partition Partition
	// NoInitialFacts skips queueing the program's `(wm …)` facts. Set
	// during checkpoint recovery, where the restored working memory
	// already contains them (under their original time tags).
	NoInitialFacts bool
	// EvalMode selects the expression backend for RHS actions and
	// meta-rule predicates: the bytecode VM (the zero value, the default)
	// or the tree-walking interpreter (compile.EvalInterp). The matchers
	// carry their own copy via rete.Options/treat.Options — set both from
	// the same flag (the facade's Config.EvalMode does).
	EvalMode compile.EvalMode
}

// Partition is a rule-to-worker distribution strategy.
type Partition uint8

// Partition strategies.
const (
	// PartitionRoundRobin deals rules to workers in declaration order.
	PartitionRoundRobin Partition = iota
	// PartitionBlock gives each worker a contiguous block of rules —
	// the worst case when expensive rules cluster together in the source.
	PartitionBlock
	// PartitionLPT assigns each rule, in decreasing static cost order
	// (LHS specificity as the proxy), to the least-loaded worker —
	// classic longest-processing-time balancing.
	PartitionLPT
)

func (p Partition) String() string {
	switch p {
	case PartitionBlock:
		return "block"
	case PartitionLPT:
		return "lpt"
	default:
		return "round-robin"
	}
}

// partitionRules distributes rules over n workers per the strategy.
func partitionRules(rules []*compile.Rule, n int, strategy Partition) [][]*compile.Rule {
	parts := make([][]*compile.Rule, n)
	switch strategy {
	case PartitionBlock:
		per := (len(rules) + n - 1) / n
		for i, r := range rules {
			w := i / per
			parts[w] = append(parts[w], r)
		}
	case PartitionLPT:
		order := make([]*compile.Rule, len(rules))
		copy(order, rules)
		sort.SliceStable(order, func(i, j int) bool { return order[i].Specificity > order[j].Specificity })
		load := make([]int, n)
		for _, r := range order {
			w := 0
			for k := 1; k < n; k++ {
				if load[k] < load[w] {
					w = k
				}
			}
			parts[w] = append(parts[w], r)
			load[w] += r.Specificity
		}
	default: // round-robin
		for i, r := range rules {
			parts[i%n] = append(parts[i%n], r)
		}
	}
	return parts
}

// Result summarizes a run.
type Result struct {
	Cycles          int
	Firings         int
	Redactions      int
	RedactionRounds int
	// WriteConflicts counts same-WME modify/remove collisions between
	// distinct instantiations within one cycle — PARULEL's signal that the
	// meta-rule program under-constrains parallel firing (experiment E6).
	WriteConflicts int
	Halted         bool
	Stats          *stats.Run
}

// ErrMaxCycles is returned when Options.MaxCycles is exceeded.
var ErrMaxCycles = errors.New("core: maximum cycle count exceeded")

// ErrCanceled is returned by RunContext when its context ends before the
// run reaches quiescence. The returned error also wraps the context's own
// error, so errors.Is works against context.Canceled and
// context.DeadlineExceeded as well.
var ErrCanceled = errors.New("core: run canceled")

// Engine executes a compiled PARULEL program.
type Engine struct {
	prog    *compile.Program
	mem     *wm.Memory
	opts    Options
	workers []*worker

	// conflictSet is the union of all workers' conflict sets, by key.
	conflictSet map[match.Key]*match.Instantiation
	// fired holds refraction state: keys of instantiations that have fired
	// and are still continuously present in the conflict set.
	fired map[match.Key]bool

	pending wm.Delta
	// pendingAddIdx indexes pending.Added by time tag for O(1) Retract of
	// not-yet-matched insertions. Built lazily on the first Retract after
	// pending grows (pendingIdxLen marks how far it has been built) and
	// reset when the pending delta is consumed. Retract replaces a pending
	// entry with a nil tombstone so indexed positions stay stable;
	// pendingTombs counts them for the pre-match compaction.
	pendingAddIdx map[int64]int
	pendingIdxLen int
	pendingTombs  int
	// eligible is the reused scratch for Step's eligible-set construction;
	// it never escapes a cycle.
	eligible []*match.Instantiation
	redact   *redactor
	result   Result
	halted   bool
	// activity counts instantiations entering the conflict set per rule,
	// feeding the copy-and-constrain advisor (copycon.Advise).
	activity map[string]int
	// fires counts firings per rule across the run, feeding RuleFires and
	// the per-rule profile merge (RuleProfiles).
	fires map[string]int
}

// worker owns one rule partition and its matcher.
type worker struct {
	matcher match.Matcher
	changes match.Changes
	// matchWork and fireWork accumulate this worker's busy time across
	// the run. On a single-core host wall-clock speedup is unobservable,
	// but sum(work)/max(work) still measures how well the program's match
	// and fire load distributes — the quantity experiments E2/E3 report
	// as "potential speedup".
	matchWork time.Duration
	fireWork  time.Duration
}

// New creates an engine. Initial facts declared in `(wm …)` blocks are
// queued for the first cycle.
func New(prog *compile.Program, opts Options) *Engine {
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	if opts.Matcher == nil {
		opts.Matcher = rete.New
	}
	if opts.Output == nil {
		opts.Output = io.Discard
	}
	e := &Engine{
		prog:        prog,
		mem:         wm.NewMemory(prog.Schema),
		opts:        opts,
		conflictSet: make(map[match.Key]*match.Instantiation),
		fired:       make(map[match.Key]bool),
		redact:      newRedactor(prog.MetaRules, opts.Workers, opts.DisableRedactionIndex, opts.SequentialRedaction, opts.EvalMode),
		result:      Result{Stats: &stats.Run{}},
		activity:    make(map[string]int),
		fires:       make(map[string]int),
	}
	// Distribute rules across workers. Workers with no rules are dropped
	// so tiny programs don't pay for idle goroutines.
	parts := partitionRules(prog.Rules, opts.Workers, opts.Partition)
	for _, part := range parts {
		if len(part) == 0 {
			continue
		}
		e.workers = append(e.workers, &worker{matcher: opts.Matcher(part)})
	}
	if len(e.workers) == 0 {
		// A program with no rules still needs a worker so that Apply and
		// ConflictSet calls are well-defined.
		e.workers = append(e.workers, &worker{matcher: opts.Matcher(nil)})
	}
	if !opts.NoInitialFacts {
		for _, f := range prog.Facts {
			w := e.mem.InsertFields(f.Tmpl, append([]wm.Value(nil), f.Fields...))
			e.pending.Added = append(e.pending.Added, w)
		}
	}
	return e
}

// Memory exposes the working memory (e.g. for assertions after Run).
func (e *Engine) Memory() *wm.Memory { return e.mem }

// Insert queues a fact programmatically (workload generators use this
// instead of `(wm …)` blocks).
func (e *Engine) Insert(template string, fields map[string]wm.Value) (*wm.WME, error) {
	w, err := e.mem.Insert(template, fields)
	if err != nil {
		return nil, err
	}
	e.pending.Added = append(e.pending.Added, w)
	return w, nil
}

// InsertFields queues a fact with a positional field vector.
func (e *Engine) InsertFields(t *wm.Template, fields []wm.Value) *wm.WME {
	w := e.mem.InsertFields(t, fields)
	e.pending.Added = append(e.pending.Added, w)
	return w
}

// Retract removes the live WME with the given time tag between runs and
// queues the removal for the matchers. A WME whose insertion is still
// pending (the matchers have not seen it yet) is simply dropped from the
// pending delta. It returns false when no live WME has that tag.
//
// Pending insertions are looked up through a lazily built time-tag index
// rather than a linear scan: the server retracts per request, and on large
// seeded working memories a scan per call made retract-heavy traffic
// quadratic.
func (e *Engine) Retract(timeTag int64) bool {
	if e.pendingAddIdx == nil {
		e.pendingAddIdx = make(map[int64]int, len(e.pending.Added))
		e.pendingIdxLen = 0
	}
	// Extend the index over entries appended since the last Retract.
	// Tombstoning (below) keeps already-indexed positions stable.
	for i := e.pendingIdxLen; i < len(e.pending.Added); i++ {
		e.pendingAddIdx[e.pending.Added[i].Time] = i
	}
	e.pendingIdxLen = len(e.pending.Added)
	if i, ok := e.pendingAddIdx[timeTag]; ok {
		e.pending.Added[i] = nil
		e.pendingTombs++
		delete(e.pendingAddIdx, timeTag)
		e.mem.Remove(timeTag)
		return true
	}
	if w, ok := e.mem.Remove(timeTag); ok {
		e.pending.Removed = append(e.pending.Removed, w)
		return true
	}
	return false
}

// RetractBatch retracts a set of time tags in ascending tag order —
// the expiry hook for the temporal clock. Expiry must be deterministic
// (the retract order feeds the matchers' delta order, and WAL replay
// re-executes it), so the batch is sorted here rather than trusting the
// caller. It returns the number of tags that named live WMEs.
func (e *Engine) RetractBatch(tags []int64) int {
	sort.Slice(tags, func(i, j int) bool { return tags[i] < tags[j] })
	n := 0
	for _, tag := range tags {
		if e.Retract(tag) {
			n++
		}
	}
	return n
}

// takePending consumes the pending delta for the match phase, compacting
// out any tombstones Retract left and resetting the retract index.
func (e *Engine) takePending() wm.Delta {
	delta := e.pending
	if e.pendingTombs > 0 {
		live := delta.Added[:0]
		for _, w := range delta.Added {
			if w != nil {
				live = append(live, w)
			}
		}
		delta.Added = live
	}
	e.pending = wm.Delta{}
	e.pendingAddIdx = nil
	e.pendingIdxLen = 0
	e.pendingTombs = 0
	return delta
}

// Run executes cycles until quiescence, halt, or the cycle limit.
func (e *Engine) Run() (Result, error) { return e.RunContext(context.Background()) }

// RunContext executes cycles until quiescence, halt, the cycle limit, or
// context cancellation. Cancellation is observed at cycle boundaries only:
// every cycle either commits fully or does not run, so a canceled engine's
// working memory is always in a consistent committed state and the run can
// be resumed with a fresh context.
func (e *Engine) RunContext(ctx context.Context) (Result, error) {
	res, _, err := e.RunBounded(ctx, 0)
	return res, err
}

// RunBounded is RunContext with a per-call cycle budget: it commits at
// most limit cycles (0 = unbounded) and then returns with more=true when
// the engine has neither quiesced nor halted — the caller may resume with
// another RunBounded call. The server's -run-slice scheduling is built on
// this: a long run is split into slices so one session cannot monopolize
// an engine slot.
func (e *Engine) RunBounded(ctx context.Context, limit int) (Result, bool, error) {
	stepped := 0
	for {
		if err := ctx.Err(); err != nil {
			return e.result, true, fmt.Errorf("%w: %w", ErrCanceled, err)
		}
		progress, err := e.Step()
		if err != nil {
			return e.result, false, err
		}
		if !progress {
			return e.result, false, nil
		}
		if e.opts.MaxCycles > 0 && e.result.Cycles >= e.opts.MaxCycles {
			return e.result, false, fmt.Errorf("%w (%d)", ErrMaxCycles, e.opts.MaxCycles)
		}
		stepped++
		if limit > 0 && stepped >= limit {
			return e.result, true, nil
		}
	}
}

// Step runs one full cycle. It returns false when the engine has reached
// quiescence (no eligible instantiations) or was halted.
func (e *Engine) Step() (bool, error) {
	if e.halted {
		return false, nil
	}
	var cyc stats.Cycle
	tr := e.opts.Tracer
	if tr != nil {
		tr.CycleStart(e.result.Cycles + 1)
	}

	// MATCH: apply the pending delta to every partition in parallel.
	t0 := time.Now()
	e.applyDelta(e.takePending())
	cyc.Match = time.Since(t0)

	// Eligible = conflict set minus refraction. The scratch slice is
	// reused across cycles; survivors alias it only within this Step.
	eligible := e.eligible[:0]
	for k, in := range e.conflictSet {
		if !e.fired[k] {
			eligible = append(eligible, in)
		}
	}
	e.eligible = eligible
	match.SortInstantiations(eligible)
	cyc.ConflictSize = len(eligible)
	if tr != nil {
		tr.PhaseEnd(PhaseMatch, cyc.Match)
		tr.InstantiationsFound(len(e.conflictSet), len(eligible))
	}
	if len(eligible) == 0 {
		return false, nil
	}

	// REDACT: meta-rule fixpoint.
	t0 = time.Now()
	survivors, rounds, redacted := e.redact.run(eligible)
	cyc.Redact = time.Since(t0)
	cyc.Redacted = redacted
	e.result.Redactions += redacted
	e.result.RedactionRounds += rounds
	if tr != nil {
		tr.PhaseEnd(PhaseRedact, cyc.Redact)
		tr.Redacted(redacted, rounds, len(survivors))
	}

	if len(survivors) == 0 {
		// Everything was redacted: treat as quiescence to avoid spinning
		// (nothing will change WM, so the next cycle would redact the
		// same set again).
		e.result.Stats.Add(cyc)
		e.result.Cycles++
		if tr != nil {
			tr.PhaseEnd(PhaseFire, 0)
			tr.PhaseEnd(PhaseApply, 0)
			tr.Commit(0, 0, false)
		}
		return false, nil
	}

	// FIRE: evaluate all surviving RHSes in parallel.
	t0 = time.Now()
	effects, err := e.fireAll(survivors)
	cyc.Fire = time.Since(t0)
	if err != nil {
		return false, err
	}
	cyc.Fired = len(survivors)
	e.result.Firings += len(survivors)
	for _, in := range survivors {
		e.fired[in.Key()] = true
		e.fires[in.Rule.Name]++
	}
	if tr != nil {
		tr.PhaseEnd(PhaseFire, cyc.Fire)
		counts := make(map[string]int, 8)
		for _, in := range survivors {
			counts[in.Rule.Name]++
		}
		names := make([]string, 0, len(counts))
		for name := range counts {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			tr.RuleFired(name, counts[name])
		}
	}

	// APPLY: reconcile effects into one deterministic WM delta.
	t0 = time.Now()
	delta, conflicts, halted, err := e.commit(effects)
	cyc.Apply = time.Since(t0)
	if err != nil {
		return false, err
	}
	cyc.DeltaSize = delta.Size()
	e.result.WriteConflicts += conflicts
	e.pending = delta
	e.halted = halted

	e.result.Stats.Add(cyc)
	e.result.Cycles++
	e.result.Halted = halted
	if tr != nil {
		tr.PhaseEnd(PhaseApply, cyc.Apply)
		tr.Commit(cyc.DeltaSize, conflicts, halted)
	}
	if e.opts.Trace != nil {
		fmt.Fprintf(e.opts.Trace, "cycle %d: eligible=%d redacted=%d fired=%d delta=%d conflicts=%d\n",
			e.result.Cycles, cyc.ConflictSize, cyc.Redacted, cyc.Fired, cyc.DeltaSize, conflicts)
	}
	if halted {
		return false, nil
	}
	return true, nil
}

// applyDelta feeds the delta to every worker concurrently and folds the
// conflict-set changes into the engine's global view.
func (e *Engine) applyDelta(delta wm.Delta) {
	if len(e.workers) == 1 {
		w := e.workers[0]
		t0 := time.Now()
		w.changes = w.matcher.Apply(delta)
		w.matchWork += time.Since(t0)
	} else {
		var wg sync.WaitGroup
		for _, w := range e.workers {
			wg.Add(1)
			go func(w *worker) {
				defer wg.Done()
				t0 := time.Now()
				w.changes = w.matcher.Apply(delta)
				w.matchWork += time.Since(t0)
			}(w)
		}
		wg.Wait()
	}
	for _, w := range e.workers {
		for _, in := range w.changes.Removed {
			delete(e.conflictSet, in.Key())
			delete(e.fired, in.Key())
		}
		for _, in := range w.changes.Added {
			e.conflictSet[in.Key()] = in
			e.activity[in.Rule.Name]++
		}
		w.changes = match.Changes{}
	}
}

// RuleActivity returns, per rule, how many instantiations entered the
// conflict set over the run so far — the hot-rule signal the
// copy-and-constrain advisor consumes.
func (e *Engine) RuleActivity() map[string]int {
	out := make(map[string]int, len(e.activity))
	for k, v := range e.activity {
		out[k] = v
	}
	return out
}

// RuleFires returns, per rule, how many instantiations fired over the run
// so far.
func (e *Engine) RuleFires() map[string]int {
	out := make(map[string]int, len(e.fires))
	for k, v := range e.fires {
		out[k] = v
	}
	return out
}

// RuleProfiles merges the per-rule match-layer profiles of every worker's
// matcher (for matchers implementing match.RuleProfiler — RETE and TREAT
// both do) with the engine's own per-rule firing counts. Rules are
// returned sorted by attributed match time, then firings, then name, so
// the first entries are the copy-and-constrain candidates. Match time is
// only attributed when the matcher was built with profiling enabled
// (rete.Options.Profile / treat.Options.Profile); the activity counters
// (tokens, probes, instantiations) are always maintained.
func (e *Engine) RuleProfiles() []match.RuleProfile {
	agg := make(map[string]*match.RuleProfile)
	get := func(name string) *match.RuleProfile {
		p := agg[name]
		if p == nil {
			p = &match.RuleProfile{Rule: name}
			agg[name] = p
		}
		return p
	}
	for _, w := range e.workers {
		rp, ok := w.matcher.(match.RuleProfiler)
		if !ok {
			continue
		}
		for _, p := range rp.RuleProfiles() {
			a := get(p.Rule)
			a.MatchNS += p.MatchNS
			a.Tokens += p.Tokens
			a.Probes += p.Probes
			a.Insts += p.Insts
		}
	}
	for name, n := range e.fires {
		get(name).Fires = uint64(n)
	}
	out := make([]match.RuleProfile, 0, len(agg))
	for _, p := range agg {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.MatchNS != b.MatchNS {
			return a.MatchNS > b.MatchNS
		}
		if a.Fires != b.Fires {
			return a.Fires > b.Fires
		}
		return a.Rule < b.Rule
	})
	return out
}

// WorkerWork returns each worker's accumulated match and fire busy time.
// sum/max of the match column is the match-parallelism "potential
// speedup" reported by experiments E2/E3 — meaningful even on a
// single-core host where wall-clock speedup cannot show.
func (e *Engine) WorkerWork() (matchWork, fireWork []time.Duration) {
	for _, w := range e.workers {
		matchWork = append(matchWork, w.matchWork)
		fireWork = append(fireWork, w.fireWork)
	}
	return matchWork, fireWork
}

// ConflictSet returns the current global conflict set in deterministic
// order (mainly for tests and tooling).
func (e *Engine) ConflictSet() []*match.Instantiation {
	out := make([]*match.Instantiation, 0, len(e.conflictSet))
	for _, in := range e.conflictSet {
		out = append(out, in)
	}
	match.SortInstantiations(out)
	return out
}
