package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"parulel/internal/compile"
	"parulel/internal/match/rete"
	"parulel/internal/match/treat"
	"parulel/internal/wm"
)

func compileOK(t *testing.T, src string) *compile.Program {
	t.Helper()
	p, err := compile.CompileSource(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

func runOK(t *testing.T, e *Engine) Result {
	t.Helper()
	res, err := e.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestEngineQuiescenceOnEmptyProgram(t *testing.T) {
	prog := compileOK(t, `(literalize a x)`)
	e := New(prog, Options{})
	res := runOK(t, e)
	if res.Cycles != 0 || res.Firings != 0 {
		t.Fatalf("empty program should do nothing: %+v", res)
	}
}

func TestEngineParallelFiringSetSemantics(t *testing.T) {
	// All matching instantiations fire in ONE cycle — the defining PARULEL
	// property. Ten sources each produce a sink in a single cycle.
	prog := compileOK(t, `
(literalize src id)
(literalize sink id)
(rule expand
  (src ^id <i>)
-->
  (make sink ^id <i>)
  (remove 1))
(wm
  (src ^id 1) (src ^id 2) (src ^id 3) (src ^id 4) (src ^id 5)
  (src ^id 6) (src ^id 7) (src ^id 8) (src ^id 9) (src ^id 10))
`)
	e := New(prog, Options{Workers: 4})
	res := runOK(t, e)
	if res.Cycles != 1 {
		t.Errorf("cycles = %d, want 1 (set-oriented firing)", res.Cycles)
	}
	if res.Firings != 10 {
		t.Errorf("firings = %d, want 10", res.Firings)
	}
	if n := e.Memory().CountOf("sink"); n != 10 {
		t.Errorf("sinks = %d, want 10", n)
	}
	if n := e.Memory().CountOf("src"); n != 0 {
		t.Errorf("srcs = %d, want 0", n)
	}
}

func TestEngineRefraction(t *testing.T) {
	// A rule that doesn't change its matched WME fires exactly once per
	// instantiation, not forever.
	prog := compileOK(t, `
(literalize a x)
(literalize out x)
(rule once (a ^x <v>) --> (make out ^x <v>))
(wm (a ^x 1))
`)
	e := New(prog, Options{MaxCycles: 10})
	res := runOK(t, e)
	if res.Firings != 1 {
		t.Errorf("firings = %d, want 1 (refraction)", res.Firings)
	}
	if n := e.Memory().CountOf("out"); n != 1 {
		t.Errorf("outs = %d, want 1", n)
	}
}

func TestEngineModifySemantics(t *testing.T) {
	// modify = remove + make with a fresh time tag; chain of modifies
	// counts down to zero.
	prog := compileOK(t, `
(literalize counter n)
(rule dec
  <c> <- (counter ^n <n>)
  (test (> <n> 0))
-->
  (modify <c> ^n (- <n> 1)))
(wm (counter ^n 5))
`)
	e := New(prog, Options{MaxCycles: 20})
	res := runOK(t, e)
	if res.Firings != 5 {
		t.Errorf("firings = %d, want 5", res.Firings)
	}
	counters := e.Memory().OfTemplate("counter")
	if len(counters) != 1 || counters[0].Fields[0] != wm.Int(0) {
		t.Errorf("final counter: %v", counters)
	}
}

func TestEngineHalt(t *testing.T) {
	prog := compileOK(t, `
(literalize a x)
(rule stop (a ^x <v>) --> (make a ^x (+ <v> 1)) (halt))
(wm (a ^x 1))
`)
	e := New(prog, Options{MaxCycles: 100})
	res := runOK(t, e)
	if !res.Halted {
		t.Error("engine should report halted")
	}
	if res.Cycles != 1 {
		t.Errorf("cycles = %d, want 1", res.Cycles)
	}
	// The halting cycle's effects still apply.
	if n := e.Memory().CountOf("a"); n != 2 {
		t.Errorf("a count = %d, want 2", n)
	}
}

func TestEngineMaxCycles(t *testing.T) {
	// A deliberately diverging program.
	prog := compileOK(t, `
(literalize a x)
(rule grow (a ^x <v>) --> (make a ^x (+ <v> 1)))
(wm (a ^x 0))
`)
	e := New(prog, Options{MaxCycles: 5})
	_, err := e.Run()
	if !errors.Is(err, ErrMaxCycles) {
		t.Fatalf("err = %v, want ErrMaxCycles", err)
	}
}

func TestEngineWriteOutput(t *testing.T) {
	prog := compileOK(t, `
(literalize a x)
(rule greet (a ^x <v>) --> (write "value=" <v> (crlf)))
(wm (a ^x 42))
`)
	var buf bytes.Buffer
	e := New(prog, Options{Output: &buf})
	runOK(t, e)
	if got := buf.String(); got != "value=42\n" {
		t.Errorf("output = %q", got)
	}
}

func TestEngineMetaRuleRedaction(t *testing.T) {
	// Two pools, one order: both allocations are proposed, the meta-rule
	// keeps only the lowest pool id, so exactly one allocation fires.
	prog := compileOK(t, `
(literalize pool id)
(literalize order id)
(literalize alloc pool order)
(rule propose
  (pool ^id <p>)
  (order ^id <o>)
-->
  (make alloc ^pool <p> ^order <o>)
  (remove 2))
(metarule one-per-order
  [<i> (propose ^o <o> ^p <p1>)]
  [<j> (propose ^o <o> ^p <p2>)]
  (test (< <p1> <p2>))
-->
  (redact <j>))
(wm (pool ^id 1) (pool ^id 2) (order ^id 7))
`)
	e := New(prog, Options{MaxCycles: 10})
	res := runOK(t, e)
	if res.Firings != 1 {
		t.Errorf("firings = %d, want 1 (redaction)", res.Firings)
	}
	if res.Redactions != 1 {
		t.Errorf("redactions = %d, want 1", res.Redactions)
	}
	allocs := e.Memory().OfTemplate("alloc")
	if len(allocs) != 1 || allocs[0].Fields[0] != wm.Int(1) {
		t.Fatalf("allocs: %v", allocs)
	}
	if res.WriteConflicts != 0 {
		t.Errorf("write conflicts = %d, want 0", res.WriteConflicts)
	}
}

func TestEngineWithoutMetaRulesWriteConflicts(t *testing.T) {
	// The same program WITHOUT the meta-rule: both instantiations fire,
	// both remove the same order WME — a write conflict is not counted for
	// remove+remove (removes commute) but both allocs are made. To force a
	// genuine conflict, both modify the same WME.
	prog := compileOK(t, `
(literalize order id state)
(literalize pool id)
(rule claim
  (pool ^id <p>)
  <o> <- (order ^id <oid> ^state free)
-->
  (modify <o> ^state <p>))
(wm (pool ^id 1) (pool ^id 2) (order ^id 7 ^state free))
`)
	e := New(prog, Options{MaxCycles: 10})
	res := runOK(t, e)
	if res.WriteConflicts != 1 {
		t.Errorf("write conflicts = %d, want 1", res.WriteConflicts)
	}
	// Deterministic winner: the first instantiation in the total order
	// (pool 1, the earlier time tag).
	orders := e.Memory().OfTemplate("order")
	if len(orders) != 1 || orders[0].Fields[1] != wm.Int(1) {
		t.Fatalf("orders: %v", orders)
	}
}

func TestEngineRemoveRemoveIsBenign(t *testing.T) {
	prog := compileOK(t, `
(literalize a x)
(literalize b x)
(rule r1 (a ^x <v>) (b ^x <v>) --> (remove 2))
(rule r2 (b ^x <v>) --> (remove 1))
(wm (a ^x 1) (b ^x 1))
`)
	e := New(prog, Options{MaxCycles: 10})
	res := runOK(t, e)
	if res.WriteConflicts != 0 {
		t.Errorf("remove+remove should be benign, conflicts = %d", res.WriteConflicts)
	}
	if n := e.Memory().CountOf("b"); n != 0 {
		t.Errorf("b should be removed: %d", n)
	}
}

func TestEngineMutualRedactionBothDie(t *testing.T) {
	// Synchronous-round semantics: two instantiations that each redact the
	// other both die in one round, so nothing fires.
	prog := compileOK(t, `
(literalize a x)
(literalize out x)
(rule r (a ^x <v>) --> (make out ^x <v>))
(metarule duel
  [<i> (r ^v <v1>)]
  [<j> (r ^v <v2>)]
  (test (<> <v1> <v2>))
-->
  (redact <j>))
(wm (a ^x 1) (a ^x 2))
`)
	e := New(prog, Options{MaxCycles: 10})
	res := runOK(t, e)
	if res.Firings != 0 {
		t.Errorf("firings = %d, want 0 (mutual redaction)", res.Firings)
	}
	if res.Redactions != 2 {
		t.Errorf("redactions = %d, want 2", res.Redactions)
	}
	if n := e.Memory().CountOf("out"); n != 0 {
		t.Errorf("outs = %d, want 0", n)
	}
}

func TestEngineTagTieBreak(t *testing.T) {
	// precedes-based tie-break: two instantiations compete for one token;
	// the earlier one in the total order wins and consumes it, so the
	// loser is retracted by the matcher and never fires.
	prog := compileOK(t, `
(literalize tok n)
(literalize a x)
(literalize out x)
(rule r
  <tk> <- (tok ^n <n>)
  (a ^x <v>)
-->
  (make out ^x <v>)
  (remove <tk>))
(metarule keep-first
  [<i> (r ^v <v1>)]
  [<j> (r ^v <v2>)]
  (test (precedes <i> <j>))
-->
  (redact <j>))
(wm (tok ^n 0) (a ^x 1) (a ^x 2))
`)
	e := New(prog, Options{MaxCycles: 10})
	res := runOK(t, e)
	if res.Firings != 1 {
		t.Fatalf("firings = %d, want 1", res.Firings)
	}
	if res.Redactions != 1 {
		t.Errorf("redactions = %d, want 1", res.Redactions)
	}
	outs := e.Memory().OfTemplate("out")
	if len(outs) != 1 || outs[0].Fields[0] != wm.Int(1) {
		t.Fatalf("outs: %v (the earliest instantiation should survive)", outs)
	}
}

func TestEngineNegationDrivenLoop(t *testing.T) {
	// Sequential dependency through negation: items are consumed lowest-id
	// first because the rule requires no smaller item to exist.
	prog := compileOK(t, `
(literalize item id)
(literalize log id)
(rule take-smallest
  <it> <- (item ^id <i>)
  - (item ^id (< <i>))
-->
  (make log ^id <i>)
  (remove <it>))
(wm (item ^id 3) (item ^id 1) (item ^id 2))
`)
	var buf bytes.Buffer
	e := New(prog, Options{MaxCycles: 10, Output: &buf})
	res := runOK(t, e)
	if res.Cycles != 3 || res.Firings != 3 {
		t.Errorf("cycles=%d firings=%d, want 3/3 (inherently serial)", res.Cycles, res.Firings)
	}
	logs := e.Memory().OfTemplate("log")
	if len(logs) != 3 {
		t.Fatalf("logs: %v", logs)
	}
	for i, want := range []int64{1, 2, 3} {
		if logs[i].Fields[0] != wm.Int(want) {
			t.Errorf("log %d = %v, want %d", i, logs[i].Fields[0], want)
		}
	}
}

// finalState runs a program and returns a canonical string of the final
// working memory.
func finalState(t *testing.T, prog *compile.Program, opts Options) string {
	t.Helper()
	e := New(prog, opts)
	if _, err := e.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	var b strings.Builder
	for _, w := range e.Memory().Snapshot() {
		b.WriteString(w.String())
		b.WriteString("\n")
	}
	return b.String()
}

const determinismProgram = `
(literalize pool  id amount status)
(literalize order id lo hi filled)
(literalize alloc pool order)
(rule propose
  (pool  ^id <p> ^amount <a> ^status free)
  (order ^id <o> ^lo <lo> ^hi <hi> ^filled no)
  (test (and (>= <a> <lo>) (<= <a> <hi>)))
-->
  (make alloc ^pool <p> ^order <o>))
(rule award
  (alloc ^pool <p> ^order <o>)
  <pl> <- (pool ^id <p> ^status free)
  <or> <- (order ^id <o> ^filled no)
-->
  (modify <pl> ^status sold)
  (modify <or> ^filled yes))
(metarule one-bid-per-pool
  [<i> (propose ^p <p> ^o <o1>)]
  [<j> (propose ^p <p> ^o <o2>)]
  (test (< <o1> <o2>))
-->
  (redact <j>))
(metarule one-award-per-pool
  [<i> (award ^p <p>)]
  [<j> (award ^p <p>)]
  (test (precedes <i> <j>))
-->
  (redact <j>))
(metarule one-award-per-order
  [<i> (award ^o <o>)]
  [<j> (award ^o <o>)]
  (test (precedes <i> <j>))
-->
  (redact <j>))
(wm
  (pool ^id 1 ^amount 50 ^status free)
  (pool ^id 2 ^amount 70 ^status free)
  (pool ^id 3 ^amount 90 ^status free)
  (pool ^id 4 ^amount 90 ^status free)
  (order ^id 1 ^lo 40 ^hi 80 ^filled no)
  (order ^id 2 ^lo 60 ^hi 95 ^filled no)
  (order ^id 3 ^lo 85 ^hi 95 ^filled no))
`

func TestEngineDeterministicAcrossWorkerCounts(t *testing.T) {
	prog := compileOK(t, determinismProgram)
	ref := finalState(t, prog, Options{Workers: 1, MaxCycles: 50})
	for _, workers := range []int{2, 3, 4, 8} {
		got := finalState(t, compileOK(t, determinismProgram), Options{Workers: workers, MaxCycles: 50})
		if got != ref {
			t.Errorf("workers=%d diverged:\nref:\n%s\ngot:\n%s", workers, ref, got)
		}
	}
}

func TestEngineDeterministicAcrossMatchers(t *testing.T) {
	ref := finalState(t, compileOK(t, determinismProgram), Options{Matcher: rete.New, MaxCycles: 50})
	got := finalState(t, compileOK(t, determinismProgram), Options{Matcher: treat.New, MaxCycles: 50})
	if got != ref {
		t.Errorf("matchers diverged:\nrete:\n%s\ntreat:\n%s", ref, got)
	}
}

func TestEngineInsertProgrammatic(t *testing.T) {
	prog := compileOK(t, `
(literalize a x)
(literalize out x)
(rule r (a ^x <v>) --> (make out ^x (* <v> 2)))
`)
	e := New(prog, Options{})
	if _, err := e.Insert("a", map[string]wm.Value{"x": wm.Int(21)}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Insert("ghost", nil); err == nil {
		t.Fatal("insert of unknown template should fail")
	}
	runOK(t, e)
	outs := e.Memory().OfTemplate("out")
	if len(outs) != 1 || outs[0].Fields[0] != wm.Int(42) {
		t.Fatalf("outs: %v", outs)
	}
}

func TestEngineRHSEvalErrorSurfaces(t *testing.T) {
	prog := compileOK(t, `
(literalize a x)
(rule bad (a ^x <v>) --> (make a ^x (div <v> 0)))
(wm (a ^x 1))
`)
	e := New(prog, Options{MaxCycles: 5})
	_, err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("err = %v, want division by zero", err)
	}
}

func TestEngineTraceOutput(t *testing.T) {
	prog := compileOK(t, `
(literalize a x)
(rule r (a ^x <v>) --> (remove 1))
(wm (a ^x 1))
`)
	var trace bytes.Buffer
	e := New(prog, Options{Trace: &trace})
	runOK(t, e)
	if !strings.Contains(trace.String(), "cycle 1:") {
		t.Errorf("trace missing: %q", trace.String())
	}
}

func TestEngineStatsRecorded(t *testing.T) {
	prog := compileOK(t, determinismProgram)
	e := New(prog, Options{MaxCycles: 50})
	res := runOK(t, e)
	if len(res.Stats.Cycles) != res.Cycles {
		t.Errorf("stats cycles = %d, want %d", len(res.Stats.Cycles), res.Cycles)
	}
	if res.Stats.TotalFired() != res.Firings {
		t.Errorf("stats fired = %d, want %d", res.Stats.TotalFired(), res.Firings)
	}
	if res.Stats.MaxConflictSize() == 0 {
		t.Error("max conflict size should be > 0")
	}
}

func TestEngineGensymBind(t *testing.T) {
	prog := compileOK(t, `
(literalize a x)
(literalize node id src)
(rule tag-it
  (a ^x <v>)
-->
  (bind <id>)
  (make node ^id <id> ^src <v>)
  (make node ^id <id> ^src (+ <v> 100)))
(wm (a ^x 1) (a ^x 2))
`)
	e := New(prog, Options{Workers: 2, MaxCycles: 5})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	nodes := e.Memory().OfTemplate("node")
	if len(nodes) != 4 {
		t.Fatalf("nodes: %v", nodes)
	}
	// Each instantiation's two nodes share the gensym; the two
	// instantiations' gensyms differ.
	ids := map[string][]int64{}
	for _, n := range nodes {
		ids[n.Fields[0].S] = append(ids[n.Fields[0].S], n.Fields[1].AsInt())
	}
	if len(ids) != 2 {
		t.Fatalf("expected 2 distinct gensyms, got %v", ids)
	}
	for id, srcs := range ids {
		if len(srcs) != 2 {
			t.Errorf("gensym %s used %d times, want 2", id, len(srcs))
		}
	}
}

func TestEngineGensymDeterministic(t *testing.T) {
	run := func(workers int) string {
		prog := compileOK(t, `
(literalize a x)
(literalize node id)
(rule r (a ^x <v>) --> (bind <id>) (make node ^id <id>))
(wm (a ^x 1) (a ^x 2) (a ^x 3))
`)
		e := New(prog, Options{Workers: workers, MaxCycles: 5})
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		out := ""
		for _, n := range e.Memory().OfTemplate("node") {
			out += n.String() + "\n"
		}
		return out
	}
	if run(1) != run(4) {
		t.Error("gensym values must be deterministic across worker counts")
	}
}

func TestExplainConflictSet(t *testing.T) {
	prog := compileOK(t, `
(literalize a x)
(literalize out x)
(rule once (a ^x <v>) --> (make out ^x <v>))
(wm (a ^x 7) (a ^x 9))
`)
	e := New(prog, Options{MaxCycles: 10})
	runOK(t, e)
	var buf bytes.Buffer
	if err := e.ExplainConflictSet(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{
		"conflict set: 2 instantiation(s)",
		"fired (refracted)",
		"<v> = 7",
		"<v> = 9",
		"(a ^x 7)",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("explain output missing %q:\n%s", want, s)
		}
	}
}

func TestPartitionStrategies(t *testing.T) {
	prog := compileOK(t, determinismProgram)
	rules := prog.Rules
	for _, strategy := range []Partition{PartitionRoundRobin, PartitionBlock, PartitionLPT} {
		parts := partitionRules(rules, 3, strategy)
		seen := map[string]bool{}
		total := 0
		for _, part := range parts {
			for _, r := range part {
				if seen[r.Name] {
					t.Errorf("%v: rule %s assigned twice", strategy, r.Name)
				}
				seen[r.Name] = true
				total++
			}
		}
		if total != len(rules) {
			t.Errorf("%v: %d rules assigned, want %d", strategy, total, len(rules))
		}
	}
	// Block keeps declaration order contiguous.
	parts := partitionRules(rules, 2, PartitionBlock)
	if len(parts[0]) == 0 || parts[0][0] != rules[0] {
		t.Error("block partition should start with the first rule")
	}
	// LPT puts the most specific rule on a worker by itself first.
	parts = partitionRules(rules, len(rules), PartitionLPT)
	if parts[0][0].Specificity < parts[1][0].Specificity {
		t.Error("LPT should assign in decreasing specificity")
	}
	if PartitionRoundRobin.String() != "round-robin" || PartitionBlock.String() != "block" || PartitionLPT.String() != "lpt" {
		t.Error("Partition.String wrong")
	}
}

func TestPartitionStrategiesSameResults(t *testing.T) {
	ref := finalState(t, compileOK(t, determinismProgram), Options{Workers: 4, MaxCycles: 50})
	for _, strategy := range []Partition{PartitionBlock, PartitionLPT} {
		got := finalState(t, compileOK(t, determinismProgram), Options{Workers: 4, MaxCycles: 50, Partition: strategy})
		if got != ref {
			t.Errorf("partition %v changed results", strategy)
		}
	}
}
