package core

import (
	"io"

	"parulel/internal/match"
)

// ExplainConflictSet writes a human-readable listing of the current
// conflict set: each instantiation's rule, refraction status, matched
// elements and variable bindings. Intended for debugging rule programs
// (`parulel run -explain`).
func (e *Engine) ExplainConflictSet(w io.Writer) error {
	return match.Explain(w, e.ConflictSet(), e.fired)
}
