package core

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"parulel/internal/compile"
	"parulel/internal/match"
	"parulel/internal/wm"
)

// effect is the buffered outcome of firing one instantiation. Effects are
// computed in parallel but committed serially in deterministic order.
type effect struct {
	makes    []pendingMake
	removes  []*wm.WME
	modifies []pendingModify
	output   []byte
	halt     bool
	err      error
}

type pendingMake struct {
	tmpl   *wm.Template
	fields []wm.Value
}

type pendingModify struct {
	old    *wm.WME
	fields []wm.Value
}

// ruleEnv implements compile.Env for RHS evaluation.
type ruleEnv struct {
	inst   *match.Instantiation
	locals []wm.Value
}

func (e *ruleEnv) Ref(r compile.VarRef) wm.Value { return e.inst.Binding(r) }
func (e *ruleEnv) Local(i int) wm.Value          { return e.locals[i] }
func (e *ruleEnv) MetaVal(int, compile.VarRef) wm.Value {
	panic("core: object rule RHS has no meta context")
}
func (e *ruleEnv) MetaTag(int) int64          { panic("core: object rule RHS has no meta context") }
func (e *ruleEnv) MetaRuleName(int) string    { panic("core: object rule RHS has no meta context") }
func (e *ruleEnv) MetaPrecedes(int, int) bool { panic("core: object rule RHS has no meta context") }

// fireFrame is the per-worker evaluation state reused across firings: the
// binding environment, the locals buffer and the `(write …)` buffer are
// constructed once per worker per fire phase and reset per firing, so the
// inner action loop never rebuilds the environment (and, under the
// bytecode backend, allocates nothing at all beyond the effects).
type fireFrame struct {
	env  ruleEnv
	out  bytes.Buffer
	mode compile.EvalMode
}

// reset points the frame at the next instantiation. Locals are cleared:
// stale values from the previous firing must not leak into a rule that
// reads a slot before binding it.
func (f *fireFrame) reset(in *match.Instantiation) {
	f.env.inst = in
	n := in.Rule.NumLocals
	if cap(f.env.locals) < n {
		f.env.locals = make([]wm.Value, n)
	} else {
		f.env.locals = f.env.locals[:n]
		for i := range f.env.locals {
			f.env.locals[i] = wm.Value{}
		}
	}
	f.out.Reset()
}

// fireAll evaluates every survivor's RHS, in parallel when the engine has
// more than one worker. The returned slice is indexed like survivors, so
// commit order is independent of scheduling.
func (e *Engine) fireAll(survivors []*match.Instantiation) ([]effect, error) {
	effects := make([]effect, len(survivors))
	nw := len(e.workers)
	if nw == 1 || len(survivors) == 1 {
		t0 := time.Now()
		frame := &fireFrame{mode: e.opts.EvalMode}
		for i, in := range survivors {
			effects[i] = fireOne(in, frame)
		}
		e.workers[0].fireWork += time.Since(t0)
	} else {
		var wg sync.WaitGroup
		for wk := 0; wk < nw; wk++ {
			wg.Add(1)
			go func(wk int) {
				defer wg.Done()
				t0 := time.Now()
				frame := &fireFrame{mode: e.opts.EvalMode}
				for i := wk; i < len(survivors); i += nw {
					effects[i] = fireOne(survivors[i], frame)
				}
				e.workers[wk].fireWork += time.Since(t0)
			}(wk)
		}
		wg.Wait()
	}
	for i := range effects {
		if effects[i].err != nil {
			return nil, fmt.Errorf("core: firing %s: %w", survivors[i], effects[i].err)
		}
	}
	return effects, nil
}

// fireOne evaluates one instantiation's RHS into a buffered effect, using
// the worker's reusable frame for the environment and output buffer.
func fireOne(in *match.Instantiation, f *fireFrame) effect {
	var eff effect
	f.reset(in)
	env := &f.env
	for _, a := range in.Rule.Actions {
		switch a.Kind {
		case compile.ActMake:
			fields := make([]wm.Value, a.Tmpl.Arity())
			for _, s := range a.Slots {
				v, err := f.mode.Eval(s.Expr, env)
				if err != nil {
					eff.err = err
					return eff
				}
				fields[s.Field] = v
			}
			eff.makes = append(eff.makes, pendingMake{tmpl: a.Tmpl, fields: fields})
		case compile.ActModify:
			old := in.WMEs[a.Target]
			fields := append([]wm.Value(nil), old.Fields...)
			for _, s := range a.Slots {
				v, err := f.mode.Eval(s.Expr, env)
				if err != nil {
					eff.err = err
					return eff
				}
				fields[s.Field] = v
			}
			eff.modifies = append(eff.modifies, pendingModify{old: old, fields: fields})
		case compile.ActRemove:
			for _, t := range a.Targets {
				eff.removes = append(eff.removes, in.WMEs[t])
			}
		case compile.ActBind:
			if len(a.Exprs) == 0 {
				// Gensym: unique per (instantiation, bind slot) and
				// deterministic across worker counts.
				env.locals[a.Local] = wm.Sym(fmt.Sprintf("g%s/%d", in.KeyString(), a.Local))
				continue
			}
			v, err := f.mode.Eval(a.Exprs[0], env)
			if err != nil {
				eff.err = err
				return eff
			}
			env.locals[a.Local] = v
		case compile.ActWrite:
			for _, x := range a.Exprs {
				v, err := f.mode.Eval(x, env)
				if err != nil {
					eff.err = err
					return eff
				}
				if v.Kind == wm.KindStr {
					f.out.WriteString(v.S)
				} else {
					f.out.WriteString(v.String())
				}
			}
		case compile.ActHalt:
			eff.halt = true
		}
	}
	// The frame's buffer is reused across firings, so the effect takes a
	// copy; most firings write nothing and skip the allocation entirely.
	if f.out.Len() > 0 {
		eff.output = append([]byte(nil), f.out.Bytes()...)
	}
	return eff
}

// opKind tracks the first operation claimed on a WME during commit.
type opKind uint8

const (
	opRemove opKind = iota + 1
	opModify
)

// commit reconciles buffered effects into one working-memory delta.
//
// Reconciliation rules (deterministic, order = survivor order):
//   - a `remove` of a WME already removed this cycle is benign (removes
//     commute);
//   - any other second operation on the same WME — modify+modify,
//     modify+remove, remove+modify — is a *write conflict*: the first
//     operation wins, the later one is dropped and counted. PARULEL
//     programs are expected to redact such combinations away with
//     meta-rules; the count is the interference signal experiment E6
//     reports.
func (e *Engine) commit(effects []effect) (wm.Delta, int, bool, error) {
	var delta wm.Delta
	conflicts := 0
	halted := false
	claimed := make(map[int64]opKind)

	for i := range effects {
		eff := &effects[i]
		if eff.halt {
			halted = true
		}
		for _, old := range eff.removes {
			if k, taken := claimed[old.Time]; taken {
				if k != opRemove {
					conflicts++
				}
				continue
			}
			claimed[old.Time] = opRemove
			if w, ok := e.mem.Remove(old.Time); ok {
				delta.Removed = append(delta.Removed, w)
			}
		}
		for _, m := range eff.modifies {
			if _, taken := claimed[m.old.Time]; taken {
				conflicts++
				continue
			}
			claimed[m.old.Time] = opModify
			if w, ok := e.mem.Remove(m.old.Time); ok {
				delta.Removed = append(delta.Removed, w)
			}
			nw := e.mem.InsertFields(m.old.Tmpl, m.fields)
			delta.Added = append(delta.Added, nw)
		}
		for _, mk := range eff.makes {
			nw := e.mem.InsertFields(mk.tmpl, mk.fields)
			delta.Added = append(delta.Added, nw)
		}
		if len(eff.output) > 0 {
			if _, err := e.opts.Output.Write(eff.output); err != nil {
				return delta, conflicts, halted, fmt.Errorf("core: write action output: %w", err)
			}
		}
	}
	return delta, conflicts, halted, nil
}
