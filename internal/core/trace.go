package core

import "time"

// Phase names one of the four cycle phases for Tracer callbacks.
type Phase uint8

// Cycle phases, in execution order.
const (
	PhaseMatch Phase = iota
	PhaseRedact
	PhaseFire
	PhaseApply
)

func (p Phase) String() string {
	switch p {
	case PhaseMatch:
		return "match"
	case PhaseRedact:
		return "redact"
	case PhaseFire:
		return "fire"
	default:
		return "apply"
	}
}

// Tracer receives structured engine events as each cycle executes. All
// callbacks are invoked from the engine's own goroutine (never from the
// match/fire workers), in a fixed order per cycle:
//
//	CycleStart
//	PhaseEnd(PhaseMatch) InstantiationsFound
//	PhaseEnd(PhaseRedact) Redacted
//	PhaseEnd(PhaseFire) RuleFired*        (once per distinct rule fired)
//	PhaseEnd(PhaseApply) Commit
//
// A cycle that reaches quiescence after the match phase (no eligible
// instantiations) never commits: implementations must discard a
// CycleStart that is not followed by Commit. A fully redacted cycle
// commits with zero fired rules and an empty delta.
//
// Options.Tracer is nil-checked at every call site, so the disabled path
// costs one branch per event and performs no allocation.
type Tracer interface {
	// CycleStart begins cycle n (1-based, cumulative across runs).
	CycleStart(n int)
	// PhaseEnd reports one phase's wall-clock duration.
	PhaseEnd(p Phase, d time.Duration)
	// InstantiationsFound reports the global conflict-set size and the
	// eligible subset (conflict set minus refraction) after the match phase.
	InstantiationsFound(conflictSet, eligible int)
	// Redacted reports the meta-rule fixpoint outcome: instantiations
	// redacted, synchronous rounds taken, and survivors left to fire.
	Redacted(redacted, rounds, survivors int)
	// RuleFired reports that a rule fired count instantiations this cycle.
	// Calls are made in lexicographic rule-name order.
	RuleFired(rule string, count int)
	// Commit completes the cycle with the reconciled working-memory delta
	// size, the write-conflict count, and whether a (halt) fired.
	Commit(deltaSize, writeConflicts int, halted bool)
}
