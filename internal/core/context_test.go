package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"parulel/internal/wm"
)

// spinner is a program that modifies one counter WME once per cycle, "n"
// cycles short of forever — enough to outlive any test deadline.
const spinner = `
(literalize counter n)
(rule tick
  <c> <- (counter ^n <n>)
  (test (< <n> 1000000000))
-->
  (modify <c> ^n (+ <n> 1)))
(wm (counter ^n 0))
`

func TestRunContextDeadline(t *testing.T) {
	prog := compileOK(t, spinner)
	e := New(prog, Options{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	res, err := e.RunContext(ctx)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, should wrap context.DeadlineExceeded", err)
	}
	if res.Cycles == 0 {
		t.Fatal("expected some cycles to commit before the deadline")
	}
	// Working memory must be in a committed state: exactly one counter WME
	// whose value equals the number of committed cycles.
	facts := e.Memory().OfTemplate("counter")
	if len(facts) != 1 {
		t.Fatalf("counter WMEs = %d, want 1", len(facts))
	}
	if got := facts[0].Fields[0]; got.AsInt() != int64(res.Cycles) {
		t.Fatalf("counter n = %v after %d cycles", got, res.Cycles)
	}
}

func TestRunContextCancelBeforeStart(t *testing.T) {
	prog := compileOK(t, spinner)
	e := New(prog, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := e.RunContext(ctx)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", err)
	}
	if res.Cycles != 0 {
		t.Fatalf("cycles = %d, want 0 for pre-canceled context", res.Cycles)
	}
}

func TestRunContextResumeAfterCancel(t *testing.T) {
	// A canceled run must be resumable: cancel a bounded version of the
	// spinner mid-way, then run to quiescence with a fresh context.
	prog := compileOK(t, `
(literalize counter n)
(rule tick
  <c> <- (counter ^n <n>)
  (test (< <n> 500))
-->
  (modify <c> ^n (+ <n> 1)))
(wm (counter ^n 0))
`)
	e := New(prog, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { time.Sleep(2 * time.Millisecond); cancel(); close(done) }()
	_, err := e.RunContext(ctx)
	<-done
	if err != nil && !errors.Is(err, ErrCanceled) {
		t.Fatalf("unexpected error: %v", err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if res.Cycles != 500 {
		t.Fatalf("total cycles = %d, want 500", res.Cycles)
	}
	if got := e.Memory().OfTemplate("counter")[0].Fields[0].AsInt(); got != 500 {
		t.Fatalf("counter = %d, want 500", got)
	}
}

func TestRetract(t *testing.T) {
	prog := compileOK(t, `
(literalize src id)
(literalize sink id)
(rule expand
  (src ^id <i>)
-->
  (make sink ^id <i>))
`)
	e := New(prog, Options{})
	a, err := e.Insert("src", map[string]wm.Value{"id": wm.Int(1)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Insert("src", map[string]wm.Value{"id": wm.Int(2)})
	if err != nil {
		t.Fatal(err)
	}
	// Retract b while its insert is still pending: the matcher never sees it.
	if !e.Retract(b.Time) {
		t.Fatal("retract of pending WME failed")
	}
	if e.Retract(b.Time) {
		t.Fatal("second retract should report false")
	}
	res := runOK(t, e)
	if res.Firings != 1 {
		t.Fatalf("firings = %d, want 1 (retracted fact must not fire)", res.Firings)
	}
	if n := e.Memory().CountOf("sink"); n != 1 {
		t.Fatalf("sinks = %d, want 1", n)
	}
	// Retract a after it has been matched: the matcher must be told, so a
	// subsequent refraction-free rematch cannot resurrect it.
	if !e.Retract(a.Time) {
		t.Fatal("retract of matched WME failed")
	}
	if n := e.Memory().CountOf("src"); n != 0 {
		t.Fatalf("src count = %d, want 0", n)
	}
	if _, err := e.Run(); err != nil {
		t.Fatalf("run after retract: %v", err)
	}
	if got := len(e.ConflictSet()); got != 0 {
		t.Fatalf("conflict set size = %d, want 0 after retracting the only src", got)
	}
}
