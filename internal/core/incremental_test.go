package core

import (
	"testing"

	"parulel/internal/wm"
)

// PARULEL's lineage (the PARADISER work) couples rule processing to a
// database: after quiescence, new facts arrive and the engine resumes
// incrementally, reusing all match state. These tests pin that behaviour.

func TestEngineIncrementalResume(t *testing.T) {
	prog := compileOK(t, `
(literalize arc  from to)
(literalize path from to)
(rule base
  (arc ^from <a> ^to <b>)
  - (path ^from <a> ^to <b>)
-->
  (make path ^from <a> ^to <b>))
(rule step
  (path ^from <a> ^to <b>)
  (arc ^from <b> ^to <c>)
  (test (<> <a> <c>))
  - (path ^from <a> ^to <c>)
-->
  (make path ^from <a> ^to <c>))
(metarule dedup
  [<i> (step ^a <a> ^c <c>)]
  [<j> (step ^a <a> ^c <c>)]
  (test (precedes <i> <j>))
-->
  (redact <j>))
`)
	e := New(prog, Options{Workers: 2, MaxCycles: 100})
	mustInsert := func(from, to int64) {
		t.Helper()
		if _, err := e.Insert("arc", map[string]wm.Value{"from": wm.Int(from), "to": wm.Int(to)}); err != nil {
			t.Fatal(err)
		}
	}
	mustInsert(1, 2)
	mustInsert(2, 3)
	res1, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if n := e.Memory().CountOf("path"); n != 3 { // 1→2, 2→3, 1→3
		t.Fatalf("paths after first run = %d, want 3", n)
	}

	// New fact arrives after quiescence; resuming derives only the new
	// consequences (4 new paths) in a handful of cycles.
	mustInsert(3, 4)
	res2, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if n := e.Memory().CountOf("path"); n != 6 { // + 3→4, 2→4, 1→4
		t.Fatalf("paths after resume = %d, want 6", n)
	}
	if res2.Cycles-res1.Cycles > 4 {
		t.Errorf("resume took %d extra cycles, want <= 4 (incremental)", res2.Cycles-res1.Cycles)
	}

	// Idle resume: no new facts, no work.
	res3, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res3.Cycles != res2.Cycles || res3.Firings != res2.Firings {
		t.Errorf("idle resume did work: %+v vs %+v", res3, res2)
	}
}

func TestEngineHaltIsTerminal(t *testing.T) {
	prog := compileOK(t, `
(literalize a x)
(rule stop (a ^x <v>) --> (halt))
(wm (a ^x 1))
`)
	e := New(prog, Options{MaxCycles: 10})
	res, err := e.Run()
	if err != nil || !res.Halted {
		t.Fatalf("first run: %+v, %v", res, err)
	}
	if _, err := e.Insert("a", map[string]wm.Value{"x": wm.Int(2)}); err != nil {
		t.Fatal(err)
	}
	res2, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Cycles != res.Cycles {
		t.Errorf("halted engine resumed: %+v", res2)
	}
}

func TestEngineRefractionSurvivesResume(t *testing.T) {
	// An instantiation that fired before quiescence must not refire when
	// unrelated facts arrive.
	prog := compileOK(t, `
(literalize a x)
(literalize out x)
(rule once (a ^x <v>) --> (make out ^x <v>))
(wm (a ^x 1))
`)
	e := New(prog, Options{MaxCycles: 10})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Insert("a", map[string]wm.Value{"x": wm.Int(2)}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Firings != 2 {
		t.Errorf("firings = %d, want 2 (one per distinct instantiation)", res.Firings)
	}
	if n := e.Memory().CountOf("out"); n != 2 {
		t.Errorf("outs = %d, want 2", n)
	}
}
