package core_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"parulel/internal/compile"
	"parulel/internal/core"
	"parulel/internal/match"
	"parulel/internal/match/rete"
	"parulel/internal/match/treat"
	"parulel/internal/programs"
	"parulel/internal/wm"
	"parulel/internal/workload"
)

// matcherConfigs is the {RETE, TREAT} × {index on, index off} ×
// {bytecode, interp} grid the differential tests sweep. Results must be
// bit-identical across all eight: the hash-join indexes, the compact
// instantiation keys and the bytecode compilation of expressions are
// pure optimizations.
var matcherConfigs = []struct {
	name    string
	factory match.Factory
	eval    compile.EvalMode
}{
	{"rete-indexed-bytecode", rete.Factory(rete.Options{}), compile.EvalBytecode},
	{"rete-indexed-interp", rete.Factory(rete.Options{EvalMode: compile.EvalInterp}), compile.EvalInterp},
	{"rete-noindex-bytecode", rete.Factory(rete.Options{DisableJoinIndex: true}), compile.EvalBytecode},
	{"rete-noindex-interp", rete.Factory(rete.Options{DisableJoinIndex: true, EvalMode: compile.EvalInterp}), compile.EvalInterp},
	{"treat-indexed-bytecode", treat.Factory(treat.Options{}), compile.EvalBytecode},
	{"treat-indexed-interp", treat.Factory(treat.Options{EvalMode: compile.EvalInterp}), compile.EvalInterp},
	{"treat-noindex-bytecode", treat.Factory(treat.Options{DisableJoinIndex: true}), compile.EvalBytecode},
	{"treat-noindex-interp", treat.Factory(treat.Options{DisableJoinIndex: true, EvalMode: compile.EvalInterp}), compile.EvalInterp},
}

// firingTracer records the per-cycle rule-firing sequence (RuleFired
// calls arrive in name order within each committed cycle, so identical
// executions yield identical sequences).
type firingTracer struct {
	cycle  int
	firing []string
}

func (f *firingTracer) CycleStart(n int)                   { f.cycle = n }
func (f *firingTracer) PhaseEnd(core.Phase, time.Duration) {}
func (f *firingTracer) InstantiationsFound(int, int)       {}
func (f *firingTracer) Redacted(int, int, int)             {}
func (f *firingTracer) RuleFired(rule string, count int) {
	f.firing = append(f.firing, fmt.Sprintf("%d:%s:%d", f.cycle, rule, count))
}
func (f *firingTracer) Commit(int, int, bool) {}

// outcome is everything an engine run must agree on across matchers.
type outcome struct {
	cycles, firings, redactions, conflicts int
	halted                                 bool
	wm                                     []string
	firing                                 []string // "cycle:rule:count" sequence
}

func runOutcome(t *testing.T, prog *compile.Program, load func(workload.Inserter) error, f match.Factory, mode compile.EvalMode) outcome {
	t.Helper()
	tr := &firingTracer{}
	e := core.New(prog, core.Options{Workers: 2, MaxCycles: 1 << 20, Matcher: f, EvalMode: mode, Tracer: tr})
	if err := load(e); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	snap := e.Memory().Snapshot()
	facts := make([]string, len(snap))
	for i, w := range snap {
		facts[i] = w.String()
	}
	sort.Strings(facts)
	return outcome{
		cycles:     res.Cycles,
		firings:    res.Firings,
		redactions: res.Redactions,
		conflicts:  res.WriteConflicts,
		halted:     res.Halted,
		wm:         facts,
		firing:     tr.firing,
	}
}

func diffOutcomes(t *testing.T, name string, want, got outcome) {
	t.Helper()
	if want.cycles != got.cycles || want.firings != got.firings ||
		want.redactions != got.redactions || want.conflicts != got.conflicts ||
		want.halted != got.halted {
		t.Fatalf("%s: result diverged: want {cycles %d firings %d redactions %d conflicts %d halted %v}, got {cycles %d firings %d redactions %d conflicts %d halted %v}",
			name, want.cycles, want.firings, want.redactions, want.conflicts, want.halted,
			got.cycles, got.firings, got.redactions, got.conflicts, got.halted)
	}
	if len(want.wm) != len(got.wm) {
		t.Fatalf("%s: final working memory size %d, want %d", name, len(got.wm), len(want.wm))
	}
	for i := range want.wm {
		if want.wm[i] != got.wm[i] {
			t.Fatalf("%s: final working memory differs at %d: %q vs %q", name, i, got.wm[i], want.wm[i])
		}
	}
	if len(want.firing) != len(got.firing) {
		t.Fatalf("%s: firing sequence length %d, want %d", name, len(got.firing), len(want.firing))
	}
	for i := range want.firing {
		if want.firing[i] != got.firing[i] {
			t.Fatalf("%s: firing sequence differs at %d: %q vs %q", name, i, got.firing[i], want.firing[i])
		}
	}
}

// TestMatcherDifferentialEmbeddedPrograms runs every embedded program to
// quiescence under all eight configurations and requires identical cycle
// counts, firings, redactions, write conflicts, halt status, final
// working-memory contents and per-cycle firing sequences.
func TestMatcherDifferentialEmbeddedPrograms(t *testing.T) {
	cases := []struct {
		prog string
		load func(workload.Inserter) error
	}{
		{programs.Quickstart, func(i workload.Inserter) error { return workload.People(i, 10) }},
		{programs.Alexsys, func(i workload.Inserter) error { return workload.Alexsys(i, 25, 18, 1) }},
		{programs.Waltz, func(i workload.Inserter) error { return workload.WaltzScene(i, 8) }},
		{programs.Closure, func(i workload.Inserter) error { return workload.LayeredDAG(i, 4, 4, 2, 1) }},
		{programs.Manners, func(i workload.Inserter) error { return workload.Manners(i, 10, 2, 4, 1) }},
		{programs.Life, func(i workload.Inserter) error {
			return workload.LifeGrid(i, 6, 6, workload.LifeRandom(6, 6, 0.4, 3), 3)
		}},
		{programs.Circuit, func(i workload.Inserter) error {
			return workload.GenCircuit(6, 8, true, 1).Insert(i)
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.prog, func(t *testing.T) {
			prog, err := programs.Load(tc.prog)
			if err != nil {
				t.Fatal(err)
			}
			base := runOutcome(t, prog, tc.load, matcherConfigs[0].factory, matcherConfigs[0].eval)
			for _, cfg := range matcherConfigs[1:] {
				diffOutcomes(t, cfg.name, base, runOutcome(t, prog, tc.load, cfg.factory, cfg.eval))
			}
		})
	}
}

// filteredJoinChain is the E4 join chain with a `(test …)` filter on
// every element, so the matcher-direct sweep also exercises the eval
// dimension of the grid (filters run per join candidate).
func filteredJoinChain(depth int) string {
	var b strings.Builder
	b.WriteString("(literalize rec seg key val)\n")
	b.WriteString("(literalize out key)\n")
	b.WriteString("(rule deep\n")
	for i := 0; i < depth; i++ {
		fmt.Fprintf(&b, "  (rec ^seg %d ^key <k> ^val <v%d>)\n", i, i)
		fmt.Fprintf(&b, "  (test (>= (+ <v%d> <k>) 0))\n", i)
	}
	b.WriteString("-->\n  (make out ^key <k>))\n")
	return b.String()
}

// TestMatcherDifferentialGeneratedJoinChains sweeps generated deep-join
// workloads (the E4 shapes, with per-element filters) through the same
// eight-way grid. These chains are where the beta index matters most, so
// a probe/scan disagreement would surface here first.
func TestMatcherDifferentialGeneratedJoinChains(t *testing.T) {
	for _, depth := range []int{2, 4, 6} {
		depth := depth
		t.Run(fmt.Sprintf("depth=%d", depth), func(t *testing.T) {
			prog, err := compile.CompileSource(filteredJoinChain(depth))
			if err != nil {
				t.Fatal(err)
			}
			facts := workload.JoinChainFacts(10, depth, 2, 1)
			tmpl := prog.Schema.MustLookup("rec")

			// Drive the matchers directly (the join-chain program has no
			// actions): build up, then churn, comparing conflict sets after
			// every delta.
			mem := wm.NewMemory(prog.Schema)
			ms := make([]match.Matcher, len(matcherConfigs))
			for i, cfg := range matcherConfigs {
				ms[i] = cfg.factory(prog.Rules)
			}
			check := func(step string) {
				t.Helper()
				base := matchtestKeys(ms[0].ConflictSet())
				for i, m := range ms[1:] {
					got := matchtestKeys(m.ConflictSet())
					if len(base) != len(got) {
						t.Fatalf("%s: %s: conflict set size %d, want %d",
							step, matcherConfigs[i+1].name, len(got), len(base))
					}
					for j := range base {
						if base[j] != got[j] {
							t.Fatalf("%s: %s: conflict sets differ at %d: %s vs %s",
								step, matcherConfigs[i+1].name, j, got[j], base[j])
						}
					}
				}
			}
			apply := func(d wm.Delta) {
				for _, m := range ms {
					m.Apply(d)
				}
			}

			wmes := make([]*wm.WME, 0, len(facts))
			for k, fields := range facts {
				vec := make([]wm.Value, tmpl.Arity())
				for attr, v := range fields {
					idx, _ := tmpl.AttrIndex(attr)
					vec[idx] = v
				}
				w := mem.InsertFields(tmpl, vec)
				wmes = append(wmes, w)
				apply(wm.Delta{Added: []*wm.WME{w}})
				if k%13 == 0 {
					check(fmt.Sprintf("build %d", k))
				}
			}
			check("built")
			for i := 0; i < len(wmes); i += 5 {
				old := wmes[i]
				mem.Remove(old.Time)
				nw := mem.InsertFields(old.Tmpl, old.Fields)
				apply(wm.Delta{Removed: []*wm.WME{old}, Added: []*wm.WME{nw}})
				wmes[i] = nw
				check(fmt.Sprintf("churn %d", i))
			}
		})
	}
}

func matchtestKeys(ins []*match.Instantiation) []string {
	out := make([]string, len(ins))
	for i, in := range ins {
		out[i] = in.KeyString()
	}
	return out
}
