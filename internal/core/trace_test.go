package core

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// recordingTracer logs the callback sequence as compact strings so tests
// can assert on both order and payloads.
type recordingTracer struct {
	log []string
}

func (r *recordingTracer) CycleStart(n int) { r.log = append(r.log, fmt.Sprintf("start:%d", n)) }
func (r *recordingTracer) PhaseEnd(p Phase, d time.Duration) {
	r.log = append(r.log, "phase:"+p.String())
}
func (r *recordingTracer) InstantiationsFound(cs, el int) {
	r.log = append(r.log, fmt.Sprintf("found:%d/%d", cs, el))
}
func (r *recordingTracer) Redacted(red, rounds, survivors int) {
	r.log = append(r.log, fmt.Sprintf("redact:%d/%d/%d", red, rounds, survivors))
}
func (r *recordingTracer) RuleFired(rule string, count int) {
	r.log = append(r.log, fmt.Sprintf("fired:%s:%d", rule, count))
}
func (r *recordingTracer) Commit(delta, conflicts int, halted bool) {
	r.log = append(r.log, fmt.Sprintf("commit:%d/%d/%v", delta, conflicts, halted))
}

func TestTracerCallbackOrder(t *testing.T) {
	prog := compileOK(t, `
(literalize src id)
(literalize sink id)
(rule expand
  (src ^id <i>)
-->
  (make sink ^id <i>)
  (remove 1))
(wm (src ^id 1) (src ^id 2))
`)
	tr := &recordingTracer{}
	e := New(prog, Options{Workers: 2, Tracer: tr})
	res := runOK(t, e)
	if res.Cycles != 1 {
		t.Fatalf("cycles = %d, want 1", res.Cycles)
	}
	want := []string{
		"start:1",
		"phase:match", "found:2/2",
		"phase:redact", "redact:0/0/2",
		"phase:fire", "fired:expand:2",
		"phase:apply", "commit:4/0/false",
		// Quiescence probe: a CycleStart with no Commit.
		"start:2",
		"phase:match", "found:0/0",
	}
	if got := strings.Join(tr.log, " "); got != strings.Join(want, " ") {
		t.Errorf("callback sequence:\n got: %s\nwant: %s", got, strings.Join(want, " "))
	}
}

func TestTracerAllRedactedCycleCommits(t *testing.T) {
	// Mutual redaction kills every instantiation: the cycle still commits,
	// with zero fired rules and an empty delta.
	prog := compileOK(t, `
(literalize a x)
(literalize out x)
(rule r (a ^x <v>) --> (make out ^x <v>))
(metarule duel
  [<i> (r ^v <v1>)]
  [<j> (r ^v <v2>)]
  (test (<> <v1> <v2>))
-->
  (redact <j>))
(wm (a ^x 1) (a ^x 2))
`)
	tr := &recordingTracer{}
	e := New(prog, Options{MaxCycles: 10, Tracer: tr})
	res := runOK(t, e)
	if res.Redactions != 2 {
		t.Fatalf("redactions = %d, want 2", res.Redactions)
	}
	seq := strings.Join(tr.log, " ")
	if !strings.Contains(seq, "redact:2/1/0 phase:fire phase:apply commit:0/0/false") {
		t.Errorf("all-redacted cycle should commit empty, got:\n%s", seq)
	}
	if strings.Contains(seq, "fired:") {
		t.Errorf("no rule should fire, got:\n%s", seq)
	}
}

func TestTracerHaltAndRuleOrder(t *testing.T) {
	// Two rules fire in one cycle, one halts; RuleFired calls arrive in
	// lexicographic rule-name order.
	prog := compileOK(t, `
(literalize a x)
(literalize out x)
(rule zeta (a ^x <v>) --> (make out ^x <v>))
(rule alpha (a ^x <v>) --> (halt))
(wm (a ^x 1))
`)
	tr := &recordingTracer{}
	e := New(prog, Options{MaxCycles: 10, Tracer: tr})
	res := runOK(t, e)
	if !res.Halted {
		t.Fatal("should halt")
	}
	seq := strings.Join(tr.log, " ")
	if !strings.Contains(seq, "fired:alpha:1 fired:zeta:1") {
		t.Errorf("RuleFired not in name order:\n%s", seq)
	}
	if !strings.HasSuffix(seq, "commit:1/0/true") {
		t.Errorf("halting commit missing:\n%s", seq)
	}
}

func TestEngineRuleFiresAndProfiles(t *testing.T) {
	prog := compileOK(t, determinismProgram)
	e := New(prog, Options{MaxCycles: 50, Workers: 2})
	runOK(t, e)
	fires := e.RuleFires()
	if len(fires) == 0 || fires["propose"] == 0 {
		t.Fatalf("RuleFires = %v, want propose > 0", fires)
	}
	profs := e.RuleProfiles()
	if len(profs) == 0 {
		t.Fatal("RuleProfiles empty; default matcher should implement match.RuleProfiler")
	}
	byName := map[string]bool{}
	for _, p := range profs {
		byName[p.Rule] = true
		if p.Rule == "propose" {
			if p.Insts == 0 {
				t.Errorf("propose insts = 0, want > 0")
			}
			if p.Fires != uint64(fires["propose"]) {
				t.Errorf("propose fires = %d, want %d", p.Fires, fires["propose"])
			}
		}
	}
	if !byName["propose"] || !byName["award"] {
		t.Fatalf("profiles missing rules: %v", profs)
	}
}
