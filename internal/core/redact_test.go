package core

import (
	"testing"

	"parulel/internal/wm"
)

// The chain program distinguishes the two redaction semantics: with
// tokens 1, 2, 3 the meta-rule justifies "1 kills 2" and "2 kills 3".
//
//   - synchronous: both matches apply at once → 2 and 3 die, only 1 fires;
//   - sequential:  1 kills 2 first; the (2,3) tuple now has a dead member
//     and is skipped → 1 and 3 fire.
const chainRedactionProgram = `
(literalize item n)
(literalize out n)
(rule emit (item ^n <n>) --> (make out ^n <n>))
(metarule kill-successor
  [<i> (emit ^n <a>)]
  [<j> (emit ^n <b>)]
  (test (= <b> (+ <a> 1)))
-->
  (redact <j>))
(wm (item ^n 1) (item ^n 2) (item ^n 3))
`

func outValues(t *testing.T, e *Engine) []int64 {
	t.Helper()
	var out []int64
	for _, w := range e.Memory().OfTemplate("out") {
		out = append(out, w.Fields[0].I)
	}
	return out
}

func TestSynchronousRedactionOverKills(t *testing.T) {
	prog := compileOK(t, chainRedactionProgram)
	e := New(prog, Options{MaxCycles: 10})
	res := runOK(t, e)
	// First cycle: 2 and 3 redacted, 1 fires. Second cycle: 2 and 3 are
	// still eligible (unfired, WM unchanged for them); 2 is killed by 1?
	// No — 1 already fired, so it is refracted and not eligible; the
	// remaining set {2,3} re-redacts 3, fires 2; then 3 fires alone.
	got := outValues(t, e)
	if len(got) != 3 {
		t.Fatalf("outs: %v", got)
	}
	// The interesting signal is the shape: synchronous redaction spreads
	// the firings over three cycles.
	if res.Cycles != 3 {
		t.Errorf("cycles = %d, want 3 (over-kill serializes the chain)", res.Cycles)
	}
	if res.Redactions != 3 { // 2 and 3 in cycle 1, 3 again in cycle 2
		t.Errorf("redactions = %d, want 3", res.Redactions)
	}
}

func TestSequentialRedactionSparesTransitiveVictims(t *testing.T) {
	prog := compileOK(t, chainRedactionProgram)
	e := New(prog, Options{MaxCycles: 10, SequentialRedaction: true})
	res := runOK(t, e)
	got := outValues(t, e)
	if len(got) != 3 {
		t.Fatalf("outs: %v", got)
	}
	// Cycle 1: 1 kills 2; tuple (2,3) is skipped (2 dead) → 1 AND 3 fire
	// together. Cycle 2: 2 fires alone (1 and 3 refracted; (1,2) still
	// kills? 1 is not eligible anymore, so no).
	if res.Cycles != 2 {
		t.Errorf("cycles = %d, want 2 (sequential spares 3)", res.Cycles)
	}
	if res.Redactions != 1 {
		t.Errorf("redactions = %d, want 1 (only 2 dies)", res.Redactions)
	}
}

func TestSequentialRedactionMutualKeepsFirst(t *testing.T) {
	// Mutual redaction: synchronous kills both; sequential keeps the
	// tuple visited first (deterministic order).
	prog := compileOK(t, `
(literalize a x)
(literalize out x)
(rule r (a ^x <v>) --> (make out ^x <v>))
(metarule duel
  [<i> (r ^v <v1>)]
  [<j> (r ^v <v2>)]
  (test (<> <v1> <v2>))
-->
  (redact <j>))
(wm (a ^x 1) (a ^x 2))
`)
	e := New(prog, Options{MaxCycles: 10, SequentialRedaction: true})
	res := runOK(t, e)
	// Cycle 1: tuple (1,2) kills 2; tuple (2,1) skipped (2 dead) → 1
	// fires. Cycle 2: 2 fires alone.
	if res.Firings != 2 || res.Redactions != 1 {
		t.Errorf("firings=%d redactions=%d, want 2/1", res.Firings, res.Redactions)
	}
	outs := e.Memory().OfTemplate("out")
	if len(outs) != 2 || outs[0].Fields[0] != wm.Int(1) {
		t.Errorf("outs: %v (1 must fire first)", outs)
	}
}

func TestSequentialRedactionDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) string {
		prog := compileOK(t, chainRedactionProgram)
		e := New(prog, Options{Workers: workers, MaxCycles: 10, SequentialRedaction: true})
		runOK(t, e)
		s := ""
		for _, w := range e.Memory().Snapshot() {
			s += w.String() + "\n"
		}
		return s
	}
	if run(1) != run(4) {
		t.Error("sequential redaction must stay deterministic across worker counts")
	}
}

func TestRedactionConflictFreedomBothSemantics(t *testing.T) {
	// Under either semantics, the surviving set must be conflict-free:
	// alexsys-style competition for one resource must never fire two
	// awards of the same pool in a cycle.
	src := `
(literalize pool id state)
(literalize order id)
(rule award
  <p> <- (pool ^id <pid> ^state free)
  (order ^id <o>)
-->
  (modify <p> ^state <o>))
(metarule one-per-pool
  [<i> (award ^pid <p> ^o <o1>)]
  [<j> (award ^pid <p> ^o <o2>)]
  (test (< <o1> <o2>))
-->
  (redact <j>))
(wm (pool ^id 1 ^state free) (order ^id 1) (order ^id 2) (order ^id 3))
`
	for _, sequential := range []bool{false, true} {
		e := New(compileOK(t, src), Options{MaxCycles: 10, SequentialRedaction: sequential})
		res := runOK(t, e)
		if res.WriteConflicts != 0 {
			t.Errorf("sequential=%v: write conflicts = %d, want 0", sequential, res.WriteConflicts)
		}
		pools := e.Memory().OfTemplate("pool")
		if len(pools) != 1 || pools[0].Fields[1] != wm.Int(1) {
			t.Errorf("sequential=%v: pool state %v, want order 1", sequential, pools)
		}
	}
}

func TestParallelRedactionMatchesSerial(t *testing.T) {
	// Synchronous redaction striped over workers must be identical to the
	// single-goroutine result on a conflict-heavy workload large enough
	// to cross the parallel threshold.
	load := func(e *Engine) {
		for p := int64(0); p < 30; p++ {
			if _, err := e.Insert("pool", map[string]wm.Value{"id": wm.Int(p), "state": wm.Sym("free")}); err != nil {
				t.Fatal(err)
			}
		}
		for o := int64(0); o < 20; o++ {
			if _, err := e.Insert("order", map[string]wm.Value{"id": wm.Int(o)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	state := func(workers int) (string, Result) {
		prog := compileOK(t, `
(literalize pool id state)
(literalize order id)
(literalize award pool order)
(rule propose
  (pool ^id <p> ^state free)
  (order ^id <o>)
-->
  (make award ^pool <p> ^order <o>)
  (remove 1))
(metarule one-per-pool
  [<i> (propose ^p <p> ^o <o1>)]
  [<j> (propose ^p <p> ^o <o2>)]
  (test (< <o1> <o2>))
-->
  (redact <j>))
`)
		e := New(prog, Options{Workers: workers, MaxCycles: 1000})
		load(e)
		res := runOK(t, e)
		s := ""
		for _, w := range e.Memory().Snapshot() {
			s += w.String() + "\n"
		}
		return s, res
	}
	ref, refRes := state(1)
	for _, w := range []int{2, 4, 8} {
		got, res := state(w)
		if got != ref {
			t.Errorf("workers=%d: parallel redaction diverged", w)
		}
		if res.Redactions != refRes.Redactions || res.Firings != refRes.Firings {
			t.Errorf("workers=%d: counters differ: %+v vs %+v", w, res, refRes)
		}
	}
	// The conflict set (30 pools × 20 orders = 600 proposals) is above
	// the parallel threshold, so the striped path actually ran.
	if refRes.Redactions == 0 {
		t.Fatal("workload produced no redactions; threshold test is vacuous")
	}
}
