package core

import (
	"bytes"
	"testing"

	"parulel/internal/compile"
	"parulel/internal/snapshot"
	"parulel/internal/wm"
)

// restoreSrc exercises everything restore must preserve: multi-CE joins
// (refraction state), gensym (derived from time tags), and meta-rule
// serialization (tag-order dependent).
const restoreSrc = `
(literalize item  n mark)
(literalize seen  n id)
(rule tag-item
  (item ^n <n> ^mark nil)
-->
  (bind <g>)
  (make seen ^n <n> ^id <g>))
(rule mark-item
  <i> <- (item ^n <n> ^mark nil)
  (seen ^n <n>)
-->
  (modify <i> ^mark done))
(rule note-done
  (item ^n <n> ^mark done)
-->
  (make seen ^n (- 0 1) ^id noted))
(metarule serialize
  [<i> (mark-item)]
  [<j> (mark-item)]
  (test (precedes <i> <j>))
-->
  (redact <j>))
`

func compileRestore(t *testing.T) *compile.Program {
	t.Helper()
	prog, err := compile.CompileSource(restoreSrc)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func insertItems(t *testing.T, e *Engine, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		if _, err := e.Insert("item", map[string]wm.Value{"n": wm.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
}

// transplant rebuilds an engine from another's replayable state, the way
// checkpoint recovery does: fresh engine without initial facts, WMEs
// restored under their original tags, then refraction keys and counters.
func transplant(t *testing.T, src *Engine, prog *compile.Program, workers int) *Engine {
	t.Helper()
	dst := New(prog, Options{Workers: workers, NoInitialFacts: true})
	for _, w := range src.Memory().Snapshot() {
		fields := make(map[string]wm.Value, len(w.Fields))
		for i, attr := range w.Tmpl.Attrs {
			if !w.Fields[i].IsNil() {
				fields[attr] = w.Fields[i]
			}
		}
		if _, err := dst.RestoreWME(w.Tmpl.Name, fields, w.Time); err != nil {
			t.Fatal(err)
		}
	}
	dst.RestoreFired(src.FiredKeys())
	dst.RestoreCounters(src.Counters())
	return dst
}

func snapshotText(t *testing.T, e *Engine) string {
	t.Helper()
	var b bytes.Buffer
	if err := snapshot.Write(&b, e.Memory()); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestRestoreMidRunDeterministic pauses an engine between cycles,
// transplants its state, and requires both copies to finish with
// byte-identical snapshots and equal counters — including the gensym
// values baked into `seen` facts, which only match if time tags and
// refraction state were restored exactly.
func TestRestoreMidRunDeterministic(t *testing.T) {
	prog := compileRestore(t)
	for _, pause := range []int{0, 1, 2, 3} {
		orig := New(prog, Options{Workers: 2})
		insertItems(t, orig, 0, 6)
		for i := 0; i < pause; i++ {
			if _, err := orig.Step(); err != nil {
				t.Fatal(err)
			}
		}
		restored := transplant(t, orig, prog, 3) // worker count may differ

		if _, err := orig.Run(); err != nil {
			t.Fatal(err)
		}
		if _, err := restored.Run(); err != nil {
			t.Fatal(err)
		}
		if a, b := snapshotText(t, orig), snapshotText(t, restored); a != b {
			t.Fatalf("pause=%d: snapshots differ\n-- original --\n%s\n-- restored --\n%s", pause, a, b)
		}
		if a, b := orig.Counters(), restored.Counters(); a != b {
			t.Fatalf("pause=%d: counters differ: %+v vs %+v", pause, a, b)
		}
	}
}

// TestRestoreRefractionPreventsRefire: without the restored fired set, a
// quiescent engine would re-fire still-present instantiations after
// recovery and diverge.
func TestRestoreRefractionPreventsRefire(t *testing.T) {
	prog := compileRestore(t)
	orig := New(prog, Options{Workers: 1})
	insertItems(t, orig, 0, 3)
	res, err := orig.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Firings == 0 {
		t.Fatal("workload fired nothing")
	}

	restored := transplant(t, orig, prog, 1)
	res2, err := restored.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Cycles != res.Cycles || res2.Firings != res.Firings {
		t.Fatalf("restored engine did extra work: %+v vs %+v", res2, res)
	}

	// Dropping the refraction set must be observable (the test would be
	// vacuous if nothing in the conflict set had fired).
	bad := New(prog, Options{Workers: 1, NoInitialFacts: true})
	for _, w := range orig.Memory().Snapshot() {
		fields := make(map[string]wm.Value, len(w.Fields))
		for i, attr := range w.Tmpl.Attrs {
			if !w.Fields[i].IsNil() {
				fields[attr] = w.Fields[i]
			}
		}
		if _, err := bad.RestoreWME(w.Tmpl.Name, fields, w.Time); err != nil {
			t.Fatal(err)
		}
	}
	bad.RestoreCounters(orig.Counters())
	res3, err := bad.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res3.Firings == res.Firings {
		t.Fatal("conflict set held no fired instantiations at quiescence; refraction restore untested")
	}
}

// TestReplayStepsVerifiesCycleCount: ReplaySteps must notice when the
// engine cannot commit as many cycles as the log recorded.
func TestReplayStepsVerifiesCycleCount(t *testing.T) {
	prog := compileRestore(t)
	e := New(prog, Options{Workers: 1})
	insertItems(t, e, 0, 2)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}

	replayed := New(prog, Options{Workers: 1})
	insertItems(t, replayed, 0, 2)
	if err := replayed.ReplaySteps(res.Cycles); err != nil {
		t.Fatalf("faithful replay failed: %v", err)
	}
	// The engine is quiescent now; demanding one more cycle must error.
	if err := replayed.ReplaySteps(1); err == nil {
		t.Fatal("over-replay should report divergence")
	}
}
