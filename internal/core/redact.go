package core

import (
	"sync"

	"parulel/internal/compile"
	"parulel/internal/match"
	"parulel/internal/wm"
)

// redactor runs the meta-rule redaction fixpoint.
//
// Semantics (synchronous): every meta-rule is matched against the eligible
// set; all redactions justified by those matches apply simultaneously, so
// the outcome is independent of meta-rule ordering and tuple enumeration
// order, and two instantiations that each justify redacting the other both
// die — meta-rule programs break such ties with `(tag …)` or
// `(precedes …)`.
//
// Because meta patterns have no negation over the conflict set, matching
// is monotone in the instantiation set: removing instantiations can only
// remove matches, never create them. Any tuple matching the post-round
// survivors also matched the full set, and its redaction target was
// already deleted — so the synchronous-round fixpoint is reached after
// exactly one round, and the redactor runs a single pass.
//
// Under synchronous semantics the pass parallelizes: matches are a pure
// function of the eligible set and the dead-set is a union, so tuple
// enumeration is striped across the engine's workers by the first
// pattern's candidates. Sequential semantics (E8) is inherently serial —
// each match's immediate effect feeds the next — and always runs on one
// goroutine.
type redactor struct {
	metas []*compile.MetaRule
	// workers bounds the goroutines used for the synchronous pass.
	workers int
	// noIndex disables the equality-join hash index (ablation experiment
	// E7) and forces nested-loop tuple enumeration.
	noIndex bool
	// sequential switches to the alternative semantics explored by E8:
	// meta-rules apply in declaration order with immediate effect, so a
	// redacted instantiation can no longer justify later redactions.
	// Synchronous semantics can over-kill (two instantiations that each
	// justify redacting the other both die); sequential semantics keeps
	// the first and spares everything it dominates transitively.
	sequential bool
	// evalMode is the backend for meta-rule test expressions.
	evalMode compile.EvalMode
}

func newRedactor(metas []*compile.MetaRule, workers int, noIndex, sequential bool, evalMode compile.EvalMode) *redactor {
	if workers < 1 {
		workers = 1
	}
	return &redactor{metas: metas, workers: workers, noIndex: noIndex, sequential: sequential, evalMode: evalMode}
}

// parallelThreshold is the pattern-0 candidate count below which striping
// the enumeration is not worth the goroutine overhead.
const parallelThreshold = 64

// run computes the surviving instantiations, the number of rounds (0 or
// 1), and the number of redacted instantiations.
func (r *redactor) run(eligible []*match.Instantiation) ([]*match.Instantiation, int, int) {
	if len(r.metas) == 0 || len(eligible) == 0 {
		return eligible, 0, 0
	}
	dead := make(map[match.Key]bool)
	byRule := make(map[*compile.Rule][]*match.Instantiation)
	for _, in := range eligible {
		byRule[in.Rule] = append(byRule[in.Rule], in)
	}
	for _, m := range r.metas {
		states := r.buildStates(m, byRule)
		switch {
		case r.sequential, r.workers == 1, len(states[0].cands) < parallelThreshold:
			r.matchMeta(m, states, 0, 1, dead)
		default:
			// Stripe pattern-0 candidates across workers; each collects a
			// local dead-set; the union is order-independent.
			w := r.workers
			locals := make([]map[match.Key]bool, w)
			var wg sync.WaitGroup
			for k := 0; k < w; k++ {
				wg.Add(1)
				go func(k int) {
					defer wg.Done()
					locals[k] = make(map[match.Key]bool)
					r.matchMeta(m, states, k, w, locals[k])
				}(k)
			}
			wg.Wait()
			for _, l := range locals {
				for key := range l {
					dead[key] = true
				}
			}
		}
	}
	if len(dead) == 0 {
		return eligible, 0, 0
	}
	survivors := eligible[:0:0]
	for _, in := range eligible {
		if !dead[in.Key()] {
			survivors = append(survivors, in)
		}
	}
	return survivors, 1, len(eligible) - len(survivors)
}

// patState holds one pattern's pre-filtered candidates and optional
// equality-join index. States are built once per meta-rule and shared
// read-only across the striped goroutines.
type patState struct {
	cands   []*match.Instantiation
	eqTest  *compile.MetaJoinTest
	index   map[wm.Value][]*match.Instantiation
	restIdx int // index of eqTest within JoinTests, -1 if none
}

// buildStates pre-filters each pattern's candidates by its constant,
// disjunction and intra-instantiation tests, and builds a hash index on
// the pattern's first equality join test (the common case — e.g. "same
// pool") to avoid quadratic blowup on large conflict sets.
func (r *redactor) buildStates(m *compile.MetaRule, byRule map[*compile.Rule][]*match.Instantiation) []patState {
	states := make([]patState, len(m.Patterns))
	for i, p := range m.Patterns {
		var cands []*match.Instantiation
		for _, in := range byRule[p.Rule] {
			if metaAlphaPasses(p, in) {
				cands = append(cands, in)
			}
		}
		st := patState{cands: cands, restIdx: -1}
		if !r.noIndex {
			for j := range p.JoinTests {
				if p.JoinTests[j].Op == compile.OpEq {
					st.eqTest = &p.JoinTests[j]
					st.restIdx = j
					break
				}
			}
		}
		if st.eqTest != nil {
			st.index = make(map[wm.Value][]*match.Instantiation, len(cands))
			for _, in := range cands {
				k := in.Binding(st.eqTest.Ref)
				st.index[k] = append(st.index[k], in)
			}
		}
		states[i] = st
	}
	return states
}

// matchMeta enumerates the tuples of distinct instantiations matching the
// meta-rule's patterns whose pattern-0 candidate index ≡ stripe (mod
// strides), recording redaction targets in dead. Under synchronous
// semantics every match's targets are recorded but matching keeps using
// the full set; under sequential semantics (always stripe 0 of 1) dead
// instantiations are skipped and a completed match kills its targets
// immediately.
func (r *redactor) matchMeta(m *compile.MetaRule, states []patState, stripe, strides int, dead map[match.Key]bool) {
	tuple := make([]*match.Instantiation, len(m.Patterns))
	used := make(map[match.Key]bool, len(m.Patterns))
	var choose func(i int)
	choose = func(i int) {
		if i == len(m.Patterns) {
			if r.sequential {
				// Immediate effect: a tuple only matches if all its
				// members are still alive at this point.
				for _, in := range tuple {
					if dead[in.Key()] {
						return
					}
				}
			}
			env := metaEnv{tuple: tuple}
			for _, t := range m.Tests {
				v, err := r.evalMode.Eval(t, env)
				if err != nil || !v.Truthy() {
					return
				}
			}
			for _, pi := range m.Redacts {
				dead[tuple[pi].Key()] = true
			}
			return
		}
		st := &states[i]
		p := m.Patterns[i]
		cands := st.cands
		if i == 0 && strides > 1 {
			// Striped share of the outermost loop.
			share := make([]*match.Instantiation, 0, len(cands)/strides+1)
			for j := stripe; j < len(cands); j += strides {
				share = append(share, cands[j])
			}
			cands = share
		}
		if st.eqTest != nil {
			probe := tuple[st.eqTest.OtherPat].Binding(st.eqTest.OtherRef)
			cands = st.index[probe]
		}
	cand:
		for _, in := range cands {
			if used[in.Key()] {
				continue // patterns bind distinct instantiations
			}
			if r.sequential && dead[in.Key()] {
				continue
			}
			for j, jt := range p.JoinTests {
				if j == st.restIdx {
					continue // satisfied by the index probe
				}
				if !jt.Op.Apply(in.Binding(jt.Ref), tuple[jt.OtherPat].Binding(jt.OtherRef)) {
					continue cand
				}
			}
			tuple[i] = in
			used[in.Key()] = true
			choose(i + 1)
			delete(used, in.Key())
			tuple[i] = nil
		}
	}
	choose(0)
}

// metaAlphaPasses checks a pattern's per-instantiation tests.
func metaAlphaPasses(p *compile.InstPattern, in *match.Instantiation) bool {
	for _, t := range p.ConstTests {
		if !t.Op.Apply(in.Binding(t.Ref), t.Val) {
			return false
		}
	}
	for _, t := range p.DisjTests {
		if !t.Matches(in.Binding(t.Ref)) {
			return false
		}
	}
	for _, t := range p.IntraTests {
		if !t.Op.Apply(in.Binding(t.Ref), in.Binding(t.OtherRef)) {
			return false
		}
	}
	return true
}

// metaEnv implements compile.Env for meta-rule test evaluation.
type metaEnv struct {
	tuple []*match.Instantiation
}

func (m metaEnv) Ref(compile.VarRef) wm.Value { panic("core: meta test has no object context") }
func (m metaEnv) Local(int) wm.Value          { panic("core: meta test has no object context") }
func (m metaEnv) MetaVal(pat int, ref compile.VarRef) wm.Value {
	return m.tuple[pat].Binding(ref)
}
func (m metaEnv) MetaTag(pat int) int64       { return m.tuple[pat].Tag() }
func (m metaEnv) MetaRuleName(pat int) string { return m.tuple[pat].Rule.Name }
func (m metaEnv) MetaPrecedes(pat, pat2 int) bool {
	return m.tuple[pat].Compare(m.tuple[pat2]) < 0
}
