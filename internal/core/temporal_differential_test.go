package core_test

// Differential coverage for the temporal subsystem: a streamed workload
// with TTL expiry and window aggregates must produce bit-identical
// firing sequences and final working memory across the full
// {RETE, TREAT} × {index on, off} × {bytecode, interp} grid. Expiry is
// an engine-driven retract, so a matcher that mishandles removals (or an
// eval backend that mis-scores a window test) would diverge here.

import (
	"sort"
	"testing"

	"parulel/internal/compile"
	"parulel/internal/core"
	"parulel/internal/match"
	"parulel/internal/temporal"
	"parulel/internal/wm"
	"parulel/internal/workload"
)

// runTemporalOutcome streams eight frames of the fraud workload into an
// engine under one grid configuration — insert, tick, run to quiescence
// per frame, plus a per-fact TTL override on every fifth transaction —
// then drains the stream with six empty ticks so everything expirable
// expires.
func runTemporalOutcome(t *testing.T, prog *compile.Program, f match.Factory, mode compile.EvalMode) (outcome, int, int64) {
	t.Helper()
	tr := &firingTracer{}
	e := core.New(prog, core.Options{Workers: 2, MaxCycles: 1 << 20, Matcher: f, EvalMode: mode, Tracer: tr})
	m := temporal.New(prog, e)

	var out outcome
	expired := 0
	step := func(facts []map[string]wm.Value, frame int) {
		for i, fields := range facts {
			w, err := e.Insert("txn", fields)
			if err != nil {
				t.Fatal(err)
			}
			if i%5 == 0 {
				m.SetTTL(w, 2) // override: hot-path facts die faster
			}
		}
		res := m.Tick()
		expired += res.Expired
		r, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		out.cycles += r.Cycles
		out.firings += r.Firings
		out.redactions += r.Redactions
		out.conflicts += r.WriteConflicts
		_ = frame
	}
	for frame := 0; frame < 8; frame++ {
		step(workload.FraudTxns(frame, 24, 6, 1), frame)
	}
	for i := 0; i < 6; i++ {
		step(nil, -1)
	}

	snap := e.Memory().Snapshot()
	out.wm = make([]string, len(snap))
	for i, w := range snap {
		out.wm[i] = w.String()
	}
	sort.Strings(out.wm)
	out.firing = tr.firing
	return out, expired, m.Now()
}

// TestTemporalDifferentialGrid sweeps the streamed fraud workload across
// all eight matcher/index/eval configurations: identical firing
// sequences, final working memory, expiry counts and clock values.
func TestTemporalDifferentialGrid(t *testing.T) {
	prog, err := compile.CompileSource(workload.FraudStreamProgram)
	if err != nil {
		t.Fatal(err)
	}
	base, baseExpired, baseNow := runTemporalOutcome(t, prog, matcherConfigs[0].factory, matcherConfigs[0].eval)
	if baseExpired == 0 {
		t.Fatal("no facts expired; the temporal dimension of this test is vacuous")
	}
	if len(base.wm) == 0 || base.firings == 0 {
		t.Fatal("empty baseline run; test is vacuous")
	}
	for _, cfg := range matcherConfigs[1:] {
		got, gotExpired, gotNow := runTemporalOutcome(t, prog, cfg.factory, cfg.eval)
		if gotExpired != baseExpired {
			t.Fatalf("%s: expired %d facts, want %d", cfg.name, gotExpired, baseExpired)
		}
		if gotNow != baseNow {
			t.Fatalf("%s: clock at %d, want %d", cfg.name, gotNow, baseNow)
		}
		diffOutcomes(t, cfg.name, base, got)
	}
}
