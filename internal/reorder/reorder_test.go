package reorder

import (
	"sort"
	"strings"
	"testing"

	"parulel/internal/compile"
	"parulel/internal/core"
	"parulel/internal/lang"
	"parulel/internal/match"
	"parulel/internal/match/rete"
	"parulel/internal/programs"
	"parulel/internal/wm"
	"parulel/internal/workload"
)

func parseOK(t *testing.T, src string) *lang.Program {
	t.Helper()
	p, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

const badlyOrdered = `
(literalize item   g v)
(literalize anchor id g h)
(rule cross
  (item ^g <x>)
  (item ^g <y>)
  (anchor ^id 7 ^g <x> ^h <y>)
  (test (<> <x> <y>))
-->
  (make item ^g 0))
`

func TestReorderMovesConstrainedElementFirst(t *testing.T) {
	ast := parseOK(t, badlyOrdered)
	re := Program(ast)
	r := re.Rules[0]
	if r.LHS[0].Pattern == nil || r.LHS[0].Pattern.Type != "anchor" {
		t.Fatalf("anchor should come first, got %s", Describe(r))
	}
	// The reordered program must still compile.
	if _, err := compile.Compile(re); err != nil {
		t.Fatalf("reordered program does not compile: %v\n%s", err, lang.Print(re))
	}
	// Original AST untouched.
	if ast.Rules[0].LHS[0].Pattern.Type != "item" {
		t.Error("original rule mutated")
	}
}

func TestReorderIdentityWhenAlreadyOptimal(t *testing.T) {
	ast := parseOK(t, `
(literalize a x y)
(rule r (a ^x 1 ^y <v>) (a ^x <v>) --> (halt))
`)
	if got := Rule(ast.Rules[0]); got != ast.Rules[0] {
		t.Error("already-optimal rule should be returned unchanged")
	}
}

// conflictSetSignature canonicalizes a conflict set so reordered and
// original rules compare equal: per instantiation, the rule name plus the
// SORTED WME time tags (vector order changes under reordering).
func conflictSetSignature(ins []*match.Instantiation) []string {
	out := make([]string, 0, len(ins))
	for _, in := range ins {
		tags := make([]int, len(in.WMEs))
		for i, w := range in.WMEs {
			tags[i] = int(w.Time)
		}
		sort.Ints(tags)
		sig := in.Rule.Name
		for _, tg := range tags {
			sig += ":" + string(rune('0'+tg%10)) // cheap but collision-prone; use full int
		}
		out = append(out, sigOf(in))
	}
	sort.Strings(out)
	return out
}

func sigOf(in *match.Instantiation) string {
	tags := make([]int, len(in.WMEs))
	for i, w := range in.WMEs {
		tags[i] = int(w.Time)
	}
	sort.Ints(tags)
	var b strings.Builder
	b.WriteString(in.Rule.Name)
	for _, tg := range tags {
		b.WriteString(":")
		b.WriteString(intToString(tg))
	}
	return b.String()
}

func intToString(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

func TestReorderPreservesMatches(t *testing.T) {
	ast := parseOK(t, badlyOrdered)
	orig, err := compile.Compile(parseOK(t, badlyOrdered))
	if err != nil {
		t.Fatal(err)
	}
	re, err := compile.Compile(Program(ast))
	if err != nil {
		t.Fatal(err)
	}
	m1, m2 := rete.New(orig.Rules), rete.New(re.Rules)
	mem1, mem2 := wm.NewMemory(orig.Schema), wm.NewMemory(re.Schema)
	add := func(tmpl string, fields map[string]wm.Value) {
		w1, err := mem1.Insert(tmpl, fields)
		if err != nil {
			t.Fatal(err)
		}
		w2, err := mem2.Insert(tmpl, fields)
		if err != nil {
			t.Fatal(err)
		}
		m1.Apply(wm.Delta{Added: []*wm.WME{w1}})
		m2.Apply(wm.Delta{Added: []*wm.WME{w2}})
	}
	for g := int64(0); g < 6; g++ {
		add("item", map[string]wm.Value{"g": wm.Int(g % 3), "v": wm.Int(g)})
	}
	add("anchor", map[string]wm.Value{"id": wm.Int(7), "g": wm.Int(1), "h": wm.Int(2)})
	add("anchor", map[string]wm.Value{"id": wm.Int(9), "g": wm.Int(1), "h": wm.Int(2)}) // wrong id: no match

	s1 := conflictSetSignature(m1.ConflictSet())
	s2 := conflictSetSignature(m2.ConflictSet())
	if len(s1) == 0 {
		t.Fatal("test workload produced no matches")
	}
	if len(s1) != len(s2) {
		t.Fatalf("match counts differ: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Errorf("match %d differs: %s vs %s", i, s1[i], s2[i])
		}
	}
}

func TestReorderRemapsDesignators(t *testing.T) {
	ast := parseOK(t, `
(literalize item   g)
(literalize anchor id g)
(rule r
  (item ^g <x>)
  (anchor ^id 7 ^g <x>)
-->
  (remove 1)
  (modify 2 ^id 8))
`)
	re := Program(ast)
	r := re.Rules[0]
	if r.LHS[0].Pattern.Type != "anchor" {
		t.Fatalf("expected anchor first: %s", Describe(r))
	}
	rm := r.RHS[0].(*lang.RemoveAction)
	if rm.Targets[0].Index != 2 { // item moved to position 2
		t.Errorf("remove designator = %d, want 2", rm.Targets[0].Index)
	}
	mod := r.RHS[1].(*lang.ModifyAction)
	if mod.Target.Index != 1 { // anchor moved to position 1
		t.Errorf("modify designator = %d, want 1", mod.Target.Index)
	}
	if _, err := compile.Compile(re); err != nil {
		t.Fatalf("remapped program does not compile: %v", err)
	}
	// End-to-end behaviour identical.
	run := func(p *lang.Program) string {
		cp, err := compile.Compile(p)
		if err != nil {
			t.Fatal(err)
		}
		e := core.New(cp, core.Options{MaxCycles: 10})
		for _, f := range []map[string]wm.Value{
			{"g": wm.Int(1)},
		} {
			if _, err := e.Insert("item", f); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := e.Insert("anchor", map[string]wm.Value{"id": wm.Int(7), "g": wm.Int(1)}); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		out := ""
		for _, w := range e.Memory().Snapshot() {
			s := w.String()
			out += s[strings.Index(s, "("):] + "\n"
		}
		return out
	}
	if a, b := run(parseOK(t, `
(literalize item   g)
(literalize anchor id g)
(rule r
  (item ^g <x>)
  (anchor ^id 7 ^g <x>)
-->
  (remove 1)
  (modify 2 ^id 8))
`)), run(re); a != b {
		t.Errorf("behaviour changed:\noriginal:\n%s\nreordered:\n%s", a, b)
	}
}

func TestReorderGuardsStayAfterBinders(t *testing.T) {
	ast := parseOK(t, `
(literalize a x)
(literalize b x)
(rule r
  (a ^x <v>)
  - (b ^x <v>)
  (test (> <v> 0))
  (b ^x (<> <v>))
-->
  (halt))
`)
	re := Program(ast)
	if _, err := compile.Compile(re); err != nil {
		t.Fatalf("reordered guard program does not compile: %v\n%s", err, lang.Print(re))
	}
}

func TestReorderBuiltinProgramsStillWork(t *testing.T) {
	// Reorder waltz and closure and verify the domain outcomes survive.
	for _, name := range []string{programs.Waltz, programs.Closure} {
		ast, err := programs.AST(name)
		if err != nil {
			t.Fatal(err)
		}
		cp, err := compile.Compile(Program(ast))
		if err != nil {
			t.Fatalf("%s reordered does not compile: %v", name, err)
		}
		e := core.New(cp, core.Options{Workers: 2, MaxCycles: 1000})
		switch name {
		case programs.Waltz:
			if err := workload.WaltzScene(e, 3); err != nil {
				t.Fatal(err)
			}
			if _, err := e.Run(); err != nil {
				t.Fatal(err)
			}
			if n := e.Memory().CountOf("label"); n != 27 {
				t.Errorf("waltz reordered: labels = %d, want 27", n)
			}
			if n := e.Memory().CountOf("jdone"); n != 21 {
				t.Errorf("waltz reordered: jdone = %d, want 21", n)
			}
		case programs.Closure:
			if err := workload.Chain(e, 8); err != nil {
				t.Fatal(err)
			}
			if _, err := e.Run(); err != nil {
				t.Fatal(err)
			}
			if n := e.Memory().CountOf("path"); n != 28 { // 8-chain: 7+6+…+1
				t.Errorf("closure reordered: paths = %d, want 28", n)
			}
		}
	}
}
