// Package reorder implements the classic production-system join-ordering
// optimization: condition elements of a rule are rearranged
// most-constrained-first so that beta-level joins see small intermediate
// results. OPS5 programmers did this by hand; PARULEL-era compilers did
// it statically, which is what this pass reproduces (experiment E10
// measures the effect on a deliberately badly ordered program).
//
// The pass is source-to-source (like copycon): it permutes a rule's LHS
// and remaps numeric designators in the RHS, then the ordinary compiler
// re-derives binding sites and join tests for the new order.
//
// Constraints preserved:
//   - negated elements and (test …) filters are placed only after every
//     variable they reference is bound by an earlier positive element;
//   - relative order of (test …) filters and negated elements among
//     themselves is kept stable;
//   - element variables keep working unchanged; numeric (modify 2 …) /
//     (remove 1 …) designators are rewritten to the new positions.
//
// Note on semantics: reordering changes each instantiation's WME vector
// order, which `(tag …)`-free programs never observe, but programs whose
// meta-rules break ties with `(precedes <i> <j>)` may prefer different
// (equally conflict-free) winners, and OPS5-MEA's first-element recency
// refers to the new first element. The optimization is therefore opt-in.
package reorder

import (
	"fmt"

	"parulel/internal/lang"
)

// Program returns a copy of the program with every rule's LHS reordered
// most-constrained-first. Rules that cannot be safely reordered are left
// unchanged.
func Program(prog *lang.Program) *lang.Program {
	out := &lang.Program{
		Templates: prog.Templates,
		MetaRules: prog.MetaRules,
		Facts:     prog.Facts,
	}
	for _, r := range prog.Rules {
		out.Rules = append(out.Rules, Rule(r))
	}
	return out
}

// Rule returns the rule with its LHS reordered, or the original rule if
// reordering is impossible (it never is for compile-valid rules) or a
// no-op.
func Rule(r *lang.Rule) *lang.Rule {
	order := planOrder(r.LHS)
	if order == nil {
		return r
	}
	identity := true
	for i, j := range order {
		if i != j {
			identity = false
			break
		}
	}
	if identity {
		return r
	}
	lhs := make([]*lang.CondElem, len(order))
	// oldToNew maps original 1-based positions to new 1-based positions.
	oldToNew := make(map[int]int, len(order))
	for newIdx, oldIdx := range order {
		lhs[newIdx] = r.LHS[oldIdx]
		oldToNew[oldIdx+1] = newIdx + 1
	}
	rhs := make([]lang.Action, len(r.RHS))
	for i, a := range r.RHS {
		rhs[i] = remapAction(a, oldToNew)
	}
	return &lang.Rule{Pos: r.Pos, Name: r.Name, LHS: lhs, RHS: rhs}
}

// score rates how constraining a positive pattern is when placed next:
// higher is better. Constant-ish tests narrow the candidate set; variables
// already bound become joins (also narrowing); free variables widen.
func score(ce *lang.CondElem, bound map[string]bool) int {
	s := 0
	for _, slot := range ce.Pattern.Slots {
		switch t := slot.Term.(type) {
		case lang.ConstTerm:
			s += 3
		case lang.DisjTerm:
			s += 2
		case lang.VarTerm:
			if bound[t.Name] {
				s += 2
			} else {
				s--
			}
		case lang.PredTerm:
			if v, ok := t.Arg.(lang.VarTerm); ok {
				if bound[v.Name] {
					s += 1
				}
			} else {
				s += 2
			}
		}
	}
	return s
}

// vars collects the variables a condition element references.
func vars(ce *lang.CondElem) map[string]bool {
	out := make(map[string]bool)
	if ce.Test != nil {
		exprVars(ce.Test, out)
		return out
	}
	for _, slot := range ce.Pattern.Slots {
		switch t := slot.Term.(type) {
		case lang.VarTerm:
			out[t.Name] = true
		case lang.PredTerm:
			if v, ok := t.Arg.(lang.VarTerm); ok {
				out[v.Name] = true
			}
		}
	}
	return out
}

func exprVars(e lang.Expr, out map[string]bool) {
	switch e := e.(type) {
	case *lang.VarExpr:
		out[e.Name] = true
	case *lang.CallExpr:
		for _, a := range e.Args {
			exprVars(a, out)
		}
	}
}

// binds collects the variables a positive element can bind (bare
// occurrences).
func binds(ce *lang.CondElem) map[string]bool {
	out := make(map[string]bool)
	for _, slot := range ce.Pattern.Slots {
		if v, ok := slot.Term.(lang.VarTerm); ok {
			out[v.Name] = true
		}
	}
	return out
}

// planOrder computes the new order as indexes into the original LHS, or
// nil when no valid order exists.
func planOrder(lhs []*lang.CondElem) []int {
	placed := make([]bool, len(lhs))
	bound := make(map[string]bool)
	var order []int
	for len(order) < len(lhs) {
		best := -1
		bestScore := 0
		for i, ce := range lhs {
			if placed[i] {
				continue
			}
			if ce.Test != nil || ce.Negated {
				// Guards become placeable once their variables are bound;
				// place them eagerly (they only narrow). Variables local
				// to a negated element (bound nowhere else) are allowed.
				ok := true
				for v := range vars(ce) {
					if bound[v] {
						continue
					}
					if ce.Negated && !boundAnywhereOutside(lhs, i, v) {
						continue // local to the negation
					}
					ok = false
					break
				}
				if ok {
					best = i
					break
				}
				continue
			}
			if !predDepsSatisfied(ce, bound) {
				continue // e.g. (b ^x (<> <v>)) before <v> is bound
			}
			if s := score(ce, bound); best == -1 || s > bestScore {
				best = i
				bestScore = s
			}
		}
		if best == -1 {
			return nil // should not happen for compile-valid rules
		}
		placed[best] = true
		order = append(order, best)
		if ce := lhs[best]; ce.Pattern != nil && !ce.Negated {
			for v := range binds(ce) {
				bound[v] = true
			}
		}
	}
	return order
}

// predDepsSatisfied reports whether a positive element's predicate
// variable arguments are bound, either by earlier elements or by earlier
// slots of the same element (the compiler's boundness rule).
func predDepsSatisfied(ce *lang.CondElem, bound map[string]bool) bool {
	local := make(map[string]bool)
	for _, slot := range ce.Pattern.Slots {
		switch t := slot.Term.(type) {
		case lang.VarTerm:
			local[t.Name] = true
		case lang.PredTerm:
			if v, ok := t.Arg.(lang.VarTerm); ok && !bound[v.Name] && !local[v.Name] {
				return false
			}
		}
	}
	return true
}

// boundAnywhereOutside reports whether variable v occurs as a bare
// (bindable) occurrence in any positive element other than index self.
func boundAnywhereOutside(lhs []*lang.CondElem, self int, v string) bool {
	for i, ce := range lhs {
		if i == self || ce.Pattern == nil || ce.Negated {
			continue
		}
		if binds(ce)[v] {
			return true
		}
	}
	return false
}

func remapAction(a lang.Action, oldToNew map[int]int) lang.Action {
	remap := func(d lang.Designator) lang.Designator {
		if d.Var != "" || d.Index == 0 {
			return d
		}
		n, ok := oldToNew[d.Index]
		if !ok {
			// Compile-invalid designator; leave it for the compiler to
			// reject with its usual message.
			return d
		}
		return lang.Designator{Pos: d.Pos, Index: n}
	}
	switch a := a.(type) {
	case *lang.ModifyAction:
		return &lang.ModifyAction{Pos: a.Pos, Target: remap(a.Target), Slots: a.Slots}
	case *lang.RemoveAction:
		targets := make([]lang.Designator, len(a.Targets))
		for i, d := range a.Targets {
			targets[i] = remap(d)
		}
		return &lang.RemoveAction{Pos: a.Pos, Targets: targets}
	default:
		return a
	}
}

// Describe renders the new LHS order of a rule for tooling output.
func Describe(r *lang.Rule) string {
	s := ""
	for i, ce := range r.LHS {
		if i > 0 {
			s += " "
		}
		switch {
		case ce.Test != nil:
			s += "(test)"
		case ce.Negated:
			s += fmt.Sprintf("-(%s)", ce.Pattern.Type)
		default:
			s += fmt.Sprintf("(%s)", ce.Pattern.Type)
		}
	}
	return s
}
