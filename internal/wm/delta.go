package wm

// Delta is an immutable batch of working-memory changes, produced by one
// engine cycle and consumed by every matcher partition. Removals are listed
// before additions because `modify` is remove+make and matchers must see
// the removal of the old element before the addition of its replacement.
type Delta struct {
	Removed []*WME
	Added   []*WME
}

// Empty reports whether the delta carries no changes.
func (d Delta) Empty() bool { return len(d.Removed) == 0 && len(d.Added) == 0 }

// Size returns the total number of changes.
func (d Delta) Size() int { return len(d.Removed) + len(d.Added) }
