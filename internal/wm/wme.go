package wm

import (
	"fmt"
	"strings"
)

// WME is a working-memory element: an immutable instance of a template with
// one value per attribute and a recency time tag. WMEs are identified by
// their time tag (as in OPS5, where the time tag doubles as the identifier);
// a `modify` is remove + make and therefore produces a *new* WME with a
// fresh tag.
//
// WMEs are never mutated after insertion, so they may be shared freely
// across matcher partitions running on different goroutines.
type WME struct {
	// Time is the recency time tag, unique per WME and monotonically
	// increasing across the life of a Memory.
	Time int64
	// Tmpl is the template this element instantiates.
	Tmpl *Template
	// Fields holds one value per template attribute.
	Fields []Value
}

// Field returns the value at attribute position i.
func (w *WME) Field(i int) Value { return w.Fields[i] }

// FieldByName returns the value of the named attribute.
func (w *WME) FieldByName(attr string) (Value, bool) {
	i, ok := w.Tmpl.AttrIndex(attr)
	if !ok {
		return Value{}, false
	}
	return w.Fields[i], true
}

// String renders the WME in make-form with its time tag, e.g.
// `12: (pool ^id 3 ^amount 250)`. Nil-valued attributes are elided.
func (w *WME) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d: (%s", w.Time, w.Tmpl.Name)
	for i, a := range w.Tmpl.Attrs {
		if w.Fields[i].IsNil() {
			continue
		}
		fmt.Fprintf(&b, " ^%s %s", a, w.Fields[i])
	}
	b.WriteString(")")
	return b.String()
}
