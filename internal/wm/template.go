package wm

import (
	"fmt"
	"sort"
)

// Template is a declared WME class (OPS5 `literalize`): a name plus an
// ordered list of attribute names. Attribute positions are fixed at
// declaration time; patterns and actions address fields by attribute name,
// which the compiler resolves to positions.
type Template struct {
	Name  string
	Attrs []string
	index map[string]int
}

// AttrIndex returns the field position of the named attribute.
func (t *Template) AttrIndex(attr string) (int, bool) {
	i, ok := t.index[attr]
	return i, ok
}

// Arity returns the number of attributes.
func (t *Template) Arity() int { return len(t.Attrs) }

// Schema is the set of templates declared by a program. It is immutable
// after program compilation, so it is safe for concurrent readers.
type Schema struct {
	templates map[string]*Template
}

// NewSchema returns an empty schema.
func NewSchema() *Schema {
	return &Schema{templates: make(map[string]*Template)}
}

// Declare adds a template. It is an error to redeclare a template name or
// to repeat an attribute within one template.
func (s *Schema) Declare(name string, attrs ...string) (*Template, error) {
	if name == "" {
		return nil, fmt.Errorf("wm: template name must not be empty")
	}
	if _, dup := s.templates[name]; dup {
		return nil, fmt.Errorf("wm: template %q redeclared", name)
	}
	t := &Template{
		Name:  name,
		Attrs: append([]string(nil), attrs...),
		index: make(map[string]int, len(attrs)),
	}
	for i, a := range attrs {
		if a == "" {
			return nil, fmt.Errorf("wm: template %q: empty attribute name", name)
		}
		if _, dup := t.index[a]; dup {
			return nil, fmt.Errorf("wm: template %q: duplicate attribute %q", name, a)
		}
		t.index[a] = i
	}
	s.templates[name] = t
	return t, nil
}

// Lookup returns the named template.
func (s *Schema) Lookup(name string) (*Template, bool) {
	t, ok := s.templates[name]
	return t, ok
}

// MustLookup returns the named template and panics if it is absent. It is
// intended for generated code and tests where absence is a programming
// error.
func (s *Schema) MustLookup(name string) *Template {
	t, ok := s.templates[name]
	if !ok {
		panic(fmt.Sprintf("wm: unknown template %q", name))
	}
	return t
}

// Names returns the declared template names in sorted order.
func (s *Schema) Names() []string {
	names := make([]string, 0, len(s.templates))
	for n := range s.templates {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of declared templates.
func (s *Schema) Len() int { return len(s.templates) }
