package wm

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Nil(), KindNil},
		{Int(7), KindInt},
		{Float(2.5), KindFloat},
		{Sym("abc"), KindSym},
		{Str("abc"), KindStr},
	}
	for _, c := range cases {
		if c.v.Kind != c.kind {
			t.Errorf("value %v: kind = %v, want %v", c.v, c.v.Kind, c.kind)
		}
	}
}

func TestValueZeroIsNil(t *testing.T) {
	var v Value
	if !v.IsNil() {
		t.Fatalf("zero Value should be nil, got %v", v)
	}
	if v != Nil() {
		t.Fatalf("zero Value != Nil()")
	}
}

func TestBool(t *testing.T) {
	if Bool(true) != Sym("true") || Bool(false) != Sym("false") {
		t.Fatalf("Bool mapping wrong: %v %v", Bool(true), Bool(false))
	}
}

func TestTruthy(t *testing.T) {
	cases := []struct {
		v    Value
		want bool
	}{
		{Nil(), false},
		{Sym("false"), false},
		{Sym("true"), true},
		{Sym("x"), true},
		{Int(0), true}, // numbers are always truthy, like OPS5 predicates expect
		{Float(0), true},
		{Str(""), true},
		{Str("false"), true}, // only the *symbol* false is falsy
	}
	for _, c := range cases {
		if got := c.v.Truthy(); got != c.want {
			t.Errorf("Truthy(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestEqualIsStrictOnKind(t *testing.T) {
	if Int(3).Equal(Float(3)) {
		t.Error("Int(3) must not Equal Float(3): Equal is strict on kind")
	}
	if Sym("a").Equal(Str("a")) {
		t.Error("Sym(a) must not Equal Str(a)")
	}
	if !Int(3).Equal(Int(3)) {
		t.Error("Int(3) should Equal Int(3)")
	}
}

func TestNumEqualCrossesKinds(t *testing.T) {
	if !Int(3).NumEqual(Float(3)) {
		t.Error("NumEqual(3, 3.0) should hold")
	}
	if Int(3).NumEqual(Float(3.5)) {
		t.Error("NumEqual(3, 3.5) should not hold")
	}
	if !Sym("a").NumEqual(Sym("a")) {
		t.Error("NumEqual on equal symbols should hold")
	}
	if Sym("a").NumEqual(Str("a")) {
		t.Error("NumEqual on sym vs str should not hold")
	}
}

func TestAsFloatAsInt(t *testing.T) {
	if Int(4).AsFloat() != 4.0 {
		t.Error("Int(4).AsFloat")
	}
	if Float(4.9).AsInt() != 4 {
		t.Error("Float(4.9).AsInt should truncate to 4")
	}
	if Sym("x").AsFloat() != 0 || Str("x").AsInt() != 0 {
		t.Error("non-numeric AsFloat/AsInt should be 0")
	}
}

func TestCompareKindGroups(t *testing.T) {
	ordered := []Value{Nil(), Int(-5), Float(0.5), Int(1), Sym("a"), Sym("b"), Str("a")}
	for i := range ordered {
		for j := range ordered {
			got := ordered[i].Compare(ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v, %v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestCompareNumericTieBrokenByKind(t *testing.T) {
	if Int(3).Compare(Float(3)) != -1 {
		t.Error("Int(3) should sort before Float(3.0) for a total order")
	}
	if Float(3).Compare(Int(3)) != 1 {
		t.Error("Float(3.0) should sort after Int(3)")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Nil(), "nil"},
		{Int(-7), "-7"},
		{Float(2.5), "2.5"},
		{Sym("hello"), "hello"},
		{Str("hi there"), `"hi there"`},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

// randomValue generates an arbitrary Value for property tests.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(5) {
	case 0:
		return Nil()
	case 1:
		return Int(int64(r.Intn(21) - 10))
	case 2:
		return Float(float64(r.Intn(21)-10) / 2)
	case 3:
		return Sym(string(rune('a' + r.Intn(6))))
	default:
		return Str(string(rune('a' + r.Intn(6))))
	}
}

type valuePair struct{ A, B Value }

func (valuePair) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(valuePair{A: randomValue(r), B: randomValue(r)})
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(p valuePair) bool {
		return p.A.Compare(p.B) == -p.B.Compare(p.A)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCompareConsistentWithEqualProperty(t *testing.T) {
	f := func(p valuePair) bool {
		if p.A.Compare(p.B) == 0 {
			return p.A.Equal(p.B)
		}
		return !p.A.Equal(p.B)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

type valueTriple struct{ A, B, C Value }

func (valueTriple) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(valueTriple{randomValue(r), randomValue(r), randomValue(r)})
}

func TestCompareTransitivityProperty(t *testing.T) {
	f := func(tr valueTriple) bool {
		// Sort the triple by Compare and verify pairwise consistency.
		a, b, c := tr.A, tr.B, tr.C
		if a.Compare(b) <= 0 && b.Compare(c) <= 0 {
			return a.Compare(c) <= 0
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}
