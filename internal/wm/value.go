// Package wm implements the working-memory substrate of the PARULEL
// reproduction: the dynamically typed value model, template (literalize)
// declarations, working-memory elements (WMEs) with recency time tags, and
// the working memory itself with its delta representation.
//
// The design follows OPS5, which PARULEL inherits its data model from: a WME
// is a flat record of a declared template ("class"), every field holds a
// scalar value, and each WME carries a monotonically increasing time tag
// used for recency-based conflict resolution (OPS5 LEX/MEA) and for
// instantiation tags in PARULEL meta-rules.
package wm

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind discriminates the scalar value types of the rule language.
type Kind uint8

// The value kinds. KindNil is the zero value, so a zero Value is nil.
const (
	KindNil Kind = iota
	KindInt
	KindFloat
	KindSym
	KindStr
)

func (k Kind) String() string {
	switch k {
	case KindNil:
		return "nil"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindSym:
		return "symbol"
	case KindStr:
		return "string"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a scalar rule-language value. Values are small, immutable and
// comparable with ==, which makes them directly usable as map keys in alpha
// memories and join indexes.
//
// Equality via Equal is strict on Kind (an int 3 is not Equal to a float
// 3.0); numeric *comparison* operators in the expression language compare
// numerically across int and float. This keeps hash-index equality and
// pattern-constant equality identical, which the match networks rely on.
type Value struct {
	Kind Kind
	I    int64   // KindInt
	F    float64 // KindFloat
	S    string  // KindSym and KindStr
}

// Nil returns the nil value.
func Nil() Value { return Value{} }

// Int returns an integer value.
func Int(i int64) Value { return Value{Kind: KindInt, I: i} }

// Float returns a floating-point value.
func Float(f float64) Value { return Value{Kind: KindFloat, F: f} }

// Sym returns a symbol value.
func Sym(s string) Value { return Value{Kind: KindSym, S: s} }

// Str returns a string value.
func Str(s string) Value { return Value{Kind: KindStr, S: s} }

// Bool maps a Go bool onto the rule-language convention: the symbols
// `true` and `false`.
func Bool(b bool) Value {
	if b {
		return Sym("true")
	}
	return Sym("false")
}

// IsNil reports whether v is the nil value.
func (v Value) IsNil() bool { return v.Kind == KindNil }

// IsNumeric reports whether v is an int or float.
func (v Value) IsNumeric() bool { return v.Kind == KindInt || v.Kind == KindFloat }

// AsFloat returns the numeric value of v as a float64. It returns 0 for
// non-numeric values; callers must check IsNumeric when that matters.
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case KindInt:
		return float64(v.I)
	case KindFloat:
		return v.F
	default:
		return 0
	}
}

// AsInt returns the numeric value of v truncated to an int64.
func (v Value) AsInt() int64 {
	switch v.Kind {
	case KindInt:
		return v.I
	case KindFloat:
		return int64(v.F)
	default:
		return 0
	}
}

// Truthy reports the boolean interpretation of v: nil and the symbol
// `false` are false; everything else is true.
func (v Value) Truthy() bool {
	if v.Kind == KindNil {
		return false
	}
	if v.Kind == KindSym && v.S == "false" {
		return false
	}
	return true
}

// Equal reports strict equality: same kind and same payload.
func (v Value) Equal(o Value) bool { return v == o }

// NumEqual reports numeric equality across int and float kinds; for
// non-numeric values it falls back to strict equality.
func (v Value) NumEqual(o Value) bool {
	if v.IsNumeric() && o.IsNumeric() {
		return v.AsFloat() == o.AsFloat()
	}
	return v == o
}

// Compare imposes a deterministic total order over values, used by the
// OPS5 baseline's conflict-resolution tie-breaking and by tests. Kinds are
// ordered nil < numeric < symbol < string; numerics compare numerically,
// symbols and strings lexically. It returns -1, 0 or +1.
func (v Value) Compare(o Value) int {
	gv, go_ := v.kindGroup(), o.kindGroup()
	if gv != go_ {
		if gv < go_ {
			return -1
		}
		return 1
	}
	switch gv {
	case 0: // both nil
		return 0
	case 1: // numeric
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		// Equal numerically: break ties by kind so the order is total
		// and consistent with strict equality.
		if v.Kind != o.Kind {
			if v.Kind == KindInt {
				return -1
			}
			return 1
		}
		return 0
	default: // symbol or string
		switch {
		case v.S < o.S:
			return -1
		case v.S > o.S:
			return 1
		}
		return 0
	}
}

func (v Value) kindGroup() int {
	switch v.Kind {
	case KindNil:
		return 0
	case KindInt, KindFloat:
		return 1
	case KindSym:
		return 2
	default:
		return 3
	}
}

// String renders v in the rule-language's literal syntax.
func (v Value) String() string {
	switch v.Kind {
	case KindNil:
		return "nil"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		s := strconv.FormatFloat(v.F, 'g', -1, 64)
		// Keep the literal recognizably a float: integral values would
		// otherwise print as "42" and re-parse as an int, changing the
		// value's kind (Equal is strict on kind). The letter check skips
		// Inf/NaN and exponent forms.
		if !strings.ContainsAny(s, ".eEnN") {
			s += ".0"
		}
		return s
	case KindSym:
		return v.S
	case KindStr:
		return strconv.Quote(v.S)
	default:
		return fmt.Sprintf("?%d?", uint8(v.Kind))
	}
}
