package wm

import (
	"strings"
	"testing"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s := NewSchema()
	if _, err := s.Declare("pool", "id", "amount", "status"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Declare("order", "id", "lo", "hi"); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaDeclareAndLookup(t *testing.T) {
	s := testSchema(t)
	p, ok := s.Lookup("pool")
	if !ok {
		t.Fatal("pool not found")
	}
	if p.Name != "pool" || p.Arity() != 3 {
		t.Fatalf("bad template: %+v", p)
	}
	if i, ok := p.AttrIndex("amount"); !ok || i != 1 {
		t.Fatalf("AttrIndex(amount) = %d,%v", i, ok)
	}
	if _, ok := p.AttrIndex("missing"); ok {
		t.Fatal("AttrIndex(missing) should fail")
	}
	if _, ok := s.Lookup("nope"); ok {
		t.Fatal("Lookup(nope) should fail")
	}
	if got := s.Names(); len(got) != 2 || got[0] != "order" || got[1] != "pool" {
		t.Fatalf("Names() = %v", got)
	}
}

func TestSchemaDeclareErrors(t *testing.T) {
	s := testSchema(t)
	if _, err := s.Declare("pool", "x"); err == nil {
		t.Error("redeclaration should fail")
	}
	if _, err := s.Declare("t2", "a", "a"); err == nil {
		t.Error("duplicate attribute should fail")
	}
	if _, err := s.Declare("", "a"); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := s.Declare("t3", ""); err == nil {
		t.Error("empty attribute should fail")
	}
}

func TestMustLookupPanics(t *testing.T) {
	s := testSchema(t)
	defer func() {
		if recover() == nil {
			t.Error("MustLookup should panic on unknown template")
		}
	}()
	s.MustLookup("nope")
}

func TestMemoryInsertRemove(t *testing.T) {
	m := NewMemory(testSchema(t))
	w1, err := m.Insert("pool", map[string]Value{"id": Int(1), "amount": Int(100), "status": Sym("free")})
	if err != nil {
		t.Fatal(err)
	}
	w2, err := m.Insert("pool", map[string]Value{"id": Int(2)})
	if err != nil {
		t.Fatal(err)
	}
	if w1.Time >= w2.Time {
		t.Fatalf("time tags must increase: %d then %d", w1.Time, w2.Time)
	}
	if m.Len() != 2 || m.CountOf("pool") != 2 || m.CountOf("order") != 0 {
		t.Fatalf("counts wrong: len=%d pool=%d order=%d", m.Len(), m.CountOf("pool"), m.CountOf("order"))
	}
	// Unmentioned attributes default to nil.
	if v, _ := w2.FieldByName("status"); !v.IsNil() {
		t.Fatalf("unset attribute should be nil, got %v", v)
	}
	got, ok := m.Remove(w1.Time)
	if !ok || got != w1 {
		t.Fatalf("Remove returned %v,%v", got, ok)
	}
	if _, ok := m.Remove(w1.Time); ok {
		t.Fatal("double remove should report absent")
	}
	if m.Len() != 1 {
		t.Fatalf("Len after remove = %d", m.Len())
	}
	if _, ok := m.Get(w1.Time); ok {
		t.Fatal("removed WME still visible via Get")
	}
}

func TestMemoryInsertErrors(t *testing.T) {
	m := NewMemory(testSchema(t))
	if _, err := m.Insert("ghost", nil); err == nil {
		t.Error("insert of undeclared template should fail")
	}
	if _, err := m.Insert("pool", map[string]Value{"nope": Int(1)}); err == nil {
		t.Error("insert with unknown attribute should fail")
	}
}

func TestInsertFieldsArityPanic(t *testing.T) {
	m := NewMemory(testSchema(t))
	tmpl := m.Schema().MustLookup("pool")
	defer func() {
		if recover() == nil {
			t.Error("InsertFields with wrong arity should panic")
		}
	}()
	m.InsertFields(tmpl, []Value{Int(1)})
}

func TestSnapshotOrdering(t *testing.T) {
	m := NewMemory(testSchema(t))
	for i := 0; i < 10; i++ {
		if _, err := m.Insert("pool", map[string]Value{"id": Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	snap := m.Snapshot()
	if len(snap) != 10 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Time >= snap[i].Time {
			t.Fatal("snapshot not ordered by time tag")
		}
	}
	pools := m.OfTemplate("pool")
	if len(pools) != 10 {
		t.Fatalf("OfTemplate len = %d", len(pools))
	}
	if m.OfTemplate("ghost") != nil {
		t.Fatal("OfTemplate of unknown template should be nil")
	}
}

func TestWMEString(t *testing.T) {
	m := NewMemory(testSchema(t))
	w, err := m.Insert("pool", map[string]Value{"id": Int(3), "status": Sym("free")})
	if err != nil {
		t.Fatal(err)
	}
	s := w.String()
	if !strings.Contains(s, "(pool") || !strings.Contains(s, "^id 3") || !strings.Contains(s, "^status free") {
		t.Errorf("WME string missing parts: %q", s)
	}
	if strings.Contains(s, "^amount") {
		t.Errorf("nil attribute should be elided: %q", s)
	}
}

func TestDelta(t *testing.T) {
	var d Delta
	if !d.Empty() || d.Size() != 0 {
		t.Fatal("zero delta should be empty")
	}
	m := NewMemory(testSchema(t))
	w, _ := m.Insert("pool", map[string]Value{"id": Int(1)})
	d = Delta{Added: []*WME{w}}
	if d.Empty() || d.Size() != 1 {
		t.Fatal("delta with one addition")
	}
}
