package wm

import (
	"fmt"
	"sort"
)

// Memory is the working memory: the authoritative set of live WMEs. The
// engines mutate it only between match phases (at the cycle barrier), so it
// needs no internal locking; matcher partitions receive immutable Delta
// values instead of touching Memory concurrently.
type Memory struct {
	schema   *Schema
	nextTime int64
	byTime   map[int64]*WME
	byTmpl   map[*Template]map[int64]*WME
}

// NewMemory returns an empty working memory over the given schema.
func NewMemory(schema *Schema) *Memory {
	return &Memory{
		schema: schema,
		byTime: make(map[int64]*WME),
		byTmpl: make(map[*Template]map[int64]*WME),
	}
}

// Schema returns the schema this memory was created with.
func (m *Memory) Schema() *Schema { return m.schema }

// Insert creates a WME of the named template and adds it to the memory.
// fields maps attribute names to values; unmentioned attributes are nil.
func (m *Memory) Insert(template string, fields map[string]Value) (*WME, error) {
	t, ok := m.schema.Lookup(template)
	if !ok {
		return nil, fmt.Errorf("wm: make of undeclared template %q", template)
	}
	vals := make([]Value, t.Arity())
	for attr, v := range fields {
		i, ok := t.AttrIndex(attr)
		if !ok {
			return nil, fmt.Errorf("wm: template %q has no attribute %q", template, attr)
		}
		vals[i] = v
	}
	return m.InsertFields(t, vals), nil
}

// InsertFields adds a WME with a pre-built positional field vector. The
// vector is owned by the memory after the call. It panics if the vector
// length does not match the template arity; that is a compiler bug, not a
// user error.
func (m *Memory) InsertFields(t *Template, fields []Value) *WME {
	if len(fields) != t.Arity() {
		panic(fmt.Sprintf("wm: template %q arity %d, got %d fields", t.Name, t.Arity(), len(fields)))
	}
	m.nextTime++
	w := &WME{Time: m.nextTime, Tmpl: t, Fields: fields}
	m.byTime[w.Time] = w
	class := m.byTmpl[t]
	if class == nil {
		class = make(map[int64]*WME)
		m.byTmpl[t] = class
	}
	class[w.Time] = w
	return w
}

// Remove deletes the WME with the given time tag and returns it. Removing
// an absent tag returns (nil, false); parallel firing makes double-removes
// legitimate (two instantiations may remove the same element), so this is
// not an error.
func (m *Memory) Remove(time int64) (*WME, bool) {
	w, ok := m.byTime[time]
	if !ok {
		return nil, false
	}
	delete(m.byTime, time)
	delete(m.byTmpl[w.Tmpl], time)
	return w, true
}

// Get returns the live WME with the given time tag.
func (m *Memory) Get(time int64) (*WME, bool) {
	w, ok := m.byTime[time]
	return w, ok
}

// Len returns the number of live WMEs.
func (m *Memory) Len() int { return len(m.byTime) }

// CountOf returns the number of live WMEs of the named template.
func (m *Memory) CountOf(template string) int {
	t, ok := m.schema.Lookup(template)
	if !ok {
		return 0
	}
	return len(m.byTmpl[t])
}

// Snapshot returns all live WMEs ordered by time tag. The slice is fresh;
// the WMEs are shared (immutable).
func (m *Memory) Snapshot() []*WME {
	out := make([]*WME, 0, len(m.byTime))
	for _, w := range m.byTime {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}

// OfTemplate returns the live WMEs of the named template ordered by time
// tag.
func (m *Memory) OfTemplate(template string) []*WME {
	t, ok := m.schema.Lookup(template)
	if !ok {
		return nil
	}
	out := make([]*WME, 0, len(m.byTmpl[t]))
	for _, w := range m.byTmpl[t] {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}

// NextTime reports the time tag the next inserted WME will receive minus
// one, i.e. the highest tag handed out so far.
func (m *Memory) NextTime() int64 { return m.nextTime }

// CheckTagInvariant verifies the time-tag monotonicity invariant: every
// live tag is positive and at or below the high water mark (the counter
// never rewound past a handed-out tag), and the per-template index
// agrees exactly with the primary index. The engines maintain this
// implicitly; rehydration and temporal expiry splice tags in and out
// explicitly, so checkpointing asserts it before trusting a snapshot.
func (m *Memory) CheckTagInvariant() error {
	count := 0
	for tag, w := range m.byTime {
		if tag <= 0 || tag > m.nextTime {
			return fmt.Errorf("wm: live tag %d outside (0, high water %d]", tag, m.nextTime)
		}
		if w.Time != tag {
			return fmt.Errorf("wm: WME indexed at %d carries tag %d", tag, w.Time)
		}
		if m.byTmpl[w.Tmpl][tag] != w {
			return fmt.Errorf("wm: tag %d missing from template index %q", tag, w.Tmpl.Name)
		}
	}
	for _, class := range m.byTmpl {
		count += len(class)
	}
	if count != len(m.byTime) {
		return fmt.Errorf("wm: template indexes hold %d WMEs, primary index %d", count, len(m.byTime))
	}
	return nil
}

// SetNextTime advances the time-tag counter so the next insertion
// receives tag n+1. It only moves forward: recovery restores the
// counter a checkpoint recorded, and rewinding would mint duplicate
// tags. Moving backward is a no-op.
func (m *Memory) SetNextTime(n int64) {
	if n > m.nextTime {
		m.nextTime = n
	}
}

// InsertAt restores a WME under an explicit time tag. It is the
// checkpoint-recovery counterpart of Insert: tags are normally minted
// monotonically, but a recovered working memory must reproduce the exact
// tags the crashed process assigned (meta-rules observe them via `(tag
// <i>)`, and gensym values derive from them). The counter advances past
// the restored tag.
//
// Restored tags must themselves arrive in strictly increasing order: a
// tag at or below the high water mark — even one whose WME has since
// been removed or expired — would re-enter the memory out of recency
// order and silently corrupt refraction keys and conflict resolution,
// so it is rejected rather than trusted.
func (m *Memory) InsertAt(template string, fields map[string]Value, time int64) (*WME, error) {
	if time <= 0 {
		return nil, fmt.Errorf("wm: restore with non-positive time tag %d", time)
	}
	if time <= m.nextTime {
		return nil, fmt.Errorf("wm: restore time tag %d violates monotonicity (high water %d)", time, m.nextTime)
	}
	if _, dup := m.byTime[time]; dup {
		return nil, fmt.Errorf("wm: restore reuses live time tag %d", time)
	}
	t, ok := m.schema.Lookup(template)
	if !ok {
		return nil, fmt.Errorf("wm: restore of undeclared template %q", template)
	}
	vals := make([]Value, t.Arity())
	for attr, v := range fields {
		i, ok := t.AttrIndex(attr)
		if !ok {
			return nil, fmt.Errorf("wm: template %q has no attribute %q", template, attr)
		}
		vals[i] = v
	}
	w := &WME{Time: time, Tmpl: t, Fields: vals}
	m.byTime[time] = w
	class := m.byTmpl[t]
	if class == nil {
		class = make(map[int64]*WME)
		m.byTmpl[t] = class
	}
	class[time] = w
	m.SetNextTime(time)
	return w, nil
}
