package lang

import (
	"testing"
)

func kinds(toks []Token) []TokKind {
	ks := make([]TokKind, len(toks))
	for i, t := range toks {
		ks[i] = t.Kind
	}
	return ks
}

func lexOK(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := LexAll(src)
	if err != nil {
		t.Fatalf("LexAll(%q): %v", src, err)
	}
	return toks
}

func TestLexBasicTokens(t *testing.T) {
	toks := lexOK(t, `(rule r1 (pool ^id <p> ^amount 100) --> (make bid ^v 2.5))`)
	want := []TokKind{
		TokLParen, TokSym, TokSym,
		TokLParen, TokSym, TokAttr, TokVar, TokAttr, TokInt, TokRParen,
		TokArrow,
		TokLParen, TokSym, TokSym, TokAttr, TokFloat, TokRParen,
		TokRParen, TokEOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("token count = %d, want %d: %v", len(got), len(want), toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v (%s), want %v", i, got[i], toks[i], want[i])
		}
	}
}

func TestLexVariableAndOperators(t *testing.T) {
	toks := lexOK(t, `<x> <long-name*2> < <= <> <- > >= = -`)
	wantText := []string{"x", "long-name*2", "<", "<=", "<>", "<-", ">", ">=", "=", "-"}
	wantKind := []TokKind{TokVar, TokVar, TokSym, TokSym, TokSym, TokSym, TokSym, TokSym, TokSym, TokSym}
	for i, w := range wantText {
		if toks[i].Kind != wantKind[i] || toks[i].Text != w {
			t.Errorf("token %d = %v %q, want %v %q", i, toks[i].Kind, toks[i].Text, wantKind[i], w)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	toks := lexOK(t, `42 -17 +3 2.5 -0.25 1e3 -2.5e-2 .5`)
	if toks[0].Kind != TokInt || toks[0].Int != 42 {
		t.Errorf("42: %v", toks[0])
	}
	if toks[1].Kind != TokInt || toks[1].Int != -17 {
		t.Errorf("-17: %v", toks[1])
	}
	if toks[2].Kind != TokInt || toks[2].Int != 3 {
		t.Errorf("+3: %v", toks[2])
	}
	if toks[3].Kind != TokFloat || toks[3].Flt != 2.5 {
		t.Errorf("2.5: %v", toks[3])
	}
	if toks[4].Kind != TokFloat || toks[4].Flt != -0.25 {
		t.Errorf("-0.25: %v", toks[4])
	}
	if toks[5].Kind != TokFloat || toks[5].Flt != 1000 {
		t.Errorf("1e3: %v", toks[5])
	}
	if toks[6].Kind != TokFloat || toks[6].Flt != -0.025 {
		t.Errorf("-2.5e-2: %v", toks[6])
	}
	if toks[7].Kind != TokFloat || toks[7].Flt != 0.5 {
		t.Errorf(".5: %v", toks[7])
	}
}

func TestLexArrowVsMinus(t *testing.T) {
	toks := lexOK(t, `--> - -x -5`)
	if toks[0].Kind != TokArrow {
		t.Errorf("-->: %v", toks[0])
	}
	if toks[1].Kind != TokSym || toks[1].Text != "-" {
		t.Errorf("-: %v", toks[1])
	}
	// `-x`: minus symbol then symbol x (negation marker before a pattern).
	if toks[2].Kind != TokSym || toks[2].Text != "-" {
		t.Errorf("-x first token: %v", toks[2])
	}
	if toks[3].Kind != TokSym || toks[3].Text != "x" {
		t.Errorf("-x second token: %v", toks[3])
	}
	if toks[4].Kind != TokInt || toks[4].Int != -5 {
		t.Errorf("-5: %v", toks[4])
	}
}

func TestLexStringsAndEscapes(t *testing.T) {
	toks := lexOK(t, `"hello world" "a\"b" "tab\there" "nl\n" "back\\slash"`)
	want := []string{"hello world", `a"b`, "tab\there", "nl\n", `back\slash`}
	for i, w := range want {
		if toks[i].Kind != TokString || toks[i].Text != w {
			t.Errorf("string %d = %q, want %q", i, toks[i].Text, w)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks := lexOK(t, "a ; this is a comment\nb ;; another\n")
	if toks[0].Text != "a" || toks[1].Text != "b" || toks[2].Kind != TokEOF {
		t.Errorf("comments not skipped: %v", toks)
	}
}

func TestLexPositions(t *testing.T) {
	toks := lexOK(t, "(a\n  b)")
	if toks[0].Pos != (Pos{1, 1}) {
		t.Errorf("'(' pos = %v", toks[0].Pos)
	}
	if toks[1].Pos != (Pos{1, 2}) {
		t.Errorf("a pos = %v", toks[1].Pos)
	}
	if toks[2].Pos != (Pos{2, 3}) {
		t.Errorf("b pos = %v", toks[2].Pos)
	}
}

func TestLexErrors(t *testing.T) {
	bad := []string{
		`"unterminated`,
		`"bad \q escape"`,
		`^ foo`,
		"\x01",
	}
	for _, src := range bad {
		if _, err := LexAll(src); err == nil {
			t.Errorf("LexAll(%q) should fail", src)
		}
	}
}

func TestLexBrackets(t *testing.T) {
	toks := lexOK(t, `[<i> (r ^x 1)]`)
	want := []TokKind{TokLBrack, TokVar, TokLParen, TokSym, TokAttr, TokInt, TokRParen, TokRBrack, TokEOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}
