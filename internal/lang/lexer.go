package lang

import (
	"strconv"
	"strings"
)

// Lexer tokenizes PARULEL source text.
//
// Lexical rules:
//   - `;` starts a comment to end of line.
//   - `(` `)` `[` `]` are single-character tokens.
//   - `^name` is an attribute token.
//   - `<name>` is a variable token (name: letters, digits, `_`, `-`, `*`).
//   - `<` not forming a variable yields the operator symbols `<`, `<=`,
//     `<>`, `<-` (longest match).
//   - `-->` is the rule arrow.
//   - Numbers: optional sign, digits, optional fraction/exponent.
//   - `"…"` is a string with `\"` `\\` `\n` `\t` escapes.
//   - Anything else contiguous is a symbol (`+`, `-`, `>=`, `free`, …).
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peekAt(k int) byte {
	if lx.off+k >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+k]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\r' || c == '\n' }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || isDigit(c) || c == '_' || c == '-' || c == '*'
}

// isSymChar reports characters that may appear in a bare symbol.
func isSymChar(c byte) bool {
	if isIdentChar(c) {
		return true
	}
	switch c {
	case '+', '/', '=', '?', '!', '.', '&', '%', '#', ':':
		return true
	}
	return false
}

func (lx *Lexer) skipSpaceAndComments() {
	for lx.off < len(lx.src) {
		c := lx.peek()
		if isSpace(c) {
			lx.advance()
			continue
		}
		if c == ';' {
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
			continue
		}
		return
	}
}

// Next returns the next token or an error.
func (lx *Lexer) Next() (Token, error) {
	lx.skipSpaceAndComments()
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := lx.peek()
	switch {
	case c == '(':
		lx.advance()
		return Token{Kind: TokLParen, Pos: pos}, nil
	case c == ')':
		lx.advance()
		return Token{Kind: TokRParen, Pos: pos}, nil
	case c == '[':
		lx.advance()
		return Token{Kind: TokLBrack, Pos: pos}, nil
	case c == ']':
		lx.advance()
		return Token{Kind: TokRBrack, Pos: pos}, nil
	case c == '^':
		lx.advance()
		start := lx.off
		for lx.off < len(lx.src) && isIdentChar(lx.peek()) {
			lx.advance()
		}
		if lx.off == start {
			return Token{}, errf(pos, "lex: '^' must be followed by an attribute name")
		}
		return Token{Kind: TokAttr, Text: lx.src[start:lx.off], Pos: pos}, nil
	case c == '<':
		return lx.lexAngle(pos)
	case c == '>':
		lx.advance()
		switch lx.peek() {
		case '=':
			lx.advance()
			return Token{Kind: TokSym, Text: ">=", Pos: pos}, nil
		case '>':
			lx.advance()
			return Token{Kind: TokSym, Text: ">>", Pos: pos}, nil
		default:
			return Token{Kind: TokSym, Text: ">", Pos: pos}, nil
		}
	case c == '"':
		return lx.lexString(pos)
	case isDigit(c),
		(c == '-' || c == '+') && isDigit(lx.peekAt(1)),
		(c == '-' || c == '+') && lx.peekAt(1) == '.' && isDigit(lx.peekAt(2)),
		c == '.' && isDigit(lx.peekAt(1)):
		return lx.lexNumber(pos)
	case c == '-':
		// Could be the arrow `-->`, the negation marker / minus symbol `-`.
		if lx.peekAt(1) == '-' && lx.peekAt(2) == '>' {
			lx.advance()
			lx.advance()
			lx.advance()
			return Token{Kind: TokArrow, Pos: pos}, nil
		}
		lx.advance()
		// A `-` immediately followed by symbol chars is still just the
		// minus symbol followed by that symbol only if separated; glued
		// identifiers like `-foo` are read as one symbol for negated CE
		// convenience? No: keep `-` standalone, symbols may contain `-`
		// only when they start with an ident char.
		return Token{Kind: TokSym, Text: "-", Pos: pos}, nil
	case isSymChar(c):
		start := lx.off
		for lx.off < len(lx.src) && isSymChar(lx.peek()) {
			lx.advance()
		}
		return Token{Kind: TokSym, Text: lx.src[start:lx.off], Pos: pos}, nil
	default:
		return Token{}, errf(pos, "lex: unexpected character %q", string(rune(c)))
	}
}

// lexAngle handles `<name>` variables and the operators `<`, `<=`, `<>`,
// `<-` (longest match first for variables).
func (lx *Lexer) lexAngle(pos Pos) (Token, error) {
	lx.advance() // consume '<'
	start := lx.off
	n := 0
	for lx.off+n < len(lx.src) && isIdentChar(lx.src[lx.off+n]) {
		n++
	}
	if n > 0 && lx.off+n < len(lx.src) && lx.src[lx.off+n] == '>' {
		for i := 0; i < n; i++ {
			lx.advance()
		}
		lx.advance() // consume '>'
		return Token{Kind: TokVar, Text: lx.src[start : start+n], Pos: pos}, nil
	}
	switch lx.peek() {
	case '=':
		lx.advance()
		return Token{Kind: TokSym, Text: "<=", Pos: pos}, nil
	case '>':
		lx.advance()
		return Token{Kind: TokSym, Text: "<>", Pos: pos}, nil
	case '-':
		lx.advance()
		return Token{Kind: TokSym, Text: "<-", Pos: pos}, nil
	case '<':
		lx.advance()
		return Token{Kind: TokSym, Text: "<<", Pos: pos}, nil
	default:
		return Token{Kind: TokSym, Text: "<", Pos: pos}, nil
	}
}

func (lx *Lexer) lexString(pos Pos) (Token, error) {
	lx.advance() // opening quote
	var b strings.Builder
	for {
		if lx.off >= len(lx.src) {
			return Token{}, errf(pos, "lex: unterminated string")
		}
		c := lx.advance()
		if c == '"' {
			return Token{Kind: TokString, Text: b.String(), Pos: pos}, nil
		}
		if c == '\\' {
			if lx.off >= len(lx.src) {
				return Token{}, errf(pos, "lex: unterminated escape in string")
			}
			e := lx.advance()
			switch e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			default:
				return Token{}, errf(pos, "lex: unknown escape \\%c in string", e)
			}
			continue
		}
		b.WriteByte(c)
	}
}

func (lx *Lexer) lexNumber(pos Pos) (Token, error) {
	start := lx.off
	if c := lx.peek(); c == '-' || c == '+' {
		lx.advance()
	}
	sawDot, sawExp := false, false
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case isDigit(c):
			lx.advance()
		case c == '.' && !sawDot && !sawExp:
			sawDot = true
			lx.advance()
		case (c == 'e' || c == 'E') && !sawExp && isDigitOrSigned(lx.src, lx.off+1):
			sawExp = true
			lx.advance()
			if p := lx.peek(); p == '+' || p == '-' {
				lx.advance()
			}
		default:
			goto done
		}
	}
done:
	text := lx.src[start:lx.off]
	if sawDot || sawExp {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Token{}, errf(pos, "lex: bad float literal %q", text)
		}
		return Token{Kind: TokFloat, Flt: f, Pos: pos}, nil
	}
	i, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return Token{}, errf(pos, "lex: bad integer literal %q", text)
	}
	return Token{Kind: TokInt, Int: i, Pos: pos}, nil
}

func isDigitOrSigned(s string, i int) bool {
	if i >= len(s) {
		return false
	}
	if s[i] == '+' || s[i] == '-' {
		return i+1 < len(s) && isDigit(s[i+1])
	}
	return isDigit(s[i])
}

// LexAll tokenizes the whole input, mainly for tests.
func LexAll(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}
