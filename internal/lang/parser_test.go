package lang

import (
	"reflect"
	"strings"
	"testing"

	"parulel/internal/wm"
)

func parseOK(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse failed: %v\nsource:\n%s", err, src)
	}
	return p
}

const sampleProgram = `
; The ALEXSYS-style kernel used throughout the docs.
(literalize pool  id amount status)
(literalize order id lo hi filled)
(literalize bid   pool order)

(wm
  (pool ^id 1 ^amount 100 ^status free)
  (order ^id 1 ^lo 50 ^hi 150 ^filled no))

(rule propose
  (pool  ^id <p> ^amount <a> ^status free)
  (order ^id <o> ^lo <lo> ^hi <hi> ^filled no)
  (test (and (>= <a> <lo>) (<= <a> <hi>)))
-->
  (make bid ^pool <p> ^order <o>))

(rule award
  <b> <- (bid ^pool <p> ^order <o>)
  <pl> <- (pool ^id <p>)
  <or> <- (order ^id <o>)
  - (veto ^pool <p>)
-->
  (modify <pl> ^status allocated)
  (modify <or> ^filled yes)
  (remove <b>)
  (write "awarded pool " <p> " to order " <o> (crlf)))

(metarule one-bid-per-pool
  [<i> (propose ^p <p> ^o <o1>)]
  [<j> (propose ^p <p> ^o <o2>)]
  (test (< <o1> <o2>))
-->
  (redact <j>))
`

func TestParseSampleProgram(t *testing.T) {
	// `veto` is referenced but undeclared: that is a *compile*-time error,
	// not a parse error, so declare it to keep this sample self-contained.
	prog := parseOK(t, sampleProgram+"\n(literalize veto pool)\n")
	if len(prog.Templates) != 4 {
		t.Errorf("templates = %d, want 4", len(prog.Templates))
	}
	if len(prog.Rules) != 2 {
		t.Fatalf("rules = %d, want 2", len(prog.Rules))
	}
	if len(prog.MetaRules) != 1 {
		t.Fatalf("metarules = %d, want 1", len(prog.MetaRules))
	}
	if len(prog.Facts) != 1 || len(prog.Facts[0].Facts) != 2 {
		t.Fatalf("facts parsed wrong: %+v", prog.Facts)
	}

	propose := prog.Rules[0]
	if propose.Name != "propose" || len(propose.LHS) != 3 || len(propose.RHS) != 1 {
		t.Fatalf("propose shape wrong: %+v", propose)
	}
	if propose.LHS[2].Test == nil {
		t.Error("third CE of propose should be a test element")
	}
	mk, ok := propose.RHS[0].(*MakeAction)
	if !ok || mk.Type != "bid" || len(mk.Slots) != 2 {
		t.Fatalf("propose RHS wrong: %+v", propose.RHS[0])
	}

	award := prog.Rules[1]
	if award.LHS[0].Binder != "b" {
		t.Errorf("binder = %q, want b", award.LHS[0].Binder)
	}
	if !award.LHS[3].Negated {
		t.Error("fourth CE of award should be negated")
	}
	if _, ok := award.RHS[0].(*ModifyAction); !ok {
		t.Errorf("award RHS[0] should be modify, got %T", award.RHS[0])
	}
	if _, ok := award.RHS[2].(*RemoveAction); !ok {
		t.Errorf("award RHS[2] should be remove, got %T", award.RHS[2])
	}
	w, ok := award.RHS[3].(*WriteAction)
	if !ok || len(w.Args) != 5 {
		t.Fatalf("award RHS[3] should be write with 5 args: %+v", award.RHS[3])
	}
	if c, ok := w.Args[4].(*CallExpr); !ok || c.Op != "crlf" || len(c.Args) != 0 {
		t.Errorf("last write arg should be (crlf): %+v", w.Args[4])
	}

	meta := prog.MetaRules[0]
	if meta.Name != "one-bid-per-pool" || len(meta.Patterns) != 2 || len(meta.Tests) != 1 {
		t.Fatalf("metarule shape wrong: %+v", meta)
	}
	if meta.Patterns[0].Var != "i" || meta.Patterns[0].RuleName != "propose" {
		t.Errorf("first inst pattern wrong: %+v", meta.Patterns[0])
	}
	if !reflect.DeepEqual(meta.Redacts, []string{"j"}) {
		t.Errorf("redacts = %v", meta.Redacts)
	}
}

func TestParseTerms(t *testing.T) {
	prog := parseOK(t, `
(literalize thing a b c d e)
(rule r
  (thing ^a 1 ^b <x> ^c (> 5) ^d (<> <x>) ^e nil)
-->
  (halt))
`)
	slots := prog.Rules[0].LHS[0].Pattern.Slots
	if c, ok := slots[0].Term.(ConstTerm); !ok || c.Val != wm.Int(1) {
		t.Errorf("slot a: %+v", slots[0].Term)
	}
	if v, ok := slots[1].Term.(VarTerm); !ok || v.Name != "x" {
		t.Errorf("slot b: %+v", slots[1].Term)
	}
	if p, ok := slots[2].Term.(PredTerm); !ok || p.Op != ">" {
		t.Errorf("slot c: %+v", slots[2].Term)
	} else if c, ok := p.Arg.(ConstTerm); !ok || c.Val != wm.Int(5) {
		t.Errorf("slot c arg: %+v", p.Arg)
	}
	if p, ok := slots[3].Term.(PredTerm); !ok || p.Op != "<>" {
		t.Errorf("slot d: %+v", slots[3].Term)
	} else if v, ok := p.Arg.(VarTerm); !ok || v.Name != "x" {
		t.Errorf("slot d arg: %+v", p.Arg)
	}
	if c, ok := slots[4].Term.(ConstTerm); !ok || !c.Val.IsNil() {
		t.Errorf("slot e should be nil const: %+v", slots[4].Term)
	}
}

func TestParseOPS5Alias(t *testing.T) {
	prog := parseOK(t, `(literalize a x) (p r1 (a ^x 1) --> (remove 1))`)
	if len(prog.Rules) != 1 || prog.Rules[0].Name != "r1" {
		t.Fatalf("p alias not accepted: %+v", prog.Rules)
	}
	rm := prog.Rules[0].RHS[0].(*RemoveAction)
	if rm.Targets[0].Index != 1 {
		t.Errorf("remove index = %d", rm.Targets[0].Index)
	}
}

func TestParseBindAndNestedExpr(t *testing.T) {
	prog := parseOK(t, `
(literalize a x)
(rule r (a ^x <v>) --> (bind <y> (+ (* <v> 2) 1)) (make a ^x <y>))
`)
	b := prog.Rules[0].RHS[0].(*BindAction)
	if b.Var != "y" {
		t.Errorf("bind var = %q", b.Var)
	}
	call := b.Expr.(*CallExpr)
	if call.Op != "+" || len(call.Args) != 2 {
		t.Fatalf("outer call: %+v", call)
	}
	inner := call.Args[0].(*CallExpr)
	if inner.Op != "*" || len(inner.Args) != 2 {
		t.Fatalf("inner call: %+v", inner)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src    string
		substr string
	}{
		{`(bogus x)`, "unknown declaration"},
		{`(literalize t)`, "at least one attribute"},
		{`(rule r --> (halt))`, "empty left-hand side"},
		{`(rule r (a ^x 1) --> (explode 1))`, "unknown action"},
		{`(rule r (a ^x (plus 3)) --> (halt))`, "not a predicate operator"},
		{`(rule r (a ^x (> (> 3))) --> (halt))`, "constant or variable"},
		{`(rule r (a 1) --> (halt))`, "expected ^attribute"},
		{`(rule r <e> (a ^x 1) --> (halt))`, "expected '<-'"},
		{`(rule r - (test (> 1 0)) --> (halt))`, "cannot be negated"},
		{`(rule r <e> <- (test (> 1 0)) --> (halt))`, "cannot be negated or bound"},
		{`(rule r (a ^x 1) --> (modify 1))`, "no attribute changes"},
		{`(rule r (a ^x 1) --> (remove))`, "no targets"},
		{`(rule r (a ^x 1) --> (remove 0))`, "must be >= 1"},
		{`(rule r (a ^x 1) --> (bind x 1))`, "bind expects a variable"},
		{`(metarule m --> (redact <i>))`, "no instantiation patterns"},
		{`(metarule m [<i> (r ^x 1)] --> )`, "redacts nothing"},
		{`(metarule m [<i> (r ^x 1)] --> (redact))`, "at least one instantiation variable"},
		{`(metarule m [<i> (r ^x 1)] --> (write "no"))`, "only meta action is redact"},
		{`(metarule m [(r ^x 1)] --> (redact <i>))`, "must start with a meta-variable"},
		{`(metarule m (foo) --> (redact <i>))`, "only"},
		{`(wm (t ^a <x>))`, "expected a constant"},
		{`(rule r`, "expected"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) should fail with %q", c.src, c.substr)
			continue
		}
		if !strings.Contains(err.Error(), c.substr) {
			t.Errorf("Parse(%q) error = %q, want substring %q", c.src, err, c.substr)
		}
	}
}

func TestParseErrorsCarryPosition(t *testing.T) {
	_, err := Parse("(literalize t a)\n(rule r\n  (t 1)\n--> (halt))")
	if err == nil {
		t.Fatal("expected error")
	}
	perr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T, want *Error", err)
	}
	if perr.Pos.Line != 3 {
		t.Errorf("error line = %d, want 3 (%v)", perr.Pos.Line, perr)
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	src := sampleProgram + "\n(literalize veto pool)\n"
	prog := parseOK(t, src)
	printed := Print(prog)
	reparsed, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse of printed program failed: %v\nprinted:\n%s", err, printed)
	}
	// Positions differ, so compare the second-generation print instead.
	printed2 := Print(reparsed)
	if printed != printed2 {
		t.Errorf("print/parse not a fixpoint:\nfirst:\n%s\nsecond:\n%s", printed, printed2)
	}
	if len(reparsed.Rules) != len(prog.Rules) || len(reparsed.MetaRules) != len(prog.MetaRules) ||
		len(reparsed.Templates) != len(prog.Templates) || len(reparsed.Facts) != len(prog.Facts) {
		t.Error("reparsed program has different shape")
	}
}

func TestParseMultipleRedactsAndTargets(t *testing.T) {
	prog := parseOK(t, `
(literalize a x)
(rule r (a ^x <v>) (a ^x (<> <v>)) --> (remove 1 2))
(metarule m [<i> (r ^v <a>)] [<j> (r ^v <b>)] --> (redact <i> <j>))
`)
	rm := prog.Rules[0].RHS[0].(*RemoveAction)
	if len(rm.Targets) != 2 || rm.Targets[1].Index != 2 {
		t.Errorf("remove targets: %+v", rm.Targets)
	}
	if !reflect.DeepEqual(prog.MetaRules[0].Redacts, []string{"i", "j"}) {
		t.Errorf("redacts: %v", prog.MetaRules[0].Redacts)
	}
}
