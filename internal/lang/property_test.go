package lang

import (
	"fmt"
	"math/rand"
	"testing"

	"parulel/internal/wm"
)

// Random AST generation for the print∘parse fixpoint property. The
// generated programs need only be *grammatical* (parse-valid), not
// compile-valid, so variables and templates are unconstrained.

func randSym(r *rand.Rand) string {
	heads := "abcdefgh"
	tails := "abcdefgh0123456789-*"
	n := 1 + r.Intn(6)
	out := []byte{heads[r.Intn(len(heads))]}
	for i := 1; i < n; i++ {
		out = append(out, tails[r.Intn(len(tails))])
	}
	return string(out)
}

func randValue(r *rand.Rand) wm.Value {
	switch r.Intn(6) {
	case 0:
		return wm.Nil()
	case 1:
		return wm.Int(int64(r.Intn(2000) - 1000))
	case 2:
		// Random but exactly representable floats round-trip through %g.
		return wm.Float(float64(r.Intn(1000)-500) / 8)
	case 3:
		return wm.Sym(randSym(r))
	case 4:
		return wm.Str("plain text")
	default:
		return wm.Str("esc \" \\ \n\ttext")
	}
}

func randTerm(r *rand.Rand, depth int) Term {
	switch r.Intn(5) {
	case 0:
		return VarTerm{Name: randSym(r)}
	case 1:
		ops := []string{"=", "<>", "<", "<=", ">", ">="}
		var arg Term
		if r.Intn(2) == 0 {
			arg = VarTerm{Name: randSym(r)}
		} else {
			arg = ConstTerm{Val: randValue(r)}
		}
		return PredTerm{Op: ops[r.Intn(len(ops))], Arg: arg}
	case 2:
		d := DisjTerm{}
		for i := 0; i <= r.Intn(3); i++ {
			d.Vals = append(d.Vals, randValue(r))
		}
		return d
	default:
		return ConstTerm{Val: randValue(r)}
	}
}

func randPattern(r *rand.Rand) *Pattern {
	p := &Pattern{Type: randSym(r)}
	for i := 0; i < r.Intn(4); i++ {
		p.Slots = append(p.Slots, &Slot{Attr: randSym(r), Term: randTerm(r, 0)})
	}
	return p
}

func randExpr(r *rand.Rand, depth int) Expr {
	if depth > 2 || r.Intn(3) == 0 {
		if r.Intn(2) == 0 {
			return &VarExpr{Name: randSym(r)}
		}
		return &ConstExpr{Val: randValue(r)}
	}
	ops := []string{"+", "-", "*", "div", "mod", "=", "<>", "<", "and", "or", "not", "min", "max", "abs", "hash", "crlf", "if", "symcat"}
	c := &CallExpr{Op: ops[r.Intn(len(ops))]}
	for i := 0; i < r.Intn(3); i++ {
		c.Args = append(c.Args, randExpr(r, depth+1))
	}
	return c
}

func randDesignator(r *rand.Rand) Designator {
	if r.Intn(2) == 0 {
		return Designator{Index: 1 + r.Intn(5)}
	}
	return Designator{Var: randSym(r)}
}

func randAction(r *rand.Rand) Action {
	switch r.Intn(6) {
	case 0:
		a := &MakeAction{Type: randSym(r)}
		for i := 0; i < r.Intn(3); i++ {
			a.Slots = append(a.Slots, &ActionSlot{Attr: randSym(r), Expr: randExpr(r, 0)})
		}
		return a
	case 1:
		a := &ModifyAction{Target: randDesignator(r)}
		for i := 0; i <= r.Intn(3); i++ {
			a.Slots = append(a.Slots, &ActionSlot{Attr: randSym(r), Expr: randExpr(r, 0)})
		}
		return a
	case 2:
		a := &RemoveAction{}
		for i := 0; i <= r.Intn(3); i++ {
			a.Targets = append(a.Targets, randDesignator(r))
		}
		return a
	case 3:
		if r.Intn(2) == 0 {
			return &BindAction{Var: randSym(r)} // gensym form
		}
		return &BindAction{Var: randSym(r), Expr: randExpr(r, 0)}
	case 4:
		a := &WriteAction{}
		for i := 0; i < r.Intn(4); i++ {
			a.Args = append(a.Args, randExpr(r, 0))
		}
		return a
	default:
		return &HaltAction{}
	}
}

func randCondElem(r *rand.Rand) *CondElem {
	switch r.Intn(5) {
	case 0:
		return &CondElem{Negated: true, Pattern: randPattern(r)}
	case 1:
		return &CondElem{Binder: randSym(r), Pattern: randPattern(r)}
	case 2:
		return &CondElem{Test: randExpr(r, 0)}
	default:
		return &CondElem{Pattern: randPattern(r)}
	}
}

func randRule(r *rand.Rand, i int) *Rule {
	rule := &Rule{Name: fmt.Sprintf("rule-%d-%s", i, randSym(r))}
	for j := 0; j <= r.Intn(4); j++ {
		rule.LHS = append(rule.LHS, randCondElem(r))
	}
	for j := 0; j < r.Intn(4); j++ {
		rule.RHS = append(rule.RHS, randAction(r))
	}
	return rule
}

func randMetaRule(r *rand.Rand, i int) *MetaRule {
	m := &MetaRule{Name: fmt.Sprintf("meta-%d-%s", i, randSym(r))}
	for j := 0; j <= r.Intn(3); j++ {
		ip := &InstPattern{Var: randSym(r), RuleName: randSym(r)}
		for k := 0; k < r.Intn(3); k++ {
			ip.Slots = append(ip.Slots, &Slot{Attr: randSym(r), Term: randTerm(r, 0)})
		}
		m.Patterns = append(m.Patterns, ip)
	}
	for j := 0; j < r.Intn(2); j++ {
		m.Tests = append(m.Tests, randExpr(r, 0))
	}
	for j := 0; j <= r.Intn(2); j++ {
		m.Redacts = append(m.Redacts, randSym(r))
	}
	return m
}

func randAST(r *rand.Rand) *Program {
	p := &Program{}
	for i := 0; i < 1+r.Intn(3); i++ {
		td := &TemplateDecl{Name: fmt.Sprintf("tmpl-%d", i)}
		for j := 0; j <= r.Intn(4); j++ {
			td.Attrs = append(td.Attrs, randSym(r))
		}
		p.Templates = append(p.Templates, td)
	}
	if r.Intn(2) == 0 {
		fd := &FactDecl{}
		for i := 0; i <= r.Intn(3); i++ {
			f := &Fact{Type: randSym(r)}
			for j := 0; j < r.Intn(3); j++ {
				f.Slots = append(f.Slots, FactSlot{Attr: randSym(r), Val: randValue(r)})
			}
			fd.Facts = append(fd.Facts, f)
		}
		p.Facts = append(p.Facts, fd)
	}
	for i := 0; i < 1+r.Intn(3); i++ {
		p.Rules = append(p.Rules, randRule(r, i))
	}
	for i := 0; i < r.Intn(3); i++ {
		p.MetaRules = append(p.MetaRules, randMetaRule(r, i))
	}
	return p
}

// TestPrintParseFixpointProperty: for random grammatical ASTs, printing
// then reparsing then printing again reproduces the first print exactly.
func TestPrintParseFixpointProperty(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		r := rand.New(rand.NewSource(seed))
		ast := randAST(r)
		printed := Print(ast)
		reparsed, err := Parse(printed)
		if err != nil {
			t.Fatalf("seed %d: printed program does not parse: %v\n%s", seed, err, printed)
		}
		printed2 := Print(reparsed)
		if printed != printed2 {
			t.Fatalf("seed %d: print∘parse not a fixpoint:\nfirst:\n%s\nsecond:\n%s", seed, printed, printed2)
		}
	}
}

// TestLexerRoundTripsValues: every literal survives print→lex.
func TestLexerRoundTripsValues(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		v := randValue(r)
		toks, err := LexAll(v.String())
		if err != nil {
			t.Fatalf("lex %q: %v", v.String(), err)
		}
		if len(toks) != 2 { // value + EOF
			t.Fatalf("value %q lexed to %d tokens", v.String(), len(toks)-1)
		}
		got := toks[0]
		switch v.Kind {
		case wm.KindInt:
			if got.Kind != TokInt || got.Int != v.I {
				t.Errorf("int %v → %v", v, got)
			}
		case wm.KindFloat:
			if got.Kind != TokFloat || got.Flt != v.F {
				t.Errorf("float %v → %v", v, got)
			}
		case wm.KindSym:
			if got.Kind != TokSym || got.Text != v.S {
				t.Errorf("sym %v → %v", v, got)
			}
		case wm.KindStr:
			if got.Kind != TokString || got.Text != v.S {
				t.Errorf("str %q → %v", v.S, got)
			}
		case wm.KindNil:
			if got.Kind != TokSym || got.Text != "nil" {
				t.Errorf("nil → %v", got)
			}
		}
	}
}
