package lang

import (
	"fmt"
	"strings"

	"parulel/internal/wm"
)

// Print renders a Program back to parseable PARULEL source. The output is
// canonical (one declaration per top-level form, two-space indents), so
// Parse∘Print is the identity on ASTs — a property the tests rely on.
func Print(p *Program) string {
	var b strings.Builder
	for _, t := range p.Templates {
		fmt.Fprintf(&b, "(literalize %s %s)\n", t.Name, strings.Join(t.Attrs, " "))
	}
	for _, d := range p.TTLs {
		fmt.Fprintf(&b, "(ttl %s %d)\n", d.Tmpl, d.Ticks)
	}
	for _, d := range p.Windows {
		fmt.Fprintf(&b, "(window %s %s", d.Name, d.Source)
		for _, s := range d.Slots {
			fmt.Fprintf(&b, " ^%s %s", s.Attr, printValue(s.Val))
		}
		b.WriteString(")\n")
	}
	for _, f := range p.Facts {
		b.WriteString("(wm\n")
		for _, fact := range f.Facts {
			b.WriteString("  (")
			b.WriteString(fact.Type)
			for _, s := range fact.Slots {
				fmt.Fprintf(&b, " ^%s %s", s.Attr, printValue(s.Val))
			}
			b.WriteString(")\n")
		}
		b.WriteString(")\n")
	}
	for _, r := range p.Rules {
		b.WriteString(PrintRule(r))
	}
	for _, m := range p.MetaRules {
		b.WriteString(printMetaRule(m))
	}
	return b.String()
}

// PrintRule renders a single rule declaration.
func PrintRule(r *Rule) string {
	var b strings.Builder
	fmt.Fprintf(&b, "(rule %s\n", r.Name)
	for _, ce := range r.LHS {
		b.WriteString("  ")
		b.WriteString(printCondElem(ce))
		b.WriteString("\n")
	}
	b.WriteString("-->\n")
	for _, a := range r.RHS {
		b.WriteString("  ")
		b.WriteString(printAction(a))
		b.WriteString("\n")
	}
	b.WriteString(")\n")
	return b.String()
}

func printCondElem(ce *CondElem) string {
	if ce.Test != nil {
		return fmt.Sprintf("(test %s)", PrintExpr(ce.Test))
	}
	pat := printPattern(ce.Pattern)
	switch {
	case ce.Negated:
		return "- " + pat
	case ce.Binder != "":
		return fmt.Sprintf("<%s> <- %s", ce.Binder, pat)
	default:
		return pat
	}
}

func printPattern(pat *Pattern) string {
	var b strings.Builder
	b.WriteString("(")
	b.WriteString(pat.Type)
	for _, s := range pat.Slots {
		fmt.Fprintf(&b, " ^%s %s", s.Attr, printTerm(s.Term))
	}
	b.WriteString(")")
	return b.String()
}

func printTerm(t Term) string {
	switch t := t.(type) {
	case ConstTerm:
		return printValue(t.Val)
	case VarTerm:
		return "<" + t.Name + ">"
	case PredTerm:
		return fmt.Sprintf("(%s %s)", t.Op, printTerm(t.Arg))
	case DisjTerm:
		parts := make([]string, len(t.Vals))
		for i, v := range t.Vals {
			parts[i] = printValue(v)
		}
		return "<< " + strings.Join(parts, " ") + " >>"
	default:
		return fmt.Sprintf("?term(%T)?", t)
	}
}

func printValue(v wm.Value) string {
	// wm.Value.String already prints literals in source syntax.
	return v.String()
}

func printAction(a Action) string {
	switch a := a.(type) {
	case *MakeAction:
		var b strings.Builder
		fmt.Fprintf(&b, "(make %s", a.Type)
		for _, s := range a.Slots {
			fmt.Fprintf(&b, " ^%s %s", s.Attr, PrintExpr(s.Expr))
		}
		b.WriteString(")")
		return b.String()
	case *ModifyAction:
		var b strings.Builder
		fmt.Fprintf(&b, "(modify %s", printDesignator(a.Target))
		for _, s := range a.Slots {
			fmt.Fprintf(&b, " ^%s %s", s.Attr, PrintExpr(s.Expr))
		}
		b.WriteString(")")
		return b.String()
	case *RemoveAction:
		parts := make([]string, len(a.Targets))
		for i, d := range a.Targets {
			parts[i] = printDesignator(d)
		}
		return "(remove " + strings.Join(parts, " ") + ")"
	case *BindAction:
		if a.Expr == nil { // gensym form
			return fmt.Sprintf("(bind <%s>)", a.Var)
		}
		return fmt.Sprintf("(bind <%s> %s)", a.Var, PrintExpr(a.Expr))
	case *WriteAction:
		parts := make([]string, len(a.Args))
		for i, e := range a.Args {
			parts[i] = PrintExpr(e)
		}
		if len(parts) == 0 {
			return "(write)"
		}
		return "(write " + strings.Join(parts, " ") + ")"
	case *HaltAction:
		return "(halt)"
	default:
		return fmt.Sprintf("?action(%T)?", a)
	}
}

func printDesignator(d Designator) string {
	if d.Var != "" {
		return "<" + d.Var + ">"
	}
	return fmt.Sprintf("%d", d.Index)
}

// PrintExpr renders an expression in source syntax.
func PrintExpr(e Expr) string {
	switch e := e.(type) {
	case *ConstExpr:
		return printValue(e.Val)
	case *VarExpr:
		return "<" + e.Name + ">"
	case *CallExpr:
		if len(e.Args) == 0 {
			return "(" + e.Op + ")"
		}
		parts := make([]string, len(e.Args))
		for i, a := range e.Args {
			parts[i] = PrintExpr(a)
		}
		return "(" + e.Op + " " + strings.Join(parts, " ") + ")"
	default:
		return fmt.Sprintf("?expr(%T)?", e)
	}
}

func printMetaRule(m *MetaRule) string {
	var b strings.Builder
	fmt.Fprintf(&b, "(metarule %s\n", m.Name)
	for _, ip := range m.Patterns {
		fmt.Fprintf(&b, "  [<%s> (%s", ip.Var, ip.RuleName)
		for _, s := range ip.Slots {
			fmt.Fprintf(&b, " ^%s %s", s.Attr, printTerm(s.Term))
		}
		b.WriteString(")]\n")
	}
	for _, t := range m.Tests {
		fmt.Fprintf(&b, "  (test %s)\n", PrintExpr(t))
	}
	b.WriteString("-->\n")
	for _, r := range m.Redacts {
		fmt.Fprintf(&b, "  (redact <%s>)\n", r)
	}
	b.WriteString(")\n")
	return b.String()
}
