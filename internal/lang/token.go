// Package lang implements the PARULEL language front end: lexer, abstract
// syntax tree, recursive-descent parser, and a source printer.
//
// The concrete syntax is OPS5-flavoured s-expressions extended with the two
// PARULEL constructs: `metarule` declarations and `[<i> (rule …)]`
// instantiation patterns. See DESIGN.md §2 for a sketch and the grammar
// comments on Parser for details.
package lang

import "fmt"

// Pos is a source position (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// TokKind enumerates lexical token kinds.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokLParen
	TokRParen
	TokLBrack
	TokRBrack
	TokArrow  // -->
	TokAttr   // ^name
	TokVar    // <name>
	TokSym    // bare symbol, including operators like <=, <>, <-, +, -
	TokInt    // integer literal
	TokFloat  // float literal
	TokString // double-quoted string literal
)

func (k TokKind) String() string {
	switch k {
	case TokEOF:
		return "end of input"
	case TokLParen:
		return "'('"
	case TokRParen:
		return "')'"
	case TokLBrack:
		return "'['"
	case TokRBrack:
		return "']'"
	case TokArrow:
		return "'-->'"
	case TokAttr:
		return "attribute"
	case TokVar:
		return "variable"
	case TokSym:
		return "symbol"
	case TokInt:
		return "integer"
	case TokFloat:
		return "float"
	case TokString:
		return "string"
	default:
		return fmt.Sprintf("TokKind(%d)", uint8(k))
	}
}

// Token is a lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string // symbol name, attr name (without ^), var name (without <>), string body
	Int  int64
	Flt  float64
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case TokSym:
		return t.Text
	case TokAttr:
		return "^" + t.Text
	case TokVar:
		return "<" + t.Text + ">"
	case TokInt:
		return fmt.Sprintf("%d", t.Int)
	case TokFloat:
		return fmt.Sprintf("%g", t.Flt)
	case TokString:
		return fmt.Sprintf("%q", t.Text)
	default:
		return t.Kind.String()
	}
}

// Error is a lexical or syntactic error with position information.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
