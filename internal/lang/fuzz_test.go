package lang

import (
	"testing"
)

// FuzzParse shakes the lexer and parser with arbitrary inputs: they must
// never panic, and anything that parses must print and reparse to the
// same canonical form.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"(literalize a x y)",
		"(rule r (a ^x <v>) --> (halt))",
		"(rule r (a ^x << 1 2.5 sym \"s\" >>) - (b ^y (> <v>)) (test (and <v> 1)) --> (make a ^x (+ <v> 1)))",
		"(metarule m [<i> (r ^v <a>)] [<j> (r ^v <a>)] (test (precedes <i> <j>)) --> (redact <j>))",
		"(wm (a ^x 1) (b ^y nil))",
		"(rule r <e> <- (a ^x 1) --> (modify <e> ^x 2) (remove <e>) (bind <q>) (write \"x\" (crlf)))",
		"(rule r (a ^x 1",
		"(p r1 (a ^x -5e-3) --> (remove 1 2 3))",
		"((((((",
		"^ < <- << >> --> ; comment",
		"\"unterminated",
		"(rule \x00)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		printed := Print(prog)
		re, err := Parse(printed)
		if err != nil {
			t.Fatalf("canonical print does not reparse: %v\ninput: %q\nprinted:\n%s", err, src, printed)
		}
		if second := Print(re); second != printed {
			t.Fatalf("print not canonical:\nfirst:\n%s\nsecond:\n%s", printed, second)
		}
	})
}

// FuzzLexer: the lexer must terminate and never panic on any input.
func FuzzLexer(f *testing.F) {
	for _, s := range []string{"", "(a ^b <c> 1.5 \"x\")", "<<>>", ";;;", "-->--><-"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		lx := NewLexer(src)
		for i := 0; i < len(src)+16; i++ {
			tok, err := lx.Next()
			if err != nil || tok.Kind == TokEOF {
				return
			}
		}
		t.Fatalf("lexer did not terminate on %q", src)
	})
}
