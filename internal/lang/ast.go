package lang

import (
	"parulel/internal/wm"
)

// Program is a parsed PARULEL source file: template declarations,
// temporal declarations, object rules, meta-rules and initial
// working-memory blocks, in source order.
type Program struct {
	Templates []*TemplateDecl
	TTLs      []*TTLDecl
	Windows   []*WindowDecl
	Rules     []*Rule
	MetaRules []*MetaRule
	Facts     []*FactDecl
}

// TemplateDecl is a `(literalize name attr …)` declaration.
type TemplateDecl struct {
	Pos   Pos
	Name  string
	Attrs []string
}

// TTLDecl is a `(ttl template ticks)` declaration: facts of the template
// expire — are retracted by the engine — a fixed number of logical ticks
// after the temporal clock absorbs them.
type TTLDecl struct {
	Pos   Pos
	Tmpl  string
	Ticks int64
}

// WindowDecl is a `(window name source ^option value …)` declaration of a
// sliding-window aggregate over facts of a source template:
//
//	(window txn-win txn ^key card ^ticks 5 ^val amount)
//
// The options are attribute/constant pairs kept verbatim (the compiler
// interprets them): ^key names the source attribute to group by, exactly
// one of ^ticks (last N logical ticks) or ^last (last K facts per key)
// sets the window extent, and ^val optionally names the numeric source
// attribute aggregated into sum/min/max.
type WindowDecl struct {
	Pos    Pos
	Name   string
	Source string
	Slots  []FactSlot
}

// FactDecl is a top-level `(wm (type ^attr const …) …)` block declaring
// initial working-memory elements.
type FactDecl struct {
	Pos   Pos
	Facts []*Fact
}

// Fact is one initial WME: constant attribute values only.
type Fact struct {
	Pos   Pos
	Type  string
	Slots []FactSlot
}

// FactSlot is one attribute value of an initial fact.
type FactSlot struct {
	Attr string
	Val  wm.Value
}

// Rule is an object-level production:
//
//	(rule name ce… --> action…)
type Rule struct {
	Pos  Pos
	Name string
	LHS  []*CondElem
	RHS  []Action
}

// CondElem is one left-hand-side element. Exactly one of Pattern and Test
// is set. A Pattern element may be negated (`-(…)`) or bound to an element
// variable (`<e> <- (…)`); Test elements (`(test expr)`) are filters over
// previously bound variables.
type CondElem struct {
	Pos     Pos
	Negated bool
	Binder  string // element variable name, "" if unbound
	Pattern *Pattern
	Test    Expr
}

// Pattern matches a WME of a given template: `(type ^attr term …)`.
type Pattern struct {
	Pos   Pos
	Type  string
	Slots []*Slot
}

// Slot is one attribute test within a pattern.
type Slot struct {
	Pos  Pos
	Attr string
	Term Term
}

// Term is a pattern term: ConstTerm, VarTerm, PredTerm or DisjTerm.
type Term interface{ isTerm() }

// ConstTerm matches an attribute equal (strictly) to a constant.
type ConstTerm struct{ Val wm.Value }

// VarTerm binds or tests a rule variable.
type VarTerm struct{ Name string }

// PredTerm applies a comparison to the attribute: `^amount (> 100)` or
// `^id (<> <x>)`. Op is one of = <> < <= > >=; Arg is a ConstTerm or
// VarTerm.
type PredTerm struct {
	Op  string
	Arg Term
}

// DisjTerm matches an attribute equal to any of a set of constants
// (OPS5 `<< a b c >>`).
type DisjTerm struct{ Vals []wm.Value }

func (ConstTerm) isTerm() {}
func (VarTerm) isTerm()   {}
func (PredTerm) isTerm()  {}
func (DisjTerm) isTerm()  {}

// Action is a right-hand-side action: one of MakeAction, ModifyAction,
// RemoveAction, BindAction, WriteAction, HaltAction.
type Action interface{ isAction() }

// MakeAction creates a WME: `(make type ^attr expr …)`.
type MakeAction struct {
	Pos   Pos
	Type  string
	Slots []*ActionSlot
}

// ActionSlot assigns the result of an expression to an attribute.
type ActionSlot struct {
	Pos  Pos
	Attr string
	Expr Expr
}

// ModifyAction removes the designated matched element and re-makes it with
// the given attributes changed: `(modify <e> ^attr expr …)` or
// `(modify 2 ^attr expr …)` (1-based CE index).
type ModifyAction struct {
	Pos    Pos
	Target Designator
	Slots  []*ActionSlot
}

// RemoveAction deletes designated matched elements.
type RemoveAction struct {
	Pos     Pos
	Targets []Designator
}

// BindAction binds a new rule variable to an expression value, visible to
// subsequent actions: `(bind <x> expr)`.
type BindAction struct {
	Pos  Pos
	Var  string
	Expr Expr
}

// WriteAction prints its evaluated arguments: `(write "x=" <x> (crlf))`.
type WriteAction struct {
	Pos  Pos
	Args []Expr
}

// HaltAction stops the engine after the current cycle.
type HaltAction struct{ Pos Pos }

func (*MakeAction) isAction()   {}
func (*ModifyAction) isAction() {}
func (*RemoveAction) isAction() {}
func (*BindAction) isAction()   {}
func (*WriteAction) isAction()  {}
func (*HaltAction) isAction()   {}

// Designator names a matched LHS element, either by 1-based condition
// element index (Var == "") or by element variable.
type Designator struct {
	Pos   Pos
	Index int
	Var   string
}

// Expr is an expression: ConstExpr, VarExpr or CallExpr.
type Expr interface{ isExpr() }

// ConstExpr is a literal value.
type ConstExpr struct{ Val wm.Value }

// VarExpr references a rule variable (object rules) or meta-variable
// (meta-rules).
type VarExpr struct {
	Pos  Pos
	Name string
}

// CallExpr applies a builtin: arithmetic (+ - * div mod), comparison
// (= <> < <= > >=), boolean (and or not), min/max/abs, (crlf), (tabto …),
// and in meta-rules (tag <i>) and (rulename <i>).
type CallExpr struct {
	Pos  Pos
	Op   string
	Args []Expr
}

func (*ConstExpr) isExpr() {}
func (*VarExpr) isExpr()   {}
func (*CallExpr) isExpr()  {}

// MetaRule is a PARULEL redaction meta-rule:
//
//	(metarule name [<i> (rulename ^var term …)]… (test expr)… --> (redact <i>)…)
//
// Instantiation patterns match *distinct* instantiations of the named
// object rule; slot attributes refer to the object rule's variable names.
type MetaRule struct {
	Pos      Pos
	Name     string
	Patterns []*InstPattern
	Tests    []Expr
	Redacts  []string // meta-variables of instantiations to redact
}

// InstPattern matches one instantiation in the conflict set.
type InstPattern struct {
	Pos      Pos
	Var      string // meta-variable bound to the instantiation
	RuleName string // object rule whose instantiations are matched
	Slots    []*Slot
}
