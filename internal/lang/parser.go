package lang

import (
	"parulel/internal/wm"
)

// Parser is a recursive-descent parser for PARULEL source.
//
// Grammar (EBNF, tokens in caps):
//
//	program    = { decl } .
//	decl       = "(" ( literalize | ttl | window | rule | metarule | wmblock ) ")" .
//	literalize = "literalize" SYM { SYM } .
//	ttl        = "ttl" SYM INT .
//	window     = "window" SYM SYM { ATTR constant } .
//	wmblock    = "wm" { "(" SYM { ATTR constant } ")" } .
//	rule       = "rule" SYM { condElem } ARROW { action } .
//	condElem   = [ "-" ] "(" pattern-or-test ")"
//	           | VAR "<-" "(" pattern ")" .
//	pattern    = SYM { ATTR term } .
//	term       = constant | VAR | "(" predOp ( constant | VAR ) ")"
//	           | "<<" constant { constant } ">>" .
//	predOp     = "=" | "<>" | "<" | "<=" | ">" | ">=" .
//	action     = "(" ( make | modify | remove | bind | write | halt ) ")" .
//	expr       = constant | VAR | "(" SYM { expr } ")" .
//	metarule   = "metarule" SYM { instPat | testElem } ARROW { redact } .
//	instPat    = "[" VAR "(" SYM { ATTR term } ")" "]" .
//	redact     = "(" "redact" VAR { VAR } ")" .
//	constant   = INT | FLOAT | STRING | SYM .   // SYM "nil" denotes nil
type Parser struct {
	lx  *Lexer
	tok Token
}

// Parse parses a complete PARULEL source file.
func Parse(src string) (*Program, error) {
	p := &Parser{lx: NewLexer(src)}
	if err := p.next(); err != nil {
		return nil, err
	}
	prog := &Program{}
	for p.tok.Kind != TokEOF {
		if err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		kw, err := p.symbol("declaration keyword")
		if err != nil {
			return nil, err
		}
		switch kw.Text {
		case "literalize":
			d, err := p.parseLiteralize(kw.Pos)
			if err != nil {
				return nil, err
			}
			prog.Templates = append(prog.Templates, d)
		case "rule", "p": // `p` is the OPS5 spelling, accepted as an alias
			r, err := p.parseRule(kw.Pos)
			if err != nil {
				return nil, err
			}
			prog.Rules = append(prog.Rules, r)
		case "metarule":
			m, err := p.parseMetaRule(kw.Pos)
			if err != nil {
				return nil, err
			}
			prog.MetaRules = append(prog.MetaRules, m)
		case "wm":
			f, err := p.parseWMBlock(kw.Pos)
			if err != nil {
				return nil, err
			}
			prog.Facts = append(prog.Facts, f)
		case "ttl":
			d, err := p.parseTTL(kw.Pos)
			if err != nil {
				return nil, err
			}
			prog.TTLs = append(prog.TTLs, d)
		case "window":
			d, err := p.parseWindow(kw.Pos)
			if err != nil {
				return nil, err
			}
			prog.Windows = append(prog.Windows, d)
		default:
			return nil, errf(kw.Pos, "parse: unknown declaration %q (want literalize, ttl, window, rule, metarule or wm)", kw.Text)
		}
	}
	return prog, nil
}

func (p *Parser) next() error {
	t, err := p.lx.Next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

// expect consumes a token of the given kind.
func (p *Parser) expect(k TokKind) error {
	if p.tok.Kind != k {
		return errf(p.tok.Pos, "parse: expected %s, found %s", k, p.tok)
	}
	return p.next()
}

// symbol consumes and returns a symbol token.
func (p *Parser) symbol(what string) (Token, error) {
	if p.tok.Kind != TokSym {
		return Token{}, errf(p.tok.Pos, "parse: expected %s (a symbol), found %s", what, p.tok)
	}
	t := p.tok
	return t, p.next()
}

func (p *Parser) parseLiteralize(pos Pos) (*TemplateDecl, error) {
	name, err := p.symbol("template name")
	if err != nil {
		return nil, err
	}
	d := &TemplateDecl{Pos: pos, Name: name.Text}
	for p.tok.Kind != TokRParen {
		a, err := p.symbol("attribute name")
		if err != nil {
			return nil, err
		}
		d.Attrs = append(d.Attrs, a.Text)
	}
	if len(d.Attrs) == 0 {
		return nil, errf(pos, "parse: literalize %s: at least one attribute required", d.Name)
	}
	return d, p.next() // consume ')'
}

func (p *Parser) parseTTL(pos Pos) (*TTLDecl, error) {
	name, err := p.symbol("template name")
	if err != nil {
		return nil, err
	}
	if p.tok.Kind != TokInt {
		return nil, errf(p.tok.Pos, "parse: ttl %s: expected an integer tick count, found %s", name.Text, p.tok)
	}
	d := &TTLDecl{Pos: pos, Tmpl: name.Text, Ticks: p.tok.Int}
	if err := p.next(); err != nil {
		return nil, err
	}
	return d, p.expect(TokRParen)
}

func (p *Parser) parseWindow(pos Pos) (*WindowDecl, error) {
	name, err := p.symbol("window name")
	if err != nil {
		return nil, err
	}
	src, err := p.symbol("source template name")
	if err != nil {
		return nil, err
	}
	d := &WindowDecl{Pos: pos, Name: name.Text, Source: src.Text}
	for p.tok.Kind != TokRParen {
		if p.tok.Kind != TokAttr {
			return nil, errf(p.tok.Pos, "parse: expected ^option in window %s, found %s", d.Name, p.tok)
		}
		attr := p.tok.Text
		if err := p.next(); err != nil {
			return nil, err
		}
		v, err := p.constant()
		if err != nil {
			return nil, err
		}
		d.Slots = append(d.Slots, FactSlot{Attr: attr, Val: v})
	}
	return d, p.next()
}

func (p *Parser) parseWMBlock(pos Pos) (*FactDecl, error) {
	d := &FactDecl{Pos: pos}
	for p.tok.Kind != TokRParen {
		if err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		typ, err := p.symbol("template name")
		if err != nil {
			return nil, err
		}
		f := &Fact{Pos: typ.Pos, Type: typ.Text}
		for p.tok.Kind != TokRParen {
			if p.tok.Kind != TokAttr {
				return nil, errf(p.tok.Pos, "parse: expected ^attribute in wm fact, found %s", p.tok)
			}
			attr := p.tok.Text
			if err := p.next(); err != nil {
				return nil, err
			}
			v, err := p.constant()
			if err != nil {
				return nil, err
			}
			f.Slots = append(f.Slots, FactSlot{Attr: attr, Val: v})
		}
		if err := p.next(); err != nil { // consume ')'
			return nil, err
		}
		d.Facts = append(d.Facts, f)
	}
	return d, p.next()
}

// constant consumes a literal value token. The symbol `nil` denotes the
// nil value.
func (p *Parser) constant() (wm.Value, error) {
	t := p.tok
	switch t.Kind {
	case TokInt:
		return wm.Int(t.Int), p.next()
	case TokFloat:
		return wm.Float(t.Flt), p.next()
	case TokString:
		return wm.Str(t.Text), p.next()
	case TokSym:
		if t.Text == "nil" {
			return wm.Nil(), p.next()
		}
		return wm.Sym(t.Text), p.next()
	default:
		return wm.Value{}, errf(t.Pos, "parse: expected a constant, found %s", t)
	}
}

func (p *Parser) parseRule(pos Pos) (*Rule, error) {
	name, err := p.symbol("rule name")
	if err != nil {
		return nil, err
	}
	r := &Rule{Pos: pos, Name: name.Text}
	// LHS until the arrow.
	for p.tok.Kind != TokArrow {
		ce, err := p.parseCondElem()
		if err != nil {
			return nil, err
		}
		r.LHS = append(r.LHS, ce)
	}
	if err := p.next(); err != nil { // consume '-->'
		return nil, err
	}
	for p.tok.Kind != TokRParen {
		a, err := p.parseAction()
		if err != nil {
			return nil, err
		}
		r.RHS = append(r.RHS, a)
	}
	if len(r.LHS) == 0 {
		return nil, errf(pos, "parse: rule %s has an empty left-hand side", r.Name)
	}
	return r, p.next()
}

func (p *Parser) parseCondElem() (*CondElem, error) {
	ce := &CondElem{Pos: p.tok.Pos}
	switch {
	case p.tok.Kind == TokSym && p.tok.Text == "-":
		ce.Negated = true
		if err := p.next(); err != nil {
			return nil, err
		}
	case p.tok.Kind == TokVar:
		ce.Binder = p.tok.Text
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.tok.Kind != TokSym || p.tok.Text != "<-" {
			return nil, errf(p.tok.Pos, "parse: expected '<-' after element variable <%s>, found %s", ce.Binder, p.tok)
		}
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	if err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	head, err := p.symbol("pattern type or 'test'")
	if err != nil {
		return nil, err
	}
	if head.Text == "test" {
		if ce.Negated || ce.Binder != "" {
			return nil, errf(head.Pos, "parse: (test …) elements cannot be negated or bound")
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Test = e
		return ce, p.expect(TokRParen)
	}
	if ce.Negated && ce.Binder != "" {
		return nil, errf(ce.Pos, "parse: a negated element cannot be bound to an element variable")
	}
	pat, err := p.parsePatternBody(head)
	if err != nil {
		return nil, err
	}
	ce.Pattern = pat
	return ce, nil
}

// parsePatternBody parses `^attr term …)` after the type symbol has been
// consumed, including the closing paren.
func (p *Parser) parsePatternBody(typ Token) (*Pattern, error) {
	pat := &Pattern{Pos: typ.Pos, Type: typ.Text}
	for p.tok.Kind != TokRParen {
		if p.tok.Kind != TokAttr {
			return nil, errf(p.tok.Pos, "parse: expected ^attribute in pattern (%s …), found %s", typ.Text, p.tok)
		}
		slot := &Slot{Pos: p.tok.Pos, Attr: p.tok.Text}
		if err := p.next(); err != nil {
			return nil, err
		}
		term, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		slot.Term = term
		pat.Slots = append(pat.Slots, slot)
	}
	return pat, p.next()
}

func isPredOp(s string) bool {
	switch s {
	case "=", "<>", "<", "<=", ">", ">=":
		return true
	}
	return false
}

func (p *Parser) parseTerm() (Term, error) {
	switch p.tok.Kind {
	case TokVar:
		t := VarTerm{Name: p.tok.Text}
		return t, p.next()
	case TokSym:
		if p.tok.Text == "<<" {
			pos := p.tok.Pos
			if err := p.next(); err != nil {
				return nil, err
			}
			var d DisjTerm
			for !(p.tok.Kind == TokSym && p.tok.Text == ">>") {
				v, err := p.constant()
				if err != nil {
					return nil, err
				}
				d.Vals = append(d.Vals, v)
			}
			if len(d.Vals) == 0 {
				return nil, errf(pos, "parse: empty disjunction << >>")
			}
			return d, p.next() // consume '>>'
		}
		v, err := p.constant()
		if err != nil {
			return nil, err
		}
		return ConstTerm{Val: v}, nil
	case TokLParen:
		pos := p.tok.Pos
		if err := p.next(); err != nil {
			return nil, err
		}
		op, err := p.symbol("predicate operator")
		if err != nil {
			return nil, err
		}
		if !isPredOp(op.Text) {
			return nil, errf(op.Pos, "parse: %q is not a predicate operator (want = <> < <= > >=)", op.Text)
		}
		arg, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		if _, nested := arg.(PredTerm); nested {
			return nil, errf(pos, "parse: predicate argument must be a constant or variable")
		}
		return PredTerm{Op: op.Text, Arg: arg}, p.expect(TokRParen)
	default:
		v, err := p.constant()
		if err != nil {
			return nil, err
		}
		return ConstTerm{Val: v}, nil
	}
}

func (p *Parser) parseAction() (Action, error) {
	if err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	op, err := p.symbol("action name")
	if err != nil {
		return nil, err
	}
	switch op.Text {
	case "make":
		typ, err := p.symbol("template name")
		if err != nil {
			return nil, err
		}
		slots, err := p.parseActionSlots()
		if err != nil {
			return nil, err
		}
		return &MakeAction{Pos: op.Pos, Type: typ.Text, Slots: slots}, p.expect(TokRParen)
	case "modify":
		d, err := p.parseDesignator()
		if err != nil {
			return nil, err
		}
		slots, err := p.parseActionSlots()
		if err != nil {
			return nil, err
		}
		if len(slots) == 0 {
			return nil, errf(op.Pos, "parse: modify with no attribute changes")
		}
		return &ModifyAction{Pos: op.Pos, Target: d, Slots: slots}, p.expect(TokRParen)
	case "remove":
		a := &RemoveAction{Pos: op.Pos}
		for p.tok.Kind != TokRParen {
			d, err := p.parseDesignator()
			if err != nil {
				return nil, err
			}
			a.Targets = append(a.Targets, d)
		}
		if len(a.Targets) == 0 {
			return nil, errf(op.Pos, "parse: remove with no targets")
		}
		return a, p.next()
	case "bind":
		if p.tok.Kind != TokVar {
			return nil, errf(p.tok.Pos, "parse: bind expects a variable, found %s", p.tok)
		}
		v := p.tok.Text
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.tok.Kind == TokRParen {
			// `(bind <x>)` with no expression: gensym (OPS5 behaviour —
			// bind a fresh unique symbol).
			return &BindAction{Pos: op.Pos, Var: v}, p.next()
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &BindAction{Pos: op.Pos, Var: v, Expr: e}, p.expect(TokRParen)
	case "write":
		a := &WriteAction{Pos: op.Pos}
		for p.tok.Kind != TokRParen {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			a.Args = append(a.Args, e)
		}
		return a, p.next()
	case "halt":
		return &HaltAction{Pos: op.Pos}, p.expect(TokRParen)
	default:
		return nil, errf(op.Pos, "parse: unknown action %q", op.Text)
	}
}

func (p *Parser) parseActionSlots() ([]*ActionSlot, error) {
	var slots []*ActionSlot
	for p.tok.Kind == TokAttr {
		s := &ActionSlot{Pos: p.tok.Pos, Attr: p.tok.Text}
		if err := p.next(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Expr = e
		slots = append(slots, s)
	}
	return slots, nil
}

func (p *Parser) parseDesignator() (Designator, error) {
	switch p.tok.Kind {
	case TokInt:
		d := Designator{Pos: p.tok.Pos, Index: int(p.tok.Int)}
		if d.Index < 1 {
			return d, errf(p.tok.Pos, "parse: element index must be >= 1, got %d", d.Index)
		}
		return d, p.next()
	case TokVar:
		d := Designator{Pos: p.tok.Pos, Var: p.tok.Text}
		return d, p.next()
	default:
		return Designator{}, errf(p.tok.Pos, "parse: expected an element index or variable, found %s", p.tok)
	}
}

func (p *Parser) parseExpr() (Expr, error) {
	switch p.tok.Kind {
	case TokVar:
		e := &VarExpr{Pos: p.tok.Pos, Name: p.tok.Text}
		return e, p.next()
	case TokLParen:
		pos := p.tok.Pos
		if err := p.next(); err != nil {
			return nil, err
		}
		op, err := p.symbol("builtin name")
		if err != nil {
			return nil, err
		}
		call := &CallExpr{Pos: pos, Op: op.Text}
		for p.tok.Kind != TokRParen {
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, arg)
		}
		return call, p.next()
	default:
		v, err := p.constant()
		if err != nil {
			return nil, err
		}
		return &ConstExpr{Val: v}, nil
	}
}

func (p *Parser) parseMetaRule(pos Pos) (*MetaRule, error) {
	name, err := p.symbol("metarule name")
	if err != nil {
		return nil, err
	}
	m := &MetaRule{Pos: pos, Name: name.Text}
	for p.tok.Kind != TokArrow {
		switch p.tok.Kind {
		case TokLBrack:
			ip, err := p.parseInstPattern()
			if err != nil {
				return nil, err
			}
			m.Patterns = append(m.Patterns, ip)
		case TokLParen:
			if err := p.next(); err != nil {
				return nil, err
			}
			kw, err := p.symbol("'test'")
			if err != nil {
				return nil, err
			}
			if kw.Text != "test" {
				return nil, errf(kw.Pos, "parse: metarule %s: only [<i> (rule …)] patterns and (test …) allowed on the LHS, found (%s …)", m.Name, kw.Text)
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			m.Tests = append(m.Tests, e)
			if err := p.expect(TokRParen); err != nil {
				return nil, err
			}
		default:
			return nil, errf(p.tok.Pos, "parse: metarule %s: expected '[', '(' or '-->', found %s", m.Name, p.tok)
		}
	}
	if err := p.next(); err != nil { // consume '-->'
		return nil, err
	}
	for p.tok.Kind != TokRParen {
		if err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		op, err := p.symbol("'redact'")
		if err != nil {
			return nil, err
		}
		if op.Text != "redact" {
			return nil, errf(op.Pos, "parse: metarule %s: the only meta action is redact, found %q", m.Name, op.Text)
		}
		n := 0
		for p.tok.Kind == TokVar {
			m.Redacts = append(m.Redacts, p.tok.Text)
			n++
			if err := p.next(); err != nil {
				return nil, err
			}
		}
		if n == 0 {
			return nil, errf(op.Pos, "parse: redact expects at least one instantiation variable")
		}
		if err := p.expect(TokRParen); err != nil {
			return nil, err
		}
	}
	if len(m.Patterns) == 0 {
		return nil, errf(pos, "parse: metarule %s has no instantiation patterns", m.Name)
	}
	if len(m.Redacts) == 0 {
		return nil, errf(pos, "parse: metarule %s redacts nothing", m.Name)
	}
	return m, p.next()
}

func (p *Parser) parseInstPattern() (*InstPattern, error) {
	pos := p.tok.Pos
	if err := p.next(); err != nil { // consume '['
		return nil, err
	}
	if p.tok.Kind != TokVar {
		return nil, errf(p.tok.Pos, "parse: instantiation pattern must start with a meta-variable, found %s", p.tok)
	}
	ip := &InstPattern{Pos: pos, Var: p.tok.Text}
	if err := p.next(); err != nil {
		return nil, err
	}
	if err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	rn, err := p.symbol("object rule name")
	if err != nil {
		return nil, err
	}
	ip.RuleName = rn.Text
	for p.tok.Kind != TokRParen {
		if p.tok.Kind != TokAttr {
			return nil, errf(p.tok.Pos, "parse: expected ^variable-name in instantiation pattern, found %s", p.tok)
		}
		slot := &Slot{Pos: p.tok.Pos, Attr: p.tok.Text}
		if err := p.next(); err != nil {
			return nil, err
		}
		term, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		slot.Term = term
		ip.Slots = append(ip.Slots, slot)
	}
	if err := p.next(); err != nil { // consume ')'
		return nil, err
	}
	return ip, p.expect(TokRBrack)
}
