// Package load is a mixed-traffic generator for paruleld: N client
// goroutines spread assert/batch/run/snapshot requests over a set of
// sessions for a fixed duration and report throughput plus latency
// quantiles per operation. It drives the public HTTP API only — the same
// surface real clients use — so its numbers are end-to-end (routing, JSON,
// admission control, WAL, engine), not engine microbenchmarks.
//
// It is used three ways: by cmd/parload (standalone CLI), by
// `parbench -serve` (recording server-level numbers into BENCH_*.json),
// and by the server's soak tests.
package load

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"parulel/internal/stats"
)

// DefaultSource is the workload program: each asserted item fires the
// touch rule exactly once, so run cost scales with the asserted volume and
// never spins unboundedly.
const DefaultSource = `
(literalize item k state)
(rule touch
  <i> <- (item ^k <k> ^state new)
-->
  (modify <i> ^state done))
`

// Mix weights the operation kinds. A zero weight disables the kind; an
// all-zero Mix defaults to {Assert: 4, Batch: 2, Run: 1, Snapshot: 1}.
type Mix struct {
	Assert   int `json:"assert"`   // single-fact POST /facts
	Batch    int `json:"batch"`    // POST /batch with BatchSize asserts
	Run      int `json:"run"`      // POST /run
	Snapshot int `json:"snapshot"` // GET /snapshot
}

func (m Mix) total() int { return m.Assert + m.Batch + m.Run + m.Snapshot }

// Config parameterizes one load run.
type Config struct {
	BaseURL     string        `json:"base_url"`
	Sessions    int           `json:"sessions"`    // sessions created and targeted; default 4
	Concurrency int           `json:"concurrency"` // client goroutines; default 8
	Duration    time.Duration `json:"-"`
	Mix         Mix           `json:"mix"`
	BatchSize   int           `json:"batch_size"` // facts per batch op; default 16
	Source      string        `json:"-"`          // program source; default DefaultSource
	Workers     int           `json:"workers,omitempty"`
	RunTimeout  time.Duration `json:"-"`
	Seed        int64         `json:"seed"`
	Client      *http.Client  `json:"-"`
}

func (c Config) withDefaults() Config {
	if c.Sessions <= 0 {
		c.Sessions = 4
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.Mix.total() <= 0 {
		c.Mix = Mix{Assert: 4, Batch: 2, Run: 1, Snapshot: 1}
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 16
	}
	if c.Source == "" {
		c.Source = DefaultSource
	}
	if c.RunTimeout <= 0 {
		c.RunTimeout = 10 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	return c
}

// OpStats aggregates one operation kind's outcomes.
type OpStats struct {
	Count       int     `json:"count"`
	Errors      int     `json:"errors"`       // non-2xx other than 429
	Rejected429 int     `json:"rejected_429"` // backpressure fast-fails
	P50MS       float64 `json:"p50_ms"`
	P95MS       float64 `json:"p95_ms"`
	P99MS       float64 `json:"p99_ms"`
	MaxMS       float64 `json:"max_ms"`
}

// Report is the JSON result document.
type Report struct {
	Config          Config             `json:"config"`
	DurationMS      int64              `json:"duration_ms"`
	Requests        int                `json:"requests"`
	RequestsPerSec  float64            `json:"requests_per_sec"`
	Mutations       int                `json:"mutations"` // facts asserted (single + batched)
	MutationsPerSec float64            `json:"mutations_per_sec"`
	Errors5xx       int                `json:"errors_5xx"`
	Rejected429     int                `json:"rejected_429"`
	Ops             map[string]OpStats `json:"ops"`
	StatusCounts    map[string]int     `json:"status_counts"`
}

// sample is one completed request, recorded lock-free per worker and
// merged at the end.
type sample struct {
	op      string
	status  int
	latency time.Duration
	facts   int // mutations this request asserted (0 unless 2xx)
}

// Run executes the load shape against a live server and aggregates the
// results. It creates Config.Sessions fresh sessions, drives traffic for
// Config.Duration, and leaves the sessions in place (the server's LRU/TTL
// owns their lifecycle).
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()

	sessions := make([]string, cfg.Sessions)
	for i := range sessions {
		id, err := createSession(ctx, cfg)
		if err != nil {
			return nil, fmt.Errorf("creating session %d: %w", i, err)
		}
		sessions[i] = id
	}

	deadline, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	perWorker := make([][]sample, cfg.Concurrency)
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
			var local []sample
			for n := 0; ; n++ {
				if deadline.Err() != nil {
					break
				}
				sessID := sessions[rng.Intn(len(sessions))]
				op := pick(cfg.Mix, rng)
				// Unique fact keys per worker so lost mutations are
				// detectable by counting (soak tests rely on this).
				key := fmt.Sprintf("w%d-%d", w, n)
				s := doOp(deadline, cfg, op, sessID, key)
				if s.status != 0 {
					local = append(local, s)
				}
			}
			perWorker[w] = local
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(t0)

	rep := &Report{
		Config:       cfg,
		DurationMS:   elapsed.Milliseconds(),
		Ops:          make(map[string]OpStats),
		StatusCounts: make(map[string]int),
	}
	latencies := make(map[string][]time.Duration)
	counts := make(map[string]*OpStats)
	for _, local := range perWorker {
		for _, s := range local {
			rep.Requests++
			rep.StatusCounts[fmt.Sprint(s.status)]++
			st := counts[s.op]
			if st == nil {
				st = &OpStats{}
				counts[s.op] = st
			}
			st.Count++
			switch {
			case s.status == http.StatusTooManyRequests:
				st.Rejected429++
				rep.Rejected429++
			case s.status >= 500:
				st.Errors++
				rep.Errors5xx++
			case s.status >= 400:
				st.Errors++
			default:
				rep.Mutations += s.facts
			}
			latencies[s.op] = append(latencies[s.op], s.latency)
		}
	}
	for op, st := range counts {
		ds := latencies[op]
		st.P50MS = ms(stats.Quantile(ds, 0.50))
		st.P95MS = ms(stats.Quantile(ds, 0.95))
		st.P99MS = ms(stats.Quantile(ds, 0.99))
		st.MaxMS = ms(stats.Quantile(ds, 1))
		rep.Ops[op] = *st
	}
	secs := elapsed.Seconds()
	if secs > 0 {
		rep.RequestsPerSec = float64(rep.Requests) / secs
		rep.MutationsPerSec = float64(rep.Mutations) / secs
	}
	return rep, nil
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// pick draws an operation kind according to the mix weights.
func pick(m Mix, rng *rand.Rand) string {
	n := rng.Intn(m.total())
	switch {
	case n < m.Assert:
		return "assert"
	case n < m.Assert+m.Batch:
		return "batch"
	case n < m.Assert+m.Batch+m.Run:
		return "run"
	default:
		return "snapshot"
	}
}

// doOp issues one request. A zero-status sample means the request never
// completed (context over mid-flight) and is not counted.
func doOp(ctx context.Context, cfg Config, op, sessID, key string) sample {
	base := strings.TrimSuffix(cfg.BaseURL, "/") + "/api/v1/sessions/" + sessID
	var (
		method = http.MethodPost
		url    string
		body   any
		facts  int
	)
	switch op {
	case "assert":
		url = base + "/facts"
		body = map[string]any{"facts": []any{fact(key)}}
		facts = 1
	case "batch":
		fs := make([]any, cfg.BatchSize)
		for i := range fs {
			fs[i] = fact(fmt.Sprintf("%s-%d", key, i))
		}
		url = base + "/batch"
		body = map[string]any{"ops": []any{map[string]any{"op": "assert", "facts": fs}}}
		facts = cfg.BatchSize
	case "run":
		url = base + "/run"
		body = map[string]any{"timeout_ms": cfg.RunTimeout.Milliseconds()}
	case "snapshot":
		method = http.MethodGet
		url = base + "/snapshot"
	}
	t0 := time.Now()
	status, err := do(ctx, cfg.Client, method, url, body, nil)
	if err != nil {
		// Transport failures count as 599 so "zero 5xx" smoke checks catch
		// a flapping server, not just one answering 500s.
		return sample{op: op, status: 599, latency: time.Since(t0)}
	}
	if status == 0 {
		return sample{} // run ended mid-flight; not an observation
	}
	s := sample{op: op, status: status, latency: time.Since(t0)}
	if status < 300 {
		s.facts = facts
	}
	return s
}

// fact renders one workload item in wire form.
func fact(key string) map[string]any {
	return map[string]any{"template": "item", "fields": map[string]any{"k": key, "state": "new"}}
}

func createSession(ctx context.Context, cfg Config) (string, error) {
	var out struct {
		ID string `json:"id"`
	}
	req := map[string]any{"source": cfg.Source}
	if cfg.Workers > 0 {
		req["workers"] = cfg.Workers
	}
	status, err := do(ctx, cfg.Client, http.MethodPost, strings.TrimSuffix(cfg.BaseURL, "/")+"/api/v1/sessions", req, &out)
	if err != nil {
		return "", err
	}
	if status != http.StatusCreated {
		return "", fmt.Errorf("unexpected status %d", status)
	}
	return out.ID, nil
}

// do issues one JSON request, measuring nothing itself — callers time it.
// The response body is always drained so connections are reused.
func do(ctx context.Context, client *http.Client, method, url string, in, out any) (int, error) {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return 0, err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return 0, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			return 0, nil
		}
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}
