// Package load is a mixed-traffic generator for paruleld: N client
// goroutines spread assert/batch/run/snapshot requests over a set of
// sessions for a fixed duration and report throughput plus latency
// quantiles per operation. It drives the public HTTP API only — the same
// surface real clients use — so its numbers are end-to-end (routing, JSON,
// admission control, WAL, engine), not engine microbenchmarks.
//
// It is used three ways: by cmd/parload (standalone CLI), by
// `parbench -serve` (recording server-level numbers into BENCH_*.json),
// and by the server's soak tests.
package load

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"parulel/internal/stats"
)

// DefaultSource is the workload program: each asserted item fires the
// touch rule exactly once, so run cost scales with the asserted volume and
// never spins unboundedly.
const DefaultSource = `
(literalize item k state)
(rule touch
  <i> <- (item ^k <k> ^state new)
-->
  (modify <i> ^state done))
`

// StreamSource is the workload program for stream traffic: TTL'd event
// facts (per-fact overrides also work against it) and a per-sensor
// sliding-window aggregate, so continuous ingest exercises expiry and
// window maintenance, not just insertion.
const StreamSource = `
(literalize item k state)
(literalize event k sensor val state)
(ttl event 8)
(window evwin event ^key sensor ^ticks 8 ^val val)
(rule touch
  <i> <- (item ^k <k> ^state new)
-->
  (modify <i> ^state done))
(rule touch-event
  <e> <- (event ^k <k> ^state new)
-->
  (modify <e> ^state done))
`

// Mix weights the operation kinds. A zero weight disables the kind; an
// all-zero Mix defaults to {Assert: 4, Batch: 2, Run: 1, Snapshot: 1}.
type Mix struct {
	Assert   int `json:"assert"`   // single-fact POST /facts
	Batch    int `json:"batch"`    // POST /batch with BatchSize asserts
	Run      int `json:"run"`      // POST /run
	Snapshot int `json:"snapshot"` // GET /snapshot
	Stream   int `json:"stream"`   // POST /stream with StreamFrames NDJSON frames
}

func (m Mix) total() int { return m.Assert + m.Batch + m.Run + m.Snapshot + m.Stream }

// Config parameterizes one load run.
type Config struct {
	BaseURL string `json:"base_url,omitempty"`
	// BaseURLs lists every endpoint traffic spreads over (cluster mode).
	// Sessions are created round-robin across endpoints and pin to the
	// endpoint that last answered them: a 307 ownership redirect re-pins,
	// and a transport error fails the request over to the next endpoint.
	// Empty falls back to BaseURL.
	BaseURLs    []string      `json:"base_urls,omitempty"`
	Sessions    int           `json:"sessions"`    // sessions created and targeted; default 4
	Concurrency int           `json:"concurrency"` // client goroutines; default 8
	Duration    time.Duration `json:"-"`
	Mix         Mix           `json:"mix"`
	BatchSize   int           `json:"batch_size"` // facts per batch op; default 16
	// StreamFrames is the number of NDJSON frames per stream request;
	// each frame carries BatchSize facts, ticks the temporal clock once,
	// and the last frame runs the engine. Default 8.
	StreamFrames int `json:"stream_frames,omitempty"`
	// StreamTTL is the per-fact TTL override sent with streamed facts;
	// 0 sends none (the template default applies). Default 0.
	StreamTTL  int64         `json:"stream_ttl,omitempty"`
	Source     string        `json:"-"` // program source; default DefaultSource (StreamSource when the mix streams)
	Workers    int           `json:"workers,omitempty"`
	RunTimeout time.Duration `json:"-"`
	Seed       int64         `json:"seed"`
	Client     *http.Client  `json:"-"`
}

func (c Config) withDefaults() Config {
	if len(c.BaseURLs) == 0 {
		c.BaseURLs = []string{c.BaseURL}
	}
	for i, b := range c.BaseURLs {
		c.BaseURLs[i] = strings.TrimSuffix(b, "/")
	}
	if c.Sessions <= 0 {
		c.Sessions = 4
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.Mix.total() <= 0 {
		c.Mix = Mix{Assert: 4, Batch: 2, Run: 1, Snapshot: 1}
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 16
	}
	if c.StreamFrames <= 0 {
		c.StreamFrames = 8
	}
	if c.Source == "" {
		if c.Mix.Stream > 0 {
			c.Source = StreamSource
		} else {
			c.Source = DefaultSource
		}
	}
	if c.RunTimeout <= 0 {
		c.RunTimeout = 10 * time.Second
	}
	if c.Client == nil {
		// Redirects are handled by the workers themselves (they cache the
		// owner endpoint per session), so the client must surface the 307
		// instead of silently following it.
		c.Client = &http.Client{
			Timeout:       30 * time.Second,
			CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse },
		}
	}
	return c
}

// OpStats aggregates one operation kind's outcomes.
type OpStats struct {
	Count       int     `json:"count"`
	Errors      int     `json:"errors"`       // non-2xx other than 429 and transport failures
	Rejected429 int     `json:"rejected_429"` // backpressure fast-fails
	Transport   int     `json:"transport_errors,omitempty"`
	P50MS       float64 `json:"p50_ms"`
	P95MS       float64 `json:"p95_ms"`
	P99MS       float64 `json:"p99_ms"`
	MaxMS       float64 `json:"max_ms"`
}

// StageStats aggregates one server-side stage's time across requests, as
// reported by the Server-Timing response header. Quantiles are over the
// per-request stage durations (requests that skipped the stage do not
// contribute).
type StageStats struct {
	Count   int     `json:"count"`
	TotalMS float64 `json:"total_ms"`
	P50MS   float64 `json:"p50_ms"`
	P95MS   float64 `json:"p95_ms"`
	P99MS   float64 `json:"p99_ms"`
	MaxMS   float64 `json:"max_ms"`
}

// Report is the JSON result document.
type Report struct {
	Config          Config             `json:"config"`
	DurationMS      int64              `json:"duration_ms"`
	Requests        int                `json:"requests"`
	RequestsPerSec  float64            `json:"requests_per_sec"`
	Mutations       int                `json:"mutations"` // facts asserted (single + batched)
	MutationsPerSec float64            `json:"mutations_per_sec"`
	Errors5xx       int                `json:"errors_5xx"`
	Rejected429     int                `json:"rejected_429"`
	TransportErrors int                `json:"transport_errors"` // connection-level failures, counted apart from 5xx
	Retries         int                `json:"retries"`          // failover re-sends after a transport error
	Redirects       int                `json:"redirects"`        // 307 ownership redirects followed
	Ops             map[string]OpStats `json:"ops"`
	// Stages breaks request latency into the server's traced stages
	// (queue, wal, fsync, repl, run, …) parsed from Server-Timing headers.
	Stages       map[string]StageStats `json:"stages,omitempty"`
	StatusCounts map[string]int        `json:"status_counts"`
}

// parseServerTiming parses a Server-Timing header value ("wal;dur=1.2,
// run;dur=3.4") into per-stage durations, nil when absent or unparsable.
func parseServerTiming(h string) map[string]time.Duration {
	if h == "" {
		return nil
	}
	var out map[string]time.Duration
	for _, part := range strings.Split(h, ",") {
		fields := strings.Split(strings.TrimSpace(part), ";")
		if len(fields) < 2 || fields[0] == "" {
			continue
		}
		for _, f := range fields[1:] {
			f = strings.TrimSpace(f)
			if !strings.HasPrefix(f, "dur=") {
				continue
			}
			var msVal float64
			if _, err := fmt.Sscanf(f[len("dur="):], "%g", &msVal); err != nil {
				continue
			}
			if out == nil {
				out = make(map[string]time.Duration, 4)
			}
			out[fields[0]] += time.Duration(msVal * float64(time.Millisecond))
		}
	}
	return out
}

// statusTransport is the synthetic status recorded when a request never
// reached a server (connection refused, reset, client timeout). Kept out
// of the 5xx bucket: during a deliberate node kill these are expected,
// while a 5xx from a live server never is.
const statusTransport = 599

// sample is one completed request, recorded lock-free per worker and
// merged at the end.
type sample struct {
	op        string
	status    int
	latency   time.Duration
	facts     int // mutations this request asserted (0 unless 2xx)
	retries   int // transport-failover re-sends within this request
	redirects int // 307s followed within this request
	// stages is the server-side stage breakdown from the response's
	// Server-Timing header; nil when the server sent none.
	stages map[string]time.Duration
}

// router maps each session to its current home endpoint. New sessions
// round-robin across the base URLs; a 307 or a failover re-pins.
type router struct {
	mu    sync.Mutex
	bases []string
	home  map[string]string
	next  int
}

func newRouter(bases []string) *router {
	return &router{bases: bases, home: make(map[string]string)}
}

func (r *router) pick(sessID string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if b, ok := r.home[sessID]; ok {
		return b
	}
	b := r.bases[r.next%len(r.bases)]
	r.next++
	r.home[sessID] = b
	return b
}

func (r *router) pin(sessID, base string) {
	r.mu.Lock()
	r.home[sessID] = base
	r.mu.Unlock()
}

// failover returns the endpoint after base in ring order, so a dead node's
// traffic lands on one live endpoint instead of scattering.
func (r *router) failover(base string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, b := range r.bases {
		if b == base {
			return r.bases[(i+1)%len(r.bases)]
		}
	}
	return r.bases[0]
}

// Run executes the load shape against a live server and aggregates the
// results. It creates Config.Sessions fresh sessions, drives traffic for
// Config.Duration, and leaves the sessions in place (the server's LRU/TTL
// owns their lifecycle).
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()

	rt := newRouter(cfg.BaseURLs)
	sessions := make([]string, cfg.Sessions)
	for i := range sessions {
		base := cfg.BaseURLs[i%len(cfg.BaseURLs)]
		id, err := createSession(ctx, cfg, base)
		if err != nil {
			return nil, fmt.Errorf("creating session %d on %s: %w", i, base, err)
		}
		sessions[i] = id
		rt.pin(id, base)
	}

	deadline, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	perWorker := make([][]sample, cfg.Concurrency)
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
			var local []sample
			for n := 0; ; n++ {
				if deadline.Err() != nil {
					break
				}
				sessID := sessions[rng.Intn(len(sessions))]
				op := pick(cfg.Mix, rng)
				// Unique fact keys per worker so lost mutations are
				// detectable by counting (soak tests rely on this).
				key := fmt.Sprintf("w%d-%d", w, n)
				s := doOp(deadline, cfg, rt, op, sessID, key)
				if s.status != 0 {
					local = append(local, s)
				}
			}
			perWorker[w] = local
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(t0)

	rep := &Report{
		Config:       cfg,
		DurationMS:   elapsed.Milliseconds(),
		Ops:          make(map[string]OpStats),
		StatusCounts: make(map[string]int),
	}
	latencies := make(map[string][]time.Duration)
	counts := make(map[string]*OpStats)
	stageLat := make(map[string][]time.Duration)
	for _, local := range perWorker {
		for _, s := range local {
			for stage, d := range s.stages {
				stageLat[stage] = append(stageLat[stage], d)
			}
			rep.Requests++
			rep.StatusCounts[fmt.Sprint(s.status)]++
			st := counts[s.op]
			if st == nil {
				st = &OpStats{}
				counts[s.op] = st
			}
			st.Count++
			rep.Retries += s.retries
			rep.Redirects += s.redirects
			switch {
			case s.status == statusTransport:
				st.Transport++
				rep.TransportErrors++
			case s.status == http.StatusTooManyRequests:
				st.Rejected429++
				rep.Rejected429++
			case s.status >= 500:
				st.Errors++
				rep.Errors5xx++
			case s.status >= 400:
				st.Errors++
			default:
				rep.Mutations += s.facts
			}
			latencies[s.op] = append(latencies[s.op], s.latency)
		}
	}
	for op, st := range counts {
		ds := latencies[op]
		st.P50MS = ms(stats.Quantile(ds, 0.50))
		st.P95MS = ms(stats.Quantile(ds, 0.95))
		st.P99MS = ms(stats.Quantile(ds, 0.99))
		st.MaxMS = ms(stats.Quantile(ds, 1))
		rep.Ops[op] = *st
	}
	for stage, ds := range stageLat {
		var total time.Duration
		for _, d := range ds {
			total += d
		}
		if rep.Stages == nil {
			rep.Stages = make(map[string]StageStats, len(stageLat))
		}
		rep.Stages[stage] = StageStats{
			Count:   len(ds),
			TotalMS: ms(total),
			P50MS:   ms(stats.Quantile(ds, 0.50)),
			P95MS:   ms(stats.Quantile(ds, 0.95)),
			P99MS:   ms(stats.Quantile(ds, 0.99)),
			MaxMS:   ms(stats.Quantile(ds, 1)),
		}
	}
	secs := elapsed.Seconds()
	if secs > 0 {
		rep.RequestsPerSec = float64(rep.Requests) / secs
		rep.MutationsPerSec = float64(rep.Mutations) / secs
	}
	return rep, nil
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// pick draws an operation kind according to the mix weights.
func pick(m Mix, rng *rand.Rand) string {
	n := rng.Intn(m.total())
	switch {
	case n < m.Assert:
		return "assert"
	case n < m.Assert+m.Batch:
		return "batch"
	case n < m.Assert+m.Batch+m.Run:
		return "run"
	case n < m.Assert+m.Batch+m.Run+m.Snapshot:
		return "snapshot"
	default:
		return "stream"
	}
}

// doOp issues one request, following at most one ownership redirect and
// one transport failover. A zero-status sample means the request never
// completed (context over mid-flight) and is not counted.
func doOp(ctx context.Context, cfg Config, rt *router, op, sessID, key string) sample {
	if op == "stream" {
		return doStream(ctx, cfg, rt, sessID, key)
	}
	var (
		method = http.MethodPost
		path   = "/api/v1/sessions/" + sessID
		body   any
		facts  int
	)
	switch op {
	case "assert":
		path += "/facts"
		body = map[string]any{"facts": []any{fact(key)}}
		facts = 1
	case "batch":
		fs := make([]any, cfg.BatchSize)
		for i := range fs {
			fs[i] = fact(fmt.Sprintf("%s-%d", key, i))
		}
		path += "/batch"
		body = map[string]any{"ops": []any{map[string]any{"op": "assert", "facts": fs}}}
		facts = cfg.BatchSize
	case "run":
		path += "/run"
		body = map[string]any{"timeout_ms": cfg.RunTimeout.Milliseconds()}
	case "snapshot":
		method = http.MethodGet
		path += "/snapshot"
	}
	base := rt.pick(sessID)
	s := sample{op: op}
	t0 := time.Now()
	for attempt := 0; ; attempt++ {
		status, loc, timing, err := do(ctx, cfg.Client, method, base+path, body, nil)
		s.stages = parseServerTiming(timing)
		switch {
		case err != nil:
			// Never reached a server. Fail over once to the next endpoint:
			// in a cluster the session's replica owner answers there.
			if attempt == 0 && len(cfg.BaseURLs) > 1 {
				base = rt.failover(base)
				rt.pin(sessID, base)
				s.retries++
				continue
			}
			s.status = statusTransport
		case status == 0:
			return sample{} // run ended mid-flight; not an observation
		case status == http.StatusTemporaryRedirect && loc != "":
			// Ownership redirect: cache the owner and retry there.
			if nb := baseOf(loc); nb != "" && attempt == 0 {
				rt.pin(sessID, nb)
				base = nb
				s.redirects++
				continue
			}
			s.status = status
		default:
			s.status = status
			if status < 300 {
				s.facts = facts
			}
		}
		s.latency = time.Since(t0)
		return s
	}
}

// doStream issues one NDJSON stream request of StreamFrames frames, each
// carrying BatchSize event facts and one clock tick; the final frame runs
// the engine. Asserted facts are counted from the per-frame response
// lines, so a stream cut short by an in-band error still credits its
// applied prefix. An in-band error is counted like a 5xx: a healthy
// server streaming a well-formed workload must never produce one.
func doStream(ctx context.Context, cfg Config, rt *router, sessID, key string) sample {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := 0; i < cfg.StreamFrames; i++ {
		facts := make([]any, cfg.BatchSize)
		for j := range facts {
			f := map[string]any{
				"template": "event",
				"fields": map[string]any{
					"k":      fmt.Sprintf("%s-%d-%d", key, i, j),
					"sensor": fmt.Sprintf("sensor-%d", j%8),
					"val":    j,
					"state":  "new",
				},
			}
			if cfg.StreamTTL > 0 {
				f["ttl"] = cfg.StreamTTL
			}
			facts[j] = f
		}
		frame := map[string]any{"facts": facts}
		if i == cfg.StreamFrames-1 {
			frame["run"] = true
			frame["timeout_ms"] = cfg.RunTimeout.Milliseconds()
		}
		_ = enc.Encode(frame)
	}
	body := buf.Bytes()

	base := rt.pick(sessID)
	path := "/api/v1/sessions/" + sessID + "/stream"
	s := sample{op: "stream"}
	t0 := time.Now()
	for attempt := 0; ; attempt++ {
		status, loc, timing, asserted, streamErr, err := doStreamRequest(ctx, cfg.Client, base+path, body)
		s.stages = parseServerTiming(timing)
		switch {
		case err != nil:
			if attempt == 0 && len(cfg.BaseURLs) > 1 {
				base = rt.failover(base)
				rt.pin(sessID, base)
				s.retries++
				continue
			}
			s.status = statusTransport
		case status == 0:
			return sample{} // run ended mid-flight; not an observation
		case status == http.StatusTemporaryRedirect && loc != "":
			if nb := baseOf(loc); nb != "" && attempt == 0 {
				rt.pin(sessID, nb)
				base = nb
				s.redirects++
				continue
			}
			s.status = status
		case streamErr != "":
			s.status = http.StatusInternalServerError
			s.facts = asserted
		default:
			s.status = status
			if status < 300 {
				s.facts = asserted
			}
		}
		s.latency = time.Since(t0)
		return s
	}
}

// doStreamRequest posts one NDJSON body and folds the response lines:
// total facts asserted plus the first in-band error, if any.
func doStreamRequest(ctx context.Context, client *http.Client, url string, body []byte) (status int, loc, timing string, asserted int, streamErr string, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, "", "", 0, "", err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := client.Do(req)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			return 0, "", "", 0, "", nil
		}
		return 0, "", "", 0, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 300 {
		dec := json.NewDecoder(resp.Body)
		for {
			var line struct {
				Asserted int    `json:"asserted"`
				Error    string `json:"error"`
			}
			if derr := dec.Decode(&line); derr != nil {
				break
			}
			asserted += line.Asserted
			if line.Error != "" {
				streamErr = line.Error
				break
			}
		}
	}
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, resp.Header.Get("Location"), resp.Header.Get("Server-Timing"), asserted, streamErr, nil
}

// baseOf extracts scheme://host from a redirect Location.
func baseOf(loc string) string {
	u, err := url.Parse(loc)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return ""
	}
	return u.Scheme + "://" + u.Host
}

// fact renders one workload item in wire form.
func fact(key string) map[string]any {
	return map[string]any{"template": "item", "fields": map[string]any{"k": key, "state": "new"}}
}

func createSession(ctx context.Context, cfg Config, base string) (string, error) {
	var out struct {
		ID string `json:"id"`
	}
	req := map[string]any{"source": cfg.Source}
	if cfg.Workers > 0 {
		req["workers"] = cfg.Workers
	}
	status, _, _, err := do(ctx, cfg.Client, http.MethodPost, base+"/api/v1/sessions", req, &out)
	if err != nil {
		return "", err
	}
	if status != http.StatusCreated {
		return "", fmt.Errorf("unexpected status %d", status)
	}
	return out.ID, nil
}

// do issues one JSON request, measuring nothing itself — callers time it.
// The response body is always drained so connections are reused. The
// second return is the Location header of a redirect response, the third
// the Server-Timing header.
func do(ctx context.Context, client *http.Client, method, url string, in, out any) (int, string, string, error) {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return 0, "", "", err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return 0, "", "", err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			return 0, "", "", nil
		}
		return 0, "", "", err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, "", "", err
		}
	}
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, resp.Header.Get("Location"), resp.Header.Get("Server-Timing"), nil
}
