package wal

// Merkle ledger: a tamper-evident side file recording the hash of every
// WAL frame a session ever appended. The log file itself is emptied by
// each checkpoint, so it cannot testify about history; the ledger is
// append-only for the session's whole life and carries an incremental
// RFC 6962-style Merkle tree over the frames. Checkpoint headers commit
// the tree root (chained to the previous checkpoint's root), which makes
// the following auditable offline: every committed frame is exactly the
// frame that was appended, in order, with nothing spliced in, dropped or
// rewritten — see internal/audit and cmd/parverify.
//
// File layout:
//
//	parulel-merkle v1\n
//	{"base":N,"peaks":["<hex>",...]}\n
//	[seq uint64 LE][leaf hash, 32 bytes]   × entries
//
// base/peaks let a ledger start mid-history: a promoted replica or a
// migrated session holds the checkpoint's committed peak decomposition
// of the first N leaves instead of the leaves themselves, and the tree
// keeps growing from there. A fresh session has base 0 and no peaks.
//
// Hashing follows RFC 6962 domain separation: a leaf is
// SHA-256(0x00 ‖ seq as uint64 BE ‖ frame payload) and an interior node
// SHA-256(0x01 ‖ left ‖ right), with the split point of an n-leaf range
// at the largest power of two below n. Record payloads are canonical —
// encoding/json with typed fields and bit-pattern floats — so a leaf
// hash is reproducible from a scanned record alone.

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/bits"
	"os"
	"sort"
	"sync"
)

const (
	ledgerMagic     = "parulel-merkle v1"
	ledgerEntrySize = 8 + sha256.Size
)

// Sentinel errors for the distinct tamper/corruption classes an audit
// distinguishes. All are wrapped with context; match with errors.Is.
var (
	// ErrLedgerCorrupt: the ledger file itself does not parse.
	ErrLedgerCorrupt = errors.New("wal: merkle ledger corrupt")
	// ErrLedgerMismatch: a WAL frame hashes differently than the ledger
	// entry recorded for its sequence number — the frame was altered or
	// replaced (e.g. spliced in from another session) after being logged.
	ErrLedgerMismatch = errors.New("wal: frame hash differs from ledger entry")
	// ErrLedgerGap: a committed ledger entry has no backing WAL frame
	// where one is required, or entries are missing from the middle.
	ErrLedgerGap = errors.New("wal: ledger missing a committed frame")
	// ErrCommitMismatch: recomputing the tree root over a
	// checkpoint-committed prefix does not reproduce the committed root.
	ErrCommitMismatch = errors.New("wal: checkpoint-committed merkle root mismatch")
	// ErrLedgerAhead: a durable ledger entry describes a frame the WAL
	// does not hold and the checkpoint horizon cannot explain. Entries
	// are flushed only after their frame's fsync confirms, so this state
	// never arises from a crash — the log was truncated or the ledger
	// padded after the fact.
	ErrLedgerAhead = errors.New("wal: ledger entry with no durable frame")
	// ErrProofPredates: an inclusion proof was requested for a sequence
	// number below the ledger's base — only the peaks of that prefix
	// survive (on a promoted replica or migrated session), not its
	// leaves, so no path can be built.
	ErrProofPredates = errors.New("wal: sequence predates this ledger's base")
)

// LedgerState is a point-in-time summary of the tree: the leaf count,
// the RFC 6962 root over all count leaves, and the peak decomposition
// (roots of the complete subtrees whose sizes are count's binary
// decomposition, largest first). The peaks alone let a new ledger resume
// the tree without the leaves; checkpoint headers embed this as the
// chained commit.
type LedgerState struct {
	Count uint64   `json:"count"`
	Root  string   `json:"root"`
	Peaks []string `json:"peaks,omitempty"`
}

// Proof is a self-contained inclusion proof: Path holds the sibling
// hashes bottom-up, and the left/right direction at each step is derived
// from Index and Count exactly as in RFC 6962 — there is nothing else to
// trust in it, which is what makes VerifyProof meaningful offline.
type Proof struct {
	Session string   `json:"session,omitempty"`
	Seq     uint64   `json:"seq"`
	Index   uint64   `json:"index"`
	Count   uint64   `json:"count"`
	Leaf    string   `json:"leaf"`
	Path    []string `json:"path"`
	Root    string   `json:"root"`
}

// LeafHash hashes one frame into its ledger leaf.
func LeafHash(seq uint64, payload []byte) [sha256.Size]byte {
	var pre [9]byte
	pre[0] = 0x00
	binary.BigEndian.PutUint64(pre[1:], seq)
	h := sha256.New()
	h.Write(pre[:])
	h.Write(payload)
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// RecordLeafHex re-derives a scanned record's leaf hash from its
// canonical encoding; audits use it to compare frames against ledger
// entries.
func RecordLeafHex(rec *Record) (string, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return "", err
	}
	h := LeafHash(rec.Seq, payload)
	return hex.EncodeToString(h[:]), nil
}

func interiorHash(left, right [sha256.Size]byte) [sha256.Size]byte {
	h := sha256.New()
	h.Write([]byte{0x01})
	h.Write(left[:])
	h.Write(right[:])
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

func emptyRoot() [sha256.Size]byte { return sha256.Sum256(nil) }

// largestPow2Below returns the largest power of two strictly less than
// n; the RFC 6962 split point of an n-leaf range. n must be ≥ 2.
func largestPow2Below(n uint64) uint64 {
	return 1 << (bits.Len64(n-1) - 1)
}

// merkleTree holds the leaves from base upward plus the peak
// decomposition of the first base leaves. All range arithmetic is over
// global leaf indices [0, base+len(leaves)).
type merkleTree struct {
	base      uint64
	basePeaks [][sha256.Size]byte
	leaves    [][sha256.Size]byte
	seqs      []uint64 // wal sequence number per leaf, strictly increasing
}

func (t *merkleTree) count() uint64 { return t.base + uint64(len(t.leaves)) }

// peakSpans returns the [start,end) ranges the base peaks cover:
// base's binary decomposition, largest first, packed from index 0. Each
// is a complete subtree aligned to its size, so the range recursion
// lands on them exactly.
func (t *merkleTree) peakSpans() [][2]uint64 {
	spans := make([][2]uint64, 0, len(t.basePeaks))
	var start uint64
	for n := t.base; n > 0; {
		size := uint64(1) << (bits.Len64(n) - 1)
		spans = append(spans, [2]uint64{start, start + size})
		start += size
		n -= size
	}
	return spans
}

// rangeHash computes the RFC 6962 hash of leaves [lo, hi). Ranges at or
// above base come from stored leaves; ranges below base must land on a
// stored peak — anything finer predates the ledger.
func (t *merkleTree) rangeHash(lo, hi uint64) ([sha256.Size]byte, error) {
	var zero [sha256.Size]byte
	if hi <= lo || hi > t.count() {
		return zero, fmt.Errorf("wal: bad merkle range [%d,%d) of %d", lo, hi, t.count())
	}
	if lo < t.base {
		for i, span := range t.peakSpans() {
			if span[0] == lo && span[1] == hi {
				return t.basePeaks[i], nil
			}
		}
		if hi-lo == 1 {
			return zero, fmt.Errorf("%w: leaf %d", ErrProofPredates, lo)
		}
	} else if hi-lo == 1 {
		return t.leaves[lo-t.base], nil
	}
	k := largestPow2Below(hi - lo)
	left, err := t.rangeHash(lo, lo+k)
	if err != nil {
		return zero, err
	}
	right, err := t.rangeHash(lo+k, hi)
	if err != nil {
		return zero, err
	}
	return interiorHash(left, right), nil
}

// rootAt computes the tree root over the first n leaves.
func (t *merkleTree) rootAt(n uint64) ([sha256.Size]byte, error) {
	if n == 0 {
		return emptyRoot(), nil
	}
	return t.rangeHash(0, n)
}

// peaksAt returns the peak decomposition of the first n leaves.
func (t *merkleTree) peaksAt(n uint64) ([][sha256.Size]byte, error) {
	var peaks [][sha256.Size]byte
	var start uint64
	for rem := n; rem > 0; {
		size := uint64(1) << (bits.Len64(rem) - 1)
		p, err := t.rangeHash(start, start+size)
		if err != nil {
			return nil, err
		}
		peaks = append(peaks, p)
		start += size
		rem -= size
	}
	return peaks, nil
}

// path builds the bottom-up inclusion path for leaf m within [lo, hi).
func (t *merkleTree) path(m, lo, hi uint64) ([][sha256.Size]byte, error) {
	if hi-lo == 1 {
		return nil, nil
	}
	k := largestPow2Below(hi - lo)
	if m < lo+k {
		p, err := t.path(m, lo, lo+k)
		if err != nil {
			return nil, err
		}
		sib, err := t.rangeHash(lo+k, hi)
		if err != nil {
			return nil, err
		}
		return append(p, sib), nil
	}
	p, err := t.path(m, lo+k, hi)
	if err != nil {
		return nil, err
	}
	sib, err := t.rangeHash(lo, lo+k)
	if err != nil {
		return nil, err
	}
	return append(p, sib), nil
}

// Ledger is the live, file-backed tree attached to a Log. Appends feed
// it under the log mutex; the server reads proofs and state through its
// own lock, so the two never contend on the log's.
type Ledger struct {
	mu   sync.Mutex
	path string
	f    *os.File
	t    merkleTree

	// pending are file entries written to memory but not yet durable in
	// the ledger file; commitTo flushes the prefix the WAL fsync covered.
	pending     []byte
	pendingSeqs []uint64
}

// ledgerHeader is the JSON second line of the file.
type ledgerHeader struct {
	Base  uint64   `json:"base"`
	Peaks []string `json:"peaks,omitempty"`
}

func encodePeaks(peaks [][sha256.Size]byte) []string {
	out := make([]string, len(peaks))
	for i, p := range peaks {
		out[i] = hex.EncodeToString(p[:])
	}
	return out
}

func decodePeaks(peaks []string) ([][sha256.Size]byte, error) {
	out := make([][sha256.Size]byte, len(peaks))
	for i, s := range peaks {
		b, err := hex.DecodeString(s)
		if err != nil || len(b) != sha256.Size {
			return nil, fmt.Errorf("%w: bad peak %d", ErrLedgerCorrupt, i)
		}
		copy(out[i][:], b)
	}
	return out, nil
}

// peakCountFor returns how many peaks an n-leaf prefix decomposes into.
func peakCountFor(n uint64) int { return bits.OnesCount64(n) }

// parseLedger reads a ledger stream: header, base peaks, entries. A
// trailing partial entry (torn write) is reported, not an error; a
// malformed header or short peak set is ErrLedgerCorrupt.
func parseLedger(r io.Reader) (hdr ledgerHeader, seqs []uint64, leaves [][sha256.Size]byte, torn int64, err error) {
	rd := bufio.NewReader(r)
	magic, rerr := rd.ReadString('\n')
	if rerr != nil {
		if magic == "" {
			return hdr, nil, nil, 0, nil // brand-new empty file
		}
		return hdr, nil, nil, 0, fmt.Errorf("%w: short magic", ErrLedgerCorrupt)
	}
	if magic != ledgerMagic+"\n" {
		return hdr, nil, nil, 0, fmt.Errorf("%w: bad magic %q", ErrLedgerCorrupt, magic)
	}
	hline, rerr := rd.ReadString('\n')
	if rerr != nil {
		return hdr, nil, nil, 0, fmt.Errorf("%w: short header", ErrLedgerCorrupt)
	}
	if err := json.Unmarshal([]byte(hline), &hdr); err != nil {
		return hdr, nil, nil, 0, fmt.Errorf("%w: header: %v", ErrLedgerCorrupt, err)
	}
	if peakCountFor(hdr.Base) != len(hdr.Peaks) {
		return hdr, nil, nil, 0, fmt.Errorf("%w: base %d wants %d peaks, header has %d",
			ErrLedgerCorrupt, hdr.Base, peakCountFor(hdr.Base), len(hdr.Peaks))
	}
	var (
		entry   [ledgerEntrySize]byte
		lastSeq uint64
	)
	for {
		n, rerr := io.ReadFull(rd, entry[:])
		if rerr != nil {
			torn = int64(n)
			break
		}
		seq := binary.LittleEndian.Uint64(entry[:8])
		if seq <= lastSeq {
			return hdr, nil, nil, 0, fmt.Errorf("%w: entry seq %d after %d", ErrLedgerCorrupt, seq, lastSeq)
		}
		lastSeq = seq
		var leaf [sha256.Size]byte
		copy(leaf[:], entry[8:])
		seqs = append(seqs, seq)
		leaves = append(leaves, leaf)
	}
	return hdr, seqs, leaves, torn, nil
}

// OpenLedger opens (creating if absent) the ledger at path for
// appending. A torn trailing entry is truncated away, mirroring the WAL
// scan; a malformed header or out-of-order entries fail with
// ErrLedgerCorrupt rather than being repaired — the ledger is the
// tamper-evidence layer, so it never guesses.
func OpenLedger(path string) (*Ledger, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	hdr, seqs, leaves, torn, err := parseLedger(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, err
	}
	if torn > 0 {
		if err := f.Truncate(size - torn); err != nil {
			f.Close()
			return nil, err
		}
		if _, err := f.Seek(size-torn, io.SeekStart); err != nil {
			f.Close()
			return nil, err
		}
	}
	peaks, err := decodePeaks(hdr.Peaks)
	if err != nil {
		f.Close()
		return nil, err
	}
	led := &Ledger{path: path, f: f}
	led.t = merkleTree{base: hdr.Base, basePeaks: peaks, leaves: leaves, seqs: seqs}
	if size == 0 {
		if err := led.writeHeaderLocked(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return led, nil
}

// writeHeaderLocked writes the magic and header lines for the current
// base at the current file position (start of an empty file).
func (led *Ledger) writeHeaderLocked() error {
	hb, err := json.Marshal(ledgerHeader{Base: led.t.base, Peaks: encodePeaks(led.t.basePeaks)})
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	buf.WriteString(ledgerMagic + "\n")
	buf.Write(hb)
	buf.WriteByte('\n')
	if _, err := led.f.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("wal: ledger header: %w", err)
	}
	return nil
}

// resetTo reinitializes the ledger to start at a committed state: base
// leaves summarized by peaks, no entries. Promotion and migration use it
// when the ledger file did not travel with the checkpoint.
func (led *Ledger) resetTo(base uint64, peaks [][sha256.Size]byte) error {
	if err := led.f.Truncate(0); err != nil {
		return err
	}
	if _, err := led.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	led.t = merkleTree{base: base, basePeaks: peaks}
	led.pending = nil
	led.pendingSeqs = nil
	if err := led.writeHeaderLocked(); err != nil {
		return err
	}
	return led.f.Sync()
}

// observe feeds one appended frame into the tree and stages its file
// entry; called by the Log under its mutex on every append.
func (led *Ledger) observe(seq uint64, payload []byte) {
	leaf := LeafHash(seq, payload)
	led.mu.Lock()
	led.t.leaves = append(led.t.leaves, leaf)
	led.t.seqs = append(led.t.seqs, seq)
	var entry [ledgerEntrySize]byte
	binary.LittleEndian.PutUint64(entry[:8], seq)
	copy(entry[8:], leaf[:])
	led.pending = append(led.pending, entry[:]...)
	led.pendingSeqs = append(led.pendingSeqs, seq)
	led.mu.Unlock()
}

// commitTo makes staged entries with seq ≤ target durable. The Log calls
// it right after a successful WAL fsync, so under the always/group
// policies a durable ledger entry always describes a durable frame.
func (led *Ledger) commitTo(target uint64) error {
	led.mu.Lock()
	defer led.mu.Unlock()
	return led.commitLocked(target)
}

func (led *Ledger) commitLocked(target uint64) error {
	cut := sort.Search(len(led.pendingSeqs), func(i int) bool { return led.pendingSeqs[i] > target })
	if cut == 0 {
		return nil
	}
	n := cut * ledgerEntrySize
	if _, err := led.f.Write(led.pending[:n]); err != nil {
		return fmt.Errorf("wal: ledger append: %w", err)
	}
	if err := led.f.Sync(); err != nil {
		return fmt.Errorf("wal: ledger fsync: %w", err)
	}
	led.pending = append(led.pending[:0], led.pending[n:]...)
	led.pendingSeqs = append(led.pendingSeqs[:0], led.pendingSeqs[cut:]...)
	return nil
}

// SyncAll flushes every staged entry. The checkpoint path calls it
// before capturing the commit it writes into the header, so the
// committed count is durable in the ledger file by the time the
// checkpoint lands.
func (led *Ledger) SyncAll() error {
	led.mu.Lock()
	defer led.mu.Unlock()
	if len(led.pendingSeqs) == 0 {
		return nil
	}
	return led.commitLocked(led.pendingSeqs[len(led.pendingSeqs)-1])
}

// State summarizes the current tree. An internal inconsistency (which
// rangeHash would surface) is impossible for a live tree built through
// observe, so errors here mean a programming bug; they are returned
// rather than panicking because audits share the code path.
func (led *Ledger) State() (LedgerState, error) {
	led.mu.Lock()
	defer led.mu.Unlock()
	return led.stateLocked()
}

func (led *Ledger) stateLocked() (LedgerState, error) {
	n := led.t.count()
	root, err := led.t.rootAt(n)
	if err != nil {
		return LedgerState{}, err
	}
	peaks, err := led.t.peaksAt(n)
	if err != nil {
		return LedgerState{}, err
	}
	return LedgerState{Count: n, Root: hex.EncodeToString(root[:]), Peaks: encodePeaks(peaks)}, nil
}

// Count returns the current leaf count (base included).
func (led *Ledger) Count() uint64 {
	led.mu.Lock()
	defer led.mu.Unlock()
	return led.t.count()
}

// Prove builds the inclusion proof for the frame with sequence number
// seq against the current root. Sequence numbers summarized into the
// base (a promoted replica's pre-checkpoint history) fail with
// ErrProofPredates; unknown ones with a plain not-found error.
func (led *Ledger) Prove(seq uint64) (*Proof, error) {
	led.mu.Lock()
	defer led.mu.Unlock()
	i := sort.Search(len(led.t.seqs), func(i int) bool { return led.t.seqs[i] >= seq })
	if i >= len(led.t.seqs) || led.t.seqs[i] != seq {
		if led.t.base > 0 && (len(led.t.seqs) == 0 || seq < led.t.seqs[0]) {
			return nil, fmt.Errorf("%w: seq %d", ErrProofPredates, seq)
		}
		return nil, fmt.Errorf("wal: no ledger entry for seq %d", seq)
	}
	index := led.t.base + uint64(i)
	count := led.t.count()
	path, err := led.t.path(index, 0, count)
	if err != nil {
		return nil, err
	}
	root, err := led.t.rootAt(count)
	if err != nil {
		return nil, err
	}
	leaf := led.t.leaves[i]
	return &Proof{
		Seq:   seq,
		Index: index,
		Count: count,
		Leaf:  hex.EncodeToString(leaf[:]),
		Path:  encodePeaks(path),
		Root:  hex.EncodeToString(root[:]),
	}, nil
}

// Close closes the ledger file without flushing staged entries — those
// describe frames whose WAL fsync never confirmed, and writing them
// would let the ledger get ahead of the log it attests to. Reconcile
// rebuilds them from the log on the next open.
func (led *Ledger) Close() error {
	led.mu.Lock()
	defer led.mu.Unlock()
	if led.f == nil {
		return nil
	}
	err := led.f.Close()
	led.f = nil
	return err
}

// Reconcile aligns the ledger with reality at session-open time: the
// scanned WAL records, the checkpoint's sequence horizon and its ledger
// commit (nil when the session has never checkpointed or predates the
// ledger feature). It
//
//   - adopts the commit's base/peaks when the ledger file is brand new
//     but history is not (promotion, migration);
//   - verifies the committed root still matches the stored entries —
//     failure is tampering (ErrCommitMismatch), since committed entries
//     are final;
//   - cross-checks every scanned frame against its entry
//     (ErrLedgerMismatch on a hash difference — an altered or spliced
//     frame) and re-stages entries for frames the ledger missed (a crash
//     between the WAL fsync and the ledger flush);
//   - rejects entries with no backing frame: below the checkpoint
//     horizon the log was legitimately emptied, but past it a durable
//     entry always had a durable frame (entries flush strictly after
//     their frame's fsync), so a missing one means the log was cut or
//     the ledger padded (ErrLedgerAhead; ErrLedgerGap for holes in the
//     middle).
func (led *Ledger) Reconcile(recs []Record, ckptSeq uint64, commit *LedgerState) error {
	led.mu.Lock()
	defer led.mu.Unlock()

	if commit != nil && commit.Count > 0 && led.t.count() == 0 && led.t.base == 0 {
		peaks, err := decodePeaks(commit.Peaks)
		if err != nil {
			return err
		}
		if peakCountFor(commit.Count) != len(peaks) {
			return fmt.Errorf("%w: commit count %d wants %d peaks, has %d",
				ErrLedgerCorrupt, commit.Count, peakCountFor(commit.Count), len(peaks))
		}
		if err := led.resetTo(commit.Count, peaks); err != nil {
			return err
		}
	}

	var committed uint64
	if commit != nil {
		committed = commit.Count
	}
	if committed > 0 {
		if committed < led.t.base {
			return fmt.Errorf("%w: commit covers %d leaves, ledger base is %d",
				ErrLedgerCorrupt, committed, led.t.base)
		}
		if committed > led.t.count() {
			return fmt.Errorf("%w: commit covers %d leaves, ledger holds %d",
				ErrLedgerGap, committed, led.t.count())
		}
		root, err := led.t.rootAt(committed)
		if err != nil {
			return err
		}
		if hex.EncodeToString(root[:]) != commit.Root {
			return fmt.Errorf("%w: over %d leaves: ledger %x, checkpoint %s",
				ErrCommitMismatch, committed, root, commit.Root)
		}
	}

	// Walk the scanned frames against the stored entries. Frames at or
	// below the checkpoint horizon that the ledger already covers must
	// match; frames past the last entry are re-staged.
	lastEntrySeq := uint64(0)
	if n := len(led.t.seqs); n > 0 {
		lastEntrySeq = led.t.seqs[n-1]
	}
	matched := 0 // entries confirmed against a frame or the commit
	for ri := range recs {
		rec := &recs[ri]
		i := sort.Search(len(led.t.seqs), func(i int) bool { return led.t.seqs[i] >= rec.Seq })
		switch {
		case i < len(led.t.seqs) && led.t.seqs[i] == rec.Seq:
			payload, err := json.Marshal(rec)
			if err != nil {
				return err
			}
			if LeafHash(rec.Seq, payload) != led.t.leaves[i] {
				return fmt.Errorf("%w: seq %d", ErrLedgerMismatch, rec.Seq)
			}
			matched++
		case rec.Seq > lastEntrySeq:
			payload, err := json.Marshal(rec)
			if err != nil {
				return err
			}
			led.observeLocked(rec.Seq, payload)
			lastEntrySeq = rec.Seq
		default:
			// A frame in the middle of the entry range with no entry:
			// the ledger lost history it should hold.
			return fmt.Errorf("%w: no entry for frame seq %d", ErrLedgerGap, rec.Seq)
		}
	}

	// Trailing entries past both the WAL and the checkpoint horizon:
	// entries flush strictly after their frame's fsync, so no crash
	// ordering produces them — reject rather than repair.
	walEnd := uint64(0)
	if len(recs) > 0 {
		walEnd = recs[len(recs)-1].Seq
	}
	for _, seq := range led.t.seqs {
		if seq > ckptSeq && seq > walEnd {
			return fmt.Errorf("%w: entry seq %d (wal ends at %d, checkpoint horizon %d)",
				ErrLedgerAhead, seq, walEnd, ckptSeq)
		}
	}
	// Entries re-staged for frames the ledger missed describe frames
	// already durable in the log; flush them now so the invariant
	// (ledger covers every durable frame) holds before serving resumes.
	if n := len(led.pendingSeqs); n > 0 {
		return led.commitLocked(led.pendingSeqs[n-1])
	}
	return nil
}

// observeLocked is observe for callers already holding led.mu.
func (led *Ledger) observeLocked(seq uint64, payload []byte) {
	leaf := LeafHash(seq, payload)
	led.t.leaves = append(led.t.leaves, leaf)
	led.t.seqs = append(led.t.seqs, seq)
	var entry [ledgerEntrySize]byte
	binary.LittleEndian.PutUint64(entry[:8], seq)
	copy(entry[8:], leaf[:])
	led.pending = append(led.pending, entry[:]...)
	led.pendingSeqs = append(led.pendingSeqs, seq)
}

// VerifyProof checks a self-contained proof: it recomputes the root from
// the leaf and path using the RFC 6962 index/count direction rules and
// compares it to the proof's root. It needs no tree — this is what the
// offline verifier runs against a root published elsewhere.
func VerifyProof(p *Proof) error {
	if p.Count == 0 || p.Index >= p.Count {
		return fmt.Errorf("wal: proof index %d out of range of %d", p.Index, p.Count)
	}
	leafB, err := hex.DecodeString(p.Leaf)
	if err != nil || len(leafB) != sha256.Size {
		return errors.New("wal: proof leaf is not a sha256 hex digest")
	}
	wantB, err := hex.DecodeString(p.Root)
	if err != nil || len(wantB) != sha256.Size {
		return errors.New("wal: proof root is not a sha256 hex digest")
	}
	var r, want [sha256.Size]byte
	copy(r[:], leafB)
	copy(want[:], wantB)
	fn, sn := p.Index, p.Count-1
	for _, hs := range p.Path {
		hb, err := hex.DecodeString(hs)
		if err != nil || len(hb) != sha256.Size {
			return errors.New("wal: proof path hash is not a sha256 hex digest")
		}
		var h [sha256.Size]byte
		copy(h[:], hb)
		if sn == 0 {
			return errors.New("wal: proof path longer than the tree is deep")
		}
		if fn%2 == 1 || fn == sn {
			r = interiorHash(h, r)
			if fn%2 == 0 {
				for fn%2 == 0 && fn != 0 {
					fn >>= 1
					sn >>= 1
				}
			}
		} else {
			r = interiorHash(r, h)
		}
		fn >>= 1
		sn >>= 1
	}
	if sn != 0 {
		return errors.New("wal: proof path shorter than the tree is deep")
	}
	if r != want {
		return fmt.Errorf("wal: proof does not verify: computed %x, claimed %s", r, p.Root)
	}
	return nil
}

// LedgerEntry is one stored (or staged) ledger record, for inspection.
type LedgerEntry struct {
	Seq  uint64
	Leaf string // hex
}

// LedgerInfo is a read-only snapshot of a ledger file, the audit
// package's raw material.
type LedgerInfo struct {
	Base      uint64
	BasePeaks []string
	Entries   []LedgerEntry
	TornBytes int64

	t merkleTree
}

// InspectLedger loads the ledger at path without opening it for writing
// or repairing anything. A missing file returns nil, nil.
func InspectLedger(path string) (*LedgerInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()
	hdr, seqs, leaves, torn, err := parseLedger(f)
	if err != nil {
		return nil, err
	}
	peaks, err := decodePeaks(hdr.Peaks)
	if err != nil {
		return nil, err
	}
	info := &LedgerInfo{Base: hdr.Base, BasePeaks: hdr.Peaks, TornBytes: torn}
	info.t = merkleTree{base: hdr.Base, basePeaks: peaks, leaves: leaves, seqs: seqs}
	info.Entries = make([]LedgerEntry, len(seqs))
	for i := range seqs {
		info.Entries[i] = LedgerEntry{Seq: seqs[i], Leaf: hex.EncodeToString(leaves[i][:])}
	}
	return info, nil
}

// Count returns base + stored entries.
func (info *LedgerInfo) Count() uint64 { return info.t.count() }

// RootAt recomputes the root over the first n leaves.
func (info *LedgerInfo) RootAt(n uint64) (string, error) {
	root, err := info.t.rootAt(n)
	if err != nil {
		return "", err
	}
	return hex.EncodeToString(root[:]), nil
}

// Root recomputes the root over everything stored.
func (info *LedgerInfo) Root() (string, error) { return info.RootAt(info.t.count()) }

// Prove builds an inclusion proof from the snapshot, same semantics as
// Ledger.Prove.
func (info *LedgerInfo) Prove(seq uint64) (*Proof, error) {
	i := sort.Search(len(info.t.seqs), func(i int) bool { return info.t.seqs[i] >= seq })
	if i >= len(info.t.seqs) || info.t.seqs[i] != seq {
		if info.t.base > 0 && (len(info.t.seqs) == 0 || seq < info.t.seqs[0]) {
			return nil, fmt.Errorf("%w: seq %d", ErrProofPredates, seq)
		}
		return nil, fmt.Errorf("wal: no ledger entry for seq %d", seq)
	}
	index := info.t.base + uint64(i)
	count := info.t.count()
	path, err := info.t.path(index, 0, count)
	if err != nil {
		return nil, err
	}
	root, err := info.t.rootAt(count)
	if err != nil {
		return nil, err
	}
	return &Proof{
		Seq:   seq,
		Index: index,
		Count: count,
		Leaf:  hex.EncodeToString(info.t.leaves[i][:]),
		Path:  encodePeaks(path),
		Root:  hex.EncodeToString(root[:]),
	}, nil
}
