package wal

import (
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// FuzzReplay feeds arbitrary bytes to the recovery scanner: it must never
// panic, and whatever it accepts must survive a second scan unchanged
// (recovery is idempotent: after one truncating scan the file is clean).
func FuzzReplay(f *testing.F) {
	frame := func(payload string) []byte {
		b := make([]byte, frameHeader+len(payload))
		binary.LittleEndian.PutUint32(b[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(b[4:8], crc32.ChecksumIEEE([]byte(payload)))
		copy(b[frameHeader:], payload)
		return b
	}
	f.Add([]byte{})
	f.Add(frame(`{"seq":1,"op":"create","program":"p"}`))
	f.Add(append(frame(`{"seq":1,"op":"run","cycles":3}`), frame(`{"seq":2,"op":"run"}`)...))
	f.Add(append(frame(`{"seq":1,"op":"assert"}`), 0xff, 0xff, 0xff, 0xff)) // huge bogus length
	f.Add(frame(`not json`))
	f.Add(frame(`{"seq":0,"op":"run"}`)) // non-monotonic seq
	f.Add(frame(`{"seq":1,"op":"tick","tick":5,"count":2}`))
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 'x'})
	f.Add(frame(`{"seq":1,"op":"batch","ops":[{"op":"assert"},{"op":"tick","tick":1}]}`))
	f.Add(frame(`{"seq":18446744073709551615,"op":"run"}`))                           // max uint64 seq
	f.Add(append(frame(`{"seq":1,"op":"run"}`), frame(`{"seq":9000,"op":"run"}`)...)) // sparse seqs
	f.Add(frame(`{"seq":1,"op":"import","text":"\u0000\ufffd\n(wm)"}`))
	// A valid frame preceded by one flipped payload byte: nothing after
	// the corruption may be salvaged (no resynchronization).
	bad := frame(`{"seq":1,"op":"run","cycles":3}`)
	bad[frameHeader+2] ^= 0x01
	f.Add(append(bad, frame(`{"seq":2,"op":"run"}`)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "wal.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		l, res, err := Open(path, Options{})
		if err != nil {
			return // I/O-level failure is acceptable; panicking is not
		}
		l.Close()
		l2, res2, err := Open(path, Options{})
		if err != nil {
			t.Fatalf("second open failed after truncating scan: %v", err)
		}
		defer l2.Close()
		if res2.TruncatedBytes != 0 {
			t.Fatalf("second scan still truncated %d bytes", res2.TruncatedBytes)
		}
		if len(res2.Records) != len(res.Records) {
			t.Fatalf("second scan saw %d records, first saw %d", len(res2.Records), len(res.Records))
		}
	})
}

// FuzzTickRecord round-trips the temporal OpTick record through the log
// for arbitrary clock values and expiry counts — replay verifies both
// fields against the live tick, so a lossy encoding of any value
// (extremes, negatives a corrupted log might carry) would surface as
// spurious divergence. Ticks are exercised both standalone (the batch
// endpoint's framing) and nested in an OpBatch (the stream endpoint's).
func FuzzTickRecord(f *testing.F) {
	f.Add(int64(1), 0)
	f.Add(int64(0), -1)
	f.Add(int64(1)<<62, 1<<30)
	f.Add(int64(-7), 3)
	f.Fuzz(func(t *testing.T, tick int64, count int) {
		path := filepath.Join(t.TempDir(), "wal.log")
		l, _, err := Open(path, Options{})
		if err != nil {
			t.Skip()
		}
		if err := l.Append(&Record{Op: OpTick, Tick: tick, Count: count}); err != nil {
			t.Fatal(err)
		}
		if err := l.Append(&Record{Op: OpBatch, Ops: []Record{{Op: OpTick, Tick: tick, Count: count}}}); err != nil {
			t.Fatal(err)
		}
		l.Close()

		_, res, err := Open(path, Options{})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		if len(res.Records) != 2 {
			t.Fatalf("scan saw %d records, want 2", len(res.Records))
		}
		got := res.Records[0]
		if got.Op != OpTick || got.Tick != tick || got.Count != count {
			t.Fatalf("tick record corrupted: got op %q tick %d count %d, want tick %d count %d",
				got.Op, got.Tick, got.Count, tick, count)
		}
		batch := res.Records[1]
		if batch.Op != OpBatch || len(batch.Ops) != 1 ||
			batch.Ops[0].Tick != tick || batch.Ops[0].Count != count {
			t.Fatalf("nested tick record corrupted: %+v", batch)
		}
	})
}

// FuzzProofVerify throws arbitrary proof JSON at the verifier. It must
// never panic, and — the binding property the audit trail rests on — a
// proof that verifies against a trusted (root, index, count) triple must
// carry exactly the leaf the honest proof carried: no mutation can
// substitute a different frame hash under the same root.
func FuzzProofVerify(f *testing.F) {
	led, err := OpenLedger(filepath.Join(f.TempDir(), "merkle.log"))
	if err != nil {
		f.Fatal(err)
	}
	defer led.Close()
	for i := 1; i <= 11; i++ {
		led.observe(uint64(i), []byte{byte(i), 0x33})
	}
	honest, err := led.Prove(6)
	if err != nil {
		f.Fatal(err)
	}
	honestJSON, err := json.Marshal(honest)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(honestJSON)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"seq":6,"index":5,"count":11,"leaf":"ff","path":[],"root":"00"}`))
	mutated := append([]byte(nil), honestJSON...)
	mutated[len(mutated)/2] ^= 0x20
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		var p Proof
		if err := json.Unmarshal(data, &p); err != nil {
			return
		}
		if err := VerifyProof(&p); err != nil {
			return // rejection is always fine; panicking is not
		}
		if p.Root == honest.Root && p.Index == honest.Index && p.Count == honest.Count && p.Leaf != honest.Leaf {
			t.Fatalf("forged proof verified: leaf %s accepted at index %d under root %s (honest leaf %s)",
				p.Leaf, p.Index, p.Root, honest.Leaf)
		}
	})
}

// FuzzLedgerOpen feeds arbitrary bytes to the ledger parser: it must
// never panic, never accept a state it cannot summarize, and — like the
// WAL scan — be idempotent: once one open has truncated a torn tail, a
// second open finds a clean file.
func FuzzLedgerOpen(f *testing.F) {
	seedPath := filepath.Join(f.TempDir(), "merkle.log")
	led, err := OpenLedger(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		led.observe(uint64(i), []byte{byte(i)})
	}
	if err := led.SyncAll(); err != nil {
		f.Fatal(err)
	}
	led.Close()
	clean, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(clean)
	f.Add(clean[:len(clean)-5]) // torn entry
	f.Add([]byte{})
	f.Add([]byte("parulel-merkle v1\n"))
	f.Add([]byte("parulel-merkle v1\n{\"base\":0}\n"))
	f.Add([]byte("parulel-merkle v1\n{\"base\":3,\"peaks\":[\"zz\"]}\n"))
	f.Add([]byte("not a ledger"))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "merkle.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		led, err := OpenLedger(path)
		if err != nil {
			return
		}
		st, serr := led.State()
		if serr != nil {
			t.Fatalf("opened ledger cannot summarize its state: %v", serr)
		}
		led.Close()
		led2, err := OpenLedger(path)
		if err != nil {
			t.Fatalf("second open failed after truncating open: %v", err)
		}
		defer led2.Close()
		st2, serr := led2.State()
		if serr != nil || st2.Count != st.Count || st2.Root != st.Root {
			t.Fatalf("second open diverged: %+v vs %+v (err=%v)", st2, st, serr)
		}
	})
}
