package wal

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// FuzzReplay feeds arbitrary bytes to the recovery scanner: it must never
// panic, and whatever it accepts must survive a second scan unchanged
// (recovery is idempotent: after one truncating scan the file is clean).
func FuzzReplay(f *testing.F) {
	frame := func(payload string) []byte {
		b := make([]byte, frameHeader+len(payload))
		binary.LittleEndian.PutUint32(b[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(b[4:8], crc32.ChecksumIEEE([]byte(payload)))
		copy(b[frameHeader:], payload)
		return b
	}
	f.Add([]byte{})
	f.Add(frame(`{"seq":1,"op":"create","program":"p"}`))
	f.Add(append(frame(`{"seq":1,"op":"run","cycles":3}`), frame(`{"seq":2,"op":"run"}`)...))
	f.Add(append(frame(`{"seq":1,"op":"assert"}`), 0xff, 0xff, 0xff, 0xff)) // huge bogus length
	f.Add(frame(`not json`))
	f.Add(frame(`{"seq":0,"op":"run"}`)) // non-monotonic seq
	f.Add(frame(`{"seq":1,"op":"tick","tick":5,"count":2}`))
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 'x'})

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "wal.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		l, res, err := Open(path, Options{})
		if err != nil {
			return // I/O-level failure is acceptable; panicking is not
		}
		l.Close()
		l2, res2, err := Open(path, Options{})
		if err != nil {
			t.Fatalf("second open failed after truncating scan: %v", err)
		}
		defer l2.Close()
		if res2.TruncatedBytes != 0 {
			t.Fatalf("second scan still truncated %d bytes", res2.TruncatedBytes)
		}
		if len(res2.Records) != len(res.Records) {
			t.Fatalf("second scan saw %d records, first saw %d", len(res2.Records), len(res.Records))
		}
	})
}

// FuzzTickRecord round-trips the temporal OpTick record through the log
// for arbitrary clock values and expiry counts — replay verifies both
// fields against the live tick, so a lossy encoding of any value
// (extremes, negatives a corrupted log might carry) would surface as
// spurious divergence. Ticks are exercised both standalone (the batch
// endpoint's framing) and nested in an OpBatch (the stream endpoint's).
func FuzzTickRecord(f *testing.F) {
	f.Add(int64(1), 0)
	f.Add(int64(0), -1)
	f.Add(int64(1)<<62, 1<<30)
	f.Add(int64(-7), 3)
	f.Fuzz(func(t *testing.T, tick int64, count int) {
		path := filepath.Join(t.TempDir(), "wal.log")
		l, _, err := Open(path, Options{})
		if err != nil {
			t.Skip()
		}
		if err := l.Append(&Record{Op: OpTick, Tick: tick, Count: count}); err != nil {
			t.Fatal(err)
		}
		if err := l.Append(&Record{Op: OpBatch, Ops: []Record{{Op: OpTick, Tick: tick, Count: count}}}); err != nil {
			t.Fatal(err)
		}
		l.Close()

		_, res, err := Open(path, Options{})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		if len(res.Records) != 2 {
			t.Fatalf("scan saw %d records, want 2", len(res.Records))
		}
		got := res.Records[0]
		if got.Op != OpTick || got.Tick != tick || got.Count != count {
			t.Fatalf("tick record corrupted: got op %q tick %d count %d, want tick %d count %d",
				got.Op, got.Tick, got.Count, tick, count)
		}
		batch := res.Records[1]
		if batch.Op != OpBatch || len(batch.Ops) != 1 ||
			batch.Ops[0].Tick != tick || batch.Ops[0].Count != count {
			t.Fatalf("nested tick record corrupted: %+v", batch)
		}
	})
}
