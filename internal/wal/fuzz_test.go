package wal

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// FuzzReplay feeds arbitrary bytes to the recovery scanner: it must never
// panic, and whatever it accepts must survive a second scan unchanged
// (recovery is idempotent: after one truncating scan the file is clean).
func FuzzReplay(f *testing.F) {
	frame := func(payload string) []byte {
		b := make([]byte, frameHeader+len(payload))
		binary.LittleEndian.PutUint32(b[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(b[4:8], crc32.ChecksumIEEE([]byte(payload)))
		copy(b[frameHeader:], payload)
		return b
	}
	f.Add([]byte{})
	f.Add(frame(`{"seq":1,"op":"create","program":"p"}`))
	f.Add(append(frame(`{"seq":1,"op":"run","cycles":3}`), frame(`{"seq":2,"op":"run"}`)...))
	f.Add(append(frame(`{"seq":1,"op":"assert"}`), 0xff, 0xff, 0xff, 0xff)) // huge bogus length
	f.Add(frame(`not json`))
	f.Add(frame(`{"seq":0,"op":"run"}`)) // non-monotonic seq
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 'x'})

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "wal.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		l, res, err := Open(path, Options{})
		if err != nil {
			return // I/O-level failure is acceptable; panicking is not
		}
		l.Close()
		l2, res2, err := Open(path, Options{})
		if err != nil {
			t.Fatalf("second open failed after truncating scan: %v", err)
		}
		defer l2.Close()
		if res2.TruncatedBytes != 0 {
			t.Fatalf("second scan still truncated %d bytes", res2.TruncatedBytes)
		}
		if len(res2.Records) != len(res.Records) {
			t.Fatalf("second scan saw %d records, first saw %d", len(res2.Records), len(res.Records))
		}
	})
}
