// Package wal implements the per-session write-ahead log behind
// paruleld's durability layer. A log is a flat file of framed,
// CRC32-checksummed records describing a session's externally visible
// history: its creation, every fact assertion and retraction, every
// snapshot import, and the committed extent of every run. Because the
// PARULEL engine is deterministic for a fixed program and mutation
// history (time tags, conflict resolution and gensym values all derive
// from deterministic instantiation order — see DESIGN.md), replaying a
// log against a fresh engine reconstructs bit-identical session state;
// the log therefore records *logical* operations, never working-memory
// bytes.
//
// Recovery tolerates torn writes: scanning stops at the first frame that
// is truncated, fails its checksum, or does not decode, and the file is
// truncated back to the last valid record. Everything before that point
// is trusted; everything after is the write that was in flight when the
// process died.
package wal

import (
	"fmt"
	"math"
	"strconv"

	"parulel/internal/wm"
)

// Record operations. A log begins with exactly one OpCreate record;
// every later record is a mutation or run boundary.
const (
	// OpCreate opens a session: program identity, compiled source,
	// worker count, matcher and cycle cap.
	OpCreate = "create"
	// OpAssert inserts Facts (in order) into working memory.
	OpAssert = "assert"
	// OpRetract removes every live WME of Template whose fields equal
	// Fields; Count is the number removed, verified on replay.
	OpRetract = "retract"
	// OpRun marks a run boundary: Cycles engine cycles committed (the
	// per-run delta, not the cumulative count) and whether the program
	// halted. Replay re-executes exactly that many cycles.
	OpRun = "run"
	// OpImport inserts the facts of a `(wm …)` snapshot given verbatim
	// in Text.
	OpImport = "import"
	// OpBatch applies the nested Ops records in order. The whole batch is
	// one frame, so recovery sees it atomically: either every nested op
	// replays or (torn write) none of them exist. Nested records carry no
	// sequence numbers of their own.
	OpBatch = "batch"
	// OpJob marks an async-job lifecycle transition: Job is the job id,
	// JobStatus the state entered ("queued", "done", "canceled", "error").
	// It has no effect on engine state; recovery uses it to reconstruct
	// the job registry — a job whose last logged status is "queued" was in
	// flight at the crash and surfaces as "interrupted".
	OpJob = "job"
	// OpTick advances the session's temporal clock by one: TTL'd facts are
	// absorbed, due facts expire (engine-driven retracts through the
	// normal redaction path) and window aggregates refresh. Tick is the
	// resulting clock value and Count the number of facts expired; both
	// are verified on replay — expiry is deterministic, so a replayed tick
	// that expires a different set of facts is divergence, not drift.
	OpTick = "tick"
)

// Record is one logged operation. Exactly the fields relevant to Op are
// populated; the rest stay at their zero values and are elided from the
// JSON payload.
type Record struct {
	Seq uint64 `json:"seq"`
	Op  string `json:"op"`

	// OpCreate.
	Program   string `json:"program,omitempty"`
	Source    string `json:"source,omitempty"`
	Workers   int    `json:"workers,omitempty"`
	Matcher   string `json:"matcher,omitempty"`
	MaxCycles int    `json:"max_cycles,omitempty"`
	CreatedNS int64  `json:"created_ns,omitempty"`

	// OpAssert.
	Facts []Fact `json:"facts,omitempty"`

	// OpRetract.
	Template string           `json:"template,omitempty"`
	Fields   map[string]Value `json:"fields,omitempty"`
	Count    int              `json:"count,omitempty"`

	// OpRun.
	Cycles int  `json:"cycles,omitempty"`
	Halted bool `json:"halted,omitempty"`

	// OpImport.
	Text string `json:"text,omitempty"`

	// OpBatch: the nested operations, applied in order on replay.
	Ops []Record `json:"ops,omitempty"`

	// OpTick: the temporal clock value after the tick (Count above holds
	// the number of facts the tick expired).
	Tick int64 `json:"tick,omitempty"`

	// OpJob.
	Job       string `json:"job,omitempty"`
	JobStatus string `json:"job_status,omitempty"`
}

// Fact is one asserted working-memory element. TTL, when positive,
// overrides the template's default lifetime for this fact: it expires
// TTL ticks after the temporal clock absorbs it. Replay re-applies the
// same override, so expiry reproduces identically after recovery.
type Fact struct {
	Template string           `json:"template"`
	Fields   map[string]Value `json:"fields,omitempty"`
	TTL      int64            `json:"ttl,omitempty"`
}

// Value is the log's exact encoding of a wm.Value. Floats are stored as
// their IEEE-754 bit pattern so every value — including ones whose
// decimal rendering would lose precision or has no literal form (NaN,
// ±Inf) — survives a round trip byte-identically.
type Value struct {
	K string `json:"k"`           // "n" nil, "i" int, "f" float, "s" symbol, "t" string
	I int64  `json:"i,omitempty"` // KindInt payload
	F string `json:"f,omitempty"` // KindFloat payload: Float64bits, decimal
	S string `json:"s,omitempty"` // KindSym / KindStr payload
}

// EncodeValue converts a wm.Value into its log form.
func EncodeValue(v wm.Value) Value {
	switch v.Kind {
	case wm.KindInt:
		return Value{K: "i", I: v.I}
	case wm.KindFloat:
		return Value{K: "f", F: strconv.FormatUint(math.Float64bits(v.F), 10)}
	case wm.KindSym:
		return Value{K: "s", S: v.S}
	case wm.KindStr:
		return Value{K: "t", S: v.S}
	default:
		return Value{K: "n"}
	}
}

// DecodeValue converts a logged value back into a wm.Value.
func DecodeValue(v Value) (wm.Value, error) {
	switch v.K {
	case "n":
		return wm.Nil(), nil
	case "i":
		return wm.Int(v.I), nil
	case "f":
		bits, err := strconv.ParseUint(v.F, 10, 64)
		if err != nil {
			return wm.Value{}, fmt.Errorf("wal: bad float bits %q: %w", v.F, err)
		}
		return wm.Float(math.Float64frombits(bits)), nil
	case "s":
		return wm.Sym(v.S), nil
	case "t":
		return wm.Str(v.S), nil
	default:
		return wm.Value{}, fmt.Errorf("wal: unknown value kind %q", v.K)
	}
}

// EncodeFields converts an attribute→value map into log form.
func EncodeFields(fields map[string]wm.Value) map[string]Value {
	if fields == nil {
		return nil
	}
	out := make(map[string]Value, len(fields))
	for k, v := range fields {
		out[k] = EncodeValue(v)
	}
	return out
}

// DecodeFields converts a logged field map back into engine form.
func DecodeFields(fields map[string]Value) (map[string]wm.Value, error) {
	out := make(map[string]wm.Value, len(fields))
	for k, v := range fields {
		dv, err := DecodeValue(v)
		if err != nil {
			return nil, fmt.Errorf("wal: field %s: %w", k, err)
		}
		out[k] = dv
	}
	return out, nil
}
