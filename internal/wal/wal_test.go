package wal

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"parulel/internal/wm"
)

func openTemp(t *testing.T, opts Options) (*Log, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal.log")
	l, res, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 0 || res.TruncatedBytes != 0 {
		t.Fatalf("fresh log not empty: %+v", res)
	}
	t.Cleanup(func() { l.Close() })
	return l, path
}

func sampleRecords() []Record {
	return []Record{
		{Op: OpCreate, Program: "quickstart", Source: "(literalize a x)", Workers: 4, Matcher: "rete", MaxCycles: 100},
		{Op: OpAssert, Facts: []Fact{
			{Template: "a", Fields: map[string]Value{"x": EncodeValue(wm.Int(7))}},
			{Template: "a", Fields: map[string]Value{"x": EncodeValue(wm.Sym("hello"))}},
		}},
		{Op: OpRun, Cycles: 12, Halted: false},
		{Op: OpRetract, Template: "a", Fields: map[string]Value{"x": EncodeValue(wm.Int(7))}, Count: 1},
		{Op: OpImport, Text: "(wm (a ^x 3))"},
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	l, path := openTemp(t, Options{Policy: PolicyAlways})
	want := sampleRecords()
	for i := range want {
		if err := l.Append(&want[i]); err != nil {
			t.Fatal(err)
		}
		if want[i].Seq != uint64(i+1) {
			t.Fatalf("record %d assigned seq %d", i, want[i].Seq)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, res, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if res.TruncatedBytes != 0 {
		t.Fatalf("clean log reported %d truncated bytes", res.TruncatedBytes)
	}
	if !reflect.DeepEqual(res.Records, want) {
		t.Fatalf("replay mismatch:\ngot  %+v\nwant %+v", res.Records, want)
	}
	// Sequence numbering continues where the scan left off.
	extra := Record{Op: OpRun, Cycles: 1}
	if err := l2.Append(&extra); err != nil {
		t.Fatal(err)
	}
	if extra.Seq != uint64(len(want)+1) {
		t.Fatalf("continued seq = %d, want %d", extra.Seq, len(want)+1)
	}
}

func TestTornTailTruncated(t *testing.T) {
	l, path := openTemp(t, Options{Policy: PolicyAlways})
	recs := sampleRecords()
	for i := range recs {
		if err := l.Append(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	cleanSize := info.Size()

	for name, mutate := range map[string]func([]byte) []byte{
		// A frame header with no payload behind it.
		"torn header": func(b []byte) []byte { return append(b, 0x40, 0, 0, 0, 1, 2, 3, 4) },
		// A plausible frame whose payload is cut short.
		"torn payload": func(b []byte) []byte {
			return append(b, 0x40, 0, 0, 0, 1, 2, 3, 4, 'p', 'a', 'r')
		},
		// A full frame whose checksum is wrong.
		"bad checksum": func(b []byte) []byte {
			return append(b, 4, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, '{', '}', ' ', ' ')
		},
		// Raw garbage.
		"garbage": func(b []byte) []byte { return append(b, []byte("not a frame at all")...) },
	} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		dirty := filepath.Join(t.TempDir(), "dirty.log")
		if err := os.WriteFile(dirty, mutate(append([]byte(nil), data...)), 0o644); err != nil {
			t.Fatal(err)
		}
		l2, res, err := Open(dirty, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Records) != len(recs) {
			t.Fatalf("%s: recovered %d records, want %d", name, len(res.Records), len(recs))
		}
		if res.TruncatedBytes == 0 {
			t.Fatalf("%s: no truncation reported", name)
		}
		// The file itself must be truncated back to the valid prefix so a
		// subsequent append produces a clean log again.
		if info, err := os.Stat(dirty); err != nil || info.Size() != cleanSize {
			t.Fatalf("%s: file size %d after recovery, want %d (err=%v)", name, info.Size(), cleanSize, err)
		}
		l2.Close()
	}
}

func TestCorruptionMidFileDropsSuffix(t *testing.T) {
	l, path := openTemp(t, Options{Policy: PolicyAlways})
	recs := sampleRecords()
	for i := range recs {
		if err := l.Append(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	// Flip a byte inside the second record's payload: records 2..n are
	// unreachable (scanning cannot resynchronize) and must be dropped.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[frameHeader+int(data[0])+frameHeader+4] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, res, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(res.Records) != 1 {
		t.Fatalf("recovered %d records, want 1", len(res.Records))
	}
	if res.TruncatedBytes == 0 {
		t.Fatal("no truncation reported")
	}
}

func TestResetKeepsSequence(t *testing.T) {
	l, path := openTemp(t, Options{Policy: PolicyAlways})
	r1 := Record{Op: OpRun, Cycles: 1}
	r2 := Record{Op: OpRun, Cycles: 2}
	if err := l.Append(&r1); err != nil {
		t.Fatal(err)
	}
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(&r2); err != nil {
		t.Fatal(err)
	}
	if r2.Seq != 2 {
		t.Fatalf("post-reset seq = %d, want 2", r2.Seq)
	}
	l.Close()
	_, res, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 || res.Records[0].Seq != 2 {
		t.Fatalf("post-reset replay: %+v", res.Records)
	}
}

// TestAdvanceSeqAfterReopen: a Reset (checkpoint) followed by a reopen
// loses the in-memory counter — the file is empty, so Open scans seq 0.
// AdvanceSeq restores the externally remembered sequence point so new
// appends sort strictly after it; advancing backwards is a no-op.
func TestAdvanceSeqAfterReopen(t *testing.T) {
	l, path := openTemp(t, Options{Policy: PolicyAlways})
	for i := 0; i < 3; i++ {
		if err := l.Append(&Record{Op: OpRun, Cycles: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2, res, err := Open(path, Options{Policy: PolicyAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(res.Records) != 0 || l2.Seq() != 0 {
		t.Fatalf("reopened emptied log: records=%d seq=%d", len(res.Records), l2.Seq())
	}
	l2.AdvanceSeq(3)
	l2.AdvanceSeq(1) // backwards is a no-op
	if got := l2.Seq(); got != 3 {
		t.Fatalf("advanced seq = %d, want 3", got)
	}
	rec := Record{Op: OpRun, Cycles: 9}
	if err := l2.Append(&rec); err != nil {
		t.Fatal(err)
	}
	if rec.Seq != 4 {
		t.Fatalf("post-advance append seq = %d, want 4", rec.Seq)
	}
}

func TestValueCodecExact(t *testing.T) {
	vals := []wm.Value{
		wm.Nil(), wm.Int(0), wm.Int(-9_223_372_036_854_775_808), wm.Int(42),
		wm.Float(0), wm.Float(0.1), wm.Float(math.Pi), wm.Float(math.Inf(1)),
		wm.Float(math.Inf(-1)), wm.Float(math.SmallestNonzeroFloat64),
		wm.Sym("x"), wm.Sym("a b c"), wm.Str(""), wm.Str("line\nbreak"),
	}
	for _, v := range vals {
		back, err := DecodeValue(EncodeValue(v))
		if err != nil {
			t.Fatalf("decode %v: %v", v, err)
		}
		if back != v {
			t.Errorf("round trip %#v -> %#v", v, back)
		}
	}
	// NaN != NaN under ==; compare bit patterns.
	nan := wm.Float(math.NaN())
	back, err := DecodeValue(EncodeValue(nan))
	if err != nil || back.Kind != wm.KindFloat || math.Float64bits(back.F) != math.Float64bits(nan.F) {
		t.Errorf("NaN round trip failed: %#v, %v", back, err)
	}
	if _, err := DecodeValue(Value{K: "bogus"}); err == nil {
		t.Error("unknown kind should fail to decode")
	}
}

func TestFsyncPoliciesAndCallbacks(t *testing.T) {
	var appended, syncs int
	opts := Options{
		Policy:   PolicyAlways,
		OnAppend: func(n int) { appended += n },
		OnFsync:  func(time.Duration) { syncs++ },
	}
	l, _ := openTemp(t, opts)
	rec := Record{Op: OpRun, Cycles: 1}
	if err := l.Append(&rec); err != nil {
		t.Fatal(err)
	}
	if appended == 0 || syncs != 1 {
		t.Fatalf("always: appended=%d syncs=%d", appended, syncs)
	}

	// Interval: the flusher syncs a dirty log without explicit Sync calls.
	var mu chan struct{} = make(chan struct{}, 1)
	intervalSyncs := 0
	l2, _ := openTemp(t, Options{Policy: PolicyInterval, Interval: 5 * time.Millisecond,
		OnFsync: func(time.Duration) {
			select {
			case mu <- struct{}{}:
			default:
			}
			intervalSyncs++
		}})
	rec2 := Record{Op: OpRun, Cycles: 1}
	if err := l2.Append(&rec2); err != nil {
		t.Fatal(err)
	}
	select {
	case <-mu:
	case <-time.After(5 * time.Second):
		t.Fatal("interval flusher never synced")
	}

	// Never: no fsync on append; Close still flushes buffered state.
	neverSyncs := 0
	l3, _ := openTemp(t, Options{Policy: PolicyNever, OnFsync: func(time.Duration) { neverSyncs++ }})
	rec3 := Record{Op: OpRun, Cycles: 1}
	if err := l3.Append(&rec3); err != nil {
		t.Fatal(err)
	}
	if neverSyncs != 0 {
		t.Fatalf("never policy issued %d fsyncs on append", neverSyncs)
	}
	if err := l3.Close(); err != nil {
		t.Fatal(err)
	}
	if neverSyncs != 1 {
		t.Fatalf("close should fsync once, got %d", neverSyncs)
	}
}

func TestAppendKeepSeqPreservesNumbering(t *testing.T) {
	l, path := openTemp(t, Options{Policy: PolicyAlways})
	// A replica receives records numbered by the primary, with gaps where
	// the primary checkpointed.
	for _, seq := range []uint64{3, 4, 9} {
		rec := Record{Op: OpRun, Cycles: int(seq), Seq: seq}
		if err := l.AppendKeepSeq(&rec); err != nil {
			t.Fatal(err)
		}
	}
	// Stale and duplicate sequence numbers are rejected, not written.
	for _, seq := range []uint64{9, 2} {
		if err := l.AppendKeepSeq(&Record{Op: OpRun, Seq: seq}); err == nil {
			t.Fatalf("seq %d after 9 should be rejected", seq)
		}
	}
	// Local numbering continues after the preserved sequence point.
	rec := Record{Op: OpRun}
	if err := l.Append(&rec); err != nil {
		t.Fatal(err)
	}
	if rec.Seq != 10 {
		t.Fatalf("append after keep-seq assigned %d, want 10", rec.Seq)
	}
	l.Close()
	_, res, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := make([]uint64, 0, len(res.Records))
	for _, r := range res.Records {
		got = append(got, r.Seq)
	}
	if !reflect.DeepEqual(got, []uint64{3, 4, 9, 10}) {
		t.Fatalf("replayed seqs = %v", got)
	}
}

func TestScanFileLeavesLogUntouched(t *testing.T) {
	l, path := openTemp(t, Options{Policy: PolicyAlways})
	want := sampleRecords()
	for i := range want {
		if err := l.Append(&want[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Scan while the log is still open for appending.
	res, err := ScanFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Records, want) {
		t.Fatalf("scan mismatch:\ngot  %+v\nwant %+v", res.Records, want)
	}
	// The open log keeps working after the read-only scan.
	extra := Record{Op: OpRun, Cycles: 99}
	if err := l.Append(&extra); err != nil {
		t.Fatal(err)
	}
	// A missing file is an empty log, not an error.
	res, err = ScanFile(filepath.Join(t.TempDir(), "absent.log"))
	if err != nil || len(res.Records) != 0 {
		t.Fatalf("missing file: res=%+v err=%v", res, err)
	}
}

func TestTailAfter(t *testing.T) {
	recs := []Record{{Seq: 1}, {Seq: 5}, {Seq: 6}}
	if got := TailAfter(recs, 5); len(got) != 1 || got[0].Seq != 6 {
		t.Fatalf("TailAfter(5) = %+v", got)
	}
	if got := TailAfter(recs, 0); len(got) != 3 {
		t.Fatalf("TailAfter(0) = %+v", got)
	}
	if got := TailAfter(recs, 6); len(got) != 0 {
		t.Fatalf("TailAfter(6) = %+v", got)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	l, _ := openTemp(t, Options{})
	l.Close()
	rec := Record{Op: OpRun}
	if err := l.Append(&rec); err == nil {
		t.Fatal("append after close should fail")
	}
}
