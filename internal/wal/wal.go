package wal

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"
)

// Frame layout: [payload length, uint32 LE][CRC32 (IEEE) of payload,
// uint32 LE][payload JSON]. The length comes first so a scan can skip to
// the checksum cheaply; both header fields are covered implicitly — a
// corrupt length either fails the read or yields a payload that fails
// the checksum.
const frameHeader = 8

// maxRecordBytes bounds a single record. Anything larger in a scanned
// file is treated as corruption rather than an allocation request — the
// length field of a torn frame is attacker/garbage-controlled.
const maxRecordBytes = 64 << 20

// Policy selects when appended records are fsynced to stable storage.
type Policy uint8

const (
	// PolicyInterval (the default) syncs dirty logs on a background
	// ticker: bounded data loss (one interval) at near-PolicyNever cost.
	PolicyInterval Policy = iota
	// PolicyAlways syncs after every append: no committed operation is
	// ever lost, at one fsync per request.
	PolicyAlways
	// PolicyNever leaves syncing to the operating system: crash of the
	// process alone loses nothing (writes are in the page cache), crash
	// of the machine may lose recent records.
	PolicyNever
)

func (p Policy) String() string {
	switch p {
	case PolicyAlways:
		return "always"
	case PolicyNever:
		return "never"
	default:
		return "interval"
	}
}

// ParsePolicy parses "always", "interval" or "never".
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "always":
		return PolicyAlways, nil
	case "", "interval":
		return PolicyInterval, nil
	case "never":
		return PolicyNever, nil
	default:
		return PolicyInterval, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or never)", s)
	}
}

// Options tunes a Log. The callbacks feed the server's /metrics
// aggregation; nil callbacks are skipped.
type Options struct {
	Policy Policy
	// Interval is the flush period under PolicyInterval. Default 100ms.
	Interval time.Duration
	// OnAppend observes every appended record's framed size in bytes.
	OnAppend func(bytes int)
	// OnFsync observes the latency of every fsync issued.
	OnFsync func(d time.Duration)
}

// ScanResult reports what Open found in an existing log file.
type ScanResult struct {
	// Records are the valid records, in append order.
	Records []Record
	// TruncatedBytes is how much torn/corrupt tail was cut off.
	TruncatedBytes int64
}

// Log is an append-only record log. All methods are safe for concurrent
// use; appends are serialized internally.
type Log struct {
	mu     sync.Mutex
	f      *os.File
	opts   Options
	seq    uint64 // last sequence number assigned
	dirty  bool
	closed bool

	lastFsync time.Duration // duration of the most recent fsync, taken by TakeLastFsync

	flushStop chan struct{}
	flushDone chan struct{}
}

// Open opens (creating if absent) the log at path for appending. An
// existing file is scanned first: valid records are returned and any
// torn or corrupt tail is truncated away, so the returned log is always
// positioned at the end of the valid prefix.
func Open(path string, opts Options) (*Log, ScanResult, error) {
	if opts.Interval <= 0 {
		opts.Interval = 100 * time.Millisecond
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, ScanResult{}, err
	}
	res, lastSeq, validEnd, err := scan(f)
	if err != nil {
		f.Close()
		return nil, ScanResult{}, err
	}
	if res.TruncatedBytes > 0 {
		if err := f.Truncate(validEnd); err != nil {
			f.Close()
			return nil, ScanResult{}, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(validEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, ScanResult{}, err
	}
	l := &Log{f: f, opts: opts, seq: lastSeq}
	if opts.Policy == PolicyInterval {
		l.flushStop = make(chan struct{})
		l.flushDone = make(chan struct{})
		go l.flusher()
	}
	return l, res, nil
}

// scan reads every valid record, returning them plus the last sequence
// number seen and the offset of the end of the valid prefix.
func scan(f *os.File) (ScanResult, uint64, int64, error) {
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return ScanResult{}, 0, 0, err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return ScanResult{}, 0, 0, err
	}
	var (
		res      ScanResult
		rd       = bufio.NewReader(f)
		off      int64
		lastSeq  uint64
		header   [frameHeader]byte
		validEnd int64
	)
	for {
		if _, err := io.ReadFull(rd, header[:]); err != nil {
			break // clean EOF or torn header — either way the prefix ends here
		}
		n := binary.LittleEndian.Uint32(header[0:4])
		sum := binary.LittleEndian.Uint32(header[4:8])
		if n == 0 || n > maxRecordBytes {
			break
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(rd, payload); err != nil {
			break
		}
		if crc32.ChecksumIEEE(payload) != sum {
			break
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			break
		}
		if rec.Seq <= lastSeq {
			break // sequence must be strictly increasing
		}
		lastSeq = rec.Seq
		off += frameHeader + int64(n)
		validEnd = off
		res.Records = append(res.Records, rec)
	}
	res.TruncatedBytes = size - validEnd
	return res, lastSeq, validEnd, nil
}

// Append frames, checksums and writes one record, assigning it the next
// sequence number (stored into rec.Seq). Under PolicyAlways the record
// is on stable storage when Append returns.
func (l *Log) Append(rec *Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log is closed")
	}
	l.seq++
	rec.Seq = l.seq
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("wal: encoding record: %w", err)
	}
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeader:], payload)
	if _, err := l.f.Write(frame); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if l.opts.OnAppend != nil {
		l.opts.OnAppend(len(frame))
	}
	if l.opts.Policy == PolicyAlways {
		return l.syncLocked()
	}
	l.dirty = true
	return nil
}

// AppendKeepSeq writes one record preserving the sequence number it
// already carries instead of assigning the next local one. Replica logs
// use it so a primary's records keep their numbering and a promoted
// replica recovers exactly like a crashed primary. The sequence must
// still be strictly increasing — a stale or duplicate record is
// rejected rather than written, since scan would silently stop at it on
// the next recovery.
func (l *Log) AppendKeepSeq(rec *Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log is closed")
	}
	if rec.Seq <= l.seq {
		return fmt.Errorf("wal: out-of-order append: seq %d after %d", rec.Seq, l.seq)
	}
	l.seq = rec.Seq
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("wal: encoding record: %w", err)
	}
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeader:], payload)
	if _, err := l.f.Write(frame); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if l.opts.OnAppend != nil {
		l.opts.OnAppend(len(frame))
	}
	if l.opts.Policy == PolicyAlways {
		return l.syncLocked()
	}
	l.dirty = true
	return nil
}

// ScanFile reads the valid record prefix of the log at path without
// opening it for writing or truncating a torn tail. A missing file is an
// empty log. The session-migration path uses it to snapshot the WAL tail
// of a live session whose Log handle stays open.
func ScanFile(path string) (ScanResult, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return ScanResult{}, nil
		}
		return ScanResult{}, err
	}
	defer f.Close()
	res, _, _, err := scan(f)
	return res, err
}

// TailAfter filters recs down to those with sequence numbers beyond seq.
// Recovery and state transfer both pair a checkpoint (covering
// everything up to its header's Seq) with the WAL records behind it.
func TailAfter(recs []Record, seq uint64) []Record {
	out := recs[:0:0]
	for _, r := range recs {
		if r.Seq > seq {
			out = append(out, r)
		}
	}
	return out
}

// Seq returns the last sequence number assigned (or recovered).
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// AdvanceSeq raises the sequence counter to at least n. Open derives the
// counter from the file alone, but a checkpoint empties the file: after a
// reopen the counter would restart below the checkpoint's sequence point
// and fresh appends would reuse covered numbers — which the next recovery
// skips as already checkpointed. Recovery calls this with the checkpoint
// header's Seq so post-recovery appends sort strictly after it.
func (l *Log) AdvanceSeq(n uint64) {
	l.mu.Lock()
	if n > l.seq {
		l.seq = n
	}
	l.mu.Unlock()
}

// Sync flushes appended records to stable storage if any are pending.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || !l.dirty {
		return nil
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	t0 := time.Now()
	err := l.f.Sync()
	l.lastFsync = time.Since(t0)
	if l.opts.OnFsync != nil {
		l.opts.OnFsync(l.lastFsync)
	}
	if err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.dirty = false
	return nil
}

// TakeLastFsync returns the duration of the most recent fsync and
// zeroes it, so a caller timing one append can attribute the inline
// flush that append triggered (meaningful under PolicyAlways, where
// every append fsyncs before returning; zero otherwise).
func (l *Log) TakeLastFsync() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	d := l.lastFsync
	l.lastFsync = 0
	return d
}

// Reset discards every record in the file — they are covered by a
// checkpoint — while the sequence numbering continues, so records
// written afterwards sort strictly after the checkpoint's sequence
// point even if a crash prevents the truncation from being observed.
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log is closed")
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: reset: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal: reset: %w", err)
	}
	return l.syncLocked()
}

// Close flushes and closes the log. Safe to call more than once.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	var err error
	if l.dirty {
		if serr := l.syncLocked(); serr != nil {
			err = serr
		}
	}
	if cerr := l.f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	stop := l.flushStop
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-l.flushDone
	}
	return err
}

// flusher periodically syncs a dirty log under PolicyInterval.
func (l *Log) flusher() {
	defer close(l.flushDone)
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-l.flushStop:
			return
		case <-t.C:
			_ = l.Sync() // the next Append surfaces a persistent write error
		}
	}
}
