package wal

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"
)

// Frame layout: [payload length, uint32 LE][CRC32 (IEEE) of payload,
// uint32 LE][payload JSON]. The length comes first so a scan can skip to
// the checksum cheaply; both header fields are covered implicitly — a
// corrupt length either fails the read or yields a payload that fails
// the checksum.
const frameHeader = 8

// maxRecordBytes bounds a single record. Anything larger in a scanned
// file is treated as corruption rather than an allocation request — the
// length field of a torn frame is attacker/garbage-controlled.
const maxRecordBytes = 64 << 20

// Policy selects when appended records are fsynced to stable storage.
type Policy uint8

const (
	// PolicyInterval (the default) syncs dirty logs on a background
	// ticker: bounded data loss (one interval) at near-PolicyNever cost.
	PolicyInterval Policy = iota
	// PolicyAlways syncs after every append: no committed operation is
	// ever lost, at one fsync per request.
	PolicyAlways
	// PolicyNever leaves syncing to the operating system: crash of the
	// process alone loses nothing (writes are in the page cache), crash
	// of the machine may lose recent records.
	PolicyNever
	// PolicyGroup gives PolicyAlways durability at a fraction of the
	// fsync count: every append blocks until its record is on stable
	// storage, but concurrent appends are coalesced into one batched
	// flush by a per-log commit daemon. Under contention one fsync
	// retires a whole cohort of appends; an uncontended append costs
	// the same single fsync PolicyAlways would.
	PolicyGroup
)

func (p Policy) String() string {
	switch p {
	case PolicyAlways:
		return "always"
	case PolicyNever:
		return "never"
	case PolicyGroup:
		return "group"
	default:
		return "interval"
	}
}

// ParsePolicy parses "always", "group", "interval" or "never".
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "always":
		return PolicyAlways, nil
	case "group":
		return PolicyGroup, nil
	case "", "interval":
		return PolicyInterval, nil
	case "never":
		return PolicyNever, nil
	default:
		return PolicyInterval, fmt.Errorf("wal: unknown fsync policy %q (want always, group, interval or never)", s)
	}
}

// Options tunes a Log. The callbacks feed the server's /metrics
// aggregation; nil callbacks are skipped.
type Options struct {
	Policy Policy
	// Interval is the flush period under PolicyInterval. Default 100ms.
	Interval time.Duration
	// GroupWait bounds how long the commit daemon parks after being woken
	// before flushing, letting more appenders join the cohort
	// (PolicyGroup). Zero flushes immediately: coalescing still happens
	// because appends arriving while a flush is in flight share the next
	// one.
	GroupWait time.Duration
	// OnAppend observes every appended record's framed size in bytes.
	OnAppend func(bytes int)
	// OnFsync observes the latency of every fsync issued.
	OnFsync func(d time.Duration)
	// OnGroupCommit observes each group flush's cohort size — the number
	// of appends one fsync made durable (PolicyGroup only).
	OnGroupCommit func(cohort int)
	// FsyncFn replaces the file-sync call. Tests inject failing or
	// bookkeeping syncs through it; nil means (*os.File).Sync.
	FsyncFn func(*os.File) error
}

// ScanResult reports what Open found in an existing log file.
type ScanResult struct {
	// Records are the valid records, in append order.
	Records []Record
	// TruncatedBytes is how much torn/corrupt tail was cut off.
	TruncatedBytes int64
}

// Log is an append-only record log. All methods are safe for concurrent
// use; appends are serialized internally.
type Log struct {
	mu        sync.Mutex
	groupCond sync.Cond // broadcast when flushedSeq advances or syncErr latches
	f         *os.File
	opts      Options
	seq       uint64 // last sequence number assigned
	dirty     bool
	closed    bool

	// flushedSeq is the highest sequence number known to be on stable
	// storage. Group-commit waiters park until it covers their record.
	flushedSeq uint64
	// groupPending counts appends written since the last group flush
	// began; the daemon reports it through OnGroupCommit.
	groupPending int
	// syncErr latches the first fsync failure permanently: once the
	// kernel has dropped dirty pages on an fsync error, retrying cannot
	// recover them, so every later append/sync must fail rather than
	// silently acknowledge writes that may never reach the disk.
	syncErr error

	// ledger, when set, mirrors every appended frame into a Merkle
	// ledger and is flushed after each successful fsync, so a durable
	// ledger entry implies a durable frame under always/group policies.
	ledger *Ledger

	flushStop chan struct{}
	flushDone chan struct{}
	groupWake chan struct{}
	groupStop chan struct{}
	groupDone chan struct{}
}

// Open opens (creating if absent) the log at path for appending. An
// existing file is scanned first: valid records are returned and any
// torn or corrupt tail is truncated away, so the returned log is always
// positioned at the end of the valid prefix.
func Open(path string, opts Options) (*Log, ScanResult, error) {
	if opts.Interval <= 0 {
		opts.Interval = 100 * time.Millisecond
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, ScanResult{}, err
	}
	res, lastSeq, validEnd, err := scan(f)
	if err != nil {
		f.Close()
		return nil, ScanResult{}, err
	}
	if res.TruncatedBytes > 0 {
		if err := f.Truncate(validEnd); err != nil {
			f.Close()
			return nil, ScanResult{}, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(validEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, ScanResult{}, err
	}
	l := &Log{f: f, opts: opts, seq: lastSeq, flushedSeq: lastSeq}
	l.groupCond.L = &l.mu
	switch opts.Policy {
	case PolicyInterval:
		l.flushStop = make(chan struct{})
		l.flushDone = make(chan struct{})
		go l.flusher()
	case PolicyGroup:
		l.groupWake = make(chan struct{}, 1)
		l.groupStop = make(chan struct{})
		l.groupDone = make(chan struct{})
		go l.committer()
	}
	return l, res, nil
}

// scan reads every valid record, returning them plus the last sequence
// number seen and the offset of the end of the valid prefix.
func scan(f *os.File) (ScanResult, uint64, int64, error) {
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return ScanResult{}, 0, 0, err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return ScanResult{}, 0, 0, err
	}
	var (
		res      ScanResult
		rd       = bufio.NewReader(f)
		off      int64
		lastSeq  uint64
		header   [frameHeader]byte
		validEnd int64
	)
	for {
		if _, err := io.ReadFull(rd, header[:]); err != nil {
			break // clean EOF or torn header — either way the prefix ends here
		}
		n := binary.LittleEndian.Uint32(header[0:4])
		sum := binary.LittleEndian.Uint32(header[4:8])
		if n == 0 || n > maxRecordBytes {
			break
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(rd, payload); err != nil {
			break
		}
		if crc32.ChecksumIEEE(payload) != sum {
			break
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			break
		}
		if rec.Seq <= lastSeq {
			break // sequence must be strictly increasing
		}
		lastSeq = rec.Seq
		off += frameHeader + int64(n)
		validEnd = off
		res.Records = append(res.Records, rec)
	}
	res.TruncatedBytes = size - validEnd
	return res, lastSeq, validEnd, nil
}

// appendLocked frames, checksums and writes one record. With assign set
// the record gets the next local sequence number; otherwise the number
// it carries is kept (and must still be strictly increasing). The caller
// holds l.mu.
func (l *Log) appendLocked(rec *Record, assign bool) error {
	if l.closed {
		return errors.New("wal: log is closed")
	}
	if l.syncErr != nil {
		// A background or batched fsync failed after an earlier append
		// was acknowledged optimistically; surface it now instead of
		// accepting writes that may never reach the disk.
		return l.syncErr
	}
	if assign {
		l.seq++
		rec.Seq = l.seq
	} else {
		if rec.Seq <= l.seq {
			return fmt.Errorf("wal: out-of-order append: seq %d after %d", rec.Seq, l.seq)
		}
		l.seq = rec.Seq
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("wal: encoding record: %w", err)
	}
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeader:], payload)
	if _, err := l.f.Write(frame); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if l.ledger != nil {
		l.ledger.observe(rec.Seq, payload)
	}
	l.dirty = true
	if l.opts.Policy == PolicyGroup {
		l.groupPending++
	}
	if l.opts.OnAppend != nil {
		l.opts.OnAppend(len(frame))
	}
	return nil
}

// settleLocked makes the record at seq durable per the log's policy and
// reports how long this append waited on stable storage: the inline
// fsync under PolicyAlways, the park-to-flush wait under PolicyGroup,
// zero under the batched policies. The caller holds l.mu.
func (l *Log) settleLocked(seq uint64) (time.Duration, error) {
	switch l.opts.Policy {
	case PolicyAlways:
		return l.syncLocked()
	case PolicyGroup:
		return l.awaitGroupLocked(seq)
	default:
		return 0, nil
	}
}

// Append frames, checksums and writes one record, assigning it the next
// sequence number (stored into rec.Seq). Under PolicyAlways and
// PolicyGroup the record is on stable storage when Append returns.
func (l *Log) Append(rec *Record) error {
	_, err := l.AppendSynced(rec)
	return err
}

// AppendSynced is Append plus the time this append spent waiting on
// stable storage, so callers can attribute fsync latency — including a
// group commit's shared flush — to the request that paid for it.
func (l *Log) AppendSynced(rec *Record) (time.Duration, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.appendLocked(rec, true); err != nil {
		return 0, err
	}
	return l.settleLocked(rec.Seq)
}

// AppendKeepSeq writes one record preserving the sequence number it
// already carries instead of assigning the next local one. Replica logs
// use it so a primary's records keep their numbering and a promoted
// replica recovers exactly like a crashed primary. The sequence must
// still be strictly increasing — a stale or duplicate record is
// rejected rather than written, since scan would silently stop at it on
// the next recovery.
func (l *Log) AppendKeepSeq(rec *Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.appendLocked(rec, false); err != nil {
		return err
	}
	_, err := l.settleLocked(rec.Seq)
	return err
}

// awaitGroupLocked wakes the commit daemon and parks until the flushed
// horizon covers seq, the log latches a sync error, or the log closes.
// The caller holds l.mu; Wait releases it while parked, which is what
// lets the cohort build up.
func (l *Log) awaitGroupLocked(seq uint64) (time.Duration, error) {
	select {
	case l.groupWake <- struct{}{}:
	default: // daemon already has a wake-up pending
	}
	t0 := time.Now()
	for l.flushedSeq < seq && l.syncErr == nil && !l.closed {
		l.groupCond.Wait()
	}
	d := time.Since(t0)
	if l.flushedSeq >= seq {
		return d, nil // durable, even if a later flush failed
	}
	if l.syncErr != nil {
		return d, l.syncErr
	}
	return d, errors.New("wal: log closed before group flush")
}

// committer is the PolicyGroup flush daemon: woken by the first append
// of a cohort, it (optionally, after GroupWait) snapshots the append
// horizon, fsyncs once outside the log mutex — so more appends can land
// and form the next cohort while the disk works — and wakes every
// appender the flush covered.
func (l *Log) committer() {
	defer close(l.groupDone)
	for {
		select {
		case <-l.groupStop:
			return
		case <-l.groupWake:
		}
		if l.opts.GroupWait > 0 {
			t := time.NewTimer(l.opts.GroupWait)
			select {
			case <-l.groupStop:
				t.Stop()
				return
			case <-t.C:
			}
		}
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return
		}
		target := l.seq
		cohort := l.groupPending
		l.groupPending = 0
		if target <= l.flushedSeq || l.syncErr != nil {
			// Nothing new (Close or an explicit Sync already flushed
			// it) or the log is poisoned; either way wake any waiters.
			l.groupCond.Broadcast()
			l.mu.Unlock()
			continue
		}
		l.mu.Unlock()

		t0 := time.Now()
		err := l.fsyncFile()
		d := time.Since(t0)

		l.mu.Lock()
		if l.opts.OnFsync != nil {
			l.opts.OnFsync(d)
		}
		if err != nil {
			if l.syncErr == nil {
				l.syncErr = fmt.Errorf("wal: fsync: %w", err)
			}
		} else {
			if target > l.flushedSeq {
				l.flushedSeq = target
			}
			l.dirty = l.seq != l.flushedSeq
			if l.opts.OnGroupCommit != nil && cohort > 0 {
				l.opts.OnGroupCommit(cohort)
			}
			if l.ledger != nil {
				if lerr := l.ledger.commitTo(target); lerr != nil && l.syncErr == nil {
					l.syncErr = lerr
				}
			}
		}
		l.groupCond.Broadcast()
		l.mu.Unlock()
	}
}

func (l *Log) fsyncFile() error {
	if l.opts.FsyncFn != nil {
		return l.opts.FsyncFn(l.f)
	}
	return l.f.Sync()
}

// SetLedger attaches a Merkle ledger: every later append feeds it a
// leaf, and each successful fsync flushes its entries up to the synced
// horizon. Attach before the first append (the store wires it between
// Open and use); attaching mid-stream would leave a gap the next
// reconcile rejects.
func (l *Log) SetLedger(led *Ledger) {
	l.mu.Lock()
	l.ledger = led
	l.mu.Unlock()
}

// Ledger returns the attached Merkle ledger, nil if none.
func (l *Log) Ledger() *Ledger {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ledger
}

// ScanFile reads the valid record prefix of the log at path without
// opening it for writing or truncating a torn tail. A missing file is an
// empty log. The session-migration path uses it to snapshot the WAL tail
// of a live session whose Log handle stays open.
func ScanFile(path string) (ScanResult, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return ScanResult{}, nil
		}
		return ScanResult{}, err
	}
	defer f.Close()
	res, _, _, err := scan(f)
	return res, err
}

// TailAfter filters recs down to those with sequence numbers beyond seq.
// Recovery and state transfer both pair a checkpoint (covering
// everything up to its header's Seq) with the WAL records behind it.
func TailAfter(recs []Record, seq uint64) []Record {
	out := recs[:0:0]
	for _, r := range recs {
		if r.Seq > seq {
			out = append(out, r)
		}
	}
	return out
}

// Seq returns the last sequence number assigned (or recovered).
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// AdvanceSeq raises the sequence counter to at least n. Open derives the
// counter from the file alone, but a checkpoint empties the file: after a
// reopen the counter would restart below the checkpoint's sequence point
// and fresh appends would reuse covered numbers — which the next recovery
// skips as already checkpointed. Recovery calls this with the checkpoint
// header's Seq so post-recovery appends sort strictly after it.
func (l *Log) AdvanceSeq(n uint64) {
	l.mu.Lock()
	if n > l.seq {
		l.seq = n
	}
	if n > l.flushedSeq {
		// The skipped numbers carry no bytes; nothing to flush for them.
		l.flushedSeq = n
	}
	l.mu.Unlock()
}

// Sync flushes appended records to stable storage if any are pending.
// A previously latched fsync failure is re-reported rather than retried.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.syncErr != nil {
		return l.syncErr
	}
	if l.closed || !l.dirty {
		return nil
	}
	_, err := l.syncLocked()
	return err
}

// syncLocked fsyncs inline under l.mu, advancing the flushed horizon and
// flushing the ledger on success, latching the error permanently on
// failure. Either way group-commit waiters are woken to observe the new
// state.
func (l *Log) syncLocked() (time.Duration, error) {
	t0 := time.Now()
	err := l.fsyncFile()
	d := time.Since(t0)
	if l.opts.OnFsync != nil {
		l.opts.OnFsync(d)
	}
	if err != nil {
		if l.syncErr == nil {
			l.syncErr = fmt.Errorf("wal: fsync: %w", err)
		}
		l.groupCond.Broadcast()
		return d, l.syncErr
	}
	l.dirty = false
	if l.seq > l.flushedSeq {
		l.flushedSeq = l.seq
	}
	l.groupPending = 0
	if l.ledger != nil {
		if lerr := l.ledger.commitTo(l.seq); lerr != nil {
			if l.syncErr == nil {
				l.syncErr = lerr
			}
			l.groupCond.Broadcast()
			return d, l.syncErr
		}
	}
	l.groupCond.Broadcast()
	return d, nil
}

// Reset discards every record in the file — they are covered by a
// checkpoint — while the sequence numbering continues, so records
// written afterwards sort strictly after the checkpoint's sequence
// point even if a crash prevents the truncation from being observed.
// An attached Merkle ledger is untouched: it records the session's whole
// history, checkpoints included.
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log is closed")
	}
	if l.syncErr != nil {
		return l.syncErr
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: reset: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal: reset: %w", err)
	}
	_, err := l.syncLocked()
	return err
}

// Close flushes and closes the log. Safe to call more than once.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	var err error
	if l.dirty && l.syncErr == nil {
		if _, serr := l.syncLocked(); serr != nil {
			err = serr
		}
	}
	if cerr := l.f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	// Waiters parked on a cohort that will never flush must observe
	// closed rather than sleep forever.
	l.groupCond.Broadcast()
	stop := l.flushStop
	gstop := l.groupStop
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-l.flushDone
	}
	if gstop != nil {
		close(gstop)
		<-l.groupDone
	}
	return err
}

// flusher periodically syncs a dirty log under PolicyInterval. A failed
// sync latches into the log's sticky error, so the next Append reports
// it instead of silently acknowledging an unsyncable write.
func (l *Log) flusher() {
	defer close(l.flushDone)
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-l.flushStop:
			return
		case <-t.C:
			_ = l.Sync() // failure latches; the next Append surfaces it
		}
	}
}
