package wal

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// refMTH is an independent RFC 6962 Merkle tree hash: straight recursion
// with its own split-point computation, against which the incremental
// tree (stored leaves, base peaks, range recursion) is checked.
func refMTH(leaves [][sha256.Size]byte) [sha256.Size]byte {
	n := uint64(len(leaves))
	if n == 0 {
		return sha256.Sum256(nil)
	}
	if n == 1 {
		return leaves[0]
	}
	k := uint64(1)
	for k*2 < n {
		k *= 2
	}
	return interiorHash(refMTH(leaves[:k]), refMTH(leaves[k:]))
}

func testLeaves(n int) ([][sha256.Size]byte, []uint64) {
	leaves := make([][sha256.Size]byte, n)
	seqs := make([]uint64, n)
	for i := range leaves {
		seqs[i] = uint64(i + 1)
		leaves[i] = LeafHash(seqs[i], []byte{byte(i), byte(i >> 8), 0xa7})
	}
	return leaves, seqs
}

func TestMerkleRootMatchesReference(t *testing.T) {
	leaves, seqs := testLeaves(65)
	for n := 0; n <= len(leaves); n++ {
		tr := &merkleTree{leaves: leaves[:n], seqs: seqs[:n]}
		got, err := tr.rootAt(uint64(n))
		if err != nil {
			t.Fatalf("rootAt(%d): %v", n, err)
		}
		if want := refMTH(leaves[:n]); got != want {
			t.Fatalf("root over %d leaves: got %x, want %x", n, got, want)
		}
	}
}

// TestMerkleBaseResume: a tree resumed from the peak decomposition of its
// first k leaves (what a promoted replica or migrated session holds)
// must produce the same roots as the tree that kept every leaf.
func TestMerkleBaseResume(t *testing.T) {
	const total = 40
	leaves, seqs := testLeaves(total)
	full := &merkleTree{leaves: leaves, seqs: seqs}
	for k := uint64(0); k <= 32; k++ {
		peaks, err := full.peaksAt(k)
		if err != nil {
			t.Fatalf("peaksAt(%d): %v", k, err)
		}
		resumed := &merkleTree{base: k, basePeaks: peaks, leaves: leaves[k:], seqs: seqs[k:]}
		for n := k; n <= total; n++ {
			got, err := resumed.rootAt(n)
			if err != nil {
				t.Fatalf("base %d rootAt(%d): %v", k, n, err)
			}
			want, _ := full.rootAt(n)
			if got != want {
				t.Fatalf("base %d root over %d leaves diverges from full tree", k, n)
			}
		}
		// Proofs for retained leaves still verify; summarized ones refuse.
		if k > 0 && k < total {
			if _, err := proveIn(resumed, seqs[k-1]); !errors.Is(err, ErrProofPredates) {
				t.Fatalf("base %d: proof for summarized seq %d: %v", k, seqs[k-1], err)
			}
			p, err := proveIn(resumed, seqs[k])
			if err != nil {
				t.Fatalf("base %d: proof for first retained seq: %v", k, err)
			}
			if err := VerifyProof(p); err != nil {
				t.Fatalf("base %d: retained-leaf proof does not verify: %v", k, err)
			}
		}
	}
}

// proveIn builds a proof directly from a tree, mirroring Ledger.Prove
// without the file plumbing.
func proveIn(tr *merkleTree, seq uint64) (*Proof, error) {
	for i, s := range tr.seqs {
		if s == seq {
			index := tr.base + uint64(i)
			path, err := tr.path(index, 0, tr.count())
			if err != nil {
				return nil, err
			}
			root, err := tr.rootAt(tr.count())
			if err != nil {
				return nil, err
			}
			return &Proof{
				Seq: seq, Index: index, Count: tr.count(),
				Leaf: hex.EncodeToString(tr.leaves[i][:]),
				Path: encodePeaks(path),
				Root: hex.EncodeToString(root[:]),
			}, nil
		}
	}
	if tr.base > 0 && (len(tr.seqs) == 0 || seq < tr.seqs[0]) {
		return nil, ErrProofPredates
	}
	return nil, errors.New("no entry")
}

func openTestLedger(t *testing.T, n int) (*Ledger, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "merkle.log")
	led, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { led.Close() })
	for i := 1; i <= n; i++ {
		led.observe(uint64(i), []byte{byte(i), 0x5a})
	}
	if err := led.SyncAll(); err != nil {
		t.Fatal(err)
	}
	return led, path
}

func TestProofRoundTripAndMutations(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 33} {
		led, _ := openTestLedger(t, n)
		for seq := 1; seq <= n; seq++ {
			p, err := led.Prove(uint64(seq))
			if err != nil {
				t.Fatalf("n=%d Prove(%d): %v", n, seq, err)
			}
			if err := VerifyProof(p); err != nil {
				t.Fatalf("n=%d seq=%d: %v", n, seq, err)
			}
		}
		// Every mutation of a valid proof must fail verification.
		p, err := led.Prove(uint64((n + 1) / 2))
		if err != nil {
			t.Fatal(err)
		}
		// (Count is deliberately absent: some index/count pairs share a
		// direction sequence — e.g. (1,3) and (1,4) — so bumping Count
		// alone can still verify. The root stays bound to the leaf, and
		// the root is what callers trust.)
		mutations := map[string]func(*Proof){
			"leaf":      func(q *Proof) { q.Leaf = flipHex(q.Leaf) },
			"root":      func(q *Proof) { q.Root = flipHex(q.Root) },
			"bad hex":   func(q *Proof) { q.Leaf = "zz" + q.Leaf[2:] },
			"extra sib": func(q *Proof) { q.Path = append(q.Path, q.Leaf) },
		}
		if p.Count > 1 {
			mutations["index"] = func(q *Proof) { q.Index = (q.Index + 1) % q.Count }
		}
		if len(p.Path) > 0 {
			mutations["path hash"] = func(q *Proof) { q.Path[0] = flipHex(q.Path[0]) }
			mutations["dropped sib"] = func(q *Proof) { q.Path = q.Path[:len(q.Path)-1] }
		}
		for name, mutate := range mutations {
			q := *p
			q.Path = append([]string(nil), p.Path...)
			mutate(&q)
			if err := VerifyProof(&q); err == nil {
				t.Fatalf("n=%d: mutated proof (%s) still verifies", n, name)
			}
		}
		// Unknown and out-of-range sequence numbers.
		if _, err := led.Prove(uint64(n + 100)); err == nil {
			t.Fatalf("n=%d: proof for unappended seq succeeded", n)
		}
	}
}

func flipHex(s string) string {
	b, _ := hex.DecodeString(s)
	b[0] ^= 0xff
	return hex.EncodeToString(b)
}

func TestLedgerFileRoundTrip(t *testing.T) {
	led, path := openTestLedger(t, 9)
	want, err := led.State()
	if err != nil {
		t.Fatal(err)
	}
	if err := led.Close(); err != nil {
		t.Fatal(err)
	}

	led2, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	defer led2.Close()
	got, err := led2.State()
	if err != nil {
		t.Fatal(err)
	}
	if got.Count != want.Count || got.Root != want.Root {
		t.Fatalf("reopened ledger: %+v, want %+v", got, want)
	}

	// A torn trailing entry (partial write at crash) is truncated away.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(append([]byte(nil), data...), 0x0a, 0x00, 0x00)
	tornPath := filepath.Join(t.TempDir(), "torn.log")
	if err := os.WriteFile(tornPath, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	led3, err := OpenLedger(tornPath)
	if err != nil {
		t.Fatalf("torn ledger should open: %v", err)
	}
	defer led3.Close()
	if got, _ := led3.State(); got.Root != want.Root {
		t.Fatalf("torn ledger root %s, want %s", got.Root, want.Root)
	}
	if fi, _ := os.Stat(tornPath); fi.Size() != int64(len(data)) {
		t.Fatalf("torn tail not truncated: %d bytes, want %d", fi.Size(), len(data))
	}

	// A corrupted header is an error, never repaired.
	for name, corrupt := range map[string]func([]byte) []byte{
		"magic":   func(b []byte) []byte { b[0] ^= 0xff; return b },
		"header":  func(b []byte) []byte { b[len(ledgerMagic)+2] ^= 0xff; return b },
		"reorder": func(b []byte) []byte { copy(b[len(b)-ledgerEntrySize:], b[len(b)-2*ledgerEntrySize:]); return b },
	} {
		bad := corrupt(append([]byte(nil), data...))
		badPath := filepath.Join(t.TempDir(), "bad.log")
		if err := os.WriteFile(badPath, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenLedger(badPath); !errors.Is(err, ErrLedgerCorrupt) {
			t.Fatalf("%s corruption: got %v, want ErrLedgerCorrupt", name, err)
		}
		if _, err := InspectLedger(badPath); !errors.Is(err, ErrLedgerCorrupt) {
			t.Fatalf("%s corruption (inspect): got %v, want ErrLedgerCorrupt", name, err)
		}
	}
}

// reconcileFixture builds a ledger whose entries match recs exactly, all
// flushed, and returns the records plus the committed state over them.
func reconcileFixture(t *testing.T, n int) (string, []Record, LedgerState) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "merkle.log")
	led, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{Seq: uint64(i + 1), Op: OpRun, Cycles: i + 1}
		payload, err := json.Marshal(&recs[i])
		if err != nil {
			t.Fatal(err)
		}
		led.observe(recs[i].Seq, payload)
	}
	if err := led.SyncAll(); err != nil {
		t.Fatal(err)
	}
	st, err := led.State()
	if err != nil {
		t.Fatal(err)
	}
	if err := led.Close(); err != nil {
		t.Fatal(err)
	}
	return path, recs, st
}

func TestReconcile(t *testing.T) {
	reopen := func(t *testing.T, path string) *Ledger {
		led, err := OpenLedger(path)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { led.Close() })
		return led
	}

	t.Run("clean match", func(t *testing.T) {
		path, recs, st := reconcileFixture(t, 6)
		led := reopen(t, path)
		if err := led.Reconcile(recs, 0, &st); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("restage missed frames", func(t *testing.T) {
		// Crash between WAL fsync and ledger flush: frames past the last
		// entry are re-staged and flushed during reconcile.
		path, recs, _ := reconcileFixture(t, 3)
		extra := Record{Seq: 4, Op: OpRun, Cycles: 99}
		led := reopen(t, path)
		if err := led.Reconcile(append(recs, extra), 0, nil); err != nil {
			t.Fatal(err)
		}
		if led.Count() != 4 {
			t.Fatalf("count after restage = %d, want 4", led.Count())
		}
		led.Close()
		info, err := InspectLedger(path)
		if err != nil || len(info.Entries) != 4 {
			t.Fatalf("restaged entry not flushed: %v entries=%d", err, len(info.Entries))
		}
	})

	t.Run("altered frame", func(t *testing.T) {
		path, recs, _ := reconcileFixture(t, 5)
		recs[2].Cycles = 12345 // same seq, different content
		led := reopen(t, path)
		if err := led.Reconcile(recs, 0, nil); !errors.Is(err, ErrLedgerMismatch) {
			t.Fatalf("got %v, want ErrLedgerMismatch", err)
		}
	})

	t.Run("frame without entry mid-range", func(t *testing.T) {
		// A ledger holding entries {1,2,4,5} meets a WAL holding frames
		// 1..5: frame 3 sits inside the entry range with no entry — the
		// ledger lost history it must hold.
		_, recs, _ := reconcileFixture(t, 5)
		path := filepath.Join(t.TempDir(), "merkle.log")
		led, err := OpenLedger(path)
		if err != nil {
			t.Fatal(err)
		}
		defer led.Close()
		for _, r := range []int{0, 1, 3, 4} {
			payload, _ := json.Marshal(&recs[r])
			led.observe(recs[r].Seq, payload)
		}
		if err := led.SyncAll(); err != nil {
			t.Fatal(err)
		}
		if err := led.Reconcile(recs, 0, nil); !errors.Is(err, ErrLedgerGap) {
			t.Fatalf("got %v, want ErrLedgerGap", err)
		}
	})

	t.Run("commit root mismatch", func(t *testing.T) {
		path, recs, st := reconcileFixture(t, 4)
		st.Root = flipHex(st.Root)
		led := reopen(t, path)
		if err := led.Reconcile(recs, 0, &st); !errors.Is(err, ErrCommitMismatch) {
			t.Fatalf("got %v, want ErrCommitMismatch", err)
		}
	})

	t.Run("commit beyond ledger", func(t *testing.T) {
		path, recs, st := reconcileFixture(t, 4)
		st.Count = 9
		led := reopen(t, path)
		if err := led.Reconcile(recs, 0, &st); !errors.Is(err, ErrLedgerGap) {
			t.Fatalf("got %v, want ErrLedgerGap", err)
		}
	})

	t.Run("ledger ahead of wal", func(t *testing.T) {
		// Entries flush only after the covering WAL fsync, so entries
		// past both the WAL end and the checkpoint horizon are tampering
		// (a cut log or padded ledger), not crash debris.
		path, recs, _ := reconcileFixture(t, 5)
		led := reopen(t, path)
		if err := led.Reconcile(recs[:3], 0, nil); !errors.Is(err, ErrLedgerAhead) {
			t.Fatalf("got %v, want ErrLedgerAhead", err)
		}
	})

	t.Run("checkpoint horizon excuses missing frames", func(t *testing.T) {
		// After a checkpoint empties the log, entries at or below the
		// horizon legitimately have no frames.
		path, recs, st := reconcileFixture(t, 5)
		led := reopen(t, path)
		if err := led.Reconcile(nil, recs[len(recs)-1].Seq, &st); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("adopt base from commit", func(t *testing.T) {
		// A fresh ledger file next to checkpointed history (promotion,
		// migration) adopts the commit's peaks as its base.
		_, recs, st := reconcileFixture(t, 5)
		path := filepath.Join(t.TempDir(), "merkle.log")
		led, err := OpenLedger(path)
		if err != nil {
			t.Fatal(err)
		}
		defer led.Close()
		if err := led.Reconcile(nil, recs[len(recs)-1].Seq, &st); err != nil {
			t.Fatal(err)
		}
		got, err := led.State()
		if err != nil {
			t.Fatal(err)
		}
		if got.Count != st.Count || got.Root != st.Root {
			t.Fatalf("adopted state %+v, want %+v", got, st)
		}
		// And the adopted base survives a reopen.
		led.Close()
		led2, err := OpenLedger(path)
		if err != nil {
			t.Fatal(err)
		}
		defer led2.Close()
		if got, _ := led2.State(); got.Root != st.Root {
			t.Fatalf("reopened adopted root %s, want %s", got.Root, st.Root)
		}
	})
}

// TestAnyMutationChangesRoot: the property the whole ledger design rests
// on — no single-byte change to any frame payload (or its seq) leaves
// the root unchanged.
func TestAnyMutationChangesRoot(t *testing.T) {
	payloads := make([][]byte, 12)
	tr := &merkleTree{}
	for i := range payloads {
		payloads[i] = []byte(strings.Repeat("x", i+1))
		tr.seqs = append(tr.seqs, uint64(i+1))
		tr.leaves = append(tr.leaves, LeafHash(uint64(i+1), payloads[i]))
	}
	baseline, err := tr.rootAt(tr.count())
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range payloads {
		for j := range p {
			for bit := 0; bit < 8; bit++ {
				mut := append([]byte(nil), p...)
				mut[j] ^= 1 << bit
				tr.leaves[i] = LeafHash(uint64(i+1), mut)
				got, err := tr.rootAt(tr.count())
				if err != nil {
					t.Fatal(err)
				}
				if got == baseline {
					t.Fatalf("flipping bit %d of byte %d in leaf %d left the root unchanged", bit, j, i)
				}
			}
		}
		// Same payload under a different seq also changes the root
		// (splicing a frame to a different position is detected).
		tr.leaves[i] = LeafHash(uint64(i+100), p)
		if got, _ := tr.rootAt(tr.count()); got == baseline {
			t.Fatalf("re-seqing leaf %d left the root unchanged", i)
		}
		tr.leaves[i] = LeafHash(uint64(i+1), p)
	}
	if got, _ := tr.rootAt(tr.count()); got != baseline {
		t.Fatal("restoration did not reproduce the baseline root")
	}
}

// TestLogFeedsLedger: the wiring between Log and Ledger — appends become
// entries, fsyncs flush exactly the covered prefix, Reset leaves the
// ledger whole.
func TestLogFeedsLedger(t *testing.T) {
	dir := t.TempDir()
	led, err := OpenLedger(filepath.Join(dir, "merkle.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer led.Close()
	l, _, err := Open(filepath.Join(dir, "wal.log"), Options{Policy: PolicyAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.SetLedger(led)
	for i := 0; i < 5; i++ {
		if err := l.Append(&Record{Op: OpRun, Cycles: i}); err != nil {
			t.Fatal(err)
		}
	}
	if led.Count() != 5 {
		t.Fatalf("ledger count = %d, want 5", led.Count())
	}
	// Under PolicyAlways every entry is already durable.
	info, err := InspectLedger(filepath.Join(dir, "merkle.log"))
	if err != nil || len(info.Entries) != 5 {
		t.Fatalf("durable entries = %d (err=%v), want 5", len(info.Entries), err)
	}
	// Reset (checkpoint) empties the log but never the ledger.
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if led.Count() != 5 {
		t.Fatalf("ledger count after reset = %d, want 5", led.Count())
	}
	if err := l.Append(&Record{Op: OpRun, Cycles: 9}); err != nil {
		t.Fatal(err)
	}
	if led.Count() != 6 {
		t.Fatalf("ledger count after post-reset append = %d, want 6", led.Count())
	}
	// Proofs verify for both pre- and post-checkpoint frames.
	for _, seq := range []uint64{1, 6} {
		p, err := led.Prove(seq)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyProof(p); err != nil {
			t.Fatalf("seq %d: %v", seq, err)
		}
	}
}
