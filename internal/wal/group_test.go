package wal

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGroupCommitAckImpliesDurable is the group-commit contract under
// -race: when AppendSynced returns nil, the bytes of that record were
// already covered by a completed fsync. The fsync hook records how many
// bytes the file held when each flush was issued; an acked append whose
// frame lies beyond that watermark would be an ack racing ahead of its
// flush.
func TestGroupCommitAckImpliesDurable(t *testing.T) {
	var durable atomic.Int64 // bytes proven on stable storage
	var fsyncs atomic.Int64
	var (
		offMu   sync.Mutex
		cum     int64
		offsets []int64 // end offset of frame seq i+1 (appends are serialized)
	)
	opts := Options{
		Policy: PolicyGroup,
		OnAppend: func(n int) {
			offMu.Lock()
			cum += int64(n)
			offsets = append(offsets, cum)
			offMu.Unlock()
		},
		FsyncFn: func(f *os.File) error {
			fi, err := f.Stat()
			if err != nil {
				return err
			}
			if err := f.Sync(); err != nil {
				return err
			}
			fsyncs.Add(1)
			// Everything written before the flush began is durable now.
			for {
				cur := durable.Load()
				if fi.Size() <= cur || durable.CompareAndSwap(cur, fi.Size()) {
					break
				}
			}
			return nil
		},
	}
	l, _ := openTemp(t, opts)

	const goroutines, perG = 8, 20
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				rec := Record{Op: OpRun, Cycles: g<<16 | i}
				if _, err := l.AppendSynced(&rec); err != nil {
					t.Errorf("append: %v", err)
					return
				}
				offMu.Lock()
				end := offsets[rec.Seq-1]
				offMu.Unlock()
				if got := durable.Load(); got < end {
					t.Errorf("seq %d acked with %d durable bytes, frame ends at %d", rec.Seq, got, end)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if fsyncs.Load() == 0 {
		t.Fatal("no fsyncs issued")
	}
}

// TestGroupCommitCoalesces: concurrent appenders share flushes — far
// fewer fsyncs than appends, with the cohort accounting covering every
// append exactly once.
func TestGroupCommitCoalesces(t *testing.T) {
	var fsyncs, cohortSum atomic.Int64
	opts := Options{
		Policy:        PolicyGroup,
		GroupWait:     2 * time.Millisecond,
		OnGroupCommit: func(cohort int) { cohortSum.Add(int64(cohort)) },
		FsyncFn: func(f *os.File) error {
			fsyncs.Add(1)
			time.Sleep(time.Millisecond) // let the next cohort build
			return f.Sync()
		},
	}
	l, _ := openTemp(t, opts)

	const goroutines, perG = 16, 4
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if err := l.Append(&Record{Op: OpRun, Cycles: i}); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	total := int64(goroutines * perG)
	if got := cohortSum.Load(); got != total {
		t.Fatalf("cohorts accounted for %d appends, want %d", got, total)
	}
	if got := fsyncs.Load(); got >= total {
		t.Fatalf("%d fsyncs for %d appends — no coalescing happened", got, total)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupCommitFsyncFailure: a failed group flush must fail every
// waiter it stranded and latch permanently — later appends report the
// same error instead of being silently acknowledged.
func TestGroupCommitFsyncFailure(t *testing.T) {
	boom := errors.New("disk gone")
	var calls atomic.Int64
	opts := Options{
		Policy: PolicyGroup,
		FsyncFn: func(f *os.File) error {
			if calls.Add(1) >= 2 {
				return boom
			}
			return f.Sync()
		},
	}
	l, _ := openTemp(t, opts)

	var acked, failed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if err := l.Append(&Record{Op: OpRun, Cycles: i}); err != nil {
					if !errors.Is(err, boom) {
						t.Errorf("append failed with %v, want the injected fsync error", err)
					}
					failed.Add(1)
					return
				}
				acked.Add(1)
			}
		}()
	}
	wg.Wait()
	if failed.Load() == 0 {
		t.Fatal("no appender observed the fsync failure")
	}
	// The error is sticky: fresh appends and explicit syncs keep failing.
	if err := l.Append(&Record{Op: OpRun}); !errors.Is(err, boom) {
		t.Fatalf("append after latched failure: %v", err)
	}
	if err := l.Sync(); !errors.Is(err, boom) {
		t.Fatalf("sync after latched failure: %v", err)
	}
	if err := l.Reset(); !errors.Is(err, boom) {
		t.Fatalf("reset after latched failure: %v", err)
	}
	l.Close()
}

// TestGroupCommitKillMidCohort simulates pulling the plug mid-flush: the
// fsync hook maintains a "disk image" (the bytes the file provably held
// when each successful flush was issued). Freezing the acked set and then
// the image at a random moment stands in for the crash; every append
// acknowledged before that instant must survive a recovery scan of the
// image — zero acked-record loss.
func TestGroupCommitKillMidCohort(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	var (
		imgMu sync.Mutex
		image []byte
	)
	opts := Options{Policy: PolicyGroup, FsyncFn: func(f *os.File) error {
		data, rerr := os.ReadFile(path) // what the flush is about to make durable
		if err := f.Sync(); err != nil {
			return err
		}
		if rerr == nil {
			imgMu.Lock()
			if len(data) > len(image) {
				image = data
			}
			imgMu.Unlock()
		}
		return nil
	}}
	l, res, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 0 {
		t.Fatalf("fresh log not empty: %+v", res)
	}

	var (
		ackMu sync.Mutex
		acked []uint64
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rec := Record{Op: OpRun, Cycles: g<<16 | i}
				if err := l.Append(&rec); err != nil {
					return
				}
				ackMu.Lock()
				acked = append(acked, rec.Seq)
				ackMu.Unlock()
			}
		}(g)
	}
	// Let a meaningful number of cohorts flush before the "crash".
	deadline := time.Now().Add(5 * time.Second)
	for {
		ackMu.Lock()
		n := len(acked)
		ackMu.Unlock()
		if n >= 64 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	// Crash instant: freeze the acked set first, then the disk image.
	// Acks strictly follow durability, so everything in the first
	// snapshot is covered by the second.
	ackMu.Lock()
	ackedNow := append([]uint64(nil), acked...)
	ackMu.Unlock()
	imgMu.Lock()
	crash := append([]byte(nil), image...)
	imgMu.Unlock()
	close(stop)
	wg.Wait()
	l.Close()
	if len(ackedNow) == 0 {
		t.Fatal("no appends were acknowledged before the simulated crash")
	}

	crashPath := filepath.Join(t.TempDir(), "wal.log")
	if err := os.WriteFile(crashPath, crash, 0o644); err != nil {
		t.Fatal(err)
	}
	scanRes, err := ScanFile(crashPath)
	if err != nil {
		t.Fatal(err)
	}
	have := make(map[uint64]bool, len(scanRes.Records))
	for _, r := range scanRes.Records {
		have[r.Seq] = true
	}
	for _, seq := range ackedNow {
		if !have[seq] {
			t.Fatalf("seq %d was acknowledged before the crash but is missing from the disk image (%d acked, %d recovered)",
				seq, len(ackedNow), len(scanRes.Records))
		}
	}
	// The image also recovers cleanly as a live log.
	l2, res2, err := Open(crashPath, Options{})
	if err != nil {
		t.Fatalf("crash image does not recover: %v", err)
	}
	defer l2.Close()
	if len(res2.Records) != len(scanRes.Records) {
		t.Fatalf("recovery saw %d records, scan saw %d", len(res2.Records), len(scanRes.Records))
	}
}

// TestGroupCommitFlushesLedger: under PolicyGroup an acknowledged append
// has its Merkle ledger entry durable too — the flush daemon commits the
// ledger up to the synced horizon before waking the cohort.
func TestGroupCommitFlushesLedger(t *testing.T) {
	dir := t.TempDir()
	led, err := OpenLedger(filepath.Join(dir, "merkle.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer led.Close()
	l, _, err := Open(filepath.Join(dir, "wal.log"), Options{Policy: PolicyGroup})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.SetLedger(led)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if err := l.Append(&Record{Op: OpRun, Cycles: i}); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	info, err := InspectLedger(filepath.Join(dir, "merkle.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Entries) != 32 {
		t.Fatalf("durable ledger entries = %d, want 32", len(info.Entries))
	}
}

// TestIntervalFsyncFailureLatches is the regression test for silent
// fsync-error swallowing: a background flush that fails must poison the
// log so the next append reports it, rather than the failure vanishing
// into a discarded error value.
func TestIntervalFsyncFailureLatches(t *testing.T) {
	boom := errors.New("disk gone")
	flushed := make(chan struct{}, 1)
	opts := Options{
		Policy:   PolicyInterval,
		Interval: time.Millisecond,
		OnFsync: func(time.Duration) {
			select {
			case flushed <- struct{}{}:
			default:
			}
		},
		FsyncFn: func(*os.File) error { return boom },
	}
	l, _ := openTemp(t, opts)
	// The first append is acknowledged optimistically (interval policy).
	if err := l.Append(&Record{Op: OpRun}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-flushed:
	case <-time.After(5 * time.Second):
		t.Fatal("background flusher never ran")
	}
	if err := l.Append(&Record{Op: OpRun}); !errors.Is(err, boom) {
		t.Fatalf("append after failed background fsync: %v, want the fsync error", err)
	}
	if err := l.Sync(); !errors.Is(err, boom) {
		t.Fatalf("sync after failed background fsync: %v", err)
	}
	l.Close()

	// PolicyAlways latches too: the failing append reports the error and
	// so does every append after it.
	l2, _ := openTemp(t, Options{Policy: PolicyAlways, FsyncFn: func(*os.File) error { return boom }})
	if err := l2.Append(&Record{Op: OpRun}); !errors.Is(err, boom) {
		t.Fatalf("always-policy append with failing fsync: %v", err)
	}
	if err := l2.Append(&Record{Op: OpRun}); !errors.Is(err, boom) {
		t.Fatalf("append after latched always-policy failure: %v", err)
	}
	l2.Close()
}
