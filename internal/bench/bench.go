// Package bench implements the experiment harness that regenerates every
// table and figure of the reconstructed evaluation (DESIGN.md §3,
// EXPERIMENTS.md). Each experiment prints the same rows/series the paper
// format calls for; cmd/parbench drives them from the command line and
// the root bench_test.go wraps the same code paths in testing.B
// benchmarks.
package bench

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"parulel/internal/compile"
	"parulel/internal/copycon"
	"parulel/internal/core"
	"parulel/internal/lang"
	"parulel/internal/match"
	"parulel/internal/match/rete"
	"parulel/internal/match/treat"
	"parulel/internal/ops5"
	"parulel/internal/programs"
	"parulel/internal/reorder"
	"parulel/internal/wm"
	"parulel/internal/workload"
)

// Experiments maps experiment ids to their runners.
var Experiments = map[string]func(w io.Writer, quick bool) error{
	"e1":  E1,
	"e2":  E2,
	"e3":  E3,
	"e4":  E4,
	"e5":  E5,
	"e6":  E6,
	"e7":  E7,
	"e8":  E8,
	"e9":  E9,
	"e10": E10,
	"e11": E11,
	"e13": E13,
	"e14": E14,
}

// Order lists experiment ids in presentation order. (e12 is the serving
// benchmark, driven separately by `parbench -serve`.)
var Order = []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e13", "e14"}

// loader populates an engine's working memory.
type loader func(ins workload.Inserter) error

// workloadSpec names one benchmark workload at a size.
type workloadSpec struct {
	name string
	prog string // embedded program name
	load loader
}

// suite returns the three standard workloads at full or quick size.
func suite(quick bool) []workloadSpec {
	if quick {
		return []workloadSpec{
			{"waltz(10)", programs.Waltz, func(i workload.Inserter) error { return workload.WaltzScene(i, 10) }},
			{"alexsys(40x30)", programs.Alexsys, func(i workload.Inserter) error { return workload.Alexsys(i, 40, 30, 1) }},
			{"closure(4x4x2)", programs.Closure, func(i workload.Inserter) error { return workload.LayeredDAG(i, 4, 4, 2, 1) }},
			{"manners(12)", programs.Manners, func(i workload.Inserter) error { return workload.Manners(i, 12, 2, 5, 1) }},
			{"circuit(8x10)", programs.Circuit, func(i workload.Inserter) error {
				return workload.GenCircuit(8, 10, true, 1).Insert(i)
			}},
		}
	}
	return []workloadSpec{
		{"waltz(60)", programs.Waltz, func(i workload.Inserter) error { return workload.WaltzScene(i, 60) }},
		{"alexsys(150x100)", programs.Alexsys, func(i workload.Inserter) error { return workload.Alexsys(i, 150, 100, 1) }},
		{"closure(7x5x3)", programs.Closure, func(i workload.Inserter) error { return workload.LayeredDAG(i, 7, 5, 3, 1) }},
		{"manners(32)", programs.Manners, func(i workload.Inserter) error { return workload.Manners(i, 32, 3, 8, 1) }},
		{"circuit(24x40)", programs.Circuit, func(i workload.Inserter) error {
			return workload.GenCircuit(24, 40, true, 1).Insert(i)
		}},
	}
}

// newCore builds a PARULEL engine over a loaded workload.
func newCore(progName string, load loader, workers int) (*core.Engine, error) {
	prog, err := programs.Load(progName)
	if err != nil {
		return nil, err
	}
	e := core.New(prog, core.Options{Workers: workers, MaxCycles: 1 << 20})
	if err := load(e); err != nil {
		return nil, err
	}
	return e, nil
}

// newOPS5 builds a baseline engine over a loaded workload.
func newOPS5(progName string, load loader) (*ops5.Engine, error) {
	prog, err := programs.Load(progName)
	if err != nil {
		return nil, err
	}
	e := ops5.New(prog, ops5.Options{MaxCycles: 1 << 24})
	if err := load(e); err != nil {
		return nil, err
	}
	return e, nil
}

// minTime runs setup+run `reps` times and returns the fastest run-phase
// duration (setup excluded).
func minTime(reps int, setup func() (func() error, error)) (time.Duration, error) {
	best := time.Duration(0)
	for i := 0; i < reps; i++ {
		run, err := setup()
		if err != nil {
			return 0, err
		}
		start := time.Now()
		if err := run(); err != nil {
			return 0, err
		}
		d := time.Since(start)
		if best == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

func reps(quick bool) int {
	if quick {
		return 1
	}
	return 3
}

// E1 — Table 1: PARULEL vs OPS5, cycles to quiescence and total firings.
// PARULEL's cycle count tracks the workload's dataflow depth; the
// baseline's tracks total firings, so the ratio grows with problem size.
func E1(w io.Writer, quick bool) error {
	fmt.Fprintln(w, "E1 (Table 1) — parallel vs sequential firing: cycles to quiescence")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tengine\tcycles\tfirings\tcycle-ratio")
	for _, spec := range suite(quick) {
		pe, err := newCore(spec.prog, spec.load, 4)
		if err != nil {
			return err
		}
		pres, err := pe.Run()
		if err != nil {
			return err
		}
		se, err := newOPS5(spec.prog, spec.load)
		if err != nil {
			return err
		}
		sres, err := se.Run()
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\tPARULEL\t%d\t%d\t\n", spec.name, pres.Cycles, pres.Firings)
		fmt.Fprintf(tw, "%s\tOPS5-LEX\t%d\t%d\t%.1fx\n", spec.name, sres.Cycles, sres.Firings,
			float64(sres.Cycles)/float64(pres.Cycles))
	}
	return tw.Flush()
}

// e2Workloads: E2 needs rule-level parallelism to distribute, so it uses
// the many-rule waltz program and a 16-way copy-and-constrained hot rule.
func e2Workloads(quick bool) ([]workloadSpec, error) {
	cubes, regions, per := 250, 64, 40
	if quick {
		cubes, regions, per = 30, 16, 10
	}
	specs := []workloadSpec{
		{fmt.Sprintf("waltz(%d)", cubes), programs.Waltz,
			func(i workload.Inserter) error { return workload.WaltzScene(i, cubes) }},
	}
	_ = regions
	_ = per
	return specs, nil
}

// splitHotRule compiles the hot-rule program split k ways on the region
// variable.
func splitHotRule(k int) (*compile.Program, error) {
	ast, err := lang.Parse(workload.HotRuleProgram)
	if err != nil {
		return nil, err
	}
	if k > 1 {
		ast, err = copycon.Split(ast, "assign", "r", k)
		if err != nil {
			return nil, err
		}
	}
	return compile.Compile(ast)
}

// timedRun constructs an engine `reps` times, runs it, and returns the
// fastest wall time plus the match/fire work-distribution potentials of
// the last run (sum of per-worker busy time over its maximum — the
// speedup a perfectly parallel host could extract from that phase).
func timedRun(reps int, mk func() (*core.Engine, error)) (wall time.Duration, matchPot, firePot float64, err error) {
	for i := 0; i < reps; i++ {
		var e *core.Engine
		e, err = mk()
		if err != nil {
			return
		}
		start := time.Now()
		if _, err = e.Run(); err != nil {
			return
		}
		d := time.Since(start)
		if wall == 0 || d < wall {
			wall = d
		}
		mWork, fWork := e.WorkerWork()
		matchPot = potential(mWork)
		firePot = potential(fWork)
	}
	return
}

// potential computes sum/max of per-worker busy times (1.0 = fully
// serial; k = perfectly balanced over k busy workers).
func potential(work []time.Duration) float64 {
	var sum, max time.Duration
	for _, d := range work {
		sum += d
		if d > max {
			max = d
		}
	}
	if max == 0 {
		return 1
	}
	return float64(sum) / float64(max)
}

// E2 — Figure 1: speedup vs worker count. On a multi-core host the wall
// column shows the Amdahl-shaped curve directly; the match-pot / fire-pot
// columns report the work-distribution potential (sum/max of per-worker
// busy time), which exposes the same shape even on a single-core host
// where wall-clock speedup physically cannot appear.
func E2(w io.Writer, quick bool) error {
	fmt.Fprintln(w, "E2 (Figure 1) — speedup vs workers (PARULEL engine)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tworkers\twall\twall-speedup\tmatch-pot\tfire-pot")

	workers := []int{1, 2, 4, 8}
	specs, err := e2Workloads(quick)
	if err != nil {
		return err
	}
	// Hot-rule split 16 ways: embarrassingly parallel match.
	regions, per := 64, 40
	if quick {
		regions, per = 16, 10
	}
	hotProg, err := splitHotRule(16)
	if err != nil {
		return err
	}

	type cfg struct {
		name string
		mk   func(workers int) (*core.Engine, error)
	}
	cfgs := []cfg{}
	for _, spec := range specs {
		spec := spec
		cfgs = append(cfgs, cfg{spec.name, func(workers int) (*core.Engine, error) {
			return newCore(spec.prog, spec.load, workers)
		}})
	}
	cfgs = append(cfgs, cfg{fmt.Sprintf("hotrule16(%dx%d)", regions, per), func(workers int) (*core.Engine, error) {
		e := core.New(hotProg, core.Options{Workers: workers, MaxCycles: 1 << 20})
		if err := workload.HotRuleFacts(e, regions, per, 1); err != nil {
			return nil, err
		}
		return e, nil
	}})

	for _, c := range cfgs {
		var base time.Duration
		for _, k := range workers {
			k := k
			wall, mPot, fPot, err := timedRun(reps(quick), func() (*core.Engine, error) { return c.mk(k) })
			if err != nil {
				return err
			}
			if k == 1 {
				base = wall
			}
			fmt.Fprintf(tw, "%s\t%d\t%v\t%.2fx\t%.2f\t%.2f\n",
				c.name, k, wall.Round(time.Microsecond), float64(base)/float64(wall), mPot, fPot)
		}
	}
	return tw.Flush()
}

// E3 — Table 2: copy-and-constrain. A single hot rule caps match
// parallelism at one worker-equivalent; splitting it k ways restores
// scaling at 8 workers.
func E3(w io.Writer, quick bool) error {
	fmt.Fprintln(w, "E3 (Table 2) — copy-and-constrain a hot rule (8 workers)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "split-k\trules\twall\twall-speedup\tmatch-pot")
	regions, per := 48, 48
	if quick {
		regions, per = 12, 12
	}
	var base time.Duration
	for _, k := range []int{1, 2, 4, 8} {
		prog, err := splitHotRule(k)
		if err != nil {
			return err
		}
		wall, mPot, _, err := timedRun(reps(quick), func() (*core.Engine, error) {
			e := core.New(prog, core.Options{Workers: 8, MaxCycles: 1 << 20})
			if err := workload.HotRuleFacts(e, regions, per, 1); err != nil {
				return nil, err
			}
			return e, nil
		})
		if err != nil {
			return err
		}
		if k == 1 {
			base = wall
		}
		fmt.Fprintf(tw, "%d\t%d\t%v\t%.2fx\t%.2f\n",
			k, len(prog.Rules), wall.Round(time.Microsecond), float64(base)/float64(wall), mPot)
	}
	return tw.Flush()
}

// E4 — Table 3: RETE vs TREAT on join-chain programs: additions-only
// build, then a churn phase of removals+re-additions, plus state sizes.
// RETE's beta memories pay off on deep chains; TREAT holds no beta state.
func E4(w io.Writer, quick bool) error {
	fmt.Fprintln(w, "E4 (Table 3) — RETE vs TREAT match cost and memory")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "depth\tmatcher\tbuild\tchurn\talpha\tbeta\tconflict-set")

	type shape struct{ depth, keys, copies int }
	shapes := []shape{{2, 150, 3}, {4, 40, 3}, {6, 14, 2}}
	if quick {
		shapes = []shape{{2, 40, 2}, {4, 12, 2}, {6, 6, 2}}
	}
	factories := []struct {
		name string
		f    match.Factory
	}{{"RETE", rete.New}, {"TREAT", treat.New}}

	for _, sh := range shapes {
		prog, err := compile.CompileSource(workload.JoinChainProgram(sh.depth))
		if err != nil {
			return err
		}
		facts := workload.JoinChainFacts(sh.keys, sh.depth, sh.copies, 1)
		tmpl := prog.Schema.MustLookup("rec")
		for _, f := range factories {
			var ms match.MemStats
			var build, churn time.Duration
			_, err := minTime(reps(quick), func() (func() error, error) {
				return func() error {
					m := f.f(prog.Rules)
					mem := wm.NewMemory(prog.Schema)
					start := time.Now()
					wmes := make([]*wm.WME, 0, len(facts))
					for _, fields := range facts {
						vec := make([]wm.Value, tmpl.Arity())
						for attr, v := range fields {
							idx, _ := tmpl.AttrIndex(attr)
							vec[idx] = v
						}
						wme := mem.InsertFields(tmpl, vec)
						wmes = append(wmes, wme)
						m.Apply(wm.Delta{Added: []*wm.WME{wme}})
					}
					b := time.Since(start)

					start = time.Now()
					// Churn: remove and re-add every 7th WME.
					for i := 0; i < len(wmes); i += 7 {
						old := wmes[i]
						mem.Remove(old.Time)
						nw := mem.InsertFields(old.Tmpl, old.Fields)
						m.Apply(wm.Delta{Removed: []*wm.WME{old}, Added: []*wm.WME{nw}})
						wmes[i] = nw
					}
					c := time.Since(start)
					if build == 0 || b < build {
						build = b
					}
					if churn == 0 || c < churn {
						churn = c
					}
					ms = m.MemStats()
					return nil
				}, nil
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "%d\t%s\t%v\t%v\t%d\t%d\t%d\n",
				sh.depth, f.name, build.Round(time.Microsecond), churn.Round(time.Microsecond),
				ms.AlphaItems, ms.BetaTokens, ms.ConflictSet)
		}
	}
	return tw.Flush()
}

// E5 — Figure 2: cycle-phase breakdown (percent of wall time in match /
// redact / fire / apply) per workload on the PARULEL engine.
func E5(w io.Writer, quick bool) error {
	fmt.Fprintln(w, "E5 (Figure 2) — cycle-phase breakdown (PARULEL, 4 workers)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tmatch%\tredact%\tfire%\tapply%\tcycles")
	for _, spec := range suite(quick) {
		e, err := newCore(spec.prog, spec.load, 4)
		if err != nil {
			return err
		}
		res, err := e.Run()
		if err != nil {
			return err
		}
		m, r, f, a := res.Stats.Breakdown()
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.1f\t%.1f\t%d\n", spec.name, m, r, f, a, res.Cycles)
	}
	return tw.Flush()
}

// E7 — Table 5 (ablation): the redactor's equality-join hash index. With
// the index, each meta pattern probes only the same-bucket candidates
// (e.g. same pool); without it, tuple enumeration is nested-loop over
// the surviving conflict set. The redaction-heavy workloads show the
// gap; it widens with conflict-set size.
func E7(w io.Writer, quick bool) error {
	fmt.Fprintln(w, "E7 (Table 5, ablation) — redaction hash-join index on/off")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tindex\twall\tredact-share")
	pools, orders, guests := 120, 80, 24
	if quick {
		pools, orders, guests = 40, 30, 10
	}
	specs := []workloadSpec{
		{fmt.Sprintf("alexsys(%dx%d)", pools, orders), programs.Alexsys,
			func(i workload.Inserter) error { return workload.Alexsys(i, pools, orders, 1) }},
		{fmt.Sprintf("manners(%d)", guests), programs.Manners,
			func(i workload.Inserter) error { return workload.Manners(i, guests, 3, 8, 1) }},
	}
	for _, spec := range specs {
		for _, disable := range []bool{false, true} {
			prog, err := programs.Load(spec.prog)
			if err != nil {
				return err
			}
			var redactPct float64
			d, err := minTime(reps(quick), func() (func() error, error) {
				e := core.New(prog, core.Options{
					Workers: 4, MaxCycles: 1 << 20,
					DisableRedactionIndex: disable,
				})
				if err := spec.load(e); err != nil {
					return nil, err
				}
				return func() error {
					res, err := e.Run()
					if err == nil {
						_, redactPct, _, _ = res.Stats.Breakdown()
					}
					return err
				}, nil
			})
			if err != nil {
				return err
			}
			label := "on"
			if disable {
				label = "off"
			}
			fmt.Fprintf(tw, "%s\t%s\t%v\t%.1f%%\n", spec.name, label, d.Round(time.Microsecond), redactPct)
		}
	}
	return tw.Flush()
}

// E8 — Table 6 (ablation): synchronous vs sequential redaction semantics.
// Synchronous redaction (the default) applies every meta match at once
// and can over-kill — an instantiation dies even when its killer dies in
// the same pass — which serializes work across extra cycles. Sequential
// semantics applies meta-rules in order with immediate effect, sparing
// transitive victims: more firings per cycle, fewer cycles.
func E8(w io.Writer, quick bool) error {
	fmt.Fprintln(w, "E8 (Table 6, ablation) — synchronous vs sequential redaction")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tsemantics\tcycles\tfirings\tredactions\twall")
	pools, orders, guests := 150, 100, 32
	if quick {
		pools, orders, guests = 40, 30, 12
	}
	specs := []workloadSpec{
		{fmt.Sprintf("alexsys(%dx%d)", pools, orders), programs.Alexsys,
			func(i workload.Inserter) error { return workload.Alexsys(i, pools, orders, 1) }},
		{fmt.Sprintf("manners(%d)", guests), programs.Manners,
			func(i workload.Inserter) error { return workload.Manners(i, guests, 3, 8, 1) }},
	}
	for _, spec := range specs {
		for _, sequential := range []bool{false, true} {
			prog, err := programs.Load(spec.prog)
			if err != nil {
				return err
			}
			var res core.Result
			d, err := minTime(reps(quick), func() (func() error, error) {
				e := core.New(prog, core.Options{
					Workers: 4, MaxCycles: 1 << 20,
					SequentialRedaction: sequential,
				})
				if err := spec.load(e); err != nil {
					return nil, err
				}
				return func() error {
					var err error
					res, err = e.Run()
					return err
				}, nil
			})
			if err != nil {
				return err
			}
			label := "synchronous"
			if sequential {
				label = "sequential"
			}
			fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%v\n",
				spec.name, label, res.Cycles, res.Firings, res.Redactions, d.Round(time.Microsecond))
		}
	}
	return tw.Flush()
}

// E9 — Table 7 (ablation): rule-to-worker partition strategy at 8
// workers. Results are identical by construction; what changes is the
// match load balance (match-pot = sum/max of per-worker busy time).
// Round-robin and LPT spread waltz's expensive propagation rules; block
// partitioning clusters them onto few workers.
func E9(w io.Writer, quick bool) error {
	fmt.Fprintln(w, "E9 (Table 7, ablation) — rule partition strategy (8 workers)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tstrategy\twall\tmatch-pot\tfire-pot")
	cubes := 120
	if quick {
		cubes = 20
	}
	for _, strategy := range []core.Partition{core.PartitionRoundRobin, core.PartitionBlock, core.PartitionLPT} {
		wall, mPot, fPot, err := timedRun(reps(quick), func() (*core.Engine, error) {
			prog, err := programs.Load(programs.Waltz)
			if err != nil {
				return nil, err
			}
			e := core.New(prog, core.Options{Workers: 8, MaxCycles: 1 << 20, Partition: strategy})
			if err := workload.WaltzScene(e, cubes); err != nil {
				return nil, err
			}
			return e, nil
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "waltz(%d)\t%v\t%v\t%.2f\t%.2f\n",
			cubes, strategy, wall.Round(time.Microsecond), mPot, fPot)
	}
	return tw.Flush()
}

// badJoinOrder is a deliberately badly ordered rule: the unselective
// item×item cross-product joins before the highly selective anchor.
const badJoinOrder = `
(literalize item   g v)
(literalize anchor id g h)
(literalize hit    x y)
(rule cross
  (item ^g <x>)
  (item ^g <y>)
  (anchor ^id 7 ^g <x> ^h <y>)
-->
  (make hit ^x <x> ^y <y>))
`

// E10 — Table 8 (ablation): static join-ordering (most-constrained-first
// condition-element reordering). The badly ordered source builds an
// item×item cross product in the beta network; the optimizer hoists the
// constant-constrained anchor element to the front.
func E10(w io.Writer, quick bool) error {
	fmt.Fprintln(w, "E10 (Table 8, ablation) — join-order optimization")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "variant\twall\tbeta-tokens")
	items := 400
	if quick {
		items = 120
	}
	for _, optimized := range []bool{false, true} {
		ast, err := lang.Parse(badJoinOrder)
		if err != nil {
			return err
		}
		if optimized {
			ast = reorder.Program(ast)
		}
		prog, err := compile.Compile(ast)
		if err != nil {
			return err
		}
		var beta int
		d, err := minTime(reps(quick), func() (func() error, error) {
			return func() error {
				m := rete.New(prog.Rules)
				mem := wm.NewMemory(prog.Schema)
				itemT := prog.Schema.MustLookup("item")
				for i := 0; i < items; i++ {
					wme := mem.InsertFields(itemT, []wm.Value{wm.Int(int64(i % 3)), wm.Int(int64(i))})
					m.Apply(wm.Delta{Added: []*wm.WME{wme}})
				}
				anchorT := prog.Schema.MustLookup("anchor")
				wme := mem.InsertFields(anchorT, []wm.Value{wm.Int(7), wm.Int(1), wm.Int(2)})
				m.Apply(wm.Delta{Added: []*wm.WME{wme}})
				beta = m.MemStats().BetaTokens
				return nil
			}, nil
		})
		if err != nil {
			return err
		}
		label := "source-order"
		if optimized {
			label = "reordered"
		}
		fmt.Fprintf(tw, "%s\t%v\t%d\n", label, d.Round(time.Microsecond), beta)
	}
	return tw.Flush()
}

// E11 — Table 9 (ablation): the match layer's equality hash-join indexes
// on/off, for both matchers. With the index, a join or negative node
// probes only the alpha/beta bucket holding its equality-test value;
// without it, every activation scans the whole opposite memory. The gap
// tracks memory sizes, so it is widest on the join-heavy workloads
// (waltz's edge propagation, circuit's wire fan-out under TREAT).
func E11(w io.Writer, quick bool) error {
	fmt.Fprintln(w, "E11 (Table 9, ablation) — match-layer hash-join index on/off")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tmatcher\tindex\twall\tmatch-share\tspeedup")

	cubes, cw, cd := 60, 16, 24
	if quick {
		cubes, cw, cd = 10, 8, 10
	}
	specs := []workloadSpec{
		{fmt.Sprintf("waltz(%d)", cubes), programs.Waltz,
			func(i workload.Inserter) error { return workload.WaltzScene(i, cubes) }},
		{fmt.Sprintf("circuit(%dx%d)", cw, cd), programs.Circuit,
			func(i workload.Inserter) error { return workload.GenCircuit(cw, cd, true, 1).Insert(i) }},
	}
	factories := []struct {
		name string
		mk   func(disable bool) match.Factory
	}{
		{"RETE", func(disable bool) match.Factory { return rete.Factory(rete.Options{DisableJoinIndex: disable}) }},
		{"TREAT", func(disable bool) match.Factory { return treat.Factory(treat.Options{DisableJoinIndex: disable}) }},
	}
	for _, spec := range specs {
		for _, f := range factories {
			var off time.Duration
			for _, disable := range []bool{true, false} {
				prog, err := programs.Load(spec.prog)
				if err != nil {
					return err
				}
				var matchPct float64
				d, err := minTime(reps(quick), func() (func() error, error) {
					e := core.New(prog, core.Options{
						Workers: 4, MaxCycles: 1 << 20,
						Matcher: f.mk(disable),
					})
					if err := spec.load(e); err != nil {
						return nil, err
					}
					return func() error {
						res, err := e.Run()
						if err == nil {
							matchPct, _, _, _ = res.Stats.Breakdown()
						}
						return err
					}, nil
				})
				if err != nil {
					return err
				}
				label, speedup := "off", ""
				if disable {
					off = d
				} else {
					label = "on"
					speedup = fmt.Sprintf("%.2fx", float64(off)/float64(d))
				}
				fmt.Fprintf(tw, "%s\t%s\t%s\t%v\t%.1f%%\t%s\n",
					spec.name, f.name, label, d.Round(time.Microsecond), matchPct, speedup)
			}
		}
	}
	return tw.Flush()
}

// E6 — Table 4: meta-rules vs interference. The same allocation workload
// with and without redaction meta-rules: with them, zero write conflicts
// and a valid allocation; without, conflicts and over-allocated orders.
func E6(w io.Writer, quick bool) error {
	fmt.Fprintln(w, "E6 (Table 4) — redaction meta-rules vs write conflicts (alexsys)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "variant\tcycles\tfirings\tredactions\tconflicts\tover-allocated-orders")
	pools, orders := 150, 100
	if quick {
		pools, orders = 40, 30
	}
	for _, variant := range []string{"with-meta", "without-meta"} {
		var prog *compile.Program
		var err error
		if variant == "with-meta" {
			prog, err = programs.Load(programs.Alexsys)
		} else {
			prog, err = programs.LoadWithoutMetaRules(programs.Alexsys)
		}
		if err != nil {
			return err
		}
		e := core.New(prog, core.Options{Workers: 4, MaxCycles: 1 << 20})
		if err := workload.Alexsys(e, pools, orders, 1); err != nil {
			return err
		}
		res, err := e.Run()
		if err != nil {
			return err
		}
		over := 0
		perOrder := map[int64]int{}
		for _, p := range e.Memory().OfTemplate("pool") {
			if p.Fields[2] == wm.Sym("sold") {
				perOrder[p.Fields[3].I]++
			}
		}
		for _, n := range perOrder {
			if n > 1 {
				over++
			}
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\n",
			variant, res.Cycles, res.Firings, res.Redactions, res.WriteConflicts, over)
	}
	return tw.Flush()
}
