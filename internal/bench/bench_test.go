package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestExperimentsRunQuick executes every experiment at quick size and
// sanity-checks the emitted tables.
func TestExperimentsRunQuick(t *testing.T) {
	wantHeader := map[string]string{
		"e1":  "cycle-ratio",
		"e2":  "match-pot",
		"e3":  "split-k",
		"e4":  "matcher",
		"e5":  "redact%",
		"e6":  "over-allocated-orders",
		"e7":  "redact-share",
		"e8":  "semantics",
		"e9":  "strategy",
		"e10": "beta-tokens",
	}
	for _, id := range Order {
		id := id
		t.Run(id, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Experiments[id](&buf, true); err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			out := buf.String()
			if !strings.Contains(out, wantHeader[id]) {
				t.Errorf("%s output missing %q:\n%s", id, wantHeader[id], out)
			}
			if lines := strings.Count(out, "\n"); lines < 4 {
				t.Errorf("%s output too short (%d lines):\n%s", id, lines, out)
			}
		})
	}
}

func TestOrderCoversExperiments(t *testing.T) {
	if len(Order) != len(Experiments) {
		t.Fatalf("Order has %d ids, Experiments %d", len(Order), len(Experiments))
	}
	for _, id := range Order {
		if Experiments[id] == nil {
			t.Errorf("experiment %s missing", id)
		}
	}
}

func TestPotential(t *testing.T) {
	if p := potential(nil); p != 1 {
		t.Errorf("potential(nil) = %v, want 1", p)
	}
	if p := potential([]time.Duration{4, 4, 4, 4}); p != 4 {
		t.Errorf("balanced potential = %v, want 4", p)
	}
	if p := potential([]time.Duration{8, 0, 0, 0}); p != 1 {
		t.Errorf("serial potential = %v, want 1", p)
	}
	if p := potential([]time.Duration{6, 2}); p != (8.0 / 6.0) {
		t.Errorf("skewed potential = %v, want %v", p, 8.0/6.0)
	}
}
