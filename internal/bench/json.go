package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"parulel/internal/compile"
	"parulel/internal/core"
	"parulel/internal/match"
	"parulel/internal/match/rete"
	"parulel/internal/match/treat"
	"parulel/internal/programs"
)

// Machine-readable benchmark output (`parbench -json`): one BENCH_*.json
// document per invocation, so the performance trajectory across PRs can be
// tracked by diffing documents instead of scraping tables.

// JSONResult is one (workload, configuration) measurement.
type JSONResult struct {
	Workload         string  `json:"workload"`
	Engine           string  `json:"engine"`
	Matcher          string  `json:"matcher"`
	Workers          int     `json:"workers"`
	WallNS           int64   `json:"wall_ns"` // fastest of the repetitions
	Cycles           int     `json:"cycles"`
	Firings          int     `json:"firings"`
	Redactions       int     `json:"redactions"`
	WriteConflicts   int     `json:"write_conflicts"`
	WMSize           int     `json:"wm_size"`
	MatchNS          int64   `json:"match_ns"`
	RedactNS         int64   `json:"redact_ns"`
	FireNS           int64   `json:"fire_ns"`
	ApplyNS          int64   `json:"apply_ns"`
	PotentialSpeedup float64 `json:"potential_speedup"` // sum/max of worker match time
	// TopRules are the five most-fired rules of the final repetition,
	// ordered by firing count — enough to spot a workload whose hot rule
	// set shifted between benchmark documents.
	TopRules []RuleFiring `json:"top_rules,omitempty"`
}

// RuleFiring is one rule's firing count within a result.
type RuleFiring struct {
	Rule  string `json:"rule"`
	Fires int    `json:"fires"`
}

// topRules ranks a RuleFires map and keeps the hottest n.
func topRules(fires map[string]int, n int) []RuleFiring {
	out := make([]RuleFiring, 0, len(fires))
	for rule, c := range fires {
		out = append(out, RuleFiring{Rule: rule, Fires: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Fires != out[j].Fires {
			return out[i].Fires > out[j].Fires
		}
		return out[i].Rule < out[j].Rule
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// JSONDoc is the whole document.
type JSONDoc struct {
	Schema      string       `json:"schema"` // "parulel-bench/v1"
	GeneratedAt string       `json:"generated_at"`
	GoVersion   string       `json:"go_version"`
	GOOS        string       `json:"goos"`
	GOARCH      string       `json:"goarch"`
	NumCPU      int          `json:"num_cpu"`
	Quick       bool         `json:"quick"`
	EvalMode    string       `json:"eval_mode"` // expression backend the suite ran with
	Results     []JSONResult `json:"results"`
}

// jsonConfigs are the engine configurations measured per workload: the
// worker-scaling axis on RETE plus a TREAT point, mirroring E2/E4.
var jsonConfigs = []struct {
	matcher string
	factory func(mode compile.EvalMode) match.Factory
	workers int
}{
	{"rete", func(m compile.EvalMode) match.Factory { return rete.Factory(rete.Options{EvalMode: m}) }, 1},
	{"rete", func(m compile.EvalMode) match.Factory { return rete.Factory(rete.Options{EvalMode: m}) }, 2},
	{"rete", func(m compile.EvalMode) match.Factory { return rete.Factory(rete.Options{EvalMode: m}) }, 4},
	{"treat", func(m compile.EvalMode) match.Factory { return treat.Factory(treat.Options{EvalMode: m}) }, 4},
}

// RunJSON measures the standard workload suite under the given expression
// backend and returns the document.
func RunJSON(quick bool, mode compile.EvalMode) (*JSONDoc, error) {
	doc := &JSONDoc{
		Schema:      "parulel-bench/v1",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Quick:       quick,
		EvalMode:    mode.String(),
	}
	for _, spec := range suite(quick) {
		for _, cfg := range jsonConfigs {
			var last *core.Engine
			var lastRes core.Result
			wall, err := minTime(reps(quick), func() (func() error, error) {
				prog, err := programs.Load(spec.prog)
				if err != nil {
					return nil, err
				}
				e := core.New(prog, core.Options{
					Workers:   cfg.workers,
					Matcher:   cfg.factory(mode),
					MaxCycles: 1 << 20,
					EvalMode:  mode,
				})
				if err := spec.load(e); err != nil {
					return nil, err
				}
				last = e
				return func() error {
					res, err := e.Run()
					lastRes = res
					return err
				}, nil
			})
			if err != nil {
				return nil, fmt.Errorf("%s [%s w=%d]: %w", spec.name, cfg.matcher, cfg.workers, err)
			}
			m, r, f, a := lastRes.Stats.Totals()
			matchWork, _ := last.WorkerWork()
			var sum, max time.Duration
			for _, d := range matchWork {
				sum += d
				if d > max {
					max = d
				}
			}
			speedup := 1.0
			if max > 0 {
				speedup = float64(sum) / float64(max)
			}
			doc.Results = append(doc.Results, JSONResult{
				Workload:         spec.name,
				Engine:           "parulel",
				Matcher:          cfg.matcher,
				Workers:          cfg.workers,
				WallNS:           wall.Nanoseconds(),
				Cycles:           lastRes.Cycles,
				Firings:          lastRes.Firings,
				Redactions:       lastRes.Redactions,
				WriteConflicts:   lastRes.WriteConflicts,
				WMSize:           last.Memory().Len(),
				MatchNS:          m.Nanoseconds(),
				RedactNS:         r.Nanoseconds(),
				FireNS:           f.Nanoseconds(),
				ApplyNS:          a.Nanoseconds(),
				PotentialSpeedup: speedup,
				TopRules:         topRules(last.RuleFires(), 5),
			})
		}
	}
	return doc, nil
}

// WriteJSON renders the document, indented for diff-friendliness.
func WriteJSON(w io.Writer, doc *JSONDoc) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
