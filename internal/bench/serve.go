package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"parulel/internal/load"
	"parulel/internal/server"
)

// Server-level benchmark (`parbench -serve`): starts an in-process paruleld
// over httptest, drives it with internal/load twice — once all single-fact
// asserts, once all batched asserts — and reports end-to-end mutation
// throughput for each plus their ratio. This is the number the batch
// endpoint exists for: how much ingest the same HTTP surface sustains when
// clients amortize the per-request WAL frame and session round-trip.

// ServeRun is one load shape's measurement.
type ServeRun struct {
	Mix             load.Mix                `json:"mix"`
	Requests        int                     `json:"requests"`
	RequestsPerSec  float64                 `json:"requests_per_sec"`
	Mutations       int                     `json:"mutations"`
	MutationsPerSec float64                 `json:"mutations_per_sec"`
	Errors5xx       int                     `json:"errors_5xx"`
	Rejected429     int                     `json:"rejected_429"`
	Ops             map[string]load.OpStats `json:"ops"`
}

// ServeDoc is the `-serve` document, merged into BENCH_*.json under "serve".
type ServeDoc struct {
	Schema      string   `json:"schema"` // "parulel-serve/v1"
	GeneratedAt string   `json:"generated_at"`
	GoVersion   string   `json:"go_version"`
	NumCPU      int      `json:"num_cpu"`
	Quick       bool     `json:"quick"`
	Concurrency int      `json:"concurrency"`
	DurationMS  int64    `json:"duration_ms"` // per load shape
	BatchSize   int      `json:"batch_size"`
	SingleOp    ServeRun `json:"single_op"`
	Batched     ServeRun `json:"batched"`
	// BatchSpeedup is batched/single-op mutation throughput — the headline
	// ratio (target: ≥4× at concurrency 8).
	BatchSpeedup float64 `json:"batch_speedup"`
}

// RunServe measures single-op vs batched ingest against a fresh in-process
// server with a real WAL under a temporary directory.
func RunServe(quick bool) (*ServeDoc, error) {
	dur := 5 * time.Second
	if quick {
		dur = 2 * time.Second
	}
	doc := &ServeDoc{
		Schema:      "parulel-serve/v1",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		Quick:       quick,
		Concurrency: 8,
		DurationMS:  dur.Milliseconds(),
		BatchSize:   32,
	}
	shapes := []struct {
		out *ServeRun
		mix load.Mix
	}{
		{&doc.SingleOp, load.Mix{Assert: 1}},
		{&doc.Batched, load.Mix{Batch: 1}},
	}
	for _, shape := range shapes {
		// A fresh server per shape so the second run's working memory and
		// WAL don't start with the first run's volume.
		rep, err := oneServeRun(shape.mix, dur, doc.Concurrency, doc.BatchSize)
		if err != nil {
			return nil, err
		}
		*shape.out = ServeRun{
			Mix:             rep.Config.Mix,
			Requests:        rep.Requests,
			RequestsPerSec:  rep.RequestsPerSec,
			Mutations:       rep.Mutations,
			MutationsPerSec: rep.MutationsPerSec,
			Errors5xx:       rep.Errors5xx,
			Rejected429:     rep.Rejected429,
			Ops:             rep.Ops,
		}
	}
	if doc.SingleOp.MutationsPerSec > 0 {
		doc.BatchSpeedup = doc.Batched.MutationsPerSec / doc.SingleOp.MutationsPerSec
	}
	return doc, nil
}

func oneServeRun(mix load.Mix, dur time.Duration, concurrency, batchSize int) (*load.Report, error) {
	dir, err := os.MkdirTemp("", "parulel-serve-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	srv, err := server.New(server.Config{DataDir: dir})
	if err != nil {
		return nil, fmt.Errorf("starting server: %w", err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Close(ctx)
	}()
	return load.Run(context.Background(), load.Config{
		BaseURL:     ts.URL,
		Concurrency: concurrency,
		Duration:    dur,
		Mix:         mix,
		BatchSize:   batchSize,
	})
}

// WriteServeTable renders the document for terminal use.
func WriteServeTable(w io.Writer, doc *ServeDoc) {
	fmt.Fprintf(w, "serve: single-op vs batched ingest (c=%d, %s per shape, batch=%d)\n",
		doc.Concurrency, time.Duration(doc.DurationMS)*time.Millisecond, doc.BatchSize)
	fmt.Fprintf(w, "  %-10s %10s %12s %14s %6s %6s\n", "shape", "requests", "req/s", "mutations/s", "5xx", "429")
	for _, row := range []struct {
		name string
		r    ServeRun
	}{{"single-op", doc.SingleOp}, {"batched", doc.Batched}} {
		fmt.Fprintf(w, "  %-10s %10d %12.1f %14.1f %6d %6d\n",
			row.name, row.r.Requests, row.r.RequestsPerSec, row.r.MutationsPerSec, row.r.Errors5xx, row.r.Rejected429)
	}
	fmt.Fprintf(w, "  batch speedup: %.2fx\n", doc.BatchSpeedup)
}

// MergeServeJSON writes the serve document into path under a "serve" key,
// preserving every other key of an existing BENCH_*.json ("-" = stdout,
// serve document only).
func MergeServeJSON(path string, doc *ServeDoc) error {
	if path == "-" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}
	merged := map[string]any{}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &merged); err != nil {
			return fmt.Errorf("existing %s is not a JSON object: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	merged["serve"] = doc
	out, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
