package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"parulel/internal/cluster"
	"parulel/internal/load"
	"parulel/internal/server"
)

// Cluster benchmark (`parbench -cluster`): boots a three-node paruleld
// cluster in-process (real loopback TCP between peers, synchronous WAL
// replication) and a single standalone node, drives both with the same
// mutation-heavy load shape spread across every public endpoint, and
// reports the aggregate-throughput ratio. The ratio is the sharding
// headline: three nodes each own a third of the session keyspace, so
// aggregate ingest should scale with node count when cores allow it —
// NumCPU is recorded because on a single-core host all three nodes
// compete for the same core and the ratio collapses to ~1x regardless
// of how well the sharding works.

// ClusterRun is one topology's measurement.
type ClusterRun struct {
	Nodes           int                     `json:"nodes"`
	Mix             load.Mix                `json:"mix"`
	Requests        int                     `json:"requests"`
	RequestsPerSec  float64                 `json:"requests_per_sec"`
	Mutations       int                     `json:"mutations"`
	MutationsPerSec float64                 `json:"mutations_per_sec"`
	Errors5xx       int                     `json:"errors_5xx"`
	Rejected429     int                     `json:"rejected_429"`
	TransportErrors int                     `json:"transport_errors"`
	Redirects       int                     `json:"redirects"`
	Ops             map[string]load.OpStats `json:"ops"`
}

// ClusterDoc is the `-cluster` document, merged into BENCH_*.json under
// "cluster".
type ClusterDoc struct {
	Schema      string     `json:"schema"` // "parulel-cluster/v1"
	GeneratedAt string     `json:"generated_at"`
	GoVersion   string     `json:"go_version"`
	NumCPU      int        `json:"num_cpu"`
	Quick       bool       `json:"quick"`
	Concurrency int        `json:"concurrency"`
	Sessions    int        `json:"sessions"`
	DurationMS  int64      `json:"duration_ms"` // per topology
	Replication string     `json:"replication"`
	SingleNode  ClusterRun `json:"single_node"`
	ThreeNode   ClusterRun `json:"three_node"`
	// Speedup is three-node/single-node aggregate mutation throughput.
	Speedup float64 `json:"speedup"`
	Note    string  `json:"note,omitempty"`
}

// RunCluster measures single-node vs three-node aggregate ingest.
func RunCluster(quick bool) (*ClusterDoc, error) {
	dur := 8 * time.Second
	if quick {
		dur = 2 * time.Second
	}
	doc := &ClusterDoc{
		Schema:      "parulel-cluster/v1",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		Quick:       quick,
		Concurrency: 8,
		Sessions:    6,
		DurationMS:  dur.Milliseconds(),
		Replication: cluster.ReplSync,
	}
	mix := load.Mix{Assert: 4, Batch: 2}

	single, err := oneClusterRun(1, mix, dur, doc)
	if err != nil {
		return nil, fmt.Errorf("single-node run: %w", err)
	}
	doc.SingleNode = *single

	three, err := oneClusterRun(3, mix, dur, doc)
	if err != nil {
		return nil, fmt.Errorf("three-node run: %w", err)
	}
	doc.ThreeNode = *three

	if doc.SingleNode.MutationsPerSec > 0 {
		doc.Speedup = doc.ThreeNode.MutationsPerSec / doc.SingleNode.MutationsPerSec
	}
	if doc.NumCPU < 3 {
		doc.Note = fmt.Sprintf("host has %d CPU(s); the three nodes time-share cores, so the speedup here measures sharding overhead, not parallel capacity — rerun on >=3 cores for the scaling number", doc.NumCPU)
	}
	return doc, nil
}

// oneClusterRun boots n nodes (n=1: standalone, no cluster config) under a
// shared temp root and drives them with one load run across all endpoints.
func oneClusterRun(n int, mix load.Mix, dur time.Duration, doc *ClusterDoc) (*ClusterRun, error) {
	root, err := os.MkdirTemp("", "parulel-cluster-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)

	if n == 1 {
		srv, err := server.New(server.Config{DataDir: root})
		if err != nil {
			return nil, err
		}
		ts := httptest.NewServer(srv)
		defer ts.Close()
		defer closeServerBG(srv)
		rep, err := load.Run(context.Background(), load.Config{
			BaseURLs:    []string{ts.URL},
			Sessions:    doc.Sessions,
			Concurrency: doc.Concurrency,
			Duration:    dur,
			Mix:         mix,
			BatchSize:   32,
		})
		if err != nil {
			return nil, err
		}
		return clusterRunFromReport(1, rep), nil
	}

	peerLns := make([]net.Listener, n)
	pubs := make([]*httptest.Server, n)
	members := make([]cluster.Member, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		peerLns[i] = ln
		pubs[i] = httptest.NewUnstartedServer(http.NotFoundHandler())
		members[i] = cluster.Member{
			Name:      fmt.Sprintf("n%d", i),
			PeerAddr:  ln.Addr().String(),
			PublicURL: "http://" + pubs[i].Listener.Addr().String(),
		}
	}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		dir := filepath.Join(root, members[i].Name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		srv, err := server.New(server.Config{
			DataDir: dir,
			Cluster: &cluster.Config{
				Node:         members[i].Name,
				Members:      members,
				PeerListener: peerLns[i],
				Replication:  doc.Replication,
			},
		})
		if err != nil {
			return nil, err
		}
		pubs[i].Config.Handler = srv
		pubs[i].Start()
		urls[i] = pubs[i].URL
		defer pubs[i].Close()
		defer closeServerBG(srv)
	}

	rep, err := load.Run(context.Background(), load.Config{
		BaseURLs:    urls,
		Sessions:    doc.Sessions,
		Concurrency: doc.Concurrency,
		Duration:    dur,
		Mix:         mix,
		BatchSize:   32,
	})
	if err != nil {
		return nil, err
	}
	return clusterRunFromReport(n, rep), nil
}

func closeServerBG(srv *server.Server) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	srv.Close(ctx)
}

func clusterRunFromReport(n int, rep *load.Report) *ClusterRun {
	return &ClusterRun{
		Nodes:           n,
		Mix:             rep.Config.Mix,
		Requests:        rep.Requests,
		RequestsPerSec:  rep.RequestsPerSec,
		Mutations:       rep.Mutations,
		MutationsPerSec: rep.MutationsPerSec,
		Errors5xx:       rep.Errors5xx,
		Rejected429:     rep.Rejected429,
		TransportErrors: rep.TransportErrors,
		Redirects:       rep.Redirects,
		Ops:             rep.Ops,
	}
}

// WriteClusterTable renders the document for terminal use.
func WriteClusterTable(w io.Writer, doc *ClusterDoc) {
	fmt.Fprintf(w, "cluster: single-node vs 3-node aggregate ingest (c=%d, sessions=%d, %s per topology, repl=%s)\n",
		doc.Concurrency, doc.Sessions, time.Duration(doc.DurationMS)*time.Millisecond, doc.Replication)
	fmt.Fprintf(w, "  %-10s %10s %12s %14s %6s %6s %10s\n", "topology", "requests", "req/s", "mutations/s", "5xx", "429", "redirects")
	for _, row := range []struct {
		name string
		r    ClusterRun
	}{{"1-node", doc.SingleNode}, {"3-node", doc.ThreeNode}} {
		fmt.Fprintf(w, "  %-10s %10d %12.1f %14.1f %6d %6d %10d\n",
			row.name, row.r.Requests, row.r.RequestsPerSec, row.r.MutationsPerSec, row.r.Errors5xx, row.r.Rejected429, row.r.Redirects)
	}
	fmt.Fprintf(w, "  aggregate speedup: %.2fx (%d CPU)\n", doc.Speedup, doc.NumCPU)
	if doc.Note != "" {
		fmt.Fprintf(w, "  note: %s\n", doc.Note)
	}
}

// MergeClusterJSON writes the cluster document into path under a "cluster"
// key, preserving every other key of an existing BENCH_*.json ("-" =
// stdout, cluster document only).
func MergeClusterJSON(path string, doc *ClusterDoc) error {
	if path == "-" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}
	merged := map[string]any{}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &merged); err != nil {
			return fmt.Errorf("existing %s is not a JSON object: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	merged["cluster"] = doc
	out, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
