package bench

// E14 — continuous temporal ingest. Streams the fraud workload through a
// real in-process paruleld via the NDJSON /stream endpoint: every frame
// asserts one tick's transactions, advances the temporal clock (expiring
// transactions older than the program's TTL through the normal retract
// path), and runs the engine to quiescence. The point of the experiment
// is the bound: cumulative facts streamed grows without limit while peak
// working-memory size stays a small multiple of the per-tick arrival
// rate, because TTL eviction retires each tick's transactions as fast as
// new ones arrive.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"parulel/internal/server"
	"parulel/internal/wm"
	"parulel/internal/workload"
)

// StreamDoc is the `-stream` document, merged into BENCH_*.json under
// "stream".
type StreamDoc struct {
	Schema        string  `json:"schema"` // "parulel-stream/v1"
	GeneratedAt   string  `json:"generated_at"`
	GoVersion     string  `json:"go_version"`
	NumCPU        int     `json:"num_cpu"`
	Quick         bool    `json:"quick"`
	Frames        int     `json:"frames"`
	FactsPerFrame int     `json:"facts_per_frame"`
	Cards         int     `json:"cards"`
	FactsStreamed int     `json:"facts_streamed"`
	Ticks         int64   `json:"ticks"`
	Expired       int     `json:"expired"`
	PeakWM        int     `json:"peak_wm"`
	FinalWM       int     `json:"final_wm"`
	WallMS        int64   `json:"wall_ms"`
	FactsPerSec   float64 `json:"facts_per_sec"`
	// WMBoundRatio is peak WM over cumulative facts streamed — the
	// headline number: it shrinks as the stream lengthens because TTL
	// eviction holds the resident set near a constant.
	WMBoundRatio float64 `json:"wm_bound_ratio"`
}

// streamShape sizes the run. Full mode streams ≥1M cumulative facts;
// quick keeps the same frame structure at smoke-test volume.
func streamShape(quick bool) (frames, perFrame, cards int) {
	if quick {
		return 100, 200, 32
	}
	return 1000, 1000, 64
}

// RunStream executes E14 against a fresh in-process server with a real
// WAL under a temporary directory.
func RunStream(quick bool) (*StreamDoc, error) {
	frames, perFrame, cards := streamShape(quick)
	doc := &StreamDoc{
		Schema:        "parulel-stream/v1",
		GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		NumCPU:        runtime.NumCPU(),
		Quick:         quick,
		Frames:        frames,
		FactsPerFrame: perFrame,
		Cards:         cards,
	}

	dir, err := os.MkdirTemp("", "parulel-stream-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	srv, err := server.New(server.Config{DataDir: dir})
	if err != nil {
		return nil, fmt.Errorf("starting server: %w", err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Close(ctx)
	}()

	sessID, err := streamSession(ts.URL, workload.FraudStreamProgram)
	if err != nil {
		return nil, err
	}

	// Stream in bounded chunks of frames so request bodies stay under
	// the server's 4 MiB body cap (a full-size frame is ~90 KB of JSON);
	// the session and its temporal clock persist across requests, so the
	// chunking is invisible to the workload.
	const chunk = 20
	start := time.Now()
	for base := 0; base < frames; base += chunk {
		n := chunk
		if base+n > frames {
			n = frames - base
		}
		var body bytes.Buffer
		enc := json.NewEncoder(&body)
		for i := 0; i < n; i++ {
			facts := workload.FraudTxns(base+i, perFrame, cards, 1)
			wire := make([]any, len(facts))
			for j, f := range facts {
				wire[j] = map[string]any{"template": "txn", "fields": wireFields(f)}
			}
			if err := enc.Encode(map[string]any{"facts": wire, "run": true, "timeout_ms": 60000}); err != nil {
				return nil, err
			}
		}
		if err := streamChunk(ts.URL, sessID, body.Bytes(), doc); err != nil {
			return nil, fmt.Errorf("frames %d..%d: %w", base, base+n-1, err)
		}
	}
	wall := time.Since(start)
	doc.WallMS = wall.Milliseconds()
	if wall > 0 {
		doc.FactsPerSec = float64(doc.FactsStreamed) / wall.Seconds()
	}
	if doc.FactsStreamed > 0 {
		doc.WMBoundRatio = float64(doc.PeakWM) / float64(doc.FactsStreamed)
	}
	return doc, nil
}

// wireFields renders generator values in the JSON wire form the server
// decodes (symbols as strings, ints as numbers).
func wireFields(f map[string]wm.Value) map[string]any {
	out := make(map[string]any, len(f))
	for k, v := range f {
		switch v.Kind {
		case wm.KindInt:
			out[k] = v.I
		case wm.KindFloat:
			out[k] = v.F
		default:
			out[k] = v.S
		}
	}
	return out
}

// streamChunk posts one NDJSON request and folds its response lines into
// the document, tracking the peak working-memory size across frames.
func streamChunk(baseURL, sessID string, body []byte, doc *StreamDoc) error {
	req, err := http.NewRequest(http.MethodPost, baseURL+"/api/v1/sessions/"+sessID+"/stream", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(b))
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var line struct {
			Asserted int    `json:"asserted"`
			Tick     int64  `json:"tick"`
			Expired  int    `json:"expired"`
			WMSize   int    `json:"wm_size"`
			Error    string `json:"error"`
		}
		if err := dec.Decode(&line); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		if line.Error != "" {
			return fmt.Errorf("stream error: %s", line.Error)
		}
		doc.FactsStreamed += line.Asserted
		doc.Ticks = line.Tick
		doc.Expired += line.Expired
		doc.FinalWM = line.WMSize
		if line.WMSize > doc.PeakWM {
			doc.PeakWM = line.WMSize
		}
	}
}

// streamSession creates a session compiled from the given program source.
func streamSession(baseURL, source string) (string, error) {
	body, _ := json.Marshal(map[string]any{"source": source})
	resp, err := http.Post(baseURL+"/api/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		return "", fmt.Errorf("creating session: status %d: %s", resp.StatusCode, bytes.TrimSpace(b))
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", err
	}
	return out.ID, nil
}

// E14 — continuous ingest: cumulative stream volume vs resident working
// memory. The table is the document rendered for terminal use.
func E14(w io.Writer, quick bool) error {
	doc, err := RunStream(quick)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "E14 — continuous temporal ingest: TTL eviction bounds working memory")
	WriteStreamTable(w, doc)
	return nil
}

// WriteStreamTable renders the document for terminal use.
func WriteStreamTable(w io.Writer, doc *StreamDoc) {
	fmt.Fprintf(w, "  fraud stream: %d frames x %d txns over %d cards (1 frame = 1 tick)\n",
		doc.Frames, doc.FactsPerFrame, doc.Cards)
	fmt.Fprintf(w, "  %-18s %12d\n", "facts streamed", doc.FactsStreamed)
	fmt.Fprintf(w, "  %-18s %12d\n", "ticks", doc.Ticks)
	fmt.Fprintf(w, "  %-18s %12d\n", "expired", doc.Expired)
	fmt.Fprintf(w, "  %-18s %12d\n", "peak WM", doc.PeakWM)
	fmt.Fprintf(w, "  %-18s %12d\n", "final WM", doc.FinalWM)
	fmt.Fprintf(w, "  %-18s %12.1f\n", "facts/sec", doc.FactsPerSec)
	fmt.Fprintf(w, "  %-18s %12.5f  (peak WM / cumulative facts)\n", "WM bound ratio", doc.WMBoundRatio)
}

// MergeStreamJSON writes the stream document into path under a "stream"
// key, preserving every other key of an existing BENCH_*.json ("-" =
// stdout, stream document only).
func MergeStreamJSON(path string, doc *StreamDoc) error {
	if path == "-" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}
	merged := map[string]any{}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &merged); err != nil {
			return fmt.Errorf("existing %s is not a JSON object: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	merged["stream"] = doc
	out, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
