package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"text/tabwriter"
	"time"

	"parulel/internal/compile"
	"parulel/internal/core"
	"parulel/internal/match/rete"
	"parulel/internal/programs"
	"parulel/internal/wm"
	"parulel/internal/workload"
)

// E13 — eval-mode ablation: the bytecode register VM vs the tree-walking
// interpreter on the expressions of real workloads (waltz's junction
// arithmetic, circuit's threshold tests, a filter-heavy join chain).
//
// Two measurements per workload:
//
//   - eval-only: every call expression of the compiled program
//     (alpha/join filters, RHS action expressions, meta tests) evaluated
//     repeatedly against a deterministic binding environment. Leaf roots
//     (bare refs and constants) are excluded: lowering leaves them on the
//     tree walker in both modes by design, so they dilute the measured
//     delta to noise without informing it. This isolates the backend the
//     ablation changes; the speedup column is the headline number.
//   - full run: engine wall time under each backend. Match dominates
//     these workloads, so the end-to-end delta is small by Amdahl —
//     reported to keep the component number honest.

// filteredChainProgram is the E4 join chain with a `(test …)` filter on
// every condition element, so join evaluation exercises the expression
// backend on each candidate rather than only equality tests.
func filteredChainProgram(depth int) string {
	var b strings.Builder
	b.WriteString("(literalize rec seg key val)\n")
	b.WriteString("(literalize out key)\n")
	b.WriteString("(rule deep\n")
	for i := 0; i < depth; i++ {
		fmt.Fprintf(&b, "  (rec ^seg %d ^key <k> ^val <v%d>)\n", i, i)
		fmt.Fprintf(&b, "  (test (and (>= <v%d> 0) (< (+ <v%d> (* <k> 2)) 100000)))\n", i, i)
	}
	b.WriteString("-->\n  (make out ^key <k>))\n")
	return b.String()
}

// evalBenchEnv is a deterministic compile.Env for the eval-only
// measurement: every reference resolves to a small positive integer, so
// arithmetic, comparisons and symcat all take their non-error paths.
type evalBenchEnv struct{}

func (evalBenchEnv) Ref(r compile.VarRef) wm.Value {
	return wm.Int(int64((7*r.CE+3*r.Field+11)%13 + 1))
}
func (evalBenchEnv) Local(i int) wm.Value { return wm.Int(int64(i%13 + 1)) }
func (evalBenchEnv) MetaVal(pat int, r compile.VarRef) wm.Value {
	return wm.Int(int64((5*pat+7*r.CE+3*r.Field)%13 + 1))
}
func (evalBenchEnv) MetaTag(pat int) int64           { return int64(pat*10 + 3) }
func (evalBenchEnv) MetaRuleName(pat int) string     { return fmt.Sprintf("rule%d", pat) }
func (evalBenchEnv) MetaPrecedes(pat, pat2 int) bool { return pat < pat2 }

// collectExprs walks every call expression the compiler lowered:
// condition filters, RHS action expressions, and meta-rule tests. Leaf
// roots are skipped — both backends run them through the same tree-walker
// switch arm, so they carry no signal about the ablation.
func collectExprs(p *compile.Program) []*compile.Expr {
	var out []*compile.Expr
	add := func(xs ...*compile.Expr) {
		for _, x := range xs {
			if x.Kind == compile.ECall {
				out = append(out, x)
			}
		}
	}
	for _, r := range p.Rules {
		for _, ce := range r.CEs {
			add(ce.Filters...)
		}
		for _, a := range r.Actions {
			for _, s := range a.Slots {
				add(s.Expr)
			}
			add(a.Exprs...)
		}
	}
	for _, m := range p.MetaRules {
		add(m.Tests...)
	}
	return out
}

// evalPass evaluates every expression once under the given mode,
// discarding values and errors (both backends agree on both).
func evalPass(exprs []*compile.Expr, mode compile.EvalMode, env compile.Env) {
	for _, e := range exprs {
		mode.Eval(e, env) //nolint:errcheck // timing only
	}
}

// evalOnly times `passes` sweeps over the expression set and returns the
// best per-pass duration.
func evalOnly(exprs []*compile.Expr, mode compile.EvalMode, passes, reps int) time.Duration {
	env := evalBenchEnv{}
	best := time.Duration(0)
	for r := 0; r < reps; r++ {
		start := time.Now()
		for i := 0; i < passes; i++ {
			evalPass(exprs, mode, env)
		}
		d := time.Since(start) / time.Duration(passes)
		if best == 0 || d < best {
			best = d
		}
	}
	return best
}

// evalSpec is one E13 workload: a compiled program plus an engine loader.
type evalSpec struct {
	name string
	prog func() (*compile.Program, error)
	load loader
}

func evalSpecs(quick bool) []evalSpec {
	cubes, cw, cd, depth, keys, copies := 40, 16, 24, 6, 14, 2
	bw, bd, drv := 8, 8, 12
	if quick {
		cubes, cw, cd, depth, keys, copies = 10, 8, 10, 4, 8, 2
		bw, bd, drv = 4, 4, 8
	}
	chainSrc := filteredChainProgram(depth)
	return []evalSpec{
		{fmt.Sprintf("waltz(%d)", cubes),
			func() (*compile.Program, error) { return programs.Load(programs.Waltz) },
			func(i workload.Inserter) error { return workload.WaltzScene(i, cubes) }},
		{fmt.Sprintf("circuit(%dx%d)", cw, cd),
			func() (*compile.Program, error) { return programs.Load(programs.Circuit) },
			func(i workload.Inserter) error { return workload.GenCircuit(cw, cd, true, 1).Insert(i) }},
		{fmt.Sprintf("circuit-bus(%dx%d,d%d)", bw, bd, drv),
			func() (*compile.Program, error) { return programs.Load(programs.Circuit) },
			func(i workload.Inserter) error { return workload.GenBusCircuit(bw, bd, drv, 1).Insert(i) }},
		{fmt.Sprintf("joinchain(%d)", depth),
			func() (*compile.Program, error) { return compile.CompileSource(chainSrc) },
			func(i workload.Inserter) error {
				facts := workload.JoinChainFacts(keys, depth, copies, 1)
				for _, f := range facts {
					if _, err := i.Insert("rec", f); err != nil {
						return err
					}
				}
				return nil
			}},
	}
}

// evalModes orders the ablation: interp is the baseline, bytecode the
// treatment.
var evalModes = []compile.EvalMode{compile.EvalInterp, compile.EvalBytecode}

// EvalResult is one workload row of the ablation.
type EvalResult struct {
	Workload string `json:"workload"`
	Exprs    int    `json:"exprs"` // call expressions in the compiled program
	// Eval-only: best per-pass time over the expression set.
	InterpEvalNS   int64   `json:"interp_eval_ns"`
	BytecodeEvalNS int64   `json:"bytecode_eval_ns"`
	EvalSpeedup    float64 `json:"eval_speedup"`
	// Full engine run under each backend (RETE, 4 workers).
	InterpWallNS   int64   `json:"interp_wall_ns"`
	BytecodeWallNS int64   `json:"bytecode_wall_ns"`
	RunSpeedup     float64 `json:"run_speedup"`
	Cycles         int     `json:"cycles"`
	Firings        int     `json:"firings"`
}

// EvalDoc is the E13 document merged into BENCH_*.json under "eval".
type EvalDoc struct {
	Schema      string       `json:"schema"` // "parulel-evalbench/v1"
	GeneratedAt string       `json:"generated_at"`
	NumCPU      int          `json:"num_cpu"`
	Quick       bool         `json:"quick"`
	Results     []EvalResult `json:"results"`
}

// RunEvalAblation measures the E13 grid and returns the document.
func RunEvalAblation(quick bool) (*EvalDoc, error) {
	doc := &EvalDoc{
		Schema:      "parulel-evalbench/v1",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		NumCPU:      runtime.NumCPU(),
		Quick:       quick,
	}
	// Best-of-N on both measurements: single-run full-engine wall times
	// swing ±30% on a loaded 1-CPU host, so E13 takes more reps than the
	// throughput suite even under -quick.
	passes, runReps := 2000, 11
	if quick {
		passes, runReps = 400, 5
	}
	for _, spec := range evalSpecs(quick) {
		prog, err := spec.prog()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.name, err)
		}
		exprs := collectExprs(prog)
		row := EvalResult{Workload: spec.name, Exprs: len(exprs)}

		interpEval := evalOnly(exprs, compile.EvalInterp, passes, reps(quick))
		bytecodeEval := evalOnly(exprs, compile.EvalBytecode, passes, reps(quick))
		row.InterpEvalNS = interpEval.Nanoseconds()
		row.BytecodeEvalNS = bytecodeEval.Nanoseconds()
		if bytecodeEval > 0 {
			row.EvalSpeedup = float64(interpEval) / float64(bytecodeEval)
		}

		// Interleave the two backends rep by rep: back-to-back runs see the
		// same heap, GC debt and scheduler state, so the best-of comparison
		// is not biased by whichever mode happens to run second.
		best := map[compile.EvalMode]time.Duration{}
		var lastRes core.Result
		for r := 0; r < runReps; r++ {
			for _, mode := range evalModes {
				prog, err := spec.prog()
				if err != nil {
					return nil, fmt.Errorf("%s [%s]: %w", spec.name, mode, err)
				}
				e := core.New(prog, core.Options{
					Workers:   4,
					MaxCycles: 1 << 20,
					Matcher:   rete.Factory(rete.Options{EvalMode: mode}),
					EvalMode:  mode,
				})
				if err := spec.load(e); err != nil {
					return nil, fmt.Errorf("%s [%s]: %w", spec.name, mode, err)
				}
				// Settle the heap so collection debt from the previous rep
				// lands here, not inside an arbitrary timed run.
				runtime.GC()
				start := time.Now()
				res, err := e.Run()
				if err != nil {
					return nil, fmt.Errorf("%s [%s]: %w", spec.name, mode, err)
				}
				d := time.Since(start)
				if best[mode] == 0 || d < best[mode] {
					best[mode] = d
				}
				lastRes = res
			}
		}
		row.InterpWallNS = best[compile.EvalInterp].Nanoseconds()
		row.BytecodeWallNS = best[compile.EvalBytecode].Nanoseconds()
		row.Cycles, row.Firings = lastRes.Cycles, lastRes.Firings
		if row.BytecodeWallNS > 0 {
			row.RunSpeedup = float64(row.InterpWallNS) / float64(row.BytecodeWallNS)
		}
		doc.Results = append(doc.Results, row)
	}
	return doc, nil
}

// E13 — Table 10 (ablation): bytecode VM vs tree-walking interpreter.
func E13(w io.Writer, quick bool) error {
	fmt.Fprintln(w, "E13 (Table 10, ablation) — expression backend: bytecode VM vs tree walker")
	doc, err := RunEvalAblation(quick)
	if err != nil {
		return err
	}
	WriteEvalTable(w, doc)
	return nil
}

// WriteEvalTable renders the ablation document as the E13 table.
func WriteEvalTable(w io.Writer, doc *EvalDoc) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\texprs\teval-interp\teval-bytecode\teval-speedup\trun-interp\trun-bytecode\trun-speedup")
	for _, r := range doc.Results {
		fmt.Fprintf(tw, "%s\t%d\t%v\t%v\t%.2fx\t%v\t%v\t%.2fx\n",
			r.Workload, r.Exprs,
			time.Duration(r.InterpEvalNS).Round(time.Nanosecond),
			time.Duration(r.BytecodeEvalNS).Round(time.Nanosecond),
			r.EvalSpeedup,
			time.Duration(r.InterpWallNS).Round(time.Microsecond),
			time.Duration(r.BytecodeWallNS).Round(time.Microsecond),
			r.RunSpeedup)
	}
	tw.Flush()
	fmt.Fprintf(w, "  num_cpu=%d; eval-only isolates the backend, full-run deltas are bounded by the eval share of the cycle\n", doc.NumCPU)
}

// MergeEvalJSON writes the ablation document into path under an "eval"
// key, preserving every other key of an existing BENCH_*.json ("-" =
// stdout, eval document only).
func MergeEvalJSON(path string, doc *EvalDoc) error {
	if path == "-" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}
	merged := map[string]any{}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &merged); err != nil {
			return fmt.Errorf("existing %s is not a JSON object: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	merged["eval"] = doc
	out, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
