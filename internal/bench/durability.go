package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"text/tabwriter"
	"time"

	"parulel/internal/checkpoint"
	"parulel/internal/compile"
	"parulel/internal/core"
	"parulel/internal/wal"
	"parulel/internal/wm"
)

// durabilitySrc is the session program the durability benchmark drives:
// one rule that acknowledges each request, so every iteration's run fires
// exactly once and the working memory grows by two facts.
const durabilitySrc = `
(literalize req id)
(literalize ack id)
(rule acknowledge
  (req ^id <i>)
  -(ack ^id <i>)
-->
  (make ack ^id <i>))
`

// durabilityPolicy is one measured configuration: a WAL fsync policy, or
// "off" for the undurable baseline (no log at all).
type durabilityPolicy struct {
	name string
	on   bool
	pol  wal.Policy
}

// Durability (`parbench -durability`) measures what the durability layer
// costs at the session write path: per iteration it asserts one fact,
// runs the engine to quiescence, and logs the mutation + run boundary
// the way paruleld does, checkpointing after every checkpointEvery
// records. The table compares fsync policies against the memory-only
// baseline — PolicyAlways pays one fsync per append, PolicyInterval
// amortizes to a background ticker, PolicyNever leaves flushing to the
// OS.
func Durability(w io.Writer, quick bool) error {
	iters, ckptEvery := 1500, 256
	if quick {
		iters, ckptEvery = 200, 64
	}
	prog, err := compile.CompileSource(durabilitySrc)
	if err != nil {
		return err
	}
	root, err := os.MkdirTemp("", "parbench-durability-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)

	fmt.Fprintf(w, "Durability — WAL fsync policy cost at the session write path (%d assert+run iterations, checkpoint every %d records)\n", iters, ckptEvery)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "fsync\twall\tops/sec\tslowdown\twal-bytes\tfsyncs\tcheckpoints")

	policies := []durabilityPolicy{
		{name: "off (memory-only)"},
		{name: "never", on: true, pol: wal.PolicyNever},
		{name: "interval", on: true, pol: wal.PolicyInterval},
		{name: "always", on: true, pol: wal.PolicyAlways},
	}
	var base time.Duration
	for pi, p := range policies {
		dir := filepath.Join(root, fmt.Sprintf("p%d", pi))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		var walBytes, fsyncs, checkpoints int
		var log *wal.Log
		if p.on {
			log, _, err = wal.Open(filepath.Join(dir, "wal.log"), wal.Options{
				Policy:   p.pol,
				OnAppend: func(n int) { walBytes += n },
				OnFsync:  func(time.Duration) { fsyncs++ },
			})
			if err != nil {
				return err
			}
		}
		e := core.New(prog, core.Options{Workers: 1, MaxCycles: 1 << 20})
		records := 0

		start := time.Now()
		for i := 0; i < iters; i++ {
			fields := map[string]wm.Value{"id": wm.Int(int64(i))}
			if _, err := e.Insert("req", fields); err != nil {
				return err
			}
			before := e.Counters()
			res, err := e.Run()
			if err != nil {
				return err
			}
			if p.on {
				if err := log.Append(&wal.Record{
					Op:    wal.OpAssert,
					Facts: []wal.Fact{{Template: "req", Fields: wal.EncodeFields(fields)}},
				}); err != nil {
					return err
				}
				if err := log.Append(&wal.Record{
					Op:     wal.OpRun,
					Cycles: res.Cycles - before.Cycles,
					Halted: res.Halted,
				}); err != nil {
					return err
				}
				records += 2
				if records >= ckptEvery {
					if err := writeBenchCheckpoint(dir, log.Seq(), e); err != nil {
						return err
					}
					if err := log.Reset(); err != nil {
						return err
					}
					checkpoints++
					records = 0
				}
			}
		}
		if p.on {
			if err := log.Close(); err != nil {
				return err
			}
		}
		wall := time.Since(start)
		if pi == 0 {
			base = wall
		}
		fmt.Fprintf(tw, "%s\t%v\t%.0f\t%.2fx\t%d\t%d\t%d\n",
			p.name, wall.Round(time.Microsecond),
			float64(iters)/wall.Seconds(), float64(wall)/float64(base),
			walBytes, fsyncs, checkpoints)
	}
	return tw.Flush()
}

// writeBenchCheckpoint persists a full engine image the way the server
// does: write-to-temp, fsync, rename.
func writeBenchCheckpoint(dir string, seq uint64, e *core.Engine) error {
	h := checkpoint.Header{
		Seq:      seq,
		Program:  "durability-bench",
		Source:   durabilitySrc,
		Workers:  1,
		Counters: e.Counters(),
		Fired:    e.FiredKeys(),
	}
	tmp, err := os.CreateTemp(dir, "checkpoint-*")
	if err != nil {
		return err
	}
	if err := checkpoint.Write(tmp, h, e.Memory()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, "checkpoint"))
}
