package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"parulel/internal/checkpoint"
	"parulel/internal/compile"
	"parulel/internal/core"
	"parulel/internal/wal"
	"parulel/internal/wm"
)

// durabilitySrc is the session program the durability benchmark drives:
// one rule that acknowledges each request, so every iteration's run fires
// exactly once and the working memory grows by two facts.
const durabilitySrc = `
(literalize req id)
(literalize ack id)
(rule acknowledge
  (req ^id <i>)
  -(ack ^id <i>)
-->
  (make ack ^id <i>))
`

// durabilityPolicy is one measured configuration: a WAL fsync policy, or
// "off" for the undurable baseline (no log at all).
type durabilityPolicy struct {
	name string
	on   bool
	pol  wal.Policy
}

// DurabilityRow is one fsync policy's cost at the single-writer session
// write path.
type DurabilityRow struct {
	Policy      string  `json:"policy"`
	WallNS      int64   `json:"wall_ns"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	Slowdown    float64 `json:"slowdown"` // vs the memory-only baseline
	WALBytes    int     `json:"wal_bytes"`
	Fsyncs      int     `json:"fsyncs"`
	Checkpoints int     `json:"checkpoints"`
}

// GroupCommitRow is one (policy, concurrency) point of the shared-log
// appender comparison: the axis where group commit earns its keep.
type GroupCommitRow struct {
	Policy          string  `json:"policy"`
	Concurrency     int     `json:"concurrency"`
	Appends         int     `json:"appends"`
	WallNS          int64   `json:"wall_ns"`
	AppendsPerSec   float64 `json:"appends_per_sec"`
	Fsyncs          int     `json:"fsyncs"`
	AppendsPerFsync float64 `json:"appends_per_fsync"`
}

// DurabilityDoc is the `-durability` document, merged into BENCH_*.json
// under "durability".
type DurabilityDoc struct {
	Schema          string           `json:"schema"` // "parulel-durability/v1"
	GeneratedAt     string           `json:"generated_at"`
	GoVersion       string           `json:"go_version"`
	NumCPU          int              `json:"num_cpu"`
	Quick           bool             `json:"quick"`
	Iters           int              `json:"iters"`
	CheckpointEvery int              `json:"checkpoint_every"`
	Policies        []DurabilityRow  `json:"policies"`
	GroupCommit     []GroupCommitRow `json:"group_commit"`
	// GroupSpeedup is group/always append throughput at the highest
	// measured concurrency — the number that justifies the policy.
	GroupSpeedup            float64 `json:"group_speedup"`
	GroupSpeedupConcurrency int     `json:"group_speedup_concurrency"`
}

// RunDurability measures what the durability layer costs. Two axes:
//
// Single writer: per iteration assert one fact, run the engine to
// quiescence, and log the mutation + run boundary the way paruleld does,
// checkpointing after every CheckpointEvery records. PolicyAlways pays
// one fsync per append, PolicyGroup routes each append through the
// commit daemon (a cohort of one — its overhead floor), PolicyInterval
// amortizes to a background ticker, PolicyNever leaves flushing to the
// OS.
//
// Shared log: n goroutines appending to one log, fsync=always vs
// fsync=group. Group commit coalesces the concurrent fsyncs into cohort
// flushes, so its throughput should scale with the writer count while
// always's stays flat.
func RunDurability(quick bool) (*DurabilityDoc, error) {
	iters, ckptEvery := 1500, 256
	if quick {
		iters, ckptEvery = 200, 64
	}
	doc := &DurabilityDoc{
		Schema:          "parulel-durability/v1",
		GeneratedAt:     time.Now().UTC().Format(time.RFC3339),
		GoVersion:       runtime.Version(),
		NumCPU:          runtime.NumCPU(),
		Quick:           quick,
		Iters:           iters,
		CheckpointEvery: ckptEvery,
	}
	prog, err := compile.CompileSource(durabilitySrc)
	if err != nil {
		return nil, err
	}
	root, err := os.MkdirTemp("", "parbench-durability-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)

	policies := []durabilityPolicy{
		{name: "off (memory-only)"},
		{name: "never", on: true, pol: wal.PolicyNever},
		{name: "interval", on: true, pol: wal.PolicyInterval},
		{name: "group", on: true, pol: wal.PolicyGroup},
		{name: "always", on: true, pol: wal.PolicyAlways},
	}
	var base time.Duration
	for pi, p := range policies {
		dir := filepath.Join(root, fmt.Sprintf("p%d", pi))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		var walBytes, fsyncs, checkpoints int
		var log *wal.Log
		if p.on {
			log, _, err = wal.Open(filepath.Join(dir, "wal.log"), wal.Options{
				Policy:   p.pol,
				OnAppend: func(n int) { walBytes += n },
				OnFsync:  func(time.Duration) { fsyncs++ },
			})
			if err != nil {
				return nil, err
			}
		}
		e := core.New(prog, core.Options{Workers: 1, MaxCycles: 1 << 20})
		records := 0

		start := time.Now()
		for i := 0; i < iters; i++ {
			fields := map[string]wm.Value{"id": wm.Int(int64(i))}
			if _, err := e.Insert("req", fields); err != nil {
				return nil, err
			}
			before := e.Counters()
			res, err := e.Run()
			if err != nil {
				return nil, err
			}
			if p.on {
				if err := log.Append(&wal.Record{
					Op:    wal.OpAssert,
					Facts: []wal.Fact{{Template: "req", Fields: wal.EncodeFields(fields)}},
				}); err != nil {
					return nil, err
				}
				if err := log.Append(&wal.Record{
					Op:     wal.OpRun,
					Cycles: res.Cycles - before.Cycles,
					Halted: res.Halted,
				}); err != nil {
					return nil, err
				}
				records += 2
				if records >= ckptEvery {
					if err := writeBenchCheckpoint(dir, log.Seq(), e); err != nil {
						return nil, err
					}
					if err := log.Reset(); err != nil {
						return nil, err
					}
					checkpoints++
					records = 0
				}
			}
		}
		if p.on {
			if err := log.Close(); err != nil {
				return nil, err
			}
		}
		wall := time.Since(start)
		if pi == 0 {
			base = wall
		}
		doc.Policies = append(doc.Policies, DurabilityRow{
			Policy:      p.name,
			WallNS:      wall.Nanoseconds(),
			OpsPerSec:   float64(iters) / wall.Seconds(),
			Slowdown:    float64(wall) / float64(base),
			WALBytes:    walBytes,
			Fsyncs:      fsyncs,
			Checkpoints: checkpoints,
		})
	}

	// Shared-log axis: always serializes append+fsync, group coalesces.
	perWriter := 400
	if quick {
		perWriter = 80
	}
	alwaysAt := map[int]float64{}
	for _, conc := range []int{1, 8} {
		for _, p := range []struct {
			name string
			pol  wal.Policy
		}{{"always", wal.PolicyAlways}, {"group", wal.PolicyGroup}} {
			dir := filepath.Join(root, fmt.Sprintf("g-%s-%d", p.name, conc))
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return nil, err
			}
			row, err := sharedLogRun(dir, p.pol, conc, perWriter)
			if err != nil {
				return nil, fmt.Errorf("shared log [%s c=%d]: %w", p.name, conc, err)
			}
			row.Policy = p.name
			doc.GroupCommit = append(doc.GroupCommit, *row)
			switch p.name {
			case "always":
				alwaysAt[conc] = row.AppendsPerSec
			case "group":
				if conc > doc.GroupSpeedupConcurrency && alwaysAt[conc] > 0 {
					doc.GroupSpeedupConcurrency = conc
					doc.GroupSpeedup = row.AppendsPerSec / alwaysAt[conc]
				}
			}
		}
	}
	return doc, nil
}

// sharedLogRun drives conc goroutines, each appending perWriter records
// to one log, and reports aggregate append throughput and fsync counts.
func sharedLogRun(dir string, pol wal.Policy, conc, perWriter int) (*GroupCommitRow, error) {
	var fsyncs atomic.Int64
	log, _, err := wal.Open(filepath.Join(dir, "wal.log"), wal.Options{
		Policy:  pol,
		OnFsync: func(time.Duration) { fsyncs.Add(1) },
	})
	if err != nil {
		return nil, err
	}
	var wg sync.WaitGroup
	errs := make(chan error, conc)
	start := time.Now()
	for g := 0; g < conc; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := log.Append(&wal.Record{Op: wal.OpRun, Cycles: g<<20 | i}); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	wall := time.Since(start)
	if err := log.Close(); err != nil {
		return nil, err
	}
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	appends := conc * perWriter
	row := &GroupCommitRow{
		Concurrency:   conc,
		Appends:       appends,
		WallNS:        wall.Nanoseconds(),
		AppendsPerSec: float64(appends) / wall.Seconds(),
		Fsyncs:        int(fsyncs.Load()),
	}
	if row.Fsyncs > 0 {
		row.AppendsPerFsync = float64(appends) / float64(row.Fsyncs)
	}
	return row, nil
}

// WriteDurabilityTable renders the document for terminal use.
func WriteDurabilityTable(w io.Writer, doc *DurabilityDoc) error {
	fmt.Fprintf(w, "Durability — WAL fsync policy cost at the session write path (%d assert+run iterations, checkpoint every %d records)\n", doc.Iters, doc.CheckpointEvery)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "fsync\twall\tops/sec\tslowdown\twal-bytes\tfsyncs\tcheckpoints")
	for _, r := range doc.Policies {
		fmt.Fprintf(tw, "%s\t%v\t%.0f\t%.2fx\t%d\t%d\t%d\n",
			r.Policy, time.Duration(r.WallNS).Round(time.Microsecond),
			r.OpsPerSec, r.Slowdown, r.WALBytes, r.Fsyncs, r.Checkpoints)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nGroup commit — concurrent appenders sharing one log, fsync=always vs fsync=group\n")
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "fsync\tconc\tappends\twall\tappends/sec\tfsyncs\tappends/fsync")
	for _, r := range doc.GroupCommit {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%v\t%.0f\t%d\t%.1f\n",
			r.Policy, r.Concurrency, r.Appends,
			time.Duration(r.WallNS).Round(time.Microsecond),
			r.AppendsPerSec, r.Fsyncs, r.AppendsPerFsync)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "group-commit speedup over always at c=%d: %.2fx\n",
		doc.GroupSpeedupConcurrency, doc.GroupSpeedup)
	return nil
}

// MergeDurabilityJSON writes the durability document into path under a
// "durability" key, preserving every other key of an existing
// BENCH_*.json ("-" = stdout, durability document only).
func MergeDurabilityJSON(path string, doc *DurabilityDoc) error {
	if path == "-" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}
	merged := map[string]any{}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &merged); err != nil {
			return fmt.Errorf("existing %s is not a JSON object: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	merged["durability"] = doc
	out, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// Durability runs the benchmark and renders the table — the non-JSON
// `parbench -durability` path.
func Durability(w io.Writer, quick bool) error {
	doc, err := RunDurability(quick)
	if err != nil {
		return err
	}
	return WriteDurabilityTable(w, doc)
}

// writeBenchCheckpoint persists a full engine image the way the server
// does: write-to-temp, fsync, rename.
func writeBenchCheckpoint(dir string, seq uint64, e *core.Engine) error {
	h := checkpoint.Header{
		Seq:      seq,
		Program:  "durability-bench",
		Source:   durabilitySrc,
		Workers:  1,
		Counters: e.Counters(),
		Fired:    e.FiredKeys(),
	}
	tmp, err := os.CreateTemp(dir, "checkpoint-*")
	if err != nil {
		return err
	}
	if err := checkpoint.Write(tmp, h, e.Memory()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, "checkpoint"))
}
