package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"parulel/internal/core"
	"parulel/internal/match"
	"parulel/internal/match/rete"
	"parulel/internal/match/treat"
	"parulel/internal/programs"
)

// RuleProfiles runs each suite workload with per-rule profiling enabled
// and prints where match time goes rule by rule — the offline companion
// to the server's /metrics per-rule series (docs/OBSERVABILITY.md).
// Rules beyond `top` per (workload, matcher) are folded into one
// remainder row so hot rules stay readable on wide programs.
func RuleProfiles(w io.Writer, quick bool, top int) error {
	if top <= 0 {
		top = 10
	}
	matchers := []struct {
		name    string
		factory match.Factory
	}{
		{"rete", rete.Factory(rete.Options{Profile: true})},
		{"treat", treat.Factory(treat.Options{Profile: true})},
	}
	for wi, spec := range suite(quick) {
		if wi > 0 {
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "%s — per-rule match attribution\n", spec.name)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
		fmt.Fprintln(tw, "matcher\trule\tmatch-ms\tmatch%\ttokens\tprobes\tinsts\tfires\t")
		for _, m := range matchers {
			prog, err := programs.Load(spec.prog)
			if err != nil {
				return err
			}
			e := core.New(prog, core.Options{Workers: 4, Matcher: m.factory, MaxCycles: 1 << 20})
			if err := spec.load(e); err != nil {
				return err
			}
			if _, err := e.Run(); err != nil {
				return err
			}
			profs := e.RuleProfiles()
			var totalNS int64
			for _, p := range profs {
				totalNS += p.MatchNS
			}
			pct := func(ns int64) float64 {
				if totalNS == 0 {
					return 0
				}
				return 100 * float64(ns) / float64(totalNS)
			}
			shown := profs
			if len(shown) > top {
				shown = shown[:top]
			}
			for _, p := range shown {
				fmt.Fprintf(tw, "%s\t%s\t%.2f\t%.1f\t%d\t%d\t%d\t%d\t\n",
					m.name, p.Rule, float64(p.MatchNS)/1e6, pct(p.MatchNS),
					p.Tokens, p.Probes, p.Insts, p.Fires)
			}
			if rest := profs[len(shown):]; len(rest) > 0 {
				var agg match.RuleProfile
				for _, p := range rest {
					agg.MatchNS += p.MatchNS
					agg.Tokens += p.Tokens
					agg.Probes += p.Probes
					agg.Insts += p.Insts
					agg.Fires += p.Fires
				}
				fmt.Fprintf(tw, "%s\t(%d more)\t%.2f\t%.1f\t%d\t%d\t%d\t%d\t\n",
					m.name, len(rest), float64(agg.MatchNS)/1e6, pct(agg.MatchNS),
					agg.Tokens, agg.Probes, agg.Insts, agg.Fires)
			}
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}
