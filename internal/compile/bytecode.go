package compile

import "parulel/internal/wm"

// EvalMode selects the expression execution backend. The zero value is
// EvalBytecode: every root expression the compiler emits (alpha/join
// filters, RHS action expressions, meta-rule predicates) is lowered to
// register bytecode at program-build time and executed by the VM in vm.go.
// EvalInterp forces the tree-walking interpreter (Eval), retained as the
// semantic reference and as the fallback for expressions built outside
// Compile (which carry no code).
type EvalMode uint8

// Eval modes.
const (
	// EvalBytecode executes lowered register bytecode (the default).
	EvalBytecode EvalMode = iota
	// EvalInterp walks the expression tree (the reference interpreter).
	EvalInterp
)

// String names the mode for flags, logs and bench output.
func (m EvalMode) String() string {
	if m == EvalInterp {
		return "interp"
	}
	return "bytecode"
}

// Eval evaluates a compiled expression under the mode. Bytecode mode falls
// back to the tree walker for expressions that were never lowered (hand
// built, or lowering hit an encoding limit); the two backends agree on
// values and on error text, so the fallback is invisible to callers.
func (m EvalMode) Eval(e *Expr, env Env) (wm.Value, error) {
	if m == EvalBytecode && e.code != nil {
		return e.code.run(env)
	}
	return Eval(e, env)
}

// vmOp is a bytecode opcode. Instructions address up to three operands
// (a, b, c); variadic builtins operate on a window of contiguous
// registers, which the lowering guarantees by evaluating argument i of a
// call into register base+i.
type vmOp uint8

const (
	opConst      vmOp = iota // r[a] = consts[b]
	opRef                    // r[a] = env.Ref(refs[b])
	opLocal                  // r[a] = env.Local(b)
	opMetaRef                // r[a] = env.MetaVal(b, refs[c])
	opMetaTag                // r[a] = Int(env.MetaTag(b))
	opMetaRule               // r[a] = Sym(env.MetaRuleName(b))
	opMetaPrec               // r[a] = Bool(env.MetaPrecedes(b, c))
	opJump                   // pc = b
	opJumpFalsy              // if !r[a].Truthy() { pc = b }
	opJumpTruthy             // if r[a].Truthy() { pc = b }
	opNot                    // r[a] = Bool(!r[b].Truthy())
	opHash                   // r[a] = Int(hashValue(r[b]))
	opAbs                    // r[a] = |r[b]|, error on non-numeric
	opCmp                    // r[a] = Bool(PredOp(c).Apply(r[b], r[b+1]))
	opAdd                    // r[a] = fold over r[b:b+c] — the arith window
	opSub                    // ops: semantics match evalArith exactly
	opMul
	opDiv
	opMod
	opMin
	opMax
	opSymcat // r[a] = symbol concat of r[b:b+c]
	opRet    // return r[a]
)

type inst struct {
	op      vmOp
	a, b, c uint16
}

// code is the lowered form of one root expression: an instruction
// sequence over a register frame, a constant pool and a VarRef side
// table. A code value is immutable after lowering and safe for
// concurrent execution (each run gets its own pooled frame).
type code struct {
	ins    []inst
	consts []wm.Value
	refs   []VarRef
	nregs  int
}

// encoding limits: operands are uint16. Programs never get close in
// practice; lowering bails out (leaving the expression on the tree
// walker) rather than mis-encoding.
const vmMaxOperand = 1<<16 - 1

// lowerProgram attaches bytecode to every root expression of a compiled
// program. Called once at the end of Compile, so nothing is re-lowered
// per match/fire cycle.
func lowerProgram(p *Program) {
	for _, r := range p.Rules {
		for _, ce := range r.CEs {
			for _, f := range ce.Filters {
				f.code = lowerExpr(f)
			}
		}
		for _, a := range r.Actions {
			for j := range a.Slots {
				s := a.Slots[j].Expr
				s.code = lowerExpr(s)
			}
			for _, x := range a.Exprs {
				x.code = lowerExpr(x)
			}
		}
	}
	for _, m := range p.MetaRules {
		for _, t := range m.Tests {
			t.code = lowerExpr(t)
		}
	}
}

// lowerExpr compiles one expression tree to bytecode, or returns nil when
// the tree cannot be encoded (operand overflow or an unknown builtin) —
// the caller then stays on the tree walker for that expression.
func lowerExpr(e *Expr) *code {
	// Leaf roots (constants, references, meta lookups) are a single
	// switch arm in the tree walker; the VM's register-frame setup can
	// only lose there, so they keep the interpreter path in both modes.
	if e.Kind != ECall {
		return nil
	}
	l := &lowerer{}
	if !l.lower(e, 0) {
		return nil
	}
	l.emit(opRet, 0, 0, 0)
	if len(l.ins) > vmMaxOperand {
		return nil
	}
	return &code{ins: l.ins, consts: l.consts, refs: l.refs, nregs: l.nregs}
}

type lowerer struct {
	ins    []inst
	consts []wm.Value
	refs   []VarRef
	nregs  int
	failed bool
}

func (l *lowerer) emit(op vmOp, a, b, c uint16) int {
	l.ins = append(l.ins, inst{op: op, a: a, b: b, c: c})
	return len(l.ins) - 1
}

// patch retargets the jump at index i to the next instruction slot.
func (l *lowerer) patch(i int) {
	if len(l.ins) > vmMaxOperand {
		l.failed = true
		return
	}
	l.ins[i].b = uint16(len(l.ins))
}

// operand range-checks an operand value.
func (l *lowerer) operand(n int) uint16 {
	if n < 0 || n > vmMaxOperand {
		l.failed = true
		return 0
	}
	return uint16(n)
}

// reg reserves register dst, growing the frame size.
func (l *lowerer) reg(dst int) uint16 {
	if dst+1 > l.nregs {
		l.nregs = dst + 1
	}
	return l.operand(dst)
}

// constIdx interns a constant. Pools are tiny, so a linear scan beats a
// map here.
func (l *lowerer) constIdx(v wm.Value) uint16 {
	for i, c := range l.consts {
		if c == v {
			return l.operand(i)
		}
	}
	l.consts = append(l.consts, v)
	return l.operand(len(l.consts) - 1)
}

func (l *lowerer) refIdx(r VarRef) uint16 {
	for i, x := range l.refs {
		if x == r {
			return l.operand(i)
		}
	}
	l.refs = append(l.refs, r)
	return l.operand(len(l.refs) - 1)
}

// lower compiles e so its value lands in register dst. Registers at
// indexes >= dst are free scratch space (stack discipline), so sibling
// subexpressions never clobber each other.
func (l *lowerer) lower(e *Expr, dst int) bool {
	d := l.reg(dst)
	switch e.Kind {
	case EConst:
		l.emit(opConst, d, l.constIdx(e.Val), 0)
	case ERef:
		l.emit(opRef, d, l.refIdx(e.Ref), 0)
	case ELocal:
		l.emit(opLocal, d, l.operand(e.Local), 0)
	case EMetaRef:
		l.emit(opMetaRef, d, l.operand(e.Pat), l.refIdx(e.MetaVar))
	case EMetaTag:
		l.emit(opMetaTag, d, l.operand(e.Pat), 0)
	case EMetaRule:
		l.emit(opMetaRule, d, l.operand(e.Pat), 0)
	case EMetaPrec:
		l.emit(opMetaPrec, d, l.operand(e.Pat), l.operand(e.Pat2))
	case ECall:
		if !l.lowerCall(e, dst) {
			return false
		}
	default:
		return false
	}
	return !l.failed
}

func (l *lowerer) lowerCall(e *Expr, dst int) bool {
	d := l.reg(dst)
	switch e.Op {
	case BAnd, BOr:
		// Short-circuit: each operand evaluates into dst; the first falsy
		// (and) / truthy (or) operand jumps to the early result.
		early := wm.Bool(e.Op == BOr)
		late := wm.Bool(e.Op == BAnd)
		jop := opJumpFalsy
		if e.Op == BOr {
			jop = opJumpTruthy
		}
		var outs []int
		for _, a := range e.Args {
			if !l.lower(a, dst) {
				return false
			}
			outs = append(outs, l.emit(jop, d, 0, 0))
		}
		l.emit(opConst, d, l.constIdx(late), 0)
		end := l.emit(opJump, 0, 0, 0)
		for _, j := range outs {
			l.patch(j)
		}
		l.emit(opConst, d, l.constIdx(early), 0)
		l.patch(end)
	case BIf:
		if !l.lower(e.Args[0], dst) {
			return false
		}
		toElse := l.emit(opJumpFalsy, d, 0, 0)
		if !l.lower(e.Args[1], dst) {
			return false
		}
		end := l.emit(opJump, 0, 0, 0)
		l.patch(toElse)
		if !l.lower(e.Args[2], dst) {
			return false
		}
		l.patch(end)
	case BCrlf:
		l.emit(opConst, d, l.constIdx(wm.Str("\n")), 0)
	case BTabto:
		l.emit(opConst, d, l.constIdx(wm.Str("\t")), 0)
	case BNot:
		if !l.lower(e.Args[0], dst) {
			return false
		}
		l.emit(opNot, d, d, 0)
	case BHash:
		if !l.lower(e.Args[0], dst) {
			return false
		}
		l.emit(opHash, d, d, 0)
	case BAbs:
		if !l.lower(e.Args[0], dst) {
			return false
		}
		l.emit(opAbs, d, d, 0)
	case BEq, BNe, BLt, BLe, BGt, BGe:
		if !l.lower(e.Args[0], dst) || !l.lower(e.Args[1], dst+1) {
			return false
		}
		l.emit(opCmp, d, d, uint16(cmpPred(e.Op)))
	case BAdd, BSub, BMul, BDiv, BMod, BMin, BMax, BSymcat:
		for i, a := range e.Args {
			if !l.lower(a, dst+i) {
				return false
			}
		}
		l.emit(arithOp(e.Op), d, d, l.operand(len(e.Args)))
	default:
		return false
	}
	return !l.failed
}

func cmpPred(op Builtin) PredOp {
	switch op {
	case BEq:
		return OpNumEq
	case BNe:
		return OpNe
	case BLt:
		return OpLt
	case BLe:
		return OpLe
	case BGt:
		return OpGt
	default:
		return OpGe
	}
}

func arithOp(op Builtin) vmOp {
	switch op {
	case BAdd:
		return opAdd
	case BSub:
		return opSub
	case BMul:
		return opMul
	case BDiv:
		return opDiv
	case BMod:
		return opMod
	case BMin:
		return opMin
	case BMax:
		return opMax
	default:
		return opSymcat
	}
}
