package compile

import (
	"fmt"
	"strings"

	"parulel/internal/wm"
)

// ExprKind discriminates compiled expression nodes.
type ExprKind uint8

// Expression node kinds.
const (
	EConst    ExprKind = iota
	ERef               // rule variable: VarRef into the instantiation
	ELocal             // RHS-local from (bind …)
	ECall              // builtin application
	EMetaRef           // meta-rule: object-rule variable of a matched instantiation
	EMetaTag           // meta-rule: (tag <i>) — recency of instantiation i
	EMetaRule          // meta-rule: (rulename <i>)
	EMetaPrec          // meta-rule: (precedes <i> <j>) — deterministic total order
)

// Builtin enumerates expression builtins.
type Builtin uint8

// Builtins. Comparisons reuse PredOp semantics; arithmetic is integer when
// all operands are ints, float otherwise (like OPS5's compute).
const (
	BAdd Builtin = iota
	BSub
	BMul
	BDiv
	BMod
	BEq
	BNe
	BLt
	BLe
	BGt
	BGe
	BAnd
	BOr
	BNot
	BMin
	BMax
	BAbs
	BCrlf   // newline marker for (write …)
	BTabto  // horizontal tab marker for (write …)
	BHash   // deterministic non-negative integer hash of any value
	BSymcat // concatenate argument texts into a symbol
	BIf     // (if cond then else) — lazy conditional
)

var builtinNames = map[string]Builtin{
	"+": BAdd, "-": BSub, "*": BMul, "div": BDiv, "//": BDiv, "mod": BMod,
	"=": BEq, "<>": BNe, "<": BLt, "<=": BLe, ">": BGt, ">=": BGe,
	"and": BAnd, "or": BOr, "not": BNot,
	"min": BMin, "max": BMax, "abs": BAbs,
	"crlf": BCrlf, "tabto": BTabto,
	"hash": BHash, "symcat": BSymcat, "if": BIf,
}

// Expr is a compiled expression tree node.
type Expr struct {
	Kind  ExprKind
	Val   wm.Value // EConst
	Ref   VarRef   // ERef
	Local int      // ELocal
	Op    Builtin  // ECall
	Args  []*Expr  // ECall
	// Meta fields: Pat indexes the meta-rule's instantiation patterns;
	// MetaVar is the object-rule variable reference within instantiation
	// Pat (EMetaRef). EMetaPrec uses Pat and Pat2.
	Pat     int
	Pat2    int
	MetaVar VarRef

	// code is the lowered bytecode for this expression when it is a root
	// (a filter, action expression or meta test), attached once by
	// lowerProgram at the end of Compile. nil means "not lowered":
	// EvalMode.Eval then falls back to the tree walker.
	code *code
}

// Env supplies variable values during expression evaluation. Object-rule
// contexts implement Ref and Local; meta-rule contexts implement the Meta*
// methods. Implementations may panic for the methods that cannot occur in
// their context (the compiler guarantees they are not reached).
type Env interface {
	// Ref returns the value bound by a positive CE's field.
	Ref(VarRef) wm.Value
	// Local returns the value of a (bind …) slot.
	Local(int) wm.Value
	// MetaVal returns the value of an object-rule variable of the
	// instantiation matched by meta pattern pat.
	MetaVal(pat int, ref VarRef) wm.Value
	// MetaTag returns the recency tag of the instantiation matched by
	// meta pattern pat (the maximum WME time tag in its vector).
	MetaTag(pat int) int64
	// MetaRuleName returns the object rule name of instantiation pat.
	MetaRuleName(pat int) string
	// MetaPrecedes reports whether instantiation pat precedes pat2 in the
	// deterministic total instantiation order.
	MetaPrecedes(pat, pat2 int) bool
}

// EvalError is an expression runtime error (type mismatch, division by
// zero). It carries the failing operator for diagnosis.
type EvalError struct {
	Op  string
	Msg string
}

func (e *EvalError) Error() string { return fmt.Sprintf("eval %s: %s", e.Op, e.Msg) }

// Eval evaluates a compiled expression.
func Eval(e *Expr, env Env) (wm.Value, error) {
	switch e.Kind {
	case EConst:
		return e.Val, nil
	case ERef:
		return env.Ref(e.Ref), nil
	case ELocal:
		return env.Local(e.Local), nil
	case EMetaRef:
		return env.MetaVal(e.Pat, e.MetaVar), nil
	case EMetaTag:
		return wm.Int(env.MetaTag(e.Pat)), nil
	case EMetaRule:
		return wm.Sym(env.MetaRuleName(e.Pat)), nil
	case EMetaPrec:
		return wm.Bool(env.MetaPrecedes(e.Pat, e.Pat2)), nil
	case ECall:
		return evalCall(e, env)
	default:
		return wm.Value{}, &EvalError{Op: "?", Msg: fmt.Sprintf("bad expr kind %d", e.Kind)}
	}
}

func evalCall(e *Expr, env Env) (wm.Value, error) {
	// Short-circuit boolean forms evaluate lazily.
	switch e.Op {
	case BAnd:
		for _, a := range e.Args {
			v, err := Eval(a, env)
			if err != nil {
				return wm.Value{}, err
			}
			if !v.Truthy() {
				return wm.Bool(false), nil
			}
		}
		return wm.Bool(true), nil
	case BOr:
		for _, a := range e.Args {
			v, err := Eval(a, env)
			if err != nil {
				return wm.Value{}, err
			}
			if v.Truthy() {
				return wm.Bool(true), nil
			}
		}
		return wm.Bool(false), nil
	case BCrlf:
		return wm.Str("\n"), nil
	case BTabto:
		return wm.Str("\t"), nil
	case BIf:
		cond, err := Eval(e.Args[0], env)
		if err != nil {
			return wm.Value{}, err
		}
		if cond.Truthy() {
			return Eval(e.Args[1], env)
		}
		return Eval(e.Args[2], env)
	}

	args := make([]wm.Value, len(e.Args))
	for i, a := range e.Args {
		v, err := Eval(a, env)
		if err != nil {
			return wm.Value{}, err
		}
		args[i] = v
	}

	switch e.Op {
	case BNot:
		return wm.Bool(!args[0].Truthy()), nil
	case BHash:
		return wm.Int(hashValue(args[0])), nil
	case BSymcat:
		var b strings.Builder
		for _, a := range args {
			if a.Kind == wm.KindSym || a.Kind == wm.KindStr {
				b.WriteString(a.S)
			} else {
				b.WriteString(a.String())
			}
		}
		if b.Len() == 0 {
			return wm.Value{}, &EvalError{Op: "symcat", Msg: "empty result"}
		}
		return wm.Sym(b.String()), nil
	case BEq:
		return wm.Bool(OpNumEq.Apply(args[0], args[1])), nil
	case BNe:
		return wm.Bool(OpNe.Apply(args[0], args[1])), nil
	case BLt:
		return wm.Bool(OpLt.Apply(args[0], args[1])), nil
	case BLe:
		return wm.Bool(OpLe.Apply(args[0], args[1])), nil
	case BGt:
		return wm.Bool(OpGt.Apply(args[0], args[1])), nil
	case BGe:
		return wm.Bool(OpGe.Apply(args[0], args[1])), nil
	case BAdd, BSub, BMul, BDiv, BMod, BMin, BMax:
		return evalArith(e.Op, args)
	case BAbs:
		v := args[0]
		switch v.Kind {
		case wm.KindInt:
			if v.I < 0 {
				return wm.Int(-v.I), nil
			}
			return v, nil
		case wm.KindFloat:
			if v.F < 0 {
				return wm.Float(-v.F), nil
			}
			return v, nil
		default:
			return wm.Value{}, &EvalError{Op: "abs", Msg: fmt.Sprintf("non-numeric operand %s", v)}
		}
	default:
		return wm.Value{}, &EvalError{Op: fmt.Sprint(e.Op), Msg: "unknown builtin"}
	}
}

// hashValue maps any value to a deterministic non-negative int64 (FNV-1a
// over the kind and payload). Copy-and-constrain partitions rule variants
// with `(= (mod (hash <v>) k) i)`.
func hashValue(v wm.Value) int64 {
	const (
		offset = uint64(14695981039346656037)
		prime  = uint64(1099511628211)
	)
	h := offset
	mix := func(b byte) { h = (h ^ uint64(b)) * prime }
	mix(byte(v.Kind))
	switch v.Kind {
	case wm.KindInt:
		u := uint64(v.I)
		for i := 0; i < 8; i++ {
			mix(byte(u >> (8 * i)))
		}
	case wm.KindFloat:
		// Hash the decimal rendering so 2.0 and the float bit-pattern
		// quirks don't matter for partitioning.
		for _, b := range []byte(v.String()) {
			mix(b)
		}
	case wm.KindSym, wm.KindStr:
		for _, b := range []byte(v.S) {
			mix(b)
		}
	}
	return int64(h >> 1) // clear the sign bit
}

func evalArith(op Builtin, args []wm.Value) (wm.Value, error) {
	name := map[Builtin]string{BAdd: "+", BSub: "-", BMul: "*", BDiv: "div", BMod: "mod", BMin: "min", BMax: "max"}[op]
	allInt := true
	for _, a := range args {
		if !a.IsNumeric() {
			return wm.Value{}, &EvalError{Op: name, Msg: fmt.Sprintf("non-numeric operand %s", a)}
		}
		if a.Kind != wm.KindInt {
			allInt = false
		}
	}
	if len(args) == 0 {
		return wm.Value{}, &EvalError{Op: name, Msg: "no operands"}
	}
	// Unary minus.
	if op == BSub && len(args) == 1 {
		if allInt {
			return wm.Int(-args[0].I), nil
		}
		return wm.Float(-args[0].AsFloat()), nil
	}
	if allInt {
		acc := args[0].I
		for _, a := range args[1:] {
			switch op {
			case BAdd:
				acc += a.I
			case BSub:
				acc -= a.I
			case BMul:
				acc *= a.I
			case BDiv:
				if a.I == 0 {
					return wm.Value{}, &EvalError{Op: name, Msg: "division by zero"}
				}
				acc /= a.I
			case BMod:
				if a.I == 0 {
					return wm.Value{}, &EvalError{Op: name, Msg: "division by zero"}
				}
				acc %= a.I
			case BMin:
				if a.I < acc {
					acc = a.I
				}
			case BMax:
				if a.I > acc {
					acc = a.I
				}
			}
		}
		return wm.Int(acc), nil
	}
	acc := args[0].AsFloat()
	for _, a := range args[1:] {
		f := a.AsFloat()
		switch op {
		case BAdd:
			acc += f
		case BSub:
			acc -= f
		case BMul:
			acc *= f
		case BDiv:
			if f == 0 {
				return wm.Value{}, &EvalError{Op: name, Msg: "division by zero"}
			}
			acc /= f
		case BMod:
			return wm.Value{}, &EvalError{Op: name, Msg: "mod requires integer operands"}
		case BMin:
			if f < acc {
				acc = f
			}
		case BMax:
			if f > acc {
				acc = f
			}
		}
	}
	return wm.Float(acc), nil
}
