package compile

import (
	"strings"
	"testing"

	"parulel/internal/wm"
)

// fakeEnv implements Env over fixed maps for expression unit tests.
type fakeEnv struct {
	refs   map[VarRef]wm.Value
	locals []wm.Value
}

func (f *fakeEnv) Ref(r VarRef) wm.Value        { return f.refs[r] }
func (f *fakeEnv) Local(i int) wm.Value         { return f.locals[i] }
func (f *fakeEnv) MetaVal(int, VarRef) wm.Value { panic("not meta") }
func (f *fakeEnv) MetaTag(int) int64            { panic("not meta") }
func (f *fakeEnv) MetaRuleName(int) string      { panic("not meta") }
func (f *fakeEnv) MetaPrecedes(int, int) bool   { panic("not meta") }

func c(v wm.Value) *Expr                   { return &Expr{Kind: EConst, Val: v} }
func call(op Builtin, args ...*Expr) *Expr { return &Expr{Kind: ECall, Op: op, Args: args} }

func evalOK(t *testing.T, e *Expr, env Env) wm.Value {
	t.Helper()
	v, err := Eval(e, env)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	return v
}

func TestEvalArithmetic(t *testing.T) {
	env := &fakeEnv{}
	cases := []struct {
		e    *Expr
		want wm.Value
	}{
		{call(BAdd, c(wm.Int(1)), c(wm.Int(2)), c(wm.Int(3))), wm.Int(6)},
		{call(BSub, c(wm.Int(10)), c(wm.Int(4))), wm.Int(6)},
		{call(BSub, c(wm.Int(5))), wm.Int(-5)},         // unary minus
		{call(BSub, c(wm.Float(2.5))), wm.Float(-2.5)}, // unary float
		{call(BMul, c(wm.Int(3)), c(wm.Int(4))), wm.Int(12)},
		{call(BDiv, c(wm.Int(7)), c(wm.Int(2))), wm.Int(3)},       // integer division
		{call(BDiv, c(wm.Float(7)), c(wm.Int(2))), wm.Float(3.5)}, // float contaminates
		{call(BMod, c(wm.Int(7)), c(wm.Int(3))), wm.Int(1)},
		{call(BAdd, c(wm.Int(1)), c(wm.Float(0.5))), wm.Float(1.5)},
		{call(BMin, c(wm.Int(3)), c(wm.Int(1)), c(wm.Int(2))), wm.Int(1)},
		{call(BMax, c(wm.Int(3)), c(wm.Int(9)), c(wm.Int(2))), wm.Int(9)},
		{call(BAbs, c(wm.Int(-4))), wm.Int(4)},
		{call(BAbs, c(wm.Float(-4.5))), wm.Float(4.5)},
	}
	for i, tc := range cases {
		if got := evalOK(t, tc.e, env); got != tc.want {
			t.Errorf("case %d: got %v, want %v", i, got, tc.want)
		}
	}
}

func TestEvalComparisonsAndBooleans(t *testing.T) {
	env := &fakeEnv{}
	tr, fa := wm.Bool(true), wm.Bool(false)
	cases := []struct {
		e    *Expr
		want wm.Value
	}{
		{call(BEq, c(wm.Int(3)), c(wm.Float(3))), tr},
		{call(BNe, c(wm.Sym("a")), c(wm.Sym("b"))), tr},
		{call(BLt, c(wm.Int(1)), c(wm.Int(2))), tr},
		{call(BGe, c(wm.Int(1)), c(wm.Int(2))), fa},
		{call(BAnd, c(tr), c(tr)), tr},
		{call(BAnd, c(tr), c(fa)), fa},
		{call(BOr, c(fa), c(tr)), tr},
		{call(BOr, c(fa), c(fa)), fa},
		{call(BNot, c(fa)), tr},
		{call(BNot, c(wm.Nil())), tr},
	}
	for i, tc := range cases {
		if got := evalOK(t, tc.e, env); got != tc.want {
			t.Errorf("case %d: got %v, want %v", i, got, tc.want)
		}
	}
}

func TestEvalShortCircuit(t *testing.T) {
	// (and false (div 1 0)) must not evaluate the division.
	env := &fakeEnv{}
	e := call(BAnd, c(wm.Bool(false)), call(BDiv, c(wm.Int(1)), c(wm.Int(0))))
	if got := evalOK(t, e, env); got != wm.Bool(false) {
		t.Errorf("and short-circuit: %v", got)
	}
	e = call(BOr, c(wm.Bool(true)), call(BDiv, c(wm.Int(1)), c(wm.Int(0))))
	if got := evalOK(t, e, env); got != wm.Bool(true) {
		t.Errorf("or short-circuit: %v", got)
	}
}

func TestEvalErrors(t *testing.T) {
	env := &fakeEnv{}
	cases := []struct {
		e      *Expr
		substr string
	}{
		{call(BDiv, c(wm.Int(1)), c(wm.Int(0))), "division by zero"},
		{call(BMod, c(wm.Int(1)), c(wm.Int(0))), "division by zero"},
		{call(BAdd, c(wm.Sym("a")), c(wm.Int(1))), "non-numeric"},
		{call(BAbs, c(wm.Sym("a"))), "non-numeric"},
		{call(BMod, c(wm.Float(1.5)), c(wm.Float(2.5))), "integer operands"},
	}
	for i, tc := range cases {
		_, err := Eval(tc.e, env)
		if err == nil {
			t.Errorf("case %d: expected error %q", i, tc.substr)
			continue
		}
		if !strings.Contains(err.Error(), tc.substr) {
			t.Errorf("case %d: error = %q, want substring %q", i, err, tc.substr)
		}
	}
}

func TestEvalRefsAndLocals(t *testing.T) {
	env := &fakeEnv{
		refs:   map[VarRef]wm.Value{{CE: 0, Field: 1}: wm.Int(42)},
		locals: []wm.Value{wm.Sym("loc")},
	}
	if got := evalOK(t, &Expr{Kind: ERef, Ref: VarRef{CE: 0, Field: 1}}, env); got != wm.Int(42) {
		t.Errorf("ERef: %v", got)
	}
	if got := evalOK(t, &Expr{Kind: ELocal, Local: 0}, env); got != wm.Sym("loc") {
		t.Errorf("ELocal: %v", got)
	}
}

func TestEvalWriteMarkers(t *testing.T) {
	env := &fakeEnv{}
	if got := evalOK(t, call(BCrlf), env); got != wm.Str("\n") {
		t.Errorf("crlf: %q", got)
	}
	if got := evalOK(t, call(BTabto), env); got != wm.Str("\t") {
		t.Errorf("tabto: %q", got)
	}
}

func TestEvalSymcat(t *testing.T) {
	env := &fakeEnv{}
	got := evalOK(t, call(BSymcat, c(wm.Sym("pool-")), c(wm.Int(7)), c(wm.Str("-x"))), env)
	if got != wm.Sym("pool-7-x") {
		t.Errorf("symcat = %v", got)
	}
	if _, err := Eval(call(BSymcat, c(wm.Str(""))), env); err == nil {
		t.Error("empty symcat should error")
	}
}

func TestHashValueProperties(t *testing.T) {
	vals := []wm.Value{
		wm.Nil(), wm.Int(0), wm.Int(-1), wm.Int(1 << 40),
		wm.Float(2.5), wm.Float(-2.5), wm.Sym("a"), wm.Sym("b"),
		wm.Str("a"), wm.Str(""),
	}
	for _, v := range vals {
		h1, h2 := hashValue(v), hashValue(v)
		if h1 != h2 {
			t.Errorf("hash not deterministic for %v", v)
		}
		if h1 < 0 {
			t.Errorf("hash negative for %v: %d", v, h1)
		}
	}
	// Kind must distinguish equal payloads.
	if hashValue(wm.Sym("a")) == hashValue(wm.Str("a")) {
		t.Error("sym and str with same text should hash differently")
	}
}

func TestEvalIf(t *testing.T) {
	env := &fakeEnv{}
	if got := evalOK(t, call(BIf, c(wm.Bool(true)), c(wm.Int(1)), c(wm.Int(2))), env); got != wm.Int(1) {
		t.Errorf("if true = %v", got)
	}
	if got := evalOK(t, call(BIf, c(wm.Bool(false)), c(wm.Int(1)), c(wm.Int(2))), env); got != wm.Int(2) {
		t.Errorf("if false = %v", got)
	}
	// Lazy: the untaken branch is never evaluated.
	boom := call(BDiv, c(wm.Int(1)), c(wm.Int(0)))
	if got := evalOK(t, call(BIf, c(wm.Bool(true)), c(wm.Sym("ok")), boom), env); got != wm.Sym("ok") {
		t.Errorf("if lazy = %v", got)
	}
	if _, err := Eval(call(BIf, boom, c(wm.Int(1)), c(wm.Int(2))), env); err == nil {
		t.Error("error in condition must propagate")
	}
}
