package compile

import (
	"fmt"
	"strings"
	"sync"

	"parulel/internal/wm"
)

// framePool recycles register frames across VM runs; match and fire
// workers evaluate expressions concurrently, so the pool is the only
// shared state and each run owns its frame exclusively. Builtins never
// re-enter the VM, so one frame per run suffices.
var framePool = sync.Pool{
	New: func() any {
		s := make([]wm.Value, 0, 16)
		return &s
	},
}

// run executes the code against env with a pooled register frame. The
// steady state allocates nothing: registers are written before they are
// read (by construction of the lowering), so frames are reused without
// clearing.
func (c *code) run(env Env) (wm.Value, error) {
	fp := framePool.Get().(*[]wm.Value)
	r := *fp
	if cap(r) < c.nregs {
		r = make([]wm.Value, c.nregs)
	} else {
		r = r[:c.nregs]
	}
	v, err := c.exec(r, env)
	*fp = r[:0]
	framePool.Put(fp)
	return v, err
}

func (c *code) exec(r []wm.Value, env Env) (wm.Value, error) {
	ins := c.ins
	pc := 0
	for pc < len(ins) {
		in := &ins[pc]
		pc++
		switch in.op {
		case opConst:
			r[in.a] = c.consts[in.b]
		case opRef:
			r[in.a] = env.Ref(c.refs[in.b])
		case opLocal:
			r[in.a] = env.Local(int(in.b))
		case opMetaRef:
			r[in.a] = env.MetaVal(int(in.b), c.refs[in.c])
		case opMetaTag:
			r[in.a] = wm.Int(env.MetaTag(int(in.b)))
		case opMetaRule:
			r[in.a] = wm.Sym(env.MetaRuleName(int(in.b)))
		case opMetaPrec:
			r[in.a] = wm.Bool(env.MetaPrecedes(int(in.b), int(in.c)))
		case opJump:
			pc = int(in.b)
		case opJumpFalsy:
			if !r[in.a].Truthy() {
				pc = int(in.b)
			}
		case opJumpTruthy:
			if r[in.a].Truthy() {
				pc = int(in.b)
			}
		case opNot:
			r[in.a] = wm.Bool(!r[in.b].Truthy())
		case opHash:
			r[in.a] = wm.Int(hashValue(r[in.b]))
		case opAbs:
			v := r[in.b]
			switch v.Kind {
			case wm.KindInt:
				if v.I < 0 {
					v = wm.Int(-v.I)
				}
			case wm.KindFloat:
				if v.F < 0 {
					v = wm.Float(-v.F)
				}
			default:
				return wm.Value{}, &EvalError{Op: "abs", Msg: fmt.Sprintf("non-numeric operand %s", v)}
			}
			r[in.a] = v
		case opCmp:
			r[in.a] = wm.Bool(PredOp(in.c).Apply(r[in.b], r[in.b+1]))
		case opAdd, opSub, opMul, opDiv, opMod, opMin, opMax:
			v, err := vmArith(in.op, r[in.b:int(in.b)+int(in.c)])
			if err != nil {
				return wm.Value{}, err
			}
			r[in.a] = v
		case opSymcat:
			var b strings.Builder
			for _, a := range r[in.b : int(in.b)+int(in.c)] {
				if a.Kind == wm.KindSym || a.Kind == wm.KindStr {
					b.WriteString(a.S)
				} else {
					b.WriteString(a.String())
				}
			}
			if b.Len() == 0 {
				return wm.Value{}, &EvalError{Op: "symcat", Msg: "empty result"}
			}
			r[in.a] = wm.Sym(b.String())
		case opRet:
			return r[in.a], nil
		default:
			return wm.Value{}, &EvalError{Op: "?", Msg: fmt.Sprintf("bad opcode %d", in.op)}
		}
	}
	return wm.Value{}, &EvalError{Op: "?", Msg: "bytecode ran off the end"}
}

// vmArithName names an arithmetic opcode for error messages. Evaluated
// only on error paths — unlike the interpreter, the hot path never
// materializes the name (or the map holding it).
func vmArithName(op vmOp) string {
	switch op {
	case opAdd:
		return "+"
	case opSub:
		return "-"
	case opMul:
		return "*"
	case opDiv:
		return "div"
	case opMod:
		return "mod"
	case opMin:
		return "min"
	case opMax:
		return "max"
	}
	return "?"
}

// vmArith folds an arithmetic builtin over a register window. It must
// agree with evalArith byte for byte: the int/float decision scans ALL
// operands first (so (div 7 2 2.0) is float division throughout, 1.75,
// not int-then-float 1.5), the unary-minus special case, the error
// messages and their precedence order are identical. The fuzz target
// FuzzBytecodeEval holds the two implementations to this contract.
func vmArith(op vmOp, args []wm.Value) (wm.Value, error) {
	allInt := true
	for i := range args {
		a := &args[i]
		if !a.IsNumeric() {
			return wm.Value{}, &EvalError{Op: vmArithName(op), Msg: fmt.Sprintf("non-numeric operand %s", *a)}
		}
		if a.Kind != wm.KindInt {
			allInt = false
		}
	}
	if len(args) == 0 {
		return wm.Value{}, &EvalError{Op: vmArithName(op), Msg: "no operands"}
	}
	if op == opSub && len(args) == 1 {
		if allInt {
			return wm.Int(-args[0].I), nil
		}
		return wm.Float(-args[0].AsFloat()), nil
	}
	if allInt {
		acc := args[0].I
		for _, a := range args[1:] {
			switch op {
			case opAdd:
				acc += a.I
			case opSub:
				acc -= a.I
			case opMul:
				acc *= a.I
			case opDiv:
				if a.I == 0 {
					return wm.Value{}, &EvalError{Op: vmArithName(op), Msg: "division by zero"}
				}
				acc /= a.I
			case opMod:
				if a.I == 0 {
					return wm.Value{}, &EvalError{Op: vmArithName(op), Msg: "division by zero"}
				}
				acc %= a.I
			case opMin:
				if a.I < acc {
					acc = a.I
				}
			case opMax:
				if a.I > acc {
					acc = a.I
				}
			}
		}
		return wm.Int(acc), nil
	}
	acc := args[0].AsFloat()
	for _, a := range args[1:] {
		f := a.AsFloat()
		switch op {
		case opAdd:
			acc += f
		case opSub:
			acc -= f
		case opMul:
			acc *= f
		case opDiv:
			if f == 0 {
				return wm.Value{}, &EvalError{Op: vmArithName(op), Msg: "division by zero"}
			}
			acc /= f
		case opMod:
			return wm.Value{}, &EvalError{Op: vmArithName(op), Msg: "mod requires integer operands"}
		case opMin:
			if f < acc {
				acc = f
			}
		case opMax:
			if f > acc {
				acc = f
			}
		}
	}
	return wm.Float(acc), nil
}
