// Package compile performs semantic analysis of parsed PARULEL programs
// and produces the compiled representation shared by the match networks
// (RETE, TREAT) and the execution engines (the PARULEL parallel-firing
// engine and the OPS5 baseline).
//
// Compilation resolves attribute names to field positions, rule variables
// to (condition-element, field) references, splits pattern tests into
// alpha-level constant tests, intra-element tests and beta-level join
// tests, compiles expressions to a small evaluable form, and checks the
// static rules of the language (boundness, designator validity, meta-rule
// references).
package compile

import (
	"fmt"

	"parulel/internal/lang"
	"parulel/internal/wm"
)

// Program is a compiled PARULEL program, immutable after Compile and safe
// to share across matcher partitions and worker goroutines.
type Program struct {
	Schema    *wm.Schema
	Rules     []*Rule
	MetaRules []*MetaRule
	Facts     []InitialFact
	// Temporal is the compiled temporal specification (nil when the
	// program declares no ttl or window forms).
	Temporal *Temporal
	byName   map[string]*Rule
}

// RuleByName returns the compiled object rule with the given name.
func (p *Program) RuleByName(name string) (*Rule, bool) {
	r, ok := p.byName[name]
	return r, ok
}

// InitialFact is one WME to insert before the first cycle.
type InitialFact struct {
	Tmpl   *wm.Template
	Fields []wm.Value
}

// Temporal is the compiled temporal specification: per-template TTL
// defaults and sliding-window aggregate declarations, in source order.
// The temporal clock (internal/temporal) interprets it at run time; the
// matchers never see it — window aggregates are ordinary WMEs of the
// auto-declared aggregate templates, matched by ordinary join tests.
type Temporal struct {
	TTLs    []TTLSpec
	Windows []WindowSpec
	agg     map[string]bool
}

// IsAggregate reports whether the named template is a window aggregate
// (maintained exclusively by the temporal clock).
func (t *Temporal) IsAggregate(name string) bool {
	return t != nil && t.agg[name]
}

// TTLSpec is a compiled `(ttl …)` declaration: facts of Tmpl expire
// Ticks logical ticks after absorption.
type TTLSpec struct {
	Tmpl  *wm.Template
	Ticks int64
}

// WindowSpec is a compiled `(window …)` declaration. Agg is the
// auto-declared aggregate template `(literalize name key count sum min
// max)`: one WME per distinct key value with facts in the window, with
// sum/min/max nil unless ^val named a source attribute. Exactly one of
// Ticks (facts born within the last Ticks logical ticks) and Last (the
// last Last facts per key) is positive.
type WindowSpec struct {
	Name     string
	Agg      *wm.Template
	Source   *wm.Template
	KeyField int
	ValField int // -1 when the window only counts
	Ticks    int64
	Last     int64
}

// Rule is a compiled object-level production.
type Rule struct {
	Name  string
	Index int // declaration order; part of the deterministic instantiation order
	// CEs holds the pattern condition elements (positive and negated) in
	// source order; `(test …)` elements are compiled into Filters on the
	// latest CE whose bindings they need.
	CEs []*CondElem
	// NumPositive is the number of positive CEs, which is the length of
	// every instantiation's WME vector for this rule.
	NumPositive int
	// Bindings maps each rule variable to its defining occurrence in a
	// positive CE.
	Bindings map[string]VarRef
	// Actions is the compiled RHS.
	Actions []*Action
	// NumLocals is the number of `(bind …)` slots the RHS needs.
	NumLocals int
	// Specificity counts LHS tests, for OPS5 conflict resolution.
	Specificity int
	// Source retains the AST for tools (copy-and-constrain re-printing).
	Source *lang.Rule
}

// VarRef locates a variable's value within an instantiation: field Field
// of the WME matched by positive condition element CE.
type VarRef struct {
	CE    int // index among *positive* CEs
	Field int
}

// PredOp is a compiled comparison operator.
type PredOp uint8

// Comparison operators. OpEq/OpNe on pattern constants written bare
// (`^a 5`) use strict value equality so they can be hash-indexed; the
// explicit forms and all relational operators compare numerically across
// int/float and fall back to the deterministic total order otherwise.
const (
	OpEq    PredOp = iota // strict equality (hash-indexable)
	OpNumEq               // numeric-tolerant equality: (= …)
	OpNe                  // negation of OpNumEq: (<> …)
	OpLt
	OpLe
	OpGt
	OpGe
)

func (op PredOp) String() string {
	switch op {
	case OpEq:
		return "=="
	case OpNumEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("PredOp(%d)", uint8(op))
	}
}

// Apply evaluates the comparison on two values.
func (op PredOp) Apply(a, b wm.Value) bool {
	switch op {
	case OpEq:
		return a == b
	case OpNumEq:
		return a.NumEqual(b)
	case OpNe:
		return !a.NumEqual(b)
	}
	c := predCompare(a, b)
	switch op {
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	default:
		return false
	}
}

// predCompare orders two values for relational operators: numerically when
// both are numeric (ints and floats compare equal when numerically equal),
// otherwise by the deterministic total order.
func predCompare(a, b wm.Value) int {
	if a.IsNumeric() && b.IsNumeric() {
		x, y := a.AsFloat(), b.AsFloat()
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		default:
			return 0
		}
	}
	return a.Compare(b)
}

// ConstTest is an alpha-level test: a field compared with a constant.
type ConstTest struct {
	Field int
	Op    PredOp
	Val   wm.Value
}

// DisjTest is an alpha-level disjunction test (`<< a b c >>`): the field
// must strictly equal one of the values.
type DisjTest struct {
	Field int
	Vals  []wm.Value
}

// Matches reports whether v equals one of the disjunction's values.
func (t DisjTest) Matches(v wm.Value) bool {
	for _, x := range t.Vals {
		if v == x {
			return true
		}
	}
	return false
}

// IntraTest compares two fields of the same WME (the same variable bound
// twice within one pattern, or a predicate against an earlier field of the
// same element).
type IntraTest struct {
	Field      int
	Op         PredOp
	OtherField int
}

// JoinTest compares a field of this CE's candidate WME with a field of a
// WME already matched by an earlier positive CE.
type JoinTest struct {
	Field      int
	Op         PredOp
	OtherCE    int // index among positive CEs, < this CE's PosIndex
	OtherField int
}

// CondElem is a compiled pattern condition element.
type CondElem struct {
	Tmpl    *wm.Template
	Negated bool
	// PosIndex is the index among positive CEs, or -1 for negated CEs.
	PosIndex int
	// BetaLevel is the number of positive CEs joined *before* this element;
	// for a positive CE this equals PosIndex.
	BetaLevel  int
	ConstTests []ConstTest
	DisjTests  []DisjTest
	IntraTests []IntraTest
	JoinTests  []JoinTest
	// Filters are compiled `(test …)` expressions evaluated once this CE
	// (and everything before it) has matched. Only attached to positive
	// CEs.
	Filters []*Expr
	// EqConsts lists the subset of ConstTests with OpEq, which alpha
	// networks may hash on. It aliases entries of ConstTests.
	EqConsts []ConstTest
}

// MatchesAlpha reports whether a WME passes this CE's template, constant
// and intra-element tests (everything checkable without a join context).
func (ce *CondElem) MatchesAlpha(w *wm.WME) bool {
	if w.Tmpl != ce.Tmpl {
		return false
	}
	for _, t := range ce.ConstTests {
		if !t.Op.Apply(w.Fields[t.Field], t.Val) {
			return false
		}
	}
	for _, t := range ce.DisjTests {
		if !t.Matches(w.Fields[t.Field]) {
			return false
		}
	}
	for _, t := range ce.IntraTests {
		if !t.Op.Apply(w.Fields[t.Field], w.Fields[t.OtherField]) {
			return false
		}
	}
	return true
}

// ActionKind discriminates compiled RHS actions.
type ActionKind uint8

// Action kinds.
const (
	ActMake ActionKind = iota
	ActModify
	ActRemove
	ActBind
	ActWrite
	ActHalt
)

// SlotAssign assigns an expression result to a field.
type SlotAssign struct {
	Field int
	Expr  *Expr
}

// Action is one compiled RHS action.
type Action struct {
	Kind    ActionKind
	Tmpl    *wm.Template // ActMake
	Slots   []SlotAssign // ActMake, ActModify
	Target  int          // ActModify: positive CE index
	Targets []int        // ActRemove: positive CE indexes
	Local   int          // ActBind: local slot
	Exprs   []*Expr      // ActWrite arguments
}
