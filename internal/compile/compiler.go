package compile

import (
	"fmt"

	"parulel/internal/lang"
	"parulel/internal/wm"
)

// CompileError is a semantic error with source position.
type CompileError struct {
	Pos lang.Pos
	Msg string
}

func (e *CompileError) Error() string { return fmt.Sprintf("%s: compile: %s", e.Pos, e.Msg) }

func cerrf(pos lang.Pos, format string, args ...any) *CompileError {
	return &CompileError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Compile performs semantic analysis of a parsed program.
func Compile(src *lang.Program) (*Program, error) {
	p := &Program{
		Schema: wm.NewSchema(),
		byName: make(map[string]*Rule),
	}
	for _, td := range src.Templates {
		if _, err := p.Schema.Declare(td.Name, td.Attrs...); err != nil {
			return nil, cerrf(td.Pos, "%v", err)
		}
	}
	if err := compileTemporal(p, src); err != nil {
		return nil, err
	}
	for _, fd := range src.Facts {
		for _, f := range fd.Facts {
			tmpl, ok := p.Schema.Lookup(f.Type)
			if !ok {
				return nil, cerrf(f.Pos, "wm fact of undeclared template %q", f.Type)
			}
			if p.Temporal.IsAggregate(f.Type) {
				return nil, cerrf(f.Pos, "wm fact of window aggregate template %q (maintained by the temporal clock)", f.Type)
			}
			fields := make([]wm.Value, tmpl.Arity())
			for _, s := range f.Slots {
				i, ok := tmpl.AttrIndex(s.Attr)
				if !ok {
					return nil, cerrf(f.Pos, "template %q has no attribute %q", f.Type, s.Attr)
				}
				fields[i] = s.Val
			}
			p.Facts = append(p.Facts, InitialFact{Tmpl: tmpl, Fields: fields})
		}
	}
	for _, rs := range src.Rules {
		if _, dup := p.byName[rs.Name]; dup {
			return nil, cerrf(rs.Pos, "rule %q redeclared", rs.Name)
		}
		r, err := compileRule(p, rs)
		if err != nil {
			return nil, err
		}
		r.Index = len(p.Rules)
		p.Rules = append(p.Rules, r)
		p.byName[r.Name] = r
	}
	metaNames := make(map[string]bool)
	for _, ms := range src.MetaRules {
		if metaNames[ms.Name] {
			return nil, cerrf(ms.Pos, "metarule %q redeclared", ms.Name)
		}
		metaNames[ms.Name] = true
		m, err := compileMetaRule(p, ms)
		if err != nil {
			return nil, err
		}
		m.Index = len(p.MetaRules)
		p.MetaRules = append(p.MetaRules, m)
	}
	lowerProgram(p)
	return p, nil
}

// compileTemporal validates the program's ttl and window declarations,
// auto-declares window aggregate templates, and attaches the compiled
// Temporal spec. Windows are processed first so TTL declarations naming
// an aggregate template are caught.
func compileTemporal(p *Program, src *lang.Program) error {
	if len(src.TTLs) == 0 && len(src.Windows) == 0 {
		return nil
	}
	t := &Temporal{agg: make(map[string]bool)}
	for _, wd := range src.Windows {
		srcTmpl, ok := p.Schema.Lookup(wd.Source)
		if !ok {
			return cerrf(wd.Pos, "window %q over undeclared template %q", wd.Name, wd.Source)
		}
		if t.agg[wd.Source] {
			return cerrf(wd.Pos, "window %q over window aggregate template %q", wd.Name, wd.Source)
		}
		agg, err := p.Schema.Declare(wd.Name, "key", "count", "sum", "min", "max")
		if err != nil {
			return cerrf(wd.Pos, "window %q: %v", wd.Name, err)
		}
		spec := WindowSpec{Name: wd.Name, Agg: agg, Source: srcTmpl, KeyField: -1, ValField: -1}
		for _, s := range wd.Slots {
			switch s.Attr {
			case "key", "val":
				if s.Val.Kind != wm.KindSym {
					return cerrf(wd.Pos, "window %q: ^%s expects a source attribute name", wd.Name, s.Attr)
				}
				f, ok := srcTmpl.AttrIndex(s.Val.S)
				if !ok {
					return cerrf(wd.Pos, "window %q: source template %q has no attribute %q", wd.Name, wd.Source, s.Val.S)
				}
				if s.Attr == "key" {
					spec.KeyField = f
				} else {
					spec.ValField = f
				}
			case "ticks", "last":
				if s.Val.Kind != wm.KindInt || s.Val.I < 1 {
					return cerrf(wd.Pos, "window %q: ^%s expects a positive integer", wd.Name, s.Attr)
				}
				if s.Attr == "ticks" {
					spec.Ticks = s.Val.I
				} else {
					spec.Last = s.Val.I
				}
			default:
				return cerrf(wd.Pos, "window %q: unknown option ^%s (want key, ticks, last or val)", wd.Name, s.Attr)
			}
		}
		if spec.KeyField < 0 {
			return cerrf(wd.Pos, "window %q: ^key is required", wd.Name)
		}
		if (spec.Ticks > 0) == (spec.Last > 0) {
			return cerrf(wd.Pos, "window %q: exactly one of ^ticks and ^last is required", wd.Name)
		}
		t.agg[wd.Name] = true
		t.Windows = append(t.Windows, spec)
	}
	seen := make(map[string]bool)
	for _, td := range src.TTLs {
		if t.agg[td.Tmpl] {
			return cerrf(td.Pos, "ttl on window aggregate template %q", td.Tmpl)
		}
		tmpl, ok := p.Schema.Lookup(td.Tmpl)
		if !ok {
			return cerrf(td.Pos, "ttl on undeclared template %q", td.Tmpl)
		}
		if seen[td.Tmpl] {
			return cerrf(td.Pos, "ttl on template %q redeclared", td.Tmpl)
		}
		if td.Ticks < 1 {
			return cerrf(td.Pos, "ttl %s: tick count must be positive, got %d", td.Tmpl, td.Ticks)
		}
		seen[td.Tmpl] = true
		t.TTLs = append(t.TTLs, TTLSpec{Tmpl: tmpl, Ticks: td.Ticks})
	}
	p.Temporal = t
	return nil
}

// ruleCtx carries the state of one rule compilation.
type ruleCtx struct {
	prog     *Program
	rule     *Rule
	bindings map[string]VarRef // rule variables (from positive CEs)
	// itemPos maps 1-based source LHS item index to positive CE index
	// (-1 when the item is negated or a test).
	itemPos []int
	// binders maps element variables to positive CE indexes.
	binders map[string]int
	locals  map[string]int // RHS (bind …) slots
}

func predOpOf(op string) PredOp {
	switch op {
	case "=":
		return OpNumEq
	case "<>":
		return OpNe
	case "<":
		return OpLt
	case "<=":
		return OpLe
	case ">":
		return OpGt
	case ">=":
		return OpGe
	default:
		panic("compile: parser admitted bad predicate op " + op)
	}
}

func compileRule(prog *Program, rs *lang.Rule) (*Rule, error) {
	r := &Rule{
		Name:     rs.Name,
		Bindings: make(map[string]VarRef),
		Source:   rs,
	}
	ctx := &ruleCtx{
		prog:     prog,
		rule:     r,
		bindings: r.Bindings,
		binders:  make(map[string]int),
		locals:   make(map[string]int),
	}

	// Deferred (test …) elements that could not be attached yet because no
	// positive CE had been compiled when they were seen.
	type pendingTest struct {
		expr *Expr
		pos  lang.Pos
	}
	var deferred []pendingTest

	for _, item := range rs.LHS {
		if item.Test != nil {
			e, level, err := ctx.compileLHSExpr(item.Test, item.Pos)
			if err != nil {
				return nil, err
			}
			ctx.itemPos = append(ctx.itemPos, -1)
			if r.NumPositive == 0 {
				deferred = append(deferred, pendingTest{expr: e, pos: item.Pos})
				continue
			}
			attachFilter(r, e, level)
			r.Specificity++
			continue
		}
		ce, err := ctx.compileCondElem(item)
		if err != nil {
			return nil, err
		}
		r.CEs = append(r.CEs, ce)
		if ce.Negated {
			ctx.itemPos = append(ctx.itemPos, -1)
		} else {
			ctx.itemPos = append(ctx.itemPos, ce.PosIndex)
			if item.Binder != "" {
				if _, dup := ctx.binders[item.Binder]; dup {
					return nil, cerrf(item.Pos, "rule %s: element variable <%s> bound twice", r.Name, item.Binder)
				}
				if _, clash := ctx.bindings[item.Binder]; clash {
					return nil, cerrf(item.Pos, "rule %s: <%s> used as both element and value variable", r.Name, item.Binder)
				}
				ctx.binders[item.Binder] = ce.PosIndex
			}
			// Attach tests that were waiting for the first positive CE.
			for _, pt := range deferred {
				attachFilter(r, pt.expr, 0)
				r.Specificity++
			}
			deferred = nil
		}
		r.Specificity += 1 + len(item.Pattern.Slots)
	}
	if r.NumPositive == 0 {
		return nil, cerrf(rs.Pos, "rule %s: at least one positive pattern element is required", r.Name)
	}

	for _, a := range rs.RHS {
		ca, err := ctx.compileAction(a)
		if err != nil {
			return nil, err
		}
		r.Actions = append(r.Actions, ca)
	}
	r.NumLocals = len(ctx.locals)
	return r, nil
}

// attachFilter attaches a compiled test expression at the given positive-CE
// level (it runs once that CE has joined).
func attachFilter(r *Rule, e *Expr, level int) {
	// Find the pattern CE with that positive index.
	for _, ce := range r.CEs {
		if ce.PosIndex == level {
			ce.Filters = append(ce.Filters, e)
			return
		}
	}
	panic(fmt.Sprintf("compile: no positive CE at level %d", level))
}

func (ctx *ruleCtx) compileCondElem(item *lang.CondElem) (*CondElem, error) {
	pat := item.Pattern
	tmpl, ok := ctx.prog.Schema.Lookup(pat.Type)
	if !ok {
		return nil, cerrf(pat.Pos, "rule %s: pattern of undeclared template %q", ctx.rule.Name, pat.Type)
	}
	ce := &CondElem{
		Tmpl:      tmpl,
		Negated:   item.Negated,
		PosIndex:  -1,
		BetaLevel: ctx.rule.NumPositive,
	}
	if !item.Negated {
		ce.PosIndex = ctx.rule.NumPositive
		ctx.rule.NumPositive++
	}
	// localVars: variables whose first (and only legal) occurrences are
	// inside this negated CE.
	localVars := make(map[string]int)
	for _, slot := range pat.Slots {
		field, ok := tmpl.AttrIndex(slot.Attr)
		if !ok {
			return nil, cerrf(slot.Pos, "rule %s: template %q has no attribute %q", ctx.rule.Name, pat.Type, slot.Attr)
		}
		if err := ctx.compileTerm(ce, slot, field, localVars); err != nil {
			return nil, err
		}
	}
	for _, t := range ce.ConstTests {
		if t.Op == OpEq {
			ce.EqConsts = append(ce.EqConsts, t)
		}
	}
	return ce, nil
}

func (ctx *ruleCtx) compileTerm(ce *CondElem, slot *lang.Slot, field int, localVars map[string]int) error {
	switch t := slot.Term.(type) {
	case lang.ConstTerm:
		ce.ConstTests = append(ce.ConstTests, ConstTest{Field: field, Op: OpEq, Val: t.Val})
		return nil
	case lang.DisjTerm:
		ce.DisjTests = append(ce.DisjTests, DisjTest{Field: field, Vals: t.Vals})
		return nil
	case lang.VarTerm:
		return ctx.compileVarOccurrence(ce, slot.Pos, t.Name, field, OpEq, localVars, true)
	case lang.PredTerm:
		op := predOpOf(t.Op)
		switch arg := t.Arg.(type) {
		case lang.ConstTerm:
			ce.ConstTests = append(ce.ConstTests, ConstTest{Field: field, Op: op, Val: arg.Val})
			return nil
		case lang.VarTerm:
			return ctx.compileVarOccurrence(ce, slot.Pos, arg.Name, field, op, localVars, false)
		default:
			return cerrf(slot.Pos, "rule %s: bad predicate argument", ctx.rule.Name)
		}
	default:
		return cerrf(slot.Pos, "rule %s: bad pattern term", ctx.rule.Name)
	}
}

// compileVarOccurrence handles a variable occurrence at the given field.
// canBind says whether this occurrence may become the variable's defining
// occurrence (bare `^a <x>` can; `^a (> <x>)` cannot).
func (ctx *ruleCtx) compileVarOccurrence(ce *CondElem, pos lang.Pos, name string, field int, op PredOp, localVars map[string]int, canBind bool) error {
	// Same element first: intra-element test.
	if other, ok := localVars[name]; ok {
		ce.IntraTests = append(ce.IntraTests, IntraTest{Field: field, Op: op, OtherField: other})
		return nil
	}
	if ref, ok := ctx.bindings[name]; ok {
		if !ce.Negated && ref.CE == ce.PosIndex {
			ce.IntraTests = append(ce.IntraTests, IntraTest{Field: field, Op: op, OtherField: ref.Field})
			return nil
		}
		ce.JoinTests = append(ce.JoinTests, JoinTest{Field: field, Op: op, OtherCE: ref.CE, OtherField: ref.Field})
		return nil
	}
	if _, isBinder := ctx.binders[name]; isBinder {
		return cerrf(pos, "rule %s: <%s> is an element variable and cannot match a field", ctx.rule.Name, name)
	}
	if !canBind {
		return cerrf(pos, "rule %s: predicate on unbound variable <%s>", ctx.rule.Name, name)
	}
	if ce.Negated {
		// First occurrence inside a negated element: the variable is
		// local to this element.
		localVars[name] = field
		return nil
	}
	ctx.bindings[name] = VarRef{CE: ce.PosIndex, Field: field}
	localVars[name] = field
	return nil
}

// compileLHSExpr compiles a `(test …)` expression. It returns the compiled
// expression and the binding level: the highest positive-CE index among the
// variables it references (0 if it references none).
func (ctx *ruleCtx) compileLHSExpr(e lang.Expr, pos lang.Pos) (*Expr, int, error) {
	level := 0
	var walk func(e lang.Expr) (*Expr, error)
	walk = func(e lang.Expr) (*Expr, error) {
		switch e := e.(type) {
		case *lang.ConstExpr:
			return &Expr{Kind: EConst, Val: e.Val}, nil
		case *lang.VarExpr:
			ref, ok := ctx.bindings[e.Name]
			if !ok {
				return nil, cerrf(e.Pos, "rule %s: test references unbound variable <%s>", ctx.rule.Name, e.Name)
			}
			if ref.CE > level {
				level = ref.CE
			}
			return &Expr{Kind: ERef, Ref: ref}, nil
		case *lang.CallExpr:
			op, ok := builtinNames[e.Op]
			if !ok {
				return nil, cerrf(e.Pos, "rule %s: unknown builtin %q", ctx.rule.Name, e.Op)
			}
			if err := checkArity(e, op); err != nil {
				return nil, err
			}
			out := &Expr{Kind: ECall, Op: op, Args: make([]*Expr, len(e.Args))}
			for i, a := range e.Args {
				ca, err := walk(a)
				if err != nil {
					return nil, err
				}
				out.Args[i] = ca
			}
			return out, nil
		default:
			return nil, cerrf(pos, "rule %s: bad expression", ctx.rule.Name)
		}
	}
	ce, err := walk(e)
	if err != nil {
		return nil, 0, err
	}
	return ce, level, nil
}

func checkArity(e *lang.CallExpr, op Builtin) error {
	n := len(e.Args)
	switch op {
	case BNot, BAbs, BHash:
		if n != 1 {
			return cerrf(e.Pos, "%s expects 1 argument, got %d", e.Op, n)
		}
	case BEq, BNe, BLt, BLe, BGt, BGe, BMod:
		if n != 2 {
			return cerrf(e.Pos, "%s expects 2 arguments, got %d", e.Op, n)
		}
	case BIf:
		if n != 3 {
			return cerrf(e.Pos, "if expects 3 arguments (cond then else), got %d", n)
		}
	case BCrlf, BTabto:
		if n != 0 {
			return cerrf(e.Pos, "%s expects no arguments, got %d", e.Op, n)
		}
	case BSub, BSymcat:
		if n < 1 {
			return cerrf(e.Pos, "%s expects at least 1 argument", e.Op)
		}
	case BAdd, BMul, BDiv, BMin, BMax, BAnd, BOr:
		if n < 2 {
			return cerrf(e.Pos, "%s expects at least 2 arguments, got %d", e.Op, n)
		}
	}
	return nil
}

// compileRHSExpr compiles an RHS expression, which may reference rule
// variables and previously bound locals.
func (ctx *ruleCtx) compileRHSExpr(e lang.Expr, pos lang.Pos) (*Expr, error) {
	switch e := e.(type) {
	case *lang.ConstExpr:
		return &Expr{Kind: EConst, Val: e.Val}, nil
	case *lang.VarExpr:
		if ref, ok := ctx.bindings[e.Name]; ok {
			return &Expr{Kind: ERef, Ref: ref}, nil
		}
		if idx, ok := ctx.locals[e.Name]; ok {
			return &Expr{Kind: ELocal, Local: idx}, nil
		}
		return nil, cerrf(e.Pos, "rule %s: action references unbound variable <%s>", ctx.rule.Name, e.Name)
	case *lang.CallExpr:
		op, ok := builtinNames[e.Op]
		if !ok {
			return nil, cerrf(e.Pos, "rule %s: unknown builtin %q", ctx.rule.Name, e.Op)
		}
		if err := checkArity(e, op); err != nil {
			return nil, err
		}
		out := &Expr{Kind: ECall, Op: op, Args: make([]*Expr, len(e.Args))}
		for i, a := range e.Args {
			ca, err := ctx.compileRHSExpr(a, pos)
			if err != nil {
				return nil, err
			}
			out.Args[i] = ca
		}
		return out, nil
	default:
		return nil, cerrf(pos, "rule %s: bad expression", ctx.rule.Name)
	}
}

func (ctx *ruleCtx) resolveDesignator(d lang.Designator) (int, error) {
	if d.Var != "" {
		if idx, ok := ctx.binders[d.Var]; ok {
			return idx, nil
		}
		return 0, cerrf(d.Pos, "rule %s: <%s> is not an element variable", ctx.rule.Name, d.Var)
	}
	if d.Index < 1 || d.Index > len(ctx.itemPos) {
		return 0, cerrf(d.Pos, "rule %s: element index %d out of range (1..%d)", ctx.rule.Name, d.Index, len(ctx.itemPos))
	}
	pos := ctx.itemPos[d.Index-1]
	if pos < 0 {
		return 0, cerrf(d.Pos, "rule %s: element %d is negated or a test and cannot be modified or removed", ctx.rule.Name, d.Index)
	}
	return pos, nil
}

// positiveCE returns the compiled positive CE with the given index.
func (ctx *ruleCtx) positiveCE(pos int) *CondElem {
	for _, ce := range ctx.rule.CEs {
		if ce.PosIndex == pos {
			return ce
		}
	}
	panic("compile: missing positive CE")
}

func (ctx *ruleCtx) compileAction(a lang.Action) (*Action, error) {
	switch a := a.(type) {
	case *lang.MakeAction:
		tmpl, ok := ctx.prog.Schema.Lookup(a.Type)
		if !ok {
			return nil, cerrf(a.Pos, "rule %s: make of undeclared template %q", ctx.rule.Name, a.Type)
		}
		if ctx.prog.Temporal.IsAggregate(a.Type) {
			return nil, cerrf(a.Pos, "rule %s: make of window aggregate template %q (maintained by the temporal clock)", ctx.rule.Name, a.Type)
		}
		slots, err := ctx.compileActionSlots(tmpl, a.Type, a.Slots)
		if err != nil {
			return nil, err
		}
		return &Action{Kind: ActMake, Tmpl: tmpl, Slots: slots}, nil
	case *lang.ModifyAction:
		pos, err := ctx.resolveDesignator(a.Target)
		if err != nil {
			return nil, err
		}
		tmpl := ctx.positiveCE(pos).Tmpl
		if ctx.prog.Temporal.IsAggregate(tmpl.Name) {
			return nil, cerrf(a.Pos, "rule %s: modify of window aggregate template %q (maintained by the temporal clock)", ctx.rule.Name, tmpl.Name)
		}
		slots, err := ctx.compileActionSlots(tmpl, tmpl.Name, a.Slots)
		if err != nil {
			return nil, err
		}
		return &Action{Kind: ActModify, Target: pos, Tmpl: tmpl, Slots: slots}, nil
	case *lang.RemoveAction:
		act := &Action{Kind: ActRemove}
		for _, d := range a.Targets {
			pos, err := ctx.resolveDesignator(d)
			if err != nil {
				return nil, err
			}
			if tmpl := ctx.positiveCE(pos).Tmpl; ctx.prog.Temporal.IsAggregate(tmpl.Name) {
				return nil, cerrf(a.Pos, "rule %s: remove of window aggregate template %q (maintained by the temporal clock)", ctx.rule.Name, tmpl.Name)
			}
			act.Targets = append(act.Targets, pos)
		}
		return act, nil
	case *lang.BindAction:
		if _, clash := ctx.bindings[a.Var]; clash {
			return nil, cerrf(a.Pos, "rule %s: bind shadows rule variable <%s>", ctx.rule.Name, a.Var)
		}
		var exprs []*Expr
		if a.Expr != nil {
			e, err := ctx.compileRHSExpr(a.Expr, a.Pos)
			if err != nil {
				return nil, err
			}
			exprs = []*Expr{e}
		}
		idx, ok := ctx.locals[a.Var]
		if !ok {
			idx = len(ctx.locals)
			ctx.locals[a.Var] = idx
		}
		// Empty Exprs means gensym: the engines bind a fresh unique
		// symbol derived deterministically from the instantiation.
		return &Action{Kind: ActBind, Local: idx, Exprs: exprs}, nil
	case *lang.WriteAction:
		act := &Action{Kind: ActWrite}
		for _, arg := range a.Args {
			e, err := ctx.compileRHSExpr(arg, a.Pos)
			if err != nil {
				return nil, err
			}
			act.Exprs = append(act.Exprs, e)
		}
		return act, nil
	case *lang.HaltAction:
		return &Action{Kind: ActHalt}, nil
	default:
		return nil, cerrf(lang.Pos{}, "rule %s: unknown action %T", ctx.rule.Name, a)
	}
}

func (ctx *ruleCtx) compileActionSlots(tmpl *wm.Template, typeName string, slots []*lang.ActionSlot) ([]SlotAssign, error) {
	out := make([]SlotAssign, 0, len(slots))
	seen := make(map[int]bool)
	for _, s := range slots {
		field, ok := tmpl.AttrIndex(s.Attr)
		if !ok {
			return nil, cerrf(s.Pos, "rule %s: template %q has no attribute %q", ctx.rule.Name, typeName, s.Attr)
		}
		if seen[field] {
			return nil, cerrf(s.Pos, "rule %s: attribute %q assigned twice", ctx.rule.Name, s.Attr)
		}
		seen[field] = true
		e, err := ctx.compileRHSExpr(s.Expr, s.Pos)
		if err != nil {
			return nil, err
		}
		out = append(out, SlotAssign{Field: field, Expr: e})
	}
	return out, nil
}

// ---- meta-rules ----

type metaCtx struct {
	prog *Program
	meta *MetaRule
	name string
	// patVars maps pattern variables (<i>) to pattern indexes.
	patVars map[string]int
	// valVars maps meta value variables to their defining occurrence.
	valVars map[string]metaVarBind
}

type metaVarBind struct {
	pat int
	ref VarRef
}

func compileMetaRule(prog *Program, ms *lang.MetaRule) (*MetaRule, error) {
	m := &MetaRule{Name: ms.Name}
	ctx := &metaCtx{
		prog:    prog,
		meta:    m,
		name:    ms.Name,
		patVars: make(map[string]int),
		valVars: make(map[string]metaVarBind),
	}
	for pi, ps := range ms.Patterns {
		rule, ok := prog.RuleByName(ps.RuleName)
		if !ok {
			return nil, cerrf(ps.Pos, "metarule %s: unknown rule %q", ms.Name, ps.RuleName)
		}
		if _, dup := ctx.patVars[ps.Var]; dup {
			return nil, cerrf(ps.Pos, "metarule %s: pattern variable <%s> bound twice", ms.Name, ps.Var)
		}
		if _, clash := ctx.valVars[ps.Var]; clash {
			return nil, cerrf(ps.Pos, "metarule %s: <%s> used as both pattern and value variable", ms.Name, ps.Var)
		}
		ctx.patVars[ps.Var] = pi
		ip := &InstPattern{Rule: rule}
		for _, slot := range ps.Slots {
			ref, ok := rule.Bindings[slot.Attr]
			if !ok {
				return nil, cerrf(slot.Pos, "metarule %s: rule %q has no variable <%s>", ms.Name, ps.RuleName, slot.Attr)
			}
			if err := ctx.compileMetaTerm(ip, pi, slot, ref); err != nil {
				return nil, err
			}
		}
		m.Patterns = append(m.Patterns, ip)
	}
	for _, ts := range ms.Tests {
		e, err := ctx.compileMetaExpr(ts)
		if err != nil {
			return nil, err
		}
		m.Tests = append(m.Tests, e)
	}
	for _, rv := range ms.Redacts {
		pi, ok := ctx.patVars[rv]
		if !ok {
			return nil, cerrf(ms.Pos, "metarule %s: redact of unknown pattern variable <%s>", ms.Name, rv)
		}
		m.Redacts = append(m.Redacts, pi)
	}
	return m, nil
}

func (ctx *metaCtx) compileMetaTerm(ip *InstPattern, pi int, slot *lang.Slot, ref VarRef) error {
	bindOrTest := func(name string, op PredOp, canBind bool) error {
		if b, ok := ctx.valVars[name]; ok {
			if b.pat == pi {
				ip.IntraTests = append(ip.IntraTests, MetaIntraTest{Ref: ref, Op: op, OtherRef: b.ref})
			} else {
				ip.JoinTests = append(ip.JoinTests, MetaJoinTest{Ref: ref, Op: op, OtherPat: b.pat, OtherRef: b.ref})
			}
			return nil
		}
		if _, isPat := ctx.patVars[name]; isPat {
			return cerrf(slot.Pos, "metarule %s: <%s> is a pattern variable, not a value", ctx.name, name)
		}
		if !canBind {
			return cerrf(slot.Pos, "metarule %s: predicate on unbound variable <%s>", ctx.name, name)
		}
		ctx.valVars[name] = metaVarBind{pat: pi, ref: ref}
		return nil
	}
	switch t := slot.Term.(type) {
	case lang.ConstTerm:
		ip.ConstTests = append(ip.ConstTests, MetaConstTest{Ref: ref, Op: OpEq, Val: t.Val})
		return nil
	case lang.DisjTerm:
		ip.DisjTests = append(ip.DisjTests, MetaDisjTest{Ref: ref, Vals: t.Vals})
		return nil
	case lang.VarTerm:
		return bindOrTest(t.Name, OpEq, true)
	case lang.PredTerm:
		op := predOpOf(t.Op)
		switch arg := t.Arg.(type) {
		case lang.ConstTerm:
			ip.ConstTests = append(ip.ConstTests, MetaConstTest{Ref: ref, Op: op, Val: arg.Val})
			return nil
		case lang.VarTerm:
			return bindOrTest(arg.Name, op, false)
		default:
			return cerrf(slot.Pos, "metarule %s: bad predicate argument", ctx.name)
		}
	default:
		return cerrf(slot.Pos, "metarule %s: bad pattern term", ctx.name)
	}
}

func (ctx *metaCtx) compileMetaExpr(e lang.Expr) (*Expr, error) {
	switch e := e.(type) {
	case *lang.ConstExpr:
		return &Expr{Kind: EConst, Val: e.Val}, nil
	case *lang.VarExpr:
		if b, ok := ctx.valVars[e.Name]; ok {
			return &Expr{Kind: EMetaRef, Pat: b.pat, MetaVar: b.ref}, nil
		}
		if _, isPat := ctx.patVars[e.Name]; isPat {
			return nil, cerrf(e.Pos, "metarule %s: pattern variable <%s> used as a value (use (tag <%s>) or (rulename <%s>))", ctx.name, e.Name, e.Name, e.Name)
		}
		return nil, cerrf(e.Pos, "metarule %s: test references unbound variable <%s>", ctx.name, e.Name)
	case *lang.CallExpr:
		switch e.Op {
		case "tag", "rulename":
			if len(e.Args) != 1 {
				return nil, cerrf(e.Pos, "metarule %s: %s expects 1 argument", ctx.name, e.Op)
			}
			pv, ok := e.Args[0].(*lang.VarExpr)
			if !ok {
				return nil, cerrf(e.Pos, "metarule %s: %s expects a pattern variable", ctx.name, e.Op)
			}
			pi, ok := ctx.patVars[pv.Name]
			if !ok {
				return nil, cerrf(pv.Pos, "metarule %s: <%s> is not a pattern variable", ctx.name, pv.Name)
			}
			if e.Op == "tag" {
				return &Expr{Kind: EMetaTag, Pat: pi}, nil
			}
			return &Expr{Kind: EMetaRule, Pat: pi}, nil
		case "precedes":
			if len(e.Args) != 2 {
				return nil, cerrf(e.Pos, "metarule %s: precedes expects 2 arguments", ctx.name)
			}
			var pis [2]int
			for i, a := range e.Args {
				pv, ok := a.(*lang.VarExpr)
				if !ok {
					return nil, cerrf(e.Pos, "metarule %s: precedes expects pattern variables", ctx.name)
				}
				pi, ok := ctx.patVars[pv.Name]
				if !ok {
					return nil, cerrf(pv.Pos, "metarule %s: <%s> is not a pattern variable", ctx.name, pv.Name)
				}
				pis[i] = pi
			}
			return &Expr{Kind: EMetaPrec, Pat: pis[0], Pat2: pis[1]}, nil
		}
		op, ok := builtinNames[e.Op]
		if !ok {
			return nil, cerrf(e.Pos, "metarule %s: unknown builtin %q", ctx.name, e.Op)
		}
		if err := checkArity(e, op); err != nil {
			return nil, err
		}
		out := &Expr{Kind: ECall, Op: op, Args: make([]*Expr, len(e.Args))}
		for i, a := range e.Args {
			ca, err := ctx.compileMetaExpr(a)
			if err != nil {
				return nil, err
			}
			out.Args[i] = ca
		}
		return out, nil
	default:
		return nil, cerrf(lang.Pos{}, "metarule %s: bad expression", ctx.name)
	}
}

// CompileSource parses and compiles PARULEL source text in one step.
func CompileSource(src string) (*Program, error) {
	ast, err := lang.Parse(src)
	if err != nil {
		return nil, err
	}
	return Compile(ast)
}
