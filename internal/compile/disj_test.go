package compile

import (
	"strings"
	"testing"

	"parulel/internal/lang"
	"parulel/internal/wm"
)

func TestCompileDisjunction(t *testing.T) {
	p := compileOK(t, `
(literalize card suit rank)
(rule red (card ^suit << hearts diamonds >> ^rank <r>) --> (halt))
`)
	ce := p.Rules[0].CEs[0]
	if len(ce.DisjTests) != 1 {
		t.Fatalf("disj tests: %+v", ce.DisjTests)
	}
	d := ce.DisjTests[0]
	if d.Field != 0 || len(d.Vals) != 2 {
		t.Fatalf("disj test shape: %+v", d)
	}
	mem := wm.NewMemory(p.Schema)
	heart, _ := mem.Insert("card", map[string]wm.Value{"suit": wm.Sym("hearts"), "rank": wm.Int(1)})
	club, _ := mem.Insert("card", map[string]wm.Value{"suit": wm.Sym("clubs"), "rank": wm.Int(1)})
	if !ce.MatchesAlpha(heart) {
		t.Error("hearts should match the disjunction")
	}
	if ce.MatchesAlpha(club) {
		t.Error("clubs should not match the disjunction")
	}
}

func TestCompileDisjunctionMixedKinds(t *testing.T) {
	p := compileOK(t, `
(literalize a x)
(rule r (a ^x << 1 2.5 done "str" nil >>) --> (halt))
`)
	d := p.Rules[0].CEs[0].DisjTests[0]
	want := []wm.Value{wm.Int(1), wm.Float(2.5), wm.Sym("done"), wm.Str("str"), wm.Nil()}
	if len(d.Vals) != len(want) {
		t.Fatalf("vals: %v", d.Vals)
	}
	for i, v := range want {
		if d.Vals[i] != v {
			t.Errorf("val %d = %v, want %v", i, d.Vals[i], v)
		}
		if !d.Matches(v) {
			t.Errorf("Matches(%v) should hold", v)
		}
	}
	if d.Matches(wm.Int(3)) || d.Matches(wm.Float(1)) {
		t.Error("strict equality expected in disjunctions")
	}
}

func TestCompileDisjunctionInMetaRule(t *testing.T) {
	p := compileOK(t, `
(literalize a x)
(rule r (a ^x <v>) --> (halt))
(metarule m
  [<i> (r ^v << 1 2 >>)]
  [<j> (r ^v <w>)]
-->
  (redact <j>))
`)
	ip := p.MetaRules[0].Patterns[0]
	if len(ip.DisjTests) != 1 || len(ip.DisjTests[0].Vals) != 2 {
		t.Fatalf("meta disj tests: %+v", ip.DisjTests)
	}
}

func TestDisjunctionParseErrors(t *testing.T) {
	cases := []struct {
		src    string
		substr string
	}{
		{`(literalize a x) (rule r (a ^x << >>) --> (halt))`, "empty disjunction"},
		{`(literalize a x) (rule r (a ^x << 1 <v> >>) --> (halt))`, "expected a constant"},
		{`(literalize a x) (rule r (a ^x (> << 1 2 >>)) --> (halt))`, "bad predicate argument"},
	}
	for _, c := range cases {
		_, err := CompileSource(c.src)
		if err == nil || !strings.Contains(err.Error(), c.substr) {
			t.Errorf("CompileSource(%q) error = %v, want %q", c.src, err, c.substr)
		}
	}
}

func TestDisjunctionPrintRoundTrip(t *testing.T) {
	src := `
(literalize a x)
(rule r (a ^x << 1 two "three" >>) --> (halt))
`
	ast, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	printed := lang.Print(ast)
	if !strings.Contains(printed, "<< 1 two \"three\" >>") {
		t.Errorf("printed: %s", printed)
	}
	if _, err := lang.Parse(printed); err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, printed)
	}
}
