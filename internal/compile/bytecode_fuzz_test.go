package compile

import "testing"

// exprGen derives a random well-typed expression tree from fuzz bytes:
// structurally valid per checkArity (argument counts respected, only real
// builtins), while runtime type errors (non-numeric operands, division by
// zero, empty symcat) are exactly the disagreement surface under test.
type exprGen struct {
	data []byte
	pos  int
}

func (g *exprGen) byte() byte {
	if g.pos >= len(g.data) {
		return 0
	}
	b := g.data[g.pos]
	g.pos++
	return b
}

// variadic builtins and their minimum arity (checkArity's table).
var fuzzVariadic = []struct {
	op  Builtin
	min int
}{
	{BAdd, 2}, {BMul, 2}, {BDiv, 2}, {BMin, 2}, {BMax, 2},
	{BAnd, 2}, {BOr, 2}, {BSub, 1}, {BSymcat, 1},
}

var fuzzBinary = []Builtin{BEq, BNe, BLt, BLe, BGt, BGe, BMod}
var fuzzUnary = []Builtin{BNot, BAbs, BHash}

func (g *exprGen) gen(depth int) *Expr {
	b := g.byte()
	if depth <= 0 {
		b %= 6 // leaves only
	}
	switch b % 12 {
	case 0, 1:
		return c(paletteAt(int(g.byte())))
	case 2:
		return &Expr{Kind: ERef, Ref: VarRef{CE: int(g.byte()) % 4, Field: int(g.byte()) % 4}}
	case 3:
		return &Expr{Kind: ELocal, Local: int(g.byte()) % 8}
	case 4:
		switch g.byte() % 4 {
		case 0:
			return &Expr{Kind: EMetaRef, Pat: int(g.byte()) % 3, MetaVar: VarRef{CE: int(g.byte()) % 4, Field: int(g.byte()) % 4}}
		case 1:
			return &Expr{Kind: EMetaTag, Pat: int(g.byte()) % 3}
		case 2:
			return &Expr{Kind: EMetaRule, Pat: int(g.byte()) % 3}
		default:
			return &Expr{Kind: EMetaPrec, Pat: int(g.byte()) % 3, Pat2: int(g.byte()) % 3}
		}
	case 5:
		if g.byte()%2 == 0 {
			return call(BCrlf)
		}
		return call(BTabto)
	case 6, 7, 8:
		v := fuzzVariadic[int(g.byte())%len(fuzzVariadic)]
		n := v.min + int(g.byte())%3
		args := make([]*Expr, n)
		for i := range args {
			args[i] = g.gen(depth - 1)
		}
		return call(v.op, args...)
	case 9, 10:
		op := fuzzBinary[int(g.byte())%len(fuzzBinary)]
		return call(op, g.gen(depth-1), g.gen(depth-1))
	default:
		if g.byte()%3 == 0 {
			return call(BIf, g.gen(depth-1), g.gen(depth-1), g.gen(depth-1))
		}
		op := fuzzUnary[int(g.byte())%len(fuzzUnary)]
		return call(op, g.gen(depth-1))
	}
}

// FuzzBytecodeEval holds the bytecode VM to the tree-walking interpreter:
// for any well-typed expression the two backends must produce the same
// value, or the same error text. This is the contract that lets bytecode
// be the default EvalMode with the interpreter as a fallback.
func FuzzBytecodeEval(f *testing.F) {
	f.Add([]byte{6, 0, 1, 0, 1, 1, 2})                      // (add const const)
	f.Add([]byte{9, 6, 0, 3, 1, 4, 2, 1, 0})                // cmp over arith
	f.Add([]byte{11, 0, 0, 1, 0, 2, 6, 2, 1, 0, 5, 0, 7})   // if with div
	f.Add([]byte{6, 7, 2, 0, 11, 0, 8, 6, 2, 2, 0, 6, 0})   // boolean nesting
	f.Add([]byte{8, 8, 1, 0, 11, 0, 13, 2, 1, 1, 3, 2, 5})  // symcat mix
	f.Add([]byte{4, 0, 1, 2, 4, 3, 1, 4, 2, 9, 1, 0, 0, 1}) // meta ops
	f.Fuzz(func(t *testing.T, data []byte) {
		g := &exprGen{data: data}
		e := g.gen(4)
		code := lowerExpr(e)
		if code == nil {
			if e.Kind != ECall {
				return // leaf roots deliberately stay on the tree walker
			}
			t.Fatal("lowerExpr failed on a well-typed call expression")
		}
		wantV, wantErr := Eval(e, vmEnv{})
		gotV, gotErr := code.run(vmEnv{})
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("error divergence: interp err=%v, vm err=%v", wantErr, gotErr)
		}
		if wantErr != nil {
			if wantErr.Error() != gotErr.Error() {
				t.Fatalf("error text divergence: interp %q, vm %q", wantErr, gotErr)
			}
			return
		}
		if wantV != gotV {
			t.Fatalf("value divergence: interp %s (%+v), vm %s (%+v)", wantV, wantV, gotV, gotV)
		}
	})
}
