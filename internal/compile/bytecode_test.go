package compile

import (
	"fmt"
	"testing"

	"parulel/internal/wm"
)

// vmEnv is a deterministic Env for backend-agreement tests: every lookup
// is a pure function of the reference, so the interpreter and the VM see
// identical worlds without constructing instantiations.
type vmEnv struct{}

var vmPalette = []wm.Value{
	wm.Int(0), wm.Int(7), wm.Int(-3), wm.Int(2),
	wm.Float(2), wm.Float(0.5), wm.Float(0), wm.Float(-1.25),
	wm.Sym("false"), wm.Sym("true"), wm.Sym("x"),
	wm.Str(""), wm.Str("ab"), {},
}

func paletteAt(i int) wm.Value {
	if i < 0 {
		i = -i
	}
	return vmPalette[i%len(vmPalette)]
}

func (vmEnv) Ref(r VarRef) wm.Value               { return paletteAt(r.CE*7 + r.Field) }
func (vmEnv) Local(i int) wm.Value                { return paletteAt(i + 3) }
func (vmEnv) MetaVal(pat int, r VarRef) wm.Value  { return paletteAt(pat*5 + r.CE + r.Field) }
func (vmEnv) MetaTag(pat int) int64               { return int64(pat*10 + 3) }
func (vmEnv) MetaRuleName(pat int) string         { return fmt.Sprintf("rule%d", pat) }
func (vmEnv) MetaPrecedes(pat int, pat2 int) bool { return pat < pat2 }

// agree evaluates e through both backends and requires identical values
// and identical error text.
func agree(t *testing.T, e *Expr) (wm.Value, error) {
	t.Helper()
	cd := lowerExpr(e)
	if cd == nil {
		if e.Kind != ECall {
			// Leaf roots are not lowered by policy; force them through
			// the lowerer so VM leaf instructions stay covered.
			l := &lowerer{}
			if !l.lower(e, 0) {
				t.Fatalf("lowerer failed on leaf %+v", e)
			}
			l.emit(opRet, 0, 0, 0)
			cd = &code{ins: l.ins, consts: l.consts, refs: l.refs, nregs: l.nregs}
		} else {
			t.Fatalf("lowerExpr returned nil for %+v", e)
		}
	}
	wantV, wantErr := Eval(e, vmEnv{})
	gotV, gotErr := cd.run(vmEnv{})
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("error divergence: interp err=%v, vm err=%v", wantErr, gotErr)
	}
	if wantErr != nil {
		if wantErr.Error() != gotErr.Error() {
			t.Fatalf("error text divergence: interp %q, vm %q", wantErr, gotErr)
		}
		return wm.Value{}, wantErr
	}
	if wantV != gotV {
		t.Fatalf("value divergence: interp %s (%+v), vm %s (%+v)", wantV, wantV, gotV, gotV)
	}
	return wantV, nil
}

func TestBytecodeAgreesWithInterp(t *testing.T) {
	i, f, s := wm.Int, wm.Float, wm.Sym
	cases := []struct {
		name string
		e    *Expr
	}{
		{"const", c(i(42))},
		{"ref", &Expr{Kind: ERef, Ref: VarRef{CE: 1, Field: 2}}},
		{"local", &Expr{Kind: ELocal, Local: 4}},
		{"add-int", call(BAdd, c(i(1)), c(i(2)), c(i(3)))},
		{"add-mixed", call(BAdd, c(i(1)), c(f(0.5)))},
		// The all-operand int/float decision: a trailing float makes the
		// WHOLE fold float, so (div 7 2 2.0) = 1.75, not 1.5.
		{"div-mixed-window", call(BDiv, c(i(7)), c(i(2)), c(f(2)))},
		{"div-int", call(BDiv, c(i(7)), c(i(2)))},
		{"div-zero-int", call(BDiv, c(i(7)), c(i(0)))},
		{"div-zero-float", call(BDiv, c(f(7)), c(f(0)))},
		{"mod-int", call(BMod, c(i(7)), c(i(3)))},
		{"mod-zero", call(BMod, c(i(7)), c(i(0)))},
		{"mod-float", call(BMod, c(f(7)), c(i(3)))},
		{"unary-minus-int", call(BSub, c(i(5)))},
		{"unary-minus-float", call(BSub, c(f(1.5)))},
		{"sub-chain", call(BSub, c(i(10)), c(i(3)), c(i(2)))},
		{"min-max", call(BMin, call(BMax, c(i(3)), c(f(9))), c(i(5)))},
		{"arith-nonnumeric", call(BAdd, c(i(1)), c(s("x")))},
		{"arith-nonnumeric-order", call(BAdd, c(s("a")), c(s("b")))},
		{"eq-numeric", call(BEq, c(i(2)), c(f(2)))},
		{"ne", call(BNe, c(s("a")), c(s("b")))},
		{"lt", call(BLt, c(i(1)), c(i(2)))},
		{"le-cross-kind", call(BLe, c(s("a")), c(i(1)))},
		{"gt", call(BGt, c(f(2.5)), c(i(2)))},
		{"ge", call(BGe, c(i(2)), c(i(2)))},
		{"not", call(BNot, c(s("false")))},
		{"not-nil", call(BNot, c(wm.Value{}))},
		{"and-true", call(BAnd, c(i(1)), c(s("true")))},
		{"and-shortcircuit-skips-error", call(BAnd, c(s("false")), call(BDiv, c(i(1)), c(i(0))))},
		{"and-error-propagates", call(BAnd, c(i(1)), call(BDiv, c(i(1)), c(i(0))))},
		{"or-shortcircuit-skips-error", call(BOr, c(i(1)), call(BDiv, c(i(1)), c(i(0))))},
		{"or-false", call(BOr, c(s("false")), c(wm.Value{}))},
		{"if-then", call(BIf, c(i(1)), c(s("yes")), call(BDiv, c(i(1)), c(i(0))))},
		{"if-else", call(BIf, c(s("false")), call(BDiv, c(i(1)), c(i(0))), c(s("no")))},
		{"if-cond-error", call(BIf, call(BDiv, c(i(1)), c(i(0))), c(i(1)), c(i(2)))},
		{"abs-int", call(BAbs, c(i(-3)))},
		{"abs-float", call(BAbs, c(f(-2.5)))},
		{"abs-nonnumeric", call(BAbs, c(s("x")))},
		{"hash-int", call(BHash, c(i(12345)))},
		{"hash-float", call(BHash, c(f(2)))},
		{"hash-sym", call(BHash, c(s("pool")))},
		{"symcat", call(BSymcat, c(s("a")), c(i(3)), c(f(2)))},
		{"symcat-empty", call(BSymcat, c(wm.Str("")))},
		{"crlf", call(BSymcat, c(s("a")), call(BCrlf))},
		{"tabto", call(BSymcat, c(s("a")), call(BTabto))},
		{"meta-ref", &Expr{Kind: EMetaRef, Pat: 1, MetaVar: VarRef{CE: 0, Field: 2}}},
		{"meta-tag", &Expr{Kind: EMetaTag, Pat: 2}},
		{"meta-rule", &Expr{Kind: EMetaRule, Pat: 1}},
		{"meta-prec", &Expr{Kind: EMetaPrec, Pat: 0, Pat2: 1}},
		{"nested", call(BIf,
			call(BAnd, call(BLt, &Expr{Kind: ERef, Ref: VarRef{CE: 0, Field: 1}}, c(i(100))), call(BNot, c(s("false")))),
			call(BAdd, call(BMul, c(i(3)), c(i(4))), call(BMod, call(BHash, c(s("k"))), c(i(8)))),
			c(i(0)))},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) { agree(t, tc.e) })
	}
}

// TestCompileAttachesBytecode verifies that every root expression of a
// compiled program carries lowered code, so bytecode mode never silently
// interprets compiler output.
func TestCompileAttachesBytecode(t *testing.T) {
	prog, err := CompileSource(`
(literalize item id score flag)
(rule bump
  <x> <- (item ^id <i> ^score <s> ^flag on)
  (test (< <s> 10))
-->
  (bind <n> (+ <s> 1))
  (modify <x> ^score <n>)
  (write "bumped " <i> (crlf)))
(metarule prefer-older
  [<a> (bump ^i <i1>)]
  [<b> (bump ^i <i2>)]
  (test (precedes <b> <a>))
-->
  (redact <a>))
`)
	if err != nil {
		t.Fatal(err)
	}
	// Call roots must carry bytecode; leaf roots (plain refs, constants)
	// deliberately stay on the tree walker, which is already optimal for
	// a single node.
	calls, leaves := 0, 0
	check := func(where string, x *Expr) {
		if x.Kind == ECall {
			calls++
			if x.code == nil {
				t.Errorf("%s: call expr not lowered", where)
			}
		} else {
			leaves++
			if x.code != nil {
				t.Errorf("%s: leaf expr unexpectedly lowered", where)
			}
		}
	}
	for _, r := range prog.Rules {
		for _, ce := range r.CEs {
			for _, f := range ce.Filters {
				check("rule "+r.Name+" filter", f)
			}
		}
		for _, a := range r.Actions {
			for j := range a.Slots {
				check("rule "+r.Name+" slot", a.Slots[j].Expr)
			}
			for _, x := range a.Exprs {
				check("rule "+r.Name+" action", x)
			}
		}
	}
	for _, m := range prog.MetaRules {
		for _, x := range m.Tests {
			check("metarule "+m.Name+" test", x)
		}
	}
	if calls == 0 {
		t.Fatal("no call expressions found — the program under test is wrong")
	}
}

func TestEvalModeFallsBackWithoutCode(t *testing.T) {
	e := call(BAdd, c(wm.Int(2)), c(wm.Int(3))) // hand-built: no code attached
	v, err := EvalBytecode.Eval(e, vmEnv{})
	if err != nil || v != wm.Int(5) {
		t.Fatalf("fallback eval = %v, %v; want 5", v, err)
	}
	if EvalBytecode.String() != "bytecode" || EvalInterp.String() != "interp" {
		t.Fatalf("mode names: %q, %q", EvalBytecode, EvalInterp)
	}
}

func BenchmarkEvalExpr(b *testing.B) {
	// The E13-shaped microbenchmark: a filter-like expression with refs,
	// comparison, arithmetic and a short-circuit — the common hot shape.
	e := call(BAnd,
		call(BLt, &Expr{Kind: ERef, Ref: VarRef{CE: 0, Field: 1}}, c(wm.Int(100))),
		call(BEq, call(BMod, call(BAdd, &Expr{Kind: ERef, Ref: VarRef{CE: 0, Field: 3}}, c(wm.Int(13))), c(wm.Int(7))), c(wm.Int(1))),
	)
	code := lowerExpr(e)
	if code == nil {
		b.Fatal("lowering failed")
	}
	b.Run("interp", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Eval(e, vmEnv{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bytecode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := code.run(vmEnv{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
