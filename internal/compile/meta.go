package compile

import "parulel/internal/wm"

// MetaRule is a compiled PARULEL redaction meta-rule. Meta-rules match
// tuples of *distinct* instantiations in the conflict set and name which of
// them to redact.
type MetaRule struct {
	Name  string
	Index int
	// Patterns are the instantiation patterns in source order.
	Patterns []*InstPattern
	// Tests are additional filters over the full tuple.
	Tests []*Expr
	// Redacts indexes Patterns: the instantiations deleted when the
	// meta-rule matches.
	Redacts []int
}

// InstPattern is a compiled instantiation pattern `[<i> (rule ^var term …)]`.
// Slot tests are split the same way object patterns are: constant tests
// evaluable on a single instantiation, intra-pattern tests between two
// variables of the same instantiation, and join tests against
// earlier patterns of the meta-rule.
type InstPattern struct {
	// Rule is the object rule whose instantiations this pattern matches.
	Rule *Rule
	// ConstTests compare an object-rule variable of the instantiation with
	// a constant.
	ConstTests []MetaConstTest
	// DisjTests require an object-rule variable to take one of a set of
	// constant values.
	DisjTests []MetaDisjTest
	// IntraTests compare two object-rule variables of the same
	// instantiation.
	IntraTests []MetaIntraTest
	// JoinTests compare an object-rule variable with one of an
	// instantiation matched by an earlier pattern.
	JoinTests []MetaJoinTest
}

// MetaConstTest compares instantiation value at Ref with a constant.
type MetaConstTest struct {
	Ref VarRef
	Op  PredOp
	Val wm.Value
}

// MetaDisjTest requires the instantiation value at Ref to equal one of
// the constants (`<< a b c >>` in an instantiation pattern).
type MetaDisjTest struct {
	Ref  VarRef
	Vals []wm.Value
}

// Matches reports whether v equals one of the disjunction's values.
func (t MetaDisjTest) Matches(v wm.Value) bool {
	for _, x := range t.Vals {
		if v == x {
			return true
		}
	}
	return false
}

// MetaIntraTest compares two values of the same instantiation.
type MetaIntraTest struct {
	Ref      VarRef
	Op       PredOp
	OtherRef VarRef
}

// MetaJoinTest compares a value of this pattern's instantiation with a
// value of the instantiation matched by pattern OtherPat (< this pattern's
// index).
type MetaJoinTest struct {
	Ref      VarRef
	Op       PredOp
	OtherPat int
	OtherRef VarRef
}
