package compile

import (
	"strings"
	"testing"

	"parulel/internal/wm"
)

func compileOK(t *testing.T, src string) *Program {
	t.Helper()
	p, err := CompileSource(src)
	if err != nil {
		t.Fatalf("CompileSource failed: %v\nsource:\n%s", err, src)
	}
	return p
}

const kernel = `
(literalize pool  id amount status)
(literalize order id lo hi filled)
(literalize bid   pool order)

(wm
  (pool ^id 1 ^amount 100 ^status free)
  (order ^id 1 ^lo 50 ^hi 150 ^filled no))

(rule propose
  (pool  ^id <p> ^amount <a> ^status free)
  (order ^id <o> ^lo <lo> ^hi <hi> ^filled no)
  (test (and (>= <a> <lo>) (<= <a> <hi>)))
-->
  (make bid ^pool <p> ^order <o>))

(metarule one-bid-per-pool
  [<i> (propose ^p <p> ^o <o1>)]
  [<j> (propose ^p <p> ^o <o2>)]
  (test (< <o1> <o2>))
-->
  (redact <j>))
`

func TestCompileKernel(t *testing.T) {
	p := compileOK(t, kernel)
	if p.Schema.Len() != 3 {
		t.Errorf("schema templates = %d, want 3", p.Schema.Len())
	}
	if len(p.Facts) != 2 {
		t.Errorf("facts = %d, want 2", len(p.Facts))
	}
	r, ok := p.RuleByName("propose")
	if !ok {
		t.Fatal("propose not found")
	}
	if r.NumPositive != 2 || len(r.CEs) != 2 {
		t.Fatalf("propose CEs: NumPositive=%d len=%d", r.NumPositive, len(r.CEs))
	}
	// First CE: ^id <p> binds, ^amount <a> binds, ^status free is an eq
	// const test.
	ce0 := r.CEs[0]
	if len(ce0.ConstTests) != 1 || ce0.ConstTests[0].Op != OpEq || ce0.ConstTests[0].Val != wm.Sym("free") {
		t.Errorf("ce0 const tests: %+v", ce0.ConstTests)
	}
	if len(ce0.EqConsts) != 1 {
		t.Errorf("ce0 eq consts: %+v", ce0.EqConsts)
	}
	if r.Bindings["p"] != (VarRef{CE: 0, Field: 0}) {
		t.Errorf("binding p = %+v", r.Bindings["p"])
	}
	if r.Bindings["o"] != (VarRef{CE: 1, Field: 0}) {
		t.Errorf("binding o = %+v", r.Bindings["o"])
	}
	// The test element attaches to CE 1 (level of <a>,<lo>,<hi> max).
	ce1 := r.CEs[1]
	if len(ce1.Filters) != 1 {
		t.Fatalf("ce1 filters = %d, want 1", len(ce1.Filters))
	}
	m := p.MetaRules[0]
	if len(m.Patterns) != 2 || len(m.Tests) != 1 || len(m.Redacts) != 1 || m.Redacts[0] != 1 {
		t.Fatalf("metarule shape: %+v", m)
	}
	// Second pattern joins <p> with the first pattern's <p>.
	if len(m.Patterns[1].JoinTests) != 1 {
		t.Fatalf("meta join tests: %+v", m.Patterns[1].JoinTests)
	}
	jt := m.Patterns[1].JoinTests[0]
	if jt.OtherPat != 0 || jt.Op != OpEq {
		t.Errorf("meta join test: %+v", jt)
	}
}

func TestCompileJoinAndIntraTests(t *testing.T) {
	p := compileOK(t, `
(literalize a x y)
(literalize b x z)
(rule r
  (a ^x <v> ^y <v>)
  (b ^x <v> ^z (> <v>))
-->
  (make a ^x <v>))
`)
	r := p.Rules[0]
	ce0, ce1 := r.CEs[0], r.CEs[1]
	if len(ce0.IntraTests) != 1 || ce0.IntraTests[0].Op != OpEq {
		t.Errorf("ce0 intra: %+v", ce0.IntraTests)
	}
	if len(ce1.JoinTests) != 2 {
		t.Fatalf("ce1 joins: %+v", ce1.JoinTests)
	}
	if ce1.JoinTests[0].Op != OpEq || ce1.JoinTests[1].Op != OpGt {
		t.Errorf("ce1 join ops: %+v", ce1.JoinTests)
	}
}

func TestCompileNegatedLocals(t *testing.T) {
	p := compileOK(t, `
(literalize a x y)
(rule r
  (a ^x <v>)
  - (a ^x <w> ^y <w>)
  - (a ^y (> <v>))
-->
  (remove 1))
`)
	r := p.Rules[0]
	if r.NumPositive != 1 || len(r.CEs) != 3 {
		t.Fatalf("shape: pos=%d ces=%d", r.NumPositive, len(r.CEs))
	}
	neg1 := r.CEs[1]
	if !neg1.Negated || len(neg1.IntraTests) != 1 {
		t.Errorf("neg1: %+v", neg1)
	}
	neg2 := r.CEs[2]
	if len(neg2.JoinTests) != 1 || neg2.JoinTests[0].Op != OpGt {
		t.Errorf("neg2 joins: %+v", neg2.JoinTests)
	}
	// <w> must not leak out of the negated element.
	if _, leaked := r.Bindings["w"]; leaked {
		t.Error("variable local to negated CE leaked into rule bindings")
	}
}

func TestCompileModifyRemoveDesignators(t *testing.T) {
	p := compileOK(t, `
(literalize a x)
(literalize b y)
(rule r
  <ea> <- (a ^x <v>)
  - (b ^y <v>)
  (b ^y <w>)
-->
  (modify <ea> ^x (+ <v> 1))
  (modify 3 ^y 0)
  (remove 1 3))
`)
	r := p.Rules[0]
	mod0 := r.Actions[0]
	if mod0.Kind != ActModify || mod0.Target != 0 {
		t.Errorf("modify <ea>: %+v", mod0)
	}
	mod1 := r.Actions[1]
	if mod1.Target != 1 { // third LHS item is the second positive CE
		t.Errorf("modify 3 target = %d, want 1", mod1.Target)
	}
	rm := r.Actions[2]
	if len(rm.Targets) != 2 || rm.Targets[0] != 0 || rm.Targets[1] != 1 {
		t.Errorf("remove targets: %+v", rm.Targets)
	}
}

func TestCompileBindLocals(t *testing.T) {
	p := compileOK(t, `
(literalize a x)
(rule r (a ^x <v>) -->
  (bind <t> (* <v> 2))
  (bind <u> (+ <t> 1))
  (make a ^x <u>))
`)
	r := p.Rules[0]
	if r.NumLocals != 2 {
		t.Errorf("NumLocals = %d, want 2", r.NumLocals)
	}
	if r.Actions[0].Kind != ActBind || r.Actions[0].Local != 0 {
		t.Errorf("bind 0: %+v", r.Actions[0])
	}
	mk := r.Actions[2]
	if mk.Slots[0].Expr.Kind != ELocal || mk.Slots[0].Expr.Local != 1 {
		t.Errorf("make slot should reference local 1: %+v", mk.Slots[0].Expr)
	}
}

func TestCompileSpecificity(t *testing.T) {
	p := compileOK(t, `
(literalize a x y)
(rule narrow (a ^x 1 ^y 2) (test (> 2 1)) --> (halt))
(rule broad (a) --> (halt))
`)
	narrow, _ := p.RuleByName("narrow")
	broad, _ := p.RuleByName("broad")
	if narrow.Specificity <= broad.Specificity {
		t.Errorf("specificity: narrow=%d broad=%d", narrow.Specificity, broad.Specificity)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		src    string
		substr string
	}{
		{`(literalize a x) (literalize a y)`, "redeclared"},
		{`(wm (ghost ^x 1))`, "undeclared template"},
		{`(literalize a x) (wm (a ^nope 1))`, "no attribute"},
		{`(literalize a x) (rule r (ghost ^x 1) --> (halt))`, "undeclared template"},
		{`(literalize a x) (rule r (a ^nope 1) --> (halt))`, "no attribute"},
		{`(literalize a x) (rule r (a ^x (> <u>)) --> (halt))`, "predicate on unbound"},
		{`(literalize a x) (rule r (test (> <u> 1)) (a ^x 1) --> (halt))`, "unbound variable"},
		{`(literalize a x) (rule r (a ^x 1) --> (make a ^x <u>))`, "unbound variable"},
		{`(literalize a x) (rule r - (a ^x 1) --> (halt))`, "at least one positive"},
		{`(literalize a x) (rule r (a ^x 1) --> (remove 2))`, "out of range"},
		{`(literalize a x) (rule r (a ^x 1) - (a ^x 2) --> (remove 2))`, "negated or a test"},
		{`(literalize a x) (rule r (a ^x 1) --> (modify <e> ^x 2))`, "not an element variable"},
		{`(literalize a x) (rule r (a ^x <v>) --> (bind <v> 2))`, "shadows rule variable"},
		{`(literalize a x) (rule r (a ^x <v>) --> (make a ^x (frob <v>)))`, "unknown builtin"},
		{`(literalize a x) (rule r (a ^x <v>) --> (make a ^x <v> ^x <v>))`, "assigned twice"},
		{`(literalize a x) (rule r (a ^x <v>) --> (halt)) (rule r (a ^x <v>) --> (halt))`, "redeclared"},
		{`(literalize a x) (rule r (a ^x <v>) --> (halt)) (metarule m [<i> (ghost ^v <x>)] --> (redact <i>))`, "unknown rule"},
		{`(literalize a x) (rule r (a ^x <v>) --> (halt)) (metarule m [<i> (r ^nope <x>)] --> (redact <i>))`, "no variable"},
		{`(literalize a x) (rule r (a ^x <v>) --> (halt)) (metarule m [<i> (r ^v <x>)] --> (redact <j>))`, "unknown pattern variable"},
		{`(literalize a x) (rule r (a ^x <v>) --> (halt)) (metarule m [<i> (r ^v <x>)] (test (< <i> 1)) --> (redact <i>))`, "pattern variable"},
		{`(literalize a x) (rule r (a ^x <v>) --> (halt)) (metarule m [<i> (r ^v <x>)] (test (tag <x>)) --> (redact <i>))`, "not a pattern variable"},
		{`(literalize a x) (rule r (a ^x <v>) --> (halt)) (metarule m [<i> (r ^v <x>)] [<i> (r ^v <y>)] --> (redact <i>))`, "bound twice"},
		{`(literalize a x) (rule r (a ^x <v>) --> (halt)) (metarule m [<i> (r ^v <q>)] (test (not <zz>)) --> (redact <i>))`, "unbound variable"},
		{`(literalize a x) (rule r (a ^x <v>) --> (halt)) (metarule m [<i> (r ^v (> <zz>))] --> (redact <i>))`, "predicate on unbound"},
		{`(literalize a x) (rule r (a ^x <v>) --> (make a ^x (+ <v>)))`, "at least 2"},
		{`(literalize a x) (rule r (a ^x <v>) --> (make a ^x (not <v> <v>)))`, "expects 1"},
		{`(literalize a x) (rule r <e> <- (a ^x 1) (a ^x <e>) --> (halt))`, "element variable and cannot match"},
		{`(literalize a x) (rule r <e> <- (a ^x 1) <e> <- (a ^x 2) --> (halt))`, "bound twice"},
		{`(literalize a x) (rule r (a ^x <e>) <e> <- (a ^x 2) --> (halt))`, "both element and value"},
	}
	for _, c := range cases {
		_, err := CompileSource(c.src)
		if err == nil {
			t.Errorf("CompileSource(%q) should fail with %q", c.src, c.substr)
			continue
		}
		if !strings.Contains(err.Error(), c.substr) {
			t.Errorf("CompileSource(%q)\n error = %q, want substring %q", c.src, err, c.substr)
		}
	}
}

func TestPredOpApply(t *testing.T) {
	cases := []struct {
		op   PredOp
		a, b wm.Value
		want bool
	}{
		{OpEq, wm.Int(3), wm.Int(3), true},
		{OpEq, wm.Int(3), wm.Float(3), false}, // strict
		{OpNumEq, wm.Int(3), wm.Float(3), true},
		{OpNe, wm.Int(3), wm.Float(3), false},
		{OpNe, wm.Sym("a"), wm.Sym("b"), true},
		{OpLt, wm.Int(2), wm.Float(2.5), true},
		{OpLe, wm.Float(2.5), wm.Float(2.5), true},
		{OpGt, wm.Int(3), wm.Int(2), true},
		{OpGe, wm.Int(1), wm.Int(2), false},
		{OpLt, wm.Sym("apple"), wm.Sym("banana"), true}, // lexical fallback
		{OpLt, wm.Int(3), wm.Sym("a"), true},            // numbers before symbols
	}
	for _, c := range cases {
		if got := c.op.Apply(c.a, c.b); got != c.want {
			t.Errorf("%v.Apply(%v, %v) = %v, want %v", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestMatchesAlpha(t *testing.T) {
	p := compileOK(t, `
(literalize a x y)
(rule r (a ^x 1 ^y (> 5)) --> (halt))
`)
	ce := p.Rules[0].CEs[0]
	mem := wm.NewMemory(p.Schema)
	good, _ := mem.Insert("a", map[string]wm.Value{"x": wm.Int(1), "y": wm.Int(10)})
	badConst, _ := mem.Insert("a", map[string]wm.Value{"x": wm.Int(2), "y": wm.Int(10)})
	badPred, _ := mem.Insert("a", map[string]wm.Value{"x": wm.Int(1), "y": wm.Int(3)})
	if !ce.MatchesAlpha(good) {
		t.Error("good WME should pass alpha tests")
	}
	if ce.MatchesAlpha(badConst) || ce.MatchesAlpha(badPred) {
		t.Error("bad WMEs should fail alpha tests")
	}
}

func TestCompileIfArity(t *testing.T) {
	if _, err := CompileSource(`(literalize a x) (rule r (a ^x <v>) --> (make a ^x (if <v> 1)))`); err == nil {
		t.Error("if with 2 args should fail")
	}
	p := compileOK(t, `(literalize a x) (rule r (a ^x <v>) --> (make a ^x (if (> <v> 0) 1 0)))`)
	if p.Rules[0].Actions[0].Slots[0].Expr.Op != BIf {
		t.Error("if not compiled")
	}
}
