package cluster

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"parulel/internal/wal"
)

// Client is a node's outgoing side of the peer protocol: health pings
// and control broadcasts over cached per-peer connections, plus
// dedicated streams for replication and migration.
type Client struct {
	node    string
	timeout time.Duration

	mu      sync.Mutex
	control map[string]*peerConn // cached control connections, by address
}

// NewClient builds a client identifying itself as node in Hello frames.
func NewClient(node string, ioTimeout time.Duration) *Client {
	if ioTimeout <= 0 {
		ioTimeout = 5 * time.Second
	}
	return &Client{node: node, timeout: ioTimeout, control: make(map[string]*peerConn)}
}

// peerConn is one framed connection with its buffered reader.
type peerConn struct {
	c       net.Conn
	br      *bufio.Reader
	timeout time.Duration
}

func dialPeer(addr string, timeout time.Duration) (*peerConn, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &peerConn{c: c, br: bufio.NewReader(c), timeout: timeout}, nil
}

func (pc *peerConn) deadline() time.Time { return time.Now().Add(pc.timeout) }

// send writes one frame and reads its ack.
func (pc *peerConn) send(typ byte, v any) (Ack, error) {
	pc.c.SetDeadline(pc.deadline())
	var err error
	if payload, ok := v.([]byte); ok || v == nil {
		err = WriteFrame(pc.c, typ, payload)
	} else {
		err = writeJSONFrame(pc.c, typ, v)
	}
	if err != nil {
		return Ack{}, err
	}
	return readAck(pc.br)
}

func (pc *peerConn) close() { pc.c.Close() }

// hello opens a purpose-scoped stream on a fresh connection. trace, when
// non-empty, stamps the stream with the opening request's trace context.
func (c *Client) hello(addr, purpose, session, trace string) (*peerConn, error) {
	pc, err := dialPeer(addr, c.timeout)
	if err != nil {
		return nil, err
	}
	if _, err := pc.send(frameHello, Hello{Node: c.node, Purpose: purpose, Session: session, Trace: trace}); err != nil {
		pc.close()
		return nil, fmt.Errorf("cluster: hello to %s: %w", addr, err)
	}
	return pc, nil
}

// controlConn returns (creating if needed) the cached control connection
// for addr. The caller holds it exclusively until release.
func (c *Client) controlConn(addr string) (*peerConn, error) {
	c.mu.Lock()
	pc := c.control[addr]
	delete(c.control, addr)
	c.mu.Unlock()
	if pc != nil {
		return pc, nil
	}
	return c.hello(addr, PurposeControl, "", "")
}

func (c *Client) releaseControl(addr string, pc *peerConn, err error) {
	if err != nil {
		pc.close()
		return
	}
	c.mu.Lock()
	if _, ok := c.control[addr]; ok {
		c.mu.Unlock()
		pc.close() // someone raced a new connection in; keep one
		return
	}
	c.control[addr] = pc
	c.mu.Unlock()
}

// roundTrip sends one control frame on the cached connection, dialing a
// fresh one once if the cached connection went stale.
func (c *Client) roundTrip(addr string, typ byte, v any) (Ack, error) {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		pc, err := c.controlConn(addr)
		if err != nil {
			return Ack{}, err
		}
		ack, err := pc.send(typ, v)
		c.releaseControl(addr, pc, err)
		if err == nil {
			return ack, nil
		}
		lastErr = err
	}
	return Ack{}, lastErr
}

// Ping health-checks a peer, carrying this node's override table.
func (c *Client) Ping(m Member, overrides []Moved) error {
	_, err := c.roundTrip(m.PeerAddr, framePing, Ping{Node: c.node, Overrides: overrides})
	return err
}

// SendMoved broadcasts one routing override to a peer.
func (c *Client) SendMoved(m Member, moved Moved) error {
	_, err := c.roundTrip(m.PeerAddr, frameMoved, moved)
	return err
}

// SendDrop asks a peer to discard a stale replica.
func (c *Client) SendDrop(m Member, session string) error {
	_, err := c.roundTrip(m.PeerAddr, frameDrop, Drop{Session: session})
	return err
}

// Migrate transfers one session's state to a peer and waits for it to
// install and activate it. On a nil return the target owns the session.
// trace carries the moving request's trace context (may be empty).
func (c *Client) Migrate(m Member, session string, st SessionState, trace string) error {
	pc, err := c.hello(m.PeerAddr, PurposeMigrate, session, trace)
	if err != nil {
		return err
	}
	defer pc.close()
	// A checkpoint image can be large; give the whole transfer a wider
	// window than a single control round-trip.
	pc.c.SetDeadline(time.Now().Add(4 * c.timeout))
	if err := WriteState(pc.c, st); err != nil {
		return fmt.Errorf("cluster: migrating %s to %s: %w", session, m.Name, err)
	}
	if _, err := readAck(pc.br); err != nil {
		return fmt.Errorf("cluster: migrating %s to %s: %w", session, m.Name, err)
	}
	return nil
}

// Close drops every cached control connection.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for addr, pc := range c.control {
		pc.close()
		delete(c.control, addr)
	}
}

// ReplStream is a primary's live replication stream for one session.
// Not safe for concurrent use; the server serializes sends through the
// session slot.
type ReplStream struct {
	pc      *peerConn
	session string
	// Target is the member the stream is attached to.
	Target Member
}

// OpenReplStream attaches a replication stream for session to a peer and
// completes the initial state sync: the peer resets any previous replica
// of the session and installs st. The single ack after the sync barrier
// confirms the replica is caught up.
func (c *Client) OpenReplStream(m Member, session string, st SessionState) (*ReplStream, error) {
	pc, err := c.hello(m.PeerAddr, PurposeReplicate, session, "")
	if err != nil {
		return nil, err
	}
	pc.c.SetDeadline(time.Now().Add(4 * c.timeout))
	if err := WriteState(pc.c, st); err != nil {
		pc.close()
		return nil, fmt.Errorf("cluster: replica sync of %s to %s: %w", session, m.Name, err)
	}
	if _, err := readAck(pc.br); err != nil {
		pc.close()
		return nil, fmt.Errorf("cluster: replica sync of %s to %s: %w", session, m.Name, err)
	}
	return &ReplStream{pc: pc, session: session, Target: m}, nil
}

// SendRecord streams one WAL record; the returned ack makes it durable
// on the replica per that node's fsync policy. trace, when non-empty,
// carries the producing request's trace context so the replica's apply
// work joins the distributed trace.
func (r *ReplStream) SendRecord(rec *wal.Record, trace string) error {
	_, err := r.pc.send(frameRecord, recordEnvelope{Record: *rec, Trace: trace})
	return err
}

// SendCheckpoint installs a fresh checkpoint image on the replica.
func (r *ReplStream) SendCheckpoint(image []byte) error {
	_, err := r.pc.send(frameCheckpoint, image)
	return err
}

// SendReset truncates the replica's log — the records are covered by the
// checkpoint just sent.
func (r *ReplStream) SendReset() error {
	_, err := r.pc.send(frameReset, nil)
	return err
}

// Close tears the stream down.
func (r *ReplStream) Close() { r.pc.close() }
