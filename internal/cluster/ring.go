package cluster

import (
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring with virtual nodes. Each member owns
// VNodes points on a 64-bit circle; a key belongs to the member owning
// the first point at or after the key's hash. The useful property for
// failover is the *preference order*: walking the circle from the key's
// point yields every member exactly once, and removing a member from
// consideration reassigns only its keys — each to the next distinct
// member in its order, which is exactly where that key's replica is
// placed (see internal/server's replica targeting).
//
// A Ring is immutable after New; liveness is layered on top by filtering
// the preference order through Membership, never by rebuilding the ring,
// so two nodes with the same member list always agree on the order.
type Ring struct {
	points  []uint64 // sorted vnode hash points
	owners  []string // owners[i] owns points[i]
	members []string // distinct member names, sorted
}

// NewRing builds the ring over the given member names.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	r := &Ring{members: append([]string(nil), members...)}
	sort.Strings(r.members)
	type pt struct {
		h     uint64
		owner string
	}
	pts := make([]pt, 0, len(members)*vnodes)
	var buf [8]byte
	for _, m := range r.members {
		for i := 0; i < vnodes; i++ {
			h := fnv.New64a()
			h.Write([]byte(m))
			buf[0] = '#'
			buf[1] = byte(i)
			buf[2] = byte(i >> 8)
			h.Write(buf[:3])
			pts = append(pts, pt{h.Sum64(), m})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].h != pts[j].h {
			return pts[i].h < pts[j].h
		}
		return pts[i].owner < pts[j].owner
	})
	r.points = make([]uint64, len(pts))
	r.owners = make([]string, len(pts))
	for i, p := range pts {
		r.points[i] = p.h
		r.owners[i] = p.owner
	}
	return r
}

// Members returns the distinct member names, sorted.
func (r *Ring) Members() []string { return r.members }

func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}

// Owner returns the member owning key with every member considered live.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i] >= hashKey(key) })
	if i == len(r.points) {
		i = 0
	}
	return r.owners[i]
}

// Order returns every member exactly once, in the key's ring-walk
// preference order: Order(key)[0] is the owner, and if the first k
// members are all unavailable, Order(key)[k] is the deterministic
// fallback every node agrees on.
func (r *Ring) Order(key string) []string {
	out := make([]string, 0, len(r.members))
	if len(r.points) == 0 {
		return out
	}
	seen := make(map[string]bool, len(r.members))
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i] >= hashKey(key) })
	for i := 0; i < len(r.points) && len(out) < len(r.members); i++ {
		owner := r.owners[(start+i)%len(r.points)]
		if !seen[owner] {
			seen[owner] = true
			out = append(out, owner)
		}
	}
	return out
}
