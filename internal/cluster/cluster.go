// Package cluster turns a set of paruleld processes into one logical
// rule-serving service. Sessions — not requests — are the unit of
// distribution, following the PARULEL/PARADISER framing (PAPERS.md):
// each session's rule execution stays local to one node, where the
// matcher's shared-memory parallelism applies, and the cluster scales by
// spreading *sessions* across nodes.
//
// The package provides the node-agnostic mechanics:
//
//   - a consistent-hash ring with virtual nodes mapping session ids to a
//     deterministic preference order of members (ring.go);
//   - static membership with failure detection by periodic pings
//     (membership.go);
//   - a length-prefixed framed wire protocol spoken on a dedicated peer
//     listener, carrying WAL records, checkpoint images, migrations and
//     control traffic (proto.go, server.go, client.go);
//   - session-state streaming — a checkpoint image plus the WAL tail
//     behind it — used identically by replica attachment and live
//     migration (state.go).
//
// The server-side policy (who owns a session, when to proxy, when to
// promote a replica) lives in internal/server, which implements the
// Backend interface; this package never touches the session pool.
package cluster

import (
	"fmt"
	"net"
	"strings"
	"time"
)

// Member is one static cluster member.
type Member struct {
	// Name is the member's unique cluster-wide identity.
	Name string `json:"name"`
	// PeerAddr is the host:port of the member's peer protocol listener.
	PeerAddr string `json:"peer_addr"`
	// PublicURL is the base URL of the member's public HTTP API, used for
	// proxying and 307 redirects.
	PublicURL string `json:"public_url"`
}

// Replication ack policies.
const (
	// ReplSync acknowledges a mutation to the client only after the
	// replica node applied it: a node death loses no acked mutation.
	ReplSync = "sync"
	// ReplAsync streams WAL records to the replica without waiting;
	// a node death may lose the records still in flight.
	ReplAsync = "async"
	// ReplOff disables replication; failover serves only what migration
	// moved explicitly.
	ReplOff = "off"
)

// Config tunes a node's view of the cluster. Zero values select the
// documented defaults.
type Config struct {
	// Node is this process's member name; it must appear in Members.
	Node string
	// Members is the full static member list, including this node.
	Members []Member
	// PeerAddr overrides the listen address for the peer protocol;
	// empty uses this node's Members entry.
	PeerAddr string
	// PeerListener, when set, is used instead of listening on PeerAddr
	// (test and embedding hook).
	PeerListener net.Listener
	// Replication selects the WAL streaming ack policy: ReplSync (the
	// default), ReplAsync or ReplOff.
	Replication string
	// Redirect answers requests for remote sessions with 307 redirects
	// instead of proxying them to the owner.
	Redirect bool
	// PingInterval is the peer health-check period. Default 250ms.
	PingInterval time.Duration
	// SuspectAfter is how many consecutive ping failures mark a peer
	// down. Default 3.
	SuspectAfter int
	// IOTimeout bounds every peer-connection read and write. Default 5s.
	IOTimeout time.Duration
	// VNodes is the virtual-node count per member on the hash ring.
	// Default 64.
	VNodes int
}

// WithDefaults returns cfg with zero values resolved.
func (c Config) WithDefaults() Config {
	if c.Replication == "" {
		c.Replication = ReplSync
	}
	if c.PingInterval <= 0 {
		c.PingInterval = 250 * time.Millisecond
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 3
	}
	if c.IOTimeout <= 0 {
		c.IOTimeout = 5 * time.Second
	}
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	return c
}

// Validate checks the member list against this node's identity.
func (c Config) Validate() error {
	if c.Node == "" {
		return fmt.Errorf("cluster: node name is required")
	}
	if len(c.Members) < 2 {
		return fmt.Errorf("cluster: need at least 2 members, got %d", len(c.Members))
	}
	seen := make(map[string]bool, len(c.Members))
	self := false
	for _, m := range c.Members {
		switch {
		case m.Name == "":
			return fmt.Errorf("cluster: member with empty name")
		case m.PeerAddr == "":
			return fmt.Errorf("cluster: member %s has no peer address", m.Name)
		case m.PublicURL == "":
			return fmt.Errorf("cluster: member %s has no public URL", m.Name)
		case seen[m.Name]:
			return fmt.Errorf("cluster: duplicate member %s", m.Name)
		}
		seen[m.Name] = true
		if m.Name == c.Node {
			self = true
		}
	}
	if !self {
		return fmt.Errorf("cluster: node %q is not in the member list", c.Node)
	}
	switch c.Replication {
	case ReplSync, ReplAsync, ReplOff:
	default:
		return fmt.Errorf("cluster: unknown replication policy %q (want sync, async or off)", c.Replication)
	}
	return nil
}

// Self returns this node's member entry.
func (c Config) Self() Member {
	for _, m := range c.Members {
		if m.Name == c.Node {
			return m
		}
	}
	return Member{}
}

// MemberNamed returns the member with the given name.
func (c Config) MemberNamed(name string) (Member, bool) {
	for _, m := range c.Members {
		if m.Name == name {
			return m, true
		}
	}
	return Member{}, false
}

// ParseMembers parses a member-list flag of the form
// "name=peerHost:peerPort=publicURL,name=…". The public URL may itself
// contain '=' only in its query, which member specs do not use, so the
// split is on the first two '=' of each comma-separated entry.
func ParseMembers(spec string) ([]Member, error) {
	var out []Member
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.SplitN(part, "=", 3)
		if len(fields) != 3 {
			return nil, fmt.Errorf("cluster: bad member spec %q (want name=peerAddr=publicURL)", part)
		}
		out = append(out, Member{
			Name:      fields[0],
			PeerAddr:  fields[1],
			PublicURL: strings.TrimSuffix(fields[2], "/"),
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: empty member list")
	}
	return out, nil
}
