package cluster

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"parulel/internal/wal"
)

func TestRingOwnerAndOrder(t *testing.T) {
	members := []string{"n0", "n1", "n2"}
	r := NewRing(members, 64)

	counts := make(map[string]int)
	for i := 0; i < 3000; i++ {
		key := fmt.Sprintf("s-n0-%d", i)
		owner := r.Owner(key)
		counts[owner]++

		order := r.Order(key)
		if len(order) != len(members) {
			t.Fatalf("Order(%q) = %v: want every member exactly once", key, order)
		}
		seen := make(map[string]bool)
		for _, m := range order {
			if seen[m] {
				t.Fatalf("Order(%q) = %v repeats %s", key, order, m)
			}
			seen[m] = true
		}
		if order[0] != owner {
			t.Fatalf("Order(%q)[0] = %s, Owner = %s", key, order[0], owner)
		}
	}
	// With 64 vnodes each of 3 members should own a meaningful share; a
	// grossly imbalanced ring means the vnode hashing is broken.
	for _, m := range members {
		if counts[m] < 300 {
			t.Fatalf("member %s owns only %d/3000 keys: %v", m, counts[m], counts)
		}
	}
}

// TestRingAgreesAcrossInputOrder: two nodes building the ring from the
// same member set in different list orders must route identically.
func TestRingAgreesAcrossInputOrder(t *testing.T) {
	a := NewRing([]string{"n0", "n1", "n2"}, 32)
	b := NewRing([]string{"n2", "n0", "n1"}, 32)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("s-%d", i)
		if got, want := b.Owner(key), a.Owner(key); got != want {
			t.Fatalf("rings disagree on %q: %s vs %s", key, got, want)
		}
		if got, want := b.Order(key), a.Order(key); !reflect.DeepEqual(got, want) {
			t.Fatalf("orders disagree on %q: %v vs %v", key, got, want)
		}
	}
}

// TestRingFailoverIsSuccessor: the property internal/server's replica
// placement relies on — when a key's owner is excluded, the first live
// candidate is Order(key)[1], so placing the replica there makes failover
// land exactly on the replica holder.
func TestRingFailoverIsSuccessor(t *testing.T) {
	r := NewRing([]string{"n0", "n1", "n2", "n3"}, 64)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("s-%d", i)
		order := r.Order(key)
		down := order[0]
		first := ""
		for _, m := range order {
			if m != down {
				first = m
				break
			}
		}
		if first != order[1] {
			t.Fatalf("failover for %q landed on %s, replica is on %s", key, first, order[1])
		}
	}
}

func TestParseMembers(t *testing.T) {
	ms, err := ParseMembers("a=127.0.0.1:7467=http://h1:8467, b=127.0.0.1:7468=http://h2:8467/")
	if err != nil {
		t.Fatal(err)
	}
	want := []Member{
		{Name: "a", PeerAddr: "127.0.0.1:7467", PublicURL: "http://h1:8467"},
		{Name: "b", PeerAddr: "127.0.0.1:7468", PublicURL: "http://h2:8467"},
	}
	if !reflect.DeepEqual(ms, want) {
		t.Fatalf("got %+v, want %+v", ms, want)
	}
	for _, bad := range []string{"", "a=only-two-fields", "nameonly"} {
		if _, err := ParseMembers(bad); err == nil {
			t.Fatalf("ParseMembers(%q) accepted a bad spec", bad)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	members := []Member{
		{Name: "a", PeerAddr: ":1", PublicURL: "http://a"},
		{Name: "b", PeerAddr: ":2", PublicURL: "http://b"},
	}
	good := Config{Node: "a", Members: members}.WithDefaults()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []Config{
		{Node: "", Members: members},                                            // no identity
		{Node: "c", Members: members},                                           // not a member
		{Node: "a", Members: members[:1]},                                       // one node is not a cluster
		{Node: "a", Members: append([]Member{members[0]}, members[0])},          // duplicate
		{Node: "a", Members: members, Replication: "eventually-maybe"},          // bad policy
		{Node: "a", Members: []Member{{Name: "a", PublicURL: "x"}, members[1]}}, // missing peer addr
	}
	for i, c := range cases {
		if c.Replication == "" {
			c.Replication = ReplSync
		}
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d: invalid config accepted: %+v", i, c)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := map[byte][]byte{
		frameHello:   []byte(`{"node":"a","purpose":"control"}`),
		frameRecord:  []byte(`{"seq":7}`),
		frameCutover: nil,
	}
	for typ, p := range payloads {
		if err := WriteFrame(&buf, typ, p); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < len(payloads); i++ {
		typ, p, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		want := payloads[typ]
		if !bytes.Equal(p, want) && !(len(p) == 0 && len(want) == 0) {
			t.Fatalf("frame %c payload %q, want %q", typ, p, want)
		}
	}
}

// TestStateRoundTrip: WriteState → ReadState reproduces the session state
// exactly, including a mid-stream Reset discarding earlier records.
func TestStateRoundTrip(t *testing.T) {
	st := SessionState{
		Checkpoint: []byte("checkpoint-image-bytes"),
		Tail: []wal.Record{
			{Seq: 5, Op: wal.OpAssert, Template: "item"},
			{Seq: 6, Op: wal.OpRun, Count: 3},
		},
	}
	var pipe bytes.Buffer
	if err := WriteState(&pipe, st); err != nil {
		t.Fatal(err)
	}
	got, err := ReadState(&pipe)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Checkpoint, st.Checkpoint) {
		t.Fatalf("checkpoint image differs: %q vs %q", got.Checkpoint, st.Checkpoint)
	}
	if !reflect.DeepEqual(got.Tail, st.Tail) {
		t.Fatalf("tail differs:\n got %+v\nwant %+v", got.Tail, st.Tail)
	}

	// A Reset frame mid-stream discards everything read so far.
	var buf bytes.Buffer
	if err := writeJSONFrame(&buf, frameRecord, &wal.Record{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, frameReset, nil); err != nil {
		t.Fatal(err)
	}
	if err := WriteState(&buf, SessionState{Tail: []wal.Record{{Seq: 9}}}); err != nil {
		t.Fatal(err)
	}
	got, err = ReadState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tail) != 1 || got.Tail[0].Seq != 9 {
		t.Fatalf("reset not honored: %+v", got.Tail)
	}
}
