package cluster

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"parulel/internal/wal"
)

// The peer wire protocol is a stream of typed, length-prefixed frames:
//
//	[1 byte frame type][uint32 LE payload length][payload]
//
// carried over a plain TCP connection. A connection opens with one Hello
// frame naming its purpose and then speaks that purpose's sub-protocol:
//
//	control    one Ping, Moved or DropReplica frame per request, each
//	           answered with an Ack; the connection is reused.
//	replicate  a session-state sync (Checkpoint? Record* Cutover) that is
//	           applied silently and acked once at the Cutover barrier,
//	           then live streaming where every Record/Checkpoint/Reset
//	           frame is acked individually — the ack is what makes
//	           replication synchronous.
//	migrate    a session-state sync (Checkpoint? Record* Cutover); the
//	           single ack after Cutover reports whether the receiving
//	           node installed and activated the session.
//
// Payloads are JSON except Checkpoint, whose payload is the raw
// checkpoint file image (already framed and checksummed by
// internal/checkpoint). Record payloads are wal.Record JSON with the
// primary's sequence numbers preserved; the replica's log keeps them so
// a promoted replica recovers exactly like a crashed primary.
const (
	frameHello      = 'H'
	frameRecord     = 'R'
	frameCheckpoint = 'C'
	frameReset      = 'T' // truncate the replica log; pairs with Checkpoint
	frameCutover    = 'V' // end of a session-state sync
	framePing       = 'P'
	frameMoved      = 'M'
	frameDrop       = 'D'
	frameAck        = 'A'
)

// maxFrameBytes bounds one frame payload. Checkpoint images are the
// largest legitimate payload (a full working-memory snapshot).
const maxFrameBytes = 256 << 20

// Stream purposes named in Hello frames.
const (
	PurposeControl   = "control"
	PurposeReplicate = "replicate"
	PurposeMigrate   = "migrate"
)

// Hello opens a peer connection.
type Hello struct {
	Node    string `json:"node"`
	Purpose string `json:"purpose"`
	// Session scopes replicate and migrate streams.
	Session string `json:"session,omitempty"`
	// Trace carries the distributed-trace context (obs.TraceContext
	// string form) of the request that opened the stream, so a migration
	// triggered by a traced POST /cluster/move shows up in the assembled
	// trace. Additive: absent on the wire from older nodes.
	Trace string `json:"trace,omitempty"`
}

// Ping is a control heartbeat. It piggybacks the sender's route-override
// table so nodes that were down when a migration was broadcast converge
// on the same routing once they are pinged again.
type Ping struct {
	Node      string  `json:"node"`
	Overrides []Moved `json:"overrides,omitempty"`
}

// Moved records that a session's ownership was explicitly transferred —
// by an admin move or by a replica promotion — overriding the hash
// placement. Seq orders competing claims: highest wins.
type Moved struct {
	Session string `json:"session"`
	Target  string `json:"target"`
	Seq     uint64 `json:"seq"`
}

// Drop asks a node to discard its replica of a session whose replication
// stream now originates elsewhere.
type Drop struct {
	Session string `json:"session"`
}

// Ack answers a frame. Seq echoes the WAL sequence number for record
// acks (0 otherwise); a non-empty Err reports the failure and usually
// precedes the server closing the connection.
type Ack struct {
	Seq uint64 `json:"seq,omitempty"`
	Err string `json:"err,omitempty"`
}

// WriteFrame writes one frame.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// writeJSONFrame marshals v and writes it as one frame of the given type.
func writeJSONFrame(w io.Writer, typ byte, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("cluster: encoding %c frame: %w", typ, err)
	}
	return WriteFrame(w, typ, payload)
}

// ReadFrame reads one frame, bounding the payload size.
func ReadFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > maxFrameBytes {
		return 0, nil, fmt.Errorf("cluster: frame of %d bytes exceeds the %d limit", n, maxFrameBytes)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("cluster: truncated %c frame: %w", hdr[0], err)
	}
	return hdr[0], payload, nil
}

// readAck reads one frame and requires it to be an Ack; a non-empty
// Ack.Err is surfaced as an error.
func readAck(r io.Reader) (Ack, error) {
	typ, payload, err := ReadFrame(r)
	if err != nil {
		return Ack{}, err
	}
	if typ != frameAck {
		return Ack{}, fmt.Errorf("cluster: expected ack, got %c frame", typ)
	}
	var a Ack
	if err := json.Unmarshal(payload, &a); err != nil {
		return Ack{}, fmt.Errorf("cluster: decoding ack: %w", err)
	}
	if a.Err != "" {
		return a, fmt.Errorf("cluster: peer error: %s", a.Err)
	}
	return a, nil
}

// recordEnvelope is a Record frame payload: the WAL record's own JSON
// plus an optional trace context for the mutation that produced it. The
// extra field is additive — a node that predates it simply ignores it —
// and it is stripped before the record reaches the replica's log.
type recordEnvelope struct {
	wal.Record
	Trace string `json:"trace,omitempty"`
}

// decodeRecord decodes a Record frame payload, returning the record and
// the sender's trace context (empty for untraced mutations).
func decodeRecord(payload []byte) (*wal.Record, string, error) {
	var env recordEnvelope
	if err := json.Unmarshal(payload, &env); err != nil {
		return nil, "", fmt.Errorf("cluster: decoding record frame: %w", err)
	}
	return &env.Record, env.Trace, nil
}

// ErrStreamClosed reports an orderly remote close of a peer stream.
var ErrStreamClosed = errors.New("cluster: peer closed the stream")
