package cluster

import (
	"sync"
	"time"
)

// Membership tracks which static members are currently reachable. Every
// peer is pinged on a fixed interval; SuspectAfter consecutive failures
// mark it down, one success marks it up again. Data-path failures
// (refused proxy or replication connections) feed in via ReportFailure
// so a dead node is routed around before the ping loop notices.
//
// The local node is always up. Liveness is advisory: routing filters the
// ring's deterministic preference order through it, so a wrong verdict
// costs a proxy hop or a 503, never a wrong owner forever.
type Membership struct {
	self    string
	suspect int

	mu    sync.Mutex
	state map[string]*peerState

	stop chan struct{}
	done chan struct{}
}

type peerState struct {
	member Member
	up     bool
	fails  int
	since  time.Time // when the current up/down verdict was reached
}

// PeerStatus is one member's liveness for status endpoints.
type PeerStatus struct {
	Name      string `json:"name"`
	PeerAddr  string `json:"peer_addr"`
	PublicURL string `json:"public_url"`
	Self      bool   `json:"self"`
	Up        bool   `json:"up"`
	SinceMS   int64  `json:"since_ms"` // how long the verdict has held
}

// NewMembership builds the tracker; every member starts up so a booting
// cluster does not route around peers that have not been pinged yet.
func NewMembership(cfg Config) *Membership {
	m := &Membership{
		self:    cfg.Node,
		suspect: cfg.SuspectAfter,
		state:   make(map[string]*peerState, len(cfg.Members)),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	now := time.Now()
	for _, mem := range cfg.Members {
		m.state[mem.Name] = &peerState{member: mem, up: true, since: now}
	}
	return m
}

// Start launches the ping loop. ping performs one health check against a
// peer and reports its result; it must be safe for concurrent use.
func (m *Membership) Start(interval time.Duration, ping func(Member) error) {
	go func() {
		defer close(m.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-t.C:
				var wg sync.WaitGroup
				for _, mem := range m.peers() {
					wg.Add(1)
					go func(mem Member) {
						defer wg.Done()
						if err := ping(mem); err != nil {
							m.ReportFailure(mem.Name)
						} else {
							m.ReportSuccess(mem.Name)
						}
					}(mem)
				}
				wg.Wait()
			}
		}
	}()
}

// Stop ends the ping loop.
func (m *Membership) Stop() {
	select {
	case <-m.stop:
	default:
		close(m.stop)
	}
	<-m.done
}

func (m *Membership) peers() []Member {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Member, 0, len(m.state)-1)
	for name, st := range m.state {
		if name != m.self {
			out = append(out, st.member)
		}
	}
	return out
}

// ReportFailure counts one failed interaction with a peer; SuspectAfter
// of them in a row mark it down.
func (m *Membership) ReportFailure(name string) {
	if name == m.self {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.state[name]
	if !ok {
		return
	}
	st.fails++
	if st.up && st.fails >= m.suspect {
		st.up = false
		st.since = time.Now()
	}
}

// ReportSuccess counts one successful interaction with a peer, clearing
// its failure streak and marking it up. An incoming ping is evidence too.
func (m *Membership) ReportSuccess(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.state[name]
	if !ok {
		return
	}
	st.fails = 0
	if !st.up {
		st.up = true
		st.since = time.Now()
	}
}

// Up reports whether the member is currently considered reachable.
func (m *Membership) Up(name string) bool {
	if name == m.self {
		return true
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.state[name]
	return ok && st.up
}

// FirstUp returns the first member of the preference order that is up,
// or "" when every candidate is down.
func (m *Membership) FirstUp(order []string) string {
	for _, name := range order {
		if m.Up(name) {
			return name
		}
	}
	return ""
}

// UpCount returns how many members (including self) are up.
func (m *Membership) UpCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for name, st := range m.state {
		if name == m.self || st.up {
			n++
		}
	}
	return n
}

// Snapshot renders every member's status, sorted by name.
func (m *Membership) Snapshot() []PeerStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := time.Now()
	out := make([]PeerStatus, 0, len(m.state))
	for name, st := range m.state {
		out = append(out, PeerStatus{
			Name:      name,
			PeerAddr:  st.member.PeerAddr,
			PublicURL: st.member.PublicURL,
			Self:      name == m.self,
			Up:        name == m.self || st.up,
			SinceMS:   now.Sub(st.since).Milliseconds(),
		})
	}
	// Small list; insertion sort keeps the import set lean.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Name < out[j-1].Name; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
