package cluster

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"time"

	"parulel/internal/wal"
)

// Backend is the node-side policy the peer server delegates to; it is
// implemented by internal/server, which owns the session pool and the
// on-disk stores. Methods must be safe for concurrent use.
type Backend interface {
	// OpenReplica opens the replica store for a session, discarding any
	// previous replica state — a new stream always begins with a full
	// state sync.
	OpenReplica(session string) (Replica, error)
	// InstallMigrated writes a transferred session's state into the local
	// session store and activates it. A non-nil error refuses the cutover
	// and must leave no trace of the session behind. trace is the moving
	// request's trace context (may be empty).
	InstallMigrated(session string, st SessionState, trace string) error
	// HandleMoved merges one routing override learned from a peer.
	HandleMoved(m Moved)
	// HandlePing merges the pinging node's override table.
	HandlePing(p Ping)
	// DropReplica discards the local replica of a session (its
	// replication stream now originates elsewhere, or it migrated away).
	DropReplica(session string) error
}

// Replica is a follower's handle on one session's replica store.
type Replica interface {
	// AppendRecord appends one primary WAL record, preserving its
	// sequence number. trace is the producing request's trace context
	// (obs.TraceContext string form; empty for untraced mutations).
	AppendRecord(rec *wal.Record, trace string) error
	// PutCheckpoint atomically replaces the replica's checkpoint image.
	PutCheckpoint(image []byte) error
	// Reset truncates the replica's log (covered by the checkpoint).
	Reset() error
	// Close releases file handles, keeping the replica on disk.
	Close() error
}

// PeerServer speaks the peer protocol's receiving side.
type PeerServer struct {
	ln      net.Listener
	backend Backend
	timeout time.Duration
	log     *slog.Logger

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewPeerServer wraps an accepted listener. Call Serve (usually in a
// goroutine) to start accepting and Close to stop.
func NewPeerServer(ln net.Listener, backend Backend, ioTimeout time.Duration, logger *slog.Logger) *PeerServer {
	if ioTimeout <= 0 {
		ioTimeout = 5 * time.Second
	}
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return &PeerServer{
		ln:      ln,
		backend: backend,
		timeout: ioTimeout,
		log:     logger,
		conns:   make(map[net.Conn]struct{}),
	}
}

// Addr returns the listener's address.
func (s *PeerServer) Addr() net.Addr { return s.ln.Addr() }

// Serve accepts peer connections until the listener closes.
func (s *PeerServer) Serve() {
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handle(c)
			s.mu.Lock()
			delete(s.conns, c)
			s.mu.Unlock()
		}()
	}
}

// Close stops accepting, force-closes live peer connections and waits
// for their handlers.
func (s *PeerServer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func ack(w io.Writer, a Ack) error { return writeJSONFrame(w, frameAck, a) }

func ackErr(w io.Writer, err error) {
	_ = ack(w, Ack{Err: err.Error()})
}

func (s *PeerServer) handle(c net.Conn) {
	defer c.Close()
	br := bufio.NewReader(c)
	c.SetDeadline(time.Now().Add(s.timeout))
	typ, payload, err := ReadFrame(br)
	if err != nil {
		return
	}
	if typ != frameHello {
		ackErr(c, fmt.Errorf("expected hello, got %c frame", typ))
		return
	}
	var h Hello
	if err := json.Unmarshal(payload, &h); err != nil {
		ackErr(c, fmt.Errorf("bad hello: %v", err))
		return
	}
	switch h.Purpose {
	case PurposeControl, PurposeReplicate, PurposeMigrate:
	default:
		ackErr(c, fmt.Errorf("unknown purpose %q", h.Purpose))
		return
	}
	if (h.Purpose == PurposeReplicate || h.Purpose == PurposeMigrate) && h.Session == "" {
		ackErr(c, errors.New("purpose requires a session"))
		return
	}
	if err := ack(c, Ack{}); err != nil {
		return
	}
	switch h.Purpose {
	case PurposeControl:
		s.serveControl(c, br)
	case PurposeReplicate:
		s.serveReplicate(c, br, h)
	case PurposeMigrate:
		s.serveMigrate(c, br, h)
	}
}

// serveControl answers ping/moved/drop frames until the peer hangs up.
// Control connections are long-lived (the client caches them), so each
// read waits well past the ping interval before giving up.
func (s *PeerServer) serveControl(c net.Conn, br *bufio.Reader) {
	for {
		c.SetDeadline(time.Now().Add(10 * time.Minute))
		typ, payload, err := ReadFrame(br)
		if err != nil {
			return
		}
		c.SetDeadline(time.Now().Add(s.timeout))
		switch typ {
		case framePing:
			var p Ping
			if err := json.Unmarshal(payload, &p); err != nil {
				ackErr(c, err)
				return
			}
			s.backend.HandlePing(p)
			if err := ack(c, Ack{}); err != nil {
				return
			}
		case frameMoved:
			var m Moved
			if err := json.Unmarshal(payload, &m); err != nil {
				ackErr(c, err)
				return
			}
			s.backend.HandleMoved(m)
			if err := ack(c, Ack{}); err != nil {
				return
			}
		case frameDrop:
			var d Drop
			if err := json.Unmarshal(payload, &d); err != nil {
				ackErr(c, err)
				return
			}
			if err := s.backend.DropReplica(d.Session); err != nil {
				ackErr(c, err)
				return
			}
			if err := ack(c, Ack{}); err != nil {
				return
			}
		default:
			ackErr(c, fmt.Errorf("unexpected %c frame on control stream", typ))
			return
		}
	}
}

// serveReplicate applies a session's replication stream: a silent state
// sync up to the Cutover barrier (acked once), then individually acked
// live frames until the primary hangs up.
func (s *PeerServer) serveReplicate(c net.Conn, br *bufio.Reader, h Hello) {
	rep, err := s.backend.OpenReplica(h.Session)
	if err != nil {
		ackErr(c, err)
		return
	}
	defer rep.Close()
	synced := false
	for {
		// Live streams idle between mutations; only the sync phase is
		// held to the tighter transfer deadline.
		if synced {
			c.SetDeadline(time.Now().Add(10 * time.Minute))
		} else {
			c.SetDeadline(time.Now().Add(4 * s.timeout))
		}
		typ, payload, err := ReadFrame(br)
		if err != nil {
			return
		}
		c.SetDeadline(time.Now().Add(s.timeout))
		var seq uint64
		switch typ {
		case frameRecord:
			rec, trace, derr := decodeRecord(payload)
			if derr == nil {
				seq = rec.Seq
				derr = rep.AppendRecord(rec, trace)
			}
			err = derr
		case frameCheckpoint:
			err = rep.PutCheckpoint(payload)
		case frameReset:
			err = rep.Reset()
		case frameCutover:
			synced = true
			err = ack(c, Ack{})
			if err != nil {
				return
			}
			continue
		default:
			err = fmt.Errorf("unexpected %c frame on replication stream", typ)
		}
		if err != nil {
			s.log.Warn("replication stream failed", "session", h.Session, "node", h.Node, "err", err)
			ackErr(c, err)
			return
		}
		if synced {
			if err := ack(c, Ack{Seq: seq}); err != nil {
				return
			}
		}
	}
}

// serveMigrate receives one session's state and installs it; the single
// ack after Cutover is the cutover decision.
func (s *PeerServer) serveMigrate(c net.Conn, br *bufio.Reader, h Hello) {
	c.SetDeadline(time.Now().Add(4 * s.timeout))
	st, err := ReadState(br)
	if err != nil {
		s.log.Warn("migration transfer failed", "session", h.Session, "node", h.Node, "err", err)
		ackErr(c, err)
		return
	}
	c.SetDeadline(time.Now().Add(4 * s.timeout))
	if err := s.backend.InstallMigrated(h.Session, st, h.Trace); err != nil {
		s.log.Warn("migration install refused", "session", h.Session, "node", h.Node, "err", err)
		ackErr(c, err)
		return
	}
	s.log.Info("session migrated in", "session", h.Session, "from", h.Node)
	_ = ack(c, Ack{})
}
