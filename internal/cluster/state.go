package cluster

import (
	"fmt"
	"io"

	"parulel/internal/wal"
)

// SessionState is one session's transferable durable state: the newest
// checkpoint image (nil when the session has never checkpointed) plus
// the WAL records behind it, sequence numbers preserved. Writing it to a
// directory and running the standard recovery path reproduces the
// session byte-identically — migration and replica attachment are both
// "recovery over the wire".
type SessionState struct {
	// Checkpoint is the raw checkpoint file image, or nil.
	Checkpoint []byte
	// Tail is every WAL record not covered by the checkpoint, in order.
	Tail []wal.Record
}

// WriteState streams st as Checkpoint? Record* Cutover frames. It writes
// blind — no acks are read — so it works over any io.Writer, including
// one half of an io.Pipe; callers speaking the peer protocol read the
// sync ack after the Cutover frame themselves.
func WriteState(w io.Writer, st SessionState) error {
	if st.Checkpoint != nil {
		if err := WriteFrame(w, frameCheckpoint, st.Checkpoint); err != nil {
			return err
		}
	}
	for i := range st.Tail {
		if err := writeJSONFrame(w, frameRecord, &st.Tail[i]); err != nil {
			return err
		}
	}
	return WriteFrame(w, frameCutover, nil)
}

// ReadState consumes frames until the Cutover marker and reassembles the
// session state. A Reset frame mid-stream discards the records read so
// far (the sender checkpointed while streaming; only legal before any
// live traffic, which WriteState never produces, but tolerated for
// symmetry with the replicate sub-protocol).
func ReadState(r io.Reader) (SessionState, error) {
	var st SessionState
	for {
		typ, payload, err := ReadFrame(r)
		if err != nil {
			return st, err
		}
		switch typ {
		case frameCheckpoint:
			st.Checkpoint = payload
		case frameRecord:
			rec, _, err := decodeRecord(payload)
			if err != nil {
				return st, err
			}
			st.Tail = append(st.Tail, *rec)
		case frameReset:
			st.Tail = st.Tail[:0]
		case frameCutover:
			return st, nil
		default:
			return st, fmt.Errorf("cluster: unexpected %c frame in state stream", typ)
		}
	}
}
