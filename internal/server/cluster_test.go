package server

// Cluster-mode coverage: an in-process multi-node harness (pre-bound peer
// listeners, real TCP between nodes), ownership routing by proxy and by
// redirect, synchronous WAL replication with replica promotion after a
// node kill, live migration via the admin move endpoint, and the
// session-state stream round trip that both replication and migration
// ride on.

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"parulel/internal/cluster"
	"parulel/internal/wal"
)

// testCluster is n paruleld servers wired into one cluster over real
// loopback TCP, with per-node data directories.
type testCluster struct {
	t       *testing.T
	names   []string
	servers map[string]*Server
	https   map[string]*httptest.Server
	dirs    map[string]string
	killed  map[string]bool
}

// newTestCluster boots n nodes. mutate, when non-nil, adjusts each node's
// config (cfg.Cluster is set and shared-defaults applied afterwards).
func newTestCluster(t *testing.T, n int, mutate func(name string, cfg *Config)) *testCluster {
	t.Helper()
	tc := &testCluster{
		t:       t,
		servers: make(map[string]*Server),
		https:   make(map[string]*httptest.Server),
		dirs:    make(map[string]string),
		killed:  make(map[string]bool),
	}
	peerLns := make([]net.Listener, n)
	pubs := make([]*httptest.Server, n)
	members := make([]cluster.Member, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("n%d", i)
		tc.names = append(tc.names, name)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		peerLns[i] = ln
		pubs[i] = httptest.NewUnstartedServer(http.NotFoundHandler())
		members[i] = cluster.Member{
			Name:      name,
			PeerAddr:  ln.Addr().String(),
			PublicURL: "http://" + pubs[i].Listener.Addr().String(),
		}
	}
	for i, name := range tc.names {
		dir := t.TempDir()
		cfg := Config{
			DataDir: dir,
			Fsync:   wal.PolicyAlways,
			Cluster: &cluster.Config{
				Node:         name,
				Members:      members,
				PeerListener: peerLns[i],
				PingInterval: 50 * time.Millisecond,
				SuspectAfter: 2,
			},
		}
		if mutate != nil {
			mutate(name, &cfg)
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		pubs[i].Config.Handler = s
		pubs[i].Start()
		tc.servers[name] = s
		tc.https[name] = pubs[i]
		tc.dirs[name] = dir
	}
	t.Cleanup(func() {
		for _, name := range tc.names {
			if tc.killed[name] {
				continue
			}
			tc.https[name].Close()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			_ = tc.servers[name].Close(ctx)
			cancel()
		}
	})
	return tc
}

func (tc *testCluster) url(name string) string { return tc.https[name].URL }

// kill simulates a node death: client connections dropped, public
// listener closed, peer listener and ping loop stopped — no drain.
func (tc *testCluster) kill(name string) {
	tc.t.Helper()
	tc.killed[name] = true
	tc.https[name].CloseClientConnections()
	tc.https[name].Close()
	tc.servers[name].stopCluster()
}

// waitSnapshot polls via the node until a request for the session succeeds,
// returning the response body of the first 200. Fails the test when the
// cluster does not converge within the deadline.
func (tc *testCluster) waitSnapshot(via, id string) string {
	tc.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var last string
	for time.Now().Before(deadline) {
		resp, err := http.Get(tc.url(via) + "/api/v1/sessions/" + id + "/snapshot")
		if err != nil {
			last = err.Error()
			time.Sleep(25 * time.Millisecond)
			continue
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return string(body)
		}
		last = fmt.Sprintf("status %d: %s", resp.StatusCode, body)
		time.Sleep(25 * time.Millisecond)
	}
	tc.t.Fatalf("session %s never became servable via %s: %s", id, via, last)
	return ""
}

// owner returns the node name that minted the session id (s-<node>-<n>).
func sessionHome(id string) string {
	parts := strings.Split(id, "-")
	if len(parts) < 3 {
		return ""
	}
	return strings.Join(parts[1:len(parts)-1], "-")
}

// TestClusterSessionPlacement: each node mints ids it owns, and every
// node agrees on the owner.
func TestClusterSessionPlacement(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	for _, name := range tc.names {
		info := createSession(t, tc.url(name), createSessionRequest{Source: recoverySrc})
		if home := sessionHome(info.ID); home != name {
			t.Fatalf("session %q minted on %s claims home %q", info.ID, name, home)
		}
		for _, other := range tc.names {
			cs := tc.servers[other].cluster
			if got := cs.ring.Owner(info.ID); got != name {
				t.Fatalf("node %s thinks %s owns %q; %s minted it", other, got, info.ID, name)
			}
		}
	}
}

// TestClusterProxyAndRedirect: a non-owner proxies by default and 307
// redirects when configured; the owner serves locally either way.
func TestClusterProxyAndRedirect(t *testing.T) {
	tc := newTestCluster(t, 3, func(name string, cfg *Config) {
		if name == "n1" {
			cfg.Cluster.Redirect = true
		}
	})
	info := createSession(t, tc.url("n0"), createSessionRequest{Source: recoverySrc})
	urlOwner := tc.url("n0") + "/api/v1/sessions/" + info.ID
	assertTasks(t, urlOwner, 0, 3)
	runSession(t, urlOwner)
	want := exportSnapshot(t, urlOwner)

	// n2 proxies to the owner transparently.
	if got := exportSnapshot(t, tc.url("n2")+"/api/v1/sessions/"+info.ID); got != want {
		t.Fatalf("proxied snapshot differs:\n-- got --\n%s\n-- want --\n%s", got, want)
	}
	var m metricsPayload
	if st := call(t, "GET", tc.url("n2")+"/metrics", nil, &m); st != http.StatusOK {
		t.Fatalf("metrics: status %d", st)
	}
	if m.Cluster == nil || m.Cluster.Proxied == 0 {
		t.Fatalf("proxying not reflected in metrics: %+v", m.Cluster)
	}

	// n1 answers with a 307 naming the owner.
	noFollow := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := noFollow.Get(tc.url("n1") + "/api/v1/sessions/" + info.ID + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("redirect-mode node answered %d, want 307", resp.StatusCode)
	}
	loc := resp.Header.Get("Location")
	if !strings.HasPrefix(loc, tc.url("n0")) {
		t.Fatalf("redirect location %q does not point at the owner %s", loc, tc.url("n0"))
	}
	if got := exportSnapshot(t, strings.TrimSuffix(loc, "/snapshot")); got != want {
		t.Fatalf("redirected snapshot differs")
	}

	// Forwarded marker breaks loops: a request tagged as forwarded is
	// served locally even by a non-owner (here: 404, not a bounce).
	req, _ := http.NewRequest("GET", tc.url("n2")+"/api/v1/sessions/no-such-session", nil)
	req.Header.Set(forwardedHeader, "n0")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("forwarded request for unknown session: status %d, want 404", resp2.StatusCode)
	}

	// Cluster status reports all members up.
	var status struct {
		Members []cluster.PeerStatus `json:"members"`
	}
	if st := call(t, "GET", tc.url("n0")+"/cluster", nil, &status); st != http.StatusOK {
		t.Fatalf("cluster status: %d", st)
	}
	for _, ps := range status.Members {
		if !ps.Up {
			t.Fatalf("member %s reported down on a healthy cluster", ps.Name)
		}
	}
}

// TestClusterStateStreamRoundTrip: the migration/replication transport —
// checkpoint image plus WAL tail through an io.Pipe — reproduces a
// session byte-identically, including gensym values and time tags.
func TestClusterStateStreamRoundTrip(t *testing.T) {
	cfg := Config{DataDir: t.TempDir(), Fsync: wal.PolicyAlways, CheckpointEvery: 3}
	s, ts := newTestServer(t, cfg)
	info := createSession(t, ts.URL, createSessionRequest{Source: recoverySrc, Workers: 2})
	url := ts.URL + "/api/v1/sessions/" + info.ID
	driveSession(t, url) // 5 mutations: a checkpoint plus a live WAL tail
	wantSnap := exportSnapshot(t, url)
	wantInfo := getInfo(t, url)

	ctx := context.Background()
	sess, err := s.sessionByID(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	st, err := s.diskState(sess)
	sess.release()
	if err != nil {
		t.Fatal(err)
	}
	if st.Checkpoint == nil || len(st.Tail) == 0 {
		t.Fatalf("test premise broken: want checkpoint AND tail, got %d checkpoint bytes, %d tail records",
			len(st.Checkpoint), len(st.Tail))
	}

	// Stream through an io.Pipe — the same shape the peer protocol uses.
	pr, pw := io.Pipe()
	var got cluster.SessionState
	done := make(chan error, 1)
	go func() {
		var rerr error
		got, rerr = cluster.ReadState(pr)
		done <- rerr
	}()
	if err := cluster.WriteState(pw, st); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if string(got.Checkpoint) != string(st.Checkpoint) {
		t.Fatalf("checkpoint image changed in transit: %d vs %d bytes", len(got.Checkpoint), len(st.Checkpoint))
	}
	if !reflect.DeepEqual(got.Tail, st.Tail) {
		t.Fatalf("WAL tail changed in transit:\n got %+v\nwant %+v", got.Tail, st.Tail)
	}

	// Install the streamed state into a fresh data directory the way
	// InstallMigrated does, and serve it: the restored session must match
	// the original byte for byte (gensym ids and time tags included).
	dirB := t.TempDir()
	sessDir := filepath.Join(dirB, "sessions", info.ID)
	if err := os.MkdirAll(sessDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sessDir, checkpointFile), got.Checkpoint, 0o644); err != nil {
		t.Fatal(err)
	}
	l, _, err := wal.Open(filepath.Join(sessDir, walFile), wal.Options{Policy: wal.PolicyAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := range got.Tail {
		if err := l.AppendKeepSeq(&got.Tail[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, tsB := newTestServer(t, Config{DataDir: dirB, Fsync: wal.PolicyAlways})
	urlB := tsB.URL + "/api/v1/sessions/" + info.ID
	gotInfo := getInfo(t, urlB)
	if gotInfo.Cycles != wantInfo.Cycles || gotInfo.Firings != wantInfo.Firings ||
		gotInfo.Runs != wantInfo.Runs || gotInfo.WMSize != wantInfo.WMSize {
		t.Fatalf("restored counters differ:\n got %+v\nwant %+v", gotInfo, wantInfo)
	}
	if gotSnap := exportSnapshot(t, urlB); gotSnap != wantSnap {
		t.Fatalf("restored snapshot differs:\n-- got --\n%s\n-- want --\n%s", gotSnap, wantSnap)
	}
}

// TestClusterReplicationFailover: acked mutations survive the owner's
// death. The replica holder (the next member in the session's ring
// order) promotes its replica on the first request after the cluster
// marks the owner down, and serves the exact pre-kill state.
func TestClusterReplicationFailover(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	info := createSession(t, tc.url("n0"), createSessionRequest{Source: recoverySrc, Workers: 2})
	url := tc.url("n0") + "/api/v1/sessions/" + info.ID
	driveSession(t, url)
	want := exportSnapshot(t, url)

	// The replica must be on the session's ring successor.
	replicaOn := tc.servers["n0"].cluster.ring.Order(info.ID)[1]
	replDir := filepath.Join(tc.dirs[replicaOn], "replicas", info.ID)
	if _, err := os.Stat(filepath.Join(replDir, walFile)); err != nil {
		t.Fatalf("no replica on ring successor %s: %v", replicaOn, err)
	}

	tc.kill("n0")

	// Ask a node that does NOT hold the replica: it must route to the
	// promoted owner once failure detection converges.
	var via string
	for _, name := range tc.names {
		if name != "n0" && name != replicaOn {
			via = name
		}
	}
	if got := tc.waitSnapshot(via, info.ID); got != want {
		t.Fatalf("failover lost acked state:\n-- got --\n%s\n-- want --\n%s", got, want)
	}

	var m metricsPayload
	if st := call(t, "GET", tc.url(replicaOn)+"/metrics", nil, &m); st != http.StatusOK {
		t.Fatalf("metrics: status %d", st)
	}
	if m.Cluster == nil || m.Cluster.Promotions == 0 {
		t.Fatalf("promotion not reflected in %s's metrics: %+v", replicaOn, m.Cluster)
	}

	// The promoted session is a full primary: it accepts new mutations.
	newURL := tc.url(replicaOn) + "/api/v1/sessions/" + info.ID
	assertTasks(t, newURL, 100, 102)
	if run := runSession(t, newURL); run.Firings == 0 {
		t.Fatal("promoted session fired nothing on new facts")
	}
}

// TestClusterAdminMove: POST /cluster/move live-migrates a session; the
// move can be requested via any node, the state arrives byte-identical,
// and routing converges cluster-wide to the new owner.
func TestClusterAdminMove(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	info := createSession(t, tc.url("n0"), createSessionRequest{Source: recoverySrc, Workers: 2})
	url := tc.url("n0") + "/api/v1/sessions/" + info.ID
	driveSession(t, url)
	want := exportSnapshot(t, url)

	// Ask n1 (a non-owner) to move the session to n2: the request is
	// forwarded to the owner, which executes the transfer.
	var moved struct {
		Moved  bool   `json:"moved"`
		Target string `json:"target"`
	}
	if st := call(t, "POST", tc.url("n1")+"/cluster/move",
		map[string]string{"session": info.ID, "target": "n2"}, &moved); st != http.StatusOK {
		t.Fatalf("move: status %d", st)
	}
	if !moved.Moved || moved.Target != "n2" {
		t.Fatalf("unexpected move result: %+v", moved)
	}

	// The old owner no longer holds the session's files.
	if _, err := os.Stat(filepath.Join(tc.dirs["n0"], "sessions", info.ID)); !os.IsNotExist(err) {
		t.Fatalf("old owner kept the migrated session's files: %v", err)
	}
	// The new owner serves the identical state — via itself and via the
	// old owner (which now proxies).
	for _, via := range []string{"n2", "n0"} {
		if got := tc.waitSnapshot(via, info.ID); got != want {
			t.Fatalf("migrated snapshot differs via %s", via)
		}
	}
	// Routing reflects the override everywhere.
	for _, name := range []string{"n0", "n1", "n2"} {
		var status struct {
			Route clusterRoute `json:"route"`
		}
		if st := call(t, "GET", tc.url(name)+"/cluster?session="+info.ID, nil, &status); st != http.StatusOK {
			t.Fatalf("cluster status via %s: %d", name, st)
		}
		if status.Route.Owner != "n2" || !status.Route.Overridden {
			t.Fatalf("node %s routes %q to %+v, want overridden owner n2", name, info.ID, status.Route)
		}
	}
	// The moved session keeps working and keeps replicating: mutations
	// accepted by n2 re-attach a replica on another node.
	newURL := tc.url("n2") + "/api/v1/sessions/" + info.ID
	assertTasks(t, newURL, 50, 53)
	if run := runSession(t, newURL); run.Firings == 0 {
		t.Fatal("migrated session fired nothing on new facts")
	}
	var m metricsPayload
	if st := call(t, "GET", tc.url("n2")+"/metrics", nil, &m); st != http.StatusOK {
		t.Fatalf("metrics: status %d", st)
	}
	if m.Cluster == nil || m.Cluster.MigrationsIn == 0 || m.Cluster.ReplStreams == 0 {
		t.Fatalf("migration/replication not reflected in n2's metrics: %+v", m.Cluster)
	}

	// Moving a session that does not exist 404s.
	if st := call(t, "POST", tc.url("n0")+"/cluster/move",
		map[string]string{"session": "s-n0-9999", "target": "n2"}, nil); st != http.StatusNotFound {
		t.Fatalf("move of unknown session: status %d, want 404", st)
	}
}

// clusterChaosWriter hammers one session through a set of endpoints,
// failing over to the next endpoint when one stops answering, and
// records exactly which fact keys were acknowledged.
type clusterChaosWriter struct {
	id    int
	urls  []string
	cur   int
	acked []string
}

func (w *clusterChaosWriter) run(t *testing.T, sessID string, stop <-chan struct{}) {
	for n := 0; ; n++ {
		select {
		case <-stop:
			return
		default:
		}
		key := fmt.Sprintf("c%d-%d", w.id, n)
		req := assertRequest{Facts: []factPayload{itemFact(key)}}
		// Try each endpoint once; an ack from any of them counts.
		for attempt := 0; attempt < len(w.urls); attempt++ {
			url := w.urls[(w.cur+attempt)%len(w.urls)]
			st, err := tryCall("POST", url+"/api/v1/sessions/"+sessID+"/facts", req)
			if err == nil && st == http.StatusOK {
				w.cur = (w.cur + attempt) % len(w.urls)
				w.acked = append(w.acked, key)
				break
			}
		}
	}
}

// TestClusterKillNodeMidSoak is the acceptance chaos check: three nodes
// under concurrent writes to sessions on every node, one node killed
// mid-run, zero acked mutations lost.
func TestClusterKillNodeMidSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped with -short")
	}
	tc := newTestCluster(t, 3, nil)
	urls := make([]string, len(tc.names))
	sessions := make([]string, len(tc.names))
	for i, name := range tc.names {
		urls[i] = tc.url(name)
		info := createSession(t, tc.url(name), createSessionRequest{Source: contractSrc})
		sessions[i] = info.ID
	}

	ws := make([]*clusterChaosWriter, 6)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := range ws {
		ws[i] = &clusterChaosWriter{id: i, urls: urls, cur: i % len(urls)}
		wg.Add(1)
		go func(w *clusterChaosWriter, sessID string) {
			defer wg.Done()
			w.run(t, sessID, stop)
		}(ws[i], sessions[i%len(sessions)])
	}

	time.Sleep(400 * time.Millisecond)
	tc.kill("n0") // takes down one owner AND one replica holder
	time.Sleep(600 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Every session must be servable from some live node with every acked
	// fact present — including the session n0 owned.
	liveURLs := []string{tc.url("n1"), tc.url("n2")}
	for si, sessID := range sessions {
		var keys map[string]bool
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			st, err := tryCall("GET", liveURLs[si%2]+"/api/v1/sessions/"+sessID+"/wm?template=item", nil)
			if err == nil && st == http.StatusOK {
				keys = presentKeys(t, liveURLs[si%2]+"/api/v1/sessions/"+sessID)
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
		if keys == nil {
			t.Fatalf("session %s never became servable after the kill", sessID)
		}
		lost := 0
		for wi, w := range ws {
			if sessions[wi%len(sessions)] != sessID {
				continue
			}
			for _, key := range w.acked {
				if !keys[key] {
					lost++
					t.Errorf("acked fact %s lost from session %s", key, sessID)
				}
			}
		}
		if lost > 0 {
			t.Logf("session %s: %d acked facts lost, %d present", sessID, lost, len(keys))
		}
	}
}
