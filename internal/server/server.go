// Package server implements paruleld, the PARULEL rule-serving daemon:
// an HTTP/JSON front end that hosts compiled programs as long-lived
// *sessions*. Clients create a session from an embedded example program or
// uploaded source, assert and retract facts, run the engine to quiescence
// under a per-request deadline, query working memory, and export/import
// `(wm …)` snapshots that round-trip through cmd/parulel.
//
// Operationally the server provides what the PARULEL/PARADISER papers
// assume of their environment: a bounded pool of concurrently served rule
// sessions (LRU eviction + idle expiry), per-session serialization with a
// server-wide cap on simultaneously running engines, cancellation threaded
// into the engine's cycle loop, a /metrics aggregate over the engines'
// per-cycle phase records, and graceful drain on shutdown.
//
// See docs/SERVER.md for the API reference.
package server

import (
	"bytes"
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"parulel/internal/cluster"
	"parulel/internal/compile"
	"parulel/internal/core"
	"parulel/internal/obs"
	"parulel/internal/programs"
	"parulel/internal/snapshot"
	"parulel/internal/wal"
	"parulel/internal/wm"
)

// Config tunes the server. Zero values select the documented defaults.
type Config struct {
	// MaxSessions bounds the session pool; creating one more evicts the
	// least-recently-used session. Default 64.
	MaxSessions int
	// IdleTTL expires sessions unused for this long. Default 30m.
	IdleTTL time.Duration
	// SweepInterval is the expiry check period. Default IdleTTL/4,
	// clamped to [100ms, 1m].
	SweepInterval time.Duration
	// MaxConcurrentRuns caps engines running simultaneously server-wide;
	// excess run requests wait for a slot (bounded by their deadline).
	// Default 8.
	MaxConcurrentRuns int
	// MaxInflightRuns caps admitted runs — executing plus queued for an
	// engine slot. Beyond it, run requests fast-fail with 429 and a
	// Retry-After header instead of queueing. Default 8×MaxConcurrentRuns;
	// negative disables the cap.
	MaxInflightRuns int
	// MutationQueueDepth bounds each session's mutation queue (the holder
	// of the session slot plus requests waiting for it). Beyond it,
	// mutations fast-fail with 429 + Retry-After. Default 32; negative
	// disables the cap.
	MutationQueueDepth int
	// RunSlice bounds the engine cycles a run may commit per engine-slot
	// grant; a run needing more releases the slot and re-queues, so a long
	// run cannot monopolize an engine slot while others wait. 0 (the
	// default) runs to quiescence in one grant.
	RunSlice int
	// DefaultRunTimeout applies when a run request names none. Default 30s.
	DefaultRunTimeout time.Duration
	// MaxRunTimeout clamps client-requested timeouts. Default 5m.
	MaxRunTimeout time.Duration
	// MaxCycles is the default cumulative cycle cap per session (runaway
	// guard). Default 10,000,000.
	MaxCycles int
	// DefaultWorkers is the per-engine worker count when the client names
	// none. Default 4; clamped to [1, 64].
	DefaultWorkers int
	// EvalMode selects the expression backend for every session engine
	// (bytecode VM by default; compile.EvalInterp for the tree walker).
	EvalMode compile.EvalMode
	// MaxBodyBytes bounds request bodies. Default 4 MiB.
	MaxBodyBytes int64
	// MaxOutputBytes bounds captured `(write …)` output per run. Default 64 KiB.
	MaxOutputBytes int
	// DataDir enables the durability subsystem: every session gets a
	// write-ahead log and periodic checkpoints under DataDir/sessions/<id>,
	// and sessions are recovered from disk lazily — after a restart or an
	// LRU eviction, the next request naming the session rebuilds it.
	// Empty (the default) keeps sessions memory-only.
	DataDir string
	// Fsync selects when WAL appends reach stable storage: wal.PolicyAlways
	// (every append), wal.PolicyInterval (background flusher, the default)
	// or wal.PolicyNever (the OS decides).
	Fsync wal.Policy
	// FsyncInterval is the flush period under wal.PolicyInterval. Default 100ms.
	FsyncInterval time.Duration
	// FsyncWait bounds how long the group-commit daemon parks to let more
	// appends join a cohort under wal.PolicyGroup. Zero flushes as soon as
	// the daemon wakes; coalescing still happens under concurrency because
	// appends arriving during a flush share the next one.
	FsyncWait time.Duration
	// DisableMerkle turns off the per-session Merkle ledger (merkle.log,
	// chained checkpoint commits, the /proof endpoint). The zero value
	// keeps it on: tamper evidence is part of the durability contract.
	DisableMerkle bool
	// CheckpointEvery rewrites a session's checkpoint and empties its log
	// after this many WAL records. Default 256.
	CheckpointEvery int
	// TraceCycles bounds each session's in-memory cycle-trace ring served
	// at GET /api/v1/sessions/{id}/trace. Default 512.
	TraceCycles int
	// SpanCapacity bounds the node's distributed-tracing span store
	// served at GET /debug/spans. Default 4096.
	SpanCapacity int
	// SlowRequestThreshold is the latency beyond which a request's full
	// span tree is captured into the flight recorder (GET
	// /debug/flightrecorder, dumped on SIGQUIT by cmd/paruleld). Default
	// 1s; negative disables capture.
	SlowRequestThreshold time.Duration
	// FlightRecorderSize bounds the flight-recorder ring. Default 64.
	FlightRecorderSize int
	// Cluster, when non-nil, joins this node to a static cluster: the
	// consistent-hash ring shards the session-id keyspace across members,
	// non-owned requests are proxied or redirected, each session's WAL
	// streams to a follower, and sessions migrate on POST /cluster/move.
	// Requires DataDir. See internal/cluster and docs/SERVER.md.
	Cluster *cluster.Config
	// Logger receives structured log records (one per notable event plus a
	// per-request access line); nil means discard.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.IdleTTL <= 0 {
		c.IdleTTL = 30 * time.Minute
	}
	if c.SweepInterval <= 0 {
		c.SweepInterval = c.IdleTTL / 4
		if c.SweepInterval < 100*time.Millisecond {
			c.SweepInterval = 100 * time.Millisecond
		}
		if c.SweepInterval > time.Minute {
			c.SweepInterval = time.Minute
		}
	}
	if c.MaxConcurrentRuns <= 0 {
		c.MaxConcurrentRuns = 8
	}
	if c.MaxInflightRuns == 0 {
		c.MaxInflightRuns = 8 * c.MaxConcurrentRuns
	}
	if c.MutationQueueDepth == 0 {
		c.MutationQueueDepth = 32
	}
	if c.DefaultRunTimeout <= 0 {
		c.DefaultRunTimeout = 30 * time.Second
	}
	if c.MaxRunTimeout <= 0 {
		c.MaxRunTimeout = 5 * time.Minute
	}
	if c.MaxCycles <= 0 {
		c.MaxCycles = 10_000_000
	}
	if c.DefaultWorkers <= 0 {
		c.DefaultWorkers = 4
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 4 << 20
	}
	if c.MaxOutputBytes <= 0 {
		c.MaxOutputBytes = 64 << 10
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 256
	}
	if c.TraceCycles <= 0 {
		c.TraceCycles = 512
	}
	if c.SpanCapacity <= 0 {
		c.SpanCapacity = obs.DefaultSpanCapacity
	}
	if c.SlowRequestThreshold == 0 {
		c.SlowRequestThreshold = time.Second
	}
	if c.FlightRecorderSize <= 0 {
		c.FlightRecorderSize = obs.DefaultFlightRecorderCapacity
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// Server is the paruleld HTTP handler plus its session pool.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	runQueue *runQueue
	jobs     *jobRegistry
	metrics  *collector
	start    time.Time
	store    *store        // nil when durability is disabled
	cluster  *clusterState // nil when not in cluster mode
	spans    *obs.SpanStore
	flight   *obs.FlightRecorder

	reqID atomic.Uint64 // monotonically increasing request ids

	mu          sync.Mutex
	sessions    map[string]*session
	rehydrating map[string]chan struct{} // in-flight recoveries, by session id
	lru         *list.List               // front = most recently used; values are *session
	nextID      uint64
	draining    bool
	active      int           // runs currently executing (or waiting on runSem)
	idle        chan struct{} // closed when draining && active == 0

	janitorStop chan struct{}
	janitorDone chan struct{}
}

// New builds a server and starts its expiry janitor. Call Close to stop
// it. The only error source is the durability store: when Config.DataDir
// is set, its session directory must be creatable and scannable.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:         cfg,
		mux:         http.NewServeMux(),
		runQueue:    newRunQueue(cfg.MaxConcurrentRuns, cfg.MaxInflightRuns),
		jobs:        newJobRegistry(),
		metrics:     newCollector(),
		start:       time.Now(),
		sessions:    make(map[string]*session),
		rehydrating: make(map[string]chan struct{}),
		lru:         list.New(),
		idle:        make(chan struct{}),
		janitorStop: make(chan struct{}),
		janitorDone: make(chan struct{}),
		flight:      obs.NewFlightRecorder(cfg.FlightRecorderSize),
	}
	node := ""
	if cfg.Cluster != nil {
		node = cfg.Cluster.Node
	}
	s.spans = obs.NewSpanStore(node, cfg.SpanCapacity)
	s.spans.OnRecord = func(sp obs.Span) {
		s.metrics.stageObserved(sp.Stage, time.Duration(sp.DurNS))
	}
	if cfg.DataDir != "" {
		walOpts := wal.Options{
			Policy:        cfg.Fsync,
			Interval:      cfg.FsyncInterval,
			GroupWait:     cfg.FsyncWait,
			OnAppend:      s.metrics.walAppend,
			OnFsync:       s.metrics.fsyncObserved,
			OnGroupCommit: s.metrics.groupCommitObserved,
		}
		st, maxID, err := openStore(cfg.DataDir, walOpts, !cfg.DisableMerkle)
		if err != nil {
			return nil, err
		}
		s.store = st
		s.nextID = maxID // never reuse a recoverable session's id
		s.metrics.enableDurability(st.count())
		if n := st.count(); n > 0 {
			cfg.Logger.Info("durability: recoverable sessions found", "count", n, "data_dir", cfg.DataDir)
		}
	}
	if cfg.Cluster != nil {
		if err := s.startCluster(*cfg.Cluster); err != nil {
			return nil, err
		}
	}
	s.routes()
	go s.janitor()
	return s, nil
}

// ctxKey keys the values the request middleware stashes in the context.
type ctxKey int

const (
	ctxKeyRequestID ctxKey = iota
	ctxKeyTrace
)

// RequestID extracts the server-assigned request id, or 0 when ctx did
// not pass through ServeHTTP (internal work like the janitor).
func RequestID(ctx context.Context) uint64 {
	id, _ := ctx.Value(ctxKeyRequestID).(uint64)
	return id
}

// log returns the configured logger annotated with the request id, when
// the context carries one. Every handler-side log line goes through this
// so log records correlate with access lines.
func (s *Server) log(ctx context.Context) *slog.Logger {
	if id := RequestID(ctx); id != 0 {
		return s.cfg.Logger.With("request_id", id)
	}
	return s.cfg.Logger
}

// statusWriter records the status code for the access log and injects
// the Server-Timing header — the stage durations accumulated so far —
// just before the response commits.
type statusWriter struct {
	http.ResponseWriter
	status  int
	timings *reqTimings
	wrote   bool
}

func (sw *statusWriter) WriteHeader(code int) {
	if !sw.wrote {
		sw.wrote = true
		if h := sw.timings.header(); h != "" {
			sw.ResponseWriter.Header().Set("Server-Timing", h)
		}
	}
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer so streaming handlers (the NDJSON
// /stream endpoint) can push each response line out while the request is
// still in flight; without this the wrapper would hide the underlying
// Flusher and per-frame results would sit in the buffer until the whole
// stream ended.
func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.NewResponseController reach the underlying writer.
func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// ServeHTTP implements http.Handler. Every request is assigned an id
// and a trace context — both adopted from the X-Parulel-Trace header
// when a peer or trace-aware client sent one, so a proxied request logs
// the same request id on every hop and its spans share one trace id —
// propagated via context into handler log lines, and finished with one
// structured access record, an ingress span, and (when the request was
// slow) a flight-recorder capture.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	tc, carried := obs.ParseTraceContext(r.Header.Get(obs.TraceHeader))
	id := tc.ReqID
	if id == 0 {
		id = s.reqID.Add(1)
	}
	if !carried {
		tc = obs.TraceContext{TraceID: obs.NewTraceID(), ReqID: id}
	}
	ingress := s.spans.Start(tc.TraceID, tc.Parent, stageIngress)
	ingress.SetAttr("method", r.Method)
	ingress.SetAttr("path", r.URL.Path)
	ti := &traceInfo{trace: tc.TraceID, parent: ingress.ID(), timings: &reqTimings{}}
	ctx := context.WithValue(r.Context(), ctxKeyRequestID, id)
	r = r.WithContext(context.WithValue(ctx, ctxKeyTrace, ti))
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK, timings: ti.timings}
	// Echo the trace on the response so clients (and the smoke tests)
	// learn the trace id, and so a client following a 307 redirect can
	// re-send the header and keep the trace stitched.
	w.Header().Set(obs.TraceHeader, obs.TraceContext{TraceID: tc.TraceID, Parent: ingress.ID(), ReqID: id}.String())
	t0 := time.Now()
	s.mux.ServeHTTP(sw, r)
	dur := time.Since(t0)
	ingress.SetAttr("status", strconv.Itoa(sw.status))
	ingress.EndWith(dur)
	if thr := s.cfg.SlowRequestThreshold; thr > 0 && dur >= thr {
		s.flight.Record(obs.FlightRecord{
			TraceID:     tc.TraceID,
			Method:      r.Method,
			Path:        r.URL.Path,
			Status:      sw.status,
			DurNS:       dur.Nanoseconds(),
			CapturedUNN: time.Now().UnixNano(),
			Spans:       s.spans.Query(tc.TraceID, "", 0, 0),
		})
	}
	s.cfg.Logger.Info("request",
		"request_id", id,
		"trace_id", tc.TraceID,
		"method", r.Method,
		"path", r.URL.Path,
		"status", sw.status,
		"duration_ms", dur.Milliseconds())
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/spans", s.handleDebugSpans)
	s.mux.HandleFunc("GET /debug/flightrecorder", s.handleFlightRecorder)
	s.mux.HandleFunc("GET /cluster", s.handleClusterStatus)
	s.mux.HandleFunc("GET /cluster/trace/{trace}", s.handleClusterTrace)
	s.mux.HandleFunc("POST /cluster/move", s.handleClusterMove)
	s.mux.HandleFunc("GET /api/v1/programs", s.handlePrograms)
	s.mux.HandleFunc("POST /api/v1/sessions", s.handleCreateSession)
	s.mux.HandleFunc("GET /api/v1/sessions", s.handleListSessions)
	// Session-scoped routes pass the cluster ownership check first: a
	// non-owner proxies or redirects to the owner (no-op single-node).
	s.mux.HandleFunc("GET /api/v1/sessions/{id}", s.routed(s.handleGetSession))
	s.mux.HandleFunc("DELETE /api/v1/sessions/{id}", s.routed(s.handleDeleteSession))
	s.mux.HandleFunc("POST /api/v1/sessions/{id}/facts", s.routed(s.handleAssert))
	s.mux.HandleFunc("POST /api/v1/sessions/{id}/retract", s.routed(s.handleRetract))
	s.mux.HandleFunc("POST /api/v1/sessions/{id}/run", s.routed(s.handleRun))
	s.mux.HandleFunc("POST /api/v1/sessions/{id}/batch", s.routed(s.handleBatch))
	s.mux.HandleFunc("POST /api/v1/sessions/{id}/stream", s.routed(s.handleStream))
	s.mux.HandleFunc("GET /api/v1/sessions/{id}/jobs", s.routed(s.handleJobList))
	s.mux.HandleFunc("GET /api/v1/sessions/{id}/jobs/{job}", s.routed(s.handleJobGet))
	s.mux.HandleFunc("DELETE /api/v1/sessions/{id}/jobs/{job}", s.routed(s.handleJobCancel))
	s.mux.HandleFunc("GET /api/v1/sessions/{id}/trace", s.routed(s.handleTrace))
	s.mux.HandleFunc("GET /api/v1/sessions/{id}/wm", s.routed(s.handleWM))
	s.mux.HandleFunc("GET /api/v1/sessions/{id}/proof", s.routed(s.handleProof))
	s.mux.HandleFunc("GET /api/v1/sessions/{id}/snapshot", s.routed(s.handleSnapshotExport))
	s.mux.HandleFunc("POST /api/v1/sessions/{id}/snapshot", s.routed(s.handleSnapshotImport))
}

// Close drains the server: new runs are rejected, live async jobs are
// canceled (surfacing as "interrupted"), in-flight runs finish (or ctx
// expires), and the janitor stops. Safe to call once.
func (s *Server) Close(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.janitorStop)
		if s.active == 0 {
			close(s.idle)
		}
	}
	s.mu.Unlock()
	s.cancelAllJobs("drain")
	<-s.janitorDone
	select {
	case <-s.idle:
		s.closeLogs()
		s.stopCluster()
		return nil
	case <-ctx.Done():
		s.closeLogs()
		s.stopCluster()
		return fmt.Errorf("server: drain interrupted with runs in flight: %w", ctx.Err())
	}
}

// closeLogs flushes and closes every live session's log, so a graceful
// shutdown leaves nothing in the page cache regardless of fsync policy.
func (s *Server) closeLogs() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sess := range s.sessions {
		if sess.repl != nil {
			sess.repl.Close()
			sess.repl = nil
		}
		if sess.dur != nil {
			if err := sess.dur.close(); err != nil {
				s.cfg.Logger.Error("closing wal", "session_id", sess.id, "err", err)
			}
		}
	}
}

// janitor periodically expires idle sessions.
func (s *Server) janitor() {
	defer close(s.janitorDone)
	t := time.NewTicker(s.cfg.SweepInterval)
	defer t.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case <-t.C:
			s.sweep(time.Now())
		}
	}
}

// sweep evicts sessions idle past the TTL. Busy sessions are skipped —
// their lastUsed is refreshed when the request finishes looking them up,
// and a run in flight must not lose its session.
func (s *Server) sweep(now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for e := s.lru.Back(); e != nil; {
		prev := e.Prev()
		sess := e.Value.(*session)
		if now.Sub(sess.lastUsed) < s.cfg.IdleTTL {
			break // LRU order: everything further forward is younger
		}
		if !sess.busy() {
			s.evictLocked(sess)
			s.metrics.sessionExpired()
			s.cfg.Logger.Info("session expired",
				"session_id", sess.id,
				"idle", now.Sub(sess.lastUsed).Round(time.Millisecond).String(),
				"fate", recoverableNote(sess))
		}
		e = prev
	}
}

// evictLocked removes a session from the pool, closing (but keeping) its
// on-disk state so it can be rehydrated later. Caller holds s.mu.
func (s *Server) evictLocked(sess *session) {
	sess.closed.Store(true)
	delete(s.sessions, sess.id)
	s.lru.Remove(sess.elem)
	sess.elem = nil
	if sess.repl != nil {
		sess.repl.Close()
		sess.repl = nil
	}
	if sess.dur != nil {
		if err := sess.dur.close(); err != nil {
			s.cfg.Logger.Error("closing wal", "session_id", sess.id, "err", err)
		}
	}
}

// recoverableNote annotates eviction log lines with the session's fate:
// durable sessions rehydrate on next touch, memory-only ones are gone.
func recoverableNote(sess *session) string {
	if sess.dur != nil {
		return "recoverable on disk"
	}
	return "state discarded"
}

// insertLocked adds sess to the pool, evicting LRU sessions to make room
// while preferring idle ones; a pool full of busy sessions rejects the
// insert rather than killing a running one. Caller holds s.mu.
func (s *Server) insertLocked(sess *session) error {
	if _, ok := s.sessions[sess.id]; ok {
		// Overwriting would orphan the incumbent in the LRU list with an
		// open WAL handle; no legitimate path inserts a live id twice.
		return fmt.Errorf("session %s is already in the pool", sess.id)
	}
	for len(s.sessions) >= s.cfg.MaxSessions {
		victim := (*session)(nil)
		for e := s.lru.Back(); e != nil; e = e.Prev() {
			if cand := e.Value.(*session); !cand.busy() {
				victim = cand
				break
			}
		}
		if victim == nil {
			return errors.New("session pool full and all sessions busy")
		}
		s.evictLocked(victim)
		s.metrics.sessionEvicted()
		s.cfg.Logger.Info("session evicted", "session_id", victim.id, "reason", "pool full", "fate", recoverableNote(victim))
	}
	sess.elem = s.lru.PushFront(sess)
	s.sessions[sess.id] = sess
	return nil
}

// sessionByID finds a session and marks it used, transparently rehydrating
// it from disk when it was evicted or belongs to a previous process.
func (s *Server) sessionByID(ctx context.Context, id string) (*session, error) {
	for attempt := 0; ; attempt++ {
		s.mu.Lock()
		sess, ok := s.sessions[id]
		if ok {
			sess.lastUsed = time.Now()
			s.lru.MoveToFront(sess.elem)
		}
		draining := s.draining
		s.mu.Unlock()
		if ok {
			return sess, nil
		}
		if s.store == nil || draining || attempt > 0 || !s.store.has(id) {
			return nil, fmt.Errorf("no session %q", id)
		}
		if err := s.rehydrate(ctx, id); err != nil {
			s.log(ctx).Error("session recovery failed", "session_id", id, "err", err)
			return nil, fmt.Errorf("no session %q (recovery failed: %v)", id, err)
		}
	}
}

// lookup is sessionByID for handlers: a nil return means the 404 has been
// written.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *session {
	sess, err := s.sessionByID(r.Context(), r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return nil
	}
	return sess
}

// withSession acquires the session slot under the request context and runs
// fn while holding it, after passing the per-session mutation-queue gate:
// when MutationQueueDepth requests already hold or await the slot, the
// request fast-fails with 429 instead of queueing unboundedly. A session
// evicted while the request waited for the slot is looked up again once —
// with durability on, the re-lookup rehydrates it instead of answering 410.
func (s *Server) withSession(w http.ResponseWriter, r *http.Request, fn func(sess *session)) {
	s.withSessionGate(w, r, nil, fn)
}

// withSessionGate is withSession with an extra hook invoked when the
// mutation-queue gate rejects the request (the stream handler counts
// those separately).
func (s *Server) withSessionGate(w http.ResponseWriter, r *http.Request, onReject func(), fn func(sess *session)) {
	for attempt := 0; ; attempt++ {
		sess := s.lookup(w, r)
		if sess == nil {
			return
		}
		if depth := s.cfg.MutationQueueDepth; depth > 0 && int(sess.waiters.Add(1)) > depth {
			sess.waiters.Add(-1)
			s.metrics.mutationRejected()
			if onReject != nil {
				onReject()
			}
			writeRetryAfter(w, fmt.Sprintf("session %s mutation queue is full (depth %d)", sess.id, depth))
			return
		}
		waitSp := s.startSpan(r.Context(), stageSessionWait)
		err := sess.acquire(r.Context())
		waitSp.End()
		if err != nil {
			sess.waiters.Add(-1)
			writeError(w, http.StatusServiceUnavailable, "session busy: "+err.Error())
			return
		}
		if sess.closed.Load() {
			sess.release()
			sess.waiters.Add(-1)
			if s.store != nil && attempt == 0 {
				continue
			}
			writeError(w, http.StatusGone, "session was evicted")
			return
		}
		defer sess.waiters.Add(-1)
		defer sess.release()
		fn(sess)
		return
	}
}

// writeRetryAfter answers 429 with the backpressure contract's header.
func writeRetryAfter(w http.ResponseWriter, msg string) {
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusTooManyRequests, msg)
}

// ---- handlers ----

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Cache-Control", "no-cache")
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Server) handlePrograms(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"programs": programs.All()})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	format := r.URL.Query().Get("format")
	switch format {
	case "", "json", "prometheus":
	default:
		writeError(w, http.StatusNotAcceptable, fmt.Sprintf("unknown format %q (want json or prometheus)", format))
		return
	}
	s.mu.Lock()
	live, active := len(s.sessions), s.active
	s.mu.Unlock()
	onDisk := 0
	if s.store != nil {
		onDisk = s.store.count()
	}
	queued, inflight := s.runQueue.stats()
	var cl *clusterSample
	if cs := s.cluster; cs != nil {
		cs.mu.Lock()
		overrides := len(cs.overrides)
		cs.mu.Unlock()
		cl = &clusterSample{
			membersTotal:    len(cs.members),
			membersUp:       cs.mship.UpCount(),
			replicaSessions: cs.replicaCount(),
			routeOverrides:  overrides,
		}
	}
	p := s.metrics.snapshot(time.Since(s.start), live, active, onDisk, queued, inflight, s.jobs.activeCount(), cl)
	p.EvalMode = s.cfg.EvalMode.String()
	w.Header().Set("Cache-Control", "no-cache")
	if format == "prometheus" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		writePrometheus(w, p)
		return
	}
	writeJSON(w, http.StatusOK, p)
}

// handleTrace serves the session's recent cycle events. It deliberately
// does NOT take the session slot: the trace ring is internally locked, so
// a trace can be read while a long run is still executing.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	sess := s.lookup(w, r)
	if sess == nil {
		return
	}
	limit := 0
	if ls := r.URL.Query().Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad limit")
			return
		}
		limit = n
	}
	events := sess.trace.Events(limit)
	writeJSON(w, http.StatusOK, traceResponse{
		Session:  sess.id,
		Total:    sess.trace.Total(),
		Capacity: sess.trace.Capacity(),
		Events:   events,
	})
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req createSessionRequest
	if !readJSON(w, r, &req) {
		return
	}
	var (
		prog   *compile.Program
		name   string
		source string // the resolved text, logged for recovery
		err    error
	)
	switch {
	case req.Program != "" && req.Source != "":
		writeError(w, http.StatusBadRequest, "give either program or source, not both")
		return
	case req.Program != "":
		name = req.Program
		source, err = programs.Source(req.Program)
		if err == nil {
			prog, err = compile.CompileSource(source)
		}
	case req.Source != "":
		name = "uploaded"
		source = req.Source
		prog, err = compile.CompileSource(req.Source)
	default:
		writeError(w, http.StatusBadRequest, "one of program or source is required")
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	workers := req.Workers
	if workers <= 0 {
		workers = s.cfg.DefaultWorkers
	}
	if workers > 64 {
		workers = 64
	}
	maxCycles := req.MaxCycles
	if maxCycles <= 0 || maxCycles > s.cfg.MaxCycles {
		maxCycles = s.cfg.MaxCycles
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var id string
	if cs := s.cluster; cs != nil {
		// Mint ids this node owns by hash, so freshly created sessions are
		// served where they were created; the node name makes ids unique
		// across the cluster. Roughly 1/len(members) of candidates land on
		// self, so the loop is short.
		for {
			s.nextID++
			id = fmt.Sprintf("s-%s-%d", cs.cfg.Node, s.nextID)
			if cs.ring.Owner(id) == cs.cfg.Node {
				break
			}
		}
	} else {
		s.nextID++
		id = "s" + strconv.FormatUint(s.nextID, 10)
	}
	s.mu.Unlock()

	sess, err := newSession(id, name, prog, workers, req.Matcher, s.cfg.EvalMode, maxCycles, s.cfg.MaxOutputBytes, s.cfg.TraceCycles, time.Now(), false)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if s.store != nil {
		dur, err := s.store.create(id, wal.Record{
			Op: wal.OpCreate, Program: name, Source: source,
			Workers: workers, Matcher: sess.matcher, MaxCycles: maxCycles,
			CreatedNS: sess.created.UnixNano(),
		})
		if err != nil {
			writeError(w, http.StatusInternalServerError, "durability: "+err.Error())
			return
		}
		sess.dur = dur
	}

	s.mu.Lock()
	err = s.insertLocked(sess)
	if err == nil {
		if sess.dur != nil {
			// Only now may lookups see the id: marking before insertion
			// would let a concurrent request rehydrate from the OpCreate
			// record and race this insert.
			s.store.markKnown(id)
		}
		info := sess.info(sess.lastUsed)
		s.mu.Unlock()
		s.metrics.sessionCreated()
		s.log(r.Context()).Info("session created",
			"session_id", id, "program", name, "workers", workers,
			"matcher", sess.matcher, "durable", sess.dur != nil)
		writeJSON(w, http.StatusCreated, info)
		return
	}
	s.mu.Unlock()
	if sess.dur != nil {
		sess.dur.close()
		if rerr := s.store.remove(id); rerr != nil {
			s.log(r.Context()).Error("removing data dir", "session_id", id, "err", rerr)
		}
	}
	writeError(w, http.StatusServiceUnavailable, err.Error())
}

func (s *Server) handleListSessions(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	infos := make([]sessionInfo, 0, len(s.sessions))
	for e := s.lru.Front(); e != nil; e = e.Next() {
		sess := e.Value.(*session)
		infos = append(infos, sess.info(sess.lastUsed))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"sessions": infos})
}

func (s *Server) handleGetSession(w http.ResponseWriter, r *http.Request) {
	sess := s.lookup(w, r)
	if sess == nil {
		return
	}
	s.mu.Lock()
	last := sess.lastUsed
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, sess.info(last))
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	sess, ok := s.sessions[id]
	if ok {
		s.evictLocked(sess)
	}
	s.mu.Unlock()
	// An evicted-but-recoverable session is deletable too: drop its files.
	onDisk := s.store != nil && s.store.has(id)
	if onDisk {
		if err := s.store.remove(id); err != nil {
			s.log(r.Context()).Error("removing data dir", "session_id", id, "err", err)
		}
	}
	if !ok && !onDisk {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no session %q", id))
		return
	}
	s.jobs.dropSession(id)
	s.broadcastDrop(id) // peers discard their replica of the session
	s.metrics.sessionDeleted()
	s.log(r.Context()).Info("session deleted", "session_id", id)
	writeJSON(w, http.StatusOK, map[string]bool{"deleted": true})
}

func (s *Server) handleAssert(w http.ResponseWriter, r *http.Request) {
	var req assertRequest
	if !readJSON(w, r, &req) {
		return
	}
	s.withSession(w, r, func(sess *session) {
		n := 0
		inserted := make([]wal.Fact, 0, len(req.Facts))
		for _, f := range req.Facts {
			if f.TTL < 0 {
				if len(inserted) > 0 {
					s.persist(r.Context(), sess, &wal.Record{Op: wal.OpAssert, Facts: inserted})
				}
				writeError(w, http.StatusBadRequest, fmt.Sprintf("fact %d: ttl must be non-negative", n))
				return
			}
			fields := toFields(f.Fields)
			el, err := sess.eng.Insert(f.Template, fields)
			if err != nil {
				// The successfully inserted prefix is part of the session's
				// history and must be logged even though the request fails.
				if len(inserted) > 0 {
					s.persist(r.Context(), sess, &wal.Record{Op: wal.OpAssert, Facts: inserted})
				}
				writeError(w, http.StatusBadRequest, fmt.Sprintf("fact %d: %v", n, err))
				return
			}
			if f.TTL > 0 {
				sess.clock.SetTTL(el, f.TTL)
			}
			inserted = append(inserted, wal.Fact{Template: f.Template, Fields: wal.EncodeFields(fields), TTL: f.TTL})
			n++
		}
		if len(inserted) > 0 && !s.persist(r.Context(), sess, &wal.Record{Op: wal.OpAssert, Facts: inserted}) {
			writeError(w, http.StatusInternalServerError, "facts asserted in memory but not durably logged")
			return
		}
		writeJSON(w, http.StatusOK, countResponse{Count: n, WMSize: sess.eng.Memory().Len()})
	})
}

func (s *Server) handleRetract(w http.ResponseWriter, r *http.Request) {
	var req retractRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Template == "" {
		writeError(w, http.StatusBadRequest, "template is required")
		return
	}
	s.withSession(w, r, func(sess *session) {
		fields := toFields(req.Fields)
		n, err := sess.retractMatching(req.Template, fields)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		if n > 0 {
			rec := wal.Record{Op: wal.OpRetract, Template: req.Template, Fields: wal.EncodeFields(fields), Count: n}
			if !s.persist(r.Context(), sess, &rec) {
				writeError(w, http.StatusInternalServerError, "facts retracted in memory but not durably logged")
				return
			}
		}
		writeJSON(w, http.StatusOK, countResponse{Count: n, WMSize: sess.eng.Memory().Len()})
	})
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	if !readJSON(w, r, &req) {
		return
	}
	timeout := s.clampTimeout(req.TimeoutMS)
	async := false
	switch v := r.URL.Query().Get("async"); v {
	case "", "0", "false":
	case "1", "true":
		async = true
	default:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad async value %q", v))
		return
	}
	sess := s.lookup(w, r)
	if sess == nil {
		return
	}

	// Register as an active run (for graceful drain) unless draining.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	s.active++
	s.mu.Unlock()
	releaseActive := func() {
		s.mu.Lock()
		s.active--
		if s.draining && s.active == 0 {
			close(s.idle)
		}
		s.mu.Unlock()
	}

	// Admission: beyond MaxInflightRuns admitted runs the server fast-fails
	// rather than queueing without bound.
	ticket, err := s.runQueue.admit(sess.id)
	if err != nil {
		releaseActive()
		s.metrics.runRejected()
		writeRetryAfter(w, "run queue is full")
		return
	}

	if async {
		// startAsyncRun replies 202; the runner goroutine owns the ticket
		// and the drain registration from here on.
		s.startAsyncRun(w, r, sess, ticket, timeout, releaseActive)
		return
	}
	defer releaseActive()
	defer ticket.done()
	s.metrics.runStarted()

	// The deadline covers queueing (session slot + engine slots) and the
	// run itself, so a stuck queue cannot hold the request forever.
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// Per-session serialization first, engine slots per slice inside
	// driveRun — the same lock order as batches and jobs. A session evicted
	// while we waited is looked up once more, so durability can rehydrate
	// it transparently.
	waitSp := s.startSpan(ctx, stageSessionWait)
	for attempt := 0; ; attempt++ {
		if err := sess.acquire(ctx); err != nil {
			waitSp.End()
			s.metrics.runTimeout()
			writeError(w, http.StatusGatewayTimeout, "timed out waiting for the session: "+err.Error())
			return
		}
		if !sess.closed.Load() {
			break
		}
		sess.release()
		if s.store == nil || attempt > 0 {
			writeError(w, http.StatusGone, "session was evicted")
			return
		}
		if sess = s.lookup(w, r); sess == nil {
			return
		}
	}
	waitSp.End()
	defer sess.release()

	out := s.driveRun(ctx, sess, ticket, s.immediateSink(ctx, sess))
	resp := out.resp
	switch {
	case out.err == nil && !out.persisted:
		// The run committed in memory but neither the WAL append nor the
		// fallback checkpoint stuck: recovery would serve pre-run state, so
		// the client must not see a bare 200 (mirrors the assert/retract
		// handlers, with the result attached since the cycles did run).
		s.metrics.runError()
		writeJSON(w, http.StatusInternalServerError, map[string]any{
			"error":  "run committed in memory but not durably logged",
			"result": resp,
		})
	case out.err == nil:
		s.metrics.runCompleted()
		writeJSON(w, http.StatusOK, resp)
	case errors.Is(out.err, context.DeadlineExceeded):
		sess.timeouts++
		s.metrics.runTimeout()
		s.log(ctx).Warn("run timed out",
			"session_id", sess.id, "timeout", timeout.String(), "cycles_committed", resp.Cycles)
		writeJSON(w, http.StatusGatewayTimeout, map[string]any{
			"error":  fmt.Sprintf("run exceeded its %v deadline; %d cycles committed, session still usable", timeout, resp.Cycles),
			"result": resp,
		})
	case errors.Is(out.err, context.Canceled):
		// Client went away; record and reply best-effort.
		s.metrics.runCanceled()
		writeError(w, http.StatusServiceUnavailable, "run canceled: "+out.err.Error())
	case errors.Is(out.err, core.ErrMaxCycles):
		s.metrics.runError()
		writeJSON(w, http.StatusUnprocessableEntity, map[string]any{
			"error":  out.err.Error(),
			"result": resp,
		})
	default:
		s.metrics.runError()
		writeError(w, http.StatusInternalServerError, "run failed: "+out.err.Error())
	}
}

// recordSink receives the WAL records a run produces. The immediate sink
// persists each as its own frame; the batch handler's sink collects them
// into one OpBatch frame instead. A false return marks durability lost.
type recordSink func(*wal.Record) bool

func (s *Server) immediateSink(ctx context.Context, sess *session) recordSink {
	return func(rec *wal.Record) bool { return s.persist(ctx, sess, rec) }
}

// runOutcome is driveRun's result, mapped onto HTTP statuses or job states
// by the caller.
type runOutcome struct {
	resp      runResponse
	err       error
	persisted bool
}

// driveRun executes one logical run while holding the session slot,
// re-acquiring an engine slot from the run queue for every RunSlice cycles
// (one grant for the whole run when RunSlice is 0) and logging one OpRun
// record per grant. Failing to reacquire a slot mid-run leaves the earlier
// slices committed and logged, exactly like a deadline expiry.
func (s *Server) driveRun(ctx context.Context, sess *session, ticket *runTicket, sink recordSink) runOutcome {
	before := sess.lastResult
	prevStats := 0
	if before.Stats != nil {
		prevStats = len(before.Stats.Cycles)
	}
	sess.out.take() // reset output buffer
	runSp := s.startSpan(ctx, stageEngineRun)
	phBefore, _ := sess.phases.Snapshot()
	var queueWait time.Duration
	t0 := time.Now()
	res := before
	persisted := true
	lastCycles := before.Cycles
	var runErr error
	for {
		qt0 := time.Now()
		err := ticket.acquire(ctx)
		queueWait += time.Since(qt0)
		if err != nil {
			runErr = fmt.Errorf("%w: waiting for an engine slot: %w", core.ErrCanceled, err)
			res = sess.eng.CurrentResult()
			break
		}
		var more bool
		res, more, runErr = sess.eng.RunBounded(ctx, s.cfg.RunSlice)
		ticket.release()
		// Each slice is one OpRun record and one runs increment, matching
		// replay, which bumps runs per record. The increment precedes the
		// sink so a checkpoint triggered by the append captures it.
		sess.runs++
		// Log the slice boundary — the committed cycle delta, never wall
		// clock — regardless of outcome: a timed-out or canceled run still
		// advanced the engine by exactly that many committed cycles.
		if !sink(&wal.Record{Op: wal.OpRun, Cycles: res.Cycles - lastCycles, Halted: res.Halted}) {
			persisted = false
		}
		lastCycles = res.Cycles
		if runErr != nil || !more {
			break
		}
	}
	wall := time.Since(t0)
	sess.lastResult = res

	// Emit the run's span tree: queue.wait and the per-phase engine time
	// (diffed from the session's cumulative accumulator) as children of
	// engine.run. No-ops on untraced contexts.
	runSp.SetAttr("session", sess.id)
	runSp.SetAttr("cycles", strconv.Itoa(res.Cycles-before.Cycles))
	s.recordSpan(ctx, runSp.ID(), stageQueueWait, queueWait)
	phAfter, _ := sess.phases.Snapshot()
	phDelta := phAfter.Sub(phBefore)
	for i, st := range enginePhaseStages {
		s.recordSpan(ctx, runSp.ID(), st, phDelta[i])
	}
	runSp.EndWith(wall)

	// Fold the new cycle records into /metrics regardless of outcome.
	if res.Stats != nil && len(res.Stats.Cycles) > prevStats {
		s.metrics.observe(res.Stats.Cycles[prevStats:])
		sess.statCycles = len(res.Stats.Cycles)
	}
	// Likewise the per-rule profile deltas accumulated by this run. The
	// first time the per-rule series cap drops a rule, say so once — the
	// truncation is otherwise invisible in /metrics.
	if s.metrics.observeRules(sess.profileDeltas()) {
		s.cfg.Logger.Warn("per-rule metrics series cap reached; further rules aggregate into engine.rules.dropped_series",
			"cap", maxRuleSeries)
	}

	output, trunc := sess.out.take()
	resp := runResponse{
		Cycles:         res.Cycles - before.Cycles,
		Firings:        res.Firings - before.Firings,
		Redactions:     res.Redactions - before.Redactions,
		WriteConflicts: res.WriteConflicts - before.WriteConflicts,
		Halted:         res.Halted,
		WallMS:         wall.Milliseconds(),
		WMSize:         sess.eng.Memory().Len(),
		Output:         output,
		OutputTrunc:    trunc,
	}
	if runErr == nil {
		resp.Quiescent = !res.Halted
	}
	return runOutcome{resp: resp, err: runErr, persisted: persisted}
}

// countRunOutcome bumps the run counters for callers that do not map the
// outcome onto an HTTP status themselves (batch run ops).
func (s *Server) countRunOutcome(out runOutcome) {
	switch {
	case out.err == nil && out.persisted:
		s.metrics.runCompleted()
	case out.err == nil:
		s.metrics.runError()
	case errors.Is(out.err, context.DeadlineExceeded):
		s.metrics.runTimeout()
	case errors.Is(out.err, context.Canceled):
		s.metrics.runCanceled()
	default:
		s.metrics.runError()
	}
}

func (s *Server) handleWM(w http.ResponseWriter, r *http.Request) {
	s.withSession(w, r, func(sess *session) {
		template := r.URL.Query().Get("template")
		limit := 0
		if ls := r.URL.Query().Get("limit"); ls != "" {
			n, err := strconv.Atoi(ls)
			if err != nil || n < 0 {
				writeError(w, http.StatusBadRequest, "bad limit")
				return
			}
			limit = n
		}
		mem := sess.eng.Memory()
		wmes := mem.Snapshot()
		if template != "" {
			if _, ok := mem.Schema().Lookup(template); !ok {
				writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown template %q", template))
				return
			}
			wmes = mem.OfTemplate(template)
		}
		total := len(wmes)
		if limit > 0 && len(wmes) > limit {
			wmes = wmes[:limit]
		}
		facts := make([]factPayload, len(wmes))
		for i, el := range wmes {
			facts[i] = encodeFact(el)
		}
		writeJSON(w, http.StatusOK, map[string]any{"total": total, "facts": facts})
	})
}

func (s *Server) handleSnapshotExport(w http.ResponseWriter, r *http.Request) {
	s.withSession(w, r, func(sess *session) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := snapshot.Write(w, sess.eng.Memory()); err != nil {
			// Headers are gone; all we can do is log.
			s.log(r.Context()).Error("snapshot export failed", "session_id", sess.id, "err", err)
		}
	})
}

func (s *Server) handleSnapshotImport(w http.ResponseWriter, r *http.Request) {
	s.withSession(w, r, func(sess *session) {
		// Parse into a staging list first: an insert that fails halfway
		// must not leave working memory holding facts the log never saw.
		body, err := io.ReadAll(r.Body)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		var st stager
		if _, err := snapshot.Read(bytes.NewReader(body), &st); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		n := 0
		inserted := make([]wal.Fact, 0, len(st.facts))
		for _, f := range st.facts {
			if _, err := sess.eng.Insert(f.template, f.fields); err != nil {
				if len(inserted) > 0 {
					s.persist(r.Context(), sess, &wal.Record{Op: wal.OpAssert, Facts: inserted})
				}
				writeError(w, http.StatusBadRequest, fmt.Sprintf("fact %d: %v", n, err))
				return
			}
			inserted = append(inserted, wal.Fact{Template: f.template, Fields: wal.EncodeFields(f.fields)})
			n++
		}
		if n > 0 && !s.persist(r.Context(), sess, &wal.Record{Op: wal.OpImport, Text: string(body), Count: n}) {
			writeError(w, http.StatusInternalServerError, "facts imported in memory but not durably logged")
			return
		}
		writeJSON(w, http.StatusOK, countResponse{Count: n, WMSize: sess.eng.Memory().Len()})
	})
}

// stager implements snapshot.Inserter by collecting parsed facts without
// touching working memory.
type stager struct {
	facts []struct {
		template string
		fields   map[string]wm.Value
	}
}

func (st *stager) Insert(template string, fields map[string]wm.Value) (*wm.WME, error) {
	st.facts = append(st.facts, struct {
		template string
		fields   map[string]wm.Value
	}{template, fields})
	return nil, nil
}

// ---- plumbing ----

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}

// readJSON decodes a request body, tolerating an empty body (all request
// types have usable zero values). Returns false after writing an error.
func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.EOF) {
			return true
		}
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}
