package server

// Soak coverage (skipped under -short): eight concurrent clients drive a
// mixed assert/batch/run/async-run/snapshot workload against a live
// httptest server with admission control and run slicing enabled. The
// invariants checked afterwards are the serving-layer contract:
//
//   - no lost mutations: every acknowledged fact is in working memory,
//     counted exactly;
//   - no duplicate job ids across all async runs;
//   - the drained server's snapshot is byte-identical to a fresh server's
//     snapshot recovered by serially replaying the same WAL.

import (
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"
)

// soakClient is one worker's deterministic script: a rotation over the op
// kinds, with every mutation retried through backpressure until acked.
type soakClient struct {
	id       int
	url      string // shared-session URL
	acked    int    // facts acknowledged on the shared session
	jobIDs   []string
	statuses map[int]int
}

func (c *soakClient) run(t *testing.T, iterations int) error {
	for n := 0; n < iterations; n++ {
		switch n % 5 {
		case 0: // single assert
			key := fmt.Sprintf("w%d-%d", c.id, n)
			st, err := c.retry(t, func() int {
				return call(t, "POST", c.url+"/facts", assertRequest{Facts: []factPayload{itemFact(key)}}, nil)
			})
			if err != nil {
				return err
			}
			if st == http.StatusOK {
				c.acked++
			}
		case 1: // batch of four asserts plus a run op
			facts := make([]factPayload, 4)
			for i := range facts {
				facts[i] = itemFact(fmt.Sprintf("w%d-%d-%d", c.id, n, i))
			}
			var resp batchResponse
			st, err := c.retry(t, func() int {
				return call(t, "POST", c.url+"/batch", batchRequest{Ops: []batchOp{
					{Op: "assert", Facts: facts},
					{Op: "run", TimeoutMS: 10_000},
				}}, &resp)
			})
			if err != nil {
				return err
			}
			if st == http.StatusOK {
				if resp.Applied != 2 {
					return fmt.Errorf("client %d iter %d: batch applied %d, want 2", c.id, n, resp.Applied)
				}
				c.acked += 4
			}
		case 2: // synchronous run
			st, err := c.retry(t, func() int {
				return call(t, "POST", c.url+"/run", runRequest{TimeoutMS: 10_000}, nil)
			})
			if err != nil {
				return err
			}
			if st != http.StatusOK {
				return fmt.Errorf("client %d iter %d: sync run status %d", c.id, n, st)
			}
		case 3: // async run polled to completion
			var j jobInfo
			st, err := c.retry(t, func() int {
				return call(t, "POST", c.url+"/run?async=1", runRequest{TimeoutMS: 10_000}, &j)
			})
			if err != nil {
				return err
			}
			if st != http.StatusAccepted {
				return fmt.Errorf("client %d iter %d: async run status %d", c.id, n, st)
			}
			c.jobIDs = append(c.jobIDs, j.ID)
			final := pollJob(t, c.url+"/jobs/"+j.ID, func(v jobInfo) bool {
				return v.Status != jobQueued && v.Status != jobRunning
			})
			if final.Status != jobDone {
				return fmt.Errorf("client %d iter %d: job %s finished %q (%s)", c.id, n, j.ID, final.Status, final.Error)
			}
		case 4: // snapshot export under load
			resp, err := http.Get(c.url + "/snapshot")
			if err != nil {
				return fmt.Errorf("client %d iter %d: snapshot: %w", c.id, n, err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("client %d iter %d: snapshot status %d", c.id, n, resp.StatusCode)
			}
		}
	}
	return nil
}

// retry repeats op through 429 backpressure (the documented client
// contract) until another status arrives.
func (c *soakClient) retry(t *testing.T, op func() int) (int, error) {
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := op()
		c.statuses[st]++
		if st != http.StatusTooManyRequests {
			if st >= 500 {
				return st, fmt.Errorf("client %d: server error %d", c.id, st)
			}
			return st, nil
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("client %d: backpressure never cleared", c.id)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestSoakConcurrentMixedTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped with -short")
	}
	dir := t.TempDir()
	cfg := Config{
		MaxConcurrentRuns:  4,
		MaxInflightRuns:    64,
		MutationQueueDepth: 64,
		RunSlice:           50,
		DataDir:            dir,
	}
	s, ts := newTestServer(t, cfg)

	shared := createSession(t, ts.URL, createSessionRequest{Source: contractSrc})
	url := ts.URL + "/api/v1/sessions/" + shared.ID

	const clients = 8
	const iterations = 25
	workers := make([]*soakClient, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		workers[i] = &soakClient{id: i, url: url, statuses: make(map[int]int)}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = workers[i].run(t, iterations)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v (statuses %v)", i, err, workers[i].statuses)
		}
	}

	// Every acknowledged mutation must be present: items are modified by
	// the touch rule but never removed, so the count is exact.
	wantFacts := 0
	for _, c := range workers {
		wantFacts += c.acked
	}
	var wmResp struct {
		Total int `json:"total"`
	}
	if st := call(t, "GET", url+"/wm?template=item", nil, &wmResp); st != http.StatusOK {
		t.Fatalf("wm: status %d", st)
	}
	if wmResp.Total != wantFacts {
		t.Fatalf("lost mutations: working memory has %d items, clients were acked %d", wmResp.Total, wantFacts)
	}

	// Job ids must be unique across every async run of the soak.
	seen := make(map[string]bool)
	totalJobs := 0
	for _, c := range workers {
		for _, id := range c.jobIDs {
			if seen[id] {
				t.Fatalf("duplicate job id %s", id)
			}
			seen[id] = true
			totalJobs++
		}
	}
	if want := clients * (iterations / 5); totalJobs != want {
		t.Fatalf("job count: got %d, want %d", totalJobs, want)
	}

	// Quiesce, snapshot, drain — then replay the WAL serially on a fresh
	// server. The recovered snapshot must be byte-identical.
	if st := call(t, "POST", url+"/run", runRequest{TimeoutMS: 10_000}, nil); st != http.StatusOK {
		t.Fatalf("final run: status %d", st)
	}
	before := exportSnapshot(t, url)
	closeServer(t, s, ts)

	_, ts2 := newTestServer(t, cfg)
	after := exportSnapshot(t, ts2.URL+"/api/v1/sessions/"+shared.ID)
	if before != after {
		t.Fatalf("snapshot drifted across replay:\n--- drained (%d bytes)\n%.400s\n--- replayed (%d bytes)\n%.400s",
			len(before), before, len(after), after)
	}
}
