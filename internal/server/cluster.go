package server

// Cluster mode glues internal/cluster's mechanics to the session pool.
// Each node owns the slice of the session-id keyspace the consistent-hash
// ring assigns it; any node accepts any request and proxies (or 307
// redirects) those for sessions it does not own. A session's WAL frames
// stream to a follower — the next distinct member in the session's ring
// preference order — so when the owner dies, the node requests fail over
// to is exactly the node holding the replica, which promotes it through
// the ordinary recovery path: cluster failover is "recovery over the
// wire". Live migration reuses the same session-state stream (checkpoint
// image + WAL tail) with the session slot held, so mutations block only
// for the transfer itself.
//
// Explicit ownership transfers (admin moves, promotions) are recorded as
// route overrides and broadcast to every peer; pings piggyback the
// override table so nodes that were down converge after rejoining.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"parulel/internal/cluster"
	"parulel/internal/obs"
	"parulel/internal/wal"
)

// forwardedHeader marks a proxied peer request. A node receiving one
// serves it locally even if it believes another node owns the session:
// the two nodes' routing disagreed (membership churn), and bouncing the
// request back would loop.
const forwardedHeader = "X-Parulel-Forwarded"

// clusterState is one node's runtime view of the cluster.
type clusterState struct {
	cfg      cluster.Config
	members  map[string]cluster.Member
	ring     *cluster.Ring
	mship    *cluster.Membership
	client   *cluster.Client
	peerSrv  *cluster.PeerServer
	httpc    *http.Client
	replRoot string // <DataDir>/replicas

	mu        sync.Mutex
	overrides map[string]cluster.Moved
	moveSeq   uint64
	replicas  map[string]*serverReplica // open replica handles, by session
}

// startCluster wires the node into the cluster: peer listener, health
// pings, replica root. Called from New after the store is open.
func (s *Server) startCluster(cfg cluster.Config) error {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return err
	}
	if s.store == nil {
		return errors.New("cluster: mode requires a data directory (replication streams WAL frames)")
	}
	cs := &clusterState{
		cfg:       cfg,
		members:   make(map[string]cluster.Member, len(cfg.Members)),
		mship:     cluster.NewMembership(cfg),
		client:    cluster.NewClient(cfg.Node, cfg.IOTimeout),
		httpc:     &http.Client{}, // per-request contexts bound proxy calls
		replRoot:  filepath.Join(s.cfg.DataDir, "replicas"),
		overrides: make(map[string]cluster.Moved),
		replicas:  make(map[string]*serverReplica),
	}
	names := make([]string, 0, len(cfg.Members))
	for _, m := range cfg.Members {
		cs.members[m.Name] = m
		names = append(names, m.Name)
	}
	cs.ring = cluster.NewRing(names, cfg.VNodes)
	if err := os.MkdirAll(cs.replRoot, 0o755); err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	ln := cfg.PeerListener
	if ln == nil {
		addr := cfg.PeerAddr
		if addr == "" {
			addr = cfg.Self().PeerAddr
		}
		var err error
		if ln, err = net.Listen("tcp", addr); err != nil {
			return fmt.Errorf("cluster: peer listener: %w", err)
		}
	}
	cs.peerSrv = cluster.NewPeerServer(ln, &clusterBackend{s}, cfg.IOTimeout, s.cfg.Logger)
	go cs.peerSrv.Serve()
	cs.mship.Start(cfg.PingInterval, func(m cluster.Member) error {
		return cs.client.Ping(m, cs.snapshotOverrides())
	})
	s.cluster = cs
	s.metrics.enableCluster(cfg.Node)
	s.cfg.Logger.Info("cluster mode up",
		"node", cfg.Node, "members", len(cfg.Members), "peer_addr", ln.Addr().String(),
		"replication", cfg.Replication, "redirect", cfg.Redirect)
	return nil
}

// stopCluster tears the node out of the cluster during Close.
func (s *Server) stopCluster() {
	cs := s.cluster
	if cs == nil {
		return
	}
	cs.mship.Stop()
	cs.peerSrv.Close()
	cs.client.Close()
	cs.mu.Lock()
	reps := make([]*serverReplica, 0, len(cs.replicas))
	for _, rep := range cs.replicas {
		reps = append(reps, rep)
	}
	cs.mu.Unlock()
	for _, rep := range reps {
		rep.Close()
	}
}

// ---- routing ----

// candidates returns the preference order for a session id: the route
// override's target first (an explicit transfer beats hash placement),
// then the ring walk.
func (cs *clusterState) candidates(id string) []string {
	order := cs.ring.Order(id)
	cs.mu.Lock()
	ov, ok := cs.overrides[id]
	cs.mu.Unlock()
	if !ok {
		return order
	}
	out := make([]string, 0, len(order)+1)
	out = append(out, ov.Target)
	for _, n := range order {
		if n != ov.Target {
			out = append(out, n)
		}
	}
	return out
}

// effectiveOwner is the first live candidate — the node a request for the
// session should be served by right now. Empty when every candidate is
// down (never the case for self-owned keys: self is always up).
func (cs *clusterState) effectiveOwner(id string) string {
	return cs.mship.FirstUp(cs.candidates(id))
}

// replicaTarget picks the node that should hold id's replica: the first
// live candidate that is not this node, skipping names that already
// failed during this request. Ring property: with no override, this is
// exactly the node effectiveOwner falls back to if this node dies.
func (cs *clusterState) replicaTarget(id string, failed map[string]bool) (cluster.Member, bool) {
	for _, name := range cs.candidates(id) {
		if name == cs.cfg.Node || failed[name] || !cs.mship.Up(name) {
			continue
		}
		return cs.members[name], true
	}
	return cluster.Member{}, false
}

// routed wraps a session-scoped handler with the ownership check. Not in
// cluster mode it is the handler unchanged.
func (s *Server) routed(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		cs := s.cluster
		if cs == nil {
			h(w, r)
			return
		}
		id := r.PathValue("id")
		owner := cs.effectiveOwner(id)
		switch {
		case owner == cs.cfg.Node:
			if err := s.adoptIfNeeded(r.Context(), id); err != nil {
				writeError(w, http.StatusInternalServerError, "replica promotion failed: "+err.Error())
				return
			}
			h(w, r)
		case r.Header.Get(forwardedHeader) != "":
			// A peer already decided we own this; serve locally rather than
			// bounce a routing disagreement around the cluster.
			h(w, r)
		case owner == "":
			writeError(w, http.StatusServiceUnavailable, fmt.Sprintf("no live owner for session %q", id))
		case cs.cfg.Redirect:
			s.metrics.clusterRedirected()
			http.Redirect(w, r, cs.members[owner].PublicURL+r.URL.RequestURI(), http.StatusTemporaryRedirect)
		default:
			s.forward(w, r, cs.members[owner])
		}
	}
}

// forward proxies the request to a peer, tagging it against loops. The
// body was already bounded by MaxBytesReader.
func (s *Server) forward(w http.ResponseWriter, r *http.Request, m cluster.Member) {
	cs := s.cluster
	s.metrics.clusterProxied()
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	proxySp := s.startSpan(r.Context(), stageProxy)
	proxySp.SetAttr("target", m.Name)
	defer proxySp.End()
	out, err := http.NewRequestWithContext(r.Context(), r.Method, m.PublicURL+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		writeError(w, http.StatusBadGateway, err.Error())
		return
	}
	out.Header = r.Header.Clone()
	out.Header.Set(forwardedHeader, cs.cfg.Node)
	// Hand the trace on with this hop's proxy span as the parent, so the
	// owner's ingress span nests under it (and the origin request id rides
	// along for its access log).
	if ts := s.traceString(r.Context(), proxySp.ID()); ts != "" {
		out.Header.Set(obs.TraceHeader, ts)
	}
	resp, err := cs.httpc.Do(out)
	if err != nil {
		cs.mship.ReportFailure(m.Name)
		writeError(w, http.StatusBadGateway, fmt.Sprintf("proxy to %s: %v", m.Name, err))
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		if k == obs.TraceHeader {
			continue // this node's ServeHTTP already set its own
		}
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// ---- replica promotion (failover) ----

// adoptIfNeeded promotes a local replica into a live session when this
// node just became a session's effective owner: the session is neither in
// the pool nor in the store, but its replica directory is here. The
// rename puts the replicated checkpoint + WAL under sessions/<id>, and
// the ordinary lazy-rehydration path does the rest.
func (s *Server) adoptIfNeeded(ctx context.Context, id string) error {
	cs := s.cluster
	if s.store.has(id) {
		return nil
	}
	s.mu.Lock()
	_, live := s.sessions[id]
	s.mu.Unlock()
	if live {
		return nil
	}
	src := filepath.Join(cs.replRoot, id)
	if _, err := os.Stat(src); err != nil {
		return nil // no replica either; the handler 404s as usual
	}
	// Fence the replica handle first: a zombie replication stream from the
	// presumed-dead primary must not append into the promoted session.
	cs.closeReplica(id)
	cs.mu.Lock()
	// Re-check under the lock so two concurrent requests promote once.
	if s.store.has(id) {
		cs.mu.Unlock()
		return nil
	}
	err := os.Rename(src, s.store.dir(id))
	if err == nil {
		s.store.markKnown(id)
	}
	cs.mu.Unlock()
	if err != nil {
		if os.IsNotExist(err) {
			return nil // lost a race with another promoter or a Drop
		}
		return err
	}
	s.metrics.clusterPromotion()
	mv := cluster.Moved{Session: id, Target: cs.cfg.Node, Seq: cs.nextMoveSeq(id)}
	cs.setOverride(mv)
	s.broadcastMoved(mv)
	s.log(ctx).Warn("promoted replica to primary", "session_id", id)
	return nil
}

// ---- route overrides ----

// setOverride merges one explicit-transfer claim; highest Seq wins.
// Returns whether the claim was news.
func (cs *clusterState) setOverride(mv cluster.Moved) bool {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cur, ok := cs.overrides[mv.Session]; ok && cur.Seq >= mv.Seq {
		return false
	}
	cs.overrides[mv.Session] = mv
	if mv.Seq > cs.moveSeq {
		cs.moveSeq = mv.Seq
	}
	return true
}

func (cs *clusterState) snapshotOverrides() []cluster.Moved {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	out := make([]cluster.Moved, 0, len(cs.overrides))
	for _, mv := range cs.overrides {
		out = append(out, mv)
	}
	return out
}

// nextMoveSeq mints a claim sequence number strictly above every claim
// this node has seen, so competing claims from different nodes order by
// recency of cluster knowledge.
func (cs *clusterState) nextMoveSeq(id string) uint64 {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	n := cs.moveSeq + 1
	if ov, ok := cs.overrides[id]; ok && ov.Seq >= n {
		n = ov.Seq + 1
	}
	cs.moveSeq = n
	return n
}

// broadcastMoved pushes one claim to every peer, best-effort: a down peer
// converges later via ping piggyback.
func (s *Server) broadcastMoved(mv cluster.Moved) {
	cs := s.cluster
	for name, m := range cs.members {
		if name == cs.cfg.Node {
			continue
		}
		go func(m cluster.Member) {
			if err := cs.client.SendMoved(m, mv); err != nil {
				cs.mship.ReportFailure(m.Name)
			}
		}(m)
	}
}

// broadcastDrop asks every peer to discard its replica of a deleted
// session.
func (s *Server) broadcastDrop(id string) {
	cs := s.cluster
	if cs == nil {
		return
	}
	for name, m := range cs.members {
		if name == cs.cfg.Node {
			continue
		}
		go func(m cluster.Member) { _ = cs.client.SendDrop(m, id) }(m)
	}
}

// dropLocalSession discards this node's copy of a session whose ownership
// moved elsewhere: pool entry, on-disk state, jobs. The bytes are stale —
// the new owner's copy is the session.
func (s *Server) dropLocalSession(id string) {
	s.mu.Lock()
	if sess, ok := s.sessions[id]; ok {
		if sess.repl != nil {
			sess.repl.Close()
			sess.repl = nil
		}
		s.evictLocked(sess)
	}
	s.mu.Unlock()
	if s.store.has(id) {
		if err := s.store.remove(id); err != nil {
			s.cfg.Logger.Error("dropping moved session", "session_id", id, "err", err)
		}
	}
	s.jobs.dropSession(id)
}

// ---- replication (primary side) ----

// replicate makes rec durable on the session's replica. A nil rec means
// the record is already folded into the on-disk state (a checkpoint just
// compacted it) and only a caught-up replica is required. Under ReplSync
// a false return fails the request: the mutation is locally durable but
// not replicated, and acking it would break the no-acked-loss contract.
// Under ReplAsync failures are only counted. With every other member down
// the node proceeds unreplicated — a lone survivor must not refuse all
// writes. Caller holds the session slot.
func (s *Server) replicate(ctx context.Context, sess *session, rec *wal.Record) bool {
	cs := s.cluster
	if cs == nil || cs.cfg.Replication == cluster.ReplOff || sess.dur == nil {
		return true
	}
	if s.replicateRecord(ctx, sess, rec) || cs.cfg.Replication == cluster.ReplAsync {
		return true
	}
	return false
}

// replicateRecord sends rec on the session's live replication stream,
// attaching one (full state sync) when none exists, and re-targeting once
// when the stream or the attach fails. An attach counts as delivery: the
// state sync reads the local disk, which already holds rec.
func (s *Server) replicateRecord(ctx context.Context, sess *session, rec *wal.Record) bool {
	cs := s.cluster
	failed := make(map[string]bool)
	ackSp := s.startSpan(ctx, stageReplAck)
	defer ackSp.End()
	for attempt := 0; attempt < 2; attempt++ {
		if sess.repl == nil {
			target, ok := cs.replicaTarget(sess.id, failed)
			if !ok {
				s.metrics.clusterUnprotected()
				s.log(ctx).Warn("no live replica target; proceeding unreplicated", "session_id", sess.id)
				return true
			}
			st, err := s.diskState(sess)
			if err != nil {
				s.log(ctx).Error("reading session state for replication", "session_id", sess.id, "err", err)
				return false
			}
			stream, err := cs.client.OpenReplStream(target, sess.id, st)
			if err != nil {
				failed[target.Name] = true
				cs.mship.ReportFailure(target.Name)
				s.metrics.clusterReplFailure()
				s.log(ctx).Warn("replica attach failed", "session_id", sess.id, "target", target.Name, "err", err)
				continue
			}
			sess.repl = stream
			s.metrics.clusterReplStream()
			s.metrics.clusterReplRecord()
			ackSp.SetAttr("target", target.Name)
			ackSp.SetAttr("attach", "1")
			return true
		}
		if rec == nil {
			// The live stream already mirrored the state (checkpoint push
			// succeeded before this call).
			return true
		}
		if err := sess.repl.SendRecord(rec, s.traceString(ctx, ackSp.ID())); err != nil {
			name := sess.repl.Target.Name
			failed[name] = true
			cs.mship.ReportFailure(name)
			s.metrics.clusterReplFailure()
			s.log(ctx).Warn("replication send failed", "session_id", sess.id, "target", name, "err", err)
			sess.repl.Close()
			sess.repl = nil
			continue
		}
		s.metrics.clusterReplRecord()
		ackSp.SetAttr("target", sess.repl.Target.Name)
		return true
	}
	return false
}

// replicateCheckpoint mirrors a freshly written checkpoint to the live
// replica and truncates its log, keeping the replica as compact as the
// primary. Best-effort: on failure the stream is dropped and the next
// mutation re-attaches with a full state sync that includes this
// checkpoint. Caller holds the session slot.
func (s *Server) replicateCheckpoint(ctx context.Context, sess *session) {
	cs := s.cluster
	if cs == nil || sess.repl == nil || sess.dur == nil {
		return
	}
	image, err := os.ReadFile(filepath.Join(sess.dur.dir, checkpointFile))
	if err == nil {
		err = sess.repl.SendCheckpoint(image)
	}
	if err == nil {
		err = sess.repl.SendReset()
	}
	if err != nil {
		s.metrics.clusterReplFailure()
		s.log(ctx).Warn("checkpoint replication failed; stream dropped", "session_id", sess.id, "err", err)
		sess.repl.Close()
		sess.repl = nil
	}
}

// diskState snapshots a session's transferable state from its on-disk
// files: the checkpoint image plus every WAL record behind it. Caller
// holds the session slot, so nothing appends concurrently; the open log
// handle is unaffected by the read-only scan.
func (s *Server) diskState(sess *session) (cluster.SessionState, error) {
	var st cluster.SessionState
	dir := sess.dur.dir
	if b, err := os.ReadFile(filepath.Join(dir, checkpointFile)); err == nil {
		st.Checkpoint = b
	} else if !os.IsNotExist(err) {
		return st, err
	}
	res, err := wal.ScanFile(filepath.Join(dir, walFile))
	if err != nil {
		return st, err
	}
	st.Tail = res.Records
	return st, nil
}

// ---- replica store (follower side) ----

// serverReplica implements cluster.Replica over a replica directory that
// mirrors a session directory (wal.log + checkpoint), with the primary's
// sequence numbers preserved — promotion is a rename plus the ordinary
// recovery path.
type serverReplica struct {
	cs  *clusterState
	s   *Server
	id  string
	dir string

	mu     sync.Mutex
	log    *wal.Log
	closed bool
}

var errReplicaFenced = errors.New("replica fenced")

func (r *serverReplica) AppendRecord(rec *wal.Record, trace string) error {
	t0 := time.Now()
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return errReplicaFenced
	}
	err := r.log.AppendKeepSeq(rec)
	r.mu.Unlock()
	// The producing request's trace arrived with the record; record the
	// follower-side apply into this node's span store so the assembled
	// cluster trace shows both sides of the replication hop.
	if tc, ok := obs.ParseTraceContext(trace); ok {
		r.s.spans.Record(obs.Span{
			TraceID:  tc.TraceID,
			Parent:   tc.Parent,
			Stage:    stageReplApply,
			StartUNN: t0.UnixNano(),
			DurNS:    time.Since(t0).Nanoseconds(),
			Attrs: map[string]string{
				"session": r.id,
				"seq":     strconv.FormatUint(rec.Seq, 10),
			},
		})
	}
	return err
}

func (r *serverReplica) PutCheckpoint(image []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return errReplicaFenced
	}
	return writeFileSync(r.dir, checkpointFile, image)
}

func (r *serverReplica) Reset() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return errReplicaFenced
	}
	return r.log.Reset()
}

func (r *serverReplica) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	err := r.log.Close()
	r.mu.Unlock()
	r.cs.unregisterReplica(r.id, r)
	return err
}

func (cs *clusterState) registerReplica(id string, rep *serverReplica) {
	cs.mu.Lock()
	cs.replicas[id] = rep
	cs.mu.Unlock()
}

func (cs *clusterState) unregisterReplica(id string, rep *serverReplica) {
	cs.mu.Lock()
	if cs.replicas[id] == rep {
		delete(cs.replicas, id)
	}
	cs.mu.Unlock()
}

// closeReplica fences the open replica handle for id, if any: subsequent
// stream appends fail rather than touching files a promotion or drop is
// about to take.
func (cs *clusterState) closeReplica(id string) {
	cs.mu.Lock()
	rep := cs.replicas[id]
	cs.mu.Unlock()
	if rep != nil {
		rep.Close()
	}
}

// replicaCount counts replica directories currently held.
func (cs *clusterState) replicaCount() int {
	entries, err := os.ReadDir(cs.replRoot)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if e.IsDir() {
			n++
		}
	}
	return n
}

// writeFileSync atomically replaces dir/name: temp file, fsync, rename,
// fsync the directory — the same discipline as durable.checkpoint.
func writeFileSync(dir, name string, data []byte) error {
	tmp := filepath.Join(dir, name+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, filepath.Join(dir, name))
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// ---- peer protocol backend ----

// clusterBackend implements cluster.Backend for the peer server.
type clusterBackend struct{ s *Server }

func (b *clusterBackend) OpenReplica(id string) (cluster.Replica, error) {
	s := b.s
	cs := s.cluster
	// A new stream always starts with a full state sync: fence and discard
	// whatever a previous stream left.
	cs.closeReplica(id)
	dir := filepath.Join(cs.replRoot, id)
	if err := os.RemoveAll(dir); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l, _, err := wal.Open(filepath.Join(dir, walFile), s.store.walOpts)
	if err != nil {
		return nil, err
	}
	rep := &serverReplica{cs: cs, s: s, id: id, dir: dir, log: l}
	cs.registerReplica(id, rep)
	return rep, nil
}

func (b *clusterBackend) InstallMigrated(id string, st cluster.SessionState, trace string) error {
	s := b.s
	cs := s.cluster
	t0 := time.Now()
	defer func() {
		if tc, ok := obs.ParseTraceContext(trace); ok {
			s.spans.Record(obs.Span{
				TraceID:  tc.TraceID,
				Parent:   tc.Parent,
				Stage:    stageMigrateIn,
				StartUNN: t0.UnixNano(),
				DurNS:    time.Since(t0).Nanoseconds(),
				Attrs:    map[string]string{"session": id},
			})
		}
	}()
	if s.store.has(id) {
		return fmt.Errorf("session %s already exists on %s", id, cs.cfg.Node)
	}
	s.mu.Lock()
	_, live := s.sessions[id]
	s.mu.Unlock()
	if live {
		return fmt.Errorf("session %s is live on %s", id, cs.cfg.Node)
	}
	// This node may hold the session's replica (the migration target often
	// is the replica holder); the stream is dead or dying, and the
	// explicit transfer supersedes the replica.
	cs.closeReplica(id)
	_ = os.RemoveAll(filepath.Join(cs.replRoot, id))

	dir := s.store.dir(id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	install := func() error {
		if st.Checkpoint != nil {
			if err := writeFileSync(dir, checkpointFile, st.Checkpoint); err != nil {
				return err
			}
		}
		l, _, err := wal.Open(filepath.Join(dir, walFile), s.store.walOpts)
		if err != nil {
			return err
		}
		for i := range st.Tail {
			if err := l.AppendKeepSeq(&st.Tail[i]); err != nil {
				l.Close()
				return err
			}
		}
		if err := l.Close(); err != nil { // Close fsyncs buffered appends
			return err
		}
		return syncDir(dir)
	}
	if err := install(); err != nil {
		os.RemoveAll(dir)
		return err
	}
	s.store.markKnown(id)
	s.metrics.clusterMigratedIn()
	return nil
}

func (b *clusterBackend) HandleMoved(mv cluster.Moved) {
	cs := b.s.cluster
	if !cs.setOverride(mv) {
		return // stale claim
	}
	if mv.Target != cs.cfg.Node {
		// Ownership went elsewhere; any local copy is stale.
		b.s.dropLocalSession(mv.Session)
	}
}

func (b *clusterBackend) HandlePing(p cluster.Ping) {
	for _, mv := range p.Overrides {
		b.HandleMoved(mv)
	}
	// Seeing a peer's ping is itself evidence it is up.
	b.s.cluster.mship.ReportSuccess(p.Node)
}

func (b *clusterBackend) DropReplica(id string) error {
	cs := b.s.cluster
	cs.closeReplica(id)
	return os.RemoveAll(filepath.Join(cs.replRoot, id))
}

// ---- live migration ----

// migrateSession moves one session to target: checkpoint (compacting the
// transferable state), stream checkpoint + WAL tail with the session slot
// held (mutations block for exactly the transfer), cut over on the
// target's install ack, then drop the local copy and broadcast the new
// route. On any pre-cutover error the session stays here, untouched.
func (s *Server) migrateSession(ctx context.Context, id string, target cluster.Member) error {
	cs := s.cluster
	sess, err := s.sessionByID(ctx, id)
	if err != nil {
		return err
	}
	if err := sess.acquire(ctx); err != nil {
		return fmt.Errorf("waiting for the session: %w", err)
	}
	defer sess.release()
	if sess.closed.Load() {
		return errors.New("session was evicted while the move waited; retry")
	}
	if sess.dur == nil {
		return errors.New("session has no durable state to migrate")
	}
	t0 := time.Now()
	migSp := s.startSpan(ctx, stageMigrate)
	migSp.SetAttr("session", id)
	migSp.SetAttr("target", target.Name)
	defer migSp.End()
	_ = s.checkpointSession(ctx, sess) // failure just means a longer WAL tail
	st, err := s.diskState(sess)
	if err != nil {
		return err
	}
	if err := cs.client.Migrate(target, id, st, s.traceString(ctx, migSp.ID())); err != nil {
		cs.mship.ReportFailure(target.Name)
		return err
	}

	// Cutover: the target owns the session from here on.
	mv := cluster.Moved{Session: id, Target: target.Name, Seq: cs.nextMoveSeq(id)}
	cs.setOverride(mv)
	var oldReplica string
	if sess.repl != nil {
		oldReplica = sess.repl.Target.Name
		sess.repl.Close()
		sess.repl = nil
	}
	s.mu.Lock()
	if cur, ok := s.sessions[id]; ok {
		s.evictLocked(cur)
	}
	s.mu.Unlock()
	if err := s.store.remove(id); err != nil {
		s.log(ctx).Error("removing migrated session's files", "session_id", id, "err", err)
	}
	s.jobs.dropSession(id)
	s.broadcastMoved(mv)
	if oldReplica != "" && oldReplica != target.Name {
		if m, ok := cs.members[oldReplica]; ok {
			go func() { _ = cs.client.SendDrop(m, id) }()
		}
	}
	s.metrics.clusterMigratedOut()
	s.log(ctx).Info("session migrated out",
		"session_id", id, "target", target.Name,
		"checkpoint_bytes", len(st.Checkpoint), "tail_records", len(st.Tail),
		"duration_ms", time.Since(t0).Milliseconds())
	return nil
}

// ---- HTTP handlers ----

// clusterRoute is the ?session= route answer on GET /cluster.
type clusterRoute struct {
	Session    string   `json:"session"`
	Owner      string   `json:"owner"`
	Candidates []string `json:"candidates"`
	Overridden bool     `json:"overridden"`
}

func (s *Server) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	cs := s.cluster
	if cs == nil {
		writeError(w, http.StatusNotFound, "not running in cluster mode")
		return
	}
	resp := map[string]any{
		"node":        cs.cfg.Node,
		"replication": cs.cfg.Replication,
		"redirect":    cs.cfg.Redirect,
		"members":     cs.mship.Snapshot(),
		"overrides":   cs.snapshotOverrides(),
		"replicas":    cs.replicaCount(),
	}
	if id := r.URL.Query().Get("session"); id != "" {
		cs.mu.Lock()
		_, overridden := cs.overrides[id]
		cs.mu.Unlock()
		resp["route"] = clusterRoute{
			Session:    id,
			Owner:      cs.effectiveOwner(id),
			Candidates: cs.candidates(id),
			Overridden: overridden,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleClusterMove(w http.ResponseWriter, r *http.Request) {
	cs := s.cluster
	if cs == nil {
		writeError(w, http.StatusNotFound, "not running in cluster mode")
		return
	}
	var req struct {
		Session string `json:"session"`
		Target  string `json:"target"`
	}
	// Buffer the body: a non-owner re-sends this request to the owner.
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	if err := json.Unmarshal(raw, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if req.Session == "" || req.Target == "" {
		writeError(w, http.StatusBadRequest, "session and target are required")
		return
	}
	target, ok := cs.members[req.Target]
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown member %q", req.Target))
		return
	}
	owner := cs.effectiveOwner(req.Session)
	switch {
	case owner == "":
		writeError(w, http.StatusServiceUnavailable, "no live owner for the session")
		return
	case owner != cs.cfg.Node && r.Header.Get(forwardedHeader) == "":
		r.Body = io.NopCloser(bytes.NewReader(raw))
		s.forward(w, r, cs.members[owner]) // the owner executes the move
		return
	case owner != cs.cfg.Node:
		writeError(w, http.StatusServiceUnavailable, "routing disagreement; retry")
		return
	}
	if target.Name == cs.cfg.Node {
		writeJSON(w, http.StatusOK, map[string]any{
			"moved": false, "session": req.Session, "target": target.Name,
			"note": "session is already on this node",
		})
		return
	}
	if !cs.mship.Up(target.Name) {
		writeError(w, http.StatusServiceUnavailable, fmt.Sprintf("target %s is down", target.Name))
		return
	}
	if err := s.migrateSession(r.Context(), req.Session, target); err != nil {
		status := http.StatusInternalServerError
		s.mu.Lock()
		_, live := s.sessions[req.Session]
		s.mu.Unlock()
		if !live && !s.store.has(req.Session) {
			status = http.StatusNotFound
		}
		writeError(w, status, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"moved": true, "session": req.Session, "target": target.Name,
	})
}
