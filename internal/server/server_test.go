package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"parulel/internal/wm"
)

// spinnerSrc modifies one counter WME per cycle, effectively forever —
// the timeout-path workload.
const spinnerSrc = `
(literalize counter n)
(rule tick
  <c> <- (counter ^n <n>)
  (test (< <n> 1000000000))
-->
  (modify <c> ^n (+ <n> 1)))
(wm (counter ^n 0))
`

// boundedSrc is the same counter stopped after 2000 cycles (finishes in
// well under a second); drainSrc runs long enough (~hundreds of ms) for
// the drain test to observe it in flight, but still finishes.
const boundedSrc = `
(literalize counter n)
(rule tick
  <c> <- (counter ^n <n>)
  (test (< <n> 2000))
-->
  (modify <c> ^n (+ <n> 1)))
(wm (counter ^n 0))
`

const drainSrc = `
(literalize counter n)
(rule tick
  <c> <- (counter ^n <n>)
  (test (< <n> 50000))
-->
  (modify <c> ^n (+ <n> 1)))
(wm (counter ^n 0))
`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Close(ctx)
	})
	return s, ts
}

// call performs one JSON request and decodes the response into out (which
// may be nil). It returns the status code.
func call(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decode %s %s response %q: %v", method, url, data, err)
		}
	}
	return resp.StatusCode
}

func createSession(t *testing.T, base string, req createSessionRequest) sessionInfo {
	t.Helper()
	var info sessionInfo
	if st := call(t, "POST", base+"/api/v1/sessions", req, &info); st != http.StatusCreated {
		t.Fatalf("create session: status %d", st)
	}
	return info
}

func TestSessionLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := ts.URL

	var progs struct {
		Programs []string `json:"programs"`
	}
	if st := call(t, "GET", base+"/api/v1/programs", nil, &progs); st != 200 || len(progs.Programs) < 5 {
		t.Fatalf("programs: status %d, %v", st, progs.Programs)
	}

	info := createSession(t, base, createSessionRequest{Program: "quickstart", Workers: 2})
	if info.ID == "" || info.Program != "quickstart" || info.WMSize != 1 {
		t.Fatalf("bad session info: %+v", info)
	}
	sessURL := base + "/api/v1/sessions/" + info.ID

	// Assert two adults and a minor.
	facts := assertRequest{Facts: []factPayload{
		{Template: "person", Fields: map[string]jsonValue{"name": {wm.Sym("ada")}, "age": {wm.Int(36)}}},
		{Template: "person", Fields: map[string]jsonValue{"name": {wm.Sym("grace")}, "age": {wm.Int(45)}}},
		{Template: "person", Fields: map[string]jsonValue{"name": {wm.Sym("kid")}, "age": {wm.Int(9)}}},
	}}
	var cnt countResponse
	if st := call(t, "POST", sessURL+"/facts", facts, &cnt); st != 200 || cnt.Count != 3 {
		t.Fatalf("assert: status %d, %+v", st, cnt)
	}

	var run runResponse
	if st := call(t, "POST", sessURL+"/run", runRequest{}, &run); st != 200 {
		t.Fatalf("run: status %d", st)
	}
	if !run.Quiescent || run.Halted {
		t.Fatalf("quickstart should quiesce without halt: %+v", run)
	}
	// greet fires twice (adults), count fires twice (serialized by the
	// meta-rule, one per cycle).
	if run.Firings != 4 {
		t.Fatalf("firings = %d, want 4: %+v", run.Firings, run)
	}
	if run.Redactions == 0 {
		t.Fatalf("expected redactions from one-count-per-cycle: %+v", run)
	}
	if !strings.Contains(run.Output, "hello, ada") || !strings.Contains(run.Output, "hello, grace") {
		t.Fatalf("output missing greetings: %q", run.Output)
	}
	if strings.Contains(run.Output, "kid") {
		t.Fatalf("minor should not be greeted: %q", run.Output)
	}

	// Query the tally: must be 2.
	var wmResp struct {
		Total int           `json:"total"`
		Facts []factPayload `json:"facts"`
	}
	if st := call(t, "GET", sessURL+"/wm?template=tally", nil, &wmResp); st != 200 {
		t.Fatalf("wm: status %d", st)
	}
	if wmResp.Total != 1 || !wmResp.Facts[0].Fields["n"].V.Equal(wm.Int(2)) {
		t.Fatalf("tally = %+v, want n=2", wmResp)
	}

	// Retract one greeted fact, check the count drops.
	var ret countResponse
	rr := retractRequest{Template: "greeted", Fields: map[string]jsonValue{"name": {wm.Sym("ada")}}}
	if st := call(t, "POST", sessURL+"/retract", rr, &ret); st != 200 || ret.Count != 1 {
		t.Fatalf("retract: status %d, %+v", st, ret)
	}

	// Delete; subsequent access 404s.
	if st := call(t, "DELETE", sessURL, nil, nil); st != 200 {
		t.Fatalf("delete: status %d", st)
	}
	if st := call(t, "GET", sessURL, nil, nil); st != http.StatusNotFound {
		t.Fatalf("get after delete: status %d, want 404", st)
	}
}

func TestUnknownProgramAndBadSource(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if st := call(t, "POST", ts.URL+"/api/v1/sessions", createSessionRequest{Program: "nope"}, nil); st != 400 {
		t.Fatalf("unknown program: status %d, want 400", st)
	}
	if st := call(t, "POST", ts.URL+"/api/v1/sessions", createSessionRequest{Source: "(rule oops"}, nil); st != 400 {
		t.Fatalf("bad source: status %d, want 400", st)
	}
	if st := call(t, "POST", ts.URL+"/api/v1/sessions", createSessionRequest{}, nil); st != 400 {
		t.Fatalf("empty create: status %d, want 400", st)
	}
}

// TestConcurrentSessionsDeterministic is the acceptance check: sessions
// exercised in parallel return exactly the results the same requests
// produce when run alone.
func TestConcurrentSessionsDeterministic(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrentRuns: 4})
	base := ts.URL

	// Reference: closure over a small chain, sequential.
	mkFacts := func(n int) assertRequest {
		var req assertRequest
		for i := 0; i < n; i++ {
			req.Facts = append(req.Facts, factPayload{Template: "arc", Fields: map[string]jsonValue{
				"from": {wm.Int(int64(i))}, "to": {wm.Int(int64(i + 1))},
			}})
		}
		return req
	}
	runOne := func(t *testing.T, n int) runResponse {
		info := createSession(t, base, createSessionRequest{Program: "closure", Workers: 2})
		sessURL := base + "/api/v1/sessions/" + info.ID
		if st := call(t, "POST", sessURL+"/facts", mkFacts(n), nil); st != 200 {
			t.Fatalf("assert: status %d", st)
		}
		var run runResponse
		if st := call(t, "POST", sessURL+"/run", runRequest{}, &run); st != 200 {
			t.Fatalf("run: status %d", st)
		}
		return run
	}

	sizes := []int{3, 5, 8, 12}
	want := make([]runResponse, len(sizes))
	for i, n := range sizes {
		want[i] = runOne(t, n)
		want[i].WallMS = 0
	}

	// Now the same four workloads concurrently, several times over.
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for round := 0; round < 4; round++ {
		for i, n := range sizes {
			wg.Add(1)
			go func(i, n int) {
				defer wg.Done()
				got := runOne(t, n)
				got.WallMS = 0 // wall time varies; compare semantic fields
				if got != want[i] {
					errs <- fmt.Sprintf("closure(%d): concurrent run %+v != sequential %+v", n, got, want[i])
				}
			}(i, n)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

func TestRunTimeout504AndSessionStillUsable(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := ts.URL
	info := createSession(t, base, createSessionRequest{Source: spinnerSrc, Workers: 1})
	sessURL := base + "/api/v1/sessions/" + info.ID

	var timeoutBody struct {
		Error  string      `json:"error"`
		Result runResponse `json:"result"`
	}
	st := call(t, "POST", sessURL+"/run", runRequest{TimeoutMS: 60}, &timeoutBody)
	if st != http.StatusGatewayTimeout {
		t.Fatalf("run: status %d, want 504", st)
	}
	if timeoutBody.Result.Cycles == 0 {
		t.Fatalf("some cycles should have committed before the deadline: %+v", timeoutBody)
	}

	// The session must still be usable: WM is consistent (one counter whose
	// value equals the committed cycle count)…
	var wmResp struct {
		Total int           `json:"total"`
		Facts []factPayload `json:"facts"`
	}
	if st := call(t, "GET", sessURL+"/wm", nil, &wmResp); st != 200 || wmResp.Total != 1 {
		t.Fatalf("wm after timeout: status %d, %+v", st, wmResp)
	}
	n := wmResp.Facts[0].Fields["n"].V
	if n.AsInt() != int64(timeoutBody.Result.Cycles) {
		t.Fatalf("counter %v != committed cycles %d", n, timeoutBody.Result.Cycles)
	}

	// …and after retracting the counter, a run quiesces normally.
	if st := call(t, "POST", sessURL+"/retract", retractRequest{Template: "counter"}, nil); st != 200 {
		t.Fatalf("retract: status %d", st)
	}
	var run runResponse
	if st := call(t, "POST", sessURL+"/run", runRequest{TimeoutMS: 5000}, &run); st != 200 || !run.Quiescent {
		t.Fatalf("run after timeout: status %d, %+v", st, run)
	}
}

func TestLRUEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxSessions: 2})
	base := ts.URL
	a := createSession(t, base, createSessionRequest{Program: "quickstart"})
	b := createSession(t, base, createSessionRequest{Program: "quickstart"})
	// Touch a so b is the LRU victim.
	if st := call(t, "GET", base+"/api/v1/sessions/"+a.ID, nil, nil); st != 200 {
		t.Fatalf("touch: status %d", st)
	}
	c := createSession(t, base, createSessionRequest{Program: "quickstart"})
	if st := call(t, "GET", base+"/api/v1/sessions/"+b.ID, nil, nil); st != http.StatusNotFound {
		t.Fatalf("LRU session should be evicted: status %d", st)
	}
	for _, id := range []string{a.ID, c.ID} {
		if st := call(t, "GET", base+"/api/v1/sessions/"+id, nil, nil); st != 200 {
			t.Fatalf("session %s should survive: status %d", id, st)
		}
	}
	var m metricsPayload
	if st := call(t, "GET", base+"/metrics", nil, &m); st != 200 {
		t.Fatalf("metrics: status %d", st)
	}
	if m.Sessions.Evicted != 1 || m.Sessions.Live != 2 {
		t.Fatalf("metrics eviction counts wrong: %+v", m.Sessions)
	}
	_ = s
}

func TestIdleExpiry(t *testing.T) {
	_, ts := newTestServer(t, Config{IdleTTL: 50 * time.Millisecond, SweepInterval: 10 * time.Millisecond})
	base := ts.URL
	info := createSession(t, base, createSessionRequest{Program: "quickstart"})
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := call(t, "GET", base+"/api/v1/sessions/"+info.ID, nil, nil)
		if st == http.StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("session did not expire")
		}
		// Polling refreshes lastUsed — back off beyond the TTL so the
		// janitor gets a chance.
		time.Sleep(120 * time.Millisecond)
	}
	var m metricsPayload
	call(t, "GET", base+"/metrics", nil, &m)
	if m.Sessions.Expired == 0 {
		t.Fatalf("expired count = 0: %+v", m.Sessions)
	}
}

func TestSnapshotRoundTripOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := ts.URL
	info := createSession(t, base, createSessionRequest{Program: "quickstart"})
	sessURL := base + "/api/v1/sessions/" + info.ID
	call(t, "POST", sessURL+"/facts", assertRequest{Facts: []factPayload{
		{Template: "person", Fields: map[string]jsonValue{"name": {wm.Sym("ada")}, "age": {wm.Int(36)}}},
	}}, nil)
	var run runResponse
	if st := call(t, "POST", sessURL+"/run", runRequest{}, &run); st != 200 {
		t.Fatalf("run: status %d", st)
	}

	resp, err := http.Get(sessURL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.HasPrefix(string(snap), "(wm") {
		t.Fatalf("snapshot does not look like a (wm …) block: %q", snap[:min(len(snap), 40)])
	}

	// Reload into a schema-only session (no rules, no initial facts).
	decls := createSession(t, base, createSessionRequest{Source: `
(literalize person  name age)
(literalize greeted name counted)
(literalize tally   n)
`})
	declsURL := base + "/api/v1/sessions/" + decls.ID
	req, _ := http.NewRequest("POST", declsURL+"/snapshot", bytes.NewReader(snap))
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var cnt countResponse
	json.NewDecoder(resp2.Body).Decode(&cnt)
	resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Fatalf("snapshot import: status %d", resp2.StatusCode)
	}
	if cnt.WMSize != run.WMSize {
		t.Fatalf("imported WM size %d != exported %d", cnt.WMSize, run.WMSize)
	}

	// Re-export from the copy: modulo time tags, same facts.
	resp3, err := http.Get(declsURL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	snap2, _ := io.ReadAll(resp3.Body)
	resp3.Body.Close()
	if canonical(string(snap)) != canonical(string(snap2)) {
		t.Fatalf("snapshot did not round-trip:\n-- original --\n%s\n-- reimported --\n%s", snap, snap2)
	}
}

// canonical sorts a snapshot's fact lines so comparisons ignore ordering.
func canonical(s string) string {
	lines := strings.Split(s, "\n")
	facts := lines[:0]
	for _, l := range lines {
		if strings.HasPrefix(strings.TrimSpace(l), "(") && !strings.HasPrefix(l, "(wm") {
			facts = append(facts, strings.TrimSpace(l))
		}
	}
	sortStrings(facts)
	return strings.Join(facts, "\n")
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestMetricsHistogramsNonZero(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := ts.URL
	info := createSession(t, base, createSessionRequest{Source: boundedSrc})
	if st := call(t, "POST", base+"/api/v1/sessions/"+info.ID+"/run", runRequest{TimeoutMS: 30000}, nil); st != 200 {
		t.Fatalf("run: status %d", st)
	}
	var m metricsPayload
	if st := call(t, "GET", base+"/metrics", nil, &m); st != 200 {
		t.Fatalf("metrics: status %d", st)
	}
	if m.Engine.Cycles != 2000 || m.Engine.Fired != 2000 {
		t.Fatalf("engine counters wrong: %+v", m.Engine)
	}
	for _, phase := range []string{"match", "redact", "fire", "apply"} {
		p, ok := m.Engine.Phases[phase]
		if !ok || p.HistCount == 0 {
			t.Fatalf("phase %s histogram empty: %+v", phase, p)
		}
		var sum uint64
		for _, c := range p.Hist {
			sum += c
		}
		if sum != p.HistCount {
			t.Fatalf("phase %s histogram counts inconsistent", phase)
		}
	}
	if m.Engine.Window.Cycles == 0 || m.Engine.Window.Match.P50 < 0 {
		t.Fatalf("window summary empty: %+v", m.Engine.Window)
	}
	if m.Runs.Completed != 1 || m.Runs.Started != 1 {
		t.Fatalf("run counters wrong: %+v", m.Runs)
	}
}

func TestGracefulDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	base := ts.URL
	info := createSession(t, base, createSessionRequest{Source: drainSrc, Workers: 1})
	sessURL := base + "/api/v1/sessions/" + info.ID

	runDone := make(chan runResponse, 1)
	go func() {
		var run runResponse
		if st := call(t, "POST", sessURL+"/run", runRequest{TimeoutMS: 30000}, &run); st != 200 {
			t.Errorf("in-flight run: status %d", st)
		}
		runDone <- run
	}()

	// Wait for the run to be active, then drain.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		active := s.active
		s.mu.Unlock()
		if active > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("run never became active")
		}
		time.Sleep(time.Millisecond)
	}

	closed := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		closed <- s.Close(ctx)
	}()

	// New runs during the drain are rejected once draining is observed.
	drainDeadline := time.Now().Add(5 * time.Second)
	for {
		st := call(t, "POST", sessURL+"/run", runRequest{TimeoutMS: 1000}, nil)
		if st == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(drainDeadline) {
			t.Fatalf("draining server accepted a run: status %d", st)
		}
		time.Sleep(time.Millisecond)
	}

	run := <-runDone
	if !run.Quiescent || run.Cycles != 50000 {
		t.Fatalf("in-flight run should complete during drain: %+v", run)
	}
	if err := <-closed; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestJSONValueRoundTrip(t *testing.T) {
	vals := []wm.Value{
		wm.Nil(), wm.Int(42), wm.Int(-1), wm.Float(2.5), wm.Float(3),
		wm.Sym("hello"), wm.Str("a string"), wm.Bool(true),
	}
	for _, v := range vals {
		b, err := json.Marshal(jsonValue{v})
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		var back jsonValue
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if !back.V.Equal(v) {
			t.Errorf("round trip %v -> %s -> %v", v, b, back.V)
		}
	}
	// Typed input forms.
	var tv jsonValue
	if err := json.Unmarshal([]byte(`{"float": 2}`), &tv); err != nil || tv.V != wm.Float(2) {
		t.Errorf(`{"float": 2} = %v, %v`, tv.V, err)
	}
	if err := json.Unmarshal([]byte(`{"str": "s"}`), &tv); err != nil || tv.V != wm.Str("s") {
		t.Errorf(`{"str": "s"} = %v, %v`, tv.V, err)
	}
	if err := json.Unmarshal([]byte(`{"bogus": 1}`), &tv); err == nil {
		t.Error("unknown typed key should fail")
	}
}
