package server

import (
	"container/list"
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"parulel/internal/cluster"
	"parulel/internal/compile"
	"parulel/internal/core"
	"parulel/internal/match"
	"parulel/internal/match/rete"
	"parulel/internal/match/treat"
	"parulel/internal/obs"
	"parulel/internal/temporal"
	"parulel/internal/wm"
)

// session is one hosted engine instance. All engine access is serialized
// through the slot channel (a context-aware mutex): the PARULEL engine
// parallelizes *within* a cycle, but a session processes one request at a
// time, like one PARADISER client transaction stream.
type session struct {
	id      string
	program string
	workers int
	matcher string
	eng     *core.Engine
	out     *capWriter
	created time.Time
	// clock is the session's temporal manager: TTL expiry and window
	// aggregates advance when a tick op or stream frame ticks it. Guarded
	// by the session slot like the engine itself.
	clock *temporal.Manager
	// trace records the most recent engine cycles. Internally locked, so
	// the trace endpoint reads it without taking the session slot.
	trace *obs.Ring
	// phases accumulates cumulative per-phase engine time; driveRun diffs
	// snapshots around a run to emit engine.* child spans for the
	// distributed trace. Internally locked.
	phases *obs.PhaseAccum

	// dur is the session's durability handle; nil when the server runs
	// without a data directory.
	dur *durable

	// repl is the live replication stream to this session's follower; nil
	// when not in cluster mode, replication is off, or no stream is
	// attached (it attaches lazily on the next mutation). Guarded by the
	// session slot, except that eviction and drop paths may Close it —
	// net.Conn.Close is safe against a concurrent send, which then fails
	// and detaches.
	repl *cluster.ReplStream

	// slot serializes engine use; closed marks an evicted/expired/deleted
	// session (checked after acquiring slot, since a waiter may win the
	// slot only after eviction).
	slot   chan struct{}
	closed atomic.Bool
	// waiters counts requests holding or queued for the slot via
	// withSession — the admission gate for Config.MutationQueueDepth.
	waiters atomic.Int32

	// recoveredJobs maps job id → last logged status, populated while
	// replaying wal.OpJob records and folded into the server's job
	// registry once the session enters the pool.
	recoveredJobs map[string]string

	// Guarded by Server.mu.
	lastUsed time.Time
	elem     *list.Element

	// Guarded by slot (only the slot holder touches these).
	runs       int
	timeouts   int
	lastResult core.Result
	statCycles int // cycles already folded into the server metrics
	// lastProfs snapshots the engine's cumulative per-rule profiles as of
	// the last fold into the server metrics, so each run contributes
	// exactly its own delta.
	lastProfs map[string]match.RuleProfile
}

// acquire takes the session's slot, waiting until the context ends.
func (s *session) acquire(ctx context.Context) error {
	select {
	case s.slot <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// tryAcquire takes the slot only if it is free.
func (s *session) tryAcquire() bool {
	select {
	case s.slot <- struct{}{}:
		return true
	default:
		return false
	}
}

func (s *session) release() { <-s.slot }

// busy reports whether some request currently holds the slot.
func (s *session) busy() bool { return len(s.slot) > 0 }

// info renders the session for list/get responses. lastUsed is passed in
// because it is guarded by the server mutex, not the slot.
func (s *session) info(lastUsed time.Time) sessionInfo {
	res := s.lastResult
	return sessionInfo{
		ID:         s.id,
		Program:    s.program,
		Workers:    s.workers,
		Matcher:    s.matcher,
		CreatedAt:  s.created.UTC().Format(time.RFC3339Nano),
		LastUsedAt: lastUsed.UTC().Format(time.RFC3339Nano),
		WMSize:     s.eng.Memory().Len(),
		Runs:       s.runs,
		Cycles:     res.Cycles,
		Firings:    res.Firings,
		Redactions: res.Redactions,
		Tick:       s.clock.Now(),
		Busy:       s.busy(),
		Durable:    s.dur != nil,
	}
}

// newSession compiles nothing — it wraps an already compiled program in a
// fresh engine with a capped output buffer. restore skips the program's
// initial facts: a checkpointed working memory already contains them
// under their original time tags.
func newSession(id, programName string, prog *compile.Program, workers int, matcherName string, evalMode compile.EvalMode, maxCycles, outputCap, traceCycles int, now time.Time, restore bool) (*session, error) {
	// Server sessions always run with per-rule profiling on: the timing
	// cost is a few clock reads per delta, and /metrics per-rule
	// attribution is the product surface.
	var factory match.Factory
	switch matcherName {
	case "", "rete":
		matcherName, factory = "rete", rete.Factory(rete.Options{Profile: true, EvalMode: evalMode})
	case "treat":
		factory = treat.Factory(treat.Options{Profile: true, EvalMode: evalMode})
	default:
		return nil, fmt.Errorf("unknown matcher %q (want rete or treat)", matcherName)
	}
	out := &capWriter{limit: outputCap}
	trace := obs.NewRing(traceCycles)
	phases := &obs.PhaseAccum{}
	eng := core.New(prog, core.Options{
		Workers:        workers,
		Matcher:        factory,
		Output:         out,
		MaxCycles:      maxCycles,
		NoInitialFacts: restore,
		Tracer:         obs.Multi(trace, phases),
		EvalMode:       evalMode,
	})
	return &session{
		id:       id,
		program:  programName,
		workers:  workers,
		matcher:  matcherName,
		eng:      eng,
		out:      out,
		trace:    trace,
		phases:   phases,
		clock:    temporal.New(prog, eng),
		created:  now,
		lastUsed: now,
		slot:     make(chan struct{}, 1),
	}, nil
}

// profileDeltas returns the per-rule activity accumulated since the last
// call and advances the snapshot. Rules with no new activity are elided.
// Caller holds the slot.
func (s *session) profileDeltas() []match.RuleProfile {
	cur := s.eng.RuleProfiles()
	if len(cur) == 0 {
		return nil
	}
	if s.lastProfs == nil {
		s.lastProfs = make(map[string]match.RuleProfile, len(cur))
	}
	deltas := make([]match.RuleProfile, 0, len(cur))
	for _, p := range cur {
		prev := s.lastProfs[p.Rule]
		d := match.RuleProfile{
			Rule:    p.Rule,
			MatchNS: p.MatchNS - prev.MatchNS,
			Tokens:  p.Tokens - prev.Tokens,
			Probes:  p.Probes - prev.Probes,
			Insts:   p.Insts - prev.Insts,
			Fires:   p.Fires - prev.Fires,
		}
		s.lastProfs[p.Rule] = p
		if d.MatchNS != 0 || d.Tokens != 0 || d.Probes != 0 || d.Insts != 0 || d.Fires != 0 {
			deltas = append(deltas, d)
		}
	}
	return deltas
}

// retractMatching removes every live WME of the template whose fields
// strictly equal all given values; attributes not listed are wildcards.
// Caller holds the slot.
func (s *session) retractMatching(template string, fields map[string]wm.Value) (int, error) {
	tmpl, ok := s.eng.Memory().Schema().Lookup(template)
	if !ok {
		return 0, fmt.Errorf("unknown template %q", template)
	}
	type cond struct {
		idx int
		val wm.Value
	}
	conds := make([]cond, 0, len(fields))
	for attr, v := range fields {
		i, ok := tmpl.AttrIndex(attr)
		if !ok {
			return 0, fmt.Errorf("template %s has no attribute %q", template, attr)
		}
		conds = append(conds, cond{i, v})
	}
	n := 0
	for _, w := range s.eng.Memory().OfTemplate(template) {
		matchAll := true
		for _, c := range conds {
			if !w.Fields[c.idx].Equal(c.val) {
				matchAll = false
				break
			}
		}
		if matchAll && s.eng.Retract(w.Time) {
			n++
		}
	}
	return n, nil
}

// capWriter buffers `(write …)` output up to a byte limit, recording
// whether anything was dropped. The engine writes only while the slot
// holder runs it, so no locking is needed.
type capWriter struct {
	buf       []byte
	limit     int
	truncated bool
}

func (w *capWriter) Write(p []byte) (int, error) {
	if room := w.limit - len(w.buf); room > 0 {
		if len(p) <= room {
			w.buf = append(w.buf, p...)
		} else {
			w.buf = append(w.buf, p[:room]...)
			w.truncated = true
		}
	} else if len(p) > 0 {
		w.truncated = true
	}
	return len(p), nil
}

// take returns and resets the buffered output.
func (w *capWriter) take() (string, bool) {
	out, trunc := string(w.buf), w.truncated
	w.buf, w.truncated = w.buf[:0], false
	return out, trunc
}
