package server

// Coverage for the tamper-evidence surface at the server level: the
// inclusion-proof endpoint, group-commit fsync as the serving policy
// (including crash recovery), and recovery-time rejection of a WAL
// spliced in from another session.

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"parulel/internal/wal"
)

func fetchProof(t *testing.T, url, seq string) (int, wal.Proof, string) {
	t.Helper()
	resp, err := http.Get(url + "/proof?seq=" + seq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var p wal.Proof
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &p); err != nil {
			t.Fatalf("proof body does not decode: %v: %s", err, body)
		}
	}
	return resp.StatusCode, p, string(body)
}

// TestProofEndpoint: proofs round-trip through the HTTP surface and
// verify offline; the root survives checkpoints and a crash-restart
// (the ledger spans checkpoints by design).
func TestProofEndpoint(t *testing.T) {
	cfg := Config{DataDir: t.TempDir(), Fsync: wal.PolicyGroup, FsyncWait: time.Millisecond, CheckpointEvery: 4}
	ts := startCrashable(t, cfg)
	info := createSession(t, ts.URL, createSessionRequest{Source: recoverySrc, Workers: 2})
	url := ts.URL + "/api/v1/sessions/" + info.ID
	driveSession(t, url) // several appends; CheckpointEvery 4 forces checkpoints

	st, p, body := fetchProof(t, url, "1")
	if st != http.StatusOK {
		t.Fatalf("proof seq 1: status %d: %s", st, body)
	}
	if p.Session != info.ID || p.Seq != 1 {
		t.Fatalf("proof identity: %+v", p)
	}
	if err := wal.VerifyProof(&p); err != nil {
		t.Fatalf("served proof does not verify: %v", err)
	}

	if st, _, _ := fetchProof(t, url, "99999"); st != http.StatusNotFound {
		t.Fatalf("unknown seq: status %d, want 404", st)
	}
	for _, bad := range []string{"", "0", "x", "-3"} {
		if st, _, _ := fetchProof(t, url, bad); st != http.StatusBadRequest {
			t.Fatalf("seq %q: status %d, want 400", bad, st)
		}
	}

	// Crash and restart over the same data dir: the recovered ledger
	// serves the same proof — same leaf, same root — because the ledger
	// records the session's whole history, checkpoints included.
	ts.Close()
	_, ts2 := newTestServer(t, cfg)
	url2 := ts2.URL + "/api/v1/sessions/" + info.ID
	st2, p2, body2 := fetchProof(t, url2, "1")
	if st2 != http.StatusOK {
		t.Fatalf("proof after recovery: status %d: %s", st2, body2)
	}
	if err := wal.VerifyProof(&p2); err != nil {
		t.Fatalf("recovered proof does not verify: %v", err)
	}
	if p2.Leaf != p.Leaf || p2.Root != p.Root || p2.Count != p.Count {
		t.Fatalf("recovery changed the attested history:\n before %+v\n after  %+v", p, p2)
	}
}

func TestProofEndpointUnavailable(t *testing.T) {
	// Memory-only server: nothing to attest.
	_, ts := newTestServer(t, Config{})
	info := createSession(t, ts.URL, createSessionRequest{Source: boundedSrc})
	if st, _, body := fetchProof(t, ts.URL+"/api/v1/sessions/"+info.ID, "1"); st != http.StatusConflict {
		t.Fatalf("memory-only proof: status %d: %s", st, body)
	}

	// Durable but with the merkle ledger switched off.
	_, ts2 := newTestServer(t, Config{DataDir: t.TempDir(), DisableMerkle: true})
	info2 := createSession(t, ts2.URL, createSessionRequest{Source: boundedSrc})
	st, _, body := fetchProof(t, ts2.URL+"/api/v1/sessions/"+info2.ID, "1")
	if st != http.StatusConflict || !strings.Contains(body, "merkle") {
		t.Fatalf("merkle-disabled proof: status %d: %s", st, body)
	}
}

// TestGroupPolicyRecovery is TestRecoveryAfterRestart under the group
// fsync policy: a kill-and-restart preserves working memory and counters
// byte-identically when every mutation was group-committed.
func TestGroupPolicyRecovery(t *testing.T) {
	cfg := Config{DataDir: t.TempDir(), Fsync: wal.PolicyGroup, FsyncWait: time.Millisecond}

	tsA := startCrashable(t, cfg)
	info := createSession(t, tsA.URL, createSessionRequest{Source: recoverySrc, Workers: 2})
	urlA := tsA.URL + "/api/v1/sessions/" + info.ID
	driveSession(t, urlA)
	wantSnap := exportSnapshot(t, urlA)
	wantInfo := getInfo(t, urlA)
	tsA.Close() // crash: no drain, no log close

	_, tsB := newTestServer(t, cfg)
	urlB := tsB.URL + "/api/v1/sessions/" + info.ID
	gotInfo := getInfo(t, urlB)
	if gotInfo.Cycles != wantInfo.Cycles || gotInfo.WMSize != wantInfo.WMSize || gotInfo.Runs != wantInfo.Runs {
		t.Fatalf("recovered counters differ:\n got %+v\nwant %+v", gotInfo, wantInfo)
	}
	if gotSnap := exportSnapshot(t, urlB); gotSnap != wantSnap {
		t.Fatalf("recovered snapshot differs:\n-- got --\n%s\n-- want --\n%s", gotSnap, wantSnap)
	}
	// And the group-commit metrics moved.
	var m metricsPayload
	if st := call(t, "GET", tsB.URL+"/metrics", nil, &m); st != http.StatusOK {
		t.Fatalf("metrics: status %d", st)
	}
	if m.Durability == nil {
		t.Fatal("durability metrics missing")
	}
}

// TestSpliceRejectedAtRecovery: substituting one durable session's WAL
// into another session's directory — valid frames, valid CRCs, right
// sequence numbers, wrong history — must fail recovery, not serve the
// foreign state.
func TestSpliceRejectedAtRecovery(t *testing.T) {
	dataDir := t.TempDir()
	cfg := Config{DataDir: dataDir, Fsync: wal.PolicyAlways, CheckpointEvery: 1 << 20}

	ts := startCrashable(t, cfg)
	a := createSession(t, ts.URL, createSessionRequest{Source: recoverySrc, Workers: 2})
	b := createSession(t, ts.URL, createSessionRequest{Source: recoverySrc, Workers: 2})
	driveSession(t, ts.URL+"/api/v1/sessions/"+a.ID)
	// Session b runs the same script over different facts, so its frames
	// are valid but hash differently.
	urlB := ts.URL + "/api/v1/sessions/" + b.ID
	assertTasks(t, urlB, 10, 16)
	runSession(t, urlB)
	ts.Close() // crash

	// The splice: b's WAL into a's directory.
	src := filepath.Join(dataDir, "sessions", b.ID, "wal.log")
	dst := filepath.Join(dataDir, "sessions", a.ID, "wal.log")
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, ts2 := newTestServer(t, cfg)
	resp, err := http.Get(ts2.URL + "/api/v1/sessions/" + a.ID)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("spliced session served: status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "recovery failed") || !strings.Contains(string(body), "merkle") {
		t.Fatalf("splice rejection reason not surfaced: %s", body)
	}
	// Session b itself still recovers fine.
	getInfo(t, ts2.URL+"/api/v1/sessions/"+b.ID)
}

// TestGroupCommitMetricsSurface: under load the group policy reports
// commits and cohort sizes through /metrics.
func TestGroupCommitMetricsSurface(t *testing.T) {
	cfg := Config{DataDir: t.TempDir(), Fsync: wal.PolicyGroup}
	_, ts := newTestServer(t, cfg)
	info := createSession(t, ts.URL, createSessionRequest{Source: recoverySrc, Workers: 2})
	url := ts.URL + "/api/v1/sessions/" + info.ID
	for i := 0; i < 4; i++ {
		assertTasks(t, url, i, i+1)
	}
	var m metricsPayload
	if st := call(t, "GET", ts.URL+"/metrics", nil, &m); st != http.StatusOK {
		t.Fatalf("metrics: status %d", st)
	}
	if m.Durability == nil || m.Durability.GroupCommits == 0 || m.Durability.GroupedAppends == 0 {
		t.Fatalf("group-commit metrics not reported: %+v", m.Durability)
	}
	if m.Durability.GroupedAppends < m.Durability.GroupCommits {
		t.Fatalf("cohort accounting inverted: %+v", m.Durability)
	}
}
