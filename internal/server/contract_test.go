package server

// HTTP contract tests for the concurrency surface added with batches and
// async runs: batch semantics, backpressure status codes (429 +
// Retry-After), job lifecycle transitions, and the guarantee that
// observability endpoints stay responsive while the run queue is
// saturated.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"parulel/internal/wm"
)

// contractSrc fires its touch rule once per asserted item.
const contractSrc = `
(literalize item k state)
(rule touch
  <i> <- (item ^k <k> ^state new)
-->
  (modify <i> ^state done))
`

func itemFact(key string) factPayload {
	return factPayload{Template: "item", Fields: map[string]jsonValue{
		"k":     {V: wm.Sym(key)},
		"state": {V: wm.Sym("new")},
	}}
}

// pollJob fetches the job until pred is satisfied or the deadline passes.
func pollJob(t *testing.T, url string, pred func(jobInfo) bool) jobInfo {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var info jobInfo
		if st := call(t, "GET", url, nil, &info); st != http.StatusOK {
			t.Fatalf("job poll: status %d", st)
		}
		if pred(info) {
			return info
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never reached wanted state; last: %+v", info)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// startAsyncSpinner creates a spinner session and an async run against it,
// returning the session URL and the job once it is running.
func startAsyncSpinner(t *testing.T, base string, timeoutMS int64) (string, jobInfo) {
	t.Helper()
	info := createSession(t, base, createSessionRequest{Source: spinnerSrc})
	url := base + "/api/v1/sessions/" + info.ID
	var j jobInfo
	if st := call(t, "POST", url+"/run?async=1", runRequest{TimeoutMS: timeoutMS}, &j); st != http.StatusAccepted {
		t.Fatalf("async run: status %d", st)
	}
	j = pollJob(t, url+"/jobs/"+j.ID, func(v jobInfo) bool { return v.Status == jobRunning })
	return url, j
}

func TestBatchAppliesInOrder(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	info := createSession(t, ts.URL, createSessionRequest{Source: contractSrc})
	url := ts.URL + "/api/v1/sessions/" + info.ID

	var resp batchResponse
	st := call(t, "POST", url+"/batch", batchRequest{Ops: []batchOp{
		{Op: "assert", Facts: []factPayload{itemFact("a"), itemFact("b")}},
		{Op: "run"},
		{Op: "retract", Template: "item", Fields: map[string]jsonValue{"state": {V: wm.Sym("done")}}},
	}}, &resp)
	if st != http.StatusOK {
		t.Fatalf("batch: status %d: %+v", st, resp)
	}
	if resp.Applied != 3 || len(resp.Results) != 3 {
		t.Fatalf("batch applied %d results %d, want 3/3", resp.Applied, len(resp.Results))
	}
	if resp.Results[0].Count != 2 {
		t.Fatalf("assert count: got %d, want 2", resp.Results[0].Count)
	}
	if run := resp.Results[1].Run; run == nil || run.Firings != 2 || !run.Quiescent {
		t.Fatalf("run result: %+v", resp.Results[1].Run)
	}
	if resp.Results[2].Count != 2 {
		t.Fatalf("retract count: got %d, want 2", resp.Results[2].Count)
	}
	if resp.WMSize != 0 {
		t.Fatalf("wm size after batch: got %d, want 0", resp.WMSize)
	}
}

func TestBatchRejectsBadOpsUpfront(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	info := createSession(t, ts.URL, createSessionRequest{Source: contractSrc})
	url := ts.URL + "/api/v1/sessions/" + info.ID

	cases := []struct {
		name string
		ops  []batchOp
	}{
		{"unknown op kind", []batchOp{{Op: "assert", Facts: []factPayload{itemFact("x")}}, {Op: "frobnicate"}}},
		{"assert without facts", []batchOp{{Op: "assert"}}},
		{"retract without template", []batchOp{{Op: "retract"}}},
		{"unknown template", []batchOp{
			{Op: "assert", Facts: []factPayload{itemFact("x")}},
			{Op: "assert", Facts: []factPayload{{Template: "ghost", Fields: map[string]jsonValue{"k": {V: wm.Sym("y")}}}}},
		}},
		{"unknown field", []batchOp{{Op: "assert", Facts: []factPayload{{Template: "item", Fields: map[string]jsonValue{"bogus": {V: wm.Sym("y")}}}}}}},
	}
	for _, tc := range cases {
		var errResp errorResponse
		if st := call(t, "POST", url+"/batch", batchRequest{Ops: tc.ops}, &errResp); st != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%+v)", tc.name, st, errResp)
		}
	}
	// Rejected batches apply nothing, even when an earlier op was valid.
	var wmResp struct {
		Total int `json:"total"`
	}
	if st := call(t, "GET", url+"/wm?template=item", nil, &wmResp); st != http.StatusOK || wmResp.Total != 0 {
		t.Fatalf("wm after rejected batches: status %d, size %d, want 0", st, wmResp.Total)
	}
}

func TestRunQueueSaturationFastFails(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrentRuns: 1, MaxInflightRuns: 1})
	url, j := startAsyncSpinner(t, ts.URL, 60_000)

	// The single inflight slot is held by the job: further runs (sync or
	// async) must fast-fail 429 with the Retry-After contract, not queue.
	req, err := http.NewRequest("POST", url+"/run", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated run: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After: got %q, want \"1\"", ra)
	}
	if st := call(t, "POST", url+"/run?async=1", runRequest{}, nil); st != http.StatusTooManyRequests {
		t.Fatalf("saturated async run: status %d, want 429", st)
	}

	var m metricsPayload
	if st := call(t, "GET", ts.URL+"/metrics", nil, &m); st != http.StatusOK {
		t.Fatalf("metrics: status %d", st)
	}
	if m.Admission.RunsRejected < 2 || m.Admission.RunsInflight != 1 {
		t.Fatalf("admission metrics: %+v", m.Admission)
	}

	// Canceling the job frees the admission slot.
	if st := call(t, "DELETE", url+"/jobs/"+j.ID, nil, nil); st != http.StatusOK {
		t.Fatalf("cancel: status %d", st)
	}
	pollJob(t, url+"/jobs/"+j.ID, func(v jobInfo) bool { return v.Status == jobCanceled })
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := call(t, "POST", url+"/run", runRequest{TimeoutMS: 50}, nil); st != http.StatusTooManyRequests {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("admission slot never freed after cancel")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestMutationQueueDepthFastFails(t *testing.T) {
	_, ts := newTestServer(t, Config{MutationQueueDepth: 1})
	url, j := startAsyncSpinner(t, ts.URL, 60_000)

	// The running job holds the session slot; one mutation may wait
	// (depth 1), the next must fast-fail. The background assert retries
	// through 429 so that a long-lived waiter is eventually parked in the
	// queue even if a probe transiently occupied the slot first.
	blocked := make(chan int, 1)
	go func() {
		req := assertRequest{Facts: []factPayload{{Template: "counter", Fields: map[string]jsonValue{"n": {V: wm.Int(7)}}}}}
		for {
			st := call(t, "POST", url+"/facts", req, nil)
			if st != http.StatusTooManyRequests {
				blocked <- st
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// The waiter registers quickly but not instantly: retry until the 429
	// surfaces. The probe uses a short client timeout because losing the
	// race means *becoming* the queued waiter, which blocks until the run
	// ends — a timed-out probe withdraws (its request context cancels the
	// queue wait) and tries again.
	probe := &http.Client{Timeout: 500 * time.Millisecond}
	sawReject := false
	deadline := time.Now().Add(10 * time.Second)
	for !sawReject && time.Now().Before(deadline) {
		req, err := http.NewRequest("POST", url+"/retract", strings.NewReader(`{"template":"counter"}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := probe.Do(req)
		if err != nil {
			continue // probe held the queue slot and timed out; retry
		}
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusTooManyRequests:
			if ra := resp.Header.Get("Retry-After"); ra != "1" {
				t.Fatalf("Retry-After: got %q, want \"1\"", ra)
			}
			sawReject = true
		case http.StatusOK:
			// The blocked assert won the race for the queue slot and
			// finished already; re-arm and retry.
			time.Sleep(2 * time.Millisecond)
		default:
			t.Fatalf("retract while saturated: status %d", resp.StatusCode)
		}
	}
	if !sawReject {
		t.Fatal("mutation queue never rejected while the session was busy")
	}

	// Cancel the run: the queued mutation must complete, not be lost.
	if st := call(t, "DELETE", url+"/jobs/"+j.ID, nil, nil); st != http.StatusOK {
		t.Fatalf("cancel: status %d", st)
	}
	select {
	case st := <-blocked:
		if st != http.StatusOK {
			t.Fatalf("queued assert: status %d", st)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("queued assert never completed after cancel")
	}
}

func TestJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	info := createSession(t, ts.URL, createSessionRequest{Source: boundedSrc})
	url := ts.URL + "/api/v1/sessions/" + info.ID

	var j jobInfo
	if st := call(t, "POST", url+"/run?async=1", runRequest{}, &j); st != http.StatusAccepted {
		t.Fatalf("async run: status %d", st)
	}
	if j.Status != jobQueued && j.Status != jobRunning {
		t.Fatalf("initial status: %q", j.Status)
	}
	done := pollJob(t, url+"/jobs/"+j.ID, func(v jobInfo) bool { return v.Status != jobQueued && v.Status != jobRunning })
	if done.Status != jobDone {
		t.Fatalf("final status: %q (%+v)", done.Status, done)
	}
	if done.Result == nil || done.Result.Cycles != 2000 || !done.Result.Quiescent {
		t.Fatalf("job result: %+v", done.Result)
	}
	if done.StartedAt == "" || done.FinishedAt == "" {
		t.Fatalf("missing timestamps: %+v", done)
	}

	var list struct {
		Jobs []jobInfo `json:"jobs"`
	}
	if st := call(t, "GET", url+"/jobs", nil, &list); st != http.StatusOK || len(list.Jobs) != 1 || list.Jobs[0].ID != j.ID {
		t.Fatalf("job list: status %d, %+v", st, list.Jobs)
	}

	// Terminal jobs cannot be canceled; unknown jobs are 404.
	if st := call(t, "DELETE", url+"/jobs/"+j.ID, nil, nil); st != http.StatusConflict {
		t.Fatalf("cancel finished: status %d, want 409", st)
	}
	if st := call(t, "GET", url+"/jobs/jffffffffffffffff", nil, nil); st != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", st)
	}
	// A job is scoped to its session: another session cannot see it.
	other := createSession(t, ts.URL, createSessionRequest{Source: boundedSrc})
	if st := call(t, "GET", ts.URL+"/api/v1/sessions/"+other.ID+"/jobs/"+j.ID, nil, nil); st != http.StatusNotFound {
		t.Fatalf("cross-session job: status %d, want 404", st)
	}
}

func TestJobCanceledMidRun(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	url, j := startAsyncSpinner(t, ts.URL, 60_000)
	var onCancel jobInfo
	if st := call(t, "DELETE", url+"/jobs/"+j.ID, nil, &onCancel); st != http.StatusOK {
		t.Fatalf("cancel: status %d", st)
	}
	final := pollJob(t, url+"/jobs/"+j.ID, func(v jobInfo) bool { return v.Status == jobCanceled })
	if final.Result == nil {
		t.Fatalf("canceled job should carry the partial result: %+v", final)
	}
	// The session survives the cancellation and accepts further work.
	var si sessionInfo
	if st := call(t, "GET", url, nil, &si); st != http.StatusOK || si.Busy {
		t.Fatalf("session after cancel: status %d, %+v", st, si)
	}
}

func TestJobInterruptedByDrain(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{DataDir: dir})
	url, j := startAsyncSpinner(t, ts.URL, 60_000)
	sessID := strings.TrimPrefix(url, ts.URL+"/api/v1/sessions/")

	// Graceful drain interrupts live jobs and logs the terminal marker.
	closeServer(t, s, ts)

	_, ts2 := newTestServer(t, Config{DataDir: dir})
	url2 := ts2.URL + "/api/v1/sessions/" + sessID
	var recovered jobInfo
	if st := call(t, "GET", url2+"/jobs/"+j.ID, nil, &recovered); st != http.StatusOK {
		t.Fatalf("recovered job: status %d", st)
	}
	if recovered.Status != jobInterrupted {
		t.Fatalf("recovered status: %q, want interrupted", recovered.Status)
	}
	// Interrupted jobs are terminal: canceling is a conflict.
	if st := call(t, "DELETE", url2+"/jobs/"+j.ID, nil, nil); st != http.StatusConflict {
		t.Fatalf("cancel interrupted: status %d, want 409", st)
	}
}

// closeServer shuts one test server down mid-test (the registered cleanup
// tolerates the double close).
func closeServer(t *testing.T, s *Server, ts *httptest.Server) {
	t.Helper()
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestObservabilityNotBlockedWhenSaturated(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrentRuns: 1, MaxInflightRuns: 8})
	url, _ := startAsyncSpinner(t, ts.URL, 60_000)

	// Pile more admitted runs behind the busy engine so both the run queue
	// and the session are saturated.
	for i := 0; i < 3; i++ {
		if st := call(t, "POST", url+"/run?async=1", runRequest{TimeoutMS: 60_000}, nil); st != http.StatusAccepted {
			t.Fatalf("async run %d: status %d", i, st)
		}
	}

	// Scrapes and traces must answer from samples, never wait for a slot.
	const bound = 2 * time.Second
	for _, path := range []string{"/metrics", "/metrics?format=prometheus", url[len(ts.URL):] + "/trace"} {
		t0 := time.Now()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if d := time.Since(t0); d > bound {
			t.Fatalf("GET %s took %s under saturation (bound %s)", path, d, bound)
		}
	}
	var m metricsPayload
	if st := call(t, "GET", ts.URL+"/metrics", nil, &m); st != http.StatusOK {
		t.Fatalf("metrics: status %d", st)
	}
	if m.Jobs.Active < 1 {
		t.Fatalf("jobs active: %+v", m.Jobs)
	}
}
