package server

// This file is the durability layer's server glue. When Config.DataDir is
// set, every session owns a directory <DataDir>/sessions/<id> holding a
// write-ahead log (wal.log) and the newest checkpoint (checkpoint). The
// log records the session's externally visible history — creation,
// asserts, retracts, snapshot imports, and the committed extent of every
// run — and the engine's determinism makes replaying it reproduce the
// session exactly (see internal/wal and DESIGN.md). Checkpoints bound
// replay time: every CheckpointEvery records the full state image is
// rewritten atomically and the log emptied.
//
// Recovery is lazy: a boot-time scan only records which session ids exist
// on disk; a session is rebuilt (checkpoint + log tail) the first time a
// request names it — whether the miss comes from a process restart or
// from LRU eviction, which closes the log but keeps the files.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"parulel/internal/checkpoint"
	"parulel/internal/compile"
	"parulel/internal/snapshot"
	"parulel/internal/wal"
	"parulel/internal/wm"
)

// File names inside a session directory.
const (
	walFile        = "wal.log"
	checkpointFile = "checkpoint"
	ledgerFile     = "merkle.log"
)

// store tracks the on-disk session directories under <DataDir>/sessions.
type store struct {
	root    string
	walOpts wal.Options
	merkle  bool // attach a Merkle ledger to every session log

	mu    sync.Mutex
	known map[string]bool // session ids with an on-disk directory
}

// openStore scans an existing data directory, returning the store and the
// largest numeric session id found, so freshly minted ids never collide
// with recoverable ones.
func openStore(dataDir string, walOpts wal.Options, merkle bool) (*store, uint64, error) {
	root := filepath.Join(dataDir, "sessions")
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, 0, fmt.Errorf("durability: %w", err)
	}
	st := &store{root: root, walOpts: walOpts, merkle: merkle, known: make(map[string]bool)}
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, 0, fmt.Errorf("durability: %w", err)
	}
	var maxID uint64
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		id := e.Name()
		st.known[id] = true
		// Ids are "s<n>" single-node or "s-<node>-<n>" in cluster mode;
		// either way the counter is the trailing number.
		num := strings.TrimPrefix(id, "s")
		if i := strings.LastIndex(num, "-"); i >= 0 {
			num = num[i+1:]
		}
		if n, err := strconv.ParseUint(num, 10, 64); err == nil && n > maxID {
			maxID = n
		}
	}
	return st, maxID, nil
}

func (st *store) has(id string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.known[id]
}

func (st *store) count() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.known)
}

func (st *store) dir(id string) string { return filepath.Join(st.root, id) }

// create makes the session directory and its log and writes the OpCreate
// record. Under wal.PolicyAlways the record is durable on return. The id
// is deliberately NOT marked known yet: until the session is in the pool,
// a concurrent lookup must 404 rather than rehydrate from the fresh
// OpCreate record and race the pending insert. The caller marks the id
// with markKnown once pool insertion has succeeded.
func (st *store) create(id string, meta wal.Record) (*durable, error) {
	dir := st.dir(id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l, _, err := wal.Open(filepath.Join(dir, walFile), st.walOpts)
	if err != nil {
		return nil, err
	}
	var led *wal.Ledger
	if st.merkle {
		led, err = wal.OpenLedger(filepath.Join(dir, ledgerFile))
		if err != nil {
			l.Close()
			return nil, err
		}
		l.SetLedger(led) // before the OpCreate append so seq 1 is leaf 0
	}
	if err := l.Append(&meta); err != nil {
		l.Close()
		if led != nil {
			led.Close()
		}
		return nil, err
	}
	return &durable{st: st, id: id, dir: dir, log: l, led: led, meta: meta}, nil
}

// markKnown makes id visible to lookup/rehydration and deletion.
func (st *store) markKnown(id string) {
	st.mu.Lock()
	st.known[id] = true
	st.mu.Unlock()
}

// remove deletes a session's on-disk state.
func (st *store) remove(id string) error {
	st.mu.Lock()
	delete(st.known, id)
	st.mu.Unlock()
	return os.RemoveAll(st.dir(id))
}

// durable is a live session's handle on its on-disk state. It carries its
// own mutex because appends run under the session slot while eviction,
// deletion and drain run under the server mutex.
type durable struct {
	st   *store
	id   string
	dir  string
	meta wal.Record // the OpCreate record; reused for checkpoint headers

	mu      sync.Mutex
	log     *wal.Log
	led     *wal.Ledger // Merkle ledger, nil when disabled
	closed  bool
	failed  bool // a mutation could not be made durable; appends are refused
	records int  // log records appended since the last checkpoint

	// lastCommit is the newest checkpoint's ledger commit, chained into
	// the next one's PrevCount/PrevRoot.
	lastCommit *checkpoint.LedgerCommit
}

// append logs one record, returning how long it waited on stable storage
// (PolicyAlways' inline fsync, a group commit's shared flush; zero under
// the batched policies) so the caller can attribute the latency.
func (d *durable) append(rec *wal.Record) (time.Duration, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	switch {
	case d.closed:
		return 0, errors.New("log is closed")
	case d.failed:
		return 0, errors.New("durability disabled after an earlier failure")
	}
	fs, err := d.log.AppendSynced(rec)
	if err != nil {
		return fs, err
	}
	d.records++
	return fs, nil
}

// errMerkleDisabled distinguishes "this server runs without ledgers"
// from "no such record" on the proof endpoint.
var errMerkleDisabled = errors.New("merkle ledger is disabled on this server")

// proof builds the inclusion proof for the record with sequence seq.
func (d *durable) proof(seq uint64) (*wal.Proof, error) {
	d.mu.Lock()
	led, id, closed := d.led, d.id, d.closed
	d.mu.Unlock()
	if closed {
		return nil, errors.New("log is closed")
	}
	if led == nil {
		return nil, errMerkleDisabled
	}
	p, err := led.Prove(seq)
	if err != nil {
		return nil, err
	}
	p.Session = id
	return p, nil
}

// due reports whether enough records accumulated to warrant a checkpoint.
func (d *durable) due(every int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return !d.closed && !d.failed && d.records >= every
}

// checkpoint atomically replaces the on-disk checkpoint (write to a temp
// file, fsync, rename, fsync the directory) and then empties the log it
// covers. The sequence numbering survives the log reset, so a crash
// between the rename and the truncation is harmless: recovery skips log
// records at or below the checkpoint's sequence point. The caller holds
// the session slot, since the engine is read while writing.
func (d *durable) checkpoint(h checkpoint.Header, mem *wm.Memory) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errors.New("log is closed")
	}
	if d.led != nil {
		// Flush staged ledger entries and commit the tree: the header
		// vouches for the root over everything appended so far, chained
		// to the previous checkpoint's commit. The WAL is synced first —
		// a durable ledger entry must always imply a durable frame, or
		// the audit invariant (entry without frame = tampering) breaks.
		if err := d.log.Sync(); err != nil {
			return err
		}
		if err := d.led.SyncAll(); err != nil {
			return err
		}
		st, err := d.led.State()
		if err != nil {
			return err
		}
		commit := &checkpoint.LedgerCommit{Count: st.Count, Root: st.Root, Peaks: st.Peaks}
		if d.lastCommit != nil {
			commit.PrevCount = d.lastCommit.Count
			commit.PrevRoot = d.lastCommit.Root
		}
		h.Ledger = commit
	}
	tmp := filepath.Join(d.dir, checkpointFile+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	err = checkpoint.Write(f, h, mem)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, filepath.Join(d.dir, checkpointFile))
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := syncDir(d.dir); err != nil {
		return err
	}
	if err := d.log.Reset(); err != nil {
		return err
	}
	d.records = 0
	if h.Ledger != nil {
		d.lastCommit = h.Ledger
	}
	return nil
}

func (d *durable) markFailed() {
	d.mu.Lock()
	d.failed = true
	d.mu.Unlock()
}

// close flushes and closes the log, leaving the files on disk for later
// rehydration. Idempotent.
func (d *durable) close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	err := d.log.Close()
	if d.led != nil {
		if lerr := d.led.Close(); err == nil {
			err = lerr
		}
	}
	return err
}

func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = f.Sync()
	f.Close()
	return err
}

// checkpointSession writes a checkpoint for sess and truncates its log.
// Failure keeps the log intact — recovery still works, it just replays
// more — and is reported to the caller. Caller holds the session slot.
// ctx carries the request id into the failure log line.
func (s *Server) checkpointSession(ctx context.Context, sess *session) error {
	d := sess.dur
	h := checkpoint.Header{
		Seq:       d.log.Seq(),
		Program:   d.meta.Program,
		Source:    d.meta.Source,
		Workers:   d.meta.Workers,
		Matcher:   d.meta.Matcher,
		MaxCycles: d.meta.MaxCycles,
		CreatedNS: d.meta.CreatedNS,
		Runs:      sess.runs,
		Counters:  sess.eng.Counters(),
		Fired:     sess.eng.FiredKeys(),
		Temporal:  sess.clock.State(),
	}
	t0 := time.Now()
	err := d.checkpoint(h, sess.eng.Memory())
	s.metrics.checkpointDone(time.Since(t0), err)
	if err != nil {
		s.log(ctx).Error("checkpoint failed (log retained)", "session_id", sess.id, "err", err)
		return err
	}
	// The checkpoint emptied the log, taking any live jobs' queued markers
	// with it; re-log them so a crash after this point still surfaces the
	// jobs as interrupted.
	for _, jobID := range s.jobs.activeFor(sess.id) {
		s.appendJobMarker(ctx, sess, jobID, jobQueued)
	}
	// Mirror the compaction to the session's replica so it stays as small
	// as the primary (best-effort; a dropped stream re-syncs lazily).
	s.replicateCheckpoint(ctx, sess)
	return nil
}

// persist logs one mutation record for sess, checkpointing when due. On
// append failure it attempts an immediate checkpoint — a full state image
// supersedes the lost record — and only if that also fails is the
// session's durability marked broken. A false return means the mutation
// is applied in memory but not on disk.
func (s *Server) persist(ctx context.Context, sess *session, rec *wal.Record) bool {
	d := sess.dur
	if d == nil {
		return true
	}
	appendSp := s.startSpan(ctx, stageWALAppend)
	fs, err := d.append(rec)
	appendSp.End()
	// Attribute the time this append spent on stable storage — the inline
	// fsync under PolicyAlways, or the park-to-flush wait for the shared
	// group-commit flush — as a child of the append that paid for it.
	// Purely batched policies (interval/never) sync elsewhere and report
	// zero.
	if fs > 0 {
		s.recordSpan(ctx, appendSp.ID(), stageWALFsync, fs)
	}
	if err == nil {
		if d.due(s.cfg.CheckpointEvery) && s.checkpointSession(ctx, sess) == nil {
			// The checkpoint compacted rec into the state image and mirrored
			// it to a live replica stream; a nil record just makes sure some
			// replica holds that state (re-attaching if the mirror dropped).
			return s.replicate(ctx, sess, nil)
		}
		return s.replicate(ctx, sess, rec)
	}
	s.log(ctx).Error("wal append failed", "session_id", sess.id, "err", err)
	if cerr := s.checkpointSession(ctx, sess); cerr != nil {
		d.markFailed()
		s.log(ctx).Error("durability disabled (append and checkpoint both failed)", "session_id", sess.id)
		return false
	}
	return s.replicate(ctx, sess, nil) // the checkpoint supersedes the record
}

// rehydrate rebuilds session id from its on-disk state and inserts it
// into the pool. Concurrent requests for the same id collapse onto one
// rebuild; every caller re-checks the pool afterwards.
func (s *Server) rehydrate(ctx context.Context, id string) error {
	s.mu.Lock()
	if _, ok := s.sessions[id]; ok {
		s.mu.Unlock()
		return nil
	}
	if ch, ok := s.rehydrating[id]; ok {
		s.mu.Unlock()
		<-ch // another request is rebuilding it; wait and re-check
		return nil
	}
	ch := make(chan struct{})
	s.rehydrating[id] = ch
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.rehydrating, id)
		s.mu.Unlock()
		close(ch)
	}()

	sess, err := s.loadSession(ctx, id)
	if err != nil {
		s.metrics.recoveryFailed()
		return err
	}
	s.mu.Lock()
	switch {
	case s.draining:
		err = errors.New("server is draining")
	case !s.store.has(id): // deleted while loading
		err = errors.New("session was deleted")
	default:
		err = s.insertLocked(sess)
	}
	s.mu.Unlock()
	if err != nil {
		sess.dur.close()
		return err
	}
	if len(sess.recoveredJobs) > 0 {
		s.foldRecoveredJobs(id, sess.recoveredJobs)
		sess.recoveredJobs = nil
	}
	s.metrics.sessionRehydrated()
	s.log(ctx).Info("session rehydrated",
		"session_id", id, "program", sess.program, "wm_size", sess.eng.Memory().Len(),
		"runs", sess.runs, "cycles", sess.lastResult.Cycles)
	return nil
}

// loadSession rebuilds one session: newest valid checkpoint (if any) plus
// replay of the log records behind it. A corrupt checkpoint is ignored —
// the log alone reproduces the session when it has never been truncated
// by an earlier checkpoint; otherwise recovery fails.
func (s *Server) loadSession(ctx context.Context, id string) (*session, error) {
	dir := s.store.dir(id)

	var (
		h        checkpoint.Header
		facts    []checkpoint.Fact
		haveCkpt bool
	)
	if f, err := os.Open(filepath.Join(dir, checkpointFile)); err == nil {
		h, facts, err = checkpoint.Read(f)
		f.Close()
		if err != nil {
			s.log(ctx).Warn("ignoring unreadable checkpoint", "session_id", id, "err", err)
		} else {
			haveCkpt = true
		}
	}

	l, scanRes, err := wal.Open(filepath.Join(dir, walFile), s.store.walOpts)
	if err != nil {
		return nil, fmt.Errorf("opening wal: %w", err)
	}
	var led *wal.Ledger
	ok := false
	defer func() {
		if !ok {
			l.Close()
			if led != nil {
				led.Close()
			}
		}
	}()
	if scanRes.TruncatedBytes > 0 {
		s.metrics.walTruncated(scanRes.TruncatedBytes)
		s.log(ctx).Warn("dropped torn wal tail", "session_id", id, "bytes", scanRes.TruncatedBytes)
	}
	if haveCkpt {
		// The checkpoint truncated the log, so the scan above cannot see
		// its sequence point; restore it from the header or post-recovery
		// appends would reuse seq <= h.Seq and be skipped next recovery.
		l.AdvanceSeq(h.Seq)
	}
	if s.store.merkle {
		lpath := filepath.Join(dir, ledgerFile)
		led, err = wal.OpenLedger(lpath)
		if err != nil {
			// A file that does not even parse (e.g. a header torn by a
			// crash during creation) cannot attest to anything; restart
			// it from the checkpoint's commit rather than refusing to
			// serve. parverify still reports the unreadable original.
			s.log(ctx).Warn("recreating unreadable merkle ledger", "session_id", id, "err", err)
			if rerr := os.Remove(lpath); rerr != nil {
				return nil, fmt.Errorf("resetting merkle ledger: %w", rerr)
			}
			if led, err = wal.OpenLedger(lpath); err != nil {
				return nil, fmt.Errorf("opening merkle ledger: %w", err)
			}
		}
		var (
			ckptSeq uint64
			commit  *wal.LedgerState
		)
		if haveCkpt {
			ckptSeq = h.Seq
			if h.Ledger != nil {
				commit = &wal.LedgerState{Count: h.Ledger.Count, Root: h.Ledger.Root, Peaks: h.Ledger.Peaks}
			}
		}
		// Reconcile cross-checks every surviving frame against the ledger
		// and the committed root; failure means the on-disk history was
		// altered, and the session must not be served from it.
		if err := led.Reconcile(scanRes.Records, ckptSeq, commit); err != nil {
			return nil, fmt.Errorf("merkle ledger: %w", err)
		}
		l.SetLedger(led)
	}

	var meta wal.Record
	switch {
	case haveCkpt:
		meta = wal.Record{
			Op: wal.OpCreate, Program: h.Program, Source: h.Source,
			Workers: h.Workers, Matcher: h.Matcher, MaxCycles: h.MaxCycles,
			CreatedNS: h.CreatedNS,
		}
	case len(scanRes.Records) > 0 && scanRes.Records[0].Op == wal.OpCreate:
		meta = scanRes.Records[0]
	default:
		return nil, errors.New("no checkpoint and no create record")
	}

	prog, err := compile.CompileSource(meta.Source)
	if err != nil {
		return nil, fmt.Errorf("recompiling program: %w", err)
	}
	created := time.Now()
	if meta.CreatedNS != 0 {
		created = time.Unix(0, meta.CreatedNS)
	}
	// A checkpointed WM already contains the program's initial facts under
	// their original tags; log-only recovery replants them exactly as the
	// original creation did.
	sess, err := newSession(id, meta.Program, prog, meta.Workers, meta.Matcher, s.cfg.EvalMode,
		meta.MaxCycles, s.cfg.MaxOutputBytes, s.cfg.TraceCycles, created, haveCkpt)
	if err != nil {
		return nil, err
	}
	if haveCkpt {
		if err := checkpoint.Restore(sess.eng, h, facts); err != nil {
			return nil, err
		}
		// The clock image must load after the WMEs (it rebuilds its
		// aggregate-tag mirror from them) and before any tail replay.
		if err := sess.clock.RestoreState(h.Temporal); err != nil {
			return nil, err
		}
		sess.runs = h.Runs
	}

	replayed := 0
	for _, rec := range scanRes.Records {
		if haveCkpt && rec.Seq <= h.Seq {
			continue // already folded into the checkpoint
		}
		if err := replay(sess, &rec); err != nil {
			return nil, fmt.Errorf("replaying record %d (%s): %w", rec.Seq, rec.Op, err)
		}
		if rec.Op != wal.OpCreate {
			replayed++
		}
	}
	sess.out.take() // replayed `(write …)` output belongs to no request
	sess.lastResult = sess.eng.CurrentResult()
	if sess.lastResult.Stats != nil {
		// Replay-produced cycle records must not be folded into /metrics.
		sess.statCycles = len(sess.lastResult.Stats.Cycles)
	}
	sess.profileDeltas() // likewise replay-produced per-rule activity
	sess.dur = &durable{st: s.store, id: id, dir: dir, log: l, led: led, meta: meta, records: replayed}
	if haveCkpt && h.Ledger != nil {
		sess.dur.lastCommit = h.Ledger
	}
	ok = true
	return sess, nil
}

// handleProof serves a Merkle inclusion proof for one WAL record:
// GET /api/v1/sessions/{id}/proof?seq=N. The proof is self-contained
// (leaf, bottom-up path, root); `parverify -proof` checks it offline,
// optionally against a root recorded out of band.
func (s *Server) handleProof(w http.ResponseWriter, r *http.Request) {
	s.withSession(w, r, func(sess *session) {
		seq, err := strconv.ParseUint(r.URL.Query().Get("seq"), 10, 64)
		if err != nil || seq == 0 {
			writeError(w, http.StatusBadRequest, "seq must be a positive integer")
			return
		}
		if sess.dur == nil {
			writeError(w, http.StatusConflict, "session is not durable (server runs without a data dir)")
			return
		}
		p, perr := sess.dur.proof(seq)
		switch {
		case perr == nil:
			writeJSON(w, http.StatusOK, p)
		case errors.Is(perr, errMerkleDisabled):
			writeError(w, http.StatusConflict, perr.Error())
		case errors.Is(perr, wal.ErrProofPredates):
			// The leaves below a promoted replica's base are summarized
			// into peaks; the record is attested but not provable here.
			writeError(w, http.StatusGone, perr.Error())
		default:
			writeError(w, http.StatusNotFound, perr.Error())
		}
	})
}

// replay applies one log record to a recovering session. Count-bearing
// records double as integrity checks: a replayed retract or import that
// touches a different number of facts means the log does not describe
// this state, and recovery fails rather than serving a diverged session.
func replay(sess *session, rec *wal.Record) error {
	switch rec.Op {
	case wal.OpCreate:
		return nil // consumed as session metadata
	case wal.OpAssert:
		for i, f := range rec.Facts {
			fields, err := wal.DecodeFields(f.Fields)
			if err != nil {
				return err
			}
			el, err := sess.eng.Insert(f.Template, fields)
			if err != nil {
				return fmt.Errorf("fact %d: %w", i, err)
			}
			if f.TTL > 0 {
				// Re-apply the per-fact lifetime override so replayed ticks
				// expire this fact exactly when the original ticks did.
				sess.clock.SetTTL(el, f.TTL)
			}
		}
		return nil
	case wal.OpRetract:
		fields, err := wal.DecodeFields(rec.Fields)
		if err != nil {
			return err
		}
		n, err := sess.retractMatching(rec.Template, fields)
		if err != nil {
			return err
		}
		if n != rec.Count {
			return fmt.Errorf("retracted %d facts, log recorded %d", n, rec.Count)
		}
		return nil
	case wal.OpRun:
		if err := sess.eng.ReplaySteps(rec.Cycles); err != nil {
			return err
		}
		if halted := sess.eng.Counters().Halted; halted != rec.Halted {
			return fmt.Errorf("replay diverged: halted=%v, log recorded %v", halted, rec.Halted)
		}
		sess.runs++
		return nil
	case wal.OpImport:
		n, err := snapshot.Read(strings.NewReader(rec.Text), sess.eng)
		if err != nil {
			return err
		}
		if n != rec.Count {
			return fmt.Errorf("imported %d facts, log recorded %d", n, rec.Count)
		}
		return nil
	case wal.OpBatch:
		// The nested ops were applied atomically in one frame; replay them
		// in order. Nested records carry no sequence numbers.
		for i := range rec.Ops {
			if err := replay(sess, &rec.Ops[i]); err != nil {
				return fmt.Errorf("batch op %d: %w", i, err)
			}
		}
		return nil
	case wal.OpTick:
		// Expiry is deterministic: a replayed tick must land on the same
		// clock value and expire the same number of facts the original did,
		// or the log does not describe this state.
		res := sess.clock.Tick()
		if res.Now != rec.Tick {
			return fmt.Errorf("replay diverged: tick advanced clock to %d, log recorded %d", res.Now, rec.Tick)
		}
		if res.Expired != rec.Count {
			return fmt.Errorf("replay diverged: tick %d expired %d facts, log recorded %d", res.Now, res.Expired, rec.Count)
		}
		return nil
	case wal.OpJob:
		// No engine effect: remember the last logged status per job so the
		// server can reconstruct its job registry. A job whose final marker
		// is non-terminal was in flight at the crash.
		if sess.recoveredJobs == nil {
			sess.recoveredJobs = make(map[string]string)
		}
		sess.recoveredJobs[rec.Job] = rec.JobStatus
		return nil
	default:
		return fmt.Errorf("unknown op %q", rec.Op)
	}
}
