package server

// runQueue is the server-wide engine-run scheduler: a counted set of
// engine slots (MaxConcurrentRuns) behind an admission gate
// (MaxInflightRuns) and a fairness-aware wait queue.
//
// Admission and slot acquisition are deliberately separate. A run is
// *admitted* once per request/job — when the admitted population (running
// + queued) is at the cap, admission fails immediately and the handler
// answers 429 + Retry-After instead of queueing unboundedly. An admitted
// run then *acquires* a slot per slice; with -run-slice set it releases
// and re-acquires between slices, so the queue drains fairly even under
// multi-second runs.
//
// Fairness contract: when a slot frees up and the next waiter in FIFO
// order belongs to the session granted the previous slot, a waiter from a
// different session (the first such) is granted instead. No session holds
// the run semaphore for consecutive grants while another session waits.
//
// The mutex is never held across a wait: waiting happens on the waiter's
// own channel, so /metrics sampling of queue lengths can never block
// behind a saturated queue.

import (
	"context"
	"errors"
	"sync"
)

// errSaturated is returned by admit when the inflight cap is reached; the
// handlers translate it to 429 + Retry-After.
var errSaturated = errors.New("run queue full")

type runWaiter struct {
	session string
	ready   chan struct{}
	granted bool // guarded by runQueue.mu; true once ready is closed
}

type runQueue struct {
	mu       sync.Mutex
	slots    int // free engine slots
	inflight int // admitted runs (holding a slot or queued for one)
	max      int // admission cap; <= 0 means unlimited
	waiters  []*runWaiter
	last     string // session granted the most recent slot
}

func newRunQueue(slots, maxInflight int) *runQueue {
	return &runQueue{slots: slots, max: maxInflight}
}

// admit registers a run against the inflight cap. The returned ticket
// must be closed with done(); a nil ticket means the server is saturated.
func (q *runQueue) admit(session string) (*runTicket, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.max > 0 && q.inflight >= q.max {
		return nil, errSaturated
	}
	q.inflight++
	return &runTicket{q: q, session: session}, nil
}

// admitForce registers a run bypassing the cap. Used for run ops inside
// an already-accepted batch: the batch was admitted at the mutation layer,
// and failing one of its ops mid-flight would break its all-or-nothing
// response contract.
func (q *runQueue) admitForce(session string) *runTicket {
	q.mu.Lock()
	q.inflight++
	q.mu.Unlock()
	return &runTicket{q: q, session: session}
}

// stats samples the queue for /metrics: queued waiters and admitted runs.
func (q *runQueue) stats() (queued, inflight int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.waiters), q.inflight
}

// dispatch grants free slots to waiters, preferring a different session
// than the previous grant when one is waiting. Caller holds q.mu.
func (q *runQueue) dispatch() {
	for q.slots > 0 && len(q.waiters) > 0 {
		pick := 0
		if q.waiters[0].session == q.last {
			for i := 1; i < len(q.waiters); i++ {
				if q.waiters[i].session != q.last {
					pick = i
					break
				}
			}
		}
		w := q.waiters[pick]
		q.waiters = append(q.waiters[:pick], q.waiters[pick+1:]...)
		q.slots--
		q.last = w.session
		w.granted = true
		close(w.ready)
	}
}

// runTicket is one admitted run's handle on the queue.
type runTicket struct {
	q       *runQueue
	session string
	holding bool
}

// acquire obtains an engine slot, waiting fairly until ctx ends.
func (t *runTicket) acquire(ctx context.Context) error {
	q := t.q
	q.mu.Lock()
	if q.slots > 0 && len(q.waiters) == 0 {
		q.slots--
		q.last = t.session
		q.mu.Unlock()
		t.holding = true
		return nil
	}
	w := &runWaiter{session: t.session, ready: make(chan struct{})}
	q.waiters = append(q.waiters, w)
	q.mu.Unlock()

	select {
	case <-w.ready:
		t.holding = true
		return nil
	case <-ctx.Done():
		q.mu.Lock()
		if w.granted {
			// The grant raced the cancellation; the slot is ours to give
			// back before reporting the cancel.
			q.slots++
			q.dispatch()
			q.mu.Unlock()
			return ctx.Err()
		}
		for i, other := range q.waiters {
			if other == w {
				q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
				break
			}
		}
		q.mu.Unlock()
		return ctx.Err()
	}
}

// release returns the held slot, granting it onward.
func (t *runTicket) release() {
	if !t.holding {
		return
	}
	t.holding = false
	t.q.mu.Lock()
	t.q.slots++
	t.q.dispatch()
	t.q.mu.Unlock()
}

// done retires the ticket: any held slot is released and the admission
// count drops. Idempotent via the holding flag plus a nil guard is not
// needed — done must be called exactly once per admitted ticket.
func (t *runTicket) done() {
	t.release()
	t.q.mu.Lock()
	t.q.inflight--
	t.q.mu.Unlock()
}
