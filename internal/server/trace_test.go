package server

// Distributed-tracing tests: the cross-node trace assembled for a
// proxied request, trace-header adoption, the /debug/spans filters, the
// Server-Timing response header, and the slow-request flight recorder.

import (
	"bytes"
	"net/http"
	"strings"
	"testing"
	"time"

	"parulel/internal/obs"
)

// postRaw issues one JSON POST with http.DefaultClient and returns the
// raw response; unlike call() it exposes response headers. An optional
// X-Parulel-Trace header is attached when trace is non-empty.
func postRaw(t *testing.T, url, body, trace string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if trace != "" {
		req.Header.Set(obs.TraceHeader, trace)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// spansByStage indexes an assembled trace for assertions.
func spansByStage(spans []obs.Span) map[string][]obs.Span {
	m := make(map[string][]obs.Span)
	for _, sp := range spans {
		m[sp.Stage] = append(m[sp.Stage], sp)
	}
	return m
}

// TestClusterTracePropagation is the acceptance path: a run through a
// non-owner node must produce ONE trace whose spans — fetched assembled
// from a third node — cover ingress on both hops, the proxy leg, the
// owner's session/queue waits, WAL append+fsync, the replication
// round-trip, and the engine run, with consistent parent/child edges.
func TestClusterTracePropagation(t *testing.T) {
	tc := newTestCluster(t, 3, nil)

	info := createSession(t, tc.url("n0"), createSessionRequest{Source: recoverySrc})
	if home := sessionHome(info.ID); home != "n0" {
		t.Fatalf("session landed on %s, want n0", home)
	}
	assertTasks(t, tc.url("n0")+"/api/v1/sessions/"+info.ID, 0, 8)

	// The traced request: run via n1, which does not own the session and
	// must proxy to n0.
	resp := postRaw(t, tc.url("n1")+"/api/v1/sessions/"+info.ID+"/run", "{}", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxied run: status %d", resp.StatusCode)
	}
	hdr := resp.Header.Get(obs.TraceHeader)
	rtc, ok := obs.ParseTraceContext(hdr)
	if !ok {
		t.Fatalf("response %s header %q does not parse", obs.TraceHeader, hdr)
	}
	if rtc.Parent == "" {
		t.Fatalf("response trace header %q carries no ingress span id", hdr)
	}

	// n1's ingress span is recorded just after the response commits, so
	// poll the assembled trace (via n2, a third party to the request)
	// until every required stage is present.
	required := []string{
		stageIngress, stageProxy, stageSessionWait, stageQueueWait,
		stageWALAppend, stageWALFsync, stageReplAck, stageEngineRun,
	}
	var asm clusterTraceResponse
	deadline := time.Now().Add(5 * time.Second)
	for {
		asm = clusterTraceResponse{}
		st := call(t, "GET", tc.url("n2")+"/cluster/trace/"+rtc.TraceID, nil, &asm)
		if st != http.StatusOK {
			t.Fatalf("cluster trace: status %d", st)
		}
		missing := ""
		byStage := spansByStage(asm.Spans)
		for _, stg := range required {
			if len(byStage[stg]) == 0 {
				missing = stg
				break
			}
		}
		if missing == "" && len(byStage[stageIngress]) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("assembled trace never complete: missing %q, ingress spans %d, spans %+v",
				missing, len(byStage[stageIngress]), asm.Spans)
		}
		time.Sleep(20 * time.Millisecond)
	}

	if asm.TraceID != rtc.TraceID {
		t.Fatalf("trace id %q, want %q", asm.TraceID, rtc.TraceID)
	}
	if len(asm.Nodes) < 2 {
		t.Fatalf("trace assembled from %v, want spans from at least 2 nodes", asm.Nodes)
	}
	if len(asm.Unreachable) != 0 {
		t.Fatalf("unreachable peers %v with all nodes up", asm.Unreachable)
	}
	for _, sp := range asm.Spans {
		if sp.TraceID != rtc.TraceID {
			t.Fatalf("span %+v carries foreign trace id", sp)
		}
	}

	byStage := spansByStage(asm.Spans)

	// The edge chain: client → n1 ingress (root) → proxy → n0 ingress →
	// engine.run → engine phases; wal.append → wal.fsync; repl.ack →
	// repl.apply on the follower.
	var root obs.Span
	for _, sp := range byStage[stageIngress] {
		if sp.Parent == "" {
			root = sp
		}
	}
	if root.SpanID == "" {
		t.Fatalf("no root ingress span (empty parent) in %+v", byStage[stageIngress])
	}
	if root.Node != "n1" {
		t.Fatalf("root ingress recorded on %q, want n1 (the node the client hit)", root.Node)
	}
	if root.SpanID != rtc.Parent {
		t.Fatalf("response header parent %q is not the root ingress span %q", rtc.Parent, root.SpanID)
	}

	proxy := byStage[stageProxy][0]
	if proxy.Node != "n1" || proxy.Parent != root.SpanID {
		t.Fatalf("proxy span %+v: want node n1 parented to root ingress %s", proxy, root.SpanID)
	}

	var ownerIngress obs.Span
	for _, sp := range byStage[stageIngress] {
		if sp.Node == "n0" {
			ownerIngress = sp
		}
	}
	if ownerIngress.SpanID == "" {
		t.Fatalf("no ingress span on the owner node in %+v", byStage[stageIngress])
	}
	if ownerIngress.Parent != proxy.SpanID {
		t.Fatalf("owner ingress parent %q, want the proxy span %q", ownerIngress.Parent, proxy.SpanID)
	}

	run := byStage[stageEngineRun][0]
	if run.Node != "n0" || run.Parent != ownerIngress.SpanID {
		t.Fatalf("engine.run span %+v: want node n0 parented to owner ingress %s", run, ownerIngress.SpanID)
	}
	if run.Attrs["session"] != info.ID {
		t.Fatalf("engine.run session attr %q, want %q", run.Attrs["session"], info.ID)
	}
	if byStage[stageQueueWait][0].Parent != run.SpanID {
		t.Fatalf("queue.wait parent %q, want engine.run span %q", byStage[stageQueueWait][0].Parent, run.SpanID)
	}

	app := byStage[stageWALAppend][0]
	if app.Node != "n0" || app.Parent != ownerIngress.SpanID {
		t.Fatalf("wal.append span %+v: want node n0 parented to owner ingress %s", app, ownerIngress.SpanID)
	}
	fsyncParents := map[string]bool{}
	for _, sp := range byStage[stageWALAppend] {
		fsyncParents[sp.SpanID] = true
	}
	if fs := byStage[stageWALFsync][0]; !fsyncParents[fs.Parent] {
		t.Fatalf("wal.fsync parent %q is not a wal.append span", fs.Parent)
	}

	ack := byStage[stageReplAck][0]
	if ack.Node != "n0" || ack.Parent != ownerIngress.SpanID {
		t.Fatalf("repl.ack span %+v: want node n0 parented to owner ingress %s", ack, ownerIngress.SpanID)
	}
	ackIDs := map[string]bool{}
	for _, sp := range byStage[stageReplAck] {
		ackIDs[sp.SpanID] = true
	}
	if applies := byStage[stageReplApply]; len(applies) > 0 {
		apply := applies[0]
		if apply.Node == "n0" {
			t.Fatalf("repl.apply recorded on the primary: %+v", apply)
		}
		if !ackIDs[apply.Parent] {
			t.Fatalf("repl.apply parent %q is not a repl.ack span", apply.Parent)
		}
	} else {
		t.Fatalf("no repl.apply span from the follower in %+v", asm.Spans)
	}
}

// TestTraceHeaderAdoption: a client-supplied trace context is adopted —
// same trace id and request id on the response — instead of minted anew.
func TestTraceHeaderAdoption(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	const trace = "4bf92f3577b34da6a3ce929d0e0e4736"
	sent := obs.TraceContext{TraceID: trace, Parent: "00f067aa0ba902b7", ReqID: 0xdeadbeef}
	resp := postRaw(t, ts.URL+"/api/v1/sessions", `{"program":"quickstart"}`, sent.String())
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	echo, ok := obs.ParseTraceContext(resp.Header.Get(obs.TraceHeader))
	if !ok {
		t.Fatalf("response header %q does not parse", resp.Header.Get(obs.TraceHeader))
	}
	if echo.TraceID != trace {
		t.Fatalf("response trace id %q, want the carried %q", echo.TraceID, trace)
	}
	if echo.ReqID != 0xdeadbeef {
		t.Fatalf("response request id %#x, want the carried 0xdeadbeef", echo.ReqID)
	}

	// The ingress span parents to the caller's span, completing the edge
	// from the upstream hop.
	spans := s.spans.Query(trace, stageIngress, 0, 0)
	if len(spans) != 1 {
		t.Fatalf("want 1 ingress span for the carried trace, got %+v", spans)
	}
	if spans[0].Parent != sent.Parent {
		t.Fatalf("ingress parent %q, want the carried span id %q", spans[0].Parent, sent.Parent)
	}
}

// TestDebugSpansFilters exercises ?trace, ?stage, ?min_ms and ?limit.
func TestDebugSpansFilters(t *testing.T) {
	_, ts := newTestServer(t, Config{DataDir: t.TempDir()})
	info := createSession(t, ts.URL, createSessionRequest{Source: recoverySrc})
	url := ts.URL + "/api/v1/sessions/" + info.ID
	assertTasks(t, url, 0, 4)
	runSession(t, url)

	var all spansResponse
	if st := call(t, "GET", ts.URL+"/debug/spans", nil, &all); st != http.StatusOK {
		t.Fatalf("debug spans: status %d", st)
	}
	if all.Capacity != obs.DefaultSpanCapacity || all.Total == 0 || len(all.Spans) == 0 {
		t.Fatalf("bad store header: %+v", all)
	}

	var runs spansResponse
	call(t, "GET", ts.URL+"/debug/spans?stage=engine.run", nil, &runs)
	if len(runs.Spans) == 0 {
		t.Fatal("no engine.run spans after a run")
	}
	for _, sp := range runs.Spans {
		if sp.Stage != stageEngineRun {
			t.Fatalf("stage filter leaked %+v", sp)
		}
	}

	trace := runs.Spans[0].TraceID
	var byTrace spansResponse
	call(t, "GET", ts.URL+"/debug/spans?trace="+trace+"&limit=2", nil, &byTrace)
	if len(byTrace.Spans) != 2 {
		t.Fatalf("limit=2 returned %d spans", len(byTrace.Spans))
	}
	for _, sp := range byTrace.Spans {
		if sp.TraceID != trace {
			t.Fatalf("trace filter leaked %+v", sp)
		}
	}

	if st := call(t, "GET", ts.URL+"/debug/spans?min_ms=bogus", nil, nil); st != http.StatusBadRequest {
		t.Fatalf("bad min_ms: status %d, want 400", st)
	}
	if st := call(t, "GET", ts.URL+"/cluster/trace/not-a-trace-id", nil, nil); st != http.StatusBadRequest {
		t.Fatalf("bad trace id: status %d, want 400", st)
	}

	// Single-node /cluster/trace answers with the local spans alone.
	var asm clusterTraceResponse
	if st := call(t, "GET", ts.URL+"/cluster/trace/"+trace, nil, &asm); st != http.StatusOK {
		t.Fatalf("single-node cluster trace: status %d", st)
	}
	if len(asm.Spans) == 0 {
		t.Fatalf("single-node cluster trace empty for %s", trace)
	}
}

// TestServerTimingHeader: a durable run's response carries Server-Timing
// with the queue/wal/run stages parsable by the parload client.
func TestServerTimingHeader(t *testing.T) {
	_, ts := newTestServer(t, Config{DataDir: t.TempDir()})
	info := createSession(t, ts.URL, createSessionRequest{Source: recoverySrc})
	url := ts.URL + "/api/v1/sessions/" + info.ID
	assertTasks(t, url, 0, 4)

	resp := postRaw(t, url+"/run", "{}", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: status %d", resp.StatusCode)
	}
	st := resp.Header.Get("Server-Timing")
	for _, tok := range []string{"run;dur=", "wal;dur=", "queue;dur="} {
		if !strings.Contains(st, tok) {
			t.Fatalf("Server-Timing %q missing %q", st, tok)
		}
	}
}

// TestFlightRecorderCapture: with a nanosecond threshold every request
// is "slow", so the ring must hold captures with their span trees.
func TestFlightRecorderCapture(t *testing.T) {
	_, ts := newTestServer(t, Config{SlowRequestThreshold: time.Nanosecond, FlightRecorderSize: 4})
	info := createSession(t, ts.URL, createSessionRequest{Program: "quickstart"})
	runSession(t, ts.URL+"/api/v1/sessions/"+info.ID)

	var fr struct {
		ThresholdMS int64              `json:"threshold_ms"`
		Total       uint64             `json:"total"`
		Capacity    int                `json:"capacity"`
		Records     []obs.FlightRecord `json:"records"`
	}
	if st := call(t, "GET", ts.URL+"/debug/flightrecorder", nil, &fr); st != http.StatusOK {
		t.Fatalf("flight recorder: status %d", st)
	}
	if fr.Capacity != 4 || fr.Total < 2 || len(fr.Records) == 0 {
		t.Fatalf("bad flight recorder state: %+v", fr)
	}
	var run *obs.FlightRecord
	for i := range fr.Records {
		if strings.HasSuffix(fr.Records[i].Path, "/run") {
			run = &fr.Records[i]
		}
	}
	if run == nil {
		t.Fatalf("no capture of the run request in %+v", fr.Records)
	}
	if run.TraceID == "" || run.Status != http.StatusOK || run.DurNS <= 0 {
		t.Fatalf("bad capture %+v", run)
	}
	found := false
	for _, sp := range run.Spans {
		if sp.Stage == stageEngineRun {
			found = true
		}
	}
	if !found {
		t.Fatalf("capture %+v lacks the engine.run span", run)
	}

	// Disabled recorder (negative threshold) captures nothing.
	_, ts2 := newTestServer(t, Config{SlowRequestThreshold: -1})
	createSession(t, ts2.URL, createSessionRequest{Program: "quickstart"})
	var fr2 struct {
		Total uint64 `json:"total"`
	}
	call(t, "GET", ts2.URL+"/debug/flightrecorder", nil, &fr2)
	if fr2.Total != 0 {
		t.Fatalf("disabled flight recorder captured %d records", fr2.Total)
	}
}
