package server

// Unit tests for the run-queue scheduler: admission cap, fair dispatch
// between sessions, slot accounting across slices, and the grant/cancel
// race. These drive runQueue directly, without HTTP.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// waitStats polls until the queue reaches the wanted shape.
func waitStats(t *testing.T, q *runQueue, queued, inflight int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		gotQ, gotI := q.stats()
		if gotQ == queued && gotI == inflight {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue stats: got (%d queued, %d inflight), want (%d, %d)", gotQ, gotI, queued, inflight)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRunQueueAdmissionCap(t *testing.T) {
	q := newRunQueue(1, 2)
	t1, err := q.admit("a")
	if err != nil {
		t.Fatal(err)
	}
	t2, err := q.admit("b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.admit("c"); !errors.Is(err, errSaturated) {
		t.Fatalf("third admit: got %v, want errSaturated", err)
	}
	t1.done()
	t3, err := q.admit("c")
	if err != nil {
		t.Fatalf("admit after done: %v", err)
	}
	// admitForce bypasses the cap even when full.
	t4 := q.admitForce("d")
	if _, inflight := q.stats(); inflight != 3 {
		t.Fatalf("inflight: got %d, want 3", inflight)
	}
	t2.done()
	t3.done()
	t4.done()
	if queued, inflight := q.stats(); queued != 0 || inflight != 0 {
		t.Fatalf("after done: got (%d, %d), want (0, 0)", queued, inflight)
	}
}

func TestRunQueueFairDispatch(t *testing.T) {
	q := newRunQueue(1, 0)
	tA, err := q.admit("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := tA.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Queue a second waiter for session a, then one for session b, so the
	// FIFO head shares a session with the current holder.
	order := make(chan string, 2)
	var wg sync.WaitGroup
	enqueue := func(session string) *runTicket {
		tk, err := q.admit(session)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := tk.acquire(context.Background()); err != nil {
				t.Error(err)
				return
			}
			order <- session
			tk.done()
		}()
		return tk
	}
	enqueue("a")
	waitStats(t, q, 1, 2)
	enqueue("b")
	waitStats(t, q, 2, 3)

	// Releasing a's slot must grant b first even though a's second waiter
	// is at the head of the queue.
	tA.done()
	wg.Wait()
	if first, second := <-order, <-order; first != "b" || second != "a" {
		t.Fatalf("grant order: got (%s, %s), want (b, a)", first, second)
	}
}

func TestRunQueueSliceReacquire(t *testing.T) {
	q := newRunQueue(1, 0)
	tk, err := q.admit("a")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := tk.acquire(context.Background()); err != nil {
			t.Fatal(err)
		}
		tk.release()
	}
	tk.done()
	if queued, inflight := q.stats(); queued != 0 || inflight != 0 {
		t.Fatalf("after slices: got (%d, %d), want (0, 0)", queued, inflight)
	}
	// The slot must be free again.
	tk2, _ := q.admit("b")
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := tk2.acquire(ctx); err != nil {
		t.Fatalf("slot leaked across slices: %v", err)
	}
	tk2.done()
}

func TestRunQueueCanceledWaiterReturnsSlot(t *testing.T) {
	// Hammer the grant/cancel race: a holder releases while the sole
	// waiter cancels. Whatever interleaving happens, the slot must be
	// recoverable afterwards and acquire must never report success after
	// its context ended.
	for i := 0; i < 200; i++ {
		q := newRunQueue(1, 0)
		holder, _ := q.admit("h")
		if err := holder.acquire(context.Background()); err != nil {
			t.Fatal(err)
		}
		waiter, _ := q.admit("w")
		ctx, cancel := context.WithCancel(context.Background())
		got := make(chan error, 1)
		go func() { got <- waiter.acquire(ctx) }()
		waitStats(t, q, 1, 2)
		go cancel()
		holder.done()
		if err := <-got; err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("acquire: %v", err)
		}
		waiter.done()
		// Full capacity must be available again.
		probe, _ := q.admit("p")
		probeCtx, probeCancel := context.WithTimeout(context.Background(), time.Second)
		if err := probe.acquire(probeCtx); err != nil {
			probeCancel()
			t.Fatalf("iteration %d leaked the slot: %v", i, err)
		}
		probeCancel()
		probe.done()
	}
}
