package server

// Temporal subsystem coverage at the HTTP surface: the batch "tick" op,
// the NDJSON stream endpoint, and — the durability contract — TTL expiry
// reproducing identically across WAL replay, checkpoint recovery, and a
// kill in the middle of a live stream. Expired facts must never
// resurrect.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"parulel/internal/wal"
	"parulel/internal/wm"
)

// temporalSrc: ev facts live two ticks (the finish rule's modify restarts
// the clock on the rewritten fact), done facts are permanent, and a
// window keyed on state tracks the live ev population.
const temporalSrc = `
(literalize ev n state)
(literalize done n)
(ttl ev 2)
(window win ev ^key state ^ticks 2)
(rule finish
  <e> <- (ev ^n <n> ^state new)
-->
  (make done ^n <n>)
  (modify <e> ^state old))
`

// streamBody renders frames [from, to): three ev facts per frame, one
// tick, one run — the canonical stream script shared by the crashed
// session and its uninterrupted control.
func streamBody(t *testing.T, from, to int) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for f := from; f < to; f++ {
		facts := make([]any, 3)
		for i := range facts {
			facts[i] = map[string]any{
				"template": "ev",
				"fields":   map[string]any{"n": f*10 + i, "state": "new"},
			}
		}
		if err := enc.Encode(map[string]any{"facts": facts, "run": true, "timeout_ms": 10000}); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// streamCall posts one NDJSON stream request and returns the decoded
// response lines.
func streamCall(t *testing.T, url string, body []byte) []streamFrameResult {
	t.Helper()
	resp, err := http.Post(url+"/stream", "application/x-ndjson", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream: status %d: %s", resp.StatusCode, b)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	var lines []streamFrameResult
	dec := json.NewDecoder(resp.Body)
	for {
		var line streamFrameResult
		if err := dec.Decode(&line); err != nil {
			if err == io.EOF {
				return lines
			}
			t.Fatal(err)
		}
		lines = append(lines, line)
	}
}

// TestBatchTickOp: the batch "tick" op advances the clock, reports the
// resulting value, and counts the facts it expired.
func TestBatchTickOp(t *testing.T) {
	_, ts := newTestServer(t, Config{DataDir: t.TempDir()})
	info := createSession(t, ts.URL, createSessionRequest{Source: temporalSrc})
	url := ts.URL + "/api/v1/sessions/" + info.ID

	var resp batchResponse
	req := batchRequest{Ops: []batchOp{
		{Op: "assert", Facts: []factPayload{
			{Template: "ev", Fields: map[string]jsonValue{"n": {V: wm.Int(1)}, "state": {V: wm.Sym("idle")}}},
			{Template: "ev", Fields: map[string]jsonValue{"n": {V: wm.Int(2)}, "state": {V: wm.Sym("idle")}}},
		}},
		{Op: "tick"},
	}}
	if st := call(t, "POST", url+"/batch", req, &resp); st != http.StatusOK {
		t.Fatalf("batch: status %d", st)
	}
	if resp.Results[1].Tick != 1 || resp.Results[1].Count != 0 {
		t.Fatalf("tick result %+v, want tick 1, count 0", resp.Results[1])
	}
	if got := getInfo(t, url); got.Tick != 1 {
		t.Fatalf("session tick %d, want 1", got.Tick)
	}

	// Two more ticks: the facts absorbed at tick 1 expire at tick 3.
	if st := call(t, "POST", url+"/batch", batchRequest{Ops: []batchOp{{Op: "tick", Ticks: 2}}}, &resp); st != http.StatusOK {
		t.Fatalf("batch: status %d", st)
	}
	if resp.Results[0].Tick != 3 || resp.Results[0].Count != 2 {
		t.Fatalf("tick result %+v, want tick 3, count 2", resp.Results[0])
	}
	if resp.WMSize != 0 {
		t.Fatalf("wm size %d after expiry, want 0", resp.WMSize)
	}

	// Negative tick counts are rejected up front.
	if st := call(t, "POST", url+"/batch", batchRequest{Ops: []batchOp{{Op: "tick", Ticks: -1}}}, nil); st != http.StatusBadRequest {
		t.Fatalf("negative ticks: status %d, want 400", st)
	}
}

// TestAssertTTLOverride: a per-fact ttl in the assert payload beats the
// template default.
func TestAssertTTLOverride(t *testing.T) {
	_, ts := newTestServer(t, Config{DataDir: t.TempDir()})
	info := createSession(t, ts.URL, createSessionRequest{Source: temporalSrc})
	url := ts.URL + "/api/v1/sessions/" + info.ID

	req := assertRequest{Facts: []factPayload{
		{Template: "done", Fields: map[string]jsonValue{"n": {V: wm.Int(9)}}, TTL: 1},
	}}
	if st := call(t, "POST", url+"/facts", req, nil); st != http.StatusOK {
		t.Fatalf("assert: status %d", st)
	}
	var resp batchResponse
	if st := call(t, "POST", url+"/batch", batchRequest{Ops: []batchOp{{Op: "tick", Ticks: 2}}}, &resp); st != http.StatusOK {
		t.Fatalf("batch: status %d", st)
	}
	if resp.Results[0].Count != 1 || resp.WMSize != 0 {
		t.Fatalf("override fact not expired: %+v (wm %d)", resp.Results[0], resp.WMSize)
	}

	// Negative TTLs are rejected.
	req.Facts[0].TTL = -1
	if st := call(t, "POST", url+"/facts", req, nil); st != http.StatusBadRequest {
		t.Fatalf("negative ttl: status %d, want 400", st)
	}
}

// TestStreamEndpoint: frames apply atomically in order, each response
// line reports the running clock and WM size, and a bad frame terminates
// the stream in-band with the applied prefix preserved.
func TestStreamEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{DataDir: t.TempDir()})
	info := createSession(t, ts.URL, createSessionRequest{Source: temporalSrc})
	url := ts.URL + "/api/v1/sessions/" + info.ID

	lines := streamCall(t, url, streamBody(t, 0, 3))
	if len(lines) != 3 {
		t.Fatalf("%d response lines, want 3", len(lines))
	}
	for i, line := range lines {
		if line.Error != "" {
			t.Fatalf("frame %d: error %q", i+1, line.Error)
		}
		if line.Frame != i+1 || line.Asserted != 3 || line.Tick != int64(i+1) {
			t.Fatalf("frame %d: %+v", i+1, line)
		}
		if line.Run == nil || line.Run.Firings == 0 {
			t.Fatalf("frame %d: run did not fire", i+1)
		}
	}
	if got := getInfo(t, url); got.Tick != 3 {
		t.Fatalf("session tick %d, want 3", got.Tick)
	}

	// A frame naming an unknown template ends the stream after the first
	// frame applied; the session keeps that frame's effects.
	var bad bytes.Buffer
	bad.Write(streamBody(t, 3, 4))
	fmt.Fprintln(&bad, `{"facts":[{"template":"ghost","fields":{}}]}`)
	bad.Write(streamBody(t, 4, 5))
	lines = streamCall(t, url, bad.Bytes())
	if len(lines) != 2 {
		t.Fatalf("%d response lines after bad frame, want 2", len(lines))
	}
	if lines[0].Error != "" || lines[1].Error == "" {
		t.Fatalf("want ok then error, got %+v", lines)
	}
	if got := getInfo(t, url); got.Tick != 4 {
		t.Fatalf("session tick %d after terminated stream, want 4", got.Tick)
	}
}

// TestTemporalRecoveryAfterRestart: TTL expiry driven through the stream
// endpoint survives a kill-and-restart byte-identically — the WAL's tick
// records replay the same expirations — and the recovered session keeps
// evolving exactly like an uninterrupted control. Facts that expired
// before the crash must not resurrect.
func TestTemporalRecoveryAfterRestart(t *testing.T) {
	cfg := Config{DataDir: t.TempDir(), Fsync: wal.PolicyAlways}
	tsA := startCrashable(t, cfg)
	info := createSession(t, tsA.URL, createSessionRequest{Source: temporalSrc})
	urlA := tsA.URL + "/api/v1/sessions/" + info.ID

	streamCall(t, urlA, streamBody(t, 0, 4))
	var resp batchResponse
	if st := call(t, "POST", urlA+"/batch", batchRequest{Ops: []batchOp{{Op: "tick", Ticks: 2}}}, &resp); st != http.StatusOK {
		t.Fatalf("batch: status %d", st)
	}
	if resp.Results[0].Count == 0 {
		t.Fatal("trailing ticks expired nothing; test premise broken")
	}
	wantSnap := exportSnapshot(t, urlA)
	wantInfo := getInfo(t, urlA)
	if strings.Contains(wantSnap, "(ev ^n 0 ") {
		t.Fatal("frame-0 fact still live before the crash; test premise broken")
	}
	tsA.Close() // crash: no drain, no checkpoint

	_, tsB := newTestServer(t, cfg)
	urlB := tsB.URL + "/api/v1/sessions/" + info.ID
	gotInfo := getInfo(t, urlB)
	if gotInfo.Tick != wantInfo.Tick || gotInfo.Cycles != wantInfo.Cycles ||
		gotInfo.Firings != wantInfo.Firings || gotInfo.WMSize != wantInfo.WMSize {
		t.Fatalf("recovered counters differ:\n got %+v\nwant %+v", gotInfo, wantInfo)
	}
	gotSnap := exportSnapshot(t, urlB)
	if gotSnap != wantSnap {
		t.Fatalf("recovered snapshot differs:\n-- got --\n%s\n-- want --\n%s", gotSnap, wantSnap)
	}
	if strings.Contains(gotSnap, "(ev ^n 0 ") {
		t.Fatal("expired fact resurrected by replay")
	}

	// The recovered session and a fresh control must evolve identically
	// from here: same frames, same ticks, same expirations.
	control := createSession(t, tsB.URL, createSessionRequest{Source: temporalSrc})
	controlURL := tsB.URL + "/api/v1/sessions/" + control.ID
	streamCall(t, controlURL, streamBody(t, 0, 4))
	if st := call(t, "POST", controlURL+"/batch", batchRequest{Ops: []batchOp{{Op: "tick", Ticks: 2}}}, nil); st != http.StatusOK {
		t.Fatalf("control batch: status %d", st)
	}
	for _, u := range []string{urlB, controlURL} {
		streamCall(t, u, streamBody(t, 4, 6))
	}
	if a, b := exportSnapshot(t, urlB), exportSnapshot(t, controlURL); a != b {
		t.Fatalf("post-recovery evolution diverged:\n-- recovered --\n%s\n-- control --\n%s", a, b)
	}
}

// TestTemporalCheckpointRecovery: with a checkpoint after every record,
// recovery restores the clock from the checkpoint header, not from tick
// replay — absorbed facts must still expire on schedule afterwards.
func TestTemporalCheckpointRecovery(t *testing.T) {
	cfg := Config{DataDir: t.TempDir(), Fsync: wal.PolicyAlways, CheckpointEvery: 1}
	tsA := startCrashable(t, cfg)
	info := createSession(t, tsA.URL, createSessionRequest{Source: temporalSrc})
	urlA := tsA.URL + "/api/v1/sessions/" + info.ID

	streamCall(t, urlA, streamBody(t, 0, 2))
	wantSnap := exportSnapshot(t, urlA)
	wantInfo := getInfo(t, urlA)
	tsA.Close()

	_, tsB := newTestServer(t, cfg)
	urlB := tsB.URL + "/api/v1/sessions/" + info.ID
	gotInfo := getInfo(t, urlB)
	if gotInfo.Tick != wantInfo.Tick || gotInfo.WMSize != wantInfo.WMSize {
		t.Fatalf("checkpoint recovery differs:\n got %+v\nwant %+v", gotInfo, wantInfo)
	}
	if gotSnap := exportSnapshot(t, urlB); gotSnap != wantSnap {
		t.Fatalf("checkpoint recovery snapshot differs:\n-- got --\n%s\n-- want --\n%s", gotSnap, wantSnap)
	}

	// The restored clock must still know when the pre-crash facts die:
	// frame 1's rewritten facts were absorbed at tick 2 (expire 4) and
	// frame 2's rewrites get absorbed at tick 3 (expire 5), so three more
	// ticks clear every ev fact.
	var resp batchResponse
	if st := call(t, "POST", urlB+"/batch", batchRequest{Ops: []batchOp{{Op: "tick", Ticks: 3}}}, &resp); st != http.StatusOK {
		t.Fatalf("batch: status %d", st)
	}
	if resp.Results[0].Count == 0 {
		t.Fatal("restored clock expired nothing: absorption state lost in the checkpoint")
	}
	if snap := exportSnapshot(t, urlB); strings.Contains(snap, "(ev ") {
		t.Fatalf("ev facts survive post-recovery expiry:\n%s", snap)
	}
}

// TestKillMidStreamRecovery: the server dies while a stream request is
// live. Every acknowledged frame was persisted before its response line
// was emitted, so recovery must reconstruct exactly the acknowledged
// prefix — matching a control session that streamed the same frames
// uninterrupted — and pre-crash expirations must hold.
func TestKillMidStreamRecovery(t *testing.T) {
	cfg := Config{DataDir: t.TempDir(), Fsync: wal.PolicyAlways}
	tsA := startCrashable(t, cfg)
	info := createSession(t, tsA.URL, createSessionRequest{Source: temporalSrc})
	urlA := tsA.URL + "/api/v1/sessions/" + info.ID

	// Three frames land in a completed request first.
	streamCall(t, urlA, streamBody(t, 0, 3))

	// Then a stream is cut down mid-request: two frames acknowledged, the
	// connection severed while the handler waits for the next frame.
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, urlA+"/stream", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	respCh := make(chan *http.Response, 1)
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			errCh <- err
			return
		}
		respCh <- resp
	}()
	if _, err := pw.Write(streamBody(t, 3, 5)); err != nil {
		t.Fatal(err)
	}
	var resp *http.Response
	select {
	case resp = <-respCh:
	case err := <-errCh:
		t.Fatalf("stream request failed before first frame: %v", err)
	}
	dec := json.NewDecoder(resp.Body)
	for i := 0; i < 2; i++ {
		var line streamFrameResult
		if err := dec.Decode(&line); err != nil {
			t.Fatalf("frame %d response: %v", i+4, err)
		}
		if line.Error != "" {
			t.Fatalf("frame %d: error %q", i+4, line.Error)
		}
	}
	tsA.CloseClientConnections() // kill the live stream
	resp.Body.Close()
	pw.Close()
	tsA.Close()

	_, tsB := newTestServer(t, cfg)
	urlB := tsB.URL + "/api/v1/sessions/" + info.ID
	gotInfo := getInfo(t, urlB)
	if gotInfo.Tick != 5 {
		t.Fatalf("recovered tick %d, want 5 (5 acknowledged frames)", gotInfo.Tick)
	}
	gotSnap := exportSnapshot(t, urlB)
	if strings.Contains(gotSnap, "(ev ^n 0 ") {
		t.Fatal("fact expired before the crash resurrected after recovery")
	}

	// A control session streaming the same five frames uninterrupted must
	// reach the identical state.
	control := createSession(t, tsB.URL, createSessionRequest{Source: temporalSrc})
	controlURL := tsB.URL + "/api/v1/sessions/" + control.ID
	streamCall(t, controlURL, streamBody(t, 0, 5))
	if controlSnap := exportSnapshot(t, controlURL); controlSnap != gotSnap {
		t.Fatalf("recovered state differs from uninterrupted control:\n-- recovered --\n%s\n-- control --\n%s", gotSnap, controlSnap)
	}
}
