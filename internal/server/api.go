package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"

	"parulel/internal/obs"
	"parulel/internal/wm"
)

// This file defines the HTTP/JSON wire types and the mapping between JSON
// values and rule-language values (wm.Value).
//
// Encoding rules (documented in docs/SERVER.md):
//
//	nil    ↔ null
//	int    ↔ JSON number without fraction or exponent
//	float  ↔ JSON number with fraction or exponent (integral floats are
//	         rendered with a trailing ".0" so they survive a round trip)
//	symbol ↔ JSON string
//	string ↔ {"str": "..."} (strings are rarer than symbols in PARULEL)
//
// On input the explicit object forms {"int": n}, {"float": x},
// {"sym": "..."} and {"str": "..."} are also accepted, and JSON booleans
// map to the symbols true/false (wm.Bool).

// jsonValue wraps a wm.Value with the wire encoding above.
type jsonValue struct{ V wm.Value }

// MarshalJSON implements the encoding side.
func (j jsonValue) MarshalJSON() ([]byte, error) {
	v := j.V
	switch v.Kind {
	case wm.KindNil:
		return []byte("null"), nil
	case wm.KindInt:
		return strconv.AppendInt(nil, v.I, 10), nil
	case wm.KindFloat:
		if math.IsNaN(v.F) || math.IsInf(v.F, 0) {
			// Non-finite floats have no JSON literal; null is the least bad.
			return []byte("null"), nil
		}
		s := strconv.FormatFloat(v.F, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return []byte(s), nil
	case wm.KindSym:
		return json.Marshal(v.S)
	case wm.KindStr:
		return json.Marshal(map[string]string{"str": v.S})
	}
	return nil, fmt.Errorf("unencodable value kind %v", v.Kind)
}

// UnmarshalJSON implements the decoding side.
func (j *jsonValue) UnmarshalJSON(b []byte) error {
	b = bytes.TrimSpace(b)
	if len(b) == 0 {
		return fmt.Errorf("empty value")
	}
	switch b[0] {
	case 'n':
		j.V = wm.Nil()
		return nil
	case 't', 'f':
		var v bool
		if err := json.Unmarshal(b, &v); err != nil {
			return err
		}
		j.V = wm.Bool(v)
		return nil
	case '"':
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		j.V = wm.Sym(s)
		return nil
	case '{':
		var m map[string]json.RawMessage
		if err := json.Unmarshal(b, &m); err != nil {
			return err
		}
		if len(m) != 1 {
			return fmt.Errorf("typed value must have exactly one of int/float/sym/str")
		}
		for k, raw := range m {
			switch k {
			case "int":
				var n int64
				if err := json.Unmarshal(raw, &n); err != nil {
					return err
				}
				j.V = wm.Int(n)
			case "float":
				var f float64
				if err := json.Unmarshal(raw, &f); err != nil {
					return err
				}
				j.V = wm.Float(f)
			case "sym":
				var s string
				if err := json.Unmarshal(raw, &s); err != nil {
					return err
				}
				j.V = wm.Sym(s)
			case "str":
				var s string
				if err := json.Unmarshal(raw, &s); err != nil {
					return err
				}
				j.V = wm.Str(s)
			default:
				return fmt.Errorf("unknown typed value key %q", k)
			}
		}
		return nil
	default: // number
		s := string(b)
		if strings.ContainsAny(s, ".eE") {
			f, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return fmt.Errorf("bad number %q: %w", s, err)
			}
			j.V = wm.Float(f)
			return nil
		}
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return fmt.Errorf("bad integer %q: %w", s, err)
		}
		j.V = wm.Int(n)
		return nil
	}
}

// toFields converts wire fields to the engine's map form.
func toFields(in map[string]jsonValue) map[string]wm.Value {
	out := make(map[string]wm.Value, len(in))
	for k, v := range in {
		out[k] = v.V
	}
	return out
}

// factPayload is one working-memory element on the wire. TTL (asserts
// only) overrides the template's default lifetime: the fact expires that
// many ticks after the session's temporal clock absorbs it.
type factPayload struct {
	Template string               `json:"template"`
	Time     int64                `json:"time,omitempty"`
	Fields   map[string]jsonValue `json:"fields"`
	TTL      int64                `json:"ttl,omitempty"`
}

// encodeFact renders a live WME, eliding nil attributes like the
// snapshot format does.
func encodeFact(w *wm.WME) factPayload {
	f := factPayload{Template: w.Tmpl.Name, Time: w.Time, Fields: map[string]jsonValue{}}
	for i, attr := range w.Tmpl.Attrs {
		if !w.Fields[i].IsNil() {
			f.Fields[attr] = jsonValue{w.Fields[i]}
		}
	}
	return f
}

// createSessionRequest creates a session from an embedded program name or
// uploaded PARULEL source (exactly one of Program/Source).
type createSessionRequest struct {
	Program string `json:"program,omitempty"`
	Source  string `json:"source,omitempty"`
	Workers int    `json:"workers,omitempty"`
	Matcher string `json:"matcher,omitempty"` // rete (default) or treat
	// MaxCycles caps the session's cumulative cycle count as a runaway
	// guard; 0 uses the server default.
	MaxCycles int `json:"max_cycles,omitempty"`
}

// sessionInfo describes a session in list/get/create responses.
type sessionInfo struct {
	ID         string `json:"id"`
	Program    string `json:"program"`
	Workers    int    `json:"workers"`
	Matcher    string `json:"matcher"`
	CreatedAt  string `json:"created_at"`
	LastUsedAt string `json:"last_used_at"`
	WMSize     int    `json:"wm_size"`
	Runs       int    `json:"runs"`
	Cycles     int    `json:"cycles"`
	Firings    int    `json:"firings"`
	Redactions int    `json:"redactions"`
	Tick       int64  `json:"tick,omitempty"`
	Busy       bool   `json:"busy"`
	Durable    bool   `json:"durable,omitempty"`
}

// assertRequest inserts facts into a session's working memory.
type assertRequest struct {
	Facts []factPayload `json:"facts"`
}

// retractRequest removes every live WME of Template whose fields equal
// all the given field values (strict equality per attribute).
type retractRequest struct {
	Template string               `json:"template"`
	Fields   map[string]jsonValue `json:"fields,omitempty"`
}

// runRequest runs a session to quiescence under a deadline.
type runRequest struct {
	// TimeoutMS bounds the run; 0 uses the server default. Exceeding it
	// returns HTTP 504 and leaves the session usable at the last committed
	// cycle.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// runResponse reports one run's outcome. Counters are per-run deltas, not
// session-cumulative ones (those live in sessionInfo).
type runResponse struct {
	Cycles         int    `json:"cycles"`
	Firings        int    `json:"firings"`
	Redactions     int    `json:"redactions"`
	WriteConflicts int    `json:"write_conflicts"`
	Halted         bool   `json:"halted"`
	Quiescent      bool   `json:"quiescent"`
	WallMS         int64  `json:"wall_ms"`
	WMSize         int    `json:"wm_size"`
	Output         string `json:"output,omitempty"`
	OutputTrunc    bool   `json:"output_truncated,omitempty"`
}

// batchOp is one operation in a batch request. Op selects which of the
// remaining fields apply: assert uses Facts, retract uses Template/Fields,
// run uses TimeoutMS (same semantics as runRequest.TimeoutMS), tick uses
// Ticks (how many clock advances; 0 means 1).
type batchOp struct {
	Op        string               `json:"op"`
	Facts     []factPayload        `json:"facts,omitempty"`
	Template  string               `json:"template,omitempty"`
	Fields    map[string]jsonValue `json:"fields,omitempty"`
	TimeoutMS int64                `json:"timeout_ms,omitempty"`
	Ticks     int64                `json:"ticks,omitempty"`
}

// batchRequest applies an ordered list of operations in one WAL-framed
// round-trip.
type batchRequest struct {
	Ops []batchOp `json:"ops"`
}

// batchOpResult reports one batch op's outcome. Error is set on the op
// that stopped the batch; ops after it were not attempted and have no
// result entry. For tick ops Count is the number of facts expired and
// Tick the clock value after the op.
type batchOpResult struct {
	Op    string       `json:"op"`
	Count int          `json:"count,omitempty"`
	Tick  int64        `json:"tick,omitempty"`
	Run   *runResponse `json:"run,omitempty"`
	Error string       `json:"error,omitempty"`
}

// batchResponse reports a batch's outcome: Applied counts the ops that
// completed without error.
type batchResponse struct {
	Applied int             `json:"applied"`
	Results []batchOpResult `json:"results"`
	WMSize  int             `json:"wm_size"`
}

// jobInfo describes an async run job. Result is present once the job
// reached a terminal state with its session intact; interrupted jobs
// recovered after a restart carry no result.
type jobInfo struct {
	ID         string       `json:"id"`
	Session    string       `json:"session"`
	Status     string       `json:"status"`
	CreatedAt  string       `json:"created_at"`
	StartedAt  string       `json:"started_at,omitempty"`
	FinishedAt string       `json:"finished_at,omitempty"`
	Error      string       `json:"error,omitempty"`
	Result     *runResponse `json:"result,omitempty"`
}

// traceResponse carries a session's recent cycle events. Total counts
// every cycle ever traced, so total > len(events) means the ring dropped
// old cycles; capacity is the ring size.
type traceResponse struct {
	Session  string      `json:"session"`
	Total    uint64      `json:"total"`
	Capacity int         `json:"capacity"`
	Events   []obs.Event `json:"events"`
}

// countResponse is the generic mutation reply.
type countResponse struct {
	Count  int `json:"count"`
	WMSize int `json:"wm_size"`
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}
