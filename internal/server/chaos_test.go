package server

// Chaos coverage (skipped under -short): concurrent writers are killed
// mid-flight by dropping their connections and abandoning the server, then
// a fresh server recovers the same data directory. The durability
// contract under concurrency:
//
//   - every mutation a writer saw acknowledged is present after recovery;
//   - every batch is atomic: all of its facts or none, acked or not;
//   - a graceful drain during the same traffic loses nothing at all.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"parulel/internal/wal"
)

const chaosBatchSize = 8

// chaosWriter hammers one session with asserts and batches, recording what
// was acked and which batch tags were ever sent.
type chaosWriter struct {
	id          int
	ackedSingle []string // fact keys acknowledged individually
	ackedBatch  []string // batch tags acknowledged (k facts each)
	sentBatch   []string // batch tags sent, acked or not
}

func (w *chaosWriter) run(t *testing.T, url string, stop <-chan struct{}) {
	for n := 0; ; n++ {
		select {
		case <-stop:
			return
		default:
		}
		if n%3 == 2 {
			tag := fmt.Sprintf("b%d-%d", w.id, n)
			ops := []batchOp{{Op: "assert", Facts: batchFacts(tag)}}
			w.sentBatch = append(w.sentBatch, tag)
			if st := chaosCall(t, "POST", url+"/batch", batchRequest{Ops: ops}); st == http.StatusOK {
				w.ackedBatch = append(w.ackedBatch, tag)
			}
		} else {
			key := fmt.Sprintf("s%d-%d", w.id, n)
			req := assertRequest{Facts: []factPayload{itemFact(key)}}
			if st := chaosCall(t, "POST", url+"/facts", req); st == http.StatusOK {
				w.ackedSingle = append(w.ackedSingle, key)
			}
		}
	}
}

func batchFacts(tag string) []factPayload {
	facts := make([]factPayload, chaosBatchSize)
	for i := range facts {
		facts[i] = itemFact(fmt.Sprintf("%s-%d", tag, i))
	}
	return facts
}

// chaosCall is call without the fatal error handling: transport errors are
// expected once the server is killed and count as "not acked".
func chaosCall(t *testing.T, method, url string, body any) int {
	t.Helper()
	st, err := tryCall(method, url, body)
	if err != nil {
		return 0
	}
	return st
}

func tryCall(method, url string, body any) (int, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequest(method, url, bytes.NewReader(b))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, err
	}
	resp.Body.Close()
	return resp.StatusCode, nil
}

// presentKeys fetches every item fact's key field from working memory.
func presentKeys(t *testing.T, url string) map[string]bool {
	t.Helper()
	var resp struct {
		Total int `json:"total"`
		Facts []struct {
			Fields map[string]any `json:"fields"`
		} `json:"facts"`
	}
	if st := call(t, "GET", url+"/wm?template=item", nil, &resp); st != http.StatusOK {
		t.Fatalf("wm: status %d", st)
	}
	keys := make(map[string]bool, len(resp.Facts))
	for _, f := range resp.Facts {
		if k, ok := f.Fields["k"].(string); ok {
			keys[k] = true
		}
	}
	return keys
}

// checkChaosInvariants verifies acked-present and batch-atomicity against
// the recovered working memory.
func checkChaosInvariants(t *testing.T, writers []*chaosWriter, keys map[string]bool) {
	t.Helper()
	for _, w := range writers {
		for _, key := range w.ackedSingle {
			if !keys[key] {
				t.Errorf("acked fact %s lost", key)
			}
		}
		acked := make(map[string]bool, len(w.ackedBatch))
		for _, tag := range w.ackedBatch {
			acked[tag] = true
		}
		for _, tag := range w.sentBatch {
			present := 0
			for i := 0; i < chaosBatchSize; i++ {
				if keys[fmt.Sprintf("%s-%d", tag, i)] {
					present++
				}
			}
			switch {
			case acked[tag] && present != chaosBatchSize:
				t.Errorf("acked batch %s torn: %d/%d facts recovered", tag, present, chaosBatchSize)
			case !acked[tag] && present != 0 && present != chaosBatchSize:
				t.Errorf("unacked batch %s partially applied: %d/%d facts", tag, present, chaosBatchSize)
			}
		}
	}
	if t.Failed() {
		t.Logf("recovered %d item facts", len(keys))
	}
}

func runChaosTraffic(t *testing.T, url string, writers int, d time.Duration) []*chaosWriter {
	t.Helper()
	ws := make([]*chaosWriter, writers)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := range ws {
		ws[i] = &chaosWriter{id: i}
		wg.Add(1)
		go func(w *chaosWriter) {
			defer wg.Done()
			w.run(t, url, stop)
		}(ws[i])
	}
	time.Sleep(d)
	close(stop)
	wg.Wait()
	return ws
}

func TestChaosCrashDuringConcurrentWrites(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped with -short")
	}
	dir := t.TempDir()
	cfg := Config{DataDir: dir, Fsync: wal.PolicyAlways}
	ts := startCrashable(t, cfg)
	info := createSession(t, ts.URL, createSessionRequest{Source: contractSrc})
	url := ts.URL + "/api/v1/sessions/" + info.ID

	ws := make([]*chaosWriter, 6)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := range ws {
		ws[i] = &chaosWriter{id: i}
		wg.Add(1)
		go func(w *chaosWriter) {
			defer wg.Done()
			w.run(t, url, stop)
		}(ws[i])
	}

	// Kill the server mid-traffic: drop every client connection and stop
	// the listener, with no drain and no log close — like a process death
	// from the clients' point of view.
	time.Sleep(300 * time.Millisecond)
	ts.CloseClientConnections()
	close(stop)
	wg.Wait()
	ts.Close()
	// Let handler goroutines that were mid-append run out before the
	// recovered server opens the same files.
	time.Sleep(200 * time.Millisecond)

	_, ts2 := newTestServer(t, cfg)
	url2 := ts2.URL + "/api/v1/sessions/" + info.ID
	checkChaosInvariants(t, ws, presentKeys(t, url2))
}

func TestChaosGracefulDrainDuringConcurrentWrites(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped with -short")
	}
	dir := t.TempDir()
	cfg := Config{DataDir: dir}
	s, ts := newTestServer(t, cfg)
	info := createSession(t, ts.URL, createSessionRequest{Source: contractSrc})
	url := ts.URL + "/api/v1/sessions/" + info.ID

	ws := runChaosTraffic(t, url, 6, 300*time.Millisecond)
	before := exportSnapshot(t, url)
	closeServer(t, s, ts)

	_, ts2 := newTestServer(t, cfg)
	url2 := ts2.URL + "/api/v1/sessions/" + info.ID
	keys := presentKeys(t, url2)
	checkChaosInvariants(t, ws, keys)
	// A graceful drain additionally loses nothing that was ever applied:
	// the recovered snapshot matches the drained one byte for byte.
	if after := exportSnapshot(t, url2); before != after {
		t.Fatalf("snapshot drifted across graceful restart: %d vs %d bytes", len(before), len(after))
	}
}
