package server

import (
	"sync"
	"time"

	"parulel/internal/stats"
)

// collector aggregates engine cycle records and server counters across
// every session, live or evicted. Percentiles are computed over a bounded
// sliding window of the newest cycle records (metricsWindow); totals and
// histograms cover the server's whole lifetime.
type collector struct {
	mu sync.Mutex

	// Lifetime totals.
	cycles      uint64
	fired       uint64
	redacted    uint64
	maxConflict int
	phaseTotals [4]time.Duration // match, redact, fire, apply
	hists       [4]*stats.Hist

	// Sliding window for percentiles.
	window    stats.Run
	windowCap int

	// Run/session counters.
	runsStarted, runsCompleted, runTimeouts, runsCanceled, runErrors   uint64
	sessionsCreated, sessionsEvicted, sessionsExpired, sessionsDeleted uint64
}

// metricsWindow is the default number of cycle records retained for
// percentile computation (~a few MB at most).
const metricsWindow = 65536

var phaseNames = [4]string{"match", "redact", "fire", "apply"}

func newCollector() *collector {
	c := &collector{windowCap: metricsWindow}
	for i := range c.hists {
		c.hists[i] = stats.NewHist()
	}
	return c
}

// observe folds freshly produced cycle records into the aggregate.
func (c *collector) observe(cycles []stats.Cycle) {
	if len(cycles) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cyc := range cycles {
		c.cycles++
		c.fired += uint64(cyc.Fired)
		c.redacted += uint64(cyc.Redacted)
		if cyc.ConflictSize > c.maxConflict {
			c.maxConflict = cyc.ConflictSize
		}
		for i, d := range [4]time.Duration{cyc.Match, cyc.Redact, cyc.Fire, cyc.Apply} {
			c.phaseTotals[i] += d
			c.hists[i].Observe(d)
		}
	}
	c.window.Cycles = append(c.window.Cycles, cycles...)
	c.window.Truncate(c.windowCap)
}

// counter bumps (each takes the lock; contention is negligible next to a
// rule-engine run).
func (c *collector) runStarted()     { c.bump(&c.runsStarted) }
func (c *collector) runCompleted()   { c.bump(&c.runsCompleted) }
func (c *collector) runTimeout()     { c.bump(&c.runTimeouts) }
func (c *collector) runCanceled()    { c.bump(&c.runsCanceled) }
func (c *collector) runError()       { c.bump(&c.runErrors) }
func (c *collector) sessionCreated() { c.bump(&c.sessionsCreated) }
func (c *collector) sessionEvicted() { c.bump(&c.sessionsEvicted) }
func (c *collector) sessionExpired() { c.bump(&c.sessionsExpired) }
func (c *collector) sessionDeleted() { c.bump(&c.sessionsDeleted) }

func (c *collector) bump(f *uint64) {
	c.mu.Lock()
	*f++
	c.mu.Unlock()
}

// phasePayload is one phase's slice of the /metrics document.
type phasePayload struct {
	TotalNS   int64    `json:"total_ns"`
	HistCount uint64   `json:"hist_count"`
	Hist      []uint64 `json:"hist"`
}

// metricsPayload is the /metrics response body.
type metricsPayload struct {
	UptimeMS int64 `json:"uptime_ms"`
	Sessions struct {
		Live    int    `json:"live"`
		Created uint64 `json:"created"`
		Evicted uint64 `json:"evicted"`
		Expired uint64 `json:"expired"`
		Deleted uint64 `json:"deleted"`
	} `json:"sessions"`
	Runs struct {
		Started   uint64 `json:"started"`
		Completed uint64 `json:"completed"`
		Timeouts  uint64 `json:"timeouts"`
		Canceled  uint64 `json:"canceled"`
		Errors    uint64 `json:"errors"`
		Active    int    `json:"active"`
	} `json:"runs"`
	Engine struct {
		Cycles          uint64                  `json:"cycles"`
		Fired           uint64                  `json:"fired"`
		Redacted        uint64                  `json:"redacted"`
		MaxConflictSize int                     `json:"max_conflict_size"`
		HistBoundsNS    []int64                 `json:"hist_bounds_ns"`
		Phases          map[string]phasePayload `json:"phases"`
		// Window holds percentiles over the newest cycle records.
		Window stats.Summary `json:"window"`
	} `json:"engine"`
}

// snapshot renders the aggregate. live and active are sampled by the
// caller under the server mutex.
func (c *collector) snapshot(uptime time.Duration, live, active int) metricsPayload {
	c.mu.Lock()
	defer c.mu.Unlock()
	var p metricsPayload
	p.UptimeMS = uptime.Milliseconds()
	p.Sessions.Live = live
	p.Sessions.Created = c.sessionsCreated
	p.Sessions.Evicted = c.sessionsEvicted
	p.Sessions.Expired = c.sessionsExpired
	p.Sessions.Deleted = c.sessionsDeleted
	p.Runs.Started = c.runsStarted
	p.Runs.Completed = c.runsCompleted
	p.Runs.Timeouts = c.runTimeouts
	p.Runs.Canceled = c.runsCanceled
	p.Runs.Errors = c.runErrors
	p.Runs.Active = active
	p.Engine.Cycles = c.cycles
	p.Engine.Fired = c.fired
	p.Engine.Redacted = c.redacted
	p.Engine.MaxConflictSize = c.maxConflict
	p.Engine.HistBoundsNS = make([]int64, len(stats.HistBounds))
	for i, b := range stats.HistBounds {
		p.Engine.HistBoundsNS[i] = b.Nanoseconds()
	}
	p.Engine.Phases = make(map[string]phasePayload, 4)
	for i, name := range phaseNames {
		p.Engine.Phases[name] = phasePayload{
			TotalNS:   c.phaseTotals[i].Nanoseconds(),
			HistCount: c.hists[i].Total(),
			Hist:      append([]uint64(nil), c.hists[i].Counts...),
		}
	}
	p.Engine.Window = c.window.Summarize()
	return p
}
